//go:build !race

package gridroute

// raceEnabled reports whether the race detector is active; allocation
// regression tests are skipped under -race because instrumentation changes
// allocation behaviour.
const raceEnabled = false
