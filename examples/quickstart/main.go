// Quickstart: route random traffic on a uni-directional line with the
// paper's deterministic algorithm and compare against a certified bound on
// the optimum.
package main

import (
	"fmt"
	"log"

	"gridroute"
)

func main() {
	// The "uniform" scenario from the registry: a 64-node uni-directional
	// line (B = c = 3) with 200 random requests arriving online over 128
	// time steps. Run `routesim -list-scenarios` for the whole catalog.
	g, reqs, err := gridroute.GenerateScenario("uniform", map[string]float64{
		"n": 64, "reqs": 200, "maxt": 128, "seed": 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The deterministic Even–Medina algorithm: admission control via online
	// path packing over space-time tiles, then detailed routing with
	// preemption. Every emitted schedule is replayed on a cycle-accurate
	// store-and-forward simulator; Violations would flag any capacity bug.
	res, err := gridroute.Deterministic().Route(g, reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests:  %d\n", res.Requests)
	fmt.Printf("admitted:  %d (injected by the ipp admission control)\n", res.Admitted)
	fmt.Printf("delivered: %d packets on time\n", res.Throughput)
	fmt.Printf("verified:  %d capacity violations in replay\n", len(res.Violations))

	// An honest upper bound on what ANY routing could have delivered.
	T := gridroute.SuggestHorizon(g, reqs, 3)
	upper, _ := gridroute.DualUpperBound(g, reqs, T)
	fmt.Printf("certified: OPT ≤ %.1f → competitive ratio ≤ %.2f\n",
		upper, upper/float64(res.Throughput))
}
