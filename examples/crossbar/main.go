// Crossbar: 2-dimensional uni-directional grids serve as crossbar switch
// fabrics (the motivation of Sec. 1.1 — "2-dimensional grids with or
// without buffers serve as crossbars in networks"). This example schedules
// input-queued switch traffic with the deterministic algorithm and compares
// it with greedy forwarding.
package main

import (
	"fmt"
	"log"

	"gridroute"
)

func main() {
	// The "crossbar" scenario: packets enter an 8×8 grid on the west edge
	// and exit at a row/column crossing point. Load 0.7 per ingress/cycle.
	g, reqs, err := gridroute.GenerateScenario("crossbar", map[string]float64{
		"n": 8, "rounds": 32, "load": 0.7, "seed": 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crossbar 8x8, %d cells injected\n", len(reqs))

	det, err := gridroute.Deterministic().Route(g, reqs)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := gridroute.Greedy().Route(g, reqs)
	if err != nil {
		log.Fatal(err)
	}
	ntg, err := gridroute.NearestToGo().Route(g, reqs)
	if err != nil {
		log.Fatal(err)
	}

	T := gridroute.SuggestHorizon(g, reqs, 3)
	upper, _ := gridroute.DualUpperBound(g, reqs, T)
	fmt.Printf("certified OPT ≤ %.1f\n\n", upper)
	for _, r := range []*gridroute.Result{det, greedy, ntg} {
		fmt.Printf("%-16s delivered %4d  (admitted %4d, violations %d)\n",
			r.Algorithm, r.Throughput, r.Admitted, len(r.Violations))
	}
	fmt.Println("\nAt moderate load greedy keeps up; under admission-worthy overload")
	fmt.Println("(raise rounds/load) the deterministic algorithm's rejections pay off.")
}
