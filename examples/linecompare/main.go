// Linecompare: the randomized O(log n) algorithm (Sec. 7) against the
// deterministic algorithm and the baselines on a unit-buffer line — the
// B = 1, c = 1 setting that no previous algorithm in Table 1 could handle.
package main

import (
	"fmt"
	"log"

	"gridroute"
)

func main() {
	const n = 128
	// Unit buffers, unit capacities! The "uniform" scenario with b = c = 1.
	g, reqs, err := gridroute.GenerateScenario("uniform", map[string]float64{
		"n": n, "b": 1, "c": 1, "reqs": 800, "maxt": 256, "seed": 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	T := gridroute.SuggestHorizon(g, reqs, 3)
	upper, _ := gridroute.DualUpperBound(g, reqs, T)
	fmt.Printf("line n=%d, B=c=1, %d requests, certified OPT ≤ %.1f\n\n", n, len(reqs), upper)

	// The deterministic algorithm needs B, c ≥ 3 — it must refuse.
	if _, err := gridroute.Deterministic().Route(g, reqs); err != nil {
		fmt.Printf("deterministic:    refuses (as the paper requires): %v\n", err)
	}

	// The randomized algorithm covers B = 1 (Table 2, first row). γ = 0.5
	// is engineering mode; the paper's γ = 200 is asymptotic (see E13).
	best := 0
	for seed := int64(0); seed < 5; seed++ {
		res, err := gridroute.RandomizedWith(seed, 0.5, 0).Route(g, reqs)
		if err != nil {
			log.Fatal(err)
		}
		if res.Throughput > best {
			best = res.Throughput
		}
	}
	fmt.Printf("randomized:       delivered %d (best of 5 coin draws)\n", best)

	for _, router := range []gridroute.Router{gridroute.Greedy(), gridroute.NearestToGo()} {
		res, err := router.Route(g, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s delivered %d\n", res.Algorithm+":", res.Throughput)
	}

	fmt.Println("\nOn random traffic the myopic baselines do fine; the randomized")
	fmt.Println("algorithm's value is its worst-case O(log n) guarantee (Thm 29),")
	fmt.Println("which no greedy-family policy achieves (Table 1 lower bounds).")
}
