// Deadlines: the deterministic algorithm handles per-packet deadlines
// (Sec. 5.4) by attaching a per-request sink to every space-time tile that
// contains an on-time copy of the destination. This example routes traffic
// with tight deadlines and verifies that every delivery is punctual.
package main

import (
	"fmt"
	"log"

	"gridroute"
)

func main() {
	// The "uniform-deadline" scenario: random traffic with deadlines at
	// 1.5× the shortest route (plus small jitter) — tight enough that
	// buffering detours matter.
	g, reqs, err := gridroute.GenerateScenario("uniform-deadline", map[string]float64{
		"n": 48, "reqs": 180, "maxt": 96, "slack": 1.5, "jitter": 6, "seed": 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := gridroute.Deterministic().Route(g, reqs)
	if err != nil {
		log.Fatal(err)
	}

	late := 0
	slackSum := int64(0)
	for i, s := range res.Schedules {
		if s == nil {
			continue
		}
		_, t := s.EndState()
		if t > reqs[i].Deadline {
			late++
		} else {
			slackSum += reqs[i].Deadline - t
		}
	}
	fmt.Printf("requests with deadlines: %d\n", res.Requests)
	fmt.Printf("delivered on time:       %d\n", res.Throughput)
	fmt.Printf("late deliveries:         %d (Sec. 5.4 guarantees 0)\n", late)
	if res.Throughput > 0 {
		fmt.Printf("mean slack at delivery:  %.1f steps\n", float64(slackSum)/float64(res.Throughput))
	}
	fmt.Printf("replay violations:       %d\n", len(res.Violations))
}
