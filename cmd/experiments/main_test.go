package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNoMatchExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-run", "zzz-no-such"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, "no experiments matched") {
		t.Fatalf("stderr %q missing 'no experiments matched'", msg)
	}
	if !strings.Contains(msg, "T1") || !strings.Contains(msg, "E13") {
		t.Fatalf("stderr %q does not list the known IDs", msg)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected stdout: %q", out.String())
	}
}

func TestRunBadPatternExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-run", "("}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bad -run pattern") {
		t.Fatalf("stderr %q missing pattern diagnostic", errb.String())
	}
}

func TestRunBadFlagExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "T1") || !strings.Contains(out.String(), "E13") {
		t.Fatalf("-list output missing experiments:\n%s", out.String())
	}
}

// A small real run end to end: selected subset, files written, JSON valid,
// markdown carries the section, exit 0.
func TestRunSubsetWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "out.md")
	js := filepath.Join(dir, "out.json")
	var out, errb strings.Builder
	code := run(context.Background(),
		[]string{"-quick", "-j", "2", "-run", "^E9$", "-out", md, "-json", js}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errb.String())
	}
	mdBytes, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(mdBytes), "# EXPERIMENTS") || !strings.Contains(string(mdBytes), "## E9") {
		t.Fatalf("markdown file malformed:\n%.500s", mdBytes)
	}
	jsBytes, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode        string `json:"mode"`
		Partial     bool   `json:"partial"`
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(jsBytes, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Mode != "quick" || doc.Partial || len(doc.Experiments) != 1 || doc.Experiments[0].ID != "E9" {
		t.Fatalf("JSON document wrong: %+v", doc)
	}
}

// SIGINT semantics without the signal: a cancelled context must still
// flush valid (partial) markdown and JSON and exit 130.
func TestRunInterruptedFlushesPartialOutput(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "partial.md")
	js := filepath.Join(dir, "partial.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{"-quick", "-out", md, "-json", js}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit code = %d, want 130\nstderr: %s", code, errb.String())
	}
	mdBytes, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(mdBytes), "# EXPERIMENTS") || !strings.Contains(string(mdBytes), "Sweep interrupted") {
		t.Fatalf("partial markdown malformed:\n%.500s", mdBytes)
	}
	jsBytes, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Partial     bool `json:"partial"`
		Experiments []struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(jsBytes, &doc); err != nil {
		t.Fatalf("partial JSON invalid: %v\n%s", err, jsBytes)
	}
	if !doc.Partial {
		t.Fatal("interrupted run must be marked partial")
	}
	if len(doc.Experiments) == 0 || doc.Experiments[0].Error == "" {
		t.Fatalf("cancelled experiments missing error accounting: %+v", doc.Experiments)
	}
}

// The streamed stdout must be byte-identical at any -j (the CI determinism
// gate in miniature).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func(j string) string {
		var out, errb strings.Builder
		if code := run(context.Background(), []string{"-quick", "-run", "^(T1|E9)$", "-j", j}, &out, &errb); code != 0 {
			t.Fatalf("-j %s exit code = %d\nstderr: %s", j, code, errb.String())
		}
		return out.String()
	}
	j1 := render("1")
	for _, j := range []string{"4", "8"} {
		if jn := render(j); jn != j1 {
			t.Fatalf("-j %s output differs from -j 1", j)
		}
	}
}
