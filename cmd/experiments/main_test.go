package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNoMatchExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	code := run(context.Background(), []string{"-run", "zzz-no-such"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, "no experiments matched") {
		t.Fatalf("stderr %q missing 'no experiments matched'", msg)
	}
	if !strings.Contains(msg, "T1") || !strings.Contains(msg, "E13") {
		t.Fatalf("stderr %q does not list the known IDs", msg)
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected stdout: %q", out.String())
	}
}

func TestRunBadPatternExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-run", "("}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bad -run pattern") {
		t.Fatalf("stderr %q missing pattern diagnostic", errb.String())
	}
}

func TestRunBadFlagExitsNonZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "T1") || !strings.Contains(out.String(), "E13") {
		t.Fatalf("-list output missing experiments:\n%s", out.String())
	}
}

// A small real run end to end: selected subset, files written, JSON valid,
// markdown carries the section, exit 0.
func TestRunSubsetWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "out.md")
	js := filepath.Join(dir, "out.json")
	var out, errb strings.Builder
	code := run(context.Background(),
		[]string{"-quick", "-j", "2", "-run", "^E9$", "-out", md, "-json", js}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, errb.String())
	}
	mdBytes, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(mdBytes), "# EXPERIMENTS") || !strings.Contains(string(mdBytes), "## E9") {
		t.Fatalf("markdown file malformed:\n%.500s", mdBytes)
	}
	jsBytes, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode        string `json:"mode"`
		Partial     bool   `json:"partial"`
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(jsBytes, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Mode != "quick" || doc.Partial || len(doc.Experiments) != 1 || doc.Experiments[0].ID != "E9" {
		t.Fatalf("JSON document wrong: %+v", doc)
	}
}

// SIGINT semantics without the signal: a cancelled context must still
// flush valid (partial) markdown and JSON and exit 130.
func TestRunInterruptedFlushesPartialOutput(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "partial.md")
	js := filepath.Join(dir, "partial.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{"-quick", "-out", md, "-json", js}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit code = %d, want 130\nstderr: %s", code, errb.String())
	}
	mdBytes, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(mdBytes), "# EXPERIMENTS") || !strings.Contains(string(mdBytes), "Sweep interrupted") {
		t.Fatalf("partial markdown malformed:\n%.500s", mdBytes)
	}
	jsBytes, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Partial     bool `json:"partial"`
		Experiments []struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(jsBytes, &doc); err != nil {
		t.Fatalf("partial JSON invalid: %v\n%s", err, jsBytes)
	}
	if !doc.Partial {
		t.Fatal("interrupted run must be marked partial")
	}
	if len(doc.Experiments) == 0 || doc.Experiments[0].Error == "" {
		t.Fatalf("cancelled experiments missing error accounting: %+v", doc.Experiments)
	}
}

// The acceptance gate in miniature: for m ∈ {2, 3} and every shard
// assignment, artifacts merged via -merge produce markdown and stable JSON
// byte-identical to the unsharded run at any -j. The subset includes E14,
// the splittable experiment, so scenario sub-cases cross shard boundaries.
func TestShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const sel = "^(T1|E9|E14)$"
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	mustRun := func(wantCode int, args ...string) {
		t.Helper()
		var out, errb strings.Builder
		if code := run(context.Background(), args, &out, &errb); code != wantCode {
			t.Fatalf("run(%q) = %d, want %d\nstderr: %s", args, code, wantCode, errb.String())
		}
	}
	read := func(name string) string {
		t.Helper()
		b, err := os.ReadFile(p(name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	mustRun(0, "-quick", "-run", sel, "-j", "4", "-out", p("unsharded.md"), "-json", p("unsharded.json"), "-stable-json")
	wantMD, wantJSON := read("unsharded.md"), read("unsharded.json")
	if !strings.Contains(wantMD, "## E14") {
		t.Fatalf("subset markdown missing the splittable experiment:\n%.400s", wantMD)
	}

	for _, m := range []int{2, 3} {
		var artifacts []string
		for i := 0; i < m; i++ {
			a := p(fmt.Sprintf("m%d-s%d.json", m, i))
			artifacts = append(artifacts, a)
			mustRun(0, "-quick", "-run", sel, "-j", "2",
				"-shard", fmt.Sprintf("%d/%d", i, m), "-artifact", a, "-out", p("shard-partial.md"))
		}
		merged := p(fmt.Sprintf("merged-%d.md", m))
		mergedJSON := p(fmt.Sprintf("merged-%d.json", m))
		args := append([]string{"-merge"}, artifacts...)
		mustRun(0, append(args, "-out", merged, "-json", mergedJSON)...)
		if got := read(fmt.Sprintf("merged-%d.md", m)); got != wantMD {
			t.Fatalf("m=%d merged markdown differs from unsharded", m)
		}
		if got := read(fmt.Sprintf("merged-%d.json", m)); got != wantJSON {
			t.Fatalf("m=%d merged JSON differs from unsharded", m)
		}
	}

	// Incomplete and overlapping inputs exit 2 with a diagnostic.
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-merge", p("m3-s0.json"), p("m3-s2.json")}, &out, &errb); code != 2 {
		t.Fatalf("incomplete merge exit = %d, want 2\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "incomplete partition") {
		t.Fatalf("incomplete merge diagnostic missing: %s", errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-merge", p("m2-s0.json"), p("m2-s0.json"), p("m2-s1.json")}, &out, &errb); code != 2 {
		t.Fatalf("overlapping merge exit = %d, want 2\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "overlapping") {
		t.Fatalf("overlapping merge diagnostic missing: %s", errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-merge", p("m2-s0.json"), p("m3-s1.json")}, &out, &errb); code != 2 {
		t.Fatalf("mixed-plan merge exit = %d, want 2\nstderr: %s", code, errb.String())
	}
}

func TestShardFlagValidation(t *testing.T) {
	for _, bad := range [][]string{
		{"-shard", "2/2"},
		{"-shard", "-1/2"},
		{"-shard", "x/2"},
		{"-shard", "1"},
		{"-shard", "0/0"},
		{"-artifact", "a.json"},         // -artifact without -shard
		{"-merge", "-shard", "0/2"},     // mutually exclusive
		{"stray-positional-arg"},        // files only valid with -merge
		{"-merge"},                      // no artifact files
		{"-merge", "no-such-file.json"}, // unreadable artifact
		{"-shard", "0/2", "extra.json"}, // positional args without -merge
		{"-merge", "-quick", "a.json"},  // sweep-shaping flags have no effect with -merge
		{"-merge", "a.json", "-run", "^T1$"},
		{"-merge", "a.json", "-j", "4"},
	} {
		var out, errb strings.Builder
		if code := run(context.Background(), bad, &out, &errb); code != 2 {
			t.Fatalf("run(%q) = %d, want 2\nstderr: %s", bad, code, errb.String())
		}
	}
}

// Shard-mode -out/-json output must never pass for the canonical sweep
// document: both carry the shard stamp.
func TestShardOutputIsStamped(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "shard.md")
	js := filepath.Join(dir, "shard.json")
	var out, errb strings.Builder
	args := []string{"-quick", "-run", "^(T1|E9)$", "-shard", "0/2",
		"-artifact", filepath.Join(dir, "a.json"), "-out", md, "-json", js}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errb.String())
	}
	mdBytes, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mdBytes), "shard 0/2 only") {
		t.Fatalf("shard markdown missing the shard stamp:\n%.400s", mdBytes)
	}
	jsBytes, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Shard string `json:"shard"`
	}
	if err := json.Unmarshal(jsBytes, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Shard != "0/2" {
		t.Fatalf("shard JSON stamp = %q, want \"0/2\"", doc.Shard)
	}
}

// A shard interrupted before it starts still writes a complete, partial
// artifact (every assigned unit present as cancelled), and merging it
// yields a partial document and exit 130 — per-shard SIGINT composes.
func TestShardInterruptedArtifactComposes(t *testing.T) {
	dir := t.TempDir()
	a0 := filepath.Join(dir, "s0.json")
	a1 := filepath.Join(dir, "s1.json")
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-quick", "-run", "^(T1|E9)$", "-shard", "1/2", "-artifact", a1}, &out, &errb); code != 0 {
		t.Fatalf("shard 1 exit = %d\nstderr: %s", code, errb.String())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if code := run(ctx, []string{"-quick", "-run", "^(T1|E9)$", "-shard", "0/2", "-artifact", a0}, &out, &errb); code != 130 {
		t.Fatalf("cancelled shard exit = %d, want 130\nstderr: %s", code, errb.String())
	}
	md := filepath.Join(dir, "merged.md")
	js := filepath.Join(dir, "merged.json")
	errb.Reset()
	if code := run(context.Background(), []string{"-merge", a0, a1, "-out", md, "-json", js}, &out, &errb); code != 130 {
		t.Fatalf("partial merge exit = %d, want 130\nstderr: %s", code, errb.String())
	}
	mdBytes, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mdBytes), "Sweep interrupted") {
		t.Fatalf("merged partial markdown missing interrupt trailer:\n%.400s", mdBytes)
	}
	jsBytes, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsBytes), `"partial": true`) {
		t.Fatalf("merged partial JSON not marked partial:\n%.400s", jsBytes)
	}
}

// The streamed stdout must be byte-identical at any -j (the CI determinism
// gate in miniature).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func(j string) string {
		var out, errb strings.Builder
		if code := run(context.Background(), []string{"-quick", "-run", "^(T1|E9)$", "-j", j}, &out, &errb); code != 0 {
			t.Fatalf("-j %s exit code = %d\nstderr: %s", j, code, errb.String())
		}
		return out.String()
	}
	j1 := render("1")
	for _, j := range []string{"4", "8"} {
		if jn := render(j); jn != j1 {
			t.Fatalf("-j %s output differs from -j 1", j)
		}
	}
}
