// Command experiments regenerates EXPERIMENTS.md: every table and figure of
// Even–Medina (SPAA 2011) in executable form, with certified OPT bounds.
//
// Usage:
//
//	go run ./cmd/experiments            # full sweep (a few minutes)
//	go run ./cmd/experiments -quick     # small sweep (seconds)
//	go run ./cmd/experiments -out FILE  # write to FILE instead of stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gridroute/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced sweep")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var b strings.Builder
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, `# EXPERIMENTS — paper vs. measured

Reproduction harness for "Online Packet-Routing in Grids with Bounded
Buffers" (Even & Medina, SPAA 2011). Regenerate with:

    go run ./cmd/experiments > EXPERIMENTS.md

Mode: %s sweep, generated %s.

**How to read the ratios.** The paper proves competitive ratios against an
adversary's optimal routing; exact integral OPT is NP-hard, so every ratio
below is measured against a *certificate*: either a dual-fitting upper
bound on the fractional optimum (Appendix E weak duality — may overestimate
the true ratio by up to 2× plus the integrality gap) or an instance whose
OPT is known by construction. The claims being checked are the paper's
*shapes*: which algorithm wins, how ratios scale with n, and where the
(B, c) parameter regimes change behaviour — not absolute constants, which
the paper itself leaves astronomically loose (γ = 200, k⁴ tile factors).

The ASCII reproductions of Figures 1–10/12 are printed by `+"`go run ./cmd/viz`"+`;
their structural claims are enforced by unit tests (see DESIGN.md §5).

`, mode, time.Now().UTC().Format("2006-01-02 15:04 UTC"))

	for _, r := range experiments.All(*quick) {
		fmt.Fprintf(&b, "\n## %s — %s\n\n", r.ID, r.Title)
		for _, t := range r.Tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
