// Command experiments regenerates EXPERIMENTS.md: every table and figure of
// Even–Medina (SPAA 2011) in executable form, with certified OPT bounds.
//
// Experiments stream in parallel over a bounded worker pool and render
// incrementally in canonical order as they finish; each experiment (and
// each sub-case of its n-sweep) is seeded from its ID alone, so the tables
// are byte-identical for any -j. On SIGINT the sweep stops at the next
// sub-case boundary and the partial markdown/JSON written so far is flushed
// to -out/-json instead of being discarded.
//
// Usage:
//
//	go run ./cmd/experiments                 # full sweep (a few minutes)
//	go run ./cmd/experiments -quick          # small sweep (seconds)
//	go run ./cmd/experiments -quick -j 4     # same tables, 4 workers
//	go run ./cmd/experiments -dp-workers 4   # parallel admission DP, same tables
//	go run ./cmd/experiments -run 'T[12]'    # only experiments matching the regexp
//	go run ./cmd/experiments -timeout 2m     # per-experiment attempt timeout
//	go run ./cmd/experiments -subtimeout 20s # per-sub-case timeout inside sweeps
//	go run ./cmd/experiments -retries 1      # retry failed experiments once
//	go run ./cmd/experiments -out FILE       # write markdown to FILE instead of stdout
//	go run ./cmd/experiments -json FILE      # also write machine-readable results
//	go run ./cmd/experiments -list           # list registered experiment IDs
//	go run ./cmd/experiments -cpuprofile cpu.out -memprofile mem.out
//	                                         # capture pprof profiles of the sweep
//
// Sharding (distribute one sweep across machines, then merge):
//
//	go run ./cmd/experiments -shard 0/2 -artifact shard-0-of-2.json   # machine A
//	go run ./cmd/experiments -shard 1/2 -artifact shard-1-of-2.json   # machine B
//	go run ./cmd/experiments -merge shard-0-of-2.json shard-1-of-2.json \
//	    -out EXPERIMENTS.md -json BENCH_experiments.json
//
// The merged markdown and (stable) JSON are byte-identical to an unsharded
// run; incomplete or overlapping artifact sets exit 2 with a diagnostic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gridroute/internal/core"
	"gridroute/internal/experiments"
	"gridroute/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Restore default signal handling once the first signal has cancelled
	// the context: cancellation is cooperative at sub-case boundaries, so a
	// second Ctrl-C must be able to kill a sweep stuck in a long sub-case.
	go func() {
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process-global state: it parses args, streams the
// selected experiments, and returns the exit code (0 success, 1 experiment
// or write failure, 2 usage error, 130 interrupted-with-partial-results).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run the reduced sweep")
	out := fs.String("out", "", "markdown output file (default stdout)")
	runPat := fs.String("run", "", "regexp selecting experiment IDs or tags (default: all)")
	workers := fs.Int("j", runtime.NumCPU(), "bound on concurrent experiments and (separately) on concurrent sub-tasks across all experiments (1 = serial)")
	jsonOut := fs.String("json", "", "also write machine-readable results (e.g. BENCH_experiments.json)")
	list := fs.Bool("list", false, "list registered experiments and exit")
	timeout := fs.Duration("timeout", 0, "per-experiment attempt timeout (0 = none)")
	subTimeout := fs.Duration("subtimeout", 0, "per-sub-case timeout within each experiment's sweep (0 = none; overruns surface as skipped sub-cases)")
	retries := fs.Int("retries", 0, "how many times to re-run a failed experiment")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	shardSpec := fs.String("shard", "", "run only shard i of m (\"i/m\", 0-based) and write a mergeable artifact (see -artifact)")
	artifact := fs.String("artifact", "", "shard artifact output file (default shard-<i>-of-<m>.json; only with -shard)")
	merge := fs.Bool("merge", false, "merge the shard artifacts given as arguments into canonical markdown/JSON instead of running experiments")
	stableJSON := fs.Bool("stable-json", false, "omit timing/machine-dependent fields (durations, workers) from -json so outputs diff byte-identically across runs; implied by -merge")
	dpWorkers := fs.Int("dp-workers", 1, "wavefront workers per admission DP (1 = serial; results are bit-identical at any setting)")
	specWorkers := fs.Int("spec-workers", 0, "speculative admission workers per engine (0 = serial consumer loop; results are bit-identical at any setting)")
	// Honour the standard `--` end-of-flags terminator before any
	// re-parsing below can swallow it: everything after it is positional.
	var files, terminated []string
	parseArgs := args
	for i, a := range args {
		if a == "--" {
			parseArgs, terminated = args[:i], args[i+1:]
			break
		}
	}
	if err := fs.Parse(parseArgs); err != nil {
		return 2
	}
	// The standard flag package stops at the first positional argument, but
	// `-merge a.json b.json -out merged.md` is the natural spelling: collect
	// positionals and keep parsing so flags and artifact files may intermix.
	for rest := fs.Args(); len(rest) > 0; rest = fs.Args() {
		if strings.HasPrefix(rest[0], "-") && len(rest[0]) > 1 {
			if err := fs.Parse(rest); err != nil {
				return 2
			}
			continue
		}
		files = append(files, rest[0])
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
	}
	files = append(files, terminated...)

	if *merge && *shardSpec != "" {
		fmt.Fprintln(stderr, "experiments: -merge and -shard are mutually exclusive")
		return 2
	}
	if *artifact != "" && *shardSpec == "" {
		fmt.Fprintln(stderr, "experiments: -artifact requires -shard")
		return 2
	}
	if *merge {
		// Mode, selection and execution policy come from the artifacts'
		// stamps; accepting sweep-shaping flags here would let them appear
		// to work while doing nothing.
		shapers := map[string]bool{"quick": true, "run": true, "j": true, "timeout": true,
			"subtimeout": true, "retries": true, "list": true, "cpuprofile": true,
			"memprofile": true, "dp-workers": true, "spec-workers": true}
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			if shapers[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "experiments: -%s has no effect with -merge (mode and selection come from the shard artifacts)\n", conflict)
			return 2
		}
		return runMerge(files, *out, *jsonOut, stdout, stderr)
	}
	if len(files) > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected arguments %q (artifact files are only accepted with -merge)\n", files)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.Registered() {
			fmt.Fprintf(stdout, "%-8s %s [%s]\n", e.ID, e.Title, strings.Join(e.Tags, " "))
		}
		return 0
	}

	// DP and speculation parallelism are pure throughput knobs (decisions
	// are bit-identical), set process-wide so every DetConfig literal in the
	// registry picks them up.
	core.SetDefaultDPWorkers(*dpWorkers)
	core.SetDefaultSpecWorkers(*specWorkers)

	exps, err := experiments.Select(*runPat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(exps) == 0 {
		fmt.Fprintf(stderr, "no experiments matched -run %q (known IDs: %s; tags: %s)\n",
			*runPat, strings.Join(experiments.IDs(), ", "), strings.Join(experiments.Tags(), ", "))
		return 2
	}

	// Shard mode: partition the selected sweep's canonical units and keep
	// only shard i's jobs. The plan is a pure function of (selection, m),
	// so every machine computes the same assignment.
	jobs := make([]experiments.Job, len(exps))
	for i, e := range exps {
		jobs[i] = experiments.Job{Experiment: e}
	}
	var plan shard.Plan
	shardIdx := -1
	if *shardSpec != "" {
		var m int
		var err error
		if shardIdx, m, err = parseShardSpec(*shardSpec); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if plan, err = shard.NewPlan(exps, m); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if jobs, err = plan.Jobs(shardIdx); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *artifact == "" {
			*artifact = fmt.Sprintf("shard-%d-of-%d.json", shardIdx, m)
		}
	}

	runner := experiments.Runner{
		Workers: *workers,
		Quick:   *quick,
		Policy:  experiments.Policy{Timeout: *timeout, SubTimeout: *subTimeout, Retries: *retries},
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	// Shard output must never pass for the canonical document: the markdown
	// header and the JSON document both carry the shard stamp.
	modeDesc, shardLabel := mode, ""
	if shardIdx >= 0 {
		shardLabel = fmt.Sprintf("%d/%d", shardIdx, plan.M)
		modeDesc = fmt.Sprintf("%s — **shard %s only** (merge the shard artifacts for the canonical document)", mode, shardLabel)
	}
	var b strings.Builder
	writeHeader(&b, modeDesc)
	toStdout := *out == ""
	if toStdout {
		fmt.Fprint(stdout, b.String())
	}

	// Stream: each result renders (and prints) the moment it arrives; the
	// runner's reorder buffer already delivers canonical order. The channel
	// always drains fully — after SIGINT the unstarted experiments flush
	// through immediately as cancelled results.
	var results []experiments.Result
	var incomplete, failed []string
	for res := range runner.StreamJobs(ctx, jobs) {
		results = append(results, res)
		section, f, c := sectionFor(res)
		switch {
		case c:
			incomplete = append(incomplete, res.Experiment.ID)
		case f:
			failed = append(failed, res.Experiment.ID)
		}
		b.WriteString(section)
		if toStdout {
			fmt.Fprint(stdout, section)
		}
		fmt.Fprintf(stderr, "%-8s %v%s\n", res.Experiment.ID, res.Duration.Round(time.Millisecond), statusSuffix(res))
	}

	interrupted := ctx.Err() != nil
	if interrupted {
		trailer := interruptTrailer(len(results), incomplete)
		b.WriteString(trailer)
		if toStdout {
			fmt.Fprint(stdout, trailer)
		}
	}

	exit := 0
	// In shard mode the artifact is the primary output — the mergeable
	// record of this machine's share of the sweep — so it is flushed first
	// and must survive a failing -out/-json path.
	if shardIdx >= 0 {
		if err := writeArtifactFile(*artifact, plan, shardIdx, *quick, *runPat, interrupted, results); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	// Markdown before JSON: it is the primary artifact of an unsharded
	// sweep that may have taken minutes.
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	if *jsonOut != "" {
		opts := experiments.JSONOptions{Quick: *quick, Workers: *workers, Partial: interrupted, Stable: *stableJSON, Shard: shardLabel}
		if err := writeJSONFile(*jsonOut, opts, results); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	switch {
	case exit != 0:
		// A failed artifact/-out/-json flush outranks the interrupt status:
		// exit 130 promises "partial results were saved", which would be a
		// lie here.
		return exit
	case interrupted:
		return 130
	case len(failed) > 0:
		fmt.Fprintf(stderr, "failed experiments: %s\n", strings.Join(failed, ", "))
		return 1
	}
	return 0
}

// runMerge validates and merges shard artifacts into the canonical sweep
// output: markdown and stable JSON byte-identical to an unsharded run.
// Invalid, incomplete or overlapping artifact sets exit 2.
func runMerge(files []string, out, jsonOut string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "experiments: -merge needs at least one shard artifact file")
		return 2
	}
	arts := make([]shard.Artifact, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		a, err := shard.ReadArtifact(f, path)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		arts = append(arts, a)
	}
	merged, err := shard.Merge(arts, files)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	mode := "full"
	if merged.Quick {
		mode = "quick"
	}
	var b strings.Builder
	writeHeader(&b, mode)
	var incomplete, failed []string
	for _, res := range merged.Results {
		section, f, c := sectionFor(res)
		switch {
		case c:
			incomplete = append(incomplete, res.Experiment.ID)
		case f:
			failed = append(failed, res.Experiment.ID)
		}
		b.WriteString(section)
	}
	if merged.Partial {
		b.WriteString(interruptTrailer(len(merged.Results), incomplete))
	}
	if out == "" {
		fmt.Fprint(stdout, b.String())
	}

	exit := 0
	if out != "" {
		if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	if jsonOut != "" {
		// Merged JSON is always the stable form: per-shard wall-clock and
		// worker counts have no meaningful merged equivalent, and omitting
		// them is what makes the merge byte-comparable to an unsharded run.
		opts := experiments.JSONOptions{Quick: merged.Quick, Partial: merged.Partial, Stable: true}
		if err := writeJSONFile(jsonOut, opts, merged.Results); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	switch {
	case exit != 0:
		return exit
	case merged.Partial:
		return 130
	case len(failed) > 0:
		fmt.Fprintf(stderr, "failed experiments: %s\n", strings.Join(failed, ", "))
		return 1
	}
	return 0
}

// sectionFor renders one result's markdown section and classifies it:
// failed (hard error) or cancelled (sweep interrupted before it ran).
func sectionFor(res experiments.Result) (section string, failed, cancelled bool) {
	switch {
	case res.Err == nil || errors.Is(res.Err, experiments.ErrSkipped):
		return res.Report.Markdown(), false, false
	case isCancellation(res.Err):
		return "", false, true
	default:
		return fmt.Sprintf("\n## %s — %s\n\n> ⚠ failed after %d attempt(s): %v\n",
			res.Experiment.ID, res.Experiment.Title, res.Attempts, res.Err), true, false
	}
}

func interruptTrailer(total int, incomplete []string) string {
	trailer := fmt.Sprintf("\n> **Sweep interrupted** — %d of %d experiments completed; results above are partial.",
		total-len(incomplete), total)
	if len(incomplete) > 0 {
		trailer += fmt.Sprintf(" Not completed: %s.", strings.Join(incomplete, ", "))
	}
	return trailer + "\n"
}

// parseShardSpec parses "i/m" (0 ≤ i < m).
func parseShardSpec(spec string) (i, m int, err error) {
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("experiments: bad -shard %q: want \"i/m\" with 0 <= i < m (e.g. 0/2)", spec)
	}
	is, ms, ok := strings.Cut(spec, "/")
	if !ok {
		return bad()
	}
	if i, err = strconv.Atoi(is); err != nil {
		return bad()
	}
	if m, err = strconv.Atoi(ms); err != nil {
		return bad()
	}
	if m < 1 || i < 0 || i >= m {
		return bad()
	}
	return i, m, nil
}

func writeArtifactFile(path string, plan shard.Plan, idx int, quick bool, runPat string, partial bool, results []experiments.Result) error {
	a, err := shard.BuildArtifact(plan, idx, quick, runPat, partial, results)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := shard.WriteArtifact(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeHeader(w io.Writer, mode string) {
	fmt.Fprintf(w, `# EXPERIMENTS — paper vs. measured

Reproduction harness for "Online Packet-Routing in Grids with Bounded
Buffers" (Even & Medina, SPAA 2011). Regenerate with:

    go run ./cmd/experiments > EXPERIMENTS.md

Mode: %s sweep.

**How to read the ratios.** The paper proves competitive ratios against an
adversary's optimal routing; exact integral OPT is NP-hard, so every ratio
below is measured against a *certificate*: either a dual-fitting upper
bound on the fractional optimum (Appendix E weak duality — may overestimate
the true ratio by up to 2× plus the integrality gap) or an instance whose
OPT is known by construction. The claims being checked are the paper's
*shapes*: which algorithm wins, how ratios scale with n, and where the
(B, c) parameter regimes change behaviour — not absolute constants, which
the paper itself leaves astronomically loose (γ = 200, k⁴ tile factors).

The ASCII reproductions of Figures 1–10/12 are printed by `+"`go run ./cmd/viz`"+`;
their structural claims are enforced by unit tests (see DESIGN.md §5).

`, mode)
}

func statusSuffix(res experiments.Result) string {
	var parts []string
	if res.Attempts > 1 {
		parts = append(parts, fmt.Sprintf("%d attempts", res.Attempts))
	}
	switch {
	case res.Err == nil:
	case errors.Is(res.Err, experiments.ErrSkipped):
		parts = append(parts, "partial: "+res.Err.Error())
	case isCancellation(res.Err):
		parts = append(parts, "cancelled")
	default:
		parts = append(parts, "FAILED: "+res.Err.Error())
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, "; ") + ")"
}

// isCancellation reports whether the error is the caller's context being
// cancelled (SIGINT). A per-experiment Policy timeout surfaces as
// context.DeadlineExceeded instead and counts as a failure, not a
// cancellation of the sweep.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled)
}

func writeJSONFile(path string, opts experiments.JSONOptions, results []experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteJSONOpts(f, opts, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
