// Command experiments regenerates EXPERIMENTS.md: every table and figure of
// Even–Medina (SPAA 2011) in executable form, with certified OPT bounds.
//
// Experiments run in parallel over a bounded worker pool; each one is
// seeded from its ID alone, so the tables are byte-identical for any -j.
//
// Usage:
//
//	go run ./cmd/experiments                 # full sweep (a few minutes)
//	go run ./cmd/experiments -quick          # small sweep (seconds)
//	go run ./cmd/experiments -quick -j 4     # same tables, 4 workers
//	go run ./cmd/experiments -run 'T[12]'    # only experiments matching the regexp
//	go run ./cmd/experiments -out FILE       # write markdown to FILE instead of stdout
//	go run ./cmd/experiments -json FILE      # also write machine-readable results
//	go run ./cmd/experiments -list           # list registered experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gridroute/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced sweep")
	out := flag.String("out", "", "markdown output file (default stdout)")
	runPat := flag.String("run", "", "regexp selecting experiment IDs or tags (default: all)")
	workers := flag.Int("j", runtime.NumCPU(), "worker pool size (1 = serial)")
	jsonOut := flag.String("json", "", "also write machine-readable results (e.g. BENCH_experiments.json)")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registered() {
			fmt.Printf("%-8s %s [%s]\n", e.ID, e.Title, strings.Join(e.Tags, " "))
		}
		return
	}

	exps, err := experiments.Select(*runPat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(exps) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments match -run %q (have: %s)\n",
			*runPat, strings.Join(experiments.IDs(), ", "))
		os.Exit(2)
	}

	runner := experiments.Runner{Workers: *workers, Quick: *quick}
	results := runner.Run(exps)

	var b strings.Builder
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, `# EXPERIMENTS — paper vs. measured

Reproduction harness for "Online Packet-Routing in Grids with Bounded
Buffers" (Even & Medina, SPAA 2011). Regenerate with:

    go run ./cmd/experiments > EXPERIMENTS.md

Mode: %s sweep.

**How to read the ratios.** The paper proves competitive ratios against an
adversary's optimal routing; exact integral OPT is NP-hard, so every ratio
below is measured against a *certificate*: either a dual-fitting upper
bound on the fractional optimum (Appendix E weak duality — may overestimate
the true ratio by up to 2× plus the integrality gap) or an instance whose
OPT is known by construction. The claims being checked are the paper's
*shapes*: which algorithm wins, how ratios scale with n, and where the
(B, c) parameter regimes change behaviour — not absolute constants, which
the paper itself leaves astronomically loose (γ = 200, k⁴ tile factors).

The ASCII reproductions of Figures 1–10/12 are printed by `+"`go run ./cmd/viz`"+`;
their structural claims are enforced by unit tests (see DESIGN.md §5).

`, mode)

	for _, r := range results {
		b.WriteString(r.Report.Markdown())
		fmt.Fprintf(os.Stderr, "%-8s %v\n", r.Experiment.ID, r.Duration.Round(1e6))
	}

	// Write the markdown first: it is the primary artifact of a sweep that
	// may have taken minutes, and must survive a failing -json path.
	if *out == "" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := experiments.WriteJSON(f, *quick, *workers, results); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
