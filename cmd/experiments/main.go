// Command experiments regenerates EXPERIMENTS.md: every table and figure of
// Even–Medina (SPAA 2011) in executable form, with certified OPT bounds.
//
// Experiments stream in parallel over a bounded worker pool and render
// incrementally in canonical order as they finish; each experiment (and
// each sub-case of its n-sweep) is seeded from its ID alone, so the tables
// are byte-identical for any -j. On SIGINT the sweep stops at the next
// sub-case boundary and the partial markdown/JSON written so far is flushed
// to -out/-json instead of being discarded.
//
// Usage:
//
//	go run ./cmd/experiments                 # full sweep (a few minutes)
//	go run ./cmd/experiments -quick          # small sweep (seconds)
//	go run ./cmd/experiments -quick -j 4     # same tables, 4 workers
//	go run ./cmd/experiments -run 'T[12]'    # only experiments matching the regexp
//	go run ./cmd/experiments -timeout 2m     # per-experiment attempt timeout
//	go run ./cmd/experiments -subtimeout 20s # per-sub-case timeout inside sweeps
//	go run ./cmd/experiments -retries 1      # retry failed experiments once
//	go run ./cmd/experiments -out FILE       # write markdown to FILE instead of stdout
//	go run ./cmd/experiments -json FILE      # also write machine-readable results
//	go run ./cmd/experiments -list           # list registered experiment IDs
//	go run ./cmd/experiments -cpuprofile cpu.out -memprofile mem.out
//	                                         # capture pprof profiles of the sweep
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"gridroute/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Restore default signal handling once the first signal has cancelled
	// the context: cancellation is cooperative at sub-case boundaries, so a
	// second Ctrl-C must be able to kill a sweep stuck in a long sub-case.
	go func() {
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process-global state: it parses args, streams the
// selected experiments, and returns the exit code (0 success, 1 experiment
// or write failure, 2 usage error, 130 interrupted-with-partial-results).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run the reduced sweep")
	out := fs.String("out", "", "markdown output file (default stdout)")
	runPat := fs.String("run", "", "regexp selecting experiment IDs or tags (default: all)")
	workers := fs.Int("j", runtime.NumCPU(), "bound on concurrent experiments and (separately) on concurrent sub-tasks across all experiments (1 = serial)")
	jsonOut := fs.String("json", "", "also write machine-readable results (e.g. BENCH_experiments.json)")
	list := fs.Bool("list", false, "list registered experiments and exit")
	timeout := fs.Duration("timeout", 0, "per-experiment attempt timeout (0 = none)")
	subTimeout := fs.Duration("subtimeout", 0, "per-sub-case timeout within each experiment's sweep (0 = none; overruns surface as skipped sub-cases)")
	retries := fs.Int("retries", 0, "how many times to re-run a failed experiment")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.Registered() {
			fmt.Fprintf(stdout, "%-8s %s [%s]\n", e.ID, e.Title, strings.Join(e.Tags, " "))
		}
		return 0
	}

	exps, err := experiments.Select(*runPat)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(exps) == 0 {
		fmt.Fprintf(stderr, "no experiments matched -run %q (known IDs: %s; tags: %s)\n",
			*runPat, strings.Join(experiments.IDs(), ", "), strings.Join(experiments.Tags(), ", "))
		return 2
	}

	runner := experiments.Runner{
		Workers: *workers,
		Quick:   *quick,
		Policy:  experiments.Policy{Timeout: *timeout, SubTimeout: *subTimeout, Retries: *retries},
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	var b strings.Builder
	writeHeader(&b, mode)
	toStdout := *out == ""
	if toStdout {
		fmt.Fprint(stdout, b.String())
	}

	// Stream: each result renders (and prints) the moment it arrives; the
	// runner's reorder buffer already delivers canonical order. The channel
	// always drains fully — after SIGINT the unstarted experiments flush
	// through immediately as cancelled results.
	var results []experiments.Result
	var incomplete, failed []string
	for res := range runner.Stream(ctx, exps) {
		results = append(results, res)
		section := ""
		switch {
		case res.Err == nil || errors.Is(res.Err, experiments.ErrSkipped):
			section = res.Report.Markdown()
		case isCancellation(res.Err):
			incomplete = append(incomplete, res.Experiment.ID)
		default:
			failed = append(failed, res.Experiment.ID)
			section = fmt.Sprintf("\n## %s — %s\n\n> ⚠ failed after %d attempt(s): %v\n",
				res.Experiment.ID, res.Experiment.Title, res.Attempts, res.Err)
		}
		b.WriteString(section)
		if toStdout {
			fmt.Fprint(stdout, section)
		}
		fmt.Fprintf(stderr, "%-8s %v%s\n", res.Experiment.ID, res.Duration.Round(time.Millisecond), statusSuffix(res))
	}

	interrupted := ctx.Err() != nil
	if interrupted {
		trailer := fmt.Sprintf("\n> **Sweep interrupted** — %d of %d experiments completed; results above are partial.",
			len(results)-len(incomplete), len(results))
		if len(incomplete) > 0 {
			trailer += fmt.Sprintf(" Not completed: %s.", strings.Join(incomplete, ", "))
		}
		trailer += "\n"
		b.WriteString(trailer)
		if toStdout {
			fmt.Fprint(stdout, trailer)
		}
	}

	// Write the markdown first: it is the primary artifact of a sweep that
	// may have taken minutes, and must survive a failing -json path.
	exit := 0
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	if *jsonOut != "" {
		if err := writeJSONFile(*jsonOut, *quick, *workers, interrupted, results); err != nil {
			fmt.Fprintln(stderr, err)
			exit = 1
		}
	}
	switch {
	case exit != 0:
		// A failed -out/-json flush outranks the interrupt status: exit 130
		// promises "partial results were saved", which would be a lie here.
		return exit
	case interrupted:
		return 130
	case len(failed) > 0:
		fmt.Fprintf(stderr, "failed experiments: %s\n", strings.Join(failed, ", "))
		return 1
	}
	return 0
}

func writeHeader(w io.Writer, mode string) {
	fmt.Fprintf(w, `# EXPERIMENTS — paper vs. measured

Reproduction harness for "Online Packet-Routing in Grids with Bounded
Buffers" (Even & Medina, SPAA 2011). Regenerate with:

    go run ./cmd/experiments > EXPERIMENTS.md

Mode: %s sweep.

**How to read the ratios.** The paper proves competitive ratios against an
adversary's optimal routing; exact integral OPT is NP-hard, so every ratio
below is measured against a *certificate*: either a dual-fitting upper
bound on the fractional optimum (Appendix E weak duality — may overestimate
the true ratio by up to 2× plus the integrality gap) or an instance whose
OPT is known by construction. The claims being checked are the paper's
*shapes*: which algorithm wins, how ratios scale with n, and where the
(B, c) parameter regimes change behaviour — not absolute constants, which
the paper itself leaves astronomically loose (γ = 200, k⁴ tile factors).

The ASCII reproductions of Figures 1–10/12 are printed by `+"`go run ./cmd/viz`"+`;
their structural claims are enforced by unit tests (see DESIGN.md §5).

`, mode)
}

func statusSuffix(res experiments.Result) string {
	var parts []string
	if res.Attempts > 1 {
		parts = append(parts, fmt.Sprintf("%d attempts", res.Attempts))
	}
	switch {
	case res.Err == nil:
	case errors.Is(res.Err, experiments.ErrSkipped):
		parts = append(parts, "partial: "+res.Err.Error())
	case isCancellation(res.Err):
		parts = append(parts, "cancelled")
	default:
		parts = append(parts, "FAILED: "+res.Err.Error())
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, "; ") + ")"
}

// isCancellation reports whether the error is the caller's context being
// cancelled (SIGINT). A per-experiment Policy timeout surfaces as
// context.DeadlineExceeded instead and counts as a failure, not a
// cancellation of the sweep.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled)
}

func writeJSONFile(path string, quick bool, workers int, partial bool, results []experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteJSON(f, quick, workers, partial, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
