// Command benchgate is the enforcing CI perf gate: it compares two raw
// `go test -bench` output files (the committed bench/baseline.txt and the
// run just produced) and fails when a hot-path benchmark's median ns/op
// regressed by more than the threshold.
//
// It is deliberately a median-of-medians comparison, not a statistical
// test: CI runs -count=3 on a pinned GOMAXPROCS=1 runner, which is too few
// samples for benchstat's significance machinery but plenty for a median to
// reject a step-function regression. benchstat remains in CI as the
// advisory, human-readable diff; benchgate is what turns the job red.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline bench/baseline.txt -current bench-current.txt
//	go run ./cmd/benchgate ... -threshold 0.15          # fail above +15% median ns/op
//	go run ./cmd/benchgate ... -filter '^BenchmarkHotPath'
//
// Exit codes: 0 pass, 1 regression (or improvements-only note with -v), 2
// usage/parse error. Benchmarks present in only one file are reported but
// never fail the gate — refreshing the baseline is documented in
// bench/README.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	baseline := fs.String("baseline", "bench/baseline.txt", "committed baseline bench output")
	current := fs.String("current", "", "bench output of the run under test (required)")
	threshold := fs.Float64("threshold", 0.15, "maximum tolerated relative ns/op regression (0.15 = +15%)")
	filter := fs.String("filter", "^Benchmark(HotPath|Thm4DetLine|Thm1IPP|EngineAdmit)",
		"regexp selecting the gated benchmark names")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -threshold must be > 0")
		return 2
	}
	sel, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -filter: %v\n", err)
		return 2
	}

	base, err := loadMedians(*baseline, sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}
	cur, err := loadMedians(*current, sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	compared := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("benchgate: %-45s only in baseline (skipped)\n", name)
			continue
		}
		compared++
		delta := (c - b) / b
		status := "ok"
		if delta > *threshold {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("benchgate: %-45s %12.1f -> %12.1f ns/op  %+6.1f%%  %s\n",
			name, b, c, 100*delta, status)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("benchgate: %-45s new benchmark (not in baseline; refresh per bench/README.md)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark appears in both files — wrong -filter or empty inputs")
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d gated benchmarks regressed beyond +%.0f%% median ns/op\n",
			failed, compared, 100**threshold)
		return 1
	}
	fmt.Printf("benchgate: %d benchmarks within +%.0f%% of baseline\n", compared, 100**threshold)
	return 0
}

// loadMedians parses raw `go test -bench` output and returns the median
// ns/op per benchmark name matching sel. The repo pins GOMAXPROCS=1 for
// gated runs, so names carry no -procs suffix (mirroring cmd/benchjson's
// knownProcs==1 rule) and are compared verbatim.
func loadMedians(path string, sel *regexp.Regexp) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	samples := map[string][]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // "BenchmarkFoo: log output", not a result line
		}
		name := fields[0]
		if !sel.MatchString(name) {
			continue
		}
		// Result lines are "<name> <N> <value> <unit> ..." pairs; pick ns/op.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad ns/op value %q in %q", path, fields[i], line)
			}
			samples[name] = append(samples[name], v)
			break
		}
	}
	out := make(map[string]float64, len(samples))
	for name, vs := range samples {
		sort.Float64s(vs)
		out[name] = vs[len(vs)/2]
		if len(vs)%2 == 0 {
			out[name] = (vs[len(vs)/2-1] + vs[len(vs)/2]) / 2
		}
	}
	return out, nil
}
