package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseOut = `goos: linux
pkg: gridroute
BenchmarkHotPath/DPRunFlat   	   57238	     22457 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPath/DPRunFlat   	   54460	     21680 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPath/DPRunFlat   	   52075	     22233 ns/op	       0 B/op	       0 allocs/op
BenchmarkThm1IPP             	     130	   9385086 ns/op	 1147721 B/op	     941 allocs/op
BenchmarkThm1IPP             	     133	   8987446 ns/op	 1147722 B/op	     941 allocs/op
BenchmarkFigure1Grid         	  100000	      1000 ns/op
PASS
`

func TestLoadMediansPicksMedianAndFilters(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "base.txt", baseOut)
	sel := regexp.MustCompile(`^Benchmark(HotPath|Thm1IPP)`)
	m, err := loadMedians(path, sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkHotPath/DPRunFlat"]; got != 22233 {
		t.Fatalf("odd-count median = %v, want 22233", got)
	}
	// Even sample count: mean of the two central values.
	if got := m["BenchmarkThm1IPP"]; got != (9385086+8987446)/2.0 {
		t.Fatalf("even-count median = %v", got)
	}
	if _, ok := m["BenchmarkFigure1Grid"]; ok {
		t.Fatal("filter must exclude non-gated benchmarks")
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.txt", baseOut)
	cur := writeFile(t, dir, "cur.txt",
		"BenchmarkHotPath/DPRunFlat 50000 24000 ns/op\nBenchmarkThm1IPP 100 9000000 ns/op\n")
	if code := run([]string{"-baseline", base, "-current", cur, "-threshold", "0.15"}); code != 0 {
		t.Fatalf("within-threshold run exited %d, want 0", code)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.txt", baseOut)
	cur := writeFile(t, dir, "cur.txt",
		"BenchmarkHotPath/DPRunFlat 30000 30000 ns/op\nBenchmarkThm1IPP 100 9000000 ns/op\n")
	if code := run([]string{"-baseline", base, "-current", cur, "-threshold", "0.15"}); code != 1 {
		t.Fatalf("+35%% regression exited %d, want 1", code)
	}
}

func TestGateIgnoresMissingAndNewBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.txt", baseOut)
	// DPRunFlat missing from current, a new benchmark appears: neither fails
	// the gate as long as at least one name is shared and within threshold.
	cur := writeFile(t, dir, "cur.txt",
		"BenchmarkThm1IPP 100 9000000 ns/op\nBenchmarkHotPath/Brand/New 1000 5 ns/op\n")
	if code := run([]string{"-baseline", base, "-current", cur}); code != 0 {
		t.Fatalf("missing/new benchmarks exited %d, want 0", code)
	}
}

func TestGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.txt", baseOut)
	if code := run([]string{"-baseline", base}); code != 2 {
		t.Fatal("missing -current must be a usage error")
	}
	empty := writeFile(t, dir, "empty.txt", "PASS\n")
	if code := run([]string{"-baseline", base, "-current", empty}); code != 2 {
		t.Fatal("no shared benchmarks must be a usage error")
	}
}
