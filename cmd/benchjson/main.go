// Command benchjson records benchmark results as a machine-readable perf
// trajectory. It runs `go test -bench` (or parses an existing benchmark
// output file), extracts every metric of every benchmark line (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units like certified-ratio or the
// streaming engine's packets/sec — any value/unit pair, including
// scientific-notation values), and writes or appends a labelled entry to a
// JSON trajectory file such as BENCH_hotpath.json.
//
// Usage:
//
//	go run ./cmd/benchjson -bench 'BenchmarkHotPath|BenchmarkThm1IPP' \
//	    -count 3 -label 'PR4 dense hot path' -out BENCH_hotpath.json -append
//	go run ./cmd/benchjson -input bench.txt -label baseline -out BENCH_hotpath.json
//
// The -rawout flag additionally saves the raw `go test` output, which is the
// input format benchstat consumes — CI uses it for the advisory regression
// diff against the checked-in baseline (see README "Performance").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Run is one benchmark invocation: the iteration count and every reported
// metric keyed by unit (ns/op, B/op, allocs/op, custom units).
type Run struct {
	N       int                `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// Benchmark groups the runs of one benchmark name (several with -count > 1).
type Benchmark struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
}

// Entry is one labelled snapshot of the trajectory.
type Entry struct {
	Label  string `json:"label"`
	Go     string `json:"go,omitempty"`
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS the benchmarks ran at: the child's value when
	// benchjson ran go test itself, otherwise the procs suffix recovered
	// from the result lines. 0 (omitted) means unknown — an -input file
	// with no suffix. Multi-core entries label the trajectory instead of
	// silently losing the suffix to name normalization.
	Procs     int         `json:"procs,omitempty"`
	Count     int         `json:"count,omitempty"`
	Benchtime string      `json:"benchtime,omitempty"`
	Bench     []Benchmark `json:"benchmarks"`
}

// Trajectory is the file format: an append-only sequence of entries, oldest
// first, so the perf history of the hot paths is diffable in-repo.
type Trajectory struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

const schemaID = "gridroute-bench-trajectory/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BenchmarkHotPath|BenchmarkThm4DetLine|BenchmarkThm1IPP|BenchmarkEngineAdmit", "benchmark selection regexp passed to go test")
	pkg := fs.String("pkg", ".", "package to benchmark")
	count := fs.Int("count", 1, "benchmark repetitions (-count)")
	benchtime := fs.String("benchtime", "", "benchmark duration (-benchtime), e.g. 1x or 2s")
	label := fs.String("label", "", "trajectory entry label (required)")
	out := fs.String("out", "", "trajectory JSON file to write (required)")
	appendEntry := fs.Bool("append", false, "append to an existing trajectory instead of overwriting")
	input := fs.String("input", "", "parse this benchmark output file instead of running go test")
	rawout := fs.String("rawout", "", "also save the raw benchmark output (benchstat input format)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *label == "" || *out == "" {
		fmt.Fprintln(stderr, "benchjson: -label and -out are required")
		return 2
	}

	var raw []byte
	// When benchjson runs go test itself, the child inherits this process's
	// GOMAXPROCS, so the exact procs suffix is known (and known absent at
	// GOMAXPROCS=1); -input files fall back to the consistency heuristic.
	knownProcs := 0
	if *input != "" {
		b, err := os.ReadFile(*input)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		raw = b
	} else {
		knownProcs = runtime.GOMAXPROCS(0)
		cmdArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
		}
		cmdArgs = append(cmdArgs, *pkg)
		cmd := exec.Command("go", cmdArgs...)
		cmd.Stderr = stderr
		b, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: go %s: %v\n", strings.Join(cmdArgs, " "), err)
			return 1
		}
		raw = b
	}

	entry, err := parseBench(string(raw), knownProcs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	entry.Label = *label
	entry.Go = runtime.Version()
	entry.Count = *count
	entry.Benchtime = *benchtime

	traj := Trajectory{Schema: schemaID}
	if *appendEntry {
		switch b, err := os.ReadFile(*out); {
		case err == nil:
			if err := json.Unmarshal(b, &traj); err != nil {
				fmt.Fprintf(stderr, "benchjson: existing %s is not a trajectory: %v\n", *out, err)
				return 1
			}
		case !os.IsNotExist(err):
			// Anything but "no trajectory yet" must not silently truncate
			// the append-only history.
			fmt.Fprintln(stderr, err)
			return 1
		}
		traj.Schema = schemaID
	}
	traj.Entries = append(traj.Entries, entry)

	js, err := json.MarshalIndent(&traj, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *rawout != "" {
		if err := os.WriteFile(*rawout, raw, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "benchjson: recorded %d benchmark(s) as %q in %s\n", len(entry.Bench), *label, *out)
	return 0
}

// parseBench extracts environment headers and benchmark result lines from
// `go test -bench` output. Result lines have the form
//
//	BenchmarkName[-procs]  N  value unit  value unit  ...
//
// Every value/unit pair becomes a metric; repeated names (-count > 1)
// accumulate runs under one Benchmark. The GOMAXPROCS suffix is stripped
// only when it is consistent across every result line (and, when
// knownProcs > 0 because the caller ran go test itself, only when it is
// exactly -<knownProcs>; knownProcs 1 means no suffix can exist at all).
func parseBench(out string, knownProcs int) (Entry, error) {
	var e Entry
	type resultLine struct {
		name string
		run  Run
	}
	var lines []resultLine
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			e.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			e.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			e.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			e.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // not a result line (e.g. "BenchmarkFoo: output")
		}
		r := Run{N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return e, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			r.Metrics[fields[i+1]] = v
		}
		lines = append(lines, resultLine{name: fields[0], run: r})
	}
	if len(lines) == 0 {
		return e, fmt.Errorf("benchjson: no benchmark result lines found")
	}
	// Second pass: the GOMAXPROCS suffix is only known once every name has
	// been seen, so grouping by trimmed name must wait for the whole parse.
	names := make([]string, len(lines))
	for i, l := range lines {
		names[i] = l.name
	}
	suffix := commonProcsSuffix(names)
	switch {
	case knownProcs == 1:
		// go test appends nothing at GOMAXPROCS=1: any consistent numeric
		// tail is part of the benchmark names (e.g. a lone size-128 sweep).
		suffix = ""
	case knownProcs > 1:
		// The suffix, if present, can only be the child's GOMAXPROCS.
		if want := fmt.Sprintf("-%d", knownProcs); suffix != want {
			suffix = ""
		}
	}
	// Label the entry with the procs value instead of discarding it with the
	// suffix: known from the child process, else recovered from the names.
	if knownProcs > 0 {
		e.Procs = knownProcs
	} else if suffix != "" {
		e.Procs, _ = strconv.Atoi(suffix[1:])
	}
	byName := map[string]int{}
	for _, l := range lines {
		name := strings.TrimSuffix(l.name, suffix)
		idx, ok := byName[name]
		if !ok {
			idx = len(e.Bench)
			byName[name] = idx
			e.Bench = append(e.Bench, Benchmark{Name: name})
		}
		e.Bench[idx].Runs = append(e.Bench[idx].Runs, l.run)
	}
	sort.SliceStable(e.Bench, func(a, b int) bool { return e.Bench[a].Name < e.Bench[b].Name })
	return e, nil
}

// commonProcsSuffix returns the "-N" GOMAXPROCS suffix shared by every
// result-line name, or "" when there is none. go test appends the same
// GOMAXPROCS value to every benchmark name of a run (and appends nothing
// when GOMAXPROCS is 1), so the suffix is real only when it is consistent
// across all lines. Stripping any trailing -<number> per line — the old
// behaviour — corrupted suffix-free runs: with GOMAXPROCS=1 a sub-benchmark
// like BenchmarkHotPath/size-128 lost its -128 and merged with size-64's
// runs.
//
// Residual -input ambiguity: a GOMAXPROCS=1 file whose every line is the
// same single numeric-named sub-benchmark (only size-128, nothing else) is
// textually indistinguishable from a suffixed run and still strips. When
// benchjson runs go test itself the caller passes the child's GOMAXPROCS
// to parseBench, which closes that hole for the common path.
func commonProcsSuffix(names []string) string {
	suffix := ""
	for i, name := range names {
		j := strings.LastIndexByte(name, '-')
		if j < 0 {
			return ""
		}
		if _, err := strconv.Atoi(name[j+1:]); err != nil {
			return ""
		}
		if i == 0 {
			suffix = name[j:]
		} else if name[j:] != suffix {
			return ""
		}
	}
	return suffix
}
