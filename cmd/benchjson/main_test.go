package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample is a GOMAXPROCS=8 run: go test appends the same -8 to every name.
const sample = `goos: linux
goarch: amd64
pkg: gridroute
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkThm4DetLine-8 	     220	   5836721 ns/op	         1.647 certified-ratio	 1521706 B/op	   80694 allocs/op
BenchmarkThm4DetLine-8 	     182	   6376735 ns/op	         1.647 certified-ratio	 1521706 B/op	   80694 allocs/op
BenchmarkHotPath/PackerOfferDense-8         	24690418	        48.01 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	gridroute	12.104s
`

func TestParseBench(t *testing.T) {
	e, err := parseBench(sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.GOOS != "linux" || e.GOARCH != "amd64" || e.Pkg != "gridroute" {
		t.Fatalf("env headers wrong: %+v", e)
	}
	if !strings.Contains(e.CPU, "Xeon") {
		t.Fatalf("cpu header wrong: %q", e.CPU)
	}
	if len(e.Bench) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(e.Bench))
	}
	// Sorted by name: HotPath first.
	hp := e.Bench[0]
	if hp.Name != "BenchmarkHotPath/PackerOfferDense" {
		t.Fatalf("procs suffix not stripped: %q", hp.Name)
	}
	if e.Procs != 8 {
		t.Fatalf("procs label = %d, want 8 (recovered from the -8 suffix)", e.Procs)
	}
	if len(hp.Runs) != 1 || hp.Runs[0].Metrics["ns/op"] != 48.01 || hp.Runs[0].Metrics["allocs/op"] != 0 {
		t.Fatalf("hotpath run wrong: %+v", hp.Runs)
	}
	thm := e.Bench[1]
	if thm.Name != "BenchmarkThm4DetLine" || len(thm.Runs) != 2 {
		t.Fatalf("count>1 runs not grouped: %+v", thm)
	}
	r := thm.Runs[0]
	if r.N != 220 || r.Metrics["ns/op"] != 5836721 || r.Metrics["certified-ratio"] != 1.647 ||
		r.Metrics["B/op"] != 1521706 || r.Metrics["allocs/op"] != 80694 {
		t.Fatalf("metrics wrong: %+v", r)
	}
}

// Regression: custom b.ReportMetric units ride on the result line as extra
// value/unit pairs — the streaming engine's packets/sec (a unit with a
// slash, large magnitudes, sometimes scientific notation) must land in
// Run.Metrics next to the standard ns/op, B/op and allocs/op.
func TestParseBenchCustomMetrics(t *testing.T) {
	const engineRun = `goos: linux
pkg: gridroute
BenchmarkEngineAdmit/Mixed 	  263941	      1209 ns/op	    827254 packets/sec	       1 B/op	       0 allocs/op
BenchmarkEngineAdmit/Saturated 	 2731760	      1368 ns/op	 1.366e+06 packets/sec	       0 B/op	       0 allocs/op
PASS
`
	e, err := parseBench(engineRun, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Bench) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(e.Bench), e.Bench)
	}
	mixed, sat := e.Bench[0], e.Bench[1]
	if mixed.Name != "BenchmarkEngineAdmit/Mixed" || sat.Name != "BenchmarkEngineAdmit/Saturated" {
		t.Fatalf("names wrong: %q, %q", mixed.Name, sat.Name)
	}
	m := mixed.Runs[0].Metrics
	if m["packets/sec"] != 827254 || m["ns/op"] != 1209 || m["B/op"] != 1 || m["allocs/op"] != 0 {
		t.Fatalf("custom metric lost or mangled: %+v", m)
	}
	if got := sat.Runs[0].Metrics["packets/sec"]; got != 1.366e+06 {
		t.Fatalf("scientific-notation metric = %v, want 1.366e+06", got)
	}
}

// A malformed metric value must fail loudly rather than drop the pair.
func TestParseBenchBadMetricValue(t *testing.T) {
	const bad = `BenchmarkEngineAdmit/Mixed 	 100	 12 ns/op	 fast packets/sec
PASS
`
	if _, err := parseBench(bad, 1); err == nil {
		t.Fatal("expected error on non-numeric metric value")
	}
}

// Regression: with GOMAXPROCS=1 go test emits no procs suffix, so a
// numeric-named sub-benchmark's "-128" is part of its name — stripping it
// would merge size-128's runs into size-64's and corrupt the trajectory.
func TestParseBenchKeepsNumericNamesWithoutProcsSuffix(t *testing.T) {
	const procsFree = `goos: linux
BenchmarkHotPath/size-64 	 1000000	      1042 ns/op
BenchmarkHotPath/size-128 	  500000	      2105 ns/op
BenchmarkHotPath/size-128 	  500000	      2098 ns/op
PASS
`
	e, err := parseBench(procsFree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Bench) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (size-64 and size-128 must not merge): %+v", len(e.Bench), e.Bench)
	}
	if e.Bench[0].Name != "BenchmarkHotPath/size-128" || e.Bench[1].Name != "BenchmarkHotPath/size-64" {
		t.Fatalf("numeric sub-benchmark names mangled: %q, %q", e.Bench[0].Name, e.Bench[1].Name)
	}
	if len(e.Bench[0].Runs) != 2 || len(e.Bench[1].Runs) != 1 {
		t.Fatalf("runs grouped under the wrong name: %+v", e.Bench)
	}
}

// With a real procs suffix the numeric sub-benchmark keeps its own number:
// only the shared trailing -8 comes off.
func TestParseBenchStripsConsistentProcsSuffix(t *testing.T) {
	const suffixed = `BenchmarkHotPath/size-64-8 	 1000000	      1042 ns/op
BenchmarkHotPath/size-128-8 	  500000	      2105 ns/op
BenchmarkThm1IPP-8 	     100	   10042 ns/op
PASS
`
	e, err := parseBench(suffixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkHotPath/size-128", "BenchmarkHotPath/size-64", "BenchmarkThm1IPP"}
	if len(e.Bench) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(e.Bench), len(want))
	}
	for i, w := range want {
		if e.Bench[i].Name != w {
			t.Fatalf("name %d = %q, want %q", i, e.Bench[i].Name, w)
		}
	}
}

// A trailing number that differs between lines (or is missing on any line)
// is not a procs suffix; nothing is stripped.
func TestParseBenchInconsistentSuffixNotStripped(t *testing.T) {
	const mixed = `BenchmarkHotPath/size-128 	  500000	      2105 ns/op
BenchmarkThm4DetLine 	     220	   5836721 ns/op
PASS
`
	e, err := parseBench(mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Bench) != 2 || e.Bench[0].Name != "BenchmarkHotPath/size-128" || e.Bench[1].Name != "BenchmarkThm4DetLine" {
		t.Fatalf("inconsistent suffix must not strip: %+v", e.Bench)
	}
}

// When benchjson ran go test itself, the child's GOMAXPROCS is known: at 1
// no suffix exists, so even a lone numeric-named sub-benchmark (textually
// ambiguous) keeps its number; at N only exactly -N strips.
func TestParseBenchKnownProcs(t *testing.T) {
	const lone = `BenchmarkHotPath/size-128 	  500000	      2105 ns/op
BenchmarkHotPath/size-128 	  500000	      2098 ns/op
PASS
`
	e, err := parseBench(lone, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Bench) != 1 || e.Bench[0].Name != "BenchmarkHotPath/size-128" {
		t.Fatalf("GOMAXPROCS=1 must never strip: %+v", e.Bench)
	}
	if e.Procs != 1 {
		t.Fatalf("known GOMAXPROCS=1 must label procs=1, got %d", e.Procs)
	}

	const suffixed = `BenchmarkHotPath/size-128-8 	  500000	      2105 ns/op
PASS
`
	e, err = parseBench(suffixed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bench[0].Name != "BenchmarkHotPath/size-128" {
		t.Fatalf("known -8 suffix must strip: %q", e.Bench[0].Name)
	}
	if e.Procs != 8 {
		t.Fatalf("multi-core run must label procs=8, got %d", e.Procs)
	}
	// A consistent number that is not the known GOMAXPROCS is part of the
	// name.
	e, err = parseBench(suffixed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bench[0].Name != "BenchmarkHotPath/size-128-8" {
		t.Fatalf("suffix -8 is not GOMAXPROCS=4, must not strip: %q", e.Bench[0].Name)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench("PASS\nok x 1s\n", 0); err == nil {
		t.Fatal("expected error on output with no benchmarks")
	}
}

func TestRunInputAndAppend(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "traj.json")
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if code := run([]string{"-input", in, "-label", "baseline", "-out", out, "-rawout", raw}, &sb, &sb); code != 0 {
		t.Fatalf("run exit %d: %s", code, sb.String())
	}
	if code := run([]string{"-input", in, "-label", "after", "-out", out, "-append"}, &sb, &sb); code != 0 {
		t.Fatalf("append run exit %d: %s", code, sb.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(b, &traj); err != nil {
		t.Fatal(err)
	}
	if traj.Schema != schemaID {
		t.Fatalf("schema = %q", traj.Schema)
	}
	if len(traj.Entries) != 2 || traj.Entries[0].Label != "baseline" || traj.Entries[1].Label != "after" {
		t.Fatalf("trajectory entries wrong: %+v", traj.Entries)
	}
	rb, err := os.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(rb) != sample {
		t.Fatal("rawout does not preserve the benchstat input")
	}
}

func TestRunRequiresLabelAndOut(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-input", "x"}, &sb, &sb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestAppendRefusesUnreadableTrajectory(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("permission bits are ineffective as root")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "traj.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, []byte(`{"schema":"x","entries":[]}`), 0o000); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if code := run([]string{"-input", in, "-label", "x", "-out", out, "-append"}, &sb, &sb); code != 1 {
		t.Fatalf("exit %d, want 1 (must not truncate an unreadable trajectory)", code)
	}
}
