package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gridroute
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkThm4DetLine 	     220	   5836721 ns/op	         1.647 certified-ratio	 1521706 B/op	   80694 allocs/op
BenchmarkThm4DetLine 	     182	   6376735 ns/op	         1.647 certified-ratio	 1521706 B/op	   80694 allocs/op
BenchmarkHotPath/PackerOfferDense-8         	24690418	        48.01 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	gridroute	12.104s
`

func TestParseBench(t *testing.T) {
	e, err := parseBench(sample)
	if err != nil {
		t.Fatal(err)
	}
	if e.GOOS != "linux" || e.GOARCH != "amd64" || e.Pkg != "gridroute" {
		t.Fatalf("env headers wrong: %+v", e)
	}
	if !strings.Contains(e.CPU, "Xeon") {
		t.Fatalf("cpu header wrong: %q", e.CPU)
	}
	if len(e.Bench) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(e.Bench))
	}
	// Sorted by name: HotPath first.
	hp := e.Bench[0]
	if hp.Name != "BenchmarkHotPath/PackerOfferDense" {
		t.Fatalf("procs suffix not stripped: %q", hp.Name)
	}
	if len(hp.Runs) != 1 || hp.Runs[0].Metrics["ns/op"] != 48.01 || hp.Runs[0].Metrics["allocs/op"] != 0 {
		t.Fatalf("hotpath run wrong: %+v", hp.Runs)
	}
	thm := e.Bench[1]
	if thm.Name != "BenchmarkThm4DetLine" || len(thm.Runs) != 2 {
		t.Fatalf("count>1 runs not grouped: %+v", thm)
	}
	r := thm.Runs[0]
	if r.N != 220 || r.Metrics["ns/op"] != 5836721 || r.Metrics["certified-ratio"] != 1.647 ||
		r.Metrics["B/op"] != 1521706 || r.Metrics["allocs/op"] != 80694 {
		t.Fatalf("metrics wrong: %+v", r)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench("PASS\nok x 1s\n"); err == nil {
		t.Fatal("expected error on output with no benchmarks")
	}
}

func TestRunInputAndAppend(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "traj.json")
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if code := run([]string{"-input", in, "-label", "baseline", "-out", out, "-rawout", raw}, &sb, &sb); code != 0 {
		t.Fatalf("run exit %d: %s", code, sb.String())
	}
	if code := run([]string{"-input", in, "-label", "after", "-out", out, "-append"}, &sb, &sb); code != 0 {
		t.Fatalf("append run exit %d: %s", code, sb.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(b, &traj); err != nil {
		t.Fatal(err)
	}
	if traj.Schema != schemaID {
		t.Fatalf("schema = %q", traj.Schema)
	}
	if len(traj.Entries) != 2 || traj.Entries[0].Label != "baseline" || traj.Entries[1].Label != "after" {
		t.Fatalf("trajectory entries wrong: %+v", traj.Entries)
	}
	rb, err := os.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(rb) != sample {
		t.Fatal("rawout does not preserve the benchstat input")
	}
}

func TestRunRequiresLabelAndOut(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"-input", "x"}, &sb, &sb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestAppendRefusesUnreadableTrajectory(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("permission bits are ineffective as root")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "traj.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, []byte(`{"schema":"x","entries":[]}`), 0o000); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if code := run([]string{"-input", in, "-label", "x", "-out", out, "-append"}, &sb, &sb); code != 1 {
		t.Fatalf("exit %d, want 1 (must not truncate an unreadable trajectory)", code)
	}
}
