package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func decodeMetrics(t *testing.T, out []byte) metrics {
	t.Helper()
	var m metrics
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, out)
	}
	return m
}

func TestRunCompleteStream(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-scenario", "uniform", "-p", "n=32", "-p", "reqs=80", "-p", "maxt=64",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	m := decodeMetrics(t, out.Bytes())
	if m.Partial {
		t.Fatal("complete stream marked partial")
	}
	if m.Requests != 80 || m.Accepted == 0 || m.Throughput == 0 {
		t.Fatalf("implausible metrics: %+v", m)
	}
	if m.Accepted+m.RejectedCost+m.RejectedNoRoute+m.RejectedInvalid != uint64(m.Requests) {
		t.Fatalf("decided packets don't cover the stream: %+v", m)
	}
	if m.ReplayViolations != 0 {
		t.Fatalf("replay violations on a correct run: %+v", m)
	}
}

// TestRunProducersDeterministic checks the InOrder engine makes the service
// metrics independent of producer parallelism (queue-full retries aside).
func TestRunProducersDeterministic(t *testing.T) {
	results := make([]metrics, 2)
	for i, producers := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		code := run(context.Background(), []string{
			"-scenario", "zipf-hotspot", "-p", "n=32", "-p", "reqs=120", "-p", "maxt=64",
			"-producers", producers,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("producers=%s: exit %d, stderr:\n%s", producers, code, errb.String())
		}
		results[i] = decodeMetrics(t, out.Bytes())
	}
	a, b := results[0], results[1]
	if a.Accepted != b.Accepted || a.Throughput != b.Throughput || a.MaxLoad != b.MaxLoad || a.PrimalValue != b.PrimalValue {
		t.Fatalf("metrics depend on producer count:\n1: %+v\n4: %+v", a, b)
	}
}

// TestRunInterruptedMidStream cancels the feed context mid-stream (the
// SIGINT path) and checks the graceful drain: exit 130 plus a valid partial
// metrics document whose counters are internally consistent.
func TestRunInterruptedMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	var out, errb bytes.Buffer
	// The throttle paces the feed so the cancel reliably lands mid-stream.
	code := run(ctx, []string{
		"-scenario", "uniform", "-p", "n=32", "-p", "reqs=500", "-p", "maxt=256",
		"-throttle", "5ms", "-stats", "50ms",
	}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130; stderr:\n%s", code, errb.String())
	}
	m := decodeMetrics(t, out.Bytes())
	if !m.Partial {
		t.Fatal("interrupted stream not marked partial")
	}
	decided := m.Accepted + m.RejectedCost + m.RejectedNoRoute + m.RejectedInvalid
	if decided == 0 || decided >= uint64(m.Requests) {
		t.Fatalf("interrupt did not land mid-stream: decided %d of %d", decided, m.Requests)
	}
	if m.ReplayViolations != 0 {
		t.Fatalf("partial run has replay violations: %+v", m)
	}
	if !strings.Contains(errb.String(), "partial: interrupted") {
		t.Fatalf("summary line missing interrupt note:\n%s", errb.String())
	}
}

// TestRunWALRecoveryMidStream interrupts a journaled run mid-stream, then
// restarts it against the same WAL: the second run must recover the logged
// prefix, resume at the first undecided packet, and leave a decision log
// byte-identical to an uninterrupted reference run.
func TestRunWALRecoveryMidStream(t *testing.T) {
	dir := t.TempDir()
	refLog := filepath.Join(dir, "ref.declog")
	wal := filepath.Join(dir, "run.wal")
	mergedLog := filepath.Join(dir, "merged.declog")
	scenarioArgs := []string{"-scenario", "uniform", "-p", "n=32", "-p", "reqs=400", "-p", "maxt=256"}

	var out, errb bytes.Buffer
	if code := run(context.Background(), append(scenarioArgs, "-declog", refLog), &out, &errb); code != 0 {
		t.Fatalf("reference run: exit %d, stderr:\n%s", code, errb.String())
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	out.Reset()
	errb.Reset()
	// -wal-sync 1 makes the interrupted prefix fully durable; the CI chaos
	// job covers the batched-fsync torn-tail shape with a real kill -9.
	code := run(ctx, append(scenarioArgs, "-wal", wal, "-wal-sync", "1", "-throttle", "2ms"), &out, &errb)
	if code != 130 {
		t.Fatalf("interrupted run: exit %d, want 130; stderr:\n%s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run(context.Background(), append(scenarioArgs, "-wal", wal, "-declog", mergedLog), &out, &errb); code != 0 {
		t.Fatalf("recovery run: exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "recovered ") {
		t.Fatalf("recovery run did not report a recovery:\n%s", errb.String())
	}
	m := decodeMetrics(t, out.Bytes())
	if m.Recovered == 0 || m.Recovered >= uint64(m.Requests) {
		t.Fatalf("recovery did not land mid-stream: recovered %d of %d", m.Recovered, m.Requests)
	}
	ref, err := os.ReadFile(refLog)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(mergedLog)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, merged) {
		t.Fatal("merged decision log diverges from the uninterrupted reference")
	}
}

// TestRunFaultSchedule smokes the chaos flags: a storm/pause schedule must
// leave the stream fully decided with the same admissions as a clean run.
func TestRunFaultSchedule(t *testing.T) {
	scenarioArgs := []string{"-scenario", "uniform", "-p", "n=32", "-p", "reqs=120", "-p", "maxt=64"}
	var out, errb bytes.Buffer
	if code := run(context.Background(), scenarioArgs, &out, &errb); code != 0 {
		t.Fatalf("clean run: exit %d, stderr:\n%s", code, errb.String())
	}
	clean := decodeMetrics(t, out.Bytes())

	out.Reset()
	errb.Reset()
	code := run(context.Background(), append(scenarioArgs,
		"-producers", "4", "-queue", "16",
		"-faults", "storm(seq=20,n=30,count=2);pause(seq=60,n=3,dur=200us);stall(seq=5,n=2,dur=300us)",
	), &out, &errb)
	if code != 0 {
		t.Fatalf("chaos run: exit %d, stderr:\n%s", code, errb.String())
	}
	m := decodeMetrics(t, out.Bytes())
	if m.RejectedQueueFull == 0 {
		t.Fatal("storm injected no queue-full bounces")
	}
	if m.Accepted != clean.Accepted || m.Throughput != clean.Throughput || m.PrimalValue != clean.PrimalValue {
		t.Fatalf("chaos changed decisions:\nclean: %+v\nchaos: %+v", clean, m)
	}
	if m.Accepted+m.RejectedCost+m.RejectedNoRoute+m.RejectedInvalid+m.Shed != uint64(m.Requests) {
		t.Fatalf("stream not fully decided: %+v", m)
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "no-such-scenario"},
		{"-p", "notakeyval"},
		{"-producers", "0"},
		{"-faults", "storm(seq=1)", "-fault-seed", "7"},
		{"-faults", "bogus(x=1)"},
	} {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}
