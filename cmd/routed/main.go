// Command routed runs the streaming admission engine as a long-lived
// service: a scenario's request stream is fed packet by packet — optionally
// from several concurrent producers — through internal/engine, which routes
// each packet the moment it arrives against a warm space-time sketch. Live
// accepted/rejected/latency counters go to stderr while the stream runs.
//
// On SIGINT (or SIGTERM) the engine drains gracefully: producers stop
// feeding, every queued and parked packet is still decided, detailed routing
// runs over the admitted set, and the metrics JSON is written with
// "partial": true before the process exits 130. A completed stream exits 0.
//
// Every delivered schedule is re-verified one packet at a time through
// netsim's incremental replayer — the same admit-order the engine saw — and
// the violation count is part of the metrics (a correct run reports 0).
//
// Usage examples:
//
//	go run ./cmd/routed -scenario uniform -stats 1s
//	go run ./cmd/routed -scenario zipf-hotspot -p reqs=5000 -producers 4 -json metrics.json
//	go run ./cmd/routed -scenario convoy -queue 64 -throttle 2ms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gridroute/internal/core"
	"gridroute/internal/engine"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
)

// paramFlags collects repeated -p key=val overrides.
type paramFlags map[string]float64

func (p paramFlags) String() string { return "" }

func (p paramFlags) Set(s string) error {
	key, val, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=val, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("parameter %s: %v", key, err)
	}
	p[key] = v
	return nil
}

// metrics is the service's JSON output: the engine's final counters plus the
// routing result and its incremental replay verdict. Partial marks an
// interrupted stream (the numbers are still internally consistent — they
// cover exactly the packets decided before the drain finished).
type metrics struct {
	Scenario  string `json:"scenario"`
	GridDims  []int  `json:"grid_dims"`
	B         int    `json:"b"`
	C         int    `json:"c"`
	Requests  int    `json:"requests"`
	Producers int    `json:"producers"`
	Horizon   int64  `json:"horizon"`
	PMax      int    `json:"pmax"`
	K         int    `json:"k"`

	Submitted         uint64 `json:"submitted"`
	Accepted          uint64 `json:"accepted"`
	RejectedCost      uint64 `json:"rejected_cost"`
	RejectedNoRoute   uint64 `json:"rejected_no_route"`
	RejectedInvalid   uint64 `json:"rejected_invalid"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	// Retries counts producer re-submissions after queue-full rejections;
	// each retry is also one Submitted.
	Retries   uint64 `json:"backpressure_retries"`
	AvgWaitNs int64  `json:"avg_wait_ns"`

	// Speculation counters (all zero when -spec-workers is 0). Speculated =
	// SpecCommitted + SpecAborted; SpecRetried ≤ SpecAborted counts inline
	// serial re-decisions after a conflict.
	SpecWorkers   int    `json:"spec_workers"`
	Speculated    uint64 `json:"speculated"`
	SpecCommitted uint64 `json:"spec_committed"`
	SpecAborted   uint64 `json:"spec_aborted"`
	SpecRetried   uint64 `json:"spec_retried"`

	Throughput       int     `json:"throughput"`
	ReachedLastTile  int     `json:"reached_last_tile"`
	MaxLoad          float64 `json:"max_load"`
	LoadBound        float64 `json:"load_bound"`
	PrimalValue      float64 `json:"primal_value"`
	ReplayViolations int     `json:"replay_violations"`

	Partial bool `json:"partial"`
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	// Restore default signal handling once the first signal has cancelled
	// the context, so a second ^C kills a stuck drain immediately.
	go func() {
		<-ctx.Done()
		stop()
	}()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is main minus process-global state: it streams the scenario through
// the engine and returns the exit code (0 complete, 1 runtime error, 2 usage
// error, 130 interrupted-with-partial-metrics). Cancelling ctx triggers the
// graceful drain.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sc := fs.String("scenario", "uniform", "workload scenario ID feeding the engine")
	params := paramFlags{}
	fs.Var(params, "p", "scenario parameter override key=val (repeatable)")
	seed := fs.Int64("seed", 0, "scenario seed (0 = scenario default stream)")
	producers := fs.Int("producers", 1, "concurrent producer goroutines feeding the engine")
	queue := fs.Int("queue", engine.DefaultQueue, "admission queue bound (full queue = backpressure reject)")
	throttle := fs.Duration("throttle", 0, "pause between submissions per producer (paces the feed)")
	statsEvery := fs.Duration("stats", 0, "live counter interval on stderr (0 = off)")
	jsonPath := fs.String("json", "", "write the metrics JSON to this file instead of stdout")
	dpWorkers := fs.Int("dp-workers", runtime.NumCPU(), "wavefront workers for the admission DP (1 = serial; decisions are identical at any setting)")
	specWorkers := fs.Int("spec-workers", 0, "speculative admission workers (0 = serial consumer loop; decisions are identical at any setting)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *producers < 1 {
		fmt.Fprintln(stderr, "routed: -producers must be ≥ 1")
		return 2
	}
	if *seed != 0 {
		if int64(float64(*seed)) != *seed {
			fmt.Fprintf(stderr, "seed %d exceeds exact float64 range (±2^53); pick a smaller seed\n", *seed)
			return 2
		}
		if _, dup := params["seed"]; !dup {
			params["seed"] = float64(*seed)
		}
	}

	stream, err := scenario.NewStream(*sc, params)
	if err != nil {
		// Unknown scenarios and bad parameters are usage errors; the
		// message already lists the valid choices.
		fmt.Fprintln(stderr, err)
		return 2
	}
	g, reqs := stream.Grid(), stream.Requests()
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	pmax := core.PMaxDet(g)
	eng, err := engine.New(g, engine.Options{
		Horizon: horizon, PMax: pmax,
		Queue: *queue, ExpectPackets: len(reqs),
		// InOrder keeps the decision sequence (and therefore every metric
		// below) independent of producer interleaving.
		InOrder:     true,
		DPWorkers:   *dpWorkers,
		SpecWorkers: *specWorkers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "routed:", err)
		return 1
	}
	_, _, k := eng.Params()
	fmt.Fprintf(stderr, "routed: %s — %d requests, grid %v B=%d c=%d, horizon %d, pmax %d, k %d, queue %d, %d producer(s)\n",
		*sc, len(reqs), g.Dims, g.B, g.C, horizon, pmax, k, *queue, *producers)

	var retries atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < *producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Strided partition: producer p owns seqs p, p+P, p+2P, …,
			// submitted in increasing order, so the engine's in-order
			// consumer always has a live owner for the next seq.
			for i := p; i < len(reqs); i += *producers {
				pkt := engine.PacketOf(&reqs[i])
				for {
					dec, err := eng.Admit(ctx, pkt)
					if err != nil {
						return // interrupted or closed: stop feeding
					}
					if dec.Verdict != engine.RejectedQueueFull {
						break
					}
					// Backpressure: the bounded queue bounced the packet;
					// retry after a short pause, like a paced ingress port.
					retries.Add(1)
					select {
					case <-ctx.Done():
						return
					case <-time.After(200 * time.Microsecond):
					}
				}
				if *throttle > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(*throttle):
					}
				}
			}
		}(p)
	}

	statsDone := make(chan struct{})
	statsExited := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			defer close(statsExited)
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-statsDone:
					return
				case <-tick.C:
					s := eng.Stats()
					spec := ""
					if *specWorkers > 0 {
						spec = fmt.Sprintf(" spec=%d/%d aborted=%d retried=%d",
							s.SpecCommitted, s.Speculated, s.SpecAborted, s.SpecRetried)
					}
					fmt.Fprintf(stderr, "routed: t=%s submitted=%d accepted=%d rejected=%d queue=%d avg-wait=%s%s\n",
						time.Since(start).Round(time.Millisecond), s.Submitted, s.Accepted, s.Rejected(), s.QueueLen, s.AvgWait, spec)
				}
			}
		}()
	} else {
		close(statsExited)
	}

	wg.Wait()
	close(statsDone)
	// Wait the ticker out: a tick mid-print must not interleave with the
	// summary below (stderr may be a plain buffer under test).
	<-statsExited
	interrupted := ctx.Err() != nil

	// Graceful drain: decide everything queued or parked, then run detailed
	// routing. A fresh context bounds the drain so a wedged consumer cannot
	// hang the shutdown.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := eng.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "routed: drain:", err)
		return 1
	}
	res, err := eng.Finish()
	if err != nil {
		fmt.Fprintln(stderr, "routed:", err)
		return 1
	}

	// Re-verify the delivered schedules packet by packet, in admission
	// order, against the real link/buffer capacities.
	violations := 0
	if len(res.Admitted) > 0 {
		minT, maxT := res.Horizon, int64(0)
		for _, s := range res.Schedules {
			if s == nil {
				continue
			}
			if s.StartT < minT {
				minT = s.StartT
			}
			if end := s.StartT + int64(len(s.Moves)); end > maxT {
				maxT = end
			}
		}
		inc := netsim.NewIncremental(g, netsim.Model1, minT, maxT)
		for j, s := range res.Schedules {
			if s != nil {
				inc.Add(res.Admitted[j].Req, s)
			}
		}
		violations = len(inc.Violations())
	}

	s := res.Stats
	m := metrics{
		Scenario: *sc, GridDims: g.Dims, B: g.B, C: g.C,
		Requests: len(reqs), Producers: *producers,
		Horizon: res.Horizon, PMax: res.PMax, K: res.K,
		Submitted: s.Submitted, Accepted: s.Accepted,
		RejectedCost: s.RejectedCost, RejectedNoRoute: s.RejectedNoRoute,
		RejectedInvalid: s.RejectedInvalid, RejectedQueueFull: s.RejectedQueueFull,
		Retries: retries.Load(), AvgWaitNs: int64(s.AvgWait),
		SpecWorkers: *specWorkers, Speculated: s.Speculated,
		SpecCommitted: s.SpecCommitted, SpecAborted: s.SpecAborted,
		SpecRetried: s.SpecRetried,
		Throughput:  res.Throughput, ReachedLastTile: res.ReachedLastTile,
		MaxLoad: res.MaxLoad, LoadBound: res.LoadBound, PrimalValue: res.PrimalValue,
		ReplayViolations: violations,
		Partial:          interrupted,
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "routed:", err)
		return 1
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(stderr, "routed:", err)
			return 1
		}
	} else {
		if _, err := stdout.Write(out); err != nil {
			fmt.Fprintln(stderr, "routed:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "routed: done in %s — decided %d/%d, accepted %d, delivered %d, replay violations %d%s\n",
		time.Since(start).Round(time.Millisecond), s.Decided(), len(reqs), s.Accepted, res.Throughput, violations,
		map[bool]string{true: " (partial: interrupted)", false: ""}[interrupted])
	if interrupted {
		return 130
	}
	return 0
}
