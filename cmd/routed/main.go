// Command routed runs the streaming admission engine as a long-lived
// service: a scenario's request stream is fed packet by packet — optionally
// from several concurrent producers — through internal/engine, which routes
// each packet the moment it arrives against a warm space-time sketch. Live
// accepted/rejected/latency counters go to stderr while the stream runs.
//
// On SIGINT (or SIGTERM) the engine drains gracefully: producers stop
// feeding, every queued and parked packet is still decided, detailed routing
// runs over the admitted set, and the metrics JSON is written with
// "partial": true before the process exits 130. A completed stream exits 0.
//
// Every delivered schedule is re-verified one packet at a time through
// netsim's incremental replayer — the same admit-order the engine saw — and
// the violation count is part of the metrics (a correct run reports 0).
//
// Fault tolerance: -wal journals every decision to a checksummed write-ahead
// log and, when the log already exists, recovers from it first — replaying
// the logged prefix to rebuild engine state and resuming the stream at the
// first undecided packet, so a kill -9 mid-stream costs nothing but a
// restart. -faults/-fault-seed wire a deterministic chaos schedule (producer
// stalls and panics, queue-full storms, consumer pauses, mid-Admit
// cancellations, space-time resource outages) into the run, and -shed-*
// enable graceful overload degradation.
//
// Usage examples:
//
//	go run ./cmd/routed -scenario uniform -stats 1s
//	go run ./cmd/routed -scenario zipf-hotspot -p reqs=5000 -producers 4 -json metrics.json
//	go run ./cmd/routed -scenario convoy -queue 64 -throttle 2ms
//	go run ./cmd/routed -scenario uniform -wal run.wal -declog run.declog
//	go run ./cmd/routed -scenario uniform -faults 'storm(seq=100,n=40,count=2);pause(seq=200,n=4,dur=1ms)'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gridroute/internal/core"
	"gridroute/internal/engine"
	"gridroute/internal/fault"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
)

// metrics is the service's JSON output: the engine's final counters plus the
// routing result and its incremental replay verdict. Partial marks an
// interrupted stream (the numbers are still internally consistent — they
// cover exactly the packets decided before the drain finished).
type metrics struct {
	Scenario  string `json:"scenario"`
	GridDims  []int  `json:"grid_dims"`
	B         int    `json:"b"`
	C         int    `json:"c"`
	Requests  int    `json:"requests"`
	Producers int    `json:"producers"`
	Horizon   int64  `json:"horizon"`
	PMax      int    `json:"pmax"`
	K         int    `json:"k"`

	Submitted         uint64 `json:"submitted"`
	Accepted          uint64 `json:"accepted"`
	RejectedCost      uint64 `json:"rejected_cost"`
	RejectedNoRoute   uint64 `json:"rejected_no_route"`
	RejectedInvalid   uint64 `json:"rejected_invalid"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	// Shed counts packets dropped by the overload policy; Recovered counts
	// decisions replayed from the WAL instead of re-decided.
	Shed      uint64 `json:"shed"`
	Recovered uint64 `json:"recovered"`
	// Retries counts producer re-submissions after queue-full rejections;
	// each retry is also one Submitted.
	Retries   uint64 `json:"backpressure_retries"`
	AvgWaitNs int64  `json:"avg_wait_ns"`

	// Speculation counters (all zero when -spec-workers is 0). Speculated =
	// SpecCommitted + SpecAborted; SpecRetried ≤ SpecAborted counts inline
	// serial re-decisions after a conflict.
	SpecWorkers   int    `json:"spec_workers"`
	Speculated    uint64 `json:"speculated"`
	SpecCommitted uint64 `json:"spec_committed"`
	SpecAborted   uint64 `json:"spec_aborted"`
	SpecRetried   uint64 `json:"spec_retried"`

	Throughput       int     `json:"throughput"`
	ReachedLastTile  int     `json:"reached_last_tile"`
	MaxLoad          float64 `json:"max_load"`
	LoadBound        float64 `json:"load_bound"`
	PrimalValue      float64 `json:"primal_value"`
	ReplayViolations int     `json:"replay_violations"`

	Partial bool `json:"partial"`
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	// Restore default signal handling once the first signal has cancelled
	// the context, so a second ^C kills a stuck drain immediately.
	go func() {
		<-ctx.Done()
		stop()
	}()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is main minus process-global state: it streams the scenario through
// the engine and returns the exit code (0 complete, 1 runtime error, 2 usage
// error, 130 interrupted-with-partial-metrics). Cancelling ctx triggers the
// graceful drain.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sc := fs.String("scenario", "uniform", "workload scenario ID feeding the engine")
	params := scenario.ParamFlags{}
	fs.Var(params, "p", "scenario parameter override key=val (repeatable)")
	seed := fs.Int64("seed", 0, "scenario seed (0 = scenario default stream)")
	producers := fs.Int("producers", 1, "concurrent producer goroutines feeding the engine")
	queue := fs.Int("queue", engine.DefaultQueue, "admission queue bound (full queue = backpressure reject)")
	throttle := fs.Duration("throttle", 0, "pause between submissions per producer (paces the feed)")
	statsEvery := fs.Duration("stats", 0, "live counter interval on stderr (0 = off)")
	jsonPath := fs.String("json", "", "write the metrics JSON to this file instead of stdout")
	dpWorkers := fs.Int("dp-workers", runtime.NumCPU(), "wavefront workers for the admission DP (1 = serial; decisions are identical at any setting)")
	specWorkers := fs.Int("spec-workers", 0, "speculative admission workers (0 = serial consumer loop; decisions are identical at any setting)")
	walPath := fs.String("wal", "", "write-ahead decision log path; an existing non-empty log is recovered first")
	walSync := fs.Int("wal-sync", 0, "WAL fsync batch size in decisions (0 = default)")
	declogPath := fs.String("declog", "", "write the final decision log (seq verdict cost tiles per line) to this file")
	faults := fs.String("faults", "", "deterministic fault schedule, e.g. 'stall(seq=10,n=4,dur=1ms);storm(seq=50,n=20,count=2)'")
	faultSeed := fs.Int64("fault-seed", 0, "generate a random deterministic fault schedule from this seed (exclusive with -faults)")
	gapTimeout := fs.Duration("gap-timeout", 0, "InOrder gap watchdog: skip a missing seq after this long (0 = wait for drain)")
	shedHigh := fs.Float64("shed-high", 0, "enable overload shedding at this queue-occupancy fraction (0 = shedding off)")
	shedSlack := fs.Int64("shed-slack", 0, "with shedding on, shed packets under pressure whose deadline slack is below this")
	shedFloor := fs.Float64("shed-floor", 0, "with shedding on, lowest adaptive admission threshold (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *producers < 1 {
		fmt.Fprintln(stderr, "routed: -producers must be ≥ 1")
		return 2
	}
	if *seed != 0 {
		if int64(float64(*seed)) != *seed {
			fmt.Fprintf(stderr, "seed %d exceeds exact float64 range (±2^53); pick a smaller seed\n", *seed)
			return 2
		}
		if _, dup := params["seed"]; !dup {
			params["seed"] = float64(*seed)
		}
	}
	if *faults != "" && *faultSeed != 0 {
		fmt.Fprintln(stderr, "routed: -faults and -fault-seed are exclusive")
		return 2
	}

	stream, err := scenario.NewStream(*sc, params)
	if err != nil {
		// Unknown scenarios and bad parameters are usage errors; the
		// message already lists the valid choices.
		fmt.Fprintln(stderr, err)
		return 2
	}
	g, reqs := stream.Grid(), stream.Requests()
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	pmax := core.PMaxDet(g)

	var inj *fault.Injector
	if *faults != "" || *faultSeed != 0 {
		sched := fault.Rand(*faultSeed, len(reqs), horizon, g.Dims)
		if *faults != "" {
			sched, err = fault.Parse(*faults)
			if err != nil {
				fmt.Fprintln(stderr, "routed:", err)
				return 2
			}
		}
		inj = fault.NewInjector(sched)
		fmt.Fprintf(stderr, "routed: fault schedule: %s\n", sched)
	}
	var shed *engine.ShedPolicy
	if *shedHigh > 0 || *shedSlack > 0 || *shedFloor > 0 {
		shed = &engine.ShedPolicy{HighWater: *shedHigh, MinSlack: *shedSlack, Floor: *shedFloor}
	}

	opts := engine.Options{
		Horizon: horizon, PMax: pmax,
		Queue: *queue, ExpectPackets: len(reqs),
		// InOrder keeps the decision sequence (and therefore every metric
		// below) independent of producer interleaving.
		InOrder:         true,
		DPWorkers:       *dpWorkers,
		SpecWorkers:     *specWorkers,
		RecordDecisions: *declogPath != "",
		GapTimeout:      *gapTimeout,
		Injector:        inj,
		Shed:            shed,
		WALPath:         *walPath,
		WALSyncEvery:    *walSync,
	}

	// With a WAL configured, an existing non-empty log means a previous run
	// died mid-stream: recover from it instead of starting over. The replay
	// rebuilds engine state decision by decision; producers then resume at
	// the first sequence number the log does not cover.
	var eng *engine.Engine
	startSeq := 0
	if *walPath != "" {
		if fi, serr := os.Stat(*walPath); serr == nil && fi.Size() > 0 {
			var rec engine.Recovery
			eng, rec, err = engine.Recover(g, opts)
			if err != nil {
				fmt.Fprintln(stderr, "routed: recover:", err)
				return 1
			}
			startSeq = rec.NextSeq
			fmt.Fprintf(stderr, "routed: recovered %d decisions from %s (%d torn bytes dropped), resuming at seq %d\n",
				rec.Decisions, *walPath, rec.Truncated, startSeq)
		}
	}
	if eng == nil {
		eng, err = engine.New(g, opts)
		if err != nil {
			fmt.Fprintln(stderr, "routed:", err)
			return 1
		}
	}
	_, _, k := eng.Params()
	fmt.Fprintf(stderr, "routed: %s — %d requests, grid %v B=%d c=%d, horizon %d, pmax %d, k %d, queue %d, %d producer(s)\n",
		*sc, len(reqs), g.Dims, g.B, g.C, horizon, pmax, k, *queue, *producers)

	var retries atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now() //gridlint:allow operator-facing elapsed-time stat; decisions key on seq/arrival
	for p := 0; p < *producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Producer-local jitter source: backoff spreading only — routing
			// decisions never see it.
			jit := rand.New(rand.NewSource(int64(p) + 1)) //gridlint:allow seeded per-producer backoff jitter; routing decisions never see it
			// Strided partition: producer p owns seqs p, p+P, p+2P, …,
			// submitted in increasing order, so the engine's in-order
			// consumer always has a live owner for the next seq.
			for i := p; i < len(reqs); i += *producers {
				if i < startSeq {
					continue // already decided by the recovered WAL prefix
				}
				if !produceOne(ctx, eng, inj, &reqs[i], jit, &retries, stderr) {
					return // interrupted or closed: stop feeding
				}
				if *throttle > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(*throttle): //gridlint:allow operator-requested submit throttle; pacing only, not a decision input
					}
				}
			}
		}(p)
	}

	statsDone := make(chan struct{})
	statsExited := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			defer close(statsExited)
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-statsDone:
					return
				case <-tick.C:
					s := eng.Stats()
					extra := ""
					if *specWorkers > 0 {
						extra += fmt.Sprintf(" spec=%d/%d aborted=%d retried=%d",
							s.SpecCommitted, s.Speculated, s.SpecAborted, s.SpecRetried)
					}
					if shed != nil || s.Shed > 0 {
						extra += fmt.Sprintf(" shed=%d", s.Shed)
					}
					if s.Recovered > 0 {
						extra += fmt.Sprintf(" recovered=%d", s.Recovered)
					}
					//gridlint:allow progress-line elapsed time; display only
					fmt.Fprintf(stderr, "routed: t=%s submitted=%d accepted=%d rejected=%d retried=%d queue=%d avg-wait=%s%s\n",
						time.Since(start).Round(time.Millisecond), s.Submitted, s.Accepted, s.Rejected(), retries.Load(), s.QueueLen, s.AvgWait, extra)
				}
			}
		}()
	} else {
		close(statsExited)
	}

	wg.Wait()
	close(statsDone)
	// Wait the ticker out: a tick mid-print must not interleave with the
	// summary below (stderr may be a plain buffer under test).
	<-statsExited
	interrupted := ctx.Err() != nil

	// Graceful drain: decide everything queued or parked, then run detailed
	// routing. A fresh context bounds the drain so a wedged consumer cannot
	// hang the shutdown.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := eng.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "routed: drain:", err)
		return 1
	}
	if err := eng.Err(); err != nil {
		// Degraded but not dead (gap skips, WAL write failures): surface it,
		// keep the run's output.
		fmt.Fprintln(stderr, "routed: degraded:", err)
	}
	res, err := eng.Finish()
	if err != nil {
		fmt.Fprintln(stderr, "routed:", err)
		return 1
	}

	if *declogPath != "" {
		if err := writeDecisionLog(*declogPath, res.Decisions); err != nil {
			fmt.Fprintln(stderr, "routed:", err)
			return 1
		}
	}

	// Re-verify the delivered schedules packet by packet, in admission
	// order, against the real link/buffer capacities.
	violations := 0
	if len(res.Admitted) > 0 {
		minT, maxT := res.Horizon, int64(0)
		for _, s := range res.Schedules {
			if s == nil {
				continue
			}
			if s.StartT < minT {
				minT = s.StartT
			}
			if end := s.StartT + int64(len(s.Moves)); end > maxT {
				maxT = end
			}
		}
		inc := netsim.NewIncremental(g, netsim.Model1, minT, maxT)
		for j, s := range res.Schedules {
			if s != nil {
				inc.Add(res.Admitted[j].Req, s)
			}
		}
		violations = len(inc.Violations())
	}

	s := res.Stats
	m := metrics{
		Scenario: *sc, GridDims: g.Dims, B: g.B, C: g.C,
		Requests: len(reqs), Producers: *producers,
		Horizon: res.Horizon, PMax: res.PMax, K: res.K,
		Submitted: s.Submitted, Accepted: s.Accepted,
		RejectedCost: s.RejectedCost, RejectedNoRoute: s.RejectedNoRoute,
		RejectedInvalid: s.RejectedInvalid, RejectedQueueFull: s.RejectedQueueFull,
		Shed: s.Shed, Recovered: s.Recovered,
		Retries: retries.Load(), AvgWaitNs: int64(s.AvgWait),
		SpecWorkers: *specWorkers, Speculated: s.Speculated,
		SpecCommitted: s.SpecCommitted, SpecAborted: s.SpecAborted,
		SpecRetried: s.SpecRetried,
		Throughput:  res.Throughput, ReachedLastTile: res.ReachedLastTile,
		MaxLoad: res.MaxLoad, LoadBound: res.LoadBound, PrimalValue: res.PrimalValue,
		ReplayViolations: violations,
		Partial:          interrupted,
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "routed:", err)
		return 1
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(stderr, "routed:", err)
			return 1
		}
	} else {
		if _, err := stdout.Write(out); err != nil {
			fmt.Fprintln(stderr, "routed:", err)
			return 1
		}
	}
	//gridlint:allow final-summary elapsed time; display only
	fmt.Fprintf(stderr, "routed: done in %s — decided %d/%d, accepted %d, delivered %d, replay violations %d%s\n",
		time.Since(start).Round(time.Millisecond), s.Decided(), len(reqs), s.Accepted, res.Throughput, violations,
		map[bool]string{true: " (partial: interrupted)", false: ""}[interrupted])
	if interrupted {
		return 130
	}
	return 0
}

// produceOne submits one request, honoring the fault schedule and retrying
// queue-full rejections with bounded jittered exponential backoff. It
// reports false when the producer should stop (interrupt or engine closed).
// An injected producer panic is recovered here — the packet is dropped
// (creating an InOrder gap for the watchdog or drain flush to resolve) and
// the producer keeps going, like a respawned ingress worker.
func produceOne(ctx context.Context, eng *engine.Engine, inj *fault.Injector, r *grid.Request, jit *rand.Rand, retries *atomic.Uint64, stderr io.Writer) (alive bool) {
	seq := r.ID
	defer func() {
		if rec := recover(); rec != nil {
			fmt.Fprintf(stderr, "routed: producer recovered from panic: %v (seq %d dropped)\n", rec, seq)
			alive = true
		}
	}()
	if d := inj.StallBefore(seq); d > 0 {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(d): //gridlint:allow injected producer stall; fault keyed on seq, sleep changes timing not verdicts
		}
	}
	if inj.PanicAt(seq) {
		panic("fault: injected producer panic")
	}
	pkt := engine.PacketOf(r)
	injCancel := inj.CancelFirst(seq)
	const backoffBase, backoffCap = 100 * time.Microsecond, 5 * time.Millisecond
	backoff := backoffBase
	for attempt := 0; ; attempt++ {
		actx := ctx
		if injCancel && attempt == 0 {
			// Injected mid-Admit cancellation: submit with an
			// already-cancelled context. If the packet made it into the
			// queue the consumer still decides it (the wait is abandoned,
			// the envelope reclaimed by the loop) — the decision log is
			// unchanged; only this producer's view of the verdict is lost.
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			actx = cctx
		}
		dec, err := eng.Admit(actx, pkt)
		if err != nil {
			if injCancel && attempt == 0 && ctx.Err() == nil {
				return true // injected cancel; the loop owns the decision now
			}
			return false // interrupted or closed
		}
		if dec.Verdict != engine.RejectedQueueFull {
			return true
		}
		// Backpressure: the bounded queue bounced the packet. Retry after a
		// bounded, jittered, exponentially growing pause so P producers
		// don't re-slam the queue in lockstep.
		retries.Add(1)
		pause := backoff/2 + time.Duration(jit.Int63n(int64(backoff)))
		select {
		case <-ctx.Done():
			return false
		case <-time.After(pause): //gridlint:allow queue-full backoff pause; retry pacing only, admission order is seq-driven
		}
		if backoff < backoffCap {
			backoff *= 2
		}
	}
}

// writeDecisionLog renders the decision log one line per decision:
// "seq verdict cost tiles", with the cost in shortest round-trip form. Two
// runs with identical decisions produce byte-identical files — the format
// the crash-recovery CI gate diffs.
func writeDecisionLog(path string, decs []engine.Decision) error {
	buf := make([]byte, 0, 32*len(decs))
	for i := range decs {
		d := &decs[i]
		buf = strconv.AppendInt(buf, int64(d.Seq), 10)
		buf = append(buf, ' ')
		buf = append(buf, d.Verdict.String()...)
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, d.Cost, 'g', -1, 64)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(d.Tiles), 10)
		buf = append(buf, '\n')
	}
	return os.WriteFile(path, buf, 0o644)
}
