package main

import (
	"strings"
	"testing"
)

func TestUnknownAlgorithmExits2ListingKnown(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-alg", "bogus"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, name := range []string{"det", "rand", "thm13", "greedy", "ntg"} {
		if !strings.Contains(errb.String(), name) {
			t.Fatalf("stderr must list %q, got: %s", name, errb.String())
		}
	}
}

func TestUnknownScenarioExits2ListingKnown(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scenario", "bogus"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "uniform") || !strings.Contains(errb.String(), "appendixf-model2") {
		t.Fatalf("stderr must list known scenarios, got: %s", errb.String())
	}
}

func TestUnknownParameterExits2(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scenario", "uniform", "-p", "bogus=3"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "known:") {
		t.Fatalf("stderr must list known parameters, got: %s", errb.String())
	}
}

func TestMalformedParameterExits2(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-p", "noequals"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestListScenarios(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list-scenarios"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	lines := 0
	for _, l := range strings.Split(out.String(), "\n") {
		if l != "" && !strings.HasPrefix(l, " ") {
			lines++
		}
	}
	if lines < 14 {
		t.Fatalf("catalog lists %d scenarios, want ≥ 14:\n%s", lines, out.String())
	}
}

func TestDumpIsDeterministic(t *testing.T) {
	var a, b, errb strings.Builder
	if code := run([]string{"-scenario", "heavy-pareto", "-dump", "-seed", "3"}, &a, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if code := run([]string{"-scenario", "heavy-pareto", "-dump", "-seed", "3"}, &b, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if a.String() != b.String() {
		t.Fatal("dump output differs between runs")
	}
	if len(strings.Split(strings.TrimSpace(a.String()), "\n")) < 10 {
		t.Fatalf("dump suspiciously short:\n%s", a.String())
	}
}

func TestEndToEndGreedyOnConvoy(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-alg", "greedy", "-scenario", "convoy", "-p", "n=32", "-p", "c=1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "delivered") || !strings.Contains(out.String(), "OPT ≤") {
		t.Fatalf("summary missing fields:\n%s", out.String())
	}
}

func TestSeedBeyondFloat64PrecisionExits2(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "uniform", "-seed", "9007199254740993"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "2^53") {
		t.Fatalf("stderr must explain the precision limit, got: %s", errb.String())
	}
}
