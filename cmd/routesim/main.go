// Command routesim runs one routing algorithm on one workload and prints a
// summary — the quickest way to poke at the library.
//
// Usage examples:
//
//	go run ./cmd/routesim -alg det  -n 64 -b 3 -c 3 -reqs 200
//	go run ./cmd/routesim -alg rand -n 128 -b 1 -c 1 -reqs 500 -gamma 0.5
//	go run ./cmd/routesim -alg greedy -n 64 -b 2 -c 1 -workload convoy
package main

import (
	"flag"
	"fmt"
	"os"

	"gridroute"
)

func main() {
	alg := flag.String("alg", "det", "algorithm: det | rand | thm13 | greedy | ntg")
	n := flag.Int("n", 64, "line length (or grid side with -d 2)")
	d := flag.Int("d", 1, "grid dimension (1 or 2)")
	b := flag.Int("b", 3, "buffer size B")
	c := flag.Int("c", 3, "link capacity c")
	numReqs := flag.Int("reqs", 200, "number of requests (uniform workload)")
	wl := flag.String("workload", "uniform", "workload: uniform | saturating | convoy")
	seed := flag.Int64("seed", 1, "rng seed")
	gamma := flag.Float64("gamma", 0, "randomized algorithm sparsification γ (0 = paper's 200)")
	flag.Parse()

	var g *gridroute.Grid
	if *d == 2 {
		g = gridroute.NewGrid([]int{*n, *n}, *b, *c)
	} else {
		g = gridroute.NewLine(*n, *b, *c)
	}

	var reqs []gridroute.Request
	switch *wl {
	case "saturating":
		reqs = gridroute.SaturatingWorkload(g, 8, 2, *seed)
	case "convoy":
		reqs = gridroute.ConvoyWorkload(*n, 2**n, *c, 1)
		g = gridroute.NewLine(*n, *b, *c)
	default:
		reqs = gridroute.UniformWorkload(g, *numReqs, int64(2**n), *seed)
	}

	var router gridroute.Router
	switch *alg {
	case "rand":
		router = gridroute.RandomizedWith(*seed, *gamma, 0)
	case "thm13":
		router = gridroute.LargeCapacity()
	case "greedy":
		router = gridroute.Greedy()
	case "ntg":
		router = gridroute.NearestToGo()
	default:
		router = gridroute.Deterministic()
	}

	res, err := router.Route(g, reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("algorithm   %s\n", res.Algorithm)
	fmt.Printf("requests    %d\n", res.Requests)
	fmt.Printf("admitted    %d\n", res.Admitted)
	fmt.Printf("delivered   %d\n", res.Throughput)
	fmt.Printf("violations  %d\n", len(res.Violations))
	T := gridroute.SuggestHorizon(g, reqs, 3)
	upper, witness := gridroute.DualUpperBound(g, reqs, T)
	fmt.Printf("OPT ≤ %.1f (certified dual bound; certifying packer itself routed %d)\n", upper, witness)
	if res.Throughput > 0 {
		fmt.Printf("certified competitive ratio ≤ %.2f\n", upper/float64(res.Throughput))
	}
}
