// Command routesim runs one routing algorithm on one workload scenario and
// prints a summary — the quickest way to poke at the library.
//
// Workloads come from the scenario registry (internal/scenario): named,
// self-describing generators with typed parameters, overridden per run
// with -p key=val. Generation is byte-deterministic in (scenario, params).
//
// Usage examples:
//
//	go run ./cmd/routesim -list-scenarios
//	go run ./cmd/routesim -alg det  -scenario uniform -p n=64 -p reqs=200
//	go run ./cmd/routesim -alg rand -scenario zipf-hotspot -p b=1 -p c=1 -gamma 0.5
//	go run ./cmd/routesim -alg greedy -scenario convoy -p n=64 -p c=1
//	go run ./cmd/routesim -scenario lattice3d-uniform -dump   # print the requests
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gridroute"
	"gridroute/internal/scenario"
)

// algorithms maps -alg names to router constructors. seed and gamma feed
// the randomized algorithm only.
var algorithms = map[string]func(seed int64, gamma float64) gridroute.Router{
	"det":    func(int64, float64) gridroute.Router { return gridroute.Deterministic() },
	"rand":   func(seed int64, gamma float64) gridroute.Router { return gridroute.RandomizedWith(seed, gamma, 0) },
	"thm13":  func(int64, float64) gridroute.Router { return gridroute.LargeCapacity() },
	"greedy": func(int64, float64) gridroute.Router { return gridroute.Greedy() },
	"ntg":    func(int64, float64) gridroute.Router { return gridroute.NearestToGo() },
}

func algNames() string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process-global state: it parses args, generates the
// scenario, routes it, and returns the exit code (0 success, 1 routing
// failure, 2 usage error — unknown algorithm, scenario or parameter).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("routesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	alg := fs.String("alg", "det", "algorithm: "+algNames())
	sc := fs.String("scenario", "uniform", "workload scenario ID (see -list-scenarios)")
	params := scenario.ParamFlags{}
	fs.Var(params, "p", "scenario parameter override key=val (repeatable)")
	seed := fs.Int64("seed", 0, "rng seed for scenario generation and the randomized algorithm (0 = scenario default stream)")
	gamma := fs.Float64("gamma", 0, "randomized algorithm sparsification γ (0 = paper's 200)")
	list := fs.Bool("list-scenarios", false, "list registered scenarios with their parameters and exit")
	dump := fs.Bool("dump", false, "print the generated requests instead of routing (determinism witness)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, info := range gridroute.Scenarios() {
			fmt.Fprintf(stdout, "%-20s %s [%s]\n", info.ID, info.Title, strings.Join(info.Tags, " "))
			for _, p := range info.Params {
				fmt.Fprintf(stdout, "    -p %-12s %v (default) — %s\n", p.Name, p.Default, p.Doc)
			}
		}
		return 0
	}

	mkRouter, ok := algorithms[*alg]
	if !ok {
		fmt.Fprintf(stderr, "unknown algorithm %q (known: %s)\n", *alg, algNames())
		return 2
	}
	if *seed != 0 {
		// Parameters travel as float64; refuse seeds the conversion would
		// silently collapse (distinct seeds must name distinct streams).
		if int64(float64(*seed)) != *seed {
			fmt.Fprintf(stderr, "seed %d exceeds exact float64 range (±2^53); pick a smaller seed\n", *seed)
			return 2
		}
		if _, dup := params["seed"]; !dup {
			params["seed"] = float64(*seed)
		}
	}

	g, reqs, err := gridroute.GenerateScenario(*sc, params)
	if err != nil {
		// Unknown scenario IDs and bad parameters are usage errors; the
		// message already lists the valid choices.
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "scenario    %s (%d requests, grid %v, B=%d, c=%d)\n",
		*sc, len(reqs), g.Dims, g.B, g.C)

	if *dump {
		for i := range reqs {
			fmt.Fprintf(stdout, "%v\n", &reqs[i])
		}
		return 0
	}

	res, err := mkRouter(*seed, *gamma).Route(g, reqs)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintf(stdout, "algorithm   %s\n", res.Algorithm)
	fmt.Fprintf(stdout, "requests    %d\n", res.Requests)
	fmt.Fprintf(stdout, "admitted    %d\n", res.Admitted)
	fmt.Fprintf(stdout, "delivered   %d\n", res.Throughput)
	fmt.Fprintf(stdout, "violations  %d\n", len(res.Violations))
	T := gridroute.SuggestHorizon(g, reqs, 3)
	upper, witness := gridroute.DualUpperBound(g, reqs, T)
	fmt.Fprintf(stdout, "OPT ≤ %.1f (certified dual bound; certifying packer itself routed %d)\n", upper, witness)
	if res.Throughput > 0 {
		fmt.Fprintf(stdout, "certified competitive ratio ≤ %.2f\n", upper/float64(res.Throughput))
	}
	return 0
}
