// Command viz prints ASCII reproductions of the paper's figures: the grid
// network (Fig. 1), the untilted space-time lattice with tiling (Fig. 3),
// quadrants (Fig. 8), and an actual routed request with its detailed path
// overlaid on the tiles (Fig. 5).
package main

import (
	"fmt"
	"io"
	"os"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/render"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "viz:", err)
		os.Exit(1)
	}
}

// run renders every figure to w. It is main minus the process exit so the
// figures are testable: output is deterministic (the routed request draws
// no external randomness), and any routing failure is an error, not a
// silently truncated figure listing.
func run(w io.Writer) error {
	fmt.Fprintln(w, "=== Figure 1: a 4x4 uni-directional grid ===")
	fmt.Fprintln(w, render.Grid2D(grid.New([]int{4, 4}, 2, 1)))

	fmt.Fprintln(w, "=== Figure 3d: untilted space-time lattice of a line, tiled 4x4 ===")
	g := grid.Line(12, 3, 3)
	st := spacetime.New(g, 20)
	tl := tiling.New(st.Box, []int{4, 4}, []int{0, 0})
	c := render.NewCanvas(0, 11, -11, 20)
	c.DrawTiles(tl)
	fmt.Fprintln(w, c.String())

	fmt.Fprintln(w, "=== Figure 5: sketch path tiles and the detailed path of a routed request ===")
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{1}, Dst: grid.Vec{10}, Arrival: 2, Deadline: grid.InfDeadline},
	}
	res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: 40})
	if err != nil {
		return err
	}
	if res.Schedules[0] == nil {
		return fmt.Errorf("figure 5: request %v was rejected", reqs[0])
	}
	st2 := spacetime.New(g, 40)
	tl2 := tiling.New(st2.Box, []int{res.K, res.K}, []int{0, 0})
	c2 := render.NewCanvas(0, 11, -11, 24)
	c2.DrawTiles(tl2)
	p := st2.ScheduleToPath(res.Schedules[0])
	c2.DrawPath(p, '#')
	fmt.Fprintln(w, c2.String())
	fmt.Fprintf(w, "request %v routed with tile side k=%d; '#' = detailed path, 'S'/'E' = endpoints\n\n", reqs[0], res.K)

	fmt.Fprintln(w, "=== Figure 8: tile quadrants (S marks the SW quadrant of each tile) ===")
	tl3 := tiling.New(st.Box, []int{6, 8}, []int{0, 0})
	c3 := render.NewCanvas(0, 11, -11, 20)
	c3.DrawTiles(tl3)
	pt := make([]int, 2)
	for x := 0; x < 12; x++ {
		for w := -11; w <= 20; w++ {
			pt[0], pt[1] = x, w
			if tl3.QuadrantOf(pt) == tiling.SW {
				off := tl3.Offset(pt, nil)
				if off[0] != 0 && off[1] != 0 { // keep tile borders visible
					c3.Set(x, w, 's')
				}
			}
		}
	}
	fmt.Fprintln(w, c3.String())
	fmt.Fprintln(w, "Lower-left quarter of every Q×τ tile ('s') is the SW quadrant where Far+ requests originate (Sec. 7.2).")
	return nil
}
