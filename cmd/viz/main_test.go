package main

import (
	"strings"
	"testing"
)

// The figure listing must render every figure, non-empty and
// deterministically — this is the CI smoke for the one entry point that
// had neither a test nor a smoke step.
func TestRunRendersEveryFigure(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, figure := range []string{
		"=== Figure 1:",
		"=== Figure 3d:",
		"=== Figure 5:",
		"=== Figure 8:",
	} {
		i := strings.Index(out, figure)
		if i < 0 {
			t.Fatalf("output missing %q", figure)
		}
		// Each header must be followed by an actual drawing, not a bare
		// headline: at least 5 non-blank lines before the next header.
		rest := out[i+len(figure):]
		if j := strings.Index(rest, "=== Figure"); j >= 0 {
			rest = rest[:j]
		}
		lines := 0
		for _, l := range strings.Split(rest, "\n") {
			if strings.TrimSpace(l) != "" {
				lines++
			}
		}
		if lines < 5 {
			t.Fatalf("%s figure body has only %d non-blank lines:\n%s", figure, lines, rest)
		}
	}
	if !strings.Contains(out, "#") {
		t.Fatal("figure 5 detailed path ('#') missing")
	}
	if !strings.Contains(out, "routed with tile side k=") {
		t.Fatal("figure 5 caption missing")
	}

	// Determinism: a second render is byte-identical.
	var b2 strings.Builder
	if err := run(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("viz output is not deterministic")
	}
}
