package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestGridlintClean builds the gridlint multichecker and runs it over the
// whole module via the vet -vettool protocol — the same invocation CI uses.
// This is the enforcement test for the repo's determinism, hot-path, and
// lock contracts: any unannotated wall-clock call in a decision flow,
// allocation on a hot path, unfenced weight mutation, or clock-keyed fault
// trigger fails it. Running through `go vet` (not in-process) also
// exercises cross-package fact export/import under unitchecker.
func TestGridlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole module")
	}
	goTool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goTool); err != nil {
		t.Skipf("go tool not found at %s", goTool)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "gridlint")
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/gridlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build gridlint: %v\n%s", err, out)
	}

	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("gridlint found contract violations:\n%s", out)
	}
}
