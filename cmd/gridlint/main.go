// gridlint is the repo's contract checker: a go/analysis multichecker that
// statically enforces the determinism, hot-path, lock and logical-clock
// contracts the dynamic gates (race, alloc, chaos, shard) probe at runtime.
//
// It speaks the unitchecker protocol, so it runs under the build system's
// vet driver — which is also how its analyzers see export data and facts
// for dependency packages:
//
//	go build -o /tmp/gridlint ./cmd/gridlint
//	go vet -vettool=/tmp/gridlint ./...
//
// Note that -vettool replaces the stock vet suite, so CI runs plain
// `go vet ./...` alongside gridlint rather than instead of it. The stock
// nilness and shadow passes are not in the distribution's vendored analysis
// subset; the in-repo reimplementations under internal/analysis fill in.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"gridroute/internal/analysis/detflow"
	"gridroute/internal/analysis/hotalloc"
	"gridroute/internal/analysis/lockorder"
	"gridroute/internal/analysis/nilness"
	"gridroute/internal/analysis/seqclock"
	"gridroute/internal/analysis/shadow"
)

func main() {
	unitchecker.Main(
		detflow.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		seqclock.Analyzer,
		nilness.Analyzer,
		shadow.Analyzer,
	)
}
