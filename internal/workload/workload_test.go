package workload

import (
	"math/rand"
	"testing"

	"gridroute/internal/grid"
)

func TestUniformValid(t *testing.T) {
	g := grid.New([]int{8, 8}, 2, 2)
	rng := rand.New(rand.NewSource(1))
	reqs := Uniform(g, 100, 50, rng)
	if len(reqs) != 100 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d: %v", i, reqs[i])
	}
	for i := range reqs {
		if reqs[i].Src.Eq(reqs[i].Dst) {
			t.Fatal("src == dst should be filtered")
		}
		if reqs[i].ID != i {
			t.Fatal("IDs must follow arrival order")
		}
	}
}

func TestSaturatingDemandExceedsCapacity(t *testing.T) {
	g := grid.Line(16, 2, 1)
	rng := rand.New(rand.NewSource(2))
	reqs := Saturating(g, 4, 3, rng)
	// Roughly rounds·n·burst requests (minus src==dst skips at the corner).
	if len(reqs) < 4*16*3/2 {
		t.Fatalf("too few requests: %d", len(reqs))
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
}

func TestHotspotSourcesConcentrated(t *testing.T) {
	g := grid.Line(64, 1, 1)
	rng := rand.New(rand.NewSource(3))
	reqs := Hotspot(g, 200, 50, 0.25, rng)
	for i := range reqs {
		if reqs[i].Src[0] >= 16 {
			t.Fatalf("hotspot source %v outside the corner region", reqs[i].Src)
		}
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
}

func TestWithDeadlinesFeasible(t *testing.T) {
	g := grid.Line(32, 2, 2)
	rng := rand.New(rand.NewSource(4))
	base := Uniform(g, 100, 64, rng)
	reqs := WithDeadlines(g, base, 1.5, 8, rng)
	for i := range reqs {
		if !reqs[i].Feasible(g) {
			t.Fatalf("infeasible deadline for %v", reqs[i])
		}
		if !reqs[i].HasDeadline() {
			t.Fatal("deadline missing")
		}
	}
	// Slack 1.0, jitter 0 → exactly tight deadlines.
	tight := WithDeadlines(g, base, 1.0, 0, rng)
	for i := range tight {
		d := int64(g.Dist(tight[i].Src, tight[i].Dst))
		if tight[i].Deadline != tight[i].Arrival+d {
			t.Fatalf("tight deadline wrong: %v", tight[i])
		}
	}
}

func TestConvoyShape(t *testing.T) {
	reqs := Convoy(16, 8, 2)
	g := grid.Line(16, 2, 1)
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
	longs, shorts := 0, 0
	for i := range reqs {
		if reqs[i].Dst[0]-reqs[i].Src[0] == 15 {
			longs++
		} else if reqs[i].Dst[0]-reqs[i].Src[0] == 1 {
			shorts++
		}
	}
	if longs != 8 {
		t.Fatalf("longs = %d, want 8", longs)
	}
	if shorts != 4*14 {
		t.Fatalf("shorts = %d, want %d", shorts, 4*14)
	}
	if ConvoyOPTLowerBound(16, 8, 2) != 4*14 {
		t.Fatalf("OPT lower bound = %d", ConvoyOPTLowerBound(16, 8, 2))
	}
}

func TestCrossbar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, reqs := Crossbar(8, 3, 3, 10, 0.8, rng)
	if g.D() != 2 {
		t.Fatal("crossbar must be 2-d")
	}
	if len(reqs) == 0 {
		t.Fatal("no crossbar traffic")
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d: %v", i, reqs[i])
	}
	for i := range reqs {
		if reqs[i].Src[1] != 0 {
			t.Fatal("crossbar ingress must be on column 0")
		}
	}
}

func TestPermutation(t *testing.T) {
	g := grid.New([]int{6, 6}, 1, 1)
	rng := rand.New(rand.NewSource(6))
	reqs := Permutation(g, 10, rng)
	if len(reqs) == 0 || len(reqs) > g.N() {
		t.Fatalf("bad request count %d", len(reqs))
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
}
