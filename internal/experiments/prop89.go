package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/scenario"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E10",
		Title: "Props 8/9 — loss decomposition of detailed routing",
		Tags:  []string{"guarantee", "prop8", "prop9", "routing"},
		Run:   runProp89,
	})
}

// runProp89 reports the detailed-routing loss fractions.
func runProp89(ctx context.Context, cfg Config) (Report, error) {
	sizes := cfg.Sizes()
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, skip func(string, ...any)) *core.DetResult {
		n := sizes[i]
		g := grid.Line(n, 3, 3)
		reqs := scenario.Saturating(g, 8, 2, cfg.SubRNG(fmt.Sprintf("n=%d", n)))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			skip("n=%d: %v", n, err)
			return nil
		}
		if res.Admitted == 0 {
			skip("n=%d: nothing admitted", n)
			return nil
		}
		return res
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("n=%d", sizes[i]) })

	t := stats.NewTable("Props 8, 9: detailed-routing survival fractions (theory: each ≥ 1/(2k))",
		"n", "k", "ipp", "ipp'", "alg", "ipp'/ipp", "alg/ipp'", "1/(2k)")
	for i, n := range sizes {
		res := slots[i]
		if res == nil {
			continue
		}
		f1 := float64(res.ReachedLastTile) / float64(res.Admitted)
		f2 := 0.0
		if res.ReachedLastTile > 0 {
			f2 = float64(res.Throughput) / float64(res.ReachedLastTile)
		}
		t.AddRow(n, res.K, res.Admitted, res.ReachedLastTile, res.Throughput, f1, f2, 1/(2*float64(res.K)))
	}
	return skips.finish(Report{Tables: []*stats.Table{t}})
}
