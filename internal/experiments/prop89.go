package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E10",
		Title: "Props 8/9 — loss decomposition of detailed routing",
		Tags:  []string{"guarantee", "prop8", "prop9", "routing"},
		Run:   runProp89,
	})
}

// runProp89 reports the detailed-routing loss fractions.
func runProp89(ctx context.Context, cfg Config) (Report, error) {
	sizes := cfg.Sizes()
	slots := make([]*core.DetResult, len(sizes))
	var skips SkipList
	err := cfg.Sweep(ctx, len(sizes), func(i int) {
		n := sizes[i]
		g := grid.Line(n, 3, 3)
		reqs := workload.Saturating(g, 8, 2, cfg.SubRNG(fmt.Sprintf("n=%d", n)))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			skips.Skip("n=%d: %v", n, err)
			return
		}
		if res.Admitted == 0 {
			skips.Skip("n=%d: nothing admitted", n)
			return
		}
		slots[i] = res
	})
	if err != nil {
		return Report{}, err
	}

	t := stats.NewTable("Props 8, 9: detailed-routing survival fractions (theory: each ≥ 1/(2k))",
		"n", "k", "ipp", "ipp'", "alg", "ipp'/ipp", "alg/ipp'", "1/(2k)")
	for i, n := range sizes {
		res := slots[i]
		if res == nil {
			continue
		}
		f1 := float64(res.ReachedLastTile) / float64(res.Admitted)
		f2 := 0.0
		if res.ReachedLastTile > 0 {
			f2 = float64(res.Throughput) / float64(res.ReachedLastTile)
		}
		t.AddRow(n, res.K, res.Admitted, res.ReachedLastTile, res.Throughput, f1, f2, 1/(2*float64(res.K)))
	}
	return skips.finish(Report{Tables: []*stats.Table{t}})
}
