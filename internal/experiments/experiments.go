// Package experiments regenerates every table and figure of Even–Medina
// (SPAA 2011) plus the theorem-shaped measurements listed in DESIGN.md §5.
// It is the engine behind cmd/experiments (which writes EXPERIMENTS.md) and
// bench_test.go (one benchmark per experiment id).
//
// Each experiment registers itself (see registry.go) as an Experiment with a
// stable ID; the Runner (runner.go) executes any selected subset over a
// bounded pool of goroutines, streaming results in canonical order as they
// finish. Every experiment draws all of its randomness from the Config it
// receives, whose seeds are derived from the experiment ID (and, for
// sub-cases, a sub-case key) alone, so a parallel run is byte-identical to
// a serial one at any worker count.
//
// Run functions are fallible and cancellable: they return an error wrapping
// ErrSkipped when sub-cases could not run (the skipped list also surfaces
// in the report notes), and they honour context cancellation between
// sub-cases via Config.Sweep.
//
// Competitive ratios are reported as certified_upper_bound / throughput,
// where the upper bound comes from optbound.DualUpperBound (weak duality)
// or from instances with OPT known by construction; the certificate used is
// always named in the table.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"gridroute/internal/stats"
)

// ErrSkipped is the sentinel wrapped by every "sub-cases could not run"
// error. The runner treats it as a deterministic partial result — the
// report is still rendered and the error is never retried — unlike real
// failures, which count against the retry budget.
var ErrSkipped = errors.New("sub-cases skipped")

// Report is the outcome of one experiment. Run functions fill Tables and
// Notes; the Runner stamps ID and Title from the registry entry, which is
// their single source of truth. Skips holds the sorted skipped-sub-case
// items (set by SkipList.Apply) separately from Notes so that partial
// reports from different shards of one experiment can be merged: shards
// share Notes byte-for-byte but each contributes its own skip items.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
	Skips  []string
}

// Markdown renders the report section exactly as it appears in
// EXPERIMENTS.md. The output depends only on the report contents, never on
// wall-clock time or execution order, so it doubles as the determinism
// witness for parallel runs.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n## %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	for _, n := range r.AllNotes() {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	return b.String()
}

// AllNotes returns Notes plus the rendered skipped-sub-cases note (when any
// sub-case was skipped) — the flat note list as it appears in the markdown
// and in BENCH_experiments.json.
func (r Report) AllNotes() []string {
	if len(r.Skips) == 0 {
		return r.Notes
	}
	notes := make([]string, 0, len(r.Notes)+1)
	notes = append(notes, r.Notes...)
	return append(notes, skipNote(r.Skips))
}

func skipNote(items []string) string {
	return fmt.Sprintf("⚠ skipped sub-cases: %s.", strings.Join(items, "; "))
}

// Config carries everything an experiment is allowed to depend on: the
// sweep mode, its identity, and the RNG seeds. Experiments must derive all
// randomness via RNG or SubRNG so that results are a pure function of
// (ID, Config) — never of scheduling order or worker count.
type Config struct {
	// Quick selects the reduced sweep (seconds instead of minutes).
	Quick bool
	// ID is the experiment's registry ID, stamped by the Runner. Sub-case
	// seeds (SubRNG) are derived from it, so they survive any refactoring
	// of the base Seed.
	ID string
	// Seed is the base RNG seed; the Runner derives it from the experiment
	// ID via SeedFor, making results independent of scheduling order.
	Seed int64
	// SubSelect restricts a splittable experiment (Experiment.Subcases) to
	// the named sub-cases — the sharding hook. nil means all sub-cases.
	// Experiments consult it via SubSelected; because every sub-case is
	// seeded from (ID, subkey) alone, running a subset produces exactly the
	// rows the full run would, so shards merge byte-identically.
	SubSelect []string

	// pool is the shared sub-task pool Sweep dispatches to, and lease the
	// per-attempt slot accounting that lets the Runner reclaim slots from
	// an abandoned (timed-out) attempt. A zero Config (tests, benchmarks)
	// has no pool and sweeps inline.
	pool  *subpool
	lease *lease
	// subTimeout is Policy.SubTimeout, stamped by the Runner: the
	// individual bound SweepResults applies to each sub-case.
	subTimeout time.Duration
}

// SubSelected reports whether the named sub-case is part of this run: true
// for every key when no SubSelect restriction is set (the unsharded case).
func (c Config) SubSelected(key string) bool {
	if len(c.SubSelect) == 0 {
		return true
	}
	for _, s := range c.SubSelect {
		if s == key {
			return true
		}
	}
	return false
}

// RNG returns a fresh deterministic generator for the given stream. Distinct
// streams within one experiment decorrelate its sub-sweeps, and every call
// returns an independent generator, so concurrent sub-cases may each take
// their own copy of the same stream.
func (c Config) RNG(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000003 + stream))
}

// SubRNG returns a fresh generator seeded from (ID, subkey) alone — the
// per-sub-case analogue of the Runner's per-experiment seeding. Sub-cases
// that name their (n, parameters) in the subkey get identical randomness at
// any worker count and in any execution order.
func (c Config) SubRNG(subkey string) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(c.ID, subkey)))
}

// Sweep runs f(0..n-1) over the Runner's shared sub-task pool, which is
// sized by -j and shared between experiments, so at most -j sub-tasks run
// at once across the whole sweep — intra-experiment parallelism cannot
// multiply the bound (experiment-level workers, also capped at -j, may
// additionally do light orchestration work while their sub-tasks run).
// Each f must write only to its own
// per-index slot; callers assemble table rows in index order afterwards,
// which keeps output byte-identical at any worker count. Once ctx is
// cancelled no further sub-cases start; in-flight ones are waited for, then
// the context's error is returned. A Config built by hand (tests,
// benchmarks) has no pool and sweeps inline on the calling goroutine.
//
// Sweep never abandons a sub-case: because f writes into caller-shared
// state, a timed-out sub-case could not be discarded safely. Every
// registered experiment therefore sweeps via SweepResults (which returns
// results through per-index channels and honours Policy.SubTimeout);
// Sweep remains the minimal primitive for callers whose sub-cases share
// state and need no individual bounding — hand-built Configs in tests and
// benchmarks, and the runner's own pool-reclaim tests.
func (c Config) Sweep(ctx context.Context, n int, f func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.pool == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f(i)
		}
		return nil
	}
	l := c.lease
	if l == nil {
		l = &lease{}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Acquire the slot before spawning so dispatch blocks while the
		// machine is saturated; sub-tasks never acquire further slots, so
		// the pool cannot deadlock. acquire fails once ctx is done.
		if err := c.pool.acquire(ctx, l); err != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.pool.release(l)
			f(i)
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}

// SweepResults runs f(0..n-1) over the Runner's shared sub-task pool (see
// Config.Sweep for the pooling and determinism contract) and returns the
// per-index results. Unlike Sweep, each sub-case is individually bounded
// by Policy.SubTimeout: a sub-case that overruns its budget is abandoned —
// its pool slot is reclaimed so it cannot starve the rest of the sweep,
// and its eventual result is discarded — and its index is reported in
// timedOut (sorted). Abandoned sub-cases leave the zero value of T in
// their slot, which is why results are returned rather than written to
// shared state: the hung goroutine's late result dies in a buffered
// channel instead of racing the caller.
//
// The same discipline applies to skip reporting: f receives a skip
// function (same signature as SkipList.Skip) that buffers per index, and
// skips flow into the caller's SkipList only for sub-cases that finished
// in time — an abandoned sub-case's late skips vanish with its result
// instead of landing nondeterministically after the report was assembled.
//
// A panicking sub-case is re-thrown on the calling goroutine after the
// sweep drains, where the runner's containment turns it into a failed
// experiment instead of a crashed worker — unless the sub-case had
// already been abandoned at SubTimeout, in which case the late panic is
// discarded with the rest of its result (the sub-case is already reported
// lost via timedOut). err is non-nil only when ctx was cancelled.
func SweepResults[T any](ctx context.Context, cfg Config, skips *SkipList, n int, f func(i int, skip func(format string, args ...any)) T) (out []T, timedOut []int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out = make([]T, n)
	type subResult struct {
		v        T
		skips    []string
		panicked any
	}
	call := func(i int, done chan<- subResult) {
		var r subResult
		skip := func(format string, args ...any) {
			r.skips = append(r.skips, fmt.Sprintf(format, args...))
		}
		defer func() {
			if p := recover(); p != nil {
				r.panicked = p
			}
			done <- r
		}()
		r.v = f(i, skip)
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		panicked any
	)
	settle := func(i int, done <-chan subResult, l *lease) {
		var timer <-chan time.Time
		if cfg.subTimeout > 0 {
			t := time.NewTimer(cfg.subTimeout) //gridlint:allow subprocess watchdog timeout; kills hung runs, never shapes results
			defer t.Stop()
			timer = t.C
		}
		select {
		case r := <-done:
			mu.Lock()
			if r.panicked != nil && panicked == nil {
				panicked = r.panicked
			}
			mu.Unlock()
			if skips != nil {
				for _, s := range r.skips {
					skips.Skip("%s", s)
				}
			}
			out[i] = r.v
		case <-timer:
			if cfg.pool != nil {
				cfg.pool.reclaim(l)
			}
			mu.Lock()
			timedOut = append(timedOut, i)
			mu.Unlock()
		}
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		// Each sub-case gets its own lease when it can be abandoned
		// individually (adopted by the attempt lease, so an attempt-level
		// reclaim still frees it); reclaiming one slot never frees its
		// siblings'.
		l := cfg.lease
		if cfg.subTimeout > 0 || l == nil {
			l = &lease{}
		}
		if cfg.pool != nil {
			if cfg.pool.acquire(ctx, l) != nil {
				break
			}
			if l != cfg.lease {
				cfg.pool.adopt(cfg.lease, l)
			}
		}
		done := make(chan subResult, 1)
		go func(i int, l *lease) {
			if cfg.pool != nil {
				defer cfg.pool.release(l)
			}
			call(i, done)
		}(i, l)
		if cfg.pool == nil {
			// Hand-built Configs (tests, benchmarks) sweep serially, like
			// Sweep, but still honour the per-sub-case bound.
			settle(i, done, l)
			continue
		}
		wg.Add(1)
		go func(i int, l *lease) {
			defer wg.Done()
			settle(i, done, l)
		}(i, l)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	sort.Ints(timedOut)
	return out, timedOut, ctx.Err()
}

// SkipList collects the sub-cases an experiment could not run. It is safe
// for concurrent use from Sweep sub-tasks; the rendered list is sorted so
// notes and errors are deterministic regardless of completion order.
type SkipList struct {
	mu    sync.Mutex
	items []string
}

// Skip records one skipped sub-case.
func (s *SkipList) Skip(format string, args ...any) {
	s.mu.Lock()
	s.items = append(s.items, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// SkipTimeouts records the sub-cases a SweepResults call abandoned at
// Policy.SubTimeout; name renders the sub-case key for index i. Like every
// skip, timeouts surface in the report notes and the ErrSkipped error —
// deterministic partial results, never retried.
func (s *SkipList) SkipTimeouts(timedOut []int, name func(i int) string) {
	for _, i := range timedOut {
		s.Skip("%s: sub-case timeout", name(i))
	}
}

// Len reports how many sub-cases were skipped.
func (s *SkipList) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

func (s *SkipList) sorted() []string {
	s.mu.Lock()
	out := append([]string(nil), s.items...)
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Apply records the sorted skip items on the report, making the loss
// visible in EXPERIMENTS.md (Markdown renders them as the trailing
// skipped-sub-cases note) rather than silently thinning the tables.
func (s *SkipList) Apply(r *Report) {
	if s.Len() == 0 {
		return
	}
	r.Skips = append(r.Skips, s.sorted()...)
}

// Err returns nil when nothing was skipped, and otherwise an error wrapping
// ErrSkipped that names every skipped sub-case.
func (s *SkipList) Err() error {
	items := s.sorted()
	if len(items) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrSkipped, strings.Join(items, "; "))
}

// finish is the common experiment epilogue: surface the skip list in the
// notes and as a typed error.
func (s *SkipList) finish(rep Report) (Report, error) {
	s.Apply(&rep)
	return rep, s.Err()
}

// Sizes returns the n-sweep for the configured mode.
func (c Config) Sizes() []int { return Sizes(c.Quick) }

// Sizes returns the n-sweep for a given mode.
func Sizes(quick bool) []int {
	if quick {
		return []int{32, 64}
	}
	return []int{32, 64, 128, 256}
}

// ratio is the certified competitive ratio upper/tp. Zero throughput means
// the algorithm delivered nothing against a positive certificate: the ratio
// is unbounded and reported as +Inf (rendered "∞" by stats.Table), never as
// the perfect-looking 0 the old harness printed.
func ratio(upper float64, tp int) float64 {
	if tp == 0 {
		return math.Inf(1)
	}
	return upper / float64(tp)
}

func log2int(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
