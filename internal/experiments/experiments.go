// Package experiments regenerates every table and figure of Even–Medina
// (SPAA 2011) plus the theorem-shaped measurements listed in DESIGN.md §5.
// It is the engine behind cmd/experiments (which writes EXPERIMENTS.md) and
// bench_test.go (one benchmark per experiment id).
//
// Competitive ratios are reported as certified_upper_bound / throughput,
// where the upper bound comes from optbound.DualUpperBound (weak duality)
// or from instances with OPT known by construction; the certificate used is
// always named in the table.
package experiments

import (
	"fmt"
	"math/rand"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Sizes returns the n-sweep for a given mode.
func Sizes(quick bool) []int {
	if quick {
		return []int{32, 64}
	}
	return []int{32, 64, 128, 256}
}

func ratio(upper float64, tp int) float64 {
	if tp == 0 {
		return 0
	}
	return upper / float64(tp)
}

// --- T1: Table 1 — prior online algorithms ---------------------------------

// Table1 runs each algorithm in its canonical Table 1 setting on the
// convoy construction (the executable form of the [AKOR03] Ω(√n) greedy
// phenomenon): greedy and nearest-to-go at B = 3, c = 1 (unit links, as in
// Table 1), the paper's deterministic algorithm at B = c = 3.
func Table1(quick bool) Report {
	t := stats.NewTable("Table 1 (reproduced): measured competitive ratios on the convoy instance",
		"n", "alg", "B", "c", "delivered", "OPT certificate", "ratio")
	var ns []int
	ratios := map[string][]float64{}
	add := func(n int, name string, b, c, tp, optLB int) {
		r := ratio(float64(optLB), tp)
		t.AddRow(n, name, b, c, tp, fmt.Sprintf("constructed ≥ %d", optLB), r)
		ratios[name] = append(ratios[name], r)
	}
	for _, n := range Sizes(quick) {
		ns = append(ns, n)
		rounds := 2 * n
		// Unit links (Table 1's setting): the convoy saturates every link.
		g1 := grid.Line(n, 3, 1)
		reqs1 := workload.ConvoyRate(n, rounds, 1, 1)
		opt1 := workload.ConvoyOPTLowerBound(n, rounds, 1)
		horizon := spacetime.SuggestHorizon(g1, reqs1, 3)
		gr := baseline.Run(g1, reqs1, baseline.Greedy{}, netsim.Model1, horizon)
		ntg := baseline.Run(g1, reqs1, baseline.NearestToGo{}, netsim.Model1, horizon)
		add(n, "greedy", 3, 1, gr.Throughput(), opt1)
		add(n, "nearest-to-go", 3, 1, ntg.Throughput(), opt1)
		// The deterministic algorithm needs c ≥ 3; same convoy shape.
		g3 := grid.Line(n, 3, 3)
		reqs3 := workload.ConvoyRate(n, rounds, 3, 1)
		opt3 := workload.ConvoyOPTLowerBound(n, rounds, 1)
		det, err := core.RunDeterministic(g3, reqs3, core.DetConfig{})
		if err == nil {
			add(n, "even-medina-det", 3, 3, det.Throughput, opt3)
		}
	}
	g := stats.NewTable("Growth exponents (ratio ~ n^b)",
		"alg", "fitted exponent b", "Table 1 expectation")
	g.AddRow("greedy", stats.GrowthExponent(ns, ratios["greedy"]), "≥ 0.5 (Ω(√n) lower bound; FIFO greedy is even worse)")
	g.AddRow("nearest-to-go", stats.GrowthExponent(ns, ratios["nearest-to-go"]), "Õ(√n) upper bound")
	g.AddRow("even-medina-det", stats.GrowthExponent(ns, ratios["even-medina-det"]), "polylog (asymptotic; constants dominate at these n)")
	return Report{
		ID:     "T1",
		Title:  "Table 1 — prior online algorithms on adversarial traffic",
		Tables: []*stats.Table{t, g},
		Notes: []string{
			"The convoy keeps FIFO greedy busy with doomed long-haul packets; OPT (by construction) serves the short hops.",
			"At laptop-scale n the deterministic algorithm's k^4·(B+c) polylog factor exceeds √n, so its measured ratio is larger than greedy's even though its growth is asymptotically flat — the honest crossover lies beyond n ≈ 10^6 (see DESIGN.md §5 E1).",
		},
	}
}

// --- T2: Table 2 — randomized parameter regimes -----------------------------

// Table2 sweeps the three (B, c) regimes of Table 2 and reports randomized
// throughput against the dual upper bound.
func Table2(quick bool) Report {
	t := stats.NewTable("Table 2 (reproduced): randomized algorithm across (B,c) regimes",
		"n", "B", "c", "regime", "delivered", "upper", "ratio", "ratio/log2(n)")
	seeds := int64(3)
	if quick {
		seeds = 2
	}
	for _, n := range Sizes(quick) {
		l := log2int(n)
		cases := []struct{ b, c int }{
			{1, 1},         // B, c ∈ [1, log n] (unit buffers!)
			{l * l * 2, 1}, // B/c ≥ log n (large buffers)
			{1, l * 4},     // B ≤ log n ≤ c (large capacities)
		}
		for _, cs := range cases {
			g := grid.Line(n, cs.b, cs.c)
			reqs := workload.Uniform(g, 6*n, int64(2*n), rand.New(rand.NewSource(int64(n))))
			// Fixed window: SuggestHorizon scales with B/c and would explode
			// for the large-buffer case; algorithm and certificate share the
			// same horizon, so the comparison stays honest.
			horizon := int64(8 * n)
			upper, _ := optbound.DualUpperBound(g, reqs, horizon)
			best := 0
			var regime core.Regime
			for s := int64(0); s < seeds; s++ {
				res, err := core.RunRandomized(g, reqs, core.RandConfig{Horizon: horizon, Gamma: 0.5}, rand.New(rand.NewSource(s)))
				if err != nil {
					continue
				}
				regime = res.Regime
				if res.Throughput > best {
					best = res.Throughput
				}
			}
			r := ratio(upper, best)
			t.AddRow(n, cs.b, cs.c, regime.String(), best, upper, r, r/float64(log2int(n)))
		}
	}
	return Report{
		ID:     "T2",
		Title:  "Table 2 — (B,c) regimes of the randomized algorithm",
		Tables: []*stats.Table{t},
		Notes: []string{
			"γ = 0.5 (engineering mode; the paper's proof constant γ = 200 needs astronomically many requests — see E13).",
			"The last column normalizes the ratio by log2(n); a flat column is consistent with the O(log n) guarantee (Thms 29–31).",
		},
	}
}

func log2int(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// --- E1/E2/E3: deterministic sweeps ----------------------------------------

// DetSweep measures the deterministic algorithm on lines (Thm 4), 2-d grids
// (Thm 10) and bufferless lines (Thm 11 / Prop 12).
func DetSweep(quick bool) Report {
	t := stats.NewTable("Deterministic algorithm: certified ratios vs n (Thm 4, 10, 11)",
		"experiment", "n", "B", "c", "ipp", "ipp'", "delivered", "upper (certificate)", "ratio")
	var lineNs []int
	var lineRatios []float64
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 3, 3)
		reqs := workload.Uniform(g, 5*n, int64(2*n), rand.New(rand.NewSource(int64(n)+1)))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			continue
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		r := ratio(upper, res.Throughput)
		t.AddRow("E1 Thm4 line", n, 3, 3, res.Admitted, res.ReachedLastTile, res.Throughput,
			fmt.Sprintf("%.1f (dual)", upper), r)
		lineNs = append(lineNs, n)
		lineRatios = append(lineRatios, r)
	}
	// 2-d grids (Thm 10).
	sides := []int{6, 8}
	if !quick {
		sides = []int{6, 8, 12, 16}
	}
	for _, s := range sides {
		g := grid.New([]int{s, s}, 3, 3)
		reqs := workload.Uniform(g, 6*s*s, int64(3*s), rand.New(rand.NewSource(int64(s)+2)))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			continue
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		t.AddRow("E2 Thm10 2-d", s*s, 3, 3, res.Admitted, res.ReachedLastTile, res.Throughput,
			fmt.Sprintf("%.1f (dual)", upper), ratio(upper, res.Throughput))
	}
	// Bufferless lines (Thm 11) against the exact OPT (Prop 12 machinery).
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 0, 3)
		reqs := workload.Uniform(g, 4*n, int64(2*n), rand.New(rand.NewSource(int64(n)+3)))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			continue
		}
		opt := optbound.ExactBufferlessLine(g, reqs)
		ntg := baseline.Run(g, reqs, baseline.NearestToGo{}, netsim.Model1, horizon)
		t.AddRow("E3 Thm11 B=0", n, 0, 3, res.Admitted, res.ReachedLastTile, res.Throughput,
			fmt.Sprintf("%d (exact)", opt), ratio(float64(opt), res.Throughput))
		t.AddRow("E3 NTG B=0 (Prop12)", n, 0, 3, "-", "-", ntg.Throughput(),
			fmt.Sprintf("%d (exact)", opt), ratio(float64(opt), ntg.Throughput()))
	}
	exp := stats.GrowthExponent(lineNs, lineRatios)
	return Report{
		ID:     "E1-E3",
		Title:  "Deterministic algorithm sweeps (Thms 4, 10, 11; Prop 12)",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Fitted line-ratio growth exponent b = %.2f (polylog curves fit b ≈ 0; the Ω(√n) greedy curve of T1 fits b ≥ 0.5).", exp),
			"Dual-certificate ratios overestimate the true competitive ratio by up to 2× (Thm 1's primal/dual gap) plus the fractional/integral gap.",
		},
	}
}

// --- E4: Theorem 13 ----------------------------------------------------------

// Thm13 measures the large-capacity algorithm.
func Thm13(quick bool) Report {
	t := stats.NewTable("Thm 13: large B, c — scaled ipp over the space-time graph",
		"n", "B=c", "k", "delivered", "upper", "ratio", "ratio/log2(n)")
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 64, 64)
		reqs := workload.Saturating(g, 6, 3, rand.New(rand.NewSource(int64(n)+4)))
		horizon := spacetime.SuggestHorizon(g, reqs, 2)
		res, err := core.RunLargeCapacity(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			t.AddRow(n, 64, "-", "-", "-", fmt.Sprint(err), "-")
			continue
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		r := ratio(upper, res.Throughput)
		t.AddRow(n, 64, res.K, res.Throughput, upper, r, r/float64(log2int(n)))
	}
	return Report{
		ID:     "E4",
		Title:  "Theorem 13 — large buffers and link capacities",
		Tables: []*stats.Table{t},
		Notes:  []string{"Non-preemptive: every admitted packet is delivered; replayed schedules satisfy the unscaled capacities because the Thm 1 load bound k cancels the 1/k capacity scaling."},
	}
}

// --- E5: randomized pipeline decomposition ----------------------------------

// RandDecomposition reports the Sec. 7.4.3 chain on one instance.
func RandDecomposition(quick bool) Report {
	t := stats.NewTable("Thm 29 pipeline: |Far+| ≥ |ipp| ≥ |ipp^λ| ≥ |ipp^λ_¼| ≥ |alg| (Sec. 7.4.3)",
		"n", "γ", "Far+", "ipp", "coin-survived", "load-survived", "injected=delivered", "TX-failed")
	n := 128
	if quick {
		n = 64
	}
	g := grid.Line(n, 1, 1)
	reqs := workload.Uniform(g, 10*n, int64(4*n), rand.New(rand.NewSource(99)))
	for _, gamma := range []float64{0.25, 1, 8} {
		res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: gamma, Branch: 1}, rand.New(rand.NewSource(5)))
		if err != nil {
			continue
		}
		t.AddRow(n, gamma, res.FarPlusTotal, res.IPPAccepted, res.CoinSurvived, res.LoadSurvived, res.Throughput, res.TXFailed)
	}
	return Report{
		ID:     "E5",
		Title:  "Thm 29 — randomized pipeline decomposition",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Theorem 22 predicts E|alg| ≥ λ/4·|ipp|: the injected column tracks the coin-survived column within the I-routing loss.",
		},
	}
}

// --- E8: Theorem 1 guarantees ------------------------------------------------

// Thm1 measures the ipp guarantees on the deterministic sketch graphs.
func Thm1(quick bool) Report {
	t := stats.NewTable("Thm 1: ipp primal/dual gap ≤ 2 and edge load ≤ log2(1+3·pmax)",
		"n", "max load", "load bound", "primal", "2×accepted", "gap OK")
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 3, 3)
		reqs := workload.Saturating(g, 6, 2, rand.New(rand.NewSource(int64(n)+7)))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			continue
		}
		ok := res.PrimalValue <= 2*float64(res.Admitted)+1e-9 && res.MaxLoad <= res.LoadBound+1e-9
		t.AddRow(n, res.MaxLoad, res.LoadBound, res.PrimalValue, 2*res.Admitted, ok)
	}
	return Report{ID: "E8", Title: "Theorem 1 — online integral path packing guarantees", Tables: []*stats.Table{t}}
}

// --- E9: Lemma 2 path-length sweep -------------------------------------------

// Lemma2 sweeps pmax and shows throughput saturates at a constant fraction.
func Lemma2(quick bool) Report {
	n := 64
	g := grid.Line(n, 3, 3)
	reqs := workload.Uniform(g, 6*n, int64(2*n), rand.New(rand.NewSource(12)))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	t := stats.NewTable("Lemma 2: restricting path lengths costs at most a constant factor",
		"pmax", "tile side k", "delivered")
	paper := core.PMaxDet(g)
	for _, pm := range []int{n / 2, n, 2 * n, 8 * n, paper} {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon, PMax: pm})
		if err != nil {
			continue
		}
		t.AddRow(pm, res.K, res.Throughput)
	}
	return Report{
		ID: "E9", Title: "Lemma 2 — bounded path lengths",
		Tables: []*stats.Table{t},
		Notes:  []string{fmt.Sprintf("The paper's pmax for this instance is %d; throughput saturates well before it, as Lemma 2 predicts.", paper)},
	}
}

// --- E10: Props 8 and 9 --------------------------------------------------------

// Prop89 reports the detailed-routing loss fractions.
func Prop89(quick bool) Report {
	t := stats.NewTable("Props 8, 9: detailed-routing survival fractions (theory: each ≥ 1/(2k))",
		"n", "k", "ipp", "ipp'", "alg", "ipp'/ipp", "alg/ipp'", "1/(2k)")
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 3, 3)
		reqs := workload.Saturating(g, 8, 2, rand.New(rand.NewSource(int64(n)+13)))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil || res.Admitted == 0 {
			continue
		}
		f1 := float64(res.ReachedLastTile) / float64(res.Admitted)
		f2 := 0.0
		if res.ReachedLastTile > 0 {
			f2 = float64(res.Throughput) / float64(res.ReachedLastTile)
		}
		t.AddRow(n, res.K, res.Admitted, res.ReachedLastTile, res.Throughput, f1, f2, 1/(2*float64(res.K)))
	}
	return Report{ID: "E10", Title: "Props 8/9 — loss decomposition of detailed routing", Tables: []*stats.Table{t}}
}

// --- E11: lower bounds ---------------------------------------------------------

// LowerBounds runs the Table 1 lower-bound constructions.
func LowerBounds(quick bool) Report {
	t := stats.NewTable("Lower-bound constructions",
		"construction", "n", "alg", "delivered", "OPT (constructed)", "ratio")
	var ns []int
	var rs []float64
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 3, 1)
		reqs := workload.ConvoyRate(n, 2*n, 1, 1)
		optLB := workload.ConvoyOPTLowerBound(n, 2*n, 1)
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		gr := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model1, horizon)
		r := ratio(float64(optLB), gr.Throughput())
		t.AddRow("convoy [AKOR03]", n, "greedy", gr.Throughput(), optLB, r)
		ns = append(ns, n)
		rs = append(rs, r)
	}
	// Model 2, B = 1: stream + collision injections (the [AZ05, AKK09] Ω(n)
	// phenomenon for FIFO-style deterministic policies).
	for _, n := range Sizes(quick) {
		g := grid.Line(n, 1, 1)
		var reqs []grid.Request
		reqs = append(reqs, grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{n - 1}, Arrival: 0, Deadline: grid.InfDeadline})
		for v := 1; v < n-1; v++ {
			reqs = append(reqs, grid.Request{Src: grid.Vec{v}, Dst: grid.Vec{v + 1}, Arrival: int64(v), Deadline: grid.InfDeadline})
		}
		res := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model2, int64(4*n))
		optLB := n - 2 // all shorts are mutually disjoint
		t.AddRow("B=1 collision chain (Model 2)", n, "greedy", res.Throughput(), optLB, ratio(float64(optLB), res.Throughput()))
	}
	return Report{
		ID:     "E11",
		Title:  "Lower bounds — greedy Ω(√n) and Model-2 B=1 Ω(n) phenomena",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Greedy convoy ratio growth exponent: %.2f (Table 1 row 'greedy' predicts ≥ 0.5).", stats.GrowthExponent(ns, rs)),
			"The Model-2 chain shows a FIFO policy forced to drop every short hop: ratio grows linearly in n, matching the Ω(n) bound for B = 1 in Model 2 (Appendix F remark 3).",
		},
	}
}

// --- E13: ablations -------------------------------------------------------------

// Ablations varies the design knobs the paper calls out.
func Ablations(quick bool) Report {
	n := 96
	if quick {
		n = 64
	}
	g := grid.Line(n, 1, 1)
	reqs := workload.Uniform(g, 8*n, int64(3*n), rand.New(rand.NewSource(21)))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	upper, _ := optbound.DualUpperBound(g, reqs, horizon)

	t := stats.NewTable("E13a: sparsification constant γ (λ = 1/(γk)) and load cap",
		"γ", "load cap", "delivered", "ratio vs dual upper")
	for _, gamma := range []float64{0.25, 1, 8, 200} {
		for _, lc := range []float64{0.25, 0.9} {
			res, err := core.RunRandomized(g, reqs,
				core.RandConfig{Horizon: horizon, Gamma: gamma, LoadCap: lc, Branch: 1},
				rand.New(rand.NewSource(3)))
			if err != nil {
				continue
			}
			t.AddRow(gamma, lc, res.Throughput, ratio(upper, res.Throughput))
		}
	}
	// Tile side ablation for the deterministic algorithm (Sec. 3.3 footnote:
	// rectangular vs square tiles trade a log factor).
	g2 := grid.Line(n, 3, 3)
	reqs2 := workload.Uniform(g2, 6*n, int64(2*n), rand.New(rand.NewSource(22)))
	upper2, _ := optbound.DualUpperBound(g2, reqs2, spacetime.SuggestHorizon(g2, reqs2, 3))
	k0 := core.TileSideDet(core.PMaxDet(g2))
	t2 := stats.NewTable("E13b: deterministic tile side k (paper: ⌈log2(1+3·pmax)⌉)",
		"k", "delivered", "ratio vs dual upper")
	for _, k := range []int{k0 / 2, k0, 2 * k0} {
		if k < 2 {
			continue
		}
		res, err := core.RunDeterministic(g2, reqs2, core.DetConfig{TileSide: k})
		if err != nil {
			continue
		}
		t2.AddRow(k, res.Throughput, ratio(upper2, res.Throughput))
	}
	return Report{
		ID:     "E13",
		Title:  "Ablations — γ, load cap, tile side",
		Tables: []*stats.Table{t, t2},
		Notes: []string{
			"γ = 200 (the proof constant) rejects nearly everything at this scale: the O(log n) guarantee is asymptotic; engineering γ keeps the shape with usable constants.",
		},
	}
}

// All runs every experiment.
func All(quick bool) []Report {
	return []Report{
		Table1(quick),
		Table2(quick),
		DetSweep(quick),
		Thm13(quick),
		RandDecomposition(quick),
		Thm1(quick),
		Lemma2(quick),
		Prop89(quick),
		LowerBounds(quick),
		Ablations(quick),
	}
}
