// Package experiments regenerates every table and figure of Even–Medina
// (SPAA 2011) plus the theorem-shaped measurements listed in DESIGN.md §5.
// It is the engine behind cmd/experiments (which writes EXPERIMENTS.md) and
// bench_test.go (one benchmark per experiment id).
//
// Each experiment registers itself (see registry.go) as an Experiment with a
// stable ID; the Runner (runner.go) executes any selected subset over a
// bounded pool of goroutines. Every experiment draws all of its randomness
// from the Config it receives, whose seed is derived from the experiment ID
// alone, so a parallel run is byte-identical to a serial one.
//
// Competitive ratios are reported as certified_upper_bound / throughput,
// where the upper bound comes from optbound.DualUpperBound (weak duality)
// or from instances with OPT known by construction; the certificate used is
// always named in the table.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"gridroute/internal/stats"
)

// Report is the outcome of one experiment. Run functions fill Tables and
// Notes; the Runner stamps ID and Title from the registry entry, which is
// their single source of truth.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Markdown renders the report section exactly as it appears in
// EXPERIMENTS.md. The output depends only on the report contents, never on
// wall-clock time or execution order, so it doubles as the determinism
// witness for parallel runs.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n## %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	return b.String()
}

// Config carries everything an experiment is allowed to depend on: the
// sweep mode and the RNG seed. Experiments must derive all randomness via
// RNG so that results are a pure function of (ID, Config).
type Config struct {
	// Quick selects the reduced sweep (seconds instead of minutes).
	Quick bool
	// Seed is the base RNG seed; the Runner derives it from the experiment
	// ID via SeedFor, making results independent of scheduling order.
	Seed int64
}

// RNG returns a fresh deterministic generator for the given stream. Distinct
// streams within one experiment decorrelate its sub-sweeps, mirroring the
// fixed per-sweep seeds the serial harness used.
func (c Config) RNG(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000003 + stream))
}

// Sizes returns the n-sweep for the configured mode.
func (c Config) Sizes() []int { return Sizes(c.Quick) }

// Sizes returns the n-sweep for a given mode.
func Sizes(quick bool) []int {
	if quick {
		return []int{32, 64}
	}
	return []int{32, 64, 128, 256}
}

// ratio is the certified competitive ratio upper/tp. Zero throughput means
// the algorithm delivered nothing against a positive certificate: the ratio
// is unbounded and reported as +Inf (rendered "∞" by stats.Table), never as
// the perfect-looking 0 the old harness printed.
func ratio(upper float64, tp int) float64 {
	if tp == 0 {
		return math.Inf(1)
	}
	return upper / float64(tp)
}

func log2int(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
