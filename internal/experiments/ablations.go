package experiments

import (
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E13",
		Title: "Ablations — γ, load cap, tile side",
		Tags:  []string{"ablation", "randomized", "deterministic"},
		Run:   runAblations,
	})
}

// runAblations varies the design knobs the paper calls out.
func runAblations(cfg Config) Report {
	n := 96
	if cfg.Quick {
		n = 64
	}
	g := grid.Line(n, 1, 1)
	reqs := workload.Uniform(g, 8*n, int64(3*n), cfg.RNG(21))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	upper, _ := optbound.DualUpperBound(g, reqs, horizon)

	t := stats.NewTable("E13a: sparsification constant γ (λ = 1/(γk)) and load cap",
		"γ", "load cap", "delivered", "ratio vs dual upper")
	for _, gamma := range []float64{0.25, 1, 8, 200} {
		for _, lc := range []float64{0.25, 0.9} {
			res, err := core.RunRandomized(g, reqs,
				core.RandConfig{Horizon: horizon, Gamma: gamma, LoadCap: lc, Branch: 1},
				cfg.RNG(3))
			if err != nil {
				continue
			}
			t.AddRow(gamma, lc, res.Throughput, ratio(upper, res.Throughput))
		}
	}
	// Tile side ablation for the deterministic algorithm (Sec. 3.3 footnote:
	// rectangular vs square tiles trade a log factor).
	g2 := grid.Line(n, 3, 3)
	reqs2 := workload.Uniform(g2, 6*n, int64(2*n), cfg.RNG(22))
	upper2, _ := optbound.DualUpperBound(g2, reqs2, spacetime.SuggestHorizon(g2, reqs2, 3))
	k0 := core.TileSideDet(core.PMaxDet(g2))
	t2 := stats.NewTable("E13b: deterministic tile side k (paper: ⌈log2(1+3·pmax)⌉)",
		"k", "delivered", "ratio vs dual upper")
	for _, k := range []int{k0 / 2, k0, 2 * k0} {
		if k < 2 {
			continue
		}
		res, err := core.RunDeterministic(g2, reqs2, core.DetConfig{TileSide: k})
		if err != nil {
			continue
		}
		t2.AddRow(k, res.Throughput, ratio(upper2, res.Throughput))
	}
	return Report{
		Tables: []*stats.Table{t, t2},
		Notes: []string{
			"γ = 200 (the proof constant) rejects nearly everything at this scale: the O(log n) guarantee is asymptotic; engineering γ keeps the shape with usable constants.",
		},
	}
}
