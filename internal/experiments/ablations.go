package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E13",
		Title: "Ablations — γ, load cap, tile side",
		Tags:  []string{"ablation", "randomized", "deterministic"},
		Run:   runAblations,
	})
}

// runAblations varies the design knobs the paper calls out.
func runAblations(ctx context.Context, cfg Config) (Report, error) {
	n := 96
	if cfg.Quick {
		n = 64
	}
	var skips SkipList

	// E13a: the sparsification constant γ and the load cap, on one shared
	// instance against one shared certificate.
	g := grid.Line(n, 1, 1)
	reqs := scenario.Uniform(g, 8*n, int64(3*n), cfg.SubRNG("rand/uniform"))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	upper, _ := optbound.DualUpperBound(g, reqs, horizon)
	type knob struct {
		gamma, loadCap float64
	}
	var knobs []knob
	for _, gamma := range []float64{0.25, 1, 8, 200} {
		for _, lc := range []float64{0.25, 0.9} {
			knobs = append(knobs, knob{gamma, lc})
		}
	}
	randSlots, timedOut, err := SweepResults(ctx, cfg, &skips, len(knobs), func(i int, skip func(string, ...any)) *core.RandResult {
		kn := knobs[i]
		// One coin stream for every knob: rows differ only through γ/cap.
		res, rerr := core.RunRandomized(g, reqs,
			core.RandConfig{Horizon: horizon, Gamma: kn.gamma, LoadCap: kn.loadCap, Branch: 1},
			cfg.SubRNG("rand/coins"))
		if rerr != nil {
			skip("E13a gamma=%v loadcap=%v: %v", kn.gamma, kn.loadCap, rerr)
			return nil
		}
		return res
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string {
		return fmt.Sprintf("E13a gamma=%v loadcap=%v", knobs[i].gamma, knobs[i].loadCap)
	})
	t := stats.NewTable("E13a: sparsification constant γ (λ = 1/(γk)) and load cap",
		"γ", "load cap", "delivered", "ratio vs dual upper")
	for i, kn := range knobs {
		res := randSlots[i]
		if res == nil {
			continue
		}
		t.AddRow(kn.gamma, kn.loadCap, res.Throughput, ratio(upper, res.Throughput))
	}

	// E13b: tile side ablation for the deterministic algorithm (Sec. 3.3
	// footnote: rectangular vs square tiles trade a log factor).
	g2 := grid.Line(n, 3, 3)
	reqs2 := scenario.Uniform(g2, 6*n, int64(2*n), cfg.SubRNG("det/uniform"))
	upper2, _ := optbound.DualUpperBound(g2, reqs2, spacetime.SuggestHorizon(g2, reqs2, 3))
	k0 := core.TileSideDet(core.PMaxDet(g2))
	var ks []int
	for _, k := range []int{k0 / 2, k0, 2 * k0} {
		if k >= 2 {
			ks = append(ks, k)
		}
	}
	detSlots, timedOut2, err := SweepResults(ctx, cfg, &skips, len(ks), func(i int, skip func(string, ...any)) *core.DetResult {
		res, rerr := core.RunDeterministic(g2, reqs2, core.DetConfig{TileSide: ks[i]})
		if rerr != nil {
			skip("E13b k=%d: %v", ks[i], rerr)
			return nil
		}
		return res
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut2, func(i int) string { return fmt.Sprintf("E13b k=%d", ks[i]) })
	t2 := stats.NewTable("E13b: deterministic tile side k (paper: ⌈log2(1+3·pmax)⌉)",
		"k", "delivered", "ratio vs dual upper")
	for i, k := range ks {
		res := detSlots[i]
		if res == nil {
			continue
		}
		t2.AddRow(k, res.Throughput, ratio(upper2, res.Throughput))
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t, t2},
		Notes: []string{
			"γ = 200 (the proof constant) rejects nearly everything at this scale: the O(log n) guarantee is asymptotic; engineering γ keeps the shape with usable constants.",
		},
	})
}
