package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E14",
		Title: "Scenario catalog — every registered workload end to end",
		Tags:  []string{"sweep", "scenario", "catalog"},
		Run:   runScenarioCatalog,
		// Each scenario is an independent sub-case (its own seed, its own
		// table row), so a sharded sweep may split the catalog across
		// machines and merge the rows back in this canonical order.
		Subcases: scenario.IDs,
	})
}

// quickOverrides shrinks the volume knobs a scenario happens to declare —
// never its structural parameters — so the quick sweep stays in seconds.
// An override is applied only when it is actually smaller than the
// scenario's default (a 0 default is an auto-sizing sentinel, e.g. the
// convoy's rounds = 2n, and always larger than any explicit value).
// Registering a new scenario automatically adds it to this experiment.
func quickOverrides(sc scenario.Scenario) map[string]float64 {
	overrides := map[string]float64{}
	for name, v := range map[string]float64{"reqs": 100, "rounds": 4, "waves": 2} {
		if p, ok := sc.Param(name); ok && v >= p.Min && v <= p.Max && (p.Default == 0 || v < p.Default) {
			overrides[name] = v
		}
	}
	return overrides
}

// runScenarioCatalog generates every registered scenario and routes it
// with the baselines (and the deterministic algorithm where its B, c
// preconditions hold). The digest column fingerprints the generated
// instance, so the CI -j determinism diffs also certify that scenario
// generation is byte-stable at any worker count.
func runScenarioCatalog(ctx context.Context, cfg Config) (Report, error) {
	all := scenario.Registered()
	scs := all
	if len(cfg.SubSelect) > 0 {
		scs = scs[:0:0]
		for _, sc := range all {
			if cfg.SubSelected(sc.ID) {
				scs = append(scs, sc)
			}
		}
	}
	type slot struct {
		dims    string
		b, c    int
		reqs    int
		digest  uint64
		greedy  int
		ntg     int
		det     int
		detOK   bool
		detSkip string
		ok      bool
	}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(scs), func(i int, skip func(string, ...any)) slot {
		sc := scs[i]
		overrides := map[string]float64{}
		if cfg.Quick {
			overrides = quickOverrides(sc)
		}
		g, reqs, err := scenario.Generate(sc.ID, overrides)
		if err != nil {
			skip("%s: %v", sc.ID, err)
			return slot{}
		}
		s := slot{
			dims:   fmt.Sprint(g.Dims),
			b:      g.B,
			c:      g.C,
			reqs:   len(reqs),
			digest: scenario.Digest(g, reqs),
			ok:     true,
		}
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		s.greedy = baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model1, horizon).Throughput()
		s.ntg = baseline.Run(g, reqs, baseline.NearestToGo{}, netsim.Model1, horizon).Throughput()
		// The deterministic algorithm needs c ≥ 3 and B ≥ 3 (or the B = 0
		// bufferless variant); out-of-regime scenarios keep their baseline
		// rows and say so instead of failing the catalog.
		if g.C >= 3 && (g.B == 0 || g.B >= 3) {
			if res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon}); err != nil {
				s.detSkip = err.Error()
			} else {
				s.det, s.detOK = res.Throughput, true
			}
		} else {
			s.detSkip = "out of regime"
		}
		return s
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return scs[i].ID })

	t := stats.NewTable("Scenario catalog: generated instances and end-to-end throughput",
		"scenario", "grid", "B", "c", "requests", "digest", "greedy", "nearest-to-go", "even-medina-det")
	for i, sc := range scs {
		s := slots[i]
		if !s.ok {
			continue
		}
		det := "—"
		if s.detOK {
			det = fmt.Sprint(s.det)
		} else if s.detSkip == "out of regime" {
			det = "— (B,c out of regime)"
		}
		t.AddRow(sc.ID, s.dims, s.b, s.c, s.reqs, fmt.Sprintf("%016x", s.digest), s.greedy, s.ntg, det)
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("%d scenarios registered; each generated with its per-ID seed (SeedFor) and validated in-bounds/reachable/arrival-sorted before routing.", len(all)),
			"The digest column is an FNV-1a fingerprint of the generated instance: identical across -j levels and machines, diffed by the CI determinism gate.",
		},
	})
}
