package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/baseline"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E11",
		Title: "Lower bounds — greedy Ω(√n) and Model-2 B=1 Ω(n) phenomena",
		Tags:  []string{"lowerbound", "baseline", "model2"},
		Run:   runLowerBounds,
	})
}

// runLowerBounds runs the Table 1 lower-bound constructions.
func runLowerBounds(ctx context.Context, cfg Config) (Report, error) {
	sizes := cfg.Sizes()
	type slot struct {
		convoyTP, convoyOpt int
		chainTP, chainOpt   int
	}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, _ func(string, ...any)) slot {
		n := sizes[i]
		// Convoy [AKOR03]: Ω(√n) against greedy.
		g := grid.Line(n, 3, 1)
		reqs := scenario.ConvoyRate(n, 2*n, 1, 1)
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		s := slot{
			convoyTP:  baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model1, horizon).Throughput(),
			convoyOpt: scenario.ConvoyOPTLowerBound(n, 2*n, 1),
		}
		// Model 2, B = 1: the appendixf-model2 scenario (the [AZ05, AKK09]
		// Ω(n) phenomenon for FIFO-style deterministic policies).
		g2, chain := scenario.Model2CollisionChain(n, 1, 1, 1)
		s.chainTP = baseline.Run(g2, chain, baseline.Greedy{}, netsim.Model2, int64(4*n)).Throughput()
		s.chainOpt = scenario.Model2CollisionOPT(n, 1)
		return s
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("n=%d", sizes[i]) })

	t := stats.NewTable("Lower-bound constructions",
		"construction", "n", "alg", "delivered", "OPT (constructed)", "ratio")
	var ns []int
	var rs []float64
	for i, n := range sizes {
		s := slots[i]
		if s.convoyOpt == 0 { // sub-case timed out; already in the skip list
			continue
		}
		r := ratio(float64(s.convoyOpt), s.convoyTP)
		t.AddRow("convoy [AKOR03]", n, "greedy", s.convoyTP, s.convoyOpt, r)
		ns = append(ns, n)
		rs = append(rs, r)
	}
	for i, n := range sizes {
		s := slots[i]
		if s.chainOpt == 0 {
			continue
		}
		t.AddRow("B=1 collision chain (Model 2)", n, "greedy", s.chainTP, s.chainOpt, ratio(float64(s.chainOpt), s.chainTP))
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Greedy convoy ratio growth exponent: %.2f (Table 1 row 'greedy' predicts ≥ 0.5).", stats.GrowthExponent(ns, rs)),
			"The Model-2 chain shows a FIFO policy forced to drop every short hop: ratio grows linearly in n, matching the Ω(n) bound for B = 1 in Model 2 (Appendix F remark 3).",
		},
	})
}
