package experiments

import (
	"fmt"

	"gridroute/internal/baseline"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E11",
		Title: "Lower bounds — greedy Ω(√n) and Model-2 B=1 Ω(n) phenomena",
		Tags:  []string{"lowerbound", "baseline", "model2"},
		Run:   runLowerBounds,
	})
}

// runLowerBounds runs the Table 1 lower-bound constructions.
func runLowerBounds(cfg Config) Report {
	t := stats.NewTable("Lower-bound constructions",
		"construction", "n", "alg", "delivered", "OPT (constructed)", "ratio")
	var ns []int
	var rs []float64
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 3, 1)
		reqs := workload.ConvoyRate(n, 2*n, 1, 1)
		optLB := workload.ConvoyOPTLowerBound(n, 2*n, 1)
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		gr := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model1, horizon)
		r := ratio(float64(optLB), gr.Throughput())
		t.AddRow("convoy [AKOR03]", n, "greedy", gr.Throughput(), optLB, r)
		ns = append(ns, n)
		rs = append(rs, r)
	}
	// Model 2, B = 1: stream + collision injections (the [AZ05, AKK09] Ω(n)
	// phenomenon for FIFO-style deterministic policies).
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 1, 1)
		var reqs []grid.Request
		reqs = append(reqs, grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{n - 1}, Arrival: 0, Deadline: grid.InfDeadline})
		for v := 1; v < n-1; v++ {
			reqs = append(reqs, grid.Request{Src: grid.Vec{v}, Dst: grid.Vec{v + 1}, Arrival: int64(v), Deadline: grid.InfDeadline})
		}
		res := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model2, int64(4*n))
		optLB := n - 2 // all shorts are mutually disjoint
		t.AddRow("B=1 collision chain (Model 2)", n, "greedy", res.Throughput(), optLB, ratio(float64(optLB), res.Throughput()))
	}
	return Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Greedy convoy ratio growth exponent: %.2f (Table 1 row 'greedy' predicts ≥ 0.5).", stats.GrowthExponent(ns, rs)),
			"The Model-2 chain shows a FIFO policy forced to drop every short hop: ratio grows linearly in n, matching the Ω(n) bound for B = 1 in Model 2 (Appendix F remark 3).",
		},
	}
}
