package experiments

import (
	"encoding/json"
	"io"

	"gridroute/internal/stats"
)

// benchEntry is the machine-readable record of one executed experiment in
// BENCH_experiments.json. Durations are reported in milliseconds; table
// cells are the already-formatted strings of the markdown output (so ∞ and
// n/a survive JSON, which cannot encode IEEE infinities). Error carries the
// text of the error that ended the experiment (including ErrSkipped
// sub-case lists), and Attempts how many retry-policy attempts were made.
type benchEntry struct {
	ID         string         `json:"id"`
	Title      string         `json:"title"`
	Tags       []string       `json:"tags,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Attempts   int            `json:"attempts,omitempty"`
	Error      string         `json:"error,omitempty"`
	Tables     []*stats.Table `json:"tables"`
	Notes      []string       `json:"notes,omitempty"`
}

// benchFile is the top-level BENCH_experiments.json document. Partial marks
// a sweep that was cancelled (SIGINT, timeout of the caller's context)
// before every experiment completed: the file is still valid JSON and
// carries every Result that streamed out before the cut.
type benchFile struct {
	Mode        string       `json:"mode"`
	Workers     int          `json:"workers"`
	Partial     bool         `json:"partial,omitempty"`
	Experiments []benchEntry `json:"experiments"`
}

// WriteJSON emits the machine-readable results file for a finished (or,
// with partial set, interrupted) run.
func WriteJSON(w io.Writer, quick bool, workers int, partial bool, results []Result) error {
	mode := "full"
	if quick {
		mode = "quick"
	}
	doc := benchFile{Mode: mode, Workers: workers, Partial: partial}
	for _, res := range results {
		entry := benchEntry{
			ID:         res.Experiment.ID,
			Title:      res.Report.Title,
			Tags:       res.Experiment.Tags,
			DurationMS: float64(res.Duration.Microseconds()) / 1000,
			Attempts:   res.Attempts,
			Tables:     res.Report.Tables,
			Notes:      res.Report.Notes,
		}
		if res.Err != nil {
			entry.Error = res.Err.Error()
		}
		doc.Experiments = append(doc.Experiments, entry)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
