package experiments

import (
	"encoding/json"
	"io"

	"gridroute/internal/stats"
)

// benchEntry is the machine-readable record of one executed experiment in
// BENCH_experiments.json. Durations are reported in milliseconds; table
// cells are the already-formatted strings of the markdown output (so ∞ and
// n/a survive JSON, which cannot encode IEEE infinities).
type benchEntry struct {
	ID         string         `json:"id"`
	Title      string         `json:"title"`
	Tags       []string       `json:"tags,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Tables     []*stats.Table `json:"tables"`
	Notes      []string       `json:"notes,omitempty"`
}

// benchFile is the top-level BENCH_experiments.json document.
type benchFile struct {
	Mode        string       `json:"mode"`
	Workers     int          `json:"workers"`
	Experiments []benchEntry `json:"experiments"`
}

// WriteJSON emits the machine-readable results file for a finished run.
func WriteJSON(w io.Writer, quick bool, workers int, results []Result) error {
	mode := "full"
	if quick {
		mode = "quick"
	}
	doc := benchFile{Mode: mode, Workers: workers}
	for _, res := range results {
		doc.Experiments = append(doc.Experiments, benchEntry{
			ID:         res.Experiment.ID,
			Title:      res.Report.Title,
			Tags:       res.Experiment.Tags,
			DurationMS: float64(res.Duration.Microseconds()) / 1000,
			Tables:     res.Report.Tables,
			Notes:      res.Report.Notes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
