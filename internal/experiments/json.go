package experiments

import (
	"encoding/json"
	"io"

	"gridroute/internal/stats"
)

// benchEntry is the machine-readable record of one executed experiment in
// BENCH_experiments.json. Durations are reported in milliseconds; table
// cells are the already-formatted strings of the markdown output (so ∞ and
// n/a survive JSON, which cannot encode IEEE infinities). Error carries the
// text of the error that ended the experiment (including ErrSkipped
// sub-case lists), and Attempts how many retry-policy attempts were made.
type benchEntry struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tags  []string `json:"tags,omitempty"`
	// DurationMS is a pointer so that the stable form can omit it entirely
	// while the default form keeps the field present even at 0 (cancelled
	// experiments), exactly as it always was.
	DurationMS *float64       `json:"duration_ms,omitempty"`
	Attempts   int            `json:"attempts,omitempty"`
	Error      string         `json:"error,omitempty"`
	Tables     []*stats.Table `json:"tables"`
	Notes      []string       `json:"notes,omitempty"`
}

// benchFile is the top-level BENCH_experiments.json document. Partial marks
// a sweep that was cancelled (SIGINT, timeout of the caller's context)
// before every experiment completed: the file is still valid JSON and
// carries every Result that streamed out before the cut.
type benchFile struct {
	Mode        string       `json:"mode"`
	Shard       string       `json:"shard,omitempty"`   // "i/m" when the document covers one shard of a sweep
	Workers     *int         `json:"workers,omitempty"` // pointer: see benchEntry.DurationMS
	Partial     bool         `json:"partial,omitempty"`
	Experiments []benchEntry `json:"experiments"`
}

// JSONOptions selects the shape of the results document.
type JSONOptions struct {
	// Quick marks the reduced sweep ("mode": "quick").
	Quick bool
	// Workers is the -j the sweep ran with; recorded unless Stable is set.
	Workers int
	// Partial marks a sweep cancelled before every experiment completed.
	Partial bool
	// Stable omits everything that varies between machines or runs of the
	// same sweep — wall-clock durations and the worker count — leaving only
	// fields that are a pure function of the results. A stable document is
	// byte-identical at any -j and across machines, which is what lets a
	// merged sharded sweep be diffed against an unsharded one.
	Stable bool
	// Shard stamps a document that covers only one shard ("i/m") so a
	// partial sweep can never pass for the canonical one. Empty for
	// unsharded and merged runs.
	Shard string
}

// WriteJSON emits the machine-readable results file for a finished (or,
// with partial set, interrupted) run.
func WriteJSON(w io.Writer, quick bool, workers int, partial bool, results []Result) error {
	return WriteJSONOpts(w, JSONOptions{Quick: quick, Workers: workers, Partial: partial}, results)
}

// WriteJSONOpts is WriteJSON with full control over the document shape.
func WriteJSONOpts(w io.Writer, opts JSONOptions, results []Result) error {
	mode := "full"
	if opts.Quick {
		mode = "quick"
	}
	doc := benchFile{Mode: mode, Shard: opts.Shard, Partial: opts.Partial}
	if !opts.Stable {
		doc.Workers = &opts.Workers
	}
	for _, res := range results {
		entry := benchEntry{
			ID:       res.Experiment.ID,
			Title:    res.Report.Title,
			Tags:     res.Experiment.Tags,
			Attempts: res.Attempts,
			Tables:   res.Report.Tables,
			Notes:    res.Report.AllNotes(),
		}
		if !opts.Stable {
			ms := float64(res.Duration.Microseconds()) / 1000
			entry.DurationMS = &ms
		}
		if res.Err != nil {
			entry.Error = res.Err.Error()
		}
		doc.Experiments = append(doc.Experiments, entry)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
