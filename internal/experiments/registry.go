package experiments

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Experiment is one registered reproduction: a stable ID (the anchor for
// seeding, selection and benchmarks), a human title, coarse tags for
// selection, and the Run function. Run is a pure function of (ctx, Config):
// it reports skipped sub-cases as errors wrapping ErrSkipped, honours ctx
// cancellation between sub-cases (Config.Sweep), and never depends on
// scheduling order.
type Experiment struct {
	ID    string
	Title string
	Tags  []string
	Run   func(ctx context.Context, cfg Config) (Report, error)

	// Subcases, when non-nil, enumerates the canonical sub-case keys of a
	// splittable experiment — the atomic units a sharded sweep may
	// distribute across machines. An experiment that declares Subcases
	// promises that (a) Run with Config.SubSelect set to any subset
	// produces exactly the table rows, notes and skips the full run would
	// produce for those sub-cases (sub-case seeding from (ID, subkey)
	// makes this automatic), (b) it renders a single table, and (c) each
	// table row's first cell is the sub-case key, so partial tables merge
	// back in canonical order. nil means the experiment only runs whole.
	Subcases func() []string
}

var registry []Experiment

// Register adds an experiment to the package registry. It is called from
// the init functions of the per-experiment files; duplicate IDs are a
// programming error and panic immediately. The registry is kept in
// canonical report order (T* tables first, then E* by number) rather than
// init order, which depends on source file names.
func Register(e Experiment) {
	if e.ID == "" || e.Run == nil {
		panic("experiments: Register needs an ID and a Run function")
	}
	for _, have := range registry {
		if have.ID == e.ID {
			panic(fmt.Sprintf("experiments: duplicate ID %q", e.ID))
		}
	}
	registry = append(registry, e)
	sort.SliceStable(registry, func(i, j int) bool {
		return canonicalLess(registry[i].ID, registry[j].ID)
	})
}

// canonicalLess orders experiment IDs as the paper's reports do: T1, T2,
// then E1-E3, E4, … E13 by leading number.
func canonicalLess(a, b string) bool {
	ka, na := idKey(a)
	kb, nb := idKey(b)
	if ka != kb {
		return ka < kb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

// idKey splits an ID like "E1-E3" into a family rank (T=0, E=1, other=2)
// and its leading number.
func idKey(id string) (family, num int) {
	family = 2
	switch {
	case strings.HasPrefix(id, "T"):
		family = 0
	case strings.HasPrefix(id, "E"):
		family = 1
	}
	for i := 1; i < len(id) && id[i] >= '0' && id[i] <= '9'; i++ {
		num = num*10 + int(id[i]-'0')
	}
	return family, num
}

// Registered returns all experiments in canonical order. The slice is a
// copy; callers may reorder or filter it freely.
func Registered() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the registered experiment IDs in canonical order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Select returns the experiments whose ID or any tag matches the regular
// expression, preserving canonical order. An empty pattern selects
// everything (mirroring `go test -run`).
func Select(pattern string) ([]Experiment, error) {
	if pattern == "" {
		return Registered(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("experiments: bad -run pattern %q: %w", pattern, err)
	}
	var out []Experiment
	for _, e := range registry {
		if re.MatchString(e.ID) || matchesAny(re, e.Tags) {
			out = append(out, e)
		}
	}
	return out, nil
}

func matchesAny(re *regexp.Regexp, ss []string) bool {
	for _, s := range ss {
		if re.MatchString(s) {
			return true
		}
	}
	return false
}

// Tags returns the sorted union of all registered tags (for -run help text).
func Tags() []string {
	set := map[string]bool{}
	for _, e := range registry {
		for _, t := range e.Tags {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
