package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E1-E3",
		Title: "Deterministic algorithm sweeps (Thms 4, 10, 11; Prop 12)",
		Tags:  []string{"sweep", "deterministic", "thm4", "thm10", "thm11"},
		Run:   runDetSweep,
	})
}

// runDetSweep measures the deterministic algorithm on lines (Thm 4), 2-d
// grids (Thm 10) and bufferless lines (Thm 11 / Prop 12).
func runDetSweep(ctx context.Context, cfg Config) (Report, error) {
	t := stats.NewTable("Deterministic algorithm: certified ratios vs n (Thm 4, 10, 11)",
		"experiment", "n", "B", "c", "ipp", "ipp'", "delivered", "upper (certificate)", "ratio")
	var skips SkipList
	sizes := cfg.Sizes()

	// Lines (Thm 4).
	type lineSlot struct {
		res   *core.DetResult
		upper float64
		ok    bool
	}
	lines, timedOut, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, skip func(string, ...any)) lineSlot {
		n := sizes[i]
		g := grid.Line(n, 3, 3)
		reqs := scenario.Uniform(g, 5*n, int64(2*n), cfg.SubRNG(fmt.Sprintf("thm4/n=%d", n)))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			skip("E1 Thm4 line n=%d: %v", n, err)
			return lineSlot{}
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		return lineSlot{res: res, upper: upper, ok: true}
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("E1 Thm4 line n=%d", sizes[i]) })
	var lineNs []int
	var lineRatios []float64
	for i, n := range sizes {
		s := lines[i]
		if !s.ok {
			continue
		}
		r := ratio(s.upper, s.res.Throughput)
		t.AddRow("E1 Thm4 line", n, 3, 3, s.res.Admitted, s.res.ReachedLastTile, s.res.Throughput,
			fmt.Sprintf("%.1f (dual)", s.upper), r)
		lineNs = append(lineNs, n)
		lineRatios = append(lineRatios, r)
	}

	// 2-d grids (Thm 10).
	grids := []int{6, 8}
	if !cfg.Quick {
		grids = []int{6, 8, 12, 16}
	}
	grid2d, timedOut2, err := SweepResults(ctx, cfg, &skips, len(grids), func(i int, skip func(string, ...any)) lineSlot {
		s := grids[i]
		g := grid.New([]int{s, s}, 3, 3)
		reqs := scenario.Uniform(g, 6*s*s, int64(3*s), cfg.SubRNG(fmt.Sprintf("thm10/side=%d", s)))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, rerr := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if rerr != nil {
			skip("E2 Thm10 2-d side=%d: %v", s, rerr)
			return lineSlot{}
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		return lineSlot{res: res, upper: upper, ok: true}
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut2, func(i int) string { return fmt.Sprintf("E2 Thm10 2-d side=%d", grids[i]) })
	for i, s := range grids {
		sl := grid2d[i]
		if !sl.ok {
			continue
		}
		t.AddRow("E2 Thm10 2-d", s*s, 3, 3, sl.res.Admitted, sl.res.ReachedLastTile, sl.res.Throughput,
			fmt.Sprintf("%.1f (dual)", sl.upper), ratio(sl.upper, sl.res.Throughput))
	}

	// Bufferless lines (Thm 11) against the exact OPT (Prop 12 machinery).
	type b0Slot struct {
		res   *core.DetResult
		opt   int
		ntgTP int
		ok    bool
	}
	b0, timedOut3, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, skip func(string, ...any)) b0Slot {
		n := sizes[i]
		g := grid.Line(n, 0, 3)
		reqs := scenario.Uniform(g, 4*n, int64(2*n), cfg.SubRNG(fmt.Sprintf("thm11/n=%d", n)))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, rerr := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if rerr != nil {
			skip("E3 Thm11 B=0 n=%d: %v", n, rerr)
			return b0Slot{}
		}
		return b0Slot{
			res:   res,
			opt:   optbound.ExactBufferlessLine(g, reqs),
			ntgTP: baseline.Run(g, reqs, baseline.NearestToGo{}, netsim.Model1, horizon).Throughput(),
			ok:    true,
		}
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut3, func(i int) string { return fmt.Sprintf("E3 Thm11 B=0 n=%d", sizes[i]) })
	for i, n := range sizes {
		s := b0[i]
		if !s.ok {
			continue
		}
		t.AddRow("E3 Thm11 B=0", n, 0, 3, s.res.Admitted, s.res.ReachedLastTile, s.res.Throughput,
			fmt.Sprintf("%d (exact)", s.opt), ratio(float64(s.opt), s.res.Throughput))
		t.AddRow("E3 NTG B=0 (Prop12)", n, 0, 3, "-", "-", s.ntgTP,
			fmt.Sprintf("%d (exact)", s.opt), ratio(float64(s.opt), s.ntgTP))
	}

	exp := stats.GrowthExponent(lineNs, lineRatios)
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Fitted line-ratio growth exponent b = %.2f (polylog curves fit b ≈ 0; the Ω(√n) greedy curve of T1 fits b ≥ 0.5).", exp),
			"Dual-certificate ratios overestimate the true competitive ratio by up to 2× (Thm 1's primal/dual gap) plus the fractional/integral gap.",
		},
	})
}
