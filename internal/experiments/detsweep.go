package experiments

import (
	"fmt"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E1-E3",
		Title: "Deterministic algorithm sweeps (Thms 4, 10, 11; Prop 12)",
		Tags:  []string{"sweep", "deterministic", "thm4", "thm10", "thm11"},
		Run:   runDetSweep,
	})
}

// runDetSweep measures the deterministic algorithm on lines (Thm 4), 2-d
// grids (Thm 10) and bufferless lines (Thm 11 / Prop 12).
func runDetSweep(cfg Config) Report {
	t := stats.NewTable("Deterministic algorithm: certified ratios vs n (Thm 4, 10, 11)",
		"experiment", "n", "B", "c", "ipp", "ipp'", "delivered", "upper (certificate)", "ratio")
	var lineNs []int
	var lineRatios []float64
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 3, 3)
		reqs := workload.Uniform(g, 5*n, int64(2*n), cfg.RNG(int64(n)+1))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			continue
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		r := ratio(upper, res.Throughput)
		t.AddRow("E1 Thm4 line", n, 3, 3, res.Admitted, res.ReachedLastTile, res.Throughput,
			fmt.Sprintf("%.1f (dual)", upper), r)
		lineNs = append(lineNs, n)
		lineRatios = append(lineRatios, r)
	}
	// 2-d grids (Thm 10).
	sides := []int{6, 8}
	if !cfg.Quick {
		sides = []int{6, 8, 12, 16}
	}
	for _, s := range sides {
		g := grid.New([]int{s, s}, 3, 3)
		reqs := workload.Uniform(g, 6*s*s, int64(3*s), cfg.RNG(int64(s)+2))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			continue
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		t.AddRow("E2 Thm10 2-d", s*s, 3, 3, res.Admitted, res.ReachedLastTile, res.Throughput,
			fmt.Sprintf("%.1f (dual)", upper), ratio(upper, res.Throughput))
	}
	// Bufferless lines (Thm 11) against the exact OPT (Prop 12 machinery).
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 0, 3)
		reqs := workload.Uniform(g, 4*n, int64(2*n), cfg.RNG(int64(n)+3))
		horizon := spacetime.SuggestHorizon(g, reqs, 3)
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			continue
		}
		opt := optbound.ExactBufferlessLine(g, reqs)
		ntg := baseline.Run(g, reqs, baseline.NearestToGo{}, netsim.Model1, horizon)
		t.AddRow("E3 Thm11 B=0", n, 0, 3, res.Admitted, res.ReachedLastTile, res.Throughput,
			fmt.Sprintf("%d (exact)", opt), ratio(float64(opt), res.Throughput))
		t.AddRow("E3 NTG B=0 (Prop12)", n, 0, 3, "-", "-", ntg.Throughput(),
			fmt.Sprintf("%d (exact)", opt), ratio(float64(opt), ntg.Throughput()))
	}
	exp := stats.GrowthExponent(lineNs, lineRatios)
	return Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Fitted line-ratio growth exponent b = %.2f (polylog curves fit b ≈ 0; the Ω(√n) greedy curve of T1 fits b ≥ 0.5).", exp),
			"Dual-certificate ratios overestimate the true competitive ratio by up to 2× (Thm 1's primal/dual gap) plus the fractional/integral gap.",
		},
	}
}
