package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gridroute/internal/scenario"
)

// Result is one executed experiment: its report, the error that ended it
// (nil on success; wraps ErrSkipped for deterministic partial results), the
// wall-clock time across all attempts, and how many attempts were made.
// Attempts is 0 when the experiment was cancelled before it ever started.
type Result struct {
	Experiment Experiment
	Report     Report
	Err        error
	Duration   time.Duration
	Attempts   int
}

// Policy controls how the Runner shepherds each experiment through failure.
type Policy struct {
	// Timeout bounds each attempt of one experiment; 0 means no limit.
	// Experiments observe it cooperatively between sub-cases (Config.Sweep);
	// an attempt that overruns is abandoned and reported as
	// context.DeadlineExceeded.
	Timeout time.Duration
	// SubTimeout bounds each individual sub-case of an experiment's
	// SweepResults sweeps; 0 means no limit. A sub-case that overruns is
	// abandoned (its pool slot reclaimed, its result discarded) and
	// surfaces as a skipped sub-case in the report — a deterministic
	// partial result, never a retried failure. Unlike Timeout, one slow
	// sub-case costs only its own table row, not the whole experiment.
	SubTimeout time.Duration
	// Retries is how many times a failed attempt is re-run. Errors wrapping
	// ErrSkipped and cancellations of the caller's context are never
	// retried: both are deterministic, so a retry cannot help.
	Retries int
}

// Runner executes a set of experiments over a bounded pool of goroutines.
// Results stream back in input order regardless of which worker finished
// first, and every experiment is seeded from its ID alone (SeedFor), so the
// rendered tables are byte-identical for any Workers value.
type Runner struct {
	// Workers bounds both the experiment-level pool and the shared sub-task
	// pool (Config.Sweep); values < 1 mean GOMAXPROCS.
	Workers int
	// Quick selects the reduced sweep.
	Quick bool
	// Policy is the per-experiment timeout/retry policy (zero = run once,
	// no time limit).
	Policy Policy
}

// SeedFor derives the deterministic seed for an experiment ID and an
// optional chain of sub-case keys (FNV-1a over the NUL-joined parts).
// Scheduling order never enters the seed: SeedFor("T1") names the same
// stream on every machine, and SeedFor("T1", "n=64") a distinct one.
// It delegates to scenario.SeedFor — one implementation for the one
// seeding convention both registries promise.
func SeedFor(id string, subkeys ...string) int64 {
	return scenario.SeedFor(id, subkeys...)
}

// subpool is the shared sub-task semaphore: one slot per -j worker, shared
// between experiments so intra-experiment parallelism cannot multiply the
// concurrency bound. Slots are held under a per-attempt lease so that when
// a timed-out attempt is abandoned, the slots its hung sub-tasks still
// hold can be reclaimed instead of starving every other experiment.
type subpool struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

func newSubpool(n int) *subpool {
	p := &subpool{free: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// lease is one attempt's slot accounting. All fields are guarded by the
// pool's mutex. Sub-cases that can be abandoned individually (SweepResults
// under Policy.SubTimeout) hold their own child leases, registered under
// the attempt lease so an attempt-level reclaim frees them too.
type lease struct {
	held      int
	abandoned bool
	children  []*lease
}

// acquire blocks until a slot is free or ctx is done.
func (p *subpool) acquire(ctx context.Context, l *lease) error {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.free == 0 && ctx.Err() == nil {
		p.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p.free--
	l.held++
	return nil
}

// release returns a slot unless the lease was already reclaimed (the
// runner freed the abandoned attempt's slots on its behalf).
func (p *subpool) release(l *lease) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l.held--
	if l.abandoned {
		return
	}
	p.free++
	p.cond.Signal()
}

// reclaim frees every slot an abandoned attempt still holds — including
// slots held by its child leases — so a hung sub-task stops counting
// against the shared pool. The hung goroutine may keep computing (Go
// cannot kill it), but other experiments regain their concurrency; its own
// eventual release becomes a no-op.
func (p *subpool) reclaim(l *lease) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reclaimLocked(l)
	p.cond.Broadcast()
}

func (p *subpool) reclaimLocked(l *lease) {
	if l.abandoned {
		return
	}
	l.abandoned = true
	p.free += l.held
	for _, c := range l.children {
		p.reclaimLocked(c)
	}
}

// adopt registers child under parent so that reclaiming the parent (an
// abandoned attempt) also frees the child's slots. A child adopted into an
// already-abandoned parent is reclaimed immediately.
func (p *subpool) adopt(parent, child *lease) {
	if parent == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	parent.children = append(parent.children, child)
	if parent.abandoned {
		p.reclaimLocked(child)
		p.cond.Broadcast()
	}
}

func (r Runner) workers(jobs int) (expWorkers, poolSize int) {
	poolSize = r.Workers
	if poolSize < 1 {
		poolSize = runtime.GOMAXPROCS(0)
	}
	expWorkers = poolSize
	if expWorkers > jobs {
		expWorkers = jobs
	}
	return expWorkers, poolSize
}

// Job is one unit of Runner work: an experiment plus an optional
// restriction to a subset of its sub-cases (Config.SubSelect). A sharded
// sweep turns its unit assignment into Jobs; an unsharded sweep uses
// whole-experiment Jobs with a nil SubSelect.
type Job struct {
	Experiment Experiment
	// SubSelect restricts a splittable experiment (Experiment.Subcases) to
	// the named sub-cases; nil runs the experiment whole.
	SubSelect []string
}

// Stream executes the experiments and emits one Result per input on the
// returned channel, in input order, as soon as each becomes available: a
// small reorder buffer holds out-of-order finishers until their turn. The
// channel always delivers exactly len(exps) results and is then closed —
// after ctx is cancelled, not-yet-started experiments drain immediately as
// Results whose Err is ctx's error, so a consumer can flush partial output
// and still see the full accounting.
func (r Runner) Stream(ctx context.Context, exps []Experiment) <-chan Result {
	jobs := make([]Job, len(exps))
	for i, e := range exps {
		jobs[i] = Job{Experiment: e}
	}
	return r.StreamJobs(ctx, jobs)
}

// StreamJobs is Stream over explicit Jobs: the sharded form, where a job
// may cover only a subset of a splittable experiment's sub-cases. The
// streaming, ordering and drain-on-cancel contract is identical to Stream.
func (r Runner) StreamJobs(ctx context.Context, jobList []Job) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	expWorkers, poolSize := r.workers(len(jobList))
	pool := newSubpool(poolSize)
	type indexed struct {
		i   int
		res Result
	}
	jobs := make(chan int)
	finished := make(chan indexed)
	for w := 0; w < expWorkers; w++ {
		go func() {
			for i := range jobs {
				j := jobList[i]
				if err := ctx.Err(); err != nil {
					// Drain without running so every index still yields a
					// Result and the stream can close.
					finished <- indexed{i, Result{
						Experiment: j.Experiment,
						Report:     Report{ID: j.Experiment.ID, Title: j.Experiment.Title},
						Err:        err,
					}}
					continue
				}
				finished <- indexed{i, r.runOne(ctx, j, pool)}
			}
		}()
	}
	go func() {
		for i := range jobList {
			jobs <- i
		}
		close(jobs)
	}()
	out := make(chan Result)
	go func() {
		defer close(out)
		pending := make(map[int]Result)
		next := 0
		for received := 0; received < len(jobList); received++ {
			fin := <-finished
			pending[fin.i] = fin.res
			for {
				res, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- res
				next++
			}
		}
	}()
	return out
}

// runOne shepherds a single job through the retry policy.
func (r Runner) runOne(ctx context.Context, j Job, pool *subpool) Result {
	e := j.Experiment
	res := Result{Experiment: e}
	start := time.Now() //gridlint:allow experiment wall-time measurement; reported, never fed back into results
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		res.Report, res.Err = r.attempt(ctx, j, pool)
		if res.Err == nil || errors.Is(res.Err, ErrSkipped) {
			break
		}
		if ctx.Err() != nil || attempt > r.Policy.Retries {
			break
		}
	}
	res.Duration = time.Since(start) //gridlint:allow experiment wall-time measurement; reported, never fed back into results
	// The registry entry is the single source of truth for ID and Title;
	// Run functions only produce tables and notes.
	res.Report.ID, res.Report.Title = e.ID, e.Title
	return res
}

// attempt runs the experiment once. Without a timeout it runs inline and
// relies on the experiment observing ctx cooperatively (Config.Sweep checks
// between sub-cases). With a Policy timeout the run gets its own goroutine
// so a stuck experiment can be abandoned at the deadline — its sub-tasks
// stop at the next Sweep cancellation check and release their pool slots.
func (r Runner) attempt(ctx context.Context, j Job, pool *subpool) (Report, error) {
	e := j.Experiment
	cfg := Config{Quick: r.Quick, ID: e.ID, Seed: SeedFor(e.ID), SubSelect: j.SubSelect, pool: pool, lease: &lease{}, subTimeout: r.Policy.SubTimeout}
	if r.Policy.Timeout <= 0 {
		return safeRun(ctx, e, cfg)
	}
	actx, cancel := context.WithTimeout(ctx, r.Policy.Timeout)
	defer cancel()
	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := safeRun(actx, e, cfg)
		done <- outcome{rep, err}
	}()
	select {
	case o := <-done:
		return o.rep, o.err
	case <-actx.Done():
		// Abandon the attempt and hand its still-held pool slots back so a
		// hung sub-case cannot starve the rest of the sweep.
		pool.reclaim(cfg.lease)
		return Report{}, actx.Err()
	}
}

// safeRun converts an experiment panic into an error so one broken
// experiment cannot take down the worker (or the whole sweep).
func safeRun(ctx context.Context, e Experiment, cfg Config) (rep Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s panicked: %v", e.ID, p)
		}
	}()
	return e.Run(ctx, cfg)
}

// Run executes the experiments and returns one Result per input, in input
// order, after the whole set has drained.
func (r Runner) Run(ctx context.Context, exps []Experiment) []Result {
	results := make([]Result, 0, len(exps))
	for res := range r.Stream(ctx, exps) {
		results = append(results, res)
	}
	return results
}

// RunAll executes every registered experiment.
func (r Runner) RunAll(ctx context.Context) []Result {
	return r.Run(ctx, Registered())
}
