package experiments

import (
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Result is one executed experiment: its report plus the wall-clock time
// the Run call took on this machine.
type Result struct {
	Experiment Experiment
	Report     Report
	Duration   time.Duration
}

// Runner executes a set of experiments over a bounded pool of goroutines.
// Results come back in input order regardless of which worker finished
// first, and every experiment is seeded from its ID alone (SeedFor), so the
// rendered tables are byte-identical for any Workers value.
type Runner struct {
	// Workers bounds the goroutine pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Quick selects the reduced sweep.
	Quick bool
}

// SeedFor derives the deterministic base seed for an experiment ID
// (FNV-1a over the ID bytes). Scheduling order never enters the seed.
func SeedFor(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// Run executes the experiments and returns one Result per input, in input
// order.
func (r Runner) Run(exps []Experiment) []Result {
	workers := r.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]Result, len(exps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e := exps[i]
				cfg := Config{Quick: r.Quick, Seed: SeedFor(e.ID)}
				start := time.Now()
				rep := e.Run(cfg)
				// The registry entry is the single source of truth for ID and
				// Title; Run functions only produce tables and notes.
				rep.ID, rep.Title = e.ID, e.Title
				results[i] = Result{Experiment: e, Report: rep, Duration: time.Since(start)}
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// RunAll executes every registered experiment.
func (r Runner) RunAll() []Result {
	return r.Run(Registered())
}
