package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func renderAll(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Report.Markdown())
	}
	return b.String()
}

// stub builds a synthetic experiment for runner-behaviour tests.
func stub(id string, run func(ctx context.Context, cfg Config) (Report, error)) Experiment {
	return Experiment{ID: id, Title: "stub " + id, Tags: []string{"stub"}, Run: run}
}

func okStub(id string) Experiment {
	return stub(id, func(context.Context, Config) (Report, error) {
		return Report{Notes: []string{"ok"}}, nil
	})
}

// A parallel run must produce byte-identical tables to a serial run at any
// worker count: every experiment — and every sub-case of its n-sweep — is
// seeded from its ID, never from scheduling order.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	serial := Runner{Workers: 1, Quick: true}.RunAll(ctx)
	sMD := renderAll(serial)
	for _, workers := range []int{4, 8} {
		parallel := Runner{Workers: workers, Quick: true}.RunAll(ctx)
		if pMD := renderAll(parallel); sMD != pMD {
			t.Fatalf("-j %d markdown differs from serial (-j 1):\nserial:\n%.2000s\nparallel:\n%.2000s", workers, sMD, pMD)
		}
	}
	if !strings.Contains(sMD, "## T1") || !strings.Contains(sMD, "## E13") {
		t.Fatal("rendered suite is missing expected sections")
	}
	for _, res := range serial {
		if res.Err != nil && !errors.Is(res.Err, ErrSkipped) {
			t.Errorf("%s: unexpected error %v", res.Experiment.ID, res.Err)
		}
	}
}

func TestRunnerPreservesInputOrder(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"E13", "T1", "E4"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("missing %s", id)
		}
		// Stub the heavy Run: order preservation is a scheduling property.
		exps = append(exps, okStub(id))
	}
	results := Runner{Workers: 3, Quick: true}.Run(context.Background(), exps)
	for i, want := range []string{"E13", "T1", "E4"} {
		if results[i].Experiment.ID != want || results[i].Report.ID != want {
			t.Fatalf("result %d = %s (report %s), want %s", i, results[i].Experiment.ID, results[i].Report.ID, want)
		}
	}
}

func TestRunnerWorkerClamping(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 100} {
		results := Runner{Workers: workers, Quick: true}.Run(context.Background(), []Experiment{okStub("E9")})
		if len(results) != 1 || len(results[0].Report.Notes) != 1 {
			t.Fatalf("Workers=%d: bad results %+v", workers, results)
		}
		// The runner stamps ID/Title from the input entry.
		if results[0].Report.ID != "E9" || results[0].Report.Title != "stub E9" {
			t.Fatalf("Workers=%d: report not stamped: %+v", workers, results[0].Report)
		}
		if results[0].Err != nil || results[0].Attempts != 1 {
			t.Fatalf("Workers=%d: err=%v attempts=%d", workers, results[0].Err, results[0].Attempts)
		}
	}
}

// Stream must emit each result as soon as its turn comes, not after the
// whole set finishes: the first (slow) experiment's result must be
// deliverable while the last one is still blocked.
func TestStreamEmitsIncrementally(t *testing.T) {
	release := make(chan struct{})
	exps := []Experiment{
		okStub("A"),
		stub("B", func(context.Context, Config) (Report, error) {
			<-release
			return Report{}, nil
		}),
	}
	ch := Runner{Workers: 2}.Stream(context.Background(), exps)
	select {
	case res := <-ch:
		if res.Experiment.ID != "A" {
			t.Fatalf("first emitted = %s, want A", res.Experiment.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("A's result was held back until the whole sweep finished")
	}
	close(release)
	if res := <-ch; res.Experiment.ID != "B" {
		t.Fatalf("second emitted = %s, want B", res.Experiment.ID)
	}
	if _, open := <-ch; open {
		t.Fatal("stream not closed after all results")
	}
}

// The reorder buffer must hold an early finisher until its predecessors
// have been emitted, preserving canonical order.
func TestStreamPreservesOrderAcrossFinishTimes(t *testing.T) {
	firstDone := make(chan struct{})
	exps := []Experiment{
		stub("slow", func(context.Context, Config) (Report, error) {
			<-firstDone // finishes last
			return Report{}, nil
		}),
		stub("fast", func(context.Context, Config) (Report, error) {
			close(firstDone) // finishes first
			return Report{}, nil
		}),
	}
	var got []string
	for res := range (Runner{Workers: 2}).Stream(context.Background(), exps) {
		got = append(got, res.Experiment.ID)
	}
	if strings.Join(got, ",") != "slow,fast" {
		t.Fatalf("emission order %v, want [slow fast]", got)
	}
}

// An experiment that overruns the per-attempt timeout is abandoned and
// reported as DeadlineExceeded after exhausting the retry budget.
func TestRunnerTimeout(t *testing.T) {
	exp := stub("hang", func(ctx context.Context, _ Config) (Report, error) {
		select {
		case <-ctx.Done():
			return Report{}, ctx.Err()
		case <-time.After(30 * time.Second):
			return Report{}, errors.New("never reached")
		}
	})
	r := Runner{Workers: 1, Policy: Policy{Timeout: 20 * time.Millisecond, Retries: 1}}
	results := r.Run(context.Background(), []Experiment{exp})
	res := results[0]
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (timeouts count against the retry budget)", res.Attempts)
	}
}

// When a timed-out attempt is abandoned while a hung sub-task still holds
// a shared pool slot, the slot must be reclaimed: later experiments in the
// same sweep still get to run (they'd deadlock forever otherwise).
func TestRunnerTimeoutReclaimsPoolSlots(t *testing.T) {
	unhang := make(chan struct{})
	defer close(unhang)
	hung := stub("hung", func(ctx context.Context, cfg Config) (Report, error) {
		err := cfg.Sweep(ctx, 1, func(int) { <-unhang })
		return Report{}, err
	})
	healthy := stub("healthy", func(ctx context.Context, cfg Config) (Report, error) {
		ran := 0
		if err := cfg.Sweep(ctx, 3, func(int) { ran++ }); err != nil {
			return Report{}, err
		}
		return Report{Notes: []string{fmt.Sprint(ran)}}, nil
	})
	// Workers=1: a single shared slot, held by the hung sub-task when the
	// attempt is abandoned at the deadline.
	r := Runner{Workers: 1, Policy: Policy{Timeout: 30 * time.Millisecond}}
	doneCh := make(chan []Result, 1)
	go func() { doneCh <- r.Run(context.Background(), []Experiment{hung, healthy}) }()
	select {
	case results := <-doneCh:
		if !errors.Is(results[0].Err, context.DeadlineExceeded) {
			t.Fatalf("hung: err = %v, want DeadlineExceeded", results[0].Err)
		}
		if results[1].Err != nil || len(results[1].Report.Notes) != 1 || results[1].Report.Notes[0] != "3" {
			t.Fatalf("healthy experiment starved: %+v", results[1])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep deadlocked: abandoned attempt's pool slot was never reclaimed")
	}
}

// A transiently failing experiment is retried and its eventual success
// reported, with the attempt count visible.
func TestRunnerRetryThenSucceed(t *testing.T) {
	var calls atomic.Int32
	exp := stub("flaky", func(context.Context, Config) (Report, error) {
		if calls.Add(1) < 3 {
			return Report{}, fmt.Errorf("transient failure %d", calls.Load())
		}
		return Report{Notes: []string{"recovered"}}, nil
	})
	results := Runner{Workers: 1, Policy: Policy{Retries: 3}}.Run(context.Background(), []Experiment{exp})
	res := results[0]
	if res.Err != nil {
		t.Fatalf("err = %v, want nil after retries", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if len(res.Report.Notes) != 1 {
		t.Fatalf("report lost across retries: %+v", res.Report)
	}
}

// Retries stop at the budget and the last error is surfaced.
func TestRunnerRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	exp := stub("broken", func(context.Context, Config) (Report, error) {
		calls.Add(1)
		return Report{}, errors.New("permanent failure")
	})
	results := Runner{Workers: 1, Policy: Policy{Retries: 2}}.Run(context.Background(), []Experiment{exp})
	if got := calls.Load(); got != 3 {
		t.Fatalf("experiment ran %d times, want 3 (1 + 2 retries)", got)
	}
	if res := results[0]; res.Err == nil || res.Attempts != 3 {
		t.Fatalf("err=%v attempts=%d, want error after 3 attempts", res.Err, res.Attempts)
	}
}

// ErrSkipped is a deterministic partial result: retrying cannot help, so
// the runner must not burn the retry budget on it.
func TestRunnerDoesNotRetrySkipped(t *testing.T) {
	var calls atomic.Int32
	exp := stub("partial", func(context.Context, Config) (Report, error) {
		calls.Add(1)
		var skips SkipList
		skips.Skip("n=256: out of memory")
		return skips.finish(Report{Notes: []string{"partial tables"}})
	})
	results := Runner{Workers: 1, Policy: Policy{Retries: 5}}.Run(context.Background(), []Experiment{exp})
	if calls.Load() != 1 {
		t.Fatalf("skipped experiment retried %d times", calls.Load()-1)
	}
	res := results[0]
	if !errors.Is(res.Err, ErrSkipped) {
		t.Fatalf("err = %v, want ErrSkipped", res.Err)
	}
	if !strings.Contains(strings.Join(res.Report.AllNotes(), "\n"), "skipped sub-cases") {
		t.Fatalf("skip list missing from notes: %v", res.Report.AllNotes())
	}
}

// Cancelling the caller's context mid-sweep stops new experiments, drains
// the rest as cancelled results (so the stream still closes after exactly
// len(exps) results), and never retries the cancellation.
func TestRunnerCtxCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	exps := []Experiment{
		okStub("first"),
		stub("trigger", func(context.Context, Config) (Report, error) {
			cancel()
			return Report{}, nil
		}),
		okStub("after"),
		okStub("last"),
	}
	results := Runner{Workers: 1, Policy: Policy{Retries: 5}}.Run(ctx, exps)
	if len(results) != len(exps) {
		t.Fatalf("got %d results, want %d (cancelled experiments must still drain)", len(results), len(exps))
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("pre-cancel results errored: %v, %v", results[0].Err, results[1].Err)
	}
	for _, res := range results[2:] {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", res.Experiment.ID, res.Err)
		}
		if res.Report.ID != res.Experiment.ID {
			t.Fatalf("%s: cancelled result not stamped", res.Experiment.ID)
		}
	}
}

// A panicking experiment must not kill the worker; it surfaces as an error
// and is retried like any failure.
func TestRunnerRecoversPanics(t *testing.T) {
	exp := stub("boom", func(context.Context, Config) (Report, error) {
		panic("table flipped")
	})
	results := Runner{Workers: 1}.Run(context.Background(), []Experiment{exp, okStub("next")})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panicked") {
		t.Fatalf("panic not surfaced: %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("worker died after panic: %v", results[1].Err)
	}
}

func TestSeedForSubkeys(t *testing.T) {
	if SeedFor("T1") != SeedFor("T1") {
		t.Fatal("SeedFor must be deterministic")
	}
	if SeedFor("T1", "n=64") == SeedFor("T1") {
		t.Fatal("subkey must change the seed")
	}
	if SeedFor("T1", "n=64") == SeedFor("T1", "n=32") {
		t.Fatal("distinct subkeys must differ")
	}
	if SeedFor("T1", "n=64") != SeedFor("T1", "n=64") {
		t.Fatal("subkeyed seeds must be deterministic")
	}
	// The NUL join means ("ab", "c") and ("a", "bc") cannot collide.
	if SeedFor("ab", "c") == SeedFor("a", "bc") {
		t.Fatal("subkey framing is ambiguous")
	}
}

func TestWriteJSON(t *testing.T) {
	e := Experiment{ID: "X1", Title: "stub", Tags: []string{"stub"}}
	res := Result{
		Experiment: e,
		Report: Report{
			ID:    "X1",
			Title: "stub",
			Notes: []string{"note"},
		},
		Err:      fmt.Errorf("wrapped: %w", ErrSkipped),
		Duration: 1500 * 1000, // 1.5ms in ns
		Attempts: 2,
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, true, 4, true, []Result{res}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode        string `json:"mode"`
		Workers     int    `json:"workers"`
		Partial     bool   `json:"partial"`
		Experiments []struct {
			ID         string   `json:"id"`
			DurationMS float64  `json:"duration_ms"`
			Attempts   int      `json:"attempts"`
			Error      string   `json:"error"`
			Notes      []string `json:"notes"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Mode != "quick" || doc.Workers != 4 || !doc.Partial {
		t.Fatalf("header wrong: %+v", doc)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "X1" {
		t.Fatalf("experiments wrong: %+v", doc.Experiments)
	}
	if doc.Experiments[0].DurationMS != 1.5 {
		t.Fatalf("duration_ms = %v, want 1.5", doc.Experiments[0].DurationMS)
	}
	if doc.Experiments[0].Attempts != 2 || !strings.Contains(doc.Experiments[0].Error, "skipped") {
		t.Fatalf("error accounting wrong: %+v", doc.Experiments[0])
	}
}

// The JSON file for a real run must round-trip and carry result rows.
func TestWriteJSONQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	exps, err := Select("^T1$")
	if err != nil {
		t.Fatal(err)
	}
	results := Runner{Workers: 2, Quick: true}.Run(context.Background(), exps)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, true, 2, false, results); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"rows"`) {
		t.Fatal("JSON results missing table rows")
	}
	if _, ok := doc["partial"]; ok {
		t.Fatal("completed run must not be marked partial")
	}
}

// A sub-case that overruns Policy.SubTimeout is abandoned individually:
// its siblings' results survive, the timeout surfaces as a skipped
// sub-case, and the reclaimed pool slot lets the rest of the sweep
// proceed (Workers=1 would deadlock otherwise).
func TestSubTimeoutBoundsIndividualSubCases(t *testing.T) {
	unhang := make(chan struct{})
	defer close(unhang)
	exp := stub("subhang", func(ctx context.Context, cfg Config) (Report, error) {
		var skips SkipList
		vals, timedOut, err := SweepResults(ctx, cfg, &skips, 3, func(i int, _ func(string, ...any)) int {
			if i == 1 {
				<-unhang
			}
			return i + 1
		})
		if err != nil {
			return Report{}, err
		}
		skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("i=%d", i) })
		return skips.finish(Report{Notes: []string{fmt.Sprint(vals)}})
	})
	r := Runner{Workers: 1, Policy: Policy{SubTimeout: 30 * time.Millisecond}}
	doneCh := make(chan []Result, 1)
	go func() { doneCh <- r.Run(context.Background(), []Experiment{exp, okStub("next")}) }()
	var results []Result
	select {
	case results = <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep deadlocked: abandoned sub-case's pool slot was never reclaimed")
	}
	res := results[0]
	if !errors.Is(res.Err, ErrSkipped) {
		t.Fatalf("err = %v, want ErrSkipped", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "i=1: sub-case timeout") {
		t.Fatalf("timeout not named in error: %v", res.Err)
	}
	if len(res.Report.Notes) == 0 || !strings.Contains(res.Report.Notes[0], "[1 0 3]") {
		t.Fatalf("sibling sub-case results lost: %v", res.Report.Notes)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d: sub-case timeouts are deterministic skips, never retried", res.Attempts)
	}
	if results[1].Err != nil {
		t.Fatalf("next experiment starved after sub-case timeout: %v", results[1].Err)
	}
}

// SweepResults on a hand-built Config (no pool) sweeps serially but still
// honours the per-sub-case bound.
func TestSweepResultsInlineNoPool(t *testing.T) {
	cfg := Config{ID: "X", Seed: 1, subTimeout: 20 * time.Millisecond}
	vals, timedOut, err := SweepResults(context.Background(), cfg, nil, 3, func(i int, _ func(string, ...any)) int {
		if i == 1 {
			time.Sleep(500 * time.Millisecond)
		}
		return i + 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(timedOut) != 1 || timedOut[0] != 1 {
		t.Fatalf("timedOut = %v, want [1]", timedOut)
	}
	if vals[0] != 1 || vals[1] != 0 || vals[2] != 3 {
		t.Fatalf("vals = %v, want [1 0 3]", vals)
	}
}

// A panic inside a SweepResults sub-case is re-thrown on the experiment's
// goroutine, where the runner's containment reports a failed experiment
// instead of crashing the worker.
func TestSweepResultsPanicContained(t *testing.T) {
	exp := stub("subboom", func(ctx context.Context, cfg Config) (Report, error) {
		_, _, err := SweepResults(ctx, cfg, nil, 2, func(i int, _ func(string, ...any)) int {
			if i == 1 {
				panic("sub-case flipped")
			}
			return i
		})
		return Report{}, err
	})
	results := Runner{Workers: 2}.Run(context.Background(), []Experiment{exp, okStub("next")})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panicked") {
		t.Fatalf("sub-case panic not surfaced: %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("worker died after sub-case panic: %v", results[1].Err)
	}
}

// When Policy.Timeout abandons a whole attempt while a hung sub-case holds
// a per-sub-case lease (SubTimeout also set, but far away), the attempt
// reclaim must free the child lease's slot too — the sweep would otherwise
// starve until the distant SubTimeout fired.
func TestAttemptTimeoutReclaimsChildLeases(t *testing.T) {
	unhang := make(chan struct{})
	defer close(unhang)
	hung := stub("hung", func(ctx context.Context, cfg Config) (Report, error) {
		_, _, err := SweepResults(ctx, cfg, nil, 1, func(int, func(string, ...any)) int {
			<-unhang
			return 0
		})
		return Report{}, err
	})
	healthy := stub("healthy", func(ctx context.Context, cfg Config) (Report, error) {
		vals, _, err := SweepResults(ctx, cfg, nil, 3, func(i int, _ func(string, ...any)) int { return i })
		if err != nil {
			return Report{}, err
		}
		return Report{Notes: []string{fmt.Sprint(vals)}}, nil
	})
	// One shared slot; the sub-case lease is a child of the hung attempt's
	// lease. SubTimeout is far beyond the test horizon: only the attempt
	// reclaim can free the slot in time.
	r := Runner{Workers: 1, Policy: Policy{Timeout: 30 * time.Millisecond, SubTimeout: time.Hour}}
	doneCh := make(chan []Result, 1)
	go func() { doneCh <- r.Run(context.Background(), []Experiment{hung, healthy}) }()
	select {
	case results := <-doneCh:
		if !errors.Is(results[0].Err, context.DeadlineExceeded) {
			t.Fatalf("hung: err = %v, want DeadlineExceeded", results[0].Err)
		}
		if results[1].Err != nil || len(results[1].Report.Notes) != 1 || results[1].Report.Notes[0] != "[0 1 2]" {
			t.Fatalf("healthy experiment starved behind the child lease: %+v", results[1])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep deadlocked: attempt reclaim did not free the sub-case's child lease")
	}
}

// Skips raised by a sub-case that was abandoned at SubTimeout must vanish
// with its result: the report shows exactly one entry (the timeout), never
// a nondeterministic extra entry from the late goroutine.
func TestAbandonedSubCaseSkipsSuppressed(t *testing.T) {
	started := make(chan struct{}, 1)
	unhang := make(chan struct{})
	exp := stub("lateskip", func(ctx context.Context, cfg Config) (Report, error) {
		var skips SkipList
		_, timedOut, err := SweepResults(ctx, cfg, &skips, 1, func(i int, skip func(string, ...any)) int {
			started <- struct{}{}
			<-unhang
			skip("late skip that must be discarded")
			return 1
		})
		if err != nil {
			return Report{}, err
		}
		skips.SkipTimeouts(timedOut, func(int) string { return "sub" })
		// Let the abandoned goroutine run its skip call before rendering.
		close(unhang)
		time.Sleep(20 * time.Millisecond)
		return skips.finish(Report{})
	})
	results := Runner{Workers: 2, Policy: Policy{SubTimeout: 30 * time.Millisecond}}.Run(
		context.Background(), []Experiment{exp})
	<-started
	res := results[0]
	if !errors.Is(res.Err, ErrSkipped) || !strings.Contains(res.Err.Error(), "sub: sub-case timeout") {
		t.Fatalf("err = %v, want the sub-case timeout skip", res.Err)
	}
	if strings.Contains(res.Err.Error(), "late skip") ||
		strings.Contains(strings.Join(res.Report.AllNotes(), "\n"), "late skip") {
		t.Fatalf("abandoned sub-case's skip leaked into the report: %v / %v", res.Err, res.Report.AllNotes())
	}
}
