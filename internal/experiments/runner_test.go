package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func renderAll(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.Report.Markdown())
	}
	return b.String()
}

// A parallel run must produce byte-identical tables to a serial run: every
// experiment is seeded from its ID, never from scheduling order.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := Runner{Workers: 1, Quick: true}.RunAll()
	parallel := Runner{Workers: 4, Quick: true}.RunAll()
	sMD, pMD := renderAll(serial), renderAll(parallel)
	if sMD != pMD {
		t.Fatalf("parallel (-j 4) markdown differs from serial (-j 1):\nserial:\n%.2000s\nparallel:\n%.2000s", sMD, pMD)
	}
	if !strings.Contains(sMD, "## T1") || !strings.Contains(sMD, "## E13") {
		t.Fatal("rendered suite is missing expected sections")
	}
}

func TestRunnerPreservesInputOrder(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"E13", "T1", "E4"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		// Stub the heavy Run: order preservation is a scheduling property.
		e.Run = func(id string) func(Config) Report {
			return func(Config) Report { return Report{ID: id} }
		}(id)
		exps = append(exps, e)
	}
	results := Runner{Workers: 3, Quick: true}.Run(exps)
	for i, want := range []string{"E13", "T1", "E4"} {
		if results[i].Experiment.ID != want || results[i].Report.ID != want {
			t.Fatalf("result %d = %s (report %s), want %s", i, results[i].Experiment.ID, results[i].Report.ID, want)
		}
	}
}

func TestRunnerWorkerClamping(t *testing.T) {
	e, _ := Lookup("E9")
	e.Run = func(Config) Report { return Report{Notes: []string{"stub"}} }
	for _, workers := range []int{-1, 0, 1, 100} {
		results := Runner{Workers: workers, Quick: true}.Run([]Experiment{e})
		if len(results) != 1 || len(results[0].Report.Notes) != 1 {
			t.Fatalf("Workers=%d: bad results %+v", workers, results)
		}
		// The runner stamps ID/Title from the registry entry.
		if results[0].Report.ID != "E9" || results[0].Report.Title != e.Title {
			t.Fatalf("Workers=%d: report not stamped: %+v", workers, results[0].Report)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	e := Experiment{ID: "X1", Title: "stub", Tags: []string{"stub"}}
	res := Result{
		Experiment: e,
		Report: Report{
			ID:    "X1",
			Title: "stub",
			Notes: []string{"note"},
		},
		Duration: 1500 * 1000, // 1.5ms in ns
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, true, 4, []Result{res}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode        string `json:"mode"`
		Workers     int    `json:"workers"`
		Experiments []struct {
			ID         string   `json:"id"`
			DurationMS float64  `json:"duration_ms"`
			Notes      []string `json:"notes"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Mode != "quick" || doc.Workers != 4 {
		t.Fatalf("header wrong: %+v", doc)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "X1" {
		t.Fatalf("experiments wrong: %+v", doc.Experiments)
	}
	if doc.Experiments[0].DurationMS != 1.5 {
		t.Fatalf("duration_ms = %v, want 1.5", doc.Experiments[0].DurationMS)
	}
}

// The JSON file for a real run must round-trip and carry result rows.
func TestWriteJSONQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	exps, err := Select("^T1$")
	if err != nil {
		t.Fatal(err)
	}
	results := Runner{Workers: 2, Quick: true}.Run(exps)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, true, 2, results); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"rows"`) {
		t.Fatal("JSON results missing table rows")
	}
}
