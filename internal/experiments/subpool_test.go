package experiments

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Direct unit tests for the subpool lease machinery: the slot-reclaim path
// that keeps a timed-out sub-case (Policy.SubTimeout) or an abandoned
// attempt (Policy.Timeout) from starving every other experiment of the
// shared -j pool.

// acquireOrTimeout acquires a slot under l, failing the test if the pool
// does not yield one promptly.
func acquireOrTimeout(t *testing.T, p *subpool, l *lease) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.acquire(ctx, l); err != nil {
		t.Fatalf("acquire: %v (slot never freed)", err)
	}
}

// Reclaiming a lease that still holds slots frees them for other waiters,
// and the hung holder's eventual release must not double-free.
func TestSubpoolReclaimFreesHeldSlots(t *testing.T) {
	p := newSubpool(1)
	hung := &lease{}
	acquireOrTimeout(t, p, hung) // the "stuck sub-case" holds the only slot

	// A second acquire blocks until the hung lease is reclaimed.
	waiter := &lease{}
	got := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		got <- p.acquire(ctx, waiter)
	}()
	p.reclaim(hung)
	if err := <-got; err != nil {
		t.Fatalf("acquire after reclaim: %v", err)
	}

	// The abandoned holder finally releases: a no-op, not a free slot — the
	// pool must still be empty while the waiter holds the reclaimed slot.
	p.release(hung)
	p.mu.Lock()
	free := p.free
	p.mu.Unlock()
	if free != 0 {
		t.Fatalf("free = %d after late release of a reclaimed lease, want 0 (double-free)", free)
	}
	p.release(waiter)
	p.mu.Lock()
	free = p.free
	p.mu.Unlock()
	if free != 1 {
		t.Fatalf("free = %d after all releases, want 1", free)
	}
}

// Reclaiming a parent lease frees the slots of its adopted children — the
// attempt-timeout path, where sub-cases of the abandoned attempt hold their
// own child leases.
func TestSubpoolReclaimCascadesToAdoptedChildren(t *testing.T) {
	p := newSubpool(2)
	parent := &lease{}
	child := &lease{}
	acquireOrTimeout(t, p, parent)
	acquireOrTimeout(t, p, child)
	p.adopt(parent, child)

	// Both slots are held; reclaiming the parent must free both.
	p.reclaim(parent)
	a, b := &lease{}, &lease{}
	acquireOrTimeout(t, p, a)
	acquireOrTimeout(t, p, b)

	// Late releases from the abandoned pair are no-ops.
	p.release(parent)
	p.release(child)
	p.mu.Lock()
	free := p.free
	p.mu.Unlock()
	if free != 0 {
		t.Fatalf("free = %d, want 0: reclaimed leases released slots back", free)
	}
}

// A child adopted into an already-abandoned parent is reclaimed on the
// spot: its slot returns to the pool immediately, closing the race between
// an attempt-level reclaim and a sub-case acquiring just after it.
func TestSubpoolAdoptIntoAbandonedParent(t *testing.T) {
	p := newSubpool(1)
	parent := &lease{}
	p.reclaim(parent) // attempt abandoned before the sub-case registered

	child := &lease{}
	acquireOrTimeout(t, p, child)
	p.adopt(parent, child)

	// The adoption must have reclaimed the child's slot already.
	next := &lease{}
	acquireOrTimeout(t, p, next)
	p.release(next)
}

// Repeated SubTimeout-style reclaims must never shrink the pool: after any
// number of reclaim/late-release cycles every slot is still acquirable — no
// starvation.
func TestSubpoolReclaimedSlotsAreReusable(t *testing.T) {
	const slots = 3
	p := newSubpool(slots)
	for round := 0; round < 50; round++ {
		l := &lease{}
		acquireOrTimeout(t, p, l)
		p.reclaim(l) // sub-case timed out, slot reclaimed
		p.release(l) // the hung goroutine finishes eventually
	}
	// All slots must still be there, concurrently.
	var wg sync.WaitGroup
	held := make([]*lease, slots)
	for i := range held {
		held[i] = &lease{}
		wg.Add(1)
		go func(l *lease) {
			defer wg.Done()
			acquireOrTimeout(t, p, l)
		}(held[i])
	}
	wg.Wait()
	p.mu.Lock()
	free := p.free
	p.mu.Unlock()
	if free != 0 {
		t.Fatalf("free = %d with all %d slots held, want 0", free, slots)
	}
	for _, l := range held {
		p.release(l)
	}
	p.mu.Lock()
	free = p.free
	p.mu.Unlock()
	if free != slots {
		t.Fatalf("free = %d after releasing everything, want %d", free, slots)
	}
}

// Double reclaim of the same lease is idempotent (the SubTimeout settle
// path and an attempt-level reclaim can both hit one lease).
func TestSubpoolDoubleReclaimIdempotent(t *testing.T) {
	p := newSubpool(1)
	l := &lease{}
	acquireOrTimeout(t, p, l)
	p.reclaim(l)
	p.reclaim(l)
	p.mu.Lock()
	free := p.free
	p.mu.Unlock()
	if free != 1 {
		t.Fatalf("free = %d after double reclaim of one held slot, want 1", free)
	}
}
