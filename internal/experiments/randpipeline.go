package experiments

import (
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E5",
		Title: "Thm 29 — randomized pipeline decomposition",
		Tags:  []string{"randomized", "thm29", "pipeline"},
		Run:   runRandDecomposition,
	})
}

// runRandDecomposition reports the Sec. 7.4.3 chain on one instance.
func runRandDecomposition(cfg Config) Report {
	t := stats.NewTable("Thm 29 pipeline: |Far+| ≥ |ipp| ≥ |ipp^λ| ≥ |ipp^λ_¼| ≥ |alg| (Sec. 7.4.3)",
		"n", "γ", "Far+", "ipp", "coin-survived", "load-survived", "injected=delivered", "TX-failed")
	n := 128
	if cfg.Quick {
		n = 64
	}
	g := grid.Line(n, 1, 1)
	reqs := workload.Uniform(g, 10*n, int64(4*n), cfg.RNG(99))
	for _, gamma := range []float64{0.25, 1, 8} {
		res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: gamma, Branch: 1}, cfg.RNG(5))
		if err != nil {
			continue
		}
		t.AddRow(n, gamma, res.FarPlusTotal, res.IPPAccepted, res.CoinSurvived, res.LoadSurvived, res.Throughput, res.TXFailed)
	}
	return Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			"Theorem 22 predicts E|alg| ≥ λ/4·|ipp|: the injected column tracks the coin-survived column within the I-routing loss.",
		},
	}
}
