package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/scenario"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E5",
		Title: "Thm 29 — randomized pipeline decomposition",
		Tags:  []string{"randomized", "thm29", "pipeline"},
		Run:   runRandDecomposition,
	})
}

// runRandDecomposition reports the Sec. 7.4.3 chain on one instance.
func runRandDecomposition(ctx context.Context, cfg Config) (Report, error) {
	n := 128
	if cfg.Quick {
		n = 64
	}
	g := grid.Line(n, 1, 1)
	reqs := scenario.Uniform(g, 10*n, int64(4*n), cfg.SubRNG("uniform"))
	gammas := []float64{0.25, 1, 8}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(gammas), func(i int, skip func(string, ...any)) *core.RandResult {
		// Every γ draws the same coin stream (fresh generator, same seed),
		// so the rows differ only through the sparsification knob.
		res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: gammas[i], Branch: 1}, cfg.SubRNG("coins"))
		if err != nil {
			skip("gamma=%v: %v", gammas[i], err)
			return nil
		}
		return res
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("gamma=%v", gammas[i]) })

	t := stats.NewTable("Thm 29 pipeline: |Far+| ≥ |ipp| ≥ |ipp^λ| ≥ |ipp^λ_¼| ≥ |alg| (Sec. 7.4.3)",
		"n", "γ", "Far+", "ipp", "coin-survived", "load-survived", "injected=delivered", "TX-failed")
	for i, gamma := range gammas {
		res := slots[i]
		if res == nil {
			continue
		}
		t.AddRow(n, gamma, res.FarPlusTotal, res.IPPAccepted, res.CoinSurvived, res.LoadSurvived, res.Throughput, res.TXFailed)
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			"Theorem 22 predicts E|alg| ≥ λ/4·|ipp|: the injected column tracks the coin-survived column within the I-routing loss.",
		},
	})
}
