package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "T1",
		Title: "Table 1 — prior online algorithms on adversarial traffic",
		Tags:  []string{"table", "baseline", "deterministic", "lowerbound"},
		Run:   runTable1,
	})
}

// runTable1 runs each algorithm in its canonical Table 1 setting on the
// convoy construction (the executable form of the [AKOR03] Ω(√n) greedy
// phenomenon): greedy and nearest-to-go at B = 3, c = 1 (unit links, as in
// Table 1), the paper's deterministic algorithm at B = c = 3.
func runTable1(ctx context.Context, cfg Config) (Report, error) {
	sizes := cfg.Sizes()
	type slot struct {
		greedyTP, ntgTP int
		optLB           int
		detTP           int
		detOK           bool
	}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, skip func(string, ...any)) slot {
		n := sizes[i]
		rounds := 2 * n
		// Unit links (Table 1's setting): the convoy saturates every link.
		g1 := grid.Line(n, 3, 1)
		reqs1 := scenario.ConvoyRate(n, rounds, 1, 1)
		horizon := spacetime.SuggestHorizon(g1, reqs1, 3)
		s := slot{optLB: scenario.ConvoyOPTLowerBound(n, rounds, 1)}
		s.greedyTP = baseline.Run(g1, reqs1, baseline.Greedy{}, netsim.Model1, horizon).Throughput()
		s.ntgTP = baseline.Run(g1, reqs1, baseline.NearestToGo{}, netsim.Model1, horizon).Throughput()
		// The deterministic algorithm needs c ≥ 3; same convoy shape.
		g3 := grid.Line(n, 3, 3)
		reqs3 := scenario.ConvoyRate(n, rounds, 3, 1)
		if det, err := core.RunDeterministic(g3, reqs3, core.DetConfig{}); err != nil {
			skip("even-medina-det n=%d: %v", n, err)
		} else {
			s.detTP, s.detOK = det.Throughput, true
		}
		return s
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("n=%d", sizes[i]) })

	t := stats.NewTable("Table 1 (reproduced): measured competitive ratios on the convoy instance",
		"n", "alg", "B", "c", "delivered", "OPT certificate", "ratio")
	var ns []int
	ratios := map[string][]float64{}
	add := func(n int, name string, b, c, tp, optLB int) {
		r := ratio(float64(optLB), tp)
		t.AddRow(n, name, b, c, tp, fmt.Sprintf("constructed ≥ %d", optLB), r)
		ratios[name] = append(ratios[name], r)
	}
	for i, n := range sizes {
		s := slots[i]
		if s.optLB == 0 { // sub-case timed out; already in the skip list
			continue
		}
		ns = append(ns, n)
		add(n, "greedy", 3, 1, s.greedyTP, s.optLB)
		add(n, "nearest-to-go", 3, 1, s.ntgTP, s.optLB)
		if s.detOK {
			add(n, "even-medina-det", 3, 3, s.detTP, s.optLB)
		}
	}
	g := stats.NewTable("Growth exponents (ratio ~ n^b)",
		"alg", "fitted exponent b", "Table 1 expectation")
	g.AddRow("greedy", stats.GrowthExponent(ns, ratios["greedy"]), "≥ 0.5 (Ω(√n) lower bound; FIFO greedy is even worse)")
	g.AddRow("nearest-to-go", stats.GrowthExponent(ns, ratios["nearest-to-go"]), "Õ(√n) upper bound")
	g.AddRow("even-medina-det", stats.GrowthExponent(ns, ratios["even-medina-det"]), "polylog (asymptotic; constants dominate at these n)")
	return skips.finish(Report{
		Tables: []*stats.Table{t, g},
		Notes: []string{
			"The convoy keeps FIFO greedy busy with doomed long-haul packets; OPT (by construction) serves the short hops.",
			"At laptop-scale n the deterministic algorithm's k^4·(B+c) polylog factor exceeds √n, so its measured ratio is larger than greedy's even though its growth is asymptotically flat — the honest crossover lies beyond n ≈ 10^6 (see DESIGN.md §5 E1).",
		},
	})
}
