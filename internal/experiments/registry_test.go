package experiments

import (
	"context"
	"reflect"
	"testing"
)

// All ten seed experiments must be registered, in canonical report order.
func TestRegistryCompleteness(t *testing.T) {
	want := []string{"T1", "T2", "E1-E3", "E4", "E5", "E8", "E9", "E10", "E11", "E13", "E14"}
	if got := IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry IDs = %v, want %v", got, want)
	}
	for _, e := range Registered() {
		if e.Title == "" {
			t.Errorf("%s: empty title", e.ID)
		}
		if len(e.Tags) == 0 {
			t.Errorf("%s: no tags", e.ID)
		}
		if e.Run == nil {
			t.Errorf("%s: nil Run", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	e, ok := Lookup("T1")
	if !ok || e.ID != "T1" {
		t.Fatalf("Lookup(T1) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown ID must fail")
	}
}

func TestSelect(t *testing.T) {
	for _, tc := range []struct {
		pattern string
		want    []string
	}{
		{"", []string{"T1", "T2", "E1-E3", "E4", "E5", "E8", "E9", "E10", "E11", "E13", "E14"}},
		{"^T", []string{"T1", "T2"}},
		{"^E1-E3$", []string{"E1-E3"}},
		{"^E1", []string{"E1-E3", "E10", "E11", "E13", "E14"}},
		{"^E4$", []string{"E4"}},      // fully anchored ID
		{"ablation", []string{"E13"}}, // tag match
		{"pipeline", []string{"E5"}},  // tag-only match (no ID contains it)
		{"^thm29$", []string{"E5"}},   // anchored tag
		{"randomized", []string{"T2", "E5", "E13"}},
		{"zzz-no-such", nil},
	} {
		exps, err := Select(tc.pattern)
		if err != nil {
			t.Fatalf("Select(%q): %v", tc.pattern, err)
		}
		var got []string
		for _, e := range exps {
			got = append(got, e.ID)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Select(%q) = %v, want %v", tc.pattern, got, tc.want)
		}
	}
	for _, bad := range []string{"(", "[", "a{2,1}"} {
		if _, err := Select(bad); err == nil {
			t.Fatalf("invalid regexp %q must error", bad)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	Register(Experiment{ID: "T1", Run: func(context.Context, Config) (Report, error) { return Report{}, nil }})
}

func TestSeedForStableAndDistinct(t *testing.T) {
	if SeedFor("T1") != SeedFor("T1") {
		t.Fatal("SeedFor must be deterministic")
	}
	seen := map[int64]string{}
	for _, id := range IDs() {
		s := SeedFor(id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, id)
		}
		seen[s] = id
	}
}

func TestTags(t *testing.T) {
	tags := Tags()
	if len(tags) == 0 {
		t.Fatal("no tags registered")
	}
	for i := 1; i < len(tags); i++ {
		if tags[i-1] >= tags[i] {
			t.Fatalf("tags not sorted/unique: %v", tags)
		}
	}
}
