package experiments

import (
	"strings"
	"testing"
)

// The full quick-mode suite must produce every report with non-empty
// tables — this is the regression net for EXPERIMENTS.md generation.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reports := All(true)
	wantIDs := []string{"T1", "T2", "E1-E3", "E4", "E5", "E8", "E9", "E10", "E11", "E13"}
	if len(reports) != len(wantIDs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(wantIDs))
	}
	for i, r := range reports {
		if r.ID != wantIDs[i] {
			t.Errorf("report %d: id %q, want %q", i, r.ID, wantIDs[i])
		}
		if len(r.Tables) == 0 {
			t.Errorf("report %s has no tables", r.ID)
		}
		for _, tb := range r.Tables {
			if len(tb.Rows) == 0 {
				t.Errorf("report %s: table %q empty", r.ID, tb.Title)
			}
			md := tb.Markdown()
			if !strings.Contains(md, "| --- |") && !strings.Contains(md, "| --- | ---") {
				t.Errorf("report %s: bad markdown", r.ID)
			}
		}
	}
}

func TestSizes(t *testing.T) {
	if len(Sizes(true)) >= len(Sizes(false)) {
		t.Fatal("quick mode must be smaller")
	}
}
