package experiments

import (
	"math"
	"strings"
	"testing"
)

// The full quick-mode suite must produce every report with non-empty
// tables — this is the regression net for EXPERIMENTS.md generation.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results := Runner{Workers: 1, Quick: true}.RunAll()
	wantIDs := []string{"T1", "T2", "E1-E3", "E4", "E5", "E8", "E9", "E10", "E11", "E13"}
	if len(results) != len(wantIDs) {
		t.Fatalf("got %d reports, want %d", len(results), len(wantIDs))
	}
	for i, res := range results {
		r := res.Report
		if r.ID != wantIDs[i] {
			t.Errorf("report %d: id %q, want %q", i, r.ID, wantIDs[i])
		}
		if r.ID != res.Experiment.ID {
			t.Errorf("report id %q does not match experiment id %q", r.ID, res.Experiment.ID)
		}
		if res.Duration <= 0 {
			t.Errorf("report %s: no wall-clock timing recorded", r.ID)
		}
		if len(r.Tables) == 0 {
			t.Errorf("report %s has no tables", r.ID)
		}
		for _, tb := range r.Tables {
			if len(tb.Rows) == 0 {
				t.Errorf("report %s: table %q empty", r.ID, tb.Title)
			}
			md := tb.Markdown()
			if !strings.Contains(md, "| --- |") && !strings.Contains(md, "| --- | ---") {
				t.Errorf("report %s: bad markdown", r.ID)
			}
		}
	}
}

func TestSizes(t *testing.T) {
	if len(Sizes(true)) >= len(Sizes(false)) {
		t.Fatal("quick mode must be smaller")
	}
	cfg := Config{Quick: true}
	if len(cfg.Sizes()) != len(Sizes(true)) {
		t.Fatal("Config.Sizes must match Sizes")
	}
}

// Zero throughput is an unbounded ratio, not a perfect one.
func TestRatioZeroThroughputIsInf(t *testing.T) {
	if r := ratio(42, 0); !math.IsInf(r, 1) {
		t.Fatalf("ratio(42, 0) = %v, want +Inf", r)
	}
	if r := ratio(10, 5); r != 2 {
		t.Fatalf("ratio(10, 5) = %v, want 2", r)
	}
}

func TestConfigRNGDeterministic(t *testing.T) {
	cfg := Config{Seed: 7}
	a, b := cfg.RNG(3), cfg.RNG(3)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, stream) must yield the same sequence")
		}
	}
	if cfg.RNG(1).Int63() == cfg.RNG(2).Int63() {
		t.Fatal("distinct streams should decorrelate (first draw collided)")
	}
}
