package experiments

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"gridroute/internal/scenario"
)

// The full quick-mode suite must produce every report with non-empty
// tables and no hard errors — this is the regression net for
// EXPERIMENTS.md generation.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results := Runner{Workers: 1, Quick: true}.RunAll(context.Background())
	wantIDs := []string{"T1", "T2", "E1-E3", "E4", "E5", "E8", "E9", "E10", "E11", "E13", "E14"}
	if len(results) != len(wantIDs) {
		t.Fatalf("got %d reports, want %d", len(results), len(wantIDs))
	}
	for i, res := range results {
		r := res.Report
		if r.ID != wantIDs[i] {
			t.Errorf("report %d: id %q, want %q", i, r.ID, wantIDs[i])
		}
		if r.ID != res.Experiment.ID {
			t.Errorf("report id %q does not match experiment id %q", r.ID, res.Experiment.ID)
		}
		if res.Err != nil && !errors.Is(res.Err, ErrSkipped) {
			t.Errorf("report %s: hard error %v", r.ID, res.Err)
		}
		if res.Duration <= 0 {
			t.Errorf("report %s: no wall-clock timing recorded", r.ID)
		}
		if res.Attempts != 1 {
			t.Errorf("report %s: %d attempts on a deterministic suite", r.ID, res.Attempts)
		}
		if len(r.Tables) == 0 {
			t.Errorf("report %s has no tables", r.ID)
		}
		for _, tb := range r.Tables {
			if len(tb.Rows) == 0 {
				t.Errorf("report %s: table %q empty", r.ID, tb.Title)
			}
			md := tb.Markdown()
			if !strings.Contains(md, "| --- |") && !strings.Contains(md, "| --- | ---") {
				t.Errorf("report %s: bad markdown", r.ID)
			}
		}
	}
}

func TestSizes(t *testing.T) {
	if len(Sizes(true)) >= len(Sizes(false)) {
		t.Fatal("quick mode must be smaller")
	}
	cfg := Config{Quick: true}
	if len(cfg.Sizes()) != len(Sizes(true)) {
		t.Fatal("Config.Sizes must match Sizes")
	}
}

// Zero throughput is an unbounded ratio, not a perfect one.
func TestRatioZeroThroughputIsInf(t *testing.T) {
	if r := ratio(42, 0); !math.IsInf(r, 1) {
		t.Fatalf("ratio(42, 0) = %v, want +Inf", r)
	}
	if r := ratio(10, 5); r != 2 {
		t.Fatalf("ratio(10, 5) = %v, want 2", r)
	}
}

func TestConfigRNGDeterministic(t *testing.T) {
	cfg := Config{Seed: 7}
	a, b := cfg.RNG(3), cfg.RNG(3)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, stream) must yield the same sequence")
		}
	}
	if cfg.RNG(1).Int63() == cfg.RNG(2).Int63() {
		t.Fatal("distinct streams should decorrelate (first draw collided)")
	}
}

// SubRNG is a pure function of (ID, subkey): independent of Seed, worker
// count, and call order.
func TestConfigSubRNGDeterministic(t *testing.T) {
	a := Config{ID: "T1", Seed: 1}
	b := Config{ID: "T1", Seed: 999}
	if a.SubRNG("n=64").Int63() != b.SubRNG("n=64").Int63() {
		t.Fatal("SubRNG must depend on (ID, subkey) alone")
	}
	if a.SubRNG("n=64").Int63() == a.SubRNG("n=32").Int63() {
		t.Fatal("distinct subkeys should decorrelate (first draw collided)")
	}
	c := Config{ID: "T2", Seed: 1}
	if a.SubRNG("n=64").Int63() == c.SubRNG("n=64").Int63() {
		t.Fatal("distinct IDs should decorrelate (first draw collided)")
	}
}

// Sweep without a pool runs inline; with a pool it must still run every
// index exactly once, whatever the pool size.
func TestConfigSweepRunsAllIndices(t *testing.T) {
	for _, poolSize := range []int{0, 1, 3, 16} {
		cfg := Config{}
		if poolSize > 0 {
			cfg.pool = newSubpool(poolSize)
		}
		const n = 23
		var hits [n]atomic.Int32
		if err := cfg.Sweep(context.Background(), n, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("pool=%d: %v", poolSize, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("pool=%d: index %d ran %d times", poolSize, i, got)
			}
		}
	}
}

// A cancelled context stops the sweep at the next dispatch point and is
// reported; already-running sub-cases are waited for.
func TestConfigSweepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, withPool := range []bool{false, true} {
		cfg := Config{}
		if withPool {
			cfg.pool = newSubpool(2)
		}
		ran := 0
		err := cfg.Sweep(ctx, 10, func(int) { ran++ })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("pool=%v: err = %v, want context.Canceled", withPool, err)
		}
		if ran != 0 {
			t.Fatalf("pool=%v: %d sub-cases ran after cancellation", withPool, ran)
		}
	}
}

func TestSkipList(t *testing.T) {
	var s SkipList
	if s.Err() != nil || s.Len() != 0 {
		t.Fatal("empty SkipList must report no error")
	}
	rep := Report{Notes: []string{"existing"}}
	s.Apply(&rep)
	if len(rep.Skips) != 0 || len(rep.AllNotes()) != 1 {
		t.Fatal("empty SkipList must not add skips or a note")
	}
	// Record out of order (as parallel sub-tasks would): output is sorted
	// lexicographically, so notes and errors stay deterministic at any
	// worker count.
	s.Skip("n=%d: zebra", 256)
	s.Skip("n=%d: aardvark", 32)
	err := s.Err()
	if !errors.Is(err, ErrSkipped) {
		t.Fatalf("err = %v, want ErrSkipped wrap", err)
	}
	want := "n=256: zebra; n=32: aardvark"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q does not carry sorted skip list %q", err, want)
	}
	s.Apply(&rep)
	if len(rep.Skips) != 2 || rep.Skips[0] != "n=256: zebra" {
		t.Fatalf("skips = %v, want sorted skip items", rep.Skips)
	}
	notes := rep.AllNotes()
	if len(notes) != 2 || !strings.Contains(notes[1], want) {
		t.Fatalf("notes = %v, want sorted skip note last", notes)
	}
	if !strings.Contains(rep.Markdown(), "⚠ skipped sub-cases: "+want) {
		t.Fatalf("markdown missing skip note:\n%s", rep.Markdown())
	}
}

// Quick-mode overrides must only ever shrink a scenario, never inflate a
// small default (appendixf-model2 defaults to rounds=1; the quick rounds=4
// override must not apply to it, while 0-default auto-sizing knobs like
// the convoy's rounds still shrink).
func TestQuickOverridesNeverInflate(t *testing.T) {
	for _, sc := range scenario.Registered() {
		overrides := quickOverrides(sc)
		for name, v := range overrides {
			p, ok := sc.Param(name)
			if !ok {
				t.Fatalf("%s: override for undeclared param %s", sc.ID, name)
			}
			if p.Default != 0 && v >= p.Default {
				t.Errorf("%s: quick override %s=%v inflates default %v", sc.ID, name, v, p.Default)
			}
		}
	}
	if adv, _ := scenario.Lookup("appendixf-model2"); len(quickOverrides(adv)) != 0 {
		t.Errorf("appendixf-model2 quick overrides = %v, want none", quickOverrides(adv))
	}
}
