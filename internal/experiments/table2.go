package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "T2",
		Title: "Table 2 — (B,c) regimes of the randomized algorithm",
		Tags:  []string{"table", "randomized", "regimes"},
		Run:   runTable2,
	})
}

// runTable2 sweeps the three (B, c) regimes of Table 2 and reports
// randomized throughput against the dual upper bound.
func runTable2(ctx context.Context, cfg Config) (Report, error) {
	seeds := int64(3)
	if cfg.Quick {
		seeds = 2
	}
	sizes := cfg.Sizes()
	type subcase struct {
		n, b, c int
	}
	var cases []subcase
	for _, n := range sizes {
		l := log2int(n)
		cases = append(cases,
			subcase{n, 1, 1},         // B, c ∈ [1, log n] (unit buffers!)
			subcase{n, l * l * 2, 1}, // B/c ≥ log n (large buffers)
			subcase{n, 1, l * 4},     // B ≤ log n ≤ c (large capacities)
		)
	}
	type slot struct {
		regime core.Regime
		best   int
		upper  float64
		ok     bool
	}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(cases), func(i int, skip func(string, ...any)) slot {
		cs := cases[i]
		g := grid.Line(cs.n, cs.b, cs.c)
		// The request stream depends on n alone, so all three (B, c) regimes
		// of one size face identical demand.
		reqs := scenario.Uniform(g, 6*cs.n, int64(2*cs.n), cfg.SubRNG(fmt.Sprintf("uniform/n=%d", cs.n)))
		// Fixed window: SuggestHorizon scales with B/c and would explode
		// for the large-buffer case; algorithm and certificate share the
		// same horizon, so the comparison stays honest.
		horizon := int64(8 * cs.n)
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		s := slot{upper: upper}
		for sd := int64(0); sd < seeds; sd++ {
			res, err := core.RunRandomized(g, reqs,
				core.RandConfig{Horizon: horizon, Gamma: 0.5},
				cfg.SubRNG(fmt.Sprintf("rand/n=%d/B=%d/c=%d/seed=%d", cs.n, cs.b, cs.c, sd)))
			if err != nil {
				skip("n=%d B=%d c=%d seed=%d: %v", cs.n, cs.b, cs.c, sd, err)
				continue
			}
			s.regime, s.ok = res.Regime, true
			if res.Throughput > s.best {
				s.best = res.Throughput
			}
		}
		return s
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string {
		return fmt.Sprintf("n=%d B=%d c=%d", cases[i].n, cases[i].b, cases[i].c)
	})

	t := stats.NewTable("Table 2 (reproduced): randomized algorithm across (B,c) regimes",
		"n", "B", "c", "regime", "delivered", "upper", "ratio", "ratio/log2(n)")
	for i, cs := range cases {
		s := slots[i]
		if !s.ok {
			continue
		}
		r := ratio(s.upper, s.best)
		t.AddRow(cs.n, cs.b, cs.c, s.regime.String(), s.best, s.upper, r, r/float64(log2int(cs.n)))
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			"γ = 0.5 (engineering mode; the paper's proof constant γ = 200 needs astronomically many requests — see E13).",
			"The last column normalizes the ratio by log2(n); a flat column is consistent with the O(log n) guarantee (Thms 29–31).",
		},
	})
}
