package experiments

import (
	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "T2",
		Title: "Table 2 — (B,c) regimes of the randomized algorithm",
		Tags:  []string{"table", "randomized", "regimes"},
		Run:   runTable2,
	})
}

// runTable2 sweeps the three (B, c) regimes of Table 2 and reports
// randomized throughput against the dual upper bound.
func runTable2(cfg Config) Report {
	t := stats.NewTable("Table 2 (reproduced): randomized algorithm across (B,c) regimes",
		"n", "B", "c", "regime", "delivered", "upper", "ratio", "ratio/log2(n)")
	seeds := int64(3)
	if cfg.Quick {
		seeds = 2
	}
	for _, n := range cfg.Sizes() {
		l := log2int(n)
		cases := []struct{ b, c int }{
			{1, 1},         // B, c ∈ [1, log n] (unit buffers!)
			{l * l * 2, 1}, // B/c ≥ log n (large buffers)
			{1, l * 4},     // B ≤ log n ≤ c (large capacities)
		}
		for _, cs := range cases {
			g := grid.Line(n, cs.b, cs.c)
			reqs := workload.Uniform(g, 6*n, int64(2*n), cfg.RNG(int64(n)))
			// Fixed window: SuggestHorizon scales with B/c and would explode
			// for the large-buffer case; algorithm and certificate share the
			// same horizon, so the comparison stays honest.
			horizon := int64(8 * n)
			upper, _ := optbound.DualUpperBound(g, reqs, horizon)
			best := 0
			var regime core.Regime
			for s := int64(0); s < seeds; s++ {
				res, err := core.RunRandomized(g, reqs, core.RandConfig{Horizon: horizon, Gamma: 0.5}, cfg.RNG(1000+s))
				if err != nil {
					continue
				}
				regime = res.Regime
				if res.Throughput > best {
					best = res.Throughput
				}
			}
			r := ratio(upper, best)
			t.AddRow(n, cs.b, cs.c, regime.String(), best, upper, r, r/float64(log2int(n)))
		}
	}
	return Report{
		Tables: []*stats.Table{t},
		Notes: []string{
			"γ = 0.5 (engineering mode; the paper's proof constant γ = 200 needs astronomically many requests — see E13).",
			"The last column normalizes the ratio by log2(n); a flat column is consistent with the O(log n) guarantee (Thms 29–31).",
		},
	}
}
