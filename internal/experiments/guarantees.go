package experiments

import (
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E8",
		Title: "Theorem 1 — online integral path packing guarantees",
		Tags:  []string{"guarantee", "ipp", "thm1"},
		Run:   runThm1,
	})
	Register(Experiment{
		ID:    "E9",
		Title: "Lemma 2 — bounded path lengths",
		Tags:  []string{"guarantee", "lemma2", "pmax"},
		Run:   runLemma2,
	})
	Register(Experiment{
		ID:    "E10",
		Title: "Props 8/9 — loss decomposition of detailed routing",
		Tags:  []string{"guarantee", "prop8", "prop9", "routing"},
		Run:   runProp89,
	})
}

// runThm1 measures the ipp guarantees on the deterministic sketch graphs.
func runThm1(cfg Config) Report {
	t := stats.NewTable("Thm 1: ipp primal/dual gap ≤ 2 and edge load ≤ log2(1+3·pmax)",
		"n", "max load", "load bound", "primal", "2×accepted", "gap OK")
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 3, 3)
		reqs := workload.Saturating(g, 6, 2, cfg.RNG(int64(n)+7))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			continue
		}
		ok := res.PrimalValue <= 2*float64(res.Admitted)+1e-9 && res.MaxLoad <= res.LoadBound+1e-9
		t.AddRow(n, res.MaxLoad, res.LoadBound, res.PrimalValue, 2*res.Admitted, ok)
	}
	return Report{Tables: []*stats.Table{t}}
}

// runLemma2 sweeps pmax and shows throughput saturates at a constant
// fraction.
func runLemma2(cfg Config) Report {
	n := 64
	g := grid.Line(n, 3, 3)
	reqs := workload.Uniform(g, 6*n, int64(2*n), cfg.RNG(12))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	t := stats.NewTable("Lemma 2: restricting path lengths costs at most a constant factor",
		"pmax", "tile side k", "delivered")
	paper := core.PMaxDet(g)
	for _, pm := range []int{n / 2, n, 2 * n, 8 * n, paper} {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon, PMax: pm})
		if err != nil {
			continue
		}
		t.AddRow(pm, res.K, res.Throughput)
	}
	return Report{
		Tables: []*stats.Table{t},
		Notes:  []string{fmt.Sprintf("The paper's pmax for this instance is %d; throughput saturates well before it, as Lemma 2 predicts.", paper)},
	}
}

// runProp89 reports the detailed-routing loss fractions.
func runProp89(cfg Config) Report {
	t := stats.NewTable("Props 8, 9: detailed-routing survival fractions (theory: each ≥ 1/(2k))",
		"n", "k", "ipp", "ipp'", "alg", "ipp'/ipp", "alg/ipp'", "1/(2k)")
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 3, 3)
		reqs := workload.Saturating(g, 8, 2, cfg.RNG(int64(n)+13))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil || res.Admitted == 0 {
			continue
		}
		f1 := float64(res.ReachedLastTile) / float64(res.Admitted)
		f2 := 0.0
		if res.ReachedLastTile > 0 {
			f2 = float64(res.Throughput) / float64(res.ReachedLastTile)
		}
		t.AddRow(n, res.K, res.Admitted, res.ReachedLastTile, res.Throughput, f1, f2, 1/(2*float64(res.K)))
	}
	return Report{Tables: []*stats.Table{t}}
}
