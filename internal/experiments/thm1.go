package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/scenario"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E8",
		Title: "Theorem 1 — online integral path packing guarantees",
		Tags:  []string{"guarantee", "ipp", "thm1"},
		Run:   runThm1,
	})
}

// runThm1 measures the ipp guarantees on the deterministic sketch graphs.
func runThm1(ctx context.Context, cfg Config) (Report, error) {
	sizes := cfg.Sizes()
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, skip func(string, ...any)) *core.DetResult {
		n := sizes[i]
		g := grid.Line(n, 3, 3)
		reqs := scenario.Saturating(g, 6, 2, cfg.SubRNG(fmt.Sprintf("n=%d", n)))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			skip("n=%d: %v", n, err)
			return nil
		}
		return res
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("n=%d", sizes[i]) })

	t := stats.NewTable("Thm 1: ipp primal/dual gap ≤ 2 and edge load ≤ log2(1+3·pmax)",
		"n", "max load", "load bound", "primal", "2×accepted", "gap OK")
	for i, n := range sizes {
		res := slots[i]
		if res == nil {
			continue
		}
		ok := res.PrimalValue <= 2*float64(res.Admitted)+1e-9 && res.MaxLoad <= res.LoadBound+1e-9
		t.AddRow(n, res.MaxLoad, res.LoadBound, res.PrimalValue, 2*res.Admitted, ok)
	}
	return skips.finish(Report{Tables: []*stats.Table{t}})
}
