package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E9",
		Title: "Lemma 2 — bounded path lengths",
		Tags:  []string{"guarantee", "lemma2", "pmax"},
		Run:   runLemma2,
	})
}

// runLemma2 sweeps pmax and shows throughput saturates at a constant
// fraction.
func runLemma2(ctx context.Context, cfg Config) (Report, error) {
	n := 64
	g := grid.Line(n, 3, 3)
	reqs := scenario.Uniform(g, 6*n, int64(2*n), cfg.SubRNG("uniform"))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	paper := core.PMaxDet(g)
	pms := []int{n / 2, n, 2 * n, 8 * n, paper}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(pms), func(i int, skip func(string, ...any)) *core.DetResult {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon, PMax: pms[i]})
		if err != nil {
			skip("pmax=%d: %v", pms[i], err)
			return nil
		}
		return res
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("pmax=%d", pms[i]) })

	t := stats.NewTable("Lemma 2: restricting path lengths costs at most a constant factor",
		"pmax", "tile side k", "delivered")
	for i, pm := range pms {
		res := slots[i]
		if res == nil {
			continue
		}
		t.AddRow(pm, res.K, res.Throughput)
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes:  []string{fmt.Sprintf("The paper's pmax for this instance is %d; throughput saturates well before it, as Lemma 2 predicts.", paper)},
	})
}
