package experiments

import (
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
	"gridroute/internal/workload"
)

func init() {
	Register(Experiment{
		ID:    "E4",
		Title: "Theorem 13 — large buffers and link capacities",
		Tags:  []string{"sweep", "deterministic", "thm13", "largecap"},
		Run:   runThm13,
	})
}

// runThm13 measures the large-capacity algorithm.
func runThm13(cfg Config) Report {
	t := stats.NewTable("Thm 13: large B, c — scaled ipp over the space-time graph",
		"n", "B=c", "k", "delivered", "upper", "ratio", "ratio/log2(n)")
	for _, n := range cfg.Sizes() {
		g := grid.Line(n, 64, 64)
		reqs := workload.Saturating(g, 6, 3, cfg.RNG(int64(n)+4))
		horizon := spacetime.SuggestHorizon(g, reqs, 2)
		res, err := core.RunLargeCapacity(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			t.AddRow(n, 64, "-", "-", "-", fmt.Sprint(err), "-")
			continue
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		r := ratio(upper, res.Throughput)
		t.AddRow(n, 64, res.K, res.Throughput, upper, r, r/float64(log2int(n)))
	}
	return Report{
		Tables: []*stats.Table{t},
		Notes:  []string{"Non-preemptive: every admitted packet is delivered; replayed schedules satisfy the unscaled capacities because the Thm 1 load bound k cancels the 1/k capacity scaling."},
	}
}
