package experiments

import (
	"context"
	"fmt"

	"gridroute/internal/core"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/stats"
)

func init() {
	Register(Experiment{
		ID:    "E4",
		Title: "Theorem 13 — large buffers and link capacities",
		Tags:  []string{"sweep", "deterministic", "thm13", "largecap"},
		Run:   runThm13,
	})
}

// runThm13 measures the large-capacity algorithm.
func runThm13(ctx context.Context, cfg Config) (Report, error) {
	sizes := cfg.Sizes()
	type slot struct {
		res   *core.LargeCapResult
		upper float64
	}
	var skips SkipList
	slots, timedOut, err := SweepResults(ctx, cfg, &skips, len(sizes), func(i int, skip func(string, ...any)) slot {
		n := sizes[i]
		g := grid.Line(n, 64, 64)
		reqs := scenario.Saturating(g, 6, 3, cfg.SubRNG(fmt.Sprintf("n=%d", n)))
		horizon := spacetime.SuggestHorizon(g, reqs, 2)
		res, err := core.RunLargeCapacity(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			skip("n=%d: %v", n, err)
			return slot{}
		}
		upper, _ := optbound.DualUpperBound(g, reqs, horizon)
		return slot{res: res, upper: upper}
	})
	if err != nil {
		return Report{}, err
	}
	skips.SkipTimeouts(timedOut, func(i int) string { return fmt.Sprintf("n=%d", sizes[i]) })

	t := stats.NewTable("Thm 13: large B, c — scaled ipp over the space-time graph",
		"n", "B=c", "k", "delivered", "upper", "ratio", "ratio/log2(n)")
	for i, n := range sizes {
		s := slots[i]
		if s.res == nil {
			continue
		}
		r := ratio(s.upper, s.res.Throughput)
		t.AddRow(n, 64, s.res.K, s.res.Throughput, s.upper, r, r/float64(log2int(n)))
	}
	return skips.finish(Report{
		Tables: []*stats.Table{t},
		Notes:  []string{"Non-preemptive: every admitted packet is delivered; replayed schedules satisfy the unscaled capacities because the Thm 1 load bound k cancels the 1/k capacity scaling."},
	})
}
