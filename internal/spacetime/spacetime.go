// Package spacetime implements the space-time transformation of a grid
// network (Sec. 3.1 of Even–Medina) together with the untilting automorphism
// q(x₁,…,x_d,t) = (x₁,…,x_d, t − Σxᵢ) (Sec. 3.2).
//
// In untilted coordinates the space-time graph of a d-dimensional
// uni-directional grid becomes a (d+1)-dimensional box lattice:
//
//   - axes 0..d-1 are the space axes; a +1 step along axis i is a packet
//     transmission along a grid link (an E0 edge, capacity c), taking one
//     time step;
//   - axis d is w = t − Σxᵢ; a +1 step along it is the packet being stored
//     in its current node's buffer for one time step (an E1 edge, capacity B).
//
// Real time is recovered as t = w + Σxᵢ. All copies of a grid node v form the
// w-ray {(v, w)}, which is where sink nodes attach (Sec. 3.1, Sec. 5.4).
package spacetime

import (
	"fmt"

	"gridroute/internal/grid"
	"gridroute/internal/lattice"
)

// Graph is the untilted space-time graph of a grid over the finite horizon
// [0, T]. It is infinite in the paper; the horizon is a simulation window and
// all OPT certificates are computed over the same window (see DESIGN.md §2).
type Graph struct {
	G *grid.Grid
	// T is the last simulated time step (inclusive).
	T int64
	// Box is the untilted lattice: axes 0..d-1 spatial with extents ℓᵢ, axis
	// d is w ∈ [−diam(G), T].
	Box *lattice.Box
}

// New builds the untilted space-time graph of g with horizon T.
func New(g *grid.Grid, T int64) *Graph {
	d := g.D()
	lo := make([]int, d+1)
	hi := make([]int, d+1)
	for i := 0; i < d; i++ {
		lo[i] = 0
		hi[i] = g.Dims[i]
	}
	lo[d] = -g.Diameter()
	hi[d] = int(T) + 1
	return &Graph{G: g, T: T, Box: lattice.NewBox(lo, hi)}
}

// D returns the dimension d of the underlying grid.
func (st *Graph) D() int { return st.G.D() }

// WAxis returns the index of the w (buffer) axis.
func (st *Graph) WAxis() int { return st.G.D() }

// Cap returns the capacity of edges along the given lattice axis: c for
// space axes (E0), B for the w axis (E1).
func (st *Graph) Cap(axis int) int {
	if axis == st.G.D() {
		return st.G.B
	}
	return st.G.C
}

// ToLattice converts (node, t) to untilted lattice coordinates, writing into
// out when non-nil.
func (st *Graph) ToLattice(v grid.Vec, t int64, out []int) []int {
	d := st.G.D()
	if out == nil {
		out = make([]int, d+1)
	}
	s := 0
	for i := 0; i < d; i++ {
		out[i] = v[i]
		s += v[i]
	}
	out[d] = int(t) - s
	return out
}

// FromLattice converts an untilted lattice point back to (node, t).
func (st *Graph) FromLattice(p []int, out grid.Vec) (grid.Vec, int64) {
	d := st.G.D()
	if out == nil {
		out = make(grid.Vec, d)
	}
	s := 0
	for i := 0; i < d; i++ {
		out[i] = p[i]
		s += p[i]
	}
	return out, int64(p[d] + s)
}

// TimeOf returns the real time t = w + Σxᵢ of a lattice point.
func TimeOf(p []int) int64 {
	var s int64
	for _, x := range p {
		s += int64(x)
	}
	return s
}

// SourcePoint returns the lattice point of a request's injection (aᵢ, tᵢ).
func (st *Graph) SourcePoint(r *grid.Request) []int {
	return st.ToLattice(r.Src, r.Arrival, nil)
}

// DestRay returns the inclusive w-range [wLo, wHi] of lattice points
// (r.Dst, w) that are valid delivery copies of the destination: the copy time
// t′ = w + Σbᵢ must satisfy tᵢ ≤ t′ ≤ min(dᵢ, T). An empty range is reported
// by wLo > wHi.
func (st *Graph) DestRay(r *grid.Request) (wLo, wHi int) {
	sumB := r.Dst.Sum()
	wLo = int(r.Arrival) - sumB
	hiT := st.T
	if r.Deadline != grid.InfDeadline && r.Deadline < hiT {
		hiT = r.Deadline
	}
	wHi = int(hiT) - sumB
	// Clip to the box.
	d := st.G.D()
	if wLo < st.Box.Lo[d] {
		wLo = st.Box.Lo[d]
	}
	if wHi > st.Box.Hi[d]-1 {
		wHi = st.Box.Hi[d] - 1
	}
	return wLo, wHi
}

// OutageWindow maps a node outage over the real-time interval [from, to) to
// the inclusive w-range of the node's lattice copies: the copy of node v at
// real time t sits at w = t − Σvᵢ, so the failed copies occupy
// w ∈ [from − Σv, to − Σv), clipped to the box. ok is false when the clipped
// range is empty (the outage lies entirely outside the horizon).
func (st *Graph) OutageWindow(v grid.Vec, from, to int64) (wLo, wHi int, ok bool) {
	s := v.Sum()
	wLo = int(from) - s
	wHi = int(to-1) - s
	d := st.G.D()
	if wLo < st.Box.Lo[d] {
		wLo = st.Box.Lo[d]
	}
	if wHi > st.Box.Hi[d]-1 {
		wHi = st.Box.Hi[d] - 1
	}
	return wLo, wHi, wLo <= wHi
}

// Move is one step of a packet schedule. Values 0..d-1 transmit along the
// corresponding grid axis; Hold keeps the packet buffered for a step.
type Move = int8

// Hold is the buffered move.
const Hold Move = -1

// Schedule is an explicit space-time route of a single packet: starting at
// (Src, StartT), each move takes one time step.
type Schedule struct {
	Req    *grid.Request
	Src    grid.Vec
	StartT int64
	Moves  []Move
}

// EndState returns the final node and time of the schedule.
func (s *Schedule) EndState() (grid.Vec, int64) {
	v := s.Src.Clone()
	for _, m := range s.Moves {
		if m >= 0 {
			v[m]++
		}
	}
	return v, s.StartT + int64(len(s.Moves))
}

// Delivers reports whether the schedule ends at the request's destination in
// time (arrival time ≤ deadline).
func (s *Schedule) Delivers() bool {
	v, t := s.EndState()
	if !v.Eq(s.Req.Dst) {
		return false
	}
	return s.Req.Deadline == grid.InfDeadline || t <= s.Req.Deadline
}

// PathToSchedule converts an untilted lattice path into a packet schedule:
// space-axis steps become transmissions, w steps become holds.
func (st *Graph) PathToSchedule(r *grid.Request, p *lattice.Path) *Schedule {
	d := st.G.D()
	node, t := st.FromLattice(p.Start, nil)
	s := &Schedule{Req: r, Src: node, StartT: t, Moves: make([]Move, 0, len(p.Axes))}
	for _, a := range p.Axes {
		if int(a) == d {
			s.Moves = append(s.Moves, Hold)
		} else {
			s.Moves = append(s.Moves, Move(a))
		}
	}
	return s
}

// ScheduleToPath converts a schedule back into an untilted lattice path.
func (st *Graph) ScheduleToPath(s *Schedule) *lattice.Path {
	d := st.G.D()
	p := &lattice.Path{Start: st.ToLattice(s.Src, s.StartT, nil)}
	p.Axes = make([]uint8, 0, len(s.Moves))
	for _, m := range s.Moves {
		if m == Hold {
			p.Axes = append(p.Axes, uint8(d))
		} else {
			p.Axes = append(p.Axes, uint8(m))
		}
	}
	return p
}

// Validate checks the internal consistency of a schedule against the grid
// and horizon: it must start at the request source and arrival time, stay
// inside the grid, and only move forward. It returns a descriptive error.
func (st *Graph) Validate(s *Schedule) error {
	if !s.Src.Eq(s.Req.Src) || s.StartT != s.Req.Arrival {
		return fmt.Errorf("schedule starts at %v@%d, request at %v@%d", s.Src, s.StartT, s.Req.Src, s.Req.Arrival)
	}
	v := s.Src.Clone()
	t := s.StartT
	for i, m := range s.Moves {
		if m != Hold {
			if int(m) < 0 || int(m) >= st.G.D() {
				return fmt.Errorf("move %d: bad axis %d", i, m)
			}
			v[m]++
			if v[m] >= st.G.Dims[m] {
				return fmt.Errorf("move %d: leaves grid at %v", i, v)
			}
		}
		t++
		if t > st.T {
			return fmt.Errorf("move %d: exceeds horizon %d", i, st.T)
		}
	}
	return nil
}

// SuggestHorizon returns a horizon comfortably larger than the last arrival
// plus the worst-case useful route length for the workload: maxArrival +
// slack·(diam + diam·B/c) with slack ≥ 1.
func SuggestHorizon(g *grid.Grid, reqs []grid.Request, slack int) int64 {
	if slack < 1 {
		slack = 1
	}
	bc := 1
	if g.C > 0 {
		bc = (g.B + g.C - 1) / g.C
		if bc < 1 {
			bc = 1
		}
	}
	route := int64(g.Diameter() * (1 + bc))
	return grid.MaxArrival(reqs) + int64(slack)*route + 4
}
