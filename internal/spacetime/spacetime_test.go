package spacetime

import (
	"testing"
	"testing/quick"

	"gridroute/internal/grid"
	"gridroute/internal/lattice"
)

func TestUntiltRoundTrip(t *testing.T) {
	g := grid.New([]int{4, 3}, 2, 1)
	st := New(g, 50)
	f := func(a, b uint8, tt uint16) bool {
		v := grid.Vec{int(a) % 4, int(b) % 3}
		tm := int64(tt % 50)
		p := st.ToLattice(v, tm, nil)
		w, t2 := st.FromLattice(p, nil)
		return w.Eq(v) && t2 == tm && TimeOf(p) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Fig. 3 property: untilting maps E0 edges (u,t)→(v,t+1) and E1 edges
// (u,t)→(u,t+1) to axis-parallel unit steps.
func TestUntiltEdgesAxisParallel(t *testing.T) {
	g := grid.Line(6, 2, 1)
	st := New(g, 20)
	v := grid.Vec{3}
	tm := int64(7)
	p := st.ToLattice(v, tm, nil)

	// E0: transmit 3→4 between t=7 and t=8.
	q := st.ToLattice(grid.Vec{4}, tm+1, nil)
	if q[0]-p[0] != 1 || q[1] != p[1] {
		t.Fatalf("E0 edge not a unit x-step: %v -> %v", p, q)
	}
	// E1: hold at node 3.
	r := st.ToLattice(v, tm+1, nil)
	if r[0] != p[0] || r[1]-p[1] != 1 {
		t.Fatalf("E1 edge not a unit w-step: %v -> %v", p, r)
	}
}

func TestBoxBounds(t *testing.T) {
	g := grid.New([]int{4, 4}, 1, 1)
	st := New(g, 10)
	// Node (3,3) at time 0 has w = -6 = -diam; must be inside.
	p := st.ToLattice(grid.Vec{3, 3}, 0, nil)
	if !st.Box.Contains(p) {
		t.Fatalf("corner point %v outside box", p)
	}
	// Node (0,0) at time T.
	p = st.ToLattice(grid.Vec{0, 0}, 10, nil)
	if !st.Box.Contains(p) {
		t.Fatalf("late point %v outside box", p)
	}
}

func TestCaps(t *testing.T) {
	g := grid.New([]int{4, 4}, 5, 3)
	st := New(g, 10)
	if st.Cap(0) != 3 || st.Cap(1) != 3 {
		t.Fatal("space axes should have capacity c")
	}
	if st.Cap(st.WAxis()) != 5 {
		t.Fatal("w axis should have capacity B")
	}
}

func TestDestRay(t *testing.T) {
	g := grid.Line(10, 1, 1)
	st := New(g, 30)
	r := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{7}, Arrival: 3, Deadline: 12}
	lo, hi := st.DestRay(r)
	// Copies (7, t') for t' in [3,12] → w = t'-7 in [-4, 5].
	if lo != -4 || hi != 5 {
		t.Fatalf("dest ray [%d,%d], want [-4,5]", lo, hi)
	}
	// The earliest *reachable* copy is at w = src.w = 1 (t' = 8 = 3+dist).
	src := st.SourcePoint(r)
	if src[0] != 2 || src[1] != 1 {
		t.Fatalf("source point %v", src)
	}
	// No deadline: bounded by horizon.
	r2 := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{7}, Arrival: 3, Deadline: grid.InfDeadline}
	lo2, hi2 := st.DestRay(r2)
	if lo2 != -4 || hi2 != 30-7 {
		t.Fatalf("dest ray [%d,%d], want [-4,23]", lo2, hi2)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	g := grid.Line(8, 2, 1)
	st := New(g, 40)
	r := &grid.Request{Src: grid.Vec{1}, Dst: grid.Vec{4}, Arrival: 2, Deadline: grid.InfDeadline}
	p := &lattice.Path{Start: st.ToLattice(r.Src, r.Arrival, nil), Axes: []uint8{0, 1, 0, 0}}
	s := st.PathToSchedule(r, p)
	if len(s.Moves) != 4 || s.Moves[1] != Hold {
		t.Fatalf("schedule moves: %v", s.Moves)
	}
	end, tm := s.EndState()
	if !end.Eq(grid.Vec{4}) || tm != 6 {
		t.Fatalf("end state %v @%d", end, tm)
	}
	if !s.Delivers() {
		t.Fatal("should deliver")
	}
	back := st.ScheduleToPath(s)
	if back.Len() != 4 || back.Axes[1] != 1 {
		t.Fatalf("round trip path: %+v", back)
	}
	if err := st.Validate(s); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	g := grid.Line(4, 1, 1)
	st := New(g, 5)
	r := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline}
	s := &Schedule{Req: r, Src: grid.Vec{2}, StartT: 0, Moves: []Move{0, 0}}
	if err := st.Validate(s); err == nil {
		t.Fatal("schedule leaves the grid; should fail")
	}
	s2 := &Schedule{Req: r, Src: grid.Vec{1}, StartT: 0, Moves: []Move{0}}
	if err := st.Validate(s2); err == nil {
		t.Fatal("wrong source; should fail")
	}
	s3 := &Schedule{Req: r, Src: grid.Vec{2}, StartT: 0, Moves: []Move{Hold, Hold, Hold, Hold, Hold, 0}}
	if err := st.Validate(s3); err == nil {
		t.Fatal("exceeds horizon; should fail")
	}
}

func TestDeadlineMiss(t *testing.T) {
	r := &grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: 3}
	s := &Schedule{Req: r, Src: grid.Vec{0}, StartT: 0, Moves: []Move{Hold, Hold, 0, 0}}
	if s.Delivers() {
		t.Fatal("arrives at t=4 > deadline 3")
	}
	s2 := &Schedule{Req: r, Src: grid.Vec{0}, StartT: 0, Moves: []Move{Hold, 0, 0}}
	if !s2.Delivers() {
		t.Fatal("arrives at t=3 = deadline; should count")
	}
}

func TestSuggestHorizon(t *testing.T) {
	g := grid.Line(10, 4, 2)
	reqs := []grid.Request{{Arrival: 17}}
	h := SuggestHorizon(g, reqs, 2)
	if h <= 17 {
		t.Fatalf("horizon %d too small", h)
	}
}
