// Parallel wavefront relaxation for DP.RunFlat.
//
// The window is partitioned along axis 0 (the slowest-varying, outermost
// coordinate — time, after untilting) into contiguous bands of rows, one per
// worker. Row i depends only on rows ≤ i and on smaller column indices of
// row i itself, so bands pipeline: the flattened rest-space (the product of
// axes 1..d−1) is cut into column chunks, and band b may relax chunk j as
// soon as band b−1 has finished its chunk j. A per-band atomic progress
// counter carries both the ordering and the memory-visibility edge, so there
// are no per-wavefront barriers — the bands stream diagonally across the
// window like a systolic array.
//
// Bit-identity with the serial sweep: the parallel kernel relaxes by
// *pulling* — each node computes min over its in-window predecessors, axes
// in ascending order, strict < — and every node is written by exactly one
// worker. The serial push sweep processes a node's predecessors in ascending
// window-index order, which is exactly ascending axis order (window strides
// decrease with axis), and overwrites only on strict improvement; both
// therefore keep the lowest-axis predecessor on cost ties, and both evaluate
// the identical float expression cost(u) + edgeX[...] (+ nodeX[...]). The
// source node is initialized up front and skipped by every chunk.
package lattice

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxParAxes bounds the dimensionality the parallel and incremental kernels
// handle with stack scratch; higher-dimensional boxes (unused in practice)
// fall back to the serial generic kernel.
const maxParAxes = 16

// DefaultMinWindow is the window-size crossover below which an attached Pool
// is ignored and RunFlat stays serial: at ~1k nodes a full serial sweep is
// ~µs-scale, comparable to waking the workers.
const DefaultMinWindow = 1024

// parTask asks a pool worker to run one band of one DP's current window.
type parTask struct {
	dp   *DP
	band int
}

// Pool is a persistent set of wavefront workers shared by any number of DPs
// (concurrent RunFlat calls on *different* DPs are safe; a DP itself is
// single-threaded as ever). The pool holds workers−1 goroutines — the
// caller's goroutine always relaxes the last band itself, so a 1-worker pool
// spawns nothing and changes nothing.
type Pool struct {
	workers int
	tasks   chan parTask
	once    sync.Once

	// MinWindow overrides DefaultMinWindow when > 0: windows smaller than
	// this many nodes relax serially. Tests set it to 1 to force the
	// parallel path onto tiny windows.
	MinWindow int
}

// NewPool starts a pool of the given width. workers ≤ 1 yields an inert pool
// that never parallelizes.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan parTask, 4*workers)
		for i := 0; i < workers-1; i++ {
			go func() {
				for t := range p.tasks {
					t.dp.runBand(t.band)
					t.dp.par.wg.Done()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool width (bands per window, including the caller).
func (p *Pool) Workers() int { return p.workers }

// Close shuts the worker goroutines down. Idempotent and nil-safe; the pool
// must be idle (no RunFlat in flight).
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}

func (p *Pool) minWindow() int {
	if p.MinWindow > 0 {
		return p.MinWindow
	}
	return DefaultMinWindow
}

// parState is a DP's reusable parallel-run bookkeeping. progress[b] counts
// the chunks band b has completed; it is the only cross-band communication.
type parState struct {
	wg        sync.WaitGroup
	progress  []atomic.Int64
	bandLo    []int // band b covers rows [bandLo[b], bandLo[b+1])
	edgeX     []float64
	nodeX     []float64
	bound     float64
	cols      int // flattened rest-space size (wsize / wdims[0])
	chunk     int // columns per chunk
	numChunks int
}

// runFlatParallel relaxes the current window on the attached pool. It
// reports false (leaving the buffers untouched beyond setupWindow) when the
// shape does not parallelize — fewer than 2 usable bands — in which case the
// caller falls back to the serial kernels.
//
//gridroute:hotpath
func (dp *DP) runFlatParallel(edgeX, nodeX []float64, bound float64) bool {
	rows := dp.wdims[0]
	nb := dp.pool.workers
	if nb > rows {
		nb = rows
	}
	if nb < 2 {
		return false
	}
	ps := &dp.par
	ps.edgeX, ps.nodeX, ps.bound = edgeX, nodeX, bound
	ps.cols = dp.wsize / rows

	// ~4 chunks per band keeps pipeline fill/drain under ~25% of the work
	// while the per-chunk synchronization stays one atomic store + load.
	target := 4 * nb
	ps.chunk = (ps.cols + target - 1) / target
	ps.numChunks = (ps.cols + ps.chunk - 1) / ps.chunk

	if cap(ps.progress) < nb {
		ps.progress = make([]atomic.Int64, nb)
		ps.bandLo = make([]int, nb+1)
	}
	ps.progress = ps.progress[:nb]
	ps.bandLo = ps.bandLo[:nb+1]
	for b := 0; b < nb; b++ {
		ps.progress[b].Store(0)
		ps.bandLo[b] = b * rows / nb
	}
	ps.bandLo[nb] = rows

	// The source is written once here and skipped by every chunk, so its
	// init survives; everything else is (over)written by exactly one chunk.
	if nodeX != nil {
		dp.cost[dp.srcW] = nodeX[dp.box.Index(dp.srcAbs)]
	} else {
		dp.cost[dp.srcW] = 0
	}
	dp.pred[dp.srcW] = -1

	ps.wg.Add(nb - 1)
	for b := 0; b < nb-1; b++ {
		dp.pool.tasks <- parTask{dp: dp, band: b}
	}
	dp.runBand(nb - 1)
	ps.wg.Wait()
	return true
}

// runBand relaxes one band's rows, chunk by chunk, waiting for the band
// above to clear each chunk first. The spin is short — the dependency is at
// most one chunk of work away — and yields to the scheduler so the pipeline
// drains even when goroutines outnumber CPUs (GOMAXPROCS=1 included).
//
//gridroute:hotpath
func (dp *DP) runBand(band int) {
	ps := &dp.par
	for j := 0; j < ps.numChunks; j++ {
		if band > 0 {
			for spin := 0; ps.progress[band-1].Load() <= int64(j); spin++ {
				if spin > 32 {
					runtime.Gosched()
				}
			}
		}
		c0 := j * ps.chunk
		c1 := c0 + ps.chunk
		if c1 > ps.cols {
			c1 = ps.cols
		}
		if dp.box.D() == 2 {
			dp.runChunk2(ps.bandLo[band], ps.bandLo[band+1], c0, c1)
		} else {
			dp.runChunkGeneric(ps.bandLo[band], ps.bandLo[band+1], c0, c1)
		}
		ps.progress[band].Store(int64(j + 1))
	}
}

// runChunk2 pulls rows [r0,r1) × columns [c0,c1) of a 2-axis window.
//
//gridroute:hotpath
func (dp *DP) runChunk2(r0, r1, c0, c1 int) {
	ps := &dp.par
	cost, pred := dp.cost, dp.pred
	edgeX, nodeX, bound := ps.edgeX, ps.nodeX, ps.bound
	cols := ps.cols
	bs0, bs1 := dp.box.stride[0], dp.box.stride[1]
	for i := r0; i < r1; i++ {
		w := i*cols + c0
		bID := dp.winBoxBase + i*bs0 + c0*bs1
		for c := c0; c < c1; c++ {
			if w == dp.srcW {
				w++
				bID += bs1
				continue
			}
			best, bp := Inf, int8(-1)
			if i > 0 {
				if pc := cost[w-cols]; pc < bound {
					ec := pc + edgeX[(bID-bs0)*2]
					if nodeX != nil {
						ec += nodeX[bID]
					}
					if ec < best {
						best, bp = ec, 0
					}
				}
			}
			if c > 0 {
				if pc := cost[w-1]; pc < bound {
					ec := pc + edgeX[(bID-bs1)*2+1]
					if nodeX != nil {
						ec += nodeX[bID]
					}
					if ec < best {
						best, bp = ec, 1
					}
				}
			}
			cost[w], pred[w] = best, bp
			w++
			bID += bs1
		}
	}
}

// runChunkGeneric is runChunk2 for any dimensionality ≤ maxParAxes: the
// rest-space coordinates (axes 1..d−1) are decoded once per row-chunk into
// stack scratch and advanced with an odometer.
//
//gridroute:hotpath
func (dp *DP) runChunkGeneric(r0, r1, c0, c1 int) {
	ps := &dp.par
	cost, pred := dp.cost, dp.pred
	edgeX, nodeX, bound := ps.edgeX, ps.nodeX, ps.bound
	cols := ps.cols
	d := dp.box.D()
	for i := r0; i < r1; i++ {
		var off [maxParAxes]int
		bID := dp.winBoxBase + i*dp.box.stride[0]
		rem := c0
		for a := 1; a < d; a++ {
			off[a] = rem / dp.wstr[a]
			rem %= dp.wstr[a]
			bID += off[a] * dp.box.stride[a]
		}
		w := i*cols + c0
		for c := c0; c < c1; c++ {
			if w == dp.srcW {
				goto next
			}
			{
				best, bp := Inf, int8(-1)
				if i > 0 {
					if pc := cost[w-cols]; pc < bound {
						ec := pc + edgeX[(bID-dp.box.stride[0])*d]
						if nodeX != nil {
							ec += nodeX[bID]
						}
						if ec < best {
							best, bp = ec, 0
						}
					}
				}
				for a := 1; a < d; a++ {
					if off[a] == 0 {
						continue
					}
					if pc := cost[w-dp.wstr[a]]; pc < bound {
						ec := pc + edgeX[(bID-dp.box.stride[a])*d+a]
						if nodeX != nil {
							ec += nodeX[bID]
						}
						if ec < best {
							best, bp = ec, int8(a)
						}
					}
				}
				cost[w], pred[w] = best, bp
			}
		next:
			w++
			for a := d - 1; a >= 1; a-- {
				off[a]++
				bID += dp.box.stride[a]
				if off[a] < dp.wdims[a] {
					break
				}
				bID -= dp.wdims[a] * dp.box.stride[a]
				off[a] = 0
			}
		}
	}
}
