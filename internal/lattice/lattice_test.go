package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxIndexRoundTrip(t *testing.T) {
	b := NewBox([]int{-3, 0, 5}, []int{2, 4, 9})
	if b.Size() != 5*4*4 {
		t.Fatalf("size = %d, want %d", b.Size(), 5*4*4)
	}
	pt := make([]int, 3)
	seen := make(map[int]bool)
	for id := 0; id < b.Size(); id++ {
		b.Point(id, pt)
		if !b.Contains(pt) {
			t.Fatalf("point %v of id %d not contained", pt, id)
		}
		if got := b.Index(pt); got != id {
			t.Fatalf("round trip %v: got %d want %d", pt, got, id)
		}
		seen[id] = true
	}
	if len(seen) != b.Size() {
		t.Fatalf("ids not unique")
	}
}

func TestBoxStepBack(t *testing.T) {
	b := NewBox([]int{0, -2}, []int{3, 1})
	pt := make([]int, 2)
	nb := make([]int, 2)
	for id := 0; id < b.Size(); id++ {
		b.Point(id, pt)
		for a := 0; a < 2; a++ {
			n, ok := b.Step(id, a)
			copy(nb, pt)
			nb[a]++
			if ok != b.Contains(nb) {
				t.Fatalf("Step(%v,%d) ok=%v want %v", pt, a, ok, b.Contains(nb))
			}
			if ok && n != b.Index(nb) {
				t.Fatalf("Step(%v,%d) = %d want %d", pt, a, n, b.Index(nb))
			}
			p, ok2 := b.Back(id, a)
			copy(nb, pt)
			nb[a]--
			if ok2 != b.Contains(nb) {
				t.Fatalf("Back(%v,%d) ok=%v want %v", pt, a, ok2, b.Contains(nb))
			}
			if ok2 && p != b.Index(nb) {
				t.Fatalf("Back(%v,%d) = %d want %d", pt, a, p, b.Index(nb))
			}
		}
	}
}

func TestNumEdges(t *testing.T) {
	b := NewBox([]int{0, 0}, []int{3, 4})
	// Horizontal-ish: 3 columns of 4 → axis0 edges: 2*4=8; axis1: 3*3=9.
	if got := b.NumEdges(); got != 17 {
		t.Fatalf("NumEdges = %d, want 17", got)
	}
}

func TestL1(t *testing.T) {
	if L1([]int{1, 2}, []int{3, 5}) != 5 {
		t.Fatal("L1 mismatch")
	}
	if L1([]int{1, 2}, []int{0, 5}) != -1 {
		t.Fatal("unreachable should be -1")
	}
}

func TestPathEndVisit(t *testing.T) {
	p := &Path{Start: []int{1, 1}, Axes: []uint8{0, 1, 1}}
	end := p.End()
	if end[0] != 2 || end[1] != 3 {
		t.Fatalf("End = %v", end)
	}
	var count int
	p.Visit(func(pt []int) { count++ })
	if count != 4 {
		t.Fatalf("Visit count = %d, want 4", count)
	}
}

// bruteLightest computes the lightest path cost by Bellman-Ford-style
// relaxation over the whole box (reference implementation).
func bruteLightest(b *Box, src, dst []int, ew EdgeWeight, nw NodeWeight) float64 {
	cost := make([]float64, b.Size())
	for i := range cost {
		cost[i] = math.Inf(1)
	}
	srcID := b.Index(src)
	if nw != nil {
		cost[srcID] = nw(srcID)
	}
	// Row-major order is topological.
	for id := 0; id < b.Size(); id++ {
		if math.IsInf(cost[id], 1) {
			continue
		}
		for a := 0; a < b.D(); a++ {
			if n, ok := b.Step(id, a); ok {
				c := cost[id] + ew(id, a)
				if nw != nil {
					c += nw(n)
				}
				if c < cost[n] {
					cost[n] = c
				}
			}
		}
	}
	return cost[b.Index(dst)]
}

func TestDPAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(2)
		lo := make([]int, d)
		hi := make([]int, d)
		for i := range lo {
			lo[i] = rng.Intn(5) - 2
			hi[i] = lo[i] + 2 + rng.Intn(5)
		}
		b := NewBox(lo, hi)
		ew := make([]float64, b.Size()*d)
		for i := range ew {
			ew[i] = rng.Float64()
		}
		nwArr := make([]float64, b.Size())
		for i := range nwArr {
			nwArr[i] = rng.Float64() * 0.3
		}
		edgeW := func(id, a int) float64 { return ew[id*d+a] }
		nodeW := func(id int) float64 { return nwArr[id] }

		src := append([]int(nil), lo...)
		dst := make([]int, d)
		for i := range dst {
			dst[i] = lo[i] + rng.Intn(hi[i]-lo[i])
		}
		dp := b.NewDP()
		dp.Run(lo, hi, src, edgeW, nodeW)
		got := dp.CostAt(dst)
		want := bruteLightest(b, src, dst, edgeW, nodeW)
		if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("trial %d: dp=%v brute=%v (src=%v dst=%v)", trial, got, want, src, dst)
		}
		if !math.IsInf(got, 1) {
			p := dp.PathTo(dst)
			if p == nil {
				t.Fatalf("reachable but no path")
			}
			if L1(src, dst) != p.Len() {
				t.Fatalf("path length %d != L1 %d", p.Len(), L1(src, dst))
			}
			// Recompute cost along the path.
			var c float64
			cur := append([]int(nil), p.Start...)
			c += nodeW(b.Index(cur))
			for _, a := range p.Axes {
				c += edgeW(b.Index(cur), int(a))
				cur[a]++
				c += nodeW(b.Index(cur))
			}
			if math.Abs(c-got) > 1e-9 {
				t.Fatalf("path cost %v != dp cost %v", c, got)
			}
			end := p.End()
			for i := range end {
				if end[i] != dst[i] {
					t.Fatalf("path ends at %v, want %v", end, dst)
				}
			}
		}
	}
}

func TestDPWindowRestricts(t *testing.T) {
	b := NewBox([]int{0, 0}, []int{10, 10})
	dp := b.NewDP()
	unit := func(id, a int) float64 { return 1 }
	dp.Run([]int{0, 0}, []int{5, 5}, []int{0, 0}, unit, nil)
	if dp.CostAt([]int{4, 4}) != 8 {
		t.Fatalf("cost = %v, want 8", dp.CostAt([]int{4, 4}))
	}
	if !math.IsInf(dp.CostAt([]int{5, 5}), 1) {
		t.Fatal("outside window must be Inf")
	}
	if !math.IsInf(dp.CostAt([]int{9, 9}), 1) {
		t.Fatal("outside window must be Inf")
	}
}

func TestDPSourceOutsideWindow(t *testing.T) {
	b := NewBox([]int{0}, []int{4})
	dp := b.NewDP()
	dp.Run([]int{2}, []int{4}, []int{0}, func(id, a int) float64 { return 0 }, nil)
	if !math.IsInf(dp.CostAt([]int{3}), 1) {
		t.Fatal("invalid run should report Inf")
	}
}

func TestDPReuse(t *testing.T) {
	b := NewBox([]int{0, 0}, []int{6, 6})
	dp := b.NewDP()
	unit := func(id, a int) float64 { return 1 }
	dp.Run([]int{0, 0}, []int{6, 6}, []int{0, 0}, unit, nil)
	first := dp.CostAt([]int{5, 5})
	dp.Run([]int{1, 1}, []int{4, 4}, []int{1, 1}, unit, nil)
	if dp.CostAt([]int{3, 3}) != 4 {
		t.Fatalf("after reuse cost = %v, want 4", dp.CostAt([]int{3, 3}))
	}
	dp.Run([]int{0, 0}, []int{6, 6}, []int{0, 0}, unit, nil)
	if dp.CostAt([]int{5, 5}) != first {
		t.Fatalf("reuse changed result: %v vs %v", dp.CostAt([]int{5, 5}), first)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 5, 0}, {-1, 5, -1}, {4, 5, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorDivQuick(t *testing.T) {
	f := func(a int16, b uint8) bool {
		bb := int(b)%37 + 1
		q := FloorDiv(int(a), bb)
		r := int(a) - q*bb
		return r >= 0 && r < bb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DP path hop count always equals L1 distance (box-DAG fact used by
// the pmax reduction).
func TestHopsEqualL1Quick(t *testing.T) {
	b := NewBox([]int{0, 0, 0}, []int{4, 4, 4})
	dp := b.NewDP()
	rng := rand.New(rand.NewSource(3))
	ew := func(id, a int) float64 { return rng.Float64() }
	f := func(sx, sy, sz, dx, dy, dz uint8) bool {
		s := []int{int(sx % 4), int(sy % 4), int(sz % 4)}
		d := []int{int(dx % 4), int(dy % 4), int(dz % 4)}
		for i := range d {
			if d[i] < s[i] {
				s[i], d[i] = d[i], s[i]
			}
		}
		dp.Run(b.Lo, b.Hi, s, ew, nil)
		p := dp.PathTo(d)
		return p != nil && p.Len() == L1(s, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFlatMatchesRun checks that the flat-slice DP produces exactly the
// same costs and predecessors as the closure-based DP for random weight
// assignments, with and without node weights.
func TestRunFlatMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(2)
		lo := make([]int, d)
		hi := make([]int, d)
		for i := range lo {
			lo[i] = rng.Intn(3) - 1
			hi[i] = lo[i] + 2 + rng.Intn(4)
		}
		b := NewBox(lo, hi)
		edgeX := make([]float64, b.Size()*d)
		nodeX := make([]float64, b.Size())
		for i := range edgeX {
			edgeX[i] = rng.Float64()
		}
		for i := range nodeX {
			nodeX[i] = rng.Float64()
		}
		var useNode []float64
		if trial%2 == 0 {
			useNode = nodeX
		}
		var nodeW NodeWeight
		if useNode != nil {
			nodeW = func(id int) float64 { return nodeX[id] }
		}

		src := make([]int, d)
		for i := range src {
			src[i] = lo[i] + rng.Intn(hi[i]-lo[i])
		}
		dpA := b.NewDP()
		dpB := b.NewDP()
		dpA.Run(lo, hi, src, func(id, a int) float64 { return edgeX[id*d+a] }, nodeW)
		dpB.RunFlat(lo, hi, src, edgeX, useNode)

		probe := make([]int, d)
		for id := 0; id < b.Size(); id++ {
			b.Point(id, probe)
			ca, cb := dpA.CostAt(probe), dpB.CostAt(probe)
			if ca != cb {
				t.Fatalf("trial %d point %v: Run cost %v != RunFlat cost %v", trial, probe, ca, cb)
			}
			if ca == Inf {
				continue
			}
			pa, pb := dpA.PathTo(probe), dpB.PathTo(probe)
			if len(pa.Axes) != len(pb.Axes) {
				t.Fatalf("trial %d point %v: path lengths differ", trial, probe)
			}
			for j := range pa.Axes {
				if pa.Axes[j] != pb.Axes[j] {
					t.Fatalf("trial %d point %v: paths diverge at step %d", trial, probe, j)
				}
			}
		}
	}
}
