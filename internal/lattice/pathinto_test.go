package lattice

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPathIntoMatchesPathTo checks the allocation-reusing path extraction
// against the allocating one across random DPs and repeated reuse of the
// same output Path.
func TestPathIntoMatchesPathTo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var out Path
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(3)
		lo := make([]int, d)
		hi := make([]int, d)
		for i := range lo {
			lo[i] = rng.Intn(4) - 2
			hi[i] = lo[i] + 2 + rng.Intn(4)
		}
		b := NewBox(lo, hi)
		ew := make([]float64, b.Size()*d)
		for i := range ew {
			ew[i] = rng.Float64()
		}
		dp := b.NewDP()
		dp.Run(lo, hi, lo, func(id, a int) float64 { return ew[id*d+a] }, nil)

		// Probe several destinations per DP so the reused Path shrinks and
		// grows across calls.
		for probe := 0; probe < 5; probe++ {
			dst := make([]int, d)
			for i := range dst {
				dst[i] = lo[i] + rng.Intn(hi[i]-lo[i])
			}
			want := dp.PathTo(dst)
			ok := dp.PathInto(dst, &out)
			if (want == nil) != !ok {
				t.Fatalf("trial %d: PathTo nil=%v but PathInto ok=%v", trial, want == nil, ok)
			}
			if want == nil {
				continue
			}
			// A reused out.Axes may be empty-but-non-nil where a fresh
			// path's is nil; compare contents, not headers.
			sameAxes := len(want.Axes) == len(out.Axes)
			for i := 0; sameAxes && i < len(out.Axes); i++ {
				sameAxes = want.Axes[i] == out.Axes[i]
			}
			if !reflect.DeepEqual(want.Start, out.Start) || !sameAxes {
				t.Fatalf("trial %d: PathInto (%v,%v) != PathTo (%v,%v)", trial, out.Start, out.Axes, want.Start, want.Axes)
			}
		}
	}
}
