// Package lattice implements bounded axis-aligned integer boxes with directed
// unit-step edges along each axis ("box DAGs").
//
// Both the untilted space-time graph of a uni-directional grid (Sec. 3.1–3.2
// of Even–Medina) and every sketch graph over its tiles (Sec. 3.4) are box
// DAGs: after the untilting automorphism q(x, t) = (x, t − Σx), all edges
// advance exactly one coordinate by +1. Two structural facts are exploited
// throughout the repository:
//
//  1. every directed path between two points u ≤ v has exactly ‖v−u‖₁ edges,
//     so the bounded-path-length constraint of Theorem 1 reduces to bounding
//     the destination window; and
//  2. any traversal of points in non-decreasing coordinate order is a
//     topological order; ordering by t = w + Σx makes the traversal coincide
//     with simulation time.
package lattice

import (
	"fmt"
	"math"
)

// Box is the set of integer points p with Lo[i] ≤ p[i] < Hi[i] for every
// axis i, together with the directed edges p → p+e_i for points where the
// head is still inside the box.
type Box struct {
	Lo, Hi []int

	dims   []int
	stride []int
	size   int
}

// NewBox constructs a box. Panics if hi[i] ≤ lo[i] for some axis: boxes are
// configuration and must be non-empty.
func NewBox(lo, hi []int) *Box {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic("lattice: lo/hi dimension mismatch")
	}
	b := &Box{
		Lo:     append([]int(nil), lo...),
		Hi:     append([]int(nil), hi...),
		dims:   make([]int, len(lo)),
		stride: make([]int, len(lo)),
	}
	b.size = 1
	for i := len(lo) - 1; i >= 0; i-- {
		if hi[i] <= lo[i] {
			panic(fmt.Sprintf("lattice: empty axis %d: [%d,%d)", i, lo[i], hi[i]))
		}
		b.dims[i] = hi[i] - lo[i]
		b.stride[i] = b.size
		b.size *= b.dims[i]
	}
	return b
}

// D returns the number of axes.
func (b *Box) D() int { return len(b.Lo) }

// Size returns the number of points in the box.
func (b *Box) Size() int { return b.size }

// Dim returns the extent of axis i.
func (b *Box) Dim(i int) int { return b.dims[i] }

// Stride returns the id increment of a +1 step along axis i: for p inside the
// box with p+e_i inside too, Index(p+e_i) = Index(p) + Stride(i). It lets a
// caller walk a path's node ids incrementally instead of re-indexing each
// point.
func (b *Box) Stride(i int) int { return b.stride[i] }

// Contains reports whether p lies inside the box.
func (b *Box) Contains(p []int) bool {
	if len(p) != len(b.Lo) {
		return false
	}
	for i, x := range p {
		if x < b.Lo[i] || x >= b.Hi[i] {
			return false
		}
	}
	return true
}

// Index maps a point to a dense id in [0, Size). Panics when out of range.
func (b *Box) Index(p []int) int {
	id := 0
	for i, x := range p {
		if x < b.Lo[i] || x >= b.Hi[i] {
			panic(fmt.Sprintf("lattice: point %v outside box [%v,%v)", p, b.Lo, b.Hi))
		}
		id += (x - b.Lo[i]) * b.stride[i]
	}
	return id
}

// Point maps a dense id back to coordinates, writing into out when non-nil.
func (b *Box) Point(id int, out []int) []int {
	if out == nil {
		out = make([]int, len(b.Lo))
	}
	for i := range b.Lo {
		out[i] = b.Lo[i] + id/b.stride[i]
		id %= b.stride[i]
	}
	return out
}

// Step returns the id of the neighbor of node id along +axis, and whether it
// exists (the head may fall outside the box).
func (b *Box) Step(id, axis int) (int, bool) {
	// Coordinate along axis is (id / stride[axis]) % dims[axis].
	c := (id / b.stride[axis]) % b.dims[axis]
	if c+1 >= b.dims[axis] {
		return 0, false
	}
	return id + b.stride[axis], true
}

// Back returns the id of the neighbor of node id along −axis, and whether it
// exists.
func (b *Box) Back(id, axis int) (int, bool) {
	c := (id / b.stride[axis]) % b.dims[axis]
	if c == 0 {
		return 0, false
	}
	return id - b.stride[axis], true
}

// NumEdges returns the number of directed edges in the box.
func (b *Box) NumEdges() int {
	total := 0
	for _, d := range b.dims {
		total += (b.size / d) * (d - 1)
	}
	return total
}

// L1 returns ‖v−u‖₁ for u ≤ v, which is the (unique) number of edges on any
// directed path from u to v. It returns -1 if v is not reachable from u.
func L1(u, v []int) int {
	s := 0
	for i := range u {
		if v[i] < u[i] {
			return -1
		}
		s += v[i] - u[i]
	}
	return s
}

// Path is a directed lattice path: a start point followed by unit steps, each
// advancing one axis.
type Path struct {
	Start []int
	Axes  []uint8
}

// Len returns the number of edges.
func (p *Path) Len() int { return len(p.Axes) }

// End returns the final point of the path.
func (p *Path) End() []int {
	q := append([]int(nil), p.Start...)
	for _, a := range p.Axes {
		q[a]++
	}
	return q
}

// Visit calls fn for every point of the path in order, including endpoints.
// fn receives a reused buffer; it must not retain it.
func (p *Path) Visit(fn func(pt []int)) {
	q := append([]int(nil), p.Start...)
	fn(q)
	for _, a := range p.Axes {
		q[a]++
		fn(q)
	}
}

// EdgeWeight gives the weight of the edge leaving node id along axis.
type EdgeWeight func(id, axis int) float64

// NodeWeight gives the weight charged for visiting node id (used to fold the
// interior edges of split sketch nodes into the DP; see Sec. 5.1).
type NodeWeight func(id int) float64

// Inf is the cost of an unreachable node.
var Inf = math.Inf(1)

// DP computes lightest directed paths inside a window of a box. A DP value is
// reusable across calls to Run; it grows its buffers as needed.
//
// Path cost convention: cost(path) = Σ_nodes nodeW(v) + Σ_edges edgeW(e),
// where the sum over nodes includes both endpoints. This matches the
// {1,2,∞}-sketch-graph cost of a path s¹_in → s¹_out → … → sᴸ_out, which
// traverses the interior edge of every visited tile.
type DP struct {
	box    *Box
	winLo  []int
	winHi  []int
	wdims  []int
	wstr   []int
	wsize  int
	cost   []float64
	pred   []int8
	srcAbs []int
	pt     []int // odometer scratch
	valid  bool

	srcW       int     // window index of the source (meaningful when valid)
	winBoxBase int     // box.Index(winLo): box id of the window origin
	lastBound  float64 // relaxation bound of the last flat run (Inf = exact)
	flatRun    bool    // last run used flat slices (RerunFlat precondition)

	pool *Pool    // optional wavefront worker pool (nil = always serial)
	par  parState // per-run parallel bookkeeping (reused)

	heap      []int32  // RerunFlat frontier: binary min-heap of window ids
	mark      []uint32 // epoch-stamped in-frontier marks
	markEpoch uint32
}

// NewDP returns a DP bound to box.
func (b *Box) NewDP() *DP {
	d := len(b.Lo)
	return &DP{
		box:   b,
		winLo: make([]int, d), winHi: make([]int, d),
		wdims: make([]int, d), wstr: make([]int, d),
		srcAbs: make([]int, d), pt: make([]int, d),
	}
}

//gridroute:hotpath
func (dp *DP) winIndex(p []int) int {
	id := 0
	for i, x := range p {
		id += (x - dp.winLo[i]) * dp.wstr[i]
	}
	return id
}

//gridroute:hotpath
func (dp *DP) inWindow(p []int) bool {
	for i, x := range p {
		if x < dp.winLo[i] || x >= dp.winHi[i] {
			return false
		}
	}
	return true
}

// setupWindow clips the window to the box and sizes the cost/pred buffers.
// It returns the window index of src, or ok=false when the window is empty
// or src lies outside it. Buffers are reused across calls, so a warm DP
// allocates nothing. The buffers are NOT reset here: the pull kernels (serial
// and parallel) write every node themselves; only the push fallback and the
// closure-based Run call resetState.
//
//gridroute:hotpath
func (dp *DP) setupWindow(winLo, winHi, src []int) (srcW int, ok bool) {
	d := dp.box.D()
	dp.wsize = 1
	for i := 0; i < d; i++ {
		lo := winLo[i]
		if lo < dp.box.Lo[i] {
			lo = dp.box.Lo[i]
		}
		hi := winHi[i]
		if hi > dp.box.Hi[i] {
			hi = dp.box.Hi[i]
		}
		if hi <= lo {
			dp.valid = false
			return 0, false
		}
		dp.winLo[i], dp.winHi[i] = lo, hi
		dp.wdims[i] = hi - lo
	}
	for i := d - 1; i >= 0; i-- {
		dp.wstr[i] = dp.wsize
		dp.wsize *= dp.wdims[i]
	}
	if cap(dp.cost) < dp.wsize {
		dp.cost = make([]float64, dp.wsize)
		dp.pred = make([]int8, dp.wsize)
	}
	dp.cost = dp.cost[:dp.wsize]
	dp.pred = dp.pred[:dp.wsize]
	if !dp.inWindow(src) {
		dp.valid = false
		return 0, false
	}
	copy(dp.srcAbs, src)
	dp.winBoxBase = dp.box.Index(dp.winLo)
	dp.valid = true
	dp.srcW = dp.winIndex(src)
	return dp.srcW, true
}

// resetState fills the window with the pre-relaxation state: every node
// unreachable with no predecessor.
//
//gridroute:hotpath
func (dp *DP) resetState() {
	for i := range dp.cost {
		dp.cost[i] = Inf
		dp.pred[i] = -1
	}
}

// Run computes lightest paths from src to every point of the window
// [winLo, winHi) ∩ box. src must lie in the window. Edge and node weights are
// consulted via box node ids. After Run, use CostAt and PathTo.
//
//gridroute:hotpath
func (dp *DP) Run(winLo, winHi, src []int, edgeW EdgeWeight, nodeW NodeWeight) {
	srcW, ok := dp.setupWindow(winLo, winHi, src)
	if !ok {
		return
	}
	dp.flatRun = false
	dp.lastBound = Inf
	dp.resetState()
	if nodeW != nil {
		dp.cost[srcW] = nodeW(dp.box.Index(src))
	} else {
		dp.cost[srcW] = 0
	}

	// Iterate window points in row-major (non-decreasing coordinate) order,
	// which is a topological order of the DAG. Maintain the absolute point
	// and the box id incrementally via an odometer.
	d := dp.box.D()
	pt := dp.pt
	copy(pt, dp.winLo)
	boxID := dp.box.Index(pt)
	for w := 0; w < dp.wsize; w++ {
		c := dp.cost[w]
		if c < Inf {
			// Relax outgoing edges.
			for a := 0; a < d; a++ {
				if pt[a]+1 >= dp.winHi[a] {
					continue
				}
				nb := boxID + dp.box.stride[a]
				nw := w + dp.wstr[a]
				ec := c + edgeW(boxID, a)
				if nodeW != nil {
					ec += nodeW(nb)
				}
				if ec < dp.cost[nw] {
					dp.cost[nw] = ec
					dp.pred[nw] = int8(a)
				}
			}
		}
		// Odometer increment (row-major: last axis fastest).
		for a := d - 1; a >= 0; a-- {
			pt[a]++
			boxID += dp.box.stride[a]
			if pt[a] < dp.winHi[a] {
				break
			}
			boxID -= dp.wdims[a] * dp.box.stride[a]
			pt[a] = dp.winLo[a]
		}
	}
}

// RunFlat computes the same lightest paths as Run, reading weights from flat
// slices instead of per-edge closures: the edge leaving node id along axis a
// costs edgeX[id·D+a] (D = box.D()), and visiting node id costs nodeX[id]
// (nil nodeX means zero node weights). This is the packing hot path: the
// slices are an ipp dense packer's weight universe, indexed directly with no
// call or hash per relaxation.
//
// When a Pool has been attached via SetPool and the window clears the pool's
// crossover threshold, the relaxation runs on the pool's wavefront workers;
// results are bit-identical to the serial sweep (see parallel.go).
//
//gridroute:hotpath
func (dp *DP) RunFlat(winLo, winHi, src []int, edgeX, nodeX []float64) {
	dp.runFlatBounded(winLo, winHi, src, edgeX, nodeX, Inf)
}

// RunFlatBounded is RunFlat except that relaxation stops at nodes whose cost
// has reached bound: their outgoing edges are never relaxed. Every node whose
// exact lightest cost is < bound gets the bit-identical cost and predecessor
// RunFlat would compute (a pruned candidate has cost ≥ bound and so can
// neither win nor tie below the bound); nodes at or beyond the bound report
// some cost ≥ bound, or Inf. Callers that only consume results strictly below
// bound — the Theorem 13 oracle's accept test at cost < 1 — therefore see
// exact answers at a fraction of the relaxation work on saturated lattices.
//
//gridroute:hotpath
func (dp *DP) RunFlatBounded(winLo, winHi, src []int, edgeX, nodeX []float64, bound float64) {
	dp.runFlatBounded(winLo, winHi, src, edgeX, nodeX, bound)
}

//gridroute:hotpath
func (dp *DP) runFlatBounded(winLo, winHi, src []int, edgeX, nodeX []float64, bound float64) {
	srcW, ok := dp.setupWindow(winLo, winHi, src)
	if !ok {
		return
	}
	dp.flatRun = true
	dp.lastBound = bound
	if p := dp.pool; p != nil && p.Workers() > 1 && dp.box.D() <= maxParAxes &&
		dp.wsize >= p.minWindow() && dp.wdims[0] >= 2 {
		if dp.runFlatParallel(edgeX, nodeX, bound) {
			return
		}
	}
	// Serial pull sweep: every window node is computed from its (already
	// final) predecessors and written exactly once, so the O(window) Inf/−1
	// reset pass the push sweep needs disappears entirely — it was ~15% of
	// a full run. Bit-identity with the push order is the same argument the
	// parallel kernel rests on (see parallel.go's package comment). The
	// push sweep remains only for d > maxParAxes, where the pull odometer's
	// stack scratch runs out.
	if dp.box.D() <= maxParAxes {
		ps := &dp.par
		ps.edgeX, ps.nodeX, ps.bound = edgeX, nodeX, bound
		rows := dp.wdims[0]
		ps.cols = dp.wsize / rows
		if nodeX != nil {
			dp.cost[srcW] = nodeX[dp.box.Index(src)]
		} else {
			dp.cost[srcW] = 0
		}
		dp.pred[srcW] = -1
		if dp.box.D() == 2 {
			dp.runPull2()
		} else {
			dp.runChunkGeneric(0, rows, 0, ps.cols)
		}
		return
	}
	dp.resetState()
	if nodeX != nil {
		dp.cost[srcW] = nodeX[dp.box.Index(src)]
	} else {
		dp.cost[srcW] = 0
	}
	dp.runFlatGeneric(edgeX, nodeX, bound)
}

// runPull2 is the serial d == 2 pull sweep: runChunk2 over the whole window,
// plus a dead-row cutoff the banded parallel kernel cannot take. Once a row at
// or past the source's row ends with every cost ≥ bound, every later row is
// all-Inf — a candidate pulled from the dead row is pruned by the bound gate,
// and a within-row candidate is Inf by induction along the row — so the
// remainder is bulk-filled with the exact values (Inf, −1) the full sweep
// would compute. Results are bit-identical to runChunk2 over the window; the
// payoff is on saturated bounded runs (the Theorem 13 oracle at bound = 1),
// where the reachable region collapses to a few rows near the source and the
// fill is several times cheaper per node than the pull.
//
//gridroute:hotpath
func (dp *DP) runPull2() {
	if dp.par.nodeX == nil {
		dp.runPull2NoNode()
		return
	}
	ps := &dp.par
	cost, pred := dp.cost, dp.pred
	edgeX, nodeX, bound := ps.edgeX, ps.nodeX, ps.bound
	cols := ps.cols
	bs0, bs1 := dp.box.stride[0], dp.box.stride[1]
	rows := dp.wdims[0]
	srcW := dp.srcW
	srcRow := srcW / cols
	for i := 0; i < rows; i++ {
		alive := false
		w := i * cols
		bID := dp.winBoxBase + i*bs0
		for c := 0; c < cols; c++ {
			if w == srcW {
				if cost[w] < bound {
					alive = true
				}
				w++
				bID += bs1
				continue
			}
			best, bp := Inf, int8(-1)
			if i > 0 {
				if pc := cost[w-cols]; pc < bound {
					ec := pc + edgeX[(bID-bs0)*2] + nodeX[bID]
					if ec < best {
						best, bp = ec, 0
					}
				}
			}
			if c > 0 {
				if pc := cost[w-1]; pc < bound {
					ec := pc + edgeX[(bID-bs1)*2+1] + nodeX[bID]
					if ec < best {
						best, bp = ec, 1
					}
				}
			}
			cost[w], pred[w] = best, bp
			if best < bound {
				alive = true
			}
			w++
			bID += bs1
		}
		// Rows before the source's row are legitimately all-Inf — the
		// up-front source write revives row srcRow, so the induction only
		// starts there.
		if !alive && i >= srcRow {
			dp.fillDead((i+1)*cols, dp.wsize)
			return
		}
	}
}

// runPull2NoNode is runPull2 for nil node weights — every packing hot path
// (the sketch session and the space-time packer index edge weights only).
// Column 0 and the source's row are peeled so the steady-state inner loop
// carries no per-node boundary, source, or nil checks; dp fields are hoisted
// into locals because stores through cost/pred keep the compiler from
// proving dp itself is unmodified.
//
// Beyond the dead-row cutoff, each row's scan terminates early at the alive
// frontier. A cell is alive when its cost is < bound; a dead cell — Inf or a
// finite cost at/past the bound — is pruned as a predecessor by the bound
// gate, so a cell can only be non-Inf if its vertical or horizontal
// predecessor is alive. Scanning row i left to right, once the column is past
// `revive` (the last alive column of row i−1, or the source's column in its
// row) and the cell just written is dead, no later cell in the row has an
// alive predecessor: the remainder is exactly (Inf, −1) and is bulk-filled.
// On bounded runs the per-offer work shrinks from the window's area to
// roughly the reachable-below-bound region's.
//
//gridroute:hotpath
func (dp *DP) runPull2NoNode() {
	ps := &dp.par
	cost, pred := dp.cost, dp.pred
	edgeX, bound := ps.edgeX, ps.bound
	cols := ps.cols
	bs0, bs1 := dp.box.stride[0], dp.box.stride[1]
	rows := dp.wdims[0]
	srcW := dp.srcW
	srcRow, srcCol := srcW/cols, srcW%cols
	srcAlive := cost[srcW] < bound
	revive := -1 // last column of the previous row that can revive this one
	for i := 0; i < rows; i++ {
		if i == srcRow && srcAlive && srcCol > revive {
			revive = srcCol
		}
		maxA := -1   // last alive column written in this row
		stop := cols // first column of the row's dead remainder
		w := i * cols
		bID := dp.winBoxBase + i*bs0
		// Column 0: no horizontal predecessor.
		if w == srcW {
			if srcAlive {
				maxA = 0
			}
		} else {
			best, bp := Inf, int8(-1)
			if i > 0 {
				if pc := cost[w-cols]; pc < bound {
					if ec := pc + edgeX[(bID-bs0)*2]; ec < best {
						best, bp = ec, 0
					}
				}
			}
			cost[w], pred[w] = best, bp
			if best < bound {
				maxA = 0
			} else if revive < 0 {
				stop = 1
			}
		}
		w++
		// The inner loops carry the just-written cell in `left` (sparing the
		// cost[w−1] reload) and advance the two edgeX indices by strength
		// reduction: a +1 column step moves the vertical-pull index
		// (bID−bs0)·2 and the horizontal-pull index (bID−bs1)·2+1 by 2·bs1
		// each.
		left := cost[w-1]
		vE := (dp.winBoxBase + i*bs0 + bs1 - bs0) * 2
		hE := (dp.winBoxBase+i*bs0)*2 + 1
		bs12 := bs1 * 2
		switch {
		case stop < cols:
			// Row died at column 0.
		case i == srcRow:
			// The source's row (this also covers a top row holding the
			// source): per-cell source skip, vertical pulls only when a row
			// exists above.
			for c := 1; c < cols; c++ {
				if w == srcW {
					if srcAlive {
						maxA = c
					}
					left = cost[w]
					w++
					vE += bs12
					hE += bs12
					continue
				}
				best, bp := Inf, int8(-1)
				if i > 0 {
					if pc := cost[w-cols]; pc < bound {
						if ec := pc + edgeX[vE]; ec < best {
							best, bp = ec, 0
						}
					}
				}
				if left < bound {
					if ec := left + edgeX[hE]; ec < best {
						best, bp = ec, 1
					}
				}
				cost[w], pred[w] = best, bp
				left = best
				if best < bound {
					maxA = c
				} else if c > revive {
					stop = c + 1
					break
				}
				w++
				vE += bs12
				hE += bs12
			}
		case i == 0:
			// Top row without the source: horizontal prefix only.
			for c := 1; c < cols; c++ {
				best, bp := Inf, int8(-1)
				if left < bound {
					if ec := left + edgeX[hE]; ec < best {
						best, bp = ec, 1
					}
				}
				cost[w], pred[w] = best, bp
				left = best
				if best < bound {
					maxA = c
				} else if c > revive {
					stop = c + 1
					break
				}
				w++
				hE += bs12
			}
		default:
			// Steady state: both predecessors exist, the source is
			// elsewhere.
			for c := 1; c < cols; c++ {
				best, bp := Inf, int8(-1)
				if pc := cost[w-cols]; pc < bound {
					if ec := pc + edgeX[vE]; ec < best {
						best, bp = ec, 0
					}
				}
				if left < bound {
					if ec := left + edgeX[hE]; ec < best {
						best, bp = ec, 1
					}
				}
				cost[w], pred[w] = best, bp
				left = best
				if best < bound {
					maxA = c
				} else if c > revive {
					stop = c + 1
					break
				}
				w++
				vE += bs12
				hE += bs12
			}
		}
		if stop < cols {
			dp.fillDead(i*cols+stop, (i+1)*cols)
		}
		if maxA < 0 && i >= srcRow {
			// Fully dead row at or past the source's: everything below is
			// dead too.
			dp.fillDead((i+1)*cols, dp.wsize)
			return
		}
		revive = maxA
	}
}

// fillDead writes the exact dead-region values (Inf, −1) to window indices
// [from, to) after an alive-frontier or dead-row cutoff.
//
//gridroute:hotpath
func (dp *DP) fillDead(from, to int) {
	cost, pred := dp.cost[from:to], dp.pred[from:to]
	for j := range cost {
		cost[j] = Inf
	}
	for j := range pred {
		pred[j] = -1
	}
}

// runFlatGeneric is the any-dimension serial push kernel (the original
// RunFlat sweep, with the relaxation cutoff generalized from Inf to bound).
// It survives only as the d > maxParAxes fallback; every d ≤ maxParAxes
// window takes the pull path above.
//
//gridroute:hotpath
func (dp *DP) runFlatGeneric(edgeX, nodeX []float64, bound float64) {
	d := dp.box.D()
	pt := dp.pt
	copy(pt, dp.winLo)
	boxID := dp.winBoxBase
	for w := 0; w < dp.wsize; w++ {
		c := dp.cost[w]
		if c < bound {
			base := boxID * d
			for a := 0; a < d; a++ {
				if pt[a]+1 >= dp.winHi[a] {
					continue
				}
				nb := boxID + dp.box.stride[a]
				nw := w + dp.wstr[a]
				ec := c + edgeX[base+a]
				if nodeX != nil {
					ec += nodeX[nb]
				}
				if ec < dp.cost[nw] {
					dp.cost[nw] = ec
					dp.pred[nw] = int8(a)
				}
			}
		}
		for a := d - 1; a >= 0; a-- {
			pt[a]++
			boxID += dp.box.stride[a]
			if pt[a] < dp.winHi[a] {
				break
			}
			boxID -= dp.wdims[a] * dp.box.stride[a]
			pt[a] = dp.winLo[a]
		}
	}
}

// CostAt returns the lightest-path cost from the source to p, or Inf if p is
// outside the window or unreachable.
//
//gridroute:hotpath
func (dp *DP) CostAt(p []int) float64 {
	if !dp.valid || !dp.inWindow(p) {
		return Inf
	}
	return dp.cost[dp.winIndex(p)]
}

// MinCostRay returns the least cost over the points obtained from p by
// ranging p[axis] over [lo, hi], together with the coordinate achieving it
// (ties resolve to the lowest coordinate, like an ascending CostAt scan with
// a strict comparison). Out-of-window coordinates contribute Inf. This is
// the sink-side scan of a packer's Offer — one windowed slice walk instead
// of a winIndex odometer per probe.
//
//gridroute:hotpath
func (dp *DP) MinCostRay(p []int, axis, lo, hi int) (best float64, bestAt int) {
	best, bestAt = Inf, lo
	if !dp.valid {
		return best, bestAt
	}
	for i, x := range p {
		if i != axis && (x < dp.winLo[i] || x >= dp.winHi[i]) {
			return best, bestAt
		}
	}
	clo, chi := lo, hi
	if wlo := dp.winLo[axis]; clo < wlo {
		clo = wlo
	}
	if whi := dp.winHi[axis] - 1; chi > whi {
		chi = whi
	}
	if clo > chi {
		return best, bestAt
	}
	str := dp.wstr[axis]
	id := dp.winIndex(p) + (clo-p[axis])*str
	for w := clo; w <= chi; w++ {
		if c := dp.cost[id]; c < best {
			best, bestAt = c, w
		}
		id += str
	}
	return best, bestAt
}

// PathTo reconstructs the lightest path to p. It returns nil when p is
// unreachable. The path is materialized in at most three allocations (Path,
// start coords, axes).
func (dp *DP) PathTo(p []int) *Path {
	var out Path
	if !dp.PathInto(p, &out) {
		return nil
	}
	return &out
}

// PathInto is PathTo writing into a caller-provided Path, reusing its Start
// and Axes slices. It reports false (leaving out untouched) when p is
// unreachable. A warm out (slices grown once) makes reconstruction
// allocation-free — the streaming admit path depends on this.
//
//gridroute:hotpath
func (dp *DP) PathInto(p []int, out *Path) bool {
	if dp.CostAt(p) == Inf {
		return false
	}
	// Walk the predecessor chain once, tracking the window index
	// incrementally (winIndex per step is a d-term dot product; a step along
	// axis a just subtracts wstr[a]). The walk emits axes sink→source;
	// reverse in place to report them forward.
	cur := append(out.Start[:0], p...)
	wi := dp.winIndex(cur)
	axes := out.Axes[:0]
	for {
		a := dp.pred[wi]
		if a < 0 {
			break
		}
		axes = append(axes, uint8(a))
		wi -= dp.wstr[a]
		cur[a]--
	}
	for i, j := 0, len(axes)-1; i < j; i, j = i+1, j-1 {
		axes[i], axes[j] = axes[j], axes[i]
	}
	// cur is now the source.
	out.Start, out.Axes = cur, axes
	return true
}

// SetPool attaches (or, with nil, detaches) a wavefront worker pool. RunFlat
// and RunFlatBounded consult it on every call: windows at or above the pool's
// crossover threshold relax in parallel, smaller ones stay serial. The
// results are bit-identical either way, so a pool can be attached to any DP
// without changing observable behaviour.
func (dp *DP) SetPool(p *Pool) { dp.pool = p }

// boxToWin maps a box node id to its window index, reporting false when the
// node lies outside the current window.
//
//gridroute:hotpath
func (dp *DP) boxToWin(bid int) (int, bool) {
	w := 0
	for a := 0; a < dp.box.D(); a++ {
		c := dp.box.Lo[a] + (bid/dp.box.stride[a])%dp.box.dims[a]
		if c < dp.winLo[a] || c >= dp.winHi[a] {
			return 0, false
		}
		w += (c - dp.winLo[a]) * dp.wstr[a]
	}
	return w, true
}

// pullNode recomputes the value of window node w from its in-window
// predecessors, evaluating exactly the expressions the full flat sweep
// evaluates (same float operation order, same strict-< tie-break with axes
// considered in ascending order, same relaxation bound), so an unchanged
// node reproduces its stored cost and predecessor bit for bit.
//
//gridroute:hotpath
func (dp *DP) pullNode(w int, edgeX, nodeX []float64) (float64, int8) {
	if w == dp.srcW {
		if nodeX != nil {
			return nodeX[dp.box.Index(dp.srcAbs)], -1
		}
		return 0, -1
	}
	d := dp.box.D()
	bound := dp.lastBound
	best, bp := Inf, int8(-1)
	bID := dp.winBoxBase
	rem := w
	var off [maxParAxes]int
	for a := 0; a < d; a++ {
		off[a] = rem / dp.wstr[a]
		rem %= dp.wstr[a]
		bID += off[a] * dp.box.stride[a]
	}
	for a := 0; a < d; a++ {
		if off[a] == 0 {
			continue
		}
		pc := dp.cost[w-dp.wstr[a]]
		if pc >= bound {
			continue
		}
		ec := pc + edgeX[(bID-dp.box.stride[a])*d+a]
		if nodeX != nil {
			ec += nodeX[bID]
		}
		if ec < best {
			best, bp = ec, int8(a)
		}
	}
	return best, bp
}

// heapPush inserts w into the frontier min-heap.
//
//gridroute:hotpath
func (dp *DP) heapPush(w int32) {
	h := append(dp.heap, w)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	dp.heap = h
}

// heapPop removes and returns the smallest window index in the frontier.
//
//gridroute:hotpath
func (dp *DP) heapPop() int32 {
	h := dp.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	dp.heap = h
	return top
}

// RerunFlat incrementally repairs the last flat run after a sparse weight
// change, instead of re-relaxing the whole window. seeds are the box node
// ids whose value may have changed directly: the head of every lattice edge
// whose edgeX entry changed, plus every node whose nodeX entry changed
// (seeds outside the window are ignored). The window, source, and weight
// slices must be those of the last RunFlat/RunFlatBounded call, with only
// the seeded entries modified.
//
// The frontier is processed in ascending window-index order (a topological
// order), pulling each node's value fresh from its predecessors and
// propagating to successors only when the stored cost or predecessor
// actually changed — so the repaired state is bit-identical to a cold rerun.
// maxFrontier caps the dirty set (≤ 0 picks wsize/8 + 64); on overflow, or
// when no flat run is cached, RerunFlat returns false and invalidates the
// DP: the caller must fall back to a full RunFlat.
//
//gridroute:hotpath
func (dp *DP) RerunFlat(seeds []int, edgeX, nodeX []float64, maxFrontier int) bool {
	if !dp.valid || !dp.flatRun {
		return false
	}
	if maxFrontier <= 0 {
		maxFrontier = dp.wsize/8 + 64
	}
	if cap(dp.mark) < dp.wsize {
		dp.mark = make([]uint32, dp.wsize)
		dp.markEpoch = 0
	}
	dp.mark = dp.mark[:dp.wsize]
	dp.markEpoch++
	if dp.markEpoch == 0 { // wrapped: one real clear every 2^32 reruns
		for i := range dp.mark {
			dp.mark[i] = 0
		}
		dp.markEpoch = 1
	}
	dp.heap = dp.heap[:0]
	pushed := 0
	for _, bid := range seeds {
		w, ok := dp.boxToWin(bid)
		if !ok || dp.mark[w] == dp.markEpoch {
			continue
		}
		dp.mark[w] = dp.markEpoch
		if pushed++; pushed > maxFrontier {
			dp.valid = false
			return false
		}
		dp.heapPush(int32(w))
	}
	d := dp.box.D()
	for len(dp.heap) > 0 {
		w := int(dp.heapPop())
		c, p := dp.pullNode(w, edgeX, nodeX)
		if c == dp.cost[w] && p == dp.pred[w] {
			continue // unchanged: successors cannot be affected through w
		}
		dp.cost[w] = c
		dp.pred[w] = p
		rem := w
		for a := 0; a < d; a++ {
			off := rem / dp.wstr[a]
			rem %= dp.wstr[a]
			if off+1 >= dp.wdims[a] {
				continue
			}
			nw := w + dp.wstr[a]
			if dp.mark[nw] == dp.markEpoch {
				continue
			}
			dp.mark[nw] = dp.markEpoch
			if pushed++; pushed > maxFrontier {
				dp.valid = false
				return false
			}
			dp.heapPush(int32(nw))
		}
	}
	return true
}

// FloorDiv returns floor(a/b) for b > 0 (Go's integer division truncates
// toward zero, which is wrong for tiling negative w coordinates).
func FloorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
