// Package lattice implements bounded axis-aligned integer boxes with directed
// unit-step edges along each axis ("box DAGs").
//
// Both the untilted space-time graph of a uni-directional grid (Sec. 3.1–3.2
// of Even–Medina) and every sketch graph over its tiles (Sec. 3.4) are box
// DAGs: after the untilting automorphism q(x, t) = (x, t − Σx), all edges
// advance exactly one coordinate by +1. Two structural facts are exploited
// throughout the repository:
//
//  1. every directed path between two points u ≤ v has exactly ‖v−u‖₁ edges,
//     so the bounded-path-length constraint of Theorem 1 reduces to bounding
//     the destination window; and
//  2. any traversal of points in non-decreasing coordinate order is a
//     topological order; ordering by t = w + Σx makes the traversal coincide
//     with simulation time.
package lattice

import (
	"fmt"
	"math"
)

// Box is the set of integer points p with Lo[i] ≤ p[i] < Hi[i] for every
// axis i, together with the directed edges p → p+e_i for points where the
// head is still inside the box.
type Box struct {
	Lo, Hi []int

	dims   []int
	stride []int
	size   int
}

// NewBox constructs a box. Panics if hi[i] ≤ lo[i] for some axis: boxes are
// configuration and must be non-empty.
func NewBox(lo, hi []int) *Box {
	if len(lo) != len(hi) || len(lo) == 0 {
		panic("lattice: lo/hi dimension mismatch")
	}
	b := &Box{
		Lo:     append([]int(nil), lo...),
		Hi:     append([]int(nil), hi...),
		dims:   make([]int, len(lo)),
		stride: make([]int, len(lo)),
	}
	b.size = 1
	for i := len(lo) - 1; i >= 0; i-- {
		if hi[i] <= lo[i] {
			panic(fmt.Sprintf("lattice: empty axis %d: [%d,%d)", i, lo[i], hi[i]))
		}
		b.dims[i] = hi[i] - lo[i]
		b.stride[i] = b.size
		b.size *= b.dims[i]
	}
	return b
}

// D returns the number of axes.
func (b *Box) D() int { return len(b.Lo) }

// Size returns the number of points in the box.
func (b *Box) Size() int { return b.size }

// Dim returns the extent of axis i.
func (b *Box) Dim(i int) int { return b.dims[i] }

// Contains reports whether p lies inside the box.
func (b *Box) Contains(p []int) bool {
	if len(p) != len(b.Lo) {
		return false
	}
	for i, x := range p {
		if x < b.Lo[i] || x >= b.Hi[i] {
			return false
		}
	}
	return true
}

// Index maps a point to a dense id in [0, Size). Panics when out of range.
func (b *Box) Index(p []int) int {
	id := 0
	for i, x := range p {
		if x < b.Lo[i] || x >= b.Hi[i] {
			panic(fmt.Sprintf("lattice: point %v outside box [%v,%v)", p, b.Lo, b.Hi))
		}
		id += (x - b.Lo[i]) * b.stride[i]
	}
	return id
}

// Point maps a dense id back to coordinates, writing into out when non-nil.
func (b *Box) Point(id int, out []int) []int {
	if out == nil {
		out = make([]int, len(b.Lo))
	}
	for i := range b.Lo {
		out[i] = b.Lo[i] + id/b.stride[i]
		id %= b.stride[i]
	}
	return out
}

// Step returns the id of the neighbor of node id along +axis, and whether it
// exists (the head may fall outside the box).
func (b *Box) Step(id, axis int) (int, bool) {
	// Coordinate along axis is (id / stride[axis]) % dims[axis].
	c := (id / b.stride[axis]) % b.dims[axis]
	if c+1 >= b.dims[axis] {
		return 0, false
	}
	return id + b.stride[axis], true
}

// Back returns the id of the neighbor of node id along −axis, and whether it
// exists.
func (b *Box) Back(id, axis int) (int, bool) {
	c := (id / b.stride[axis]) % b.dims[axis]
	if c == 0 {
		return 0, false
	}
	return id - b.stride[axis], true
}

// NumEdges returns the number of directed edges in the box.
func (b *Box) NumEdges() int {
	total := 0
	for _, d := range b.dims {
		total += (b.size / d) * (d - 1)
	}
	return total
}

// L1 returns ‖v−u‖₁ for u ≤ v, which is the (unique) number of edges on any
// directed path from u to v. It returns -1 if v is not reachable from u.
func L1(u, v []int) int {
	s := 0
	for i := range u {
		if v[i] < u[i] {
			return -1
		}
		s += v[i] - u[i]
	}
	return s
}

// Path is a directed lattice path: a start point followed by unit steps, each
// advancing one axis.
type Path struct {
	Start []int
	Axes  []uint8
}

// Len returns the number of edges.
func (p *Path) Len() int { return len(p.Axes) }

// End returns the final point of the path.
func (p *Path) End() []int {
	q := append([]int(nil), p.Start...)
	for _, a := range p.Axes {
		q[a]++
	}
	return q
}

// Visit calls fn for every point of the path in order, including endpoints.
// fn receives a reused buffer; it must not retain it.
func (p *Path) Visit(fn func(pt []int)) {
	q := append([]int(nil), p.Start...)
	fn(q)
	for _, a := range p.Axes {
		q[a]++
		fn(q)
	}
}

// EdgeWeight gives the weight of the edge leaving node id along axis.
type EdgeWeight func(id, axis int) float64

// NodeWeight gives the weight charged for visiting node id (used to fold the
// interior edges of split sketch nodes into the DP; see Sec. 5.1).
type NodeWeight func(id int) float64

// Inf is the cost of an unreachable node.
var Inf = math.Inf(1)

// DP computes lightest directed paths inside a window of a box. A DP value is
// reusable across calls to Run; it grows its buffers as needed.
//
// Path cost convention: cost(path) = Σ_nodes nodeW(v) + Σ_edges edgeW(e),
// where the sum over nodes includes both endpoints. This matches the
// {1,2,∞}-sketch-graph cost of a path s¹_in → s¹_out → … → sᴸ_out, which
// traverses the interior edge of every visited tile.
type DP struct {
	box    *Box
	winLo  []int
	winHi  []int
	wdims  []int
	wstr   []int
	wsize  int
	cost   []float64
	pred   []int8
	srcAbs []int
	pt     []int // odometer scratch
	valid  bool
}

// NewDP returns a DP bound to box.
func (b *Box) NewDP() *DP {
	d := len(b.Lo)
	return &DP{
		box:   b,
		winLo: make([]int, d), winHi: make([]int, d),
		wdims: make([]int, d), wstr: make([]int, d),
		srcAbs: make([]int, d), pt: make([]int, d),
	}
}

func (dp *DP) winIndex(p []int) int {
	id := 0
	for i, x := range p {
		id += (x - dp.winLo[i]) * dp.wstr[i]
	}
	return id
}

func (dp *DP) inWindow(p []int) bool {
	for i, x := range p {
		if x < dp.winLo[i] || x >= dp.winHi[i] {
			return false
		}
	}
	return true
}

// setupWindow clips the window to the box, sizes the cost/pred buffers and
// resets them. It returns the window index of src, or ok=false when the
// window is empty or src lies outside it. Buffers are reused across calls,
// so a warm DP allocates nothing.
func (dp *DP) setupWindow(winLo, winHi, src []int) (srcW int, ok bool) {
	d := dp.box.D()
	dp.wsize = 1
	for i := 0; i < d; i++ {
		lo := winLo[i]
		if lo < dp.box.Lo[i] {
			lo = dp.box.Lo[i]
		}
		hi := winHi[i]
		if hi > dp.box.Hi[i] {
			hi = dp.box.Hi[i]
		}
		if hi <= lo {
			dp.valid = false
			return 0, false
		}
		dp.winLo[i], dp.winHi[i] = lo, hi
		dp.wdims[i] = hi - lo
	}
	for i := d - 1; i >= 0; i-- {
		dp.wstr[i] = dp.wsize
		dp.wsize *= dp.wdims[i]
	}
	if cap(dp.cost) < dp.wsize {
		dp.cost = make([]float64, dp.wsize)
		dp.pred = make([]int8, dp.wsize)
	}
	dp.cost = dp.cost[:dp.wsize]
	dp.pred = dp.pred[:dp.wsize]
	for i := range dp.cost {
		dp.cost[i] = Inf
		dp.pred[i] = -1
	}
	if !dp.inWindow(src) {
		dp.valid = false
		return 0, false
	}
	copy(dp.srcAbs, src)
	dp.valid = true
	return dp.winIndex(src), true
}

// Run computes lightest paths from src to every point of the window
// [winLo, winHi) ∩ box. src must lie in the window. Edge and node weights are
// consulted via box node ids. After Run, use CostAt and PathTo.
func (dp *DP) Run(winLo, winHi, src []int, edgeW EdgeWeight, nodeW NodeWeight) {
	srcW, ok := dp.setupWindow(winLo, winHi, src)
	if !ok {
		return
	}
	if nodeW != nil {
		dp.cost[srcW] = nodeW(dp.box.Index(src))
	} else {
		dp.cost[srcW] = 0
	}

	// Iterate window points in row-major (non-decreasing coordinate) order,
	// which is a topological order of the DAG. Maintain the absolute point
	// and the box id incrementally via an odometer.
	d := dp.box.D()
	pt := dp.pt
	copy(pt, dp.winLo)
	boxID := dp.box.Index(pt)
	for w := 0; w < dp.wsize; w++ {
		c := dp.cost[w]
		if c < Inf {
			// Relax outgoing edges.
			for a := 0; a < d; a++ {
				if pt[a]+1 >= dp.winHi[a] {
					continue
				}
				nb := boxID + dp.box.stride[a]
				nw := w + dp.wstr[a]
				ec := c + edgeW(boxID, a)
				if nodeW != nil {
					ec += nodeW(nb)
				}
				if ec < dp.cost[nw] {
					dp.cost[nw] = ec
					dp.pred[nw] = int8(a)
				}
			}
		}
		// Odometer increment (row-major: last axis fastest).
		for a := d - 1; a >= 0; a-- {
			pt[a]++
			boxID += dp.box.stride[a]
			if pt[a] < dp.winHi[a] {
				break
			}
			boxID -= dp.wdims[a] * dp.box.stride[a]
			pt[a] = dp.winLo[a]
		}
	}
}

// RunFlat computes the same lightest paths as Run, reading weights from flat
// slices instead of per-edge closures: the edge leaving node id along axis a
// costs edgeX[id·D+a] (D = box.D()), and visiting node id costs nodeX[id]
// (nil nodeX means zero node weights). This is the packing hot path: the
// slices are an ipp dense packer's weight universe, indexed directly with no
// call or hash per relaxation.
func (dp *DP) RunFlat(winLo, winHi, src []int, edgeX, nodeX []float64) {
	srcW, ok := dp.setupWindow(winLo, winHi, src)
	if !ok {
		return
	}
	if nodeX != nil {
		dp.cost[srcW] = nodeX[dp.box.Index(src)]
	} else {
		dp.cost[srcW] = 0
	}

	d := dp.box.D()
	pt := dp.pt
	copy(pt, dp.winLo)
	boxID := dp.box.Index(pt)
	for w := 0; w < dp.wsize; w++ {
		c := dp.cost[w]
		if c < Inf {
			base := boxID * d
			for a := 0; a < d; a++ {
				if pt[a]+1 >= dp.winHi[a] {
					continue
				}
				nb := boxID + dp.box.stride[a]
				nw := w + dp.wstr[a]
				ec := c + edgeX[base+a]
				if nodeX != nil {
					ec += nodeX[nb]
				}
				if ec < dp.cost[nw] {
					dp.cost[nw] = ec
					dp.pred[nw] = int8(a)
				}
			}
		}
		for a := d - 1; a >= 0; a-- {
			pt[a]++
			boxID += dp.box.stride[a]
			if pt[a] < dp.winHi[a] {
				break
			}
			boxID -= dp.wdims[a] * dp.box.stride[a]
			pt[a] = dp.winLo[a]
		}
	}
}

// CostAt returns the lightest-path cost from the source to p, or Inf if p is
// outside the window or unreachable.
func (dp *DP) CostAt(p []int) float64 {
	if !dp.valid || !dp.inWindow(p) {
		return Inf
	}
	return dp.cost[dp.winIndex(p)]
}

// PathTo reconstructs the lightest path to p. It returns nil when p is
// unreachable. The path is materialized in exactly three allocations (Path,
// start coords, axes): the predecessor chain is walked once to count steps
// and once to fill the axes in forward order.
func (dp *DP) PathTo(p []int) *Path {
	var out Path
	if !dp.PathInto(p, &out) {
		return nil
	}
	return &out
}

// PathInto is PathTo writing into a caller-provided Path, reusing its Start
// and Axes slices. It reports false (leaving out untouched) when p is
// unreachable. A warm out (slices grown once) makes reconstruction
// allocation-free — the streaming admit path depends on this.
func (dp *DP) PathInto(p []int, out *Path) bool {
	if dp.CostAt(p) == Inf {
		return false
	}
	cur := append(out.Start[:0], p...)
	n := 0
	for {
		a := dp.pred[dp.winIndex(cur)]
		if a < 0 {
			break
		}
		n++
		cur[a]--
	}
	if cap(out.Axes) < n {
		out.Axes = make([]uint8, n)
	}
	axes := out.Axes[:n]
	copy(cur, p)
	for i := n - 1; i >= 0; i-- {
		a := dp.pred[dp.winIndex(cur)]
		axes[i] = uint8(a)
		cur[a]--
	}
	// cur is now the source.
	out.Start, out.Axes = cur, axes
	return true
}

// FloorDiv returns floor(a/b) for b > 0 (Go's integer division truncates
// toward zero, which is wrong for tiling negative w coordinates).
func FloorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
