package lattice

import (
	"math/rand"
	"sync"
	"testing"
)

// randomBoxWeights builds a random box of dimension d with edge and node
// weight slices.
func randomBoxWeights(rng *rand.Rand, d, maxDim int) (*Box, []float64, []float64) {
	lo := make([]int, d)
	hi := make([]int, d)
	for i := range lo {
		lo[i] = rng.Intn(5) - 2
		hi[i] = lo[i] + 2 + rng.Intn(maxDim-1)
	}
	b := NewBox(lo, hi)
	edgeX := make([]float64, b.Size()*d)
	nodeX := make([]float64, b.Size())
	for i := range edgeX {
		edgeX[i] = rng.Float64()
	}
	for i := range nodeX {
		nodeX[i] = rng.Float64() * 0.3
	}
	return b, edgeX, nodeX
}

// randomWindow picks a random non-empty sub-window and a source inside it.
func randomWindow(rng *rand.Rand, b *Box) (winLo, winHi, src []int) {
	d := b.D()
	winLo = make([]int, d)
	winHi = make([]int, d)
	src = make([]int, d)
	for i := 0; i < d; i++ {
		winLo[i] = b.Lo[i] + rng.Intn(b.Dim(i))
		winHi[i] = winLo[i] + 1 + rng.Intn(b.Hi[i]-winLo[i])
		src[i] = winLo[i] + rng.Intn(winHi[i]-winLo[i])
	}
	return winLo, winHi, src
}

// requireIdentical compares the full window state of two DPs bit for bit —
// the contract every alternative kernel (parallel, bounded-below-bound,
// incremental) must satisfy against the serial reference.
func requireIdentical(t *testing.T, tag string, ref, got *DP) {
	t.Helper()
	if ref.valid != got.valid {
		t.Fatalf("%s: valid %v != %v", tag, got.valid, ref.valid)
	}
	if !ref.valid {
		return
	}
	if ref.wsize != got.wsize {
		t.Fatalf("%s: window sizes differ: %d vs %d", tag, got.wsize, ref.wsize)
	}
	for w := 0; w < ref.wsize; w++ {
		if ref.cost[w] != got.cost[w] || ref.pred[w] != got.pred[w] {
			t.Fatalf("%s: node %d: cost/pred (%v,%d) != serial (%v,%d)",
				tag, w, got.cost[w], got.pred[w], ref.cost[w], ref.pred[w])
		}
	}
}

// TestWavefrontMatchesSerial: the parallel pull kernel must produce
// bit-identical costs AND predecessors to the serial push sweep, for every
// pool width, window shape, and source position — including windows far
// below any realistic crossover (MinWindow=1 forces the parallel path).
func TestWavefrontMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		pool := NewPool(workers)
		defer pool.Close()
		pool.MinWindow = 1
		rng := rand.New(rand.NewSource(int64(97 + workers)))
		for trial := 0; trial < 60; trial++ {
			d := 2 + rng.Intn(2)
			b, edgeX, nodeX := randomBoxWeights(rng, d, 8)
			winLo, winHi, src := randomWindow(rng, b)
			var useNode []float64
			if trial%2 == 0 {
				useNode = nodeX
			}
			ref := b.NewDP()
			ref.RunFlat(winLo, winHi, src, edgeX, useNode)
			par := b.NewDP()
			par.SetPool(pool)
			par.RunFlat(winLo, winHi, src, edgeX, useNode)
			requireIdentical(t, "parallel", ref, par)
			// Reuse the same DP with a different window: stale state from the
			// previous (possibly larger) run must not leak through.
			winLo2, winHi2, src2 := randomWindow(rng, b)
			ref.RunFlat(winLo2, winHi2, src2, edgeX, useNode)
			par.RunFlat(winLo2, winHi2, src2, edgeX, useNode)
			requireIdentical(t, "parallel-reuse", ref, par)
		}
	}
}

// TestRunFlatBoundedExact: below the bound the bounded sweep is bit-exact;
// at or above it, reported costs never dip below the bound (so a caller
// testing cost < bound gets exactly the unbounded answer).
func TestRunFlatBoundedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(2)
		b, edgeX, nodeX := randomBoxWeights(rng, d, 7)
		winLo, winHi, src := randomWindow(rng, b)
		var useNode []float64
		if trial%2 == 0 {
			useNode = nodeX
		}
		ref := b.NewDP()
		ref.RunFlat(winLo, winHi, src, edgeX, useNode)
		bound := rng.Float64() * 4
		bdp := b.NewDP()
		bdp.RunFlatBounded(winLo, winHi, src, edgeX, useNode, bound)
		if !ref.valid {
			continue
		}
		for w := 0; w < ref.wsize; w++ {
			switch {
			case ref.cost[w] < bound:
				if bdp.cost[w] != ref.cost[w] || bdp.pred[w] != ref.pred[w] {
					t.Fatalf("trial %d node %d below bound %v: (%v,%d) != exact (%v,%d)",
						trial, w, bound, bdp.cost[w], bdp.pred[w], ref.cost[w], ref.pred[w])
				}
			case bdp.cost[w] < bound:
				t.Fatalf("trial %d node %d: bounded cost %v < bound %v but exact is %v",
					trial, w, bdp.cost[w], bound, ref.cost[w])
			}
		}
	}
}

// mutateAndSeed applies k random weight changes (edge or node entries) and
// returns the dirty box-node seeds RerunFlat needs: heads of changed edges,
// the node itself for changed node weights.
func mutateAndSeed(rng *rand.Rand, b *Box, edgeX, nodeX []float64, k int) []int {
	d := b.D()
	var seeds []int
	for i := 0; i < k; i++ {
		if nodeX != nil && rng.Intn(4) == 0 {
			id := rng.Intn(b.Size())
			nodeX[id] = rng.Float64() * 0.3
			seeds = append(seeds, id)
			continue
		}
		for {
			id := rng.Intn(b.Size())
			a := rng.Intn(d)
			head, ok := b.Step(id, a)
			if !ok {
				continue // edge leaves the box: weight unused
			}
			edgeX[id*d+a] = rng.Float64() * 2
			seeds = append(seeds, head)
			break
		}
	}
	return seeds
}

// TestRerunFlatMatchesCold: after K rounds of sparse random weight changes,
// incremental re-relaxation must leave the window bit-identical — costs and
// predecessors — to a cold RunFlat over the mutated weights.
func TestRerunFlatMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(2)
		b, edgeX, nodeX := randomBoxWeights(rng, d, 8)
		winLo, winHi, src := randomWindow(rng, b)
		var useNode []float64
		if trial%2 == 0 {
			useNode = nodeX
		}
		warm := b.NewDP()
		warm.RunFlat(winLo, winHi, src, edgeX, useNode)
		if !warm.valid {
			continue
		}
		cold := b.NewDP()
		for round := 0; round < 6; round++ {
			seeds := mutateAndSeed(rng, b, edgeX, useNode, 1+rng.Intn(3))
			if !warm.RerunFlat(seeds, edgeX, useNode, 0) {
				// Frontier overflow: the documented fallback is a full run.
				warm.RunFlat(winLo, winHi, src, edgeX, useNode)
			}
			cold.RunFlat(winLo, winHi, src, edgeX, useNode)
			requireIdentical(t, "rerun", cold, warm)
		}
	}
}

// TestRerunFlatOverflowFallback: a tiny maxFrontier must refuse (returning
// false and invalidating the DP) rather than repair partially, and a full
// RunFlat must fully recover the state afterwards.
func TestRerunFlatOverflowFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b, edgeX, nodeX := randomBoxWeights(rng, 2, 9)
	dp := b.NewDP()
	dp.RunFlat(b.Lo, b.Hi, b.Lo, edgeX, nodeX)
	// Change the first edge out of the source: the dirty region is the whole
	// reachable cone, guaranteed to blow a frontier cap of 1.
	head, ok := b.Step(b.Index(b.Lo), 0)
	if !ok {
		t.Fatal("degenerate box")
	}
	edgeX[b.Index(b.Lo)*2] += 1.5
	if dp.RerunFlat([]int{head}, edgeX, nodeX, 1) {
		t.Fatal("frontier cap 1 should overflow")
	}
	if dp.valid {
		t.Fatal("overflow must invalidate the DP")
	}
	cold := b.NewDP()
	cold.RunFlat(b.Lo, b.Hi, b.Lo, edgeX, nodeX)
	dp.RunFlat(b.Lo, b.Hi, b.Lo, edgeX, nodeX)
	requireIdentical(t, "recover", cold, dp)
}

// TestRerunFlatRequiresFlatRun: closure-based Run leaves no flat weights to
// pull from, so RerunFlat must refuse.
func TestRerunFlatRequiresFlatRun(t *testing.T) {
	b := NewBox([]int{0, 0}, []int{4, 4})
	dp := b.NewDP()
	dp.Run(b.Lo, b.Hi, b.Lo, func(id, a int) float64 { return 1 }, nil)
	if dp.RerunFlat([]int{1}, make([]float64, b.Size()*2), nil, 0) {
		t.Fatal("RerunFlat after closure Run must return false")
	}
}

// TestPoolSharedAcrossDPs: one pool, many DPs relaxing concurrently — the
// pipelined band scheduling must neither deadlock nor corrupt results. Run
// under -race in CI.
func TestPoolSharedAcrossDPs(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	pool.MinWindow = 1
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + g)))
			for trial := 0; trial < 25; trial++ {
				d := 2 + rng.Intn(2)
				b, edgeX, nodeX := randomBoxWeights(rng, d, 7)
				winLo, winHi, src := randomWindow(rng, b)
				ref := b.NewDP()
				ref.RunFlat(winLo, winHi, src, edgeX, nodeX)
				par := b.NewDP()
				par.SetPool(pool)
				par.RunFlat(winLo, winHi, src, edgeX, nodeX)
				requireIdentical(t, "shared-pool", ref, par)
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolCloseIdempotent: Close is nil-safe and repeatable — the engine
// calls it from an idempotent Drain.
func TestPoolCloseIdempotent(t *testing.T) {
	var nilPool *Pool
	nilPool.Close()
	p := NewPool(3)
	p.Close()
	p.Close()
}

// TestBoundedParallelMatches: bound and pool compose — below the bound the
// parallel bounded run is still bit-exact vs the serial bounded run.
func TestBoundedParallelMatches(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	pool.MinWindow = 1
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(2)
		b, edgeX, nodeX := randomBoxWeights(rng, d, 7)
		winLo, winHi, src := randomWindow(rng, b)
		bound := rng.Float64() * 3
		ref := b.NewDP()
		ref.RunFlatBounded(winLo, winHi, src, edgeX, nodeX, bound)
		par := b.NewDP()
		par.SetPool(pool)
		par.RunFlatBounded(winLo, winHi, src, edgeX, nodeX, bound)
		requireIdentical(t, "bounded-parallel", ref, par)
	}
}
