// Package ipp implements the online integral path packing algorithm of
// Theorem 1 / Appendix E of Even–Medina, following the Buchbinder–Naor
// primal–dual framework [BN06, BN09a].
//
// The packer maintains a weight x_e per edge (lazily initialized to 0).
// For each connection request the caller's oracle finds a lightest legal
// path p (at most pmax edges) under the current weights. If its cost
// α(p) = Σ_{e∈p} x_e is < 1 the request is routed along p and each edge
// weight is updated as
//
//	x_e ← x_e·2^{1/c(e)} + (2^{1/c(e)} − 1)/pmax,
//
// otherwise the request is rejected. The packer also maintains the primal
// objective Σ_e x_e·c(e) + Σ_i z_i, which by weak duality upper-bounds the
// optimal fractional throughput over paths of ≤ pmax edges — this is the
// certified OPT upper bound used across the benchmark harness (DESIGN.md §2).
//
// Guarantees (Thm 1): throughput ≥ ½·opt_f, and every edge load
// flow(e)/c(e) is at most log₂(1 + 3·pmax).
package ipp

import (
	"math"
)

// EdgeID identifies an edge in the caller's graph. Callers choose their own
// id scheme (lattice edges, interior edges of split tiles, …).
type EdgeID int64

// CapFunc returns an edge capacity. Capacities must be ≥ 1 (Thm 1
// assumption) or +Inf for uncapacitated edges (e.g. sink edges), which are
// never weighted nor counted in the primal objective.
type CapFunc func(EdgeID) float64

// Packer is the online integral path packing state.
type Packer struct {
	pmax float64
	cap  CapFunc

	x    map[EdgeID]float64
	flow map[EdgeID]int

	accepted    int
	rejected    int
	primalEdges float64 // Σ x_e·c(e)
	primalZ     float64 // Σ z_i
	maxLoad     float64
}

// New creates a packer for paths of at most pmax edges.
func New(pmax int, capFn CapFunc) *Packer {
	if pmax < 1 {
		panic("ipp: pmax must be ≥ 1")
	}
	return &Packer{
		pmax: float64(pmax),
		cap:  capFn,
		x:    make(map[EdgeID]float64),
		flow: make(map[EdgeID]int),
	}
}

// PMax returns the path-length bound.
func (p *Packer) PMax() int { return int(p.pmax) }

// Weight returns the current weight x_e. The caller's lightest-path oracle
// uses this as the edge length.
func (p *Packer) Weight(e EdgeID) float64 { return p.x[e] }

// Cost returns α(path) = Σ x_e over the given edges.
func (p *Packer) Cost(path []EdgeID) float64 {
	var c float64
	for _, e := range path {
		c += p.x[e]
	}
	return c
}

// Offer processes one request whose lightest legal path (as computed by the
// caller's oracle under Weight) is path with total weight cost. It returns
// true if the request is accepted, in which case the path is committed and
// weights are updated. Offering a nil path (no legal path exists) rejects.
//
// The caller must pass cost consistent with Cost(path); it is a parameter
// only to let oracles avoid a second traversal.
func (p *Packer) Offer(path []EdgeID, cost float64) bool {
	if path == nil || cost >= 1 {
		p.rejected++
		return false
	}
	if len(path) > int(p.pmax) {
		// Oracle bug guard: legal paths must have ≤ pmax edges.
		panic("ipp: offered path longer than pmax")
	}
	for _, e := range path {
		ce := p.cap(e)
		f := p.flow[e] + 1
		p.flow[e] = f
		if math.IsInf(ce, 1) {
			// Uncapacitated edges keep weight 0 (2^{1/∞} = 1, additive term 0).
			continue
		}
		g := math.Exp2(1 / ce)
		old := p.x[e]
		nw := old*g + (g-1)/p.pmax
		p.x[e] = nw
		p.primalEdges += (nw - old) * ce
		if load := float64(f) / ce; load > p.maxLoad {
			p.maxLoad = load
		}
	}
	p.primalZ += 1 - cost
	p.accepted++
	return true
}

// Accepted returns the number of routed requests (the dual objective).
func (p *Packer) Accepted() int { return p.accepted }

// Rejected returns the number of rejected requests.
func (p *Packer) Rejected() int { return p.rejected }

// Flow returns the number of committed paths using edge e.
func (p *Packer) Flow(e EdgeID) int { return p.flow[e] }

// Load returns flow(e)/c(e).
func (p *Packer) Load(e EdgeID) float64 {
	f := p.flow[e]
	if f == 0 {
		return 0
	}
	return float64(f) / p.cap(e)
}

// MaxLoad returns the maximum edge load committed so far. Theorem 1
// guarantees MaxLoad ≤ log₂(1 + 3·pmax).
func (p *Packer) MaxLoad() float64 { return p.maxLoad }

// LoadBound returns the Theorem 1 load bound log₂(1 + 3·pmax).
func (p *Packer) LoadBound() float64 { return math.Log2(1 + 3*p.pmax) }

// PrimalValue returns Σ_e x_e·c(e) + Σ_i z_i. It is a feasible primal
// (covering) solution value and hence an upper bound on the optimal
// fractional throughput over paths with at most pmax edges, restricted to
// the requests offered so far. Thm 1's proof gives PrimalValue ≤ 2·Accepted.
func (p *Packer) PrimalValue() float64 { return p.primalEdges + p.primalZ }

// K returns the tile-side parameter k = ⌈log₂(1 + 3·pmax)⌉ used by the
// deterministic and randomized algorithms.
func K(pmax int) int {
	return int(math.Ceil(math.Log2(1 + 3*float64(pmax))))
}
