// Package ipp implements the online integral path packing algorithm of
// Theorem 1 / Appendix E of Even–Medina, following the Buchbinder–Naor
// primal–dual framework [BN06, BN09a].
//
// The packer maintains a weight x_e per edge (lazily initialized to 0).
// For each connection request the caller's oracle finds a lightest legal
// path p (at most pmax edges) under the current weights. If its cost
// α(p) = Σ_{e∈p} x_e is < 1 the request is routed along p and each edge
// weight is updated as
//
//	x_e ← x_e·2^{1/c(e)} + (2^{1/c(e)} − 1)/pmax,
//
// otherwise the request is rejected. The packer also maintains the primal
// objective Σ_e x_e·c(e) + Σ_i z_i, which by weak duality upper-bounds the
// optimal fractional throughput over paths of ≤ pmax edges — this is the
// certified OPT upper bound used across the benchmark harness (DESIGN.md §2).
//
// Two storage backends exist. New keeps x and flow in maps keyed by EdgeID —
// the right choice for sparse or open-ended id spaces. NewDense stores them
// in flat slices over a known edge universe (a space-time box has exactly
// box.Size()·(d+1) edge ids); every hot path in the repository uses the
// dense mode, whose weight slice the lightest-path DP indexes directly (see
// lattice.DP.RunFlat). Both backends memoize the per-capacity constants
// 2^{1/c} and (2^{1/c}−1)/pmax — a grid has at most two distinct finite
// capacities (B and c), so after warm-up Offer never calls math.Exp2.
//
// Guarantees (Thm 1): throughput ≥ ½·opt_f, and every edge load
// flow(e)/c(e) is at most log₂(1 + 3·pmax).
package ipp

import (
	"math"
	"sync/atomic"
)

// EdgeID identifies an edge in the caller's graph. Callers choose their own
// id scheme (lattice edges, interior edges of split tiles, …). In dense mode
// ids must lie in [0, universe).
type EdgeID int64

// CapFunc returns an edge capacity. Capacities must be ≥ 1 (Thm 1
// assumption) or +Inf for uncapacitated edges (e.g. sink edges), which are
// never weighted nor counted in the primal objective.
type CapFunc func(EdgeID) float64

// capMemo caches the weight-update constants of one distinct capacity.
type capMemo struct {
	c   float64 // the capacity
	g   float64 // 2^{1/c}
	add float64 // (2^{1/c} − 1)/pmax
}

// Packer is the online integral path packing state.
type Packer struct {
	pmax float64
	cap  CapFunc

	// Sparse backend (nil in dense mode).
	//gridroute:versioned
	x    map[EdgeID]float64
	flow map[EdgeID]int

	// Dense backend (nil in sparse mode).
	//gridroute:versioned
	xs    []float64
	flows []int32

	// memo holds the constants per distinct finite capacity seen so far.
	// Grids have ≤ 2 entries (B and c), so lookup is a short linear scan.
	memo []capMemo

	accepted    int
	rejected    int
	primalEdges float64 // Σ x_e·c(e)
	primalZ     float64 // Σ z_i
	maxLoad     float64

	// Incremental commit state: version counts committed paths, last holds
	// the edge ids whose weights changed in the most recent commit (reused
	// buffer). Incremental consumers — the streaming engine's metrics, and
	// warm-start DP re-relaxation — key off these instead of rescanning the
	// weight universe. version is atomic so speculative readers can stamp a
	// weight snapshot without holding the committer's lock; every mutation
	// of the weight state itself still requires external synchronization.
	version atomic.Uint64
	last    []EdgeID
}

// New creates a map-backed packer for paths of at most pmax edges.
func New(pmax int, capFn CapFunc) *Packer {
	if pmax < 1 {
		panic("ipp: pmax must be ≥ 1")
	}
	return &Packer{
		pmax: float64(pmax),
		cap:  capFn,
		x:    make(map[EdgeID]float64),
		flow: make(map[EdgeID]int),
	}
}

// NewDense creates a packer whose edge state lives in flat slices over the
// id universe [0, universe). Steady-state Offer calls are allocation-free,
// and Weights exposes the weight slice for direct indexing by lightest-path
// oracles.
func NewDense(pmax int, capFn CapFunc, universe int) *Packer {
	if pmax < 1 {
		panic("ipp: pmax must be ≥ 1")
	}
	if universe < 1 {
		panic("ipp: dense universe must be ≥ 1")
	}
	return &Packer{
		pmax:  float64(pmax),
		cap:   capFn,
		xs:    make([]float64, universe),
		flows: make([]int32, universe),
	}
}

// PMax returns the path-length bound.
func (p *Packer) PMax() int { return int(p.pmax) }

// Weights returns the dense weight slice, indexed by EdgeID, or nil for a
// map-backed packer. Oracles use it to read edge weights without a call per
// edge; they must not write to it.
func (p *Packer) Weights() []float64 { return p.xs }

// Weight returns the current weight x_e. The caller's lightest-path oracle
// uses this as the edge length.
func (p *Packer) Weight(e EdgeID) float64 {
	if p.xs != nil {
		return p.xs[e]
	}
	return p.x[e]
}

// Cost returns α(path) = Σ x_e over the given edges.
func (p *Packer) Cost(path []EdgeID) float64 {
	var c float64
	if p.xs != nil {
		for _, e := range path {
			c += p.xs[e]
		}
		return c
	}
	for _, e := range path {
		c += p.x[e]
	}
	return c
}

// growth returns the memoized weight-update constants for capacity ce.
//
//gridroute:hotpath
func (p *Packer) growth(ce float64) (g, add float64) {
	for i := range p.memo {
		if p.memo[i].c == ce {
			return p.memo[i].g, p.memo[i].add
		}
	}
	g = math.Exp2(1 / ce)
	add = (g - 1) / p.pmax
	p.memo = append(p.memo, capMemo{c: ce, g: g, add: add})
	return g, add
}

// Offer processes one request whose lightest legal path (as computed by the
// caller's oracle under Weight) is path with total weight cost. It returns
// true if the request is accepted, in which case the path is committed and
// weights are updated. Offering a nil path (no legal path exists) rejects.
//
// The caller must pass cost consistent with Cost(path); it is a parameter
// only to let oracles avoid a second traversal.
//
//gridroute:hotpath
func (p *Packer) Offer(path []EdgeID, cost float64) bool {
	if path == nil || cost >= 1 {
		p.rejected++
		return false
	}
	if len(path) > int(p.pmax) {
		// Oracle bug guard: legal paths must have ≤ pmax edges.
		panic("ipp: offered path longer than pmax")
	}
	if p.xs != nil {
		p.commitDense(path)
	} else {
		p.commitSparse(path)
	}
	p.primalZ += 1 - cost
	p.accepted++
	return true
}

//gridroute:hotpath
func (p *Packer) commitDense(path []EdgeID) {
	p.version.Add(1)
	p.last = p.last[:0]
	for _, e := range path {
		ce := p.cap(e)
		f := p.flows[e] + 1
		p.flows[e] = f
		if math.IsInf(ce, 1) {
			// Uncapacitated edges keep weight 0 (2^{1/∞} = 1, additive term 0).
			continue
		}
		g, add := p.growth(ce)
		old := p.xs[e]
		nw := old*g + add
		p.xs[e] = nw
		p.last = append(p.last, e)
		p.primalEdges += (nw - old) * ce
		if load := float64(f) / ce; load > p.maxLoad {
			p.maxLoad = load
		}
	}
}

//gridroute:hotpath
func (p *Packer) commitSparse(path []EdgeID) {
	p.version.Add(1)
	p.last = p.last[:0]
	for _, e := range path {
		ce := p.cap(e)
		f := p.flow[e] + 1
		p.flow[e] = f
		if math.IsInf(ce, 1) {
			continue
		}
		g, add := p.growth(ce)
		old := p.x[e]
		nw := old*g + add
		p.x[e] = nw
		p.last = append(p.last, e)
		p.primalEdges += (nw - old) * ce
		if load := float64(f) / ce; load > p.maxLoad {
			p.maxLoad = load
		}
	}
}

// Version returns the number of committed paths so far. It increases by
// exactly one per accepted Offer, so a consumer holding weights derived from
// version v knows the weight state is unchanged while Version() == v — the
// contract incremental oracles (warm-start DP, streaming metrics) build on.
// The load is atomic: speculative admission workers poll it lock-free to
// decide whether their weight snapshot is still current.
func (p *Packer) Version() uint64 { return p.version.Load() }

// LastCommitted returns the edge ids whose weights changed in the most
// recent committed offer (the path minus its uncapacitated edges). The slice
// is a view into a reused buffer: valid until the next accepted Offer, must
// not be mutated. It is empty before the first accept.
func (p *Packer) LastCommitted() []EdgeID { return p.last }

// Accepted returns the number of routed requests (the dual objective).
func (p *Packer) Accepted() int { return p.accepted }

// Rejected returns the number of rejected requests.
func (p *Packer) Rejected() int { return p.rejected }

// Flow returns the number of committed paths using edge e.
func (p *Packer) Flow(e EdgeID) int {
	if p.xs != nil {
		return int(p.flows[e])
	}
	return p.flow[e]
}

// Load returns flow(e)/c(e).
func (p *Packer) Load(e EdgeID) float64 {
	f := p.Flow(e)
	if f == 0 {
		return 0
	}
	return float64(f) / p.cap(e)
}

// MaxLoad returns the maximum edge load committed so far. Theorem 1
// guarantees MaxLoad ≤ log₂(1 + 3·pmax).
func (p *Packer) MaxLoad() float64 { return p.maxLoad }

// LoadBound returns the Theorem 1 load bound log₂(1 + 3·pmax).
func (p *Packer) LoadBound() float64 { return math.Log2(1 + 3*p.pmax) }

// PrimalValue returns Σ_e x_e·c(e) + Σ_i z_i. It is a feasible primal
// (covering) solution value and hence an upper bound on the optimal
// fractional throughput over paths with at most pmax edges, restricted to
// the requests offered so far. Thm 1's proof gives PrimalValue ≤ 2·Accepted.
func (p *Packer) PrimalValue() float64 { return p.primalEdges + p.primalZ }

// K returns the tile-side parameter k = ⌈log₂(1 + 3·pmax)⌉ used by the
// deterministic and randomized algorithms.
func K(pmax int) int {
	return int(math.Ceil(math.Log2(1 + 3*float64(pmax))))
}
