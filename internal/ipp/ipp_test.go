package ipp

import (
	"math"
	"math/rand"
	"testing"

	"gridroute/internal/lattice"
)

func constCap(c float64) CapFunc { return func(EdgeID) float64 { return c } }

func TestSingleEdgeSaturates(t *testing.T) {
	p := New(1, constCap(1))
	if !p.Offer([]EdgeID{0}, p.Cost([]EdgeID{0})) {
		t.Fatal("first request should be accepted")
	}
	// After one acceptance on a unit-capacity edge with pmax=1:
	// x = 0·2 + (2−1)/1 = 1 → next request must be rejected.
	if w := p.Weight(0); w != 1 {
		t.Fatalf("weight = %v, want 1", w)
	}
	if p.Offer([]EdgeID{0}, p.Cost([]EdgeID{0})) {
		t.Fatal("second request must be rejected")
	}
	if p.Accepted() != 1 || p.Rejected() != 1 {
		t.Fatalf("counts: %d/%d", p.Accepted(), p.Rejected())
	}
	if p.MaxLoad() > p.LoadBound() {
		t.Fatalf("load %v exceeds bound %v", p.MaxLoad(), p.LoadBound())
	}
	// Primal ≤ 2·dual (Thm 1 proof invariant ΔP ≤ 2ΔD).
	if p.PrimalValue() > 2*float64(p.Accepted())+1e-9 {
		t.Fatalf("primal %v > 2·accepted %d", p.PrimalValue(), p.Accepted())
	}
}

func TestInfiniteCapacityEdgesStayFree(t *testing.T) {
	inf := math.Inf(1)
	p := New(4, func(e EdgeID) float64 {
		if e == 99 {
			return inf
		}
		return 2
	})
	path := []EdgeID{1, 99}
	for i := 0; i < 3; i++ {
		p.Offer(path, p.Cost(path))
	}
	if p.Weight(99) != 0 {
		t.Fatalf("infinite-capacity edge gained weight %v", p.Weight(99))
	}
	if p.Flow(99) != 3 {
		t.Fatalf("flow on sink edge = %d", p.Flow(99))
	}
	if math.IsNaN(p.PrimalValue()) || math.IsInf(p.PrimalValue(), 0) {
		t.Fatalf("primal corrupted: %v", p.PrimalValue())
	}
}

func TestNilPathRejects(t *testing.T) {
	p := New(2, constCap(1))
	if p.Offer(nil, Inf()) {
		t.Fatal("nil path must reject")
	}
}

// Inf returns +Inf (helper to keep the call site tidy).
func Inf() float64 { return math.Inf(1) }

func TestK(t *testing.T) {
	// k = ⌈log2(1+3·pmax)⌉.
	if K(1) != 2 {
		t.Fatalf("K(1) = %d, want 2", K(1))
	}
	if K(5) != 4 {
		t.Fatalf("K(5) = %d, want 4", K(5))
	}
	if K(1000) < 11 || K(1000) > 12 {
		t.Fatalf("K(1000) = %d", K(1000))
	}
}

// TestTheorem1OnRandomLattices is the E8 experiment in miniature: run the
// packer with a real lightest-path oracle over random box lattices and check
// both Thm 1 guarantees: primal ≤ 2·dual and max load ≤ log2(1+3·pmax).
func TestTheorem1OnRandomLattices(t *testing.T) {
	runTheorem1Trial(t, rand.New(rand.NewSource(11)), 200)
	runTheorem1Trial(t, rand.New(rand.NewSource(12)), 400)
	runTheorem1Trial(t, rand.New(rand.NewSource(13)), 800)
}

func runTheorem1Trial(t *testing.T, rng *rand.Rand, numReq int) {
	t.Helper()
	nx := 4 + rng.Intn(5)
	ny := 4 + rng.Intn(5)
	box := lattice.NewBox([]int{0, 0}, []int{nx, ny})
	capArr := make([]float64, box.Size()*2)
	for i := range capArr {
		capArr[i] = float64(1 + rng.Intn(3))
	}
	capFn := func(e EdgeID) float64 { return capArr[e] }
	pmax := nx + ny // all source→dest paths fit
	p := New(pmax, capFn)
	dp := box.NewDP()

	for i := 0; i < numReq; i++ {
		sx, sy := rng.Intn(nx), rng.Intn(ny)
		dx, dy := sx+rng.Intn(nx-sx), sy+rng.Intn(ny-sy)
		src := []int{sx, sy}
		dst := []int{dx, dy}
		dp.Run(src, []int{dx + 1, dy + 1}, src,
			func(id, a int) float64 { return p.Weight(EdgeID(id*2 + a)) }, nil)
		lp := dp.PathTo(dst)
		if lp == nil {
			t.Fatalf("no path in a full window")
		}
		edges := make([]EdgeID, 0, lp.Len())
		cur := append([]int(nil), lp.Start...)
		for _, a := range lp.Axes {
			edges = append(edges, EdgeID(box.Index(cur)*2+int(a)))
			cur[a]++
		}
		p.Offer(edges, p.Cost(edges))
	}
	if p.PrimalValue() > 2*float64(p.Accepted())+1e-9 {
		t.Fatalf("primal %v > 2·accepted %d", p.PrimalValue(), p.Accepted())
	}
	if p.MaxLoad() > p.LoadBound()+1e-9 {
		t.Fatalf("max load %v > bound %v", p.MaxLoad(), p.LoadBound())
	}
	if p.Accepted() == 0 {
		t.Fatal("expected some acceptances")
	}
}

func TestWeightMonotone(t *testing.T) {
	p := New(8, constCap(2))
	path := []EdgeID{3, 4, 5}
	last := 0.0
	for i := 0; i < 10; i++ {
		c := p.Cost(path)
		if c+1e-12 < last {
			t.Fatalf("cost decreased: %v < %v", c, last)
		}
		last = c
		p.Offer(path, c)
	}
}

func TestPanicOnLongPath(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for path longer than pmax")
		}
	}()
	p := New(1, constCap(1))
	p.Offer([]EdgeID{1, 2}, 0)
}

// TestDenseMatchesSparse drives the same offer sequence through the map and
// flat-array backends and requires bit-identical state: weights, flows,
// primal value, counters.
func TestDenseMatchesSparse(t *testing.T) {
	const universe = 64
	capArr := make([]float64, universe)
	rng := rand.New(rand.NewSource(21))
	for i := range capArr {
		capArr[i] = float64(1 + rng.Intn(3))
	}
	capArr[7] = math.Inf(1) // one sink edge
	capFn := func(e EdgeID) float64 { return capArr[e] }

	sparse := New(6, capFn)
	densePk := NewDense(6, capFn, universe)
	if densePk.Weights() == nil || sparse.Weights() != nil {
		t.Fatal("Weights() must expose the dense slice and nil for maps")
	}
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(6)
		path := make([]EdgeID, n)
		for j := range path {
			path[j] = EdgeID(rng.Intn(universe))
		}
		c1 := sparse.Cost(path)
		c2 := densePk.Cost(path)
		if c1 != c2 {
			t.Fatalf("offer %d: cost %v (sparse) != %v (dense)", i, c1, c2)
		}
		if sparse.Offer(path, c1) != densePk.Offer(path, c2) {
			t.Fatalf("offer %d: accept decision diverged", i)
		}
	}
	for e := 0; e < universe; e++ {
		if sparse.Weight(EdgeID(e)) != densePk.Weight(EdgeID(e)) {
			t.Fatalf("edge %d: weight %v != %v", e, sparse.Weight(EdgeID(e)), densePk.Weight(EdgeID(e)))
		}
		if sparse.Flow(EdgeID(e)) != densePk.Flow(EdgeID(e)) {
			t.Fatalf("edge %d: flow diverged", e)
		}
	}
	if sparse.PrimalValue() != densePk.PrimalValue() ||
		sparse.Accepted() != densePk.Accepted() ||
		sparse.Rejected() != densePk.Rejected() ||
		sparse.MaxLoad() != densePk.MaxLoad() {
		t.Fatalf("aggregate state diverged: primal %v/%v accepted %d/%d rejected %d/%d load %v/%v",
			sparse.PrimalValue(), densePk.PrimalValue(), sparse.Accepted(), densePk.Accepted(),
			sparse.Rejected(), densePk.Rejected(), sparse.MaxLoad(), densePk.MaxLoad())
	}
}

// TestMemoizedWeightsBitIdentical replays the packer's weight recurrence with
// the raw (unmemoized) formula — math.Exp2 evaluated on every update — and
// requires the memoized implementation to be bit-identical, not just close:
// determinism gates diff experiment output byte-for-byte.
func TestMemoizedWeightsBitIdentical(t *testing.T) {
	caps := []float64{1, 3} // the B/C two-capacity case
	capFn := func(e EdgeID) float64 { return caps[int(e)%2] }
	const pmax = 11
	p := NewDense(pmax, capFn, 8)

	want := make([]float64, 8)
	path := []EdgeID{0, 1, 2, 3}
	for i := 0; i < 50; i++ {
		p.Offer(path, 0) // force-accept; only the weight updates matter here
		for _, e := range path {
			g := math.Exp2(1 / capFn(e))
			want[e] = want[e]*g + (g-1)/float64(pmax)
		}
		for _, e := range path {
			if got := p.Weight(e); got != want[e] {
				t.Fatalf("offer %d edge %d: memoized weight %v (bits %x) != raw %v (bits %x)",
					i, e, got, math.Float64bits(got), want[e], math.Float64bits(want[e]))
			}
		}
	}
}
