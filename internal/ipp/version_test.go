package ipp

import (
	"math"
	"reflect"
	"testing"
)

// TestVersionAndLastCommitted pins the incremental-commit contract both
// backends expose to streaming consumers: Version bumps exactly once per
// accepted offer, and LastCommitted names the capacitated edges of that
// offer in path order.
func TestVersionAndLastCommitted(t *testing.T) {
	capFn := func(e EdgeID) float64 {
		if e == 2 {
			return math.Inf(1)
		}
		return 3
	}
	for _, tc := range []struct {
		name string
		p    *Packer
	}{
		{"dense", NewDense(10, capFn, 4)},
		{"sparse", New(10, capFn)},
	} {
		p := tc.p
		if p.Version() != 0 || len(p.LastCommitted()) != 0 {
			t.Fatalf("%s: fresh packer has version %d, last %v", tc.name, p.Version(), p.LastCommitted())
		}
		if !p.Offer([]EdgeID{0, 2, 1}, 0) {
			t.Fatalf("%s: zero-cost offer rejected", tc.name)
		}
		if p.Version() != 1 {
			t.Fatalf("%s: version %d after one accept", tc.name, p.Version())
		}
		// Edge 2 is uncapacitated: committed flow but no weight change.
		if got := p.LastCommitted(); !reflect.DeepEqual(got, []EdgeID{0, 1}) {
			t.Fatalf("%s: last committed %v, want [0 1]", tc.name, got)
		}

		// Rejections — nil path and over-threshold cost — leave both intact.
		p.Offer(nil, 0)
		p.Offer([]EdgeID{1}, 1.5)
		if p.Version() != 1 || !reflect.DeepEqual(p.LastCommitted(), []EdgeID{0, 1}) {
			t.Fatalf("%s: rejection moved incremental state: v=%d last=%v", tc.name, p.Version(), p.LastCommitted())
		}

		if !p.Offer([]EdgeID{1}, p.Cost([]EdgeID{1})) {
			t.Fatalf("%s: second offer rejected (cost %v)", tc.name, p.Cost([]EdgeID{1}))
		}
		if p.Version() != 2 || !reflect.DeepEqual(p.LastCommitted(), []EdgeID{1}) {
			t.Fatalf("%s: after second accept v=%d last=%v", tc.name, p.Version(), p.LastCommitted())
		}
	}
}
