// Package dense provides epoch-stamped flat-array state for hot paths.
//
// Every bookkeeping structure on the routing hot paths (edge occupancy in
// the verifiers, lane/quota tables in the randomized router, per-node packet
// groups in detailed routing) is a sparse view over a known, compact integer
// universe: node×axis×time ids, tile×plane×lane ids, lattice node ids. The
// map-based implementations paid a hash per touch — millions per experiment.
// The types here replace them with flat slices plus an epoch stamp per cell,
// so clearing between runs (or between simulation steps) is O(1): bump the
// epoch and every cell reads as zero again. Buffers grow monotonically and
// are reused, which makes repeated runs (sweeps, retries) allocation-free
// once warm.
package dense

// Counts is a reusable dense multiset over [0, universe): a map[int]int
// replacement with O(1) clearing and no hashing. The zero value is ready to
// use after a Reset.
type Counts struct {
	epoch   uint32
	stamp   []uint32
	val     []int32
	touched []int32
}

// Reset clears all counts and (re)sizes the universe. Existing buffers are
// reused when large enough, so a warm Counts allocates nothing.
//
//gridroute:hotpath
func (c *Counts) Reset(universe int) {
	if cap(c.stamp) < universe {
		c.stamp = make([]uint32, universe)
		c.val = make([]int32, universe)
	}
	c.stamp = c.stamp[:universe]
	c.val = c.val[:universe]
	c.touched = c.touched[:0]
	c.epoch++
	if c.epoch == 0 {
		// Epoch wrapped: stale stamps from 2^32 resets ago could alias.
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.epoch = 1
	}
}

// Len returns the universe size.
func (c *Counts) Len() int { return len(c.val) }

// Get returns the count at i (0 if never written this epoch).
//
//gridroute:hotpath
func (c *Counts) Get(i int) int {
	if c.stamp[i] != c.epoch {
		return 0
	}
	return int(c.val[i])
}

// Add adds delta to the count at i and returns the new value.
//
//gridroute:hotpath
func (c *Counts) Add(i, delta int) int {
	if c.stamp[i] != c.epoch {
		c.stamp[i] = c.epoch
		c.val[i] = int32(delta)
		c.touched = append(c.touched, int32(i))
		return delta
	}
	c.val[i] += int32(delta)
	return int(c.val[i])
}

// Touched returns the indices written this epoch, in first-write order. The
// slice is invalidated by the next Reset; callers must not retain it.
func (c *Counts) Touched() []int32 { return c.touched }

// Buckets groups items (numbered 0..items-1) by an integer key in
// [0, universe): a map[int][]int replacement. Chains preserve Put order, and
// Keys returns distinct keys in first-seen order, so iteration is
// deterministic. The zero value is ready to use after a Reset.
type Buckets struct {
	epoch uint32
	stamp []uint32
	head  []int32
	tail  []int32
	next  []int32
	keys  []int32
}

// Reset clears all buckets and (re)sizes the key universe and item count.
// Warm Buckets allocate nothing.
//
//gridroute:hotpath
func (b *Buckets) Reset(universe, items int) {
	if cap(b.stamp) < universe {
		b.stamp = make([]uint32, universe)
		b.head = make([]int32, universe)
		b.tail = make([]int32, universe)
	}
	b.stamp = b.stamp[:universe]
	b.head = b.head[:universe]
	b.tail = b.tail[:universe]
	if cap(b.next) < items {
		b.next = make([]int32, items)
	}
	b.next = b.next[:items]
	b.keys = b.keys[:0]
	b.epoch++
	if b.epoch == 0 {
		for i := range b.stamp {
			b.stamp[i] = 0
		}
		b.epoch = 1
	}
}

// Put appends item to the bucket of key. Each item must be Put at most once
// per epoch.
//
//gridroute:hotpath
func (b *Buckets) Put(key, item int) {
	b.next[item] = -1
	if b.stamp[key] != b.epoch {
		b.stamp[key] = b.epoch
		b.head[key] = int32(item)
		b.tail[key] = int32(item)
		b.keys = append(b.keys, int32(key))
		return
	}
	b.next[b.tail[key]] = int32(item)
	b.tail[key] = int32(item)
}

// Keys returns the distinct keys seen this epoch in first-Put order. The
// slice is invalidated by the next Reset.
func (b *Buckets) Keys() []int32 { return b.keys }

// First returns the first item of key's bucket, or -1 when empty.
//
//gridroute:hotpath
func (b *Buckets) First(key int) int {
	if b.stamp[key] != b.epoch {
		return -1
	}
	return int(b.head[key])
}

// Next returns the item following item in its bucket, or -1 at the end.
func (b *Buckets) Next(item int) int { return int(b.next[item]) }
