package dense

import (
	"testing"
)

func TestCountsBasic(t *testing.T) {
	var c Counts
	c.Reset(10)
	if got := c.Get(3); got != 0 {
		t.Fatalf("fresh Get = %d, want 0", got)
	}
	if got := c.Add(3, 2); got != 2 {
		t.Fatalf("Add = %d, want 2", got)
	}
	if got := c.Add(3, -1); got != 1 {
		t.Fatalf("Add = %d, want 1", got)
	}
	c.Add(7, 5)
	if got := c.Get(7); got != 5 {
		t.Fatalf("Get(7) = %d, want 5", got)
	}
	touched := c.Touched()
	if len(touched) != 2 || touched[0] != 3 || touched[1] != 7 {
		t.Fatalf("Touched = %v, want [3 7]", touched)
	}
}

func TestCountsResetClears(t *testing.T) {
	var c Counts
	c.Reset(5)
	c.Add(2, 9)
	c.Reset(5)
	if got := c.Get(2); got != 0 {
		t.Fatalf("Get after Reset = %d, want 0", got)
	}
	if len(c.Touched()) != 0 {
		t.Fatalf("Touched after Reset = %v, want empty", c.Touched())
	}
}

func TestCountsGrow(t *testing.T) {
	var c Counts
	c.Reset(2)
	c.Add(1, 1)
	c.Reset(100)
	if got := c.Get(99); got != 0 {
		t.Fatalf("grown Get = %d, want 0", got)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
}

func TestCountsEpochWrap(t *testing.T) {
	var c Counts
	c.Reset(3)
	c.Add(0, 7)
	c.epoch = ^uint32(0) // force wrap on next Reset
	c.stamp[1] = 1       // would alias post-wrap epoch 1 if not cleared
	c.val[1] = 42
	c.Reset(3)
	if c.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", c.epoch)
	}
	if got := c.Get(1); got != 0 {
		t.Fatalf("aliased cell reads %d, want 0", got)
	}
}

func TestBucketsOrder(t *testing.T) {
	var b Buckets
	b.Reset(10, 6)
	b.Put(4, 0)
	b.Put(2, 1)
	b.Put(4, 2)
	b.Put(2, 3)
	b.Put(4, 4)
	b.Put(9, 5)
	keys := b.Keys()
	if len(keys) != 3 || keys[0] != 4 || keys[1] != 2 || keys[2] != 9 {
		t.Fatalf("Keys = %v, want [4 2 9]", keys)
	}
	var chain []int
	for it := b.First(4); it >= 0; it = b.Next(it) {
		chain = append(chain, it)
	}
	if len(chain) != 3 || chain[0] != 0 || chain[1] != 2 || chain[2] != 4 {
		t.Fatalf("bucket 4 chain = %v, want [0 2 4]", chain)
	}
	if b.First(3) != -1 {
		t.Fatalf("empty bucket First = %d, want -1", b.First(3))
	}
}

func TestBucketsReset(t *testing.T) {
	var b Buckets
	b.Reset(4, 2)
	b.Put(1, 0)
	b.Put(1, 1)
	b.Reset(4, 2)
	if b.First(1) != -1 {
		t.Fatalf("bucket survives Reset")
	}
	if len(b.Keys()) != 0 {
		t.Fatalf("Keys survive Reset: %v", b.Keys())
	}
	b.Put(1, 1)
	if b.First(1) != 1 || b.Next(1) != -1 {
		t.Fatalf("bucket after reuse broken")
	}
}

func TestCountsWarmResetAllocFree(t *testing.T) {
	var c Counts
	c.Reset(64)
	for i := 0; i < 64; i++ {
		c.Add(i, 1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Reset(64)
		c.Add(5, 3)
	})
	if allocs != 0 {
		t.Fatalf("warm Reset+Add allocates %v times per run, want 0", allocs)
	}
}
