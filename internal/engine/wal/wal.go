// Package wal implements the engine's write-ahead decision log: an
// append-only, checksummed, fsync-batched journal of every admission decision
// that reached the consumer loop. Replaying the log rebuilds engine state
// (IPP weights, arenas, watermark, next sequence number) bit-identically, so
// a crashed engine restarted from its WAL produces a decision log
// byte-identical to an uninterrupted run.
//
// # Format
//
// A log is a sequence of frames, each
//
//	[u32le payload length][u32le IEEE CRC-32 of payload][payload]
//
// Frame 0 is a header whose payload starts with the magic "gridWAL1" and
// encodes the engine parameters (grid dims, B, c, horizon, pmax, tile side,
// first seq); recovery refuses a log whose parameters do not match the
// engine being rebuilt. Every later frame is one decision record.
//
// Because fsync is batched (Writer.SyncEvery), a crash may lose an unsynced
// tail of frames; it can also leave a final partially-written frame. The
// Reader distinguishes the two failure shapes with typed errors: a
// *TornError (file ends mid-frame — the expected crash shape) and a
// *CorruptError (a complete frame fails its checksum or decodes
// inconsistently). Both carry the byte offset of the bad frame; recovery
// truncates there and re-decides the lost suffix deterministically, so a
// lost tail never changes the merged decision log.
//
//gridroute:seqclock
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

const (
	magic      = "gridWAL1"
	maxPayload = 1 << 20

	// DefaultSyncEvery is the fsync batch size when the caller passes <= 0.
	DefaultSyncEvery = 64

	flagRoute = 1 << 0 // record carries route fields (accepted decisions)
)

// Params identifies the engine configuration a log belongs to. Recovery
// validates them against the restarted engine's options.
type Params struct {
	Dims     []int
	B, C     int
	Horizon  int64
	PMax     int
	TileSide int
	FirstSeq int
}

// Record is one logged admission decision. Route fields (Deadline, Src, Dst,
// StartTile, Axes) are meaningful only when HasRoute is set — the engine sets
// it for accepted packets, whose routes must be replayed into the packer.
type Record struct {
	Seq     int
	Verdict uint8
	Arrival int64
	Cost    float64
	Tiles   int

	HasRoute  bool
	Deadline  int64
	Src, Dst  []int
	StartTile int
	Axes      []uint8
}

// TornError reports a file that ends in the middle of a frame — the expected
// shape of an fsync-batched log after a crash. Offset is where the torn
// frame starts; truncating there yields a valid log.
type TornError struct {
	Offset int64
}

func (e *TornError) Error() string {
	return fmt.Sprintf("wal: torn frame at offset %d (crash tail)", e.Offset)
}

// CorruptError reports a complete frame whose checksum or contents are
// invalid. Offset is where the corrupt frame starts.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt frame at offset %d: %s", e.Offset, e.Reason)
}

// Recoverable reports whether err is a torn or corrupt tail — the error
// shapes recovery handles by truncating the log at err's offset. Any other
// error (I/O failure, parameter mismatch) is not recoverable-by-truncation.
func Recoverable(err error) (offset int64, ok bool) {
	var torn *TornError
	if errors.As(err, &torn) {
		return torn.Offset, true
	}
	var corrupt *CorruptError
	if errors.As(err, &corrupt) {
		return corrupt.Offset, true
	}
	return 0, false
}

// Writer appends frames to a log file, fsyncing every SyncEvery records.
type Writer struct {
	f         *os.File
	bw        *bufio.Writer
	scratch   []byte
	head      [8]byte
	syncEvery int
	unsynced  int
}

// Create creates (or truncates) a log at path and writes the header frame.
func Create(path string, p Params, syncEvery int) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := newWriter(f, syncEvery)
	w.scratch = appendHeader(w.scratch[:0], p)
	if err := w.writeFrame(w.scratch); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Resume reopens an existing log for appending. If truncAt >= 0 the file is
// first truncated to that length (dropping a torn or corrupt tail); writing
// continues at the end of the file.
func Resume(path string, truncAt int64, syncEvery int) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if truncAt >= 0 {
		if err := f.Truncate(truncAt); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(f, syncEvery), nil
}

func newWriter(f *os.File, syncEvery int) *Writer {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<16), syncEvery: syncEvery}
}

// Append encodes and buffers one record, fsyncing if the batch is full.
func (w *Writer) Append(rec *Record) error {
	w.scratch = appendRecord(w.scratch[:0], rec)
	if err := w.writeFrame(w.scratch); err != nil {
		return err
	}
	w.unsynced++
	if w.unsynced >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// Sync flushes buffered frames and fsyncs the file.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.unsynced = 0
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *Writer) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (w *Writer) writeFrame(payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("wal: frame payload %d exceeds %d bytes", len(payload), maxPayload)
	}
	binary.LittleEndian.PutUint32(w.head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(w.head[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

// Reader sequentially decodes a log. Use Open for files; NewReader accepts
// any io.Reader (the header frame is then read by Header).
type Reader struct {
	br      *bufio.Reader
	src     io.Reader
	off     int64
	payload []byte
}

// NewReader wraps r. Call Header before Next.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), src: r}
}

// Open opens the log at path and decodes its header frame.
func Open(path string) (*Reader, Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Params{}, err
	}
	r := NewReader(f)
	p, err := r.Header()
	if err != nil {
		f.Close()
		return nil, Params{}, err
	}
	return r, p, nil
}

// Header reads and validates the header frame. It must be the first read.
func (r *Reader) Header() (Params, error) {
	start := r.off
	payload, err := r.frame()
	if err != nil {
		return Params{}, err
	}
	p, err := decodeHeader(payload)
	if err != nil {
		return Params{}, &CorruptError{Offset: start, Reason: err.Error()}
	}
	return p, nil
}

// Offset returns the byte offset of the next unread frame.
func (r *Reader) Offset() int64 { return r.off }

// Next decodes the next record. It returns io.EOF at a clean end of log, a
// *TornError if the file ends mid-frame, and a *CorruptError for a frame
// that fails its checksum or decodes inconsistently. rec is only modified on
// success, so a failed read never half-applies.
func (r *Reader) Next(rec *Record) error {
	start := r.off
	payload, err := r.frame()
	if err != nil {
		return err
	}
	if err := decodeRecord(payload, rec); err != nil {
		return &CorruptError{Offset: start, Reason: err.Error()}
	}
	return nil
}

// Close closes the underlying reader if it is an io.Closer.
func (r *Reader) Close() error {
	if c, ok := r.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

func (r *Reader) frame() ([]byte, error) {
	start := r.off
	var head [8]byte
	n, err := io.ReadFull(r.br, head[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return nil, io.EOF
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, &TornError{Offset: start}
	}
	if err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	sum := binary.LittleEndian.Uint32(head[4:8])
	if length > maxPayload {
		return nil, &CorruptError{Offset: start, Reason: fmt.Sprintf("frame length %d exceeds %d", length, maxPayload)}
	}
	if cap(r.payload) < int(length) {
		r.payload = make([]byte, length)
	}
	r.payload = r.payload[:length]
	if _, err := io.ReadFull(r.br, r.payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &TornError{Offset: start}
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(r.payload) != sum {
		return nil, &CorruptError{Offset: start, Reason: "checksum mismatch"}
	}
	r.off = start + 8 + int64(length)
	return r.payload, nil
}

// --- encoding ---

func appendHeader(b []byte, p Params) []byte {
	b = append(b, magic...)
	b = binary.AppendUvarint(b, uint64(len(p.Dims)))
	for _, d := range p.Dims {
		b = binary.AppendVarint(b, int64(d))
	}
	b = binary.AppendVarint(b, int64(p.B))
	b = binary.AppendVarint(b, int64(p.C))
	b = binary.AppendVarint(b, p.Horizon)
	b = binary.AppendVarint(b, int64(p.PMax))
	b = binary.AppendVarint(b, int64(p.TileSide))
	b = binary.AppendVarint(b, int64(p.FirstSeq))
	return b
}

func decodeHeader(payload []byte) (Params, error) {
	var p Params
	if len(payload) < len(magic) || string(payload[:len(magic)]) != magic {
		return p, errors.New("bad magic")
	}
	d := decoder{buf: payload[len(magic):]}
	nd := d.uvarint("dims")
	if nd > 64 {
		return p, fmt.Errorf("implausible dim count %d", nd)
	}
	p.Dims = make([]int, nd)
	for i := range p.Dims {
		p.Dims[i] = int(d.varint("dim"))
	}
	p.B = int(d.varint("B"))
	p.C = int(d.varint("C"))
	p.Horizon = d.varint("horizon")
	p.PMax = int(d.varint("pmax"))
	p.TileSide = int(d.varint("tileSide"))
	p.FirstSeq = int(d.varint("firstSeq"))
	if d.err == nil && len(d.buf) != 0 {
		d.err = errors.New("trailing bytes in header")
	}
	return p, d.err
}

func appendRecord(b []byte, rec *Record) []byte {
	var flags byte
	if rec.HasRoute {
		flags |= flagRoute
	}
	b = append(b, rec.Verdict, flags)
	b = binary.AppendUvarint(b, uint64(rec.Seq))
	b = binary.AppendVarint(b, rec.Arrival)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.Cost))
	b = binary.AppendUvarint(b, uint64(rec.Tiles))
	if rec.HasRoute {
		b = binary.AppendVarint(b, rec.Deadline)
		b = binary.AppendUvarint(b, uint64(len(rec.Src)))
		for _, c := range rec.Src {
			b = binary.AppendVarint(b, int64(c))
		}
		for _, c := range rec.Dst {
			b = binary.AppendVarint(b, int64(c))
		}
		b = binary.AppendUvarint(b, uint64(rec.StartTile))
		b = binary.AppendUvarint(b, uint64(len(rec.Axes)))
		b = append(b, rec.Axes...)
	}
	return b
}

func decodeRecord(payload []byte, rec *Record) error {
	if len(payload) < 2 {
		return errors.New("record shorter than verdict+flags")
	}
	var tmp Record
	tmp.Verdict = payload[0]
	flags := payload[1]
	if flags&^byte(flagRoute) != 0 {
		return fmt.Errorf("unknown record flags %#x", flags)
	}
	tmp.HasRoute = flags&flagRoute != 0
	d := decoder{buf: payload[2:]}
	tmp.Seq = int(d.uvarint("seq"))
	tmp.Arrival = d.varint("arrival")
	tmp.Cost = math.Float64frombits(d.u64("cost"))
	tmp.Tiles = int(d.uvarint("tiles"))
	if tmp.HasRoute {
		tmp.Deadline = d.varint("deadline")
		nc := d.uvarint("coord count")
		if nc > 64 {
			return fmt.Errorf("implausible coord count %d", nc)
		}
		tmp.Src = make([]int, nc)
		tmp.Dst = make([]int, nc)
		for i := range tmp.Src {
			tmp.Src[i] = int(d.varint("src coord"))
		}
		for i := range tmp.Dst {
			tmp.Dst[i] = int(d.varint("dst coord"))
		}
		tmp.StartTile = int(d.uvarint("start tile"))
		na := d.uvarint("axes count")
		if d.err == nil && na > uint64(len(d.buf)) {
			return fmt.Errorf("axes count %d exceeds remaining %d bytes", na, len(d.buf))
		}
		if d.err == nil {
			tmp.Axes = append([]uint8(nil), d.buf[:na]...)
			d.buf = d.buf[na:]
		}
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return errors.New("trailing bytes in record")
	}
	if tmp.Seq < 0 || tmp.Tiles < 0 || tmp.StartTile < 0 {
		return errors.New("negative count in record")
	}
	*rec = tmp
	return nil
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("bad uvarint for %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("bad varint for %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = fmt.Errorf("short fixed64 for %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}
