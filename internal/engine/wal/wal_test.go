package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testParams() Params {
	return Params{Dims: []int{8, 8}, B: 2, C: 6, Horizon: 64, PMax: 9, TileSide: 3, FirstSeq: 0}
}

func testRecords() []Record {
	return []Record{
		{Seq: 0, Verdict: 0, Arrival: 0, Cost: 0.25, Tiles: 3, HasRoute: true,
			Deadline: 40, Src: []int{1, 2}, Dst: []int{5, 6}, StartTile: 4, Axes: []uint8{0, 1}},
		{Seq: 1, Verdict: 1, Arrival: 2, Cost: 1.75, Tiles: 5},
		{Seq: 2, Verdict: 2, Arrival: 2, Cost: 0, Tiles: 0},
		{Seq: 3, Verdict: 3, Arrival: -1, Cost: 0, Tiles: 0},
		{Seq: 4, Verdict: 5, Arrival: 7, Cost: 0.99, Tiles: 2},
		{Seq: 5, Verdict: 0, Arrival: 9, Cost: 0.5, Tiles: 1, HasRoute: true,
			Deadline: -1, Src: []int{0, 0}, Dst: []int{7, 7}, StartTile: 0, Axes: nil},
	}
}

func writeLog(t *testing.T, path string, recs []Record, syncEvery int) {
	t.Helper()
	w, err := Create(path, testParams(), syncEvery)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := range recs {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	recs := testRecords()
	writeLog(t, path, recs, 2)

	r, p, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if !reflect.DeepEqual(p, testParams()) {
		t.Fatalf("params: got %+v want %+v", p, testParams())
	}
	var got []Record
	for {
		var rec Record
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, rec)
	}
	want := recs
	// nil vs empty slices normalize: encode/decode yields empty non-nil Axes only when written non-empty.
	for i := range got {
		if got[i].Axes == nil {
			got[i].Axes = want[i].Axes // both empty
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
}

func TestResumeAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	recs := testRecords()
	writeLog(t, path, recs[:3], 0)

	w, err := Resume(path, -1, 0)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	for i := 3; i < len(recs); i++ {
		if err := w.Append(&recs[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, _, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	n := 0
	var rec Record
	for {
		if err := r.Next(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec.Seq != n {
			t.Fatalf("record %d has seq %d", n, rec.Seq)
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("read %d records, want %d", n, len(recs))
	}
}

// TestTruncationEveryByte cuts a valid log at every possible byte length and
// checks the reader yields a strict prefix of records followed by either a
// clean EOF or a typed recoverable error whose offset marks a valid
// truncation point — never a panic, never a half-applied record.
func TestTruncationEveryByte(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := testRecords()
	writeLog(t, full, recs, 0)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(raw); cut++ {
		r := NewReader(bytes.NewReader(raw[:cut]))
		if _, err := r.Header(); err != nil {
			if err == io.EOF {
				continue
			}
			if _, ok := Recoverable(err); !ok {
				t.Fatalf("cut=%d: header error not recoverable: %v", cut, err)
			}
			continue
		}
		n := 0
		for {
			var rec Record
			err := r.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				off, ok := Recoverable(err)
				if !ok {
					t.Fatalf("cut=%d: unexpected error type: %v", cut, err)
				}
				if off < 0 || off > int64(cut) {
					t.Fatalf("cut=%d: recoverable offset %d out of range", cut, off)
				}
				break
			}
			if n >= len(recs) || rec.Seq != recs[n].Seq {
				t.Fatalf("cut=%d: record %d decoded wrong (seq %d)", cut, n, rec.Seq)
			}
			n++
		}
	}
}

func TestCorruptFlippedByte(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	writeLog(t, full, testRecords(), 0)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte somewhere in every frame region; the reader must stop
	// with a typed error, never a panic, and records before the flip decode.
	for pos := 0; pos < len(raw); pos += 7 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xff
		r := NewReader(bytes.NewReader(mut))
		if _, err := r.Header(); err != nil {
			if _, ok := Recoverable(err); !ok && err != io.EOF {
				t.Fatalf("pos=%d: header error not typed: %v", pos, err)
			}
			continue
		}
		for {
			var rec Record
			err := r.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				if _, ok := Recoverable(err); !ok {
					t.Fatalf("pos=%d: error not typed: %v", pos, err)
				}
				break
			}
		}
	}
}

func TestHeaderMismatchSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	if err := os.WriteFile(path, []byte("this is not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path)
	if err == nil {
		t.Fatal("Open of garbage succeeded")
	}
	var corrupt *CorruptError
	var torn *TornError
	if !errors.As(err, &corrupt) && !errors.As(err, &torn) {
		t.Fatalf("garbage header error not typed: %v", err)
	}
}

func FuzzReader(f *testing.F) {
	// Seed with a valid log, its truncations, and light mutations.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, err := Create(path, testParams(), 0)
	if err != nil {
		f.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		if err := w.Append(&recs[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:11])
	f.Add([]byte{})
	mut := append([]byte(nil), raw...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		if _, err := r.Header(); err != nil {
			requireTyped(t, err)
			return
		}
		var rec Record
		for i := 0; i < 1<<16; i++ {
			prev := rec
			err := r.Next(&rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				requireTyped(t, err)
				// Never half-apply: a failed Next must leave rec untouched.
				if !reflect.DeepEqual(rec, prev) {
					t.Fatal("failed Next modified the record")
				}
				return
			}
		}
	})
}

func requireTyped(t *testing.T, err error) {
	t.Helper()
	if err == io.EOF {
		return
	}
	if _, ok := Recoverable(err); !ok {
		t.Fatalf("reader error is not typed torn/corrupt: %v", err)
	}
}
