package engine_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gridroute/internal/engine"
	"gridroute/internal/grid"
)

// feedRange admits reqs[lo:hi] sequentially.
func feedRange(t *testing.T, eng *engine.Engine, reqs []grid.Request, lo, hi int) {
	t.Helper()
	ctx := context.Background()
	for i := lo; i < hi; i++ {
		if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
}

// TestEngineWALRecoveryDeterminism is the crash-recovery gate: an engine that
// journals to a WAL, stops mid-stream, and is rebuilt with Recover must —
// after the rest of the stream is fed — produce exactly the decision log of
// the uninterrupted run, serial and speculative, whether the log ends clean
// or with a torn tail.
func TestEngineWALRecoveryDeterminism(t *testing.T) {
	g, reqs, opts := workload(t, 48, 300, 128, 7)
	opts.InOrder = true
	opts.RecordDecisions = true

	_, ref := stream(t, g, reqs, opts)
	want := stripWait(ref.Decisions)

	for _, specWorkers := range []int{0, 2} {
		t.Run(fmt.Sprintf("spec-workers-%d", specWorkers), func(t *testing.T) {
			wopts := opts
			wopts.SpecWorkers = specWorkers
			wopts.WALPath = filepath.Join(t.TempDir(), "run.wal")
			wopts.WALSyncEvery = 1

			// First life: decide half the stream, then stop (a clean Drain —
			// the torn-tail variant below covers the mid-write crash shape).
			const stopAt = 150
			eng, err := engine.New(g, wopts)
			if err != nil {
				t.Fatal(err)
			}
			feedRange(t, eng, reqs, 0, stopAt)
			if err := eng.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}

			// Second life: recover, resume at the first unlogged seq, finish.
			eng2, rec, err := engine.Recover(g, wopts)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Decisions != stopAt || rec.NextSeq != stopAt || rec.Truncated != 0 {
				t.Fatalf("clean recovery = %+v, want %d decisions, next seq %d, 0 torn bytes", rec, stopAt, stopAt)
			}
			feedRange(t, eng2, reqs, rec.NextSeq, len(reqs))
			res := finishEngine(t, eng2)
			if !reflect.DeepEqual(want, stripWait(res.Decisions)) {
				t.Fatal("merged decision log diverges from the uninterrupted run")
			}
			if res.Stats.Recovered != stopAt {
				t.Fatalf("Recovered = %d, want %d", res.Stats.Recovered, stopAt)
			}
			if res.Stats.Submitted != uint64(len(reqs)) || res.Stats.Decided() != uint64(len(reqs)) {
				t.Fatalf("merged accounting off: %+v for %d reqs", res.Stats, len(reqs))
			}
			if res.MaxLoad != ref.MaxLoad || res.PrimalValue != ref.PrimalValue {
				t.Fatalf("packer certificates diverge after recovery: (%v, %v) vs (%v, %v)",
					res.MaxLoad, res.PrimalValue, ref.MaxLoad, ref.PrimalValue)
			}

			// Third life: chop bytes off the log mid-frame — the kill -9
			// shape — and recover again. The torn record is dropped and
			// re-decided; the final log is still byte-identical.
			data, err := os.ReadFile(wopts.WALPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(wopts.WALPath, data[:len(data)-37], 0o644); err != nil {
				t.Fatal(err)
			}
			eng3, rec3, err := engine.Recover(g, wopts)
			if err != nil {
				t.Fatal(err)
			}
			if rec3.Truncated == 0 {
				t.Fatal("torn tail not reported")
			}
			if rec3.NextSeq >= len(reqs) {
				t.Fatalf("torn log still claims the full stream (next seq %d)", rec3.NextSeq)
			}
			feedRange(t, eng3, reqs, rec3.NextSeq, len(reqs))
			res3 := finishEngine(t, eng3)
			if !reflect.DeepEqual(want, stripWait(res3.Decisions)) {
				t.Fatal("decision log diverges after torn-tail recovery")
			}
		})
	}
}

// TestEngineRecoverParamMismatch: a log written under different engine
// parameters must be refused with the typed sentinel, not replayed into a
// mismatched topology.
func TestEngineRecoverParamMismatch(t *testing.T) {
	g, reqs, opts := workload(t, 32, 40, 32, 3)
	opts.InOrder = true
	opts.WALPath = filepath.Join(t.TempDir(), "run.wal")
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	feedRange(t, eng, reqs, 0, len(reqs))
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.Horizon++
	if _, _, err := engine.Recover(g, bad); !errors.Is(err, engine.ErrWALMismatch) {
		t.Fatalf("mismatched recover returned %v, want ErrWALMismatch", err)
	}
}
