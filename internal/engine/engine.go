// Package engine hosts the streaming admission core of the deterministic
// algorithm (Sec. 4–6 of Even–Medina): a long-lived Engine owns one warm
// space-time sketch and one dense integral-path-packing state and admits
// packets one at a time, in arrival order, as they are submitted — no
// spacetime, sketch or tiling state is rebuilt between admits.
//
// The Engine is the online counterpart of core.RunDeterministic's batch
// loop, and the batch runner is now expressed over it: streaming a request
// sequence through Admit issues exactly the same LightestRoute/Offer call
// sequence as the old in-line loop, so batch results are byte-identical.
// What the Engine adds is a concurrency boundary: any number of producer
// goroutines may call Admit concurrently; a single consumer goroutine owns
// the mutable routing state and decides packets strictly one at a time.
//
// Backpressure is real, not simulated: the admission queue is a bounded
// channel sized by Options.Queue, and a packet arriving at a full queue is
// rejected immediately with RejectedQueueFull — the streaming analogue of
// the paper's bounded buffers (a router with full ingress buffers drops).
//
// The warm admit path is allocation-free in steady state: the sketch query
// session, the DP path, the route scratch and the per-packet envelopes are
// all reused, and accepted packets are retained in chunked, pointer-stable
// arenas (see alloc_test.go's gate at the repository root).
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridroute/internal/detroute"
	"gridroute/internal/engine/wal"
	"gridroute/internal/fault"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// Verdict classifies an admission decision.
type Verdict uint8

const (
	// Accepted: the packer assigned a sketch route; the packet was injected.
	Accepted Verdict = iota
	// RejectedCost: a lightest route exists but its weight α(p) ≥ 1
	// (the Buchbinder–Naor admission threshold).
	RejectedCost
	// RejectedNoRoute: no legal sketch route (destination ray empty or
	// unreachable within pmax tiles).
	RejectedNoRoute
	// RejectedInvalid: the packet is infeasible on the grid or violates the
	// engine's arrival-order watermark. Invalid packets never touch the
	// packer.
	RejectedInvalid
	// RejectedQueueFull: the bounded admission queue was full at submission
	// time (backpressure). Queue-full packets never reach the consumer loop
	// and are absent from the decision log.
	RejectedQueueFull
	// Shed: the overload-degradation policy (Options.Shed) dropped the
	// packet — deadline-aware early shedding or adaptive threshold
	// tightening under sustained queue pressure. Shed packets reach the
	// consumer loop (so they appear in the decision log and advance the
	// arrival watermark) but never mutate the packer's weights.
	Shed
)

func (v Verdict) String() string {
	switch v {
	case Accepted:
		return "accepted"
	case RejectedCost:
		return "rejected-cost"
	case RejectedNoRoute:
		return "rejected-no-route"
	case RejectedInvalid:
		return "rejected-invalid"
	case RejectedQueueFull:
		return "rejected-queue-full"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Packet is one admission attempt. Seq is the packet's position in the
// online order: in InOrder mode every sequence number from FirstSeq upward
// must be submitted exactly once, and decisions are made in Seq order
// regardless of producer interleaving. Src and Dst are copied at submission
// time, so the caller may reuse the backing slices as soon as Admit returns.
// Deadline uses the grid.Request convention: grid.InfDeadline means none.
type Packet struct {
	Seq      int
	Src      grid.Vec
	Dst      grid.Vec
	Arrival  int64
	Deadline int64
}

// PacketOf converts a request into its packet form, with Seq = r.ID.
func PacketOf(r *grid.Request) Packet {
	return Packet{Seq: r.ID, Src: r.Src, Dst: r.Dst, Arrival: r.Arrival, Deadline: r.Deadline}
}

// Decision is the engine's verdict on one packet.
type Decision struct {
	Seq     int
	Verdict Verdict
	// Cost is the weight α(p) of the lightest sketch route at decision time
	// (meaningful for Accepted and RejectedCost).
	Cost float64
	// Tiles is the number of tiles of the assigned route (Accepted only).
	Tiles int
	// Wait is the wall-clock latency from submission to decision. It is the
	// only non-deterministic Decision field: determinism tests compare
	// decisions with Wait stripped.
	Wait time.Duration
}

// Admitted reports whether the packet was injected.
func (d Decision) Admitted() bool { return d.Verdict == Accepted }

// Options configures an Engine.
type Options struct {
	// Horizon is the last simulated time step. It must be positive: a
	// streaming engine cannot derive a horizon from a workload it has not
	// seen (batch callers use spacetime.SuggestHorizon).
	Horizon int64
	// PMax is the maximum sketch-path length. It must be positive; batch
	// callers use core.PMaxDet.
	PMax int
	// TileSide is the tile side k; 0 derives ⌈log₂(1+3·pmax)⌉.
	TileSide int
	// Queue bounds the admission queue (the engine's ingress buffer);
	// 0 means DefaultQueue. Admit rejects with RejectedQueueFull when full.
	Queue int
	// ExpectPackets pre-sizes the accepted-packet arenas. Purely an
	// optimization: the arenas grow in chunks regardless.
	ExpectPackets int
	// InOrder makes the consumer loop decide packets in strictly increasing
	// Seq order, parking early arrivals — the mode that makes the decision
	// log deterministic under concurrent producers. Every Seq from FirstSeq
	// upward must then be submitted exactly once; a gap stalls later
	// packets until Drain. Off, packets are decided in queue order.
	InOrder bool
	// FirstSeq is the first sequence number in InOrder mode (default 0).
	FirstSeq int
	// RecordDecisions retains every consumer-loop decision for
	// Result.Decisions (queue-full rejections are not recorded: they never
	// reach the loop).
	RecordDecisions bool
	// DPWorkers sizes the wavefront worker pool the sketch session's
	// lightest-path DP runs on: windows above the crossover threshold relax
	// in parallel across DPWorkers bands, bit-identically to the serial
	// sweep, so every decision (and all downstream output) is independent of
	// the setting. ≤ 1 disables the pool.
	DPWorkers int
	// NoWarmStart disables incremental DP reuse between successive admits
	// (sketch.Session warm start). Warm and cold engines decide identically;
	// the switch exists for parity tests and benchmarks.
	NoWarmStart bool
	// SpecWorkers enables the speculative admission pipeline (spec.go): N
	// worker goroutines solve lightest-route queries against versioned
	// weight snapshots while a single committer validates and commits them
	// in order, re-deciding conflicted speculations inline. The decision
	// log, accepted set and all downstream output are byte-identical to the
	// serial loop at any setting. ≤ 0 keeps the serial consumer loop; 1
	// exercises the full pipeline without parallelism.
	SpecWorkers int
	// GapTimeout arms the InOrder gap watchdog: if the consumer waits this
	// long for the next expected Seq while later packets sit parked behind
	// the gap, it records a *GapError (see Engine.Err) naming the missing
	// sequence and resumes at the smallest parked Seq instead of stalling
	// until Drain. 0 (the default) keeps the historical park-forever
	// behavior. Only meaningful with InOrder.
	GapTimeout time.Duration
	// Injector wires a deterministic fault-injection harness into the
	// engine: queue-full storms fire at the Admit gate, slow-consumer
	// pauses before each decision, and space-time resource outages mask the
	// failed sketch edges out of the route query (the packet reroutes or is
	// rejected, deterministically). nil disables all hooks at zero cost.
	Injector *fault.Injector
	// Shed enables graceful overload degradation (see ShedPolicy). nil —
	// the default — disables shedding entirely; decisions are then
	// independent of queue pressure, which is what the determinism gates
	// assume.
	Shed *ShedPolicy
	// WALPath, when non-empty, journals every consumer-loop decision to an
	// append-only checksummed write-ahead log at this path (see
	// internal/engine/wal). A crashed engine restarted with Recover replays
	// the log and continues with a byte-identical decision stream. New
	// truncates any existing file; use Recover to resume one.
	WALPath string
	// WALSyncEvery is the WAL fsync batch size (decisions per fsync);
	// 0 means wal.DefaultSyncEvery. A crash loses at most the unsynced
	// tail, which recovery re-decides deterministically.
	WALSyncEvery int
}

// DefaultQueue is the admission queue bound when Options.Queue is 0.
const DefaultQueue = 256

// Stats is a point-in-time snapshot of the engine's counters, safe to read
// from any goroutine while the engine runs.
//
// Snapshots are coherent without a lock by read ordering: every packet's
// Submitted increment happens before its verdict increment (program order —
// Admit counts the submission before the packet can be decided or bounced),
// and Stats loads the verdict counters first and Submitted last, so a
// mid-flight snapshot always satisfies the monotone-pair invariants
//
//	Decided() + Shed + RejectedQueueFull ≤ Submitted
//	SpecCommitted + SpecAborted ≤ Speculated ≤ Submitted
//
// with equality (for the first) once Drain has returned. In particular a
// snapshot can never show Decided() > Submitted. The invariants are pinned
// by TestStatsSnapshotCoherence.
type Stats struct {
	Submitted         uint64
	Accepted          uint64
	RejectedCost      uint64
	RejectedNoRoute   uint64
	RejectedInvalid   uint64
	RejectedQueueFull uint64
	// Shed counts packets dropped by the overload policy (Options.Shed).
	Shed uint64
	// Recovered counts decisions replayed from the write-ahead log at
	// startup (Recover); they are also included in Submitted and in their
	// verdict counters, but not in AvgWait.
	Recovered uint64
	// QueueLen is the number of packets waiting in the admission queue.
	QueueLen int
	// AvgWait is the mean submission-to-decision latency over decided
	// packets (queue-full rejections excluded: they are decided at the
	// gate, not by the loop).
	AvgWait time.Duration
	// Speculation counters (zero unless Options.SpecWorkers > 0).
	// Speculated counts packets through the worker stage; every one is
	// either committed as speculated (SpecCommitted) or aborted
	// (SpecAborted). SpecRetried counts inline serial re-decisions after an
	// abort (≤ SpecAborted). The abort rate is the conflict rate: raise
	// workers while SpecAborted/Speculated stays low.
	Speculated    uint64
	SpecCommitted uint64
	SpecAborted   uint64
	SpecRetried   uint64
}

// Rejected is the total over all rejection verdicts (shed packets are
// counted separately in Shed).
func (s Stats) Rejected() uint64 {
	return s.RejectedCost + s.RejectedNoRoute + s.RejectedInvalid + s.RejectedQueueFull
}

// Decided is the number of packets that reached the consumer loop and were
// decided on their merits (shed packets reach the loop too, but are
// accounted in Shed: Submitted = Decided + Shed + RejectedQueueFull after
// drain).
func (s Stats) Decided() uint64 {
	return s.Accepted + s.RejectedCost + s.RejectedNoRoute + s.RejectedInvalid
}

// ErrClosed is returned by Admit after Drain has begun.
var ErrClosed = errors.New("engine: closed to new admissions")

// Envelope delivery states: the submitter and the loop race on `state` with
// a single CAS each, and the loser of the race learns what the winner did.
const (
	envWaiting   uint32 = iota // submitter is (or will be) blocked on reply
	envDelivered               // loop won: the decision is in the buffered reply
	envAbandoned               // submitter won: ctx cancelled, nobody will receive
)

// pending is the envelope of one in-flight admission: the packet (with
// engine-owned coordinate copies), the submission timestamp, a reply channel
// and a delivery state. Envelopes are pooled; ownership passes submit → loop
// → submitter, and exactly one side returns each envelope to the pool: the
// submitter after consuming the reply, or — when the submitter's ctx was
// cancelled and its CAS to envAbandoned won — the loop at delivery time, so
// a cancelled Admit leaks nothing and a reply can never bleed into a
// recycled envelope.
type pending struct {
	pkt      Packet
	src, dst []int
	enq      time.Time
	state    atomic.Uint32
	reply    chan Decision
}

// Engine is a long-lived streaming admission core. Create with New, submit
// with Admit from any number of goroutines, stop with Drain, collect with
// Finish.
type Engine struct {
	g       *grid.Grid
	st      *spacetime.Graph
	tl      *tiling.Tiling
	sk      *sketch.Graph
	sess    *sketch.Session
	pk      *ipp.Packer
	dpPool  *lattice.Pool
	horizon int64
	pmax    int
	k       int
	d       int

	inOrder  bool
	record   bool
	queue    int
	firstSeq int

	gapTimeout time.Duration
	inj        *fault.Injector
	shed       *shedState

	// Write-ahead log state (loop-owned after start; see recover.go).
	wal      *wal.Writer
	walRec   wal.Record
	walRoute sketch.Route

	// Resource-outage mask cache (loop-owned; see outage.go).
	maskEpoch int
	maskEdges []ipp.EdgeID
	maskBuf   []float64
	outBuf    []fault.Event

	errMu    sync.Mutex
	firstErr error

	in   chan *pending
	done chan struct{}
	mu   sync.RWMutex // guards closed against concurrent Admit/Drain
	shut bool

	pool sync.Pool

	// Consumer-loop state (owned by the loop goroutine — the committer, in
	// spec mode; read by Finish only after done is closed).
	nextSeq   int
	parked    map[int]*pending
	watermark int64
	srcBuf    []int
	scratch   sketch.Route
	admitted  []detroute.Admitted
	decisions []Decision
	arena     arena

	// Speculative pipeline state (spec.go); inert when specWorkers ≤ 0.
	// specMu orders the committer's weight mutations against worker snapshot
	// reads: Offer commits take the write lock, SnapshotWindow the read lock.
	specWorkers int
	specMu      sync.RWMutex
	specIn      chan *speculation
	specOut     chan *speculation
	specWg      sync.WaitGroup
	specPool    sync.Pool
	parkedSpecs map[int]*speculation
	journal     specJournal
	tileBuf     []int

	submitted  atomic.Uint64
	accepted   atomic.Uint64
	rejCost    atomic.Uint64
	rejNoRoute atomic.Uint64
	rejInvalid atomic.Uint64
	rejQFull   atomic.Uint64
	shedCount  atomic.Uint64
	recovered  atomic.Uint64
	decided    atomic.Uint64
	waitNs     atomic.Int64

	speculated    atomic.Uint64
	specCommitted atomic.Uint64
	specAborted   atomic.Uint64
	specRetried   atomic.Uint64

	finishOnce sync.Once
	result     *Result
}

// New builds the engine's persistent routing state — space-time graph,
// tiling, sketch, one query session, one dense packer, exactly as the batch
// deterministic algorithm does — and starts the consumer loop. With
// Options.WALPath set it also creates (truncating) the write-ahead decision
// log; use Recover to resume an existing log instead.
func New(g *grid.Grid, opts Options) (*Engine, error) {
	e, err := newEngine(g, opts)
	if err != nil {
		return nil, err
	}
	if opts.WALPath != "" {
		w, err := wal.Create(opts.WALPath, e.walParams(), opts.WALSyncEvery)
		if err != nil {
			return nil, fmt.Errorf("engine: create wal: %w", err)
		}
		e.wal = w
	}
	e.start()
	return e, nil
}

// newEngine builds a fully-initialized engine without starting any
// goroutines, so Recover can replay a WAL into it first.
func newEngine(g *grid.Grid, opts Options) (*Engine, error) {
	if g.B != 0 && (g.B < 3 || g.C < 3) {
		return nil, fmt.Errorf("engine: deterministic admission requires B, c ≥ 3 (or B = 0, c ≥ 3); got B=%d c=%d", g.B, g.C)
	}
	if g.B == 0 && g.C < 3 {
		return nil, fmt.Errorf("engine: bufferless variant requires c ≥ 3; got c=%d", g.C)
	}
	if opts.Horizon <= 0 {
		return nil, errors.New("engine: Options.Horizon must be positive (use spacetime.SuggestHorizon for batch workloads)")
	}
	if opts.PMax <= 0 {
		return nil, errors.New("engine: Options.PMax must be positive (use core.PMaxDet for the paper's bound)")
	}
	k := opts.TileSide
	if k == 0 {
		k = ipp.K(opts.PMax)
	}
	queue := opts.Queue
	if queue <= 0 {
		queue = DefaultQueue
	}

	st := spacetime.New(g, opts.Horizon)
	d := g.D()
	side := make([]int, d+1)
	phase := make([]int, d+1)
	for i := range side {
		side[i] = k
	}
	tl := tiling.New(st.Box, side, phase)
	sk := sketch.New(st, tl, sketch.Downscaled)
	// Splitting tiles doubles path length plus one (Sec. 5.1); dense mode,
	// same as the batch path.
	pk := ipp.NewDense(2*opts.PMax+1, sk.Cap, sk.Universe())

	e := &Engine{
		g: g, st: st, tl: tl, sk: sk, sess: sk.NewSession(), pk: pk,
		horizon: opts.Horizon, pmax: opts.PMax, k: k, d: d,
		inOrder: opts.InOrder, record: opts.RecordDecisions,
		queue: queue, firstSeq: opts.FirstSeq,
		gapTimeout: opts.GapTimeout,
		inj:        opts.Injector,
		maskEpoch:  -1,
		in:         make(chan *pending, queue),
		done:       make(chan struct{}),
		nextSeq:    opts.FirstSeq,
		watermark:  math.MinInt64,
		srcBuf:     make([]int, d+1),
	}
	if opts.Shed != nil {
		e.shed = opts.Shed.state(queue)
	}
	if opts.InOrder {
		e.parked = make(map[int]*pending)
	}
	if opts.DPWorkers > 1 {
		e.dpPool = lattice.NewPool(opts.DPWorkers)
		e.sess.SetDPPool(e.dpPool)
	}
	if opts.NoWarmStart {
		e.sess.SetWarmStart(false)
	}
	e.pool.New = func() any {
		return &pending{
			src:   make([]int, 0, d),
			dst:   make([]int, 0, d),
			reply: make(chan Decision, 1),
		}
	}
	e.arena.init(opts.ExpectPackets)
	if opts.ExpectPackets > 0 {
		e.admitted = make([]detroute.Admitted, 0, opts.ExpectPackets)
	}
	e.specWorkers = opts.SpecWorkers
	return e, nil
}

// start launches the consumer goroutines (the serial loop, or the
// speculative pipeline).
func (e *Engine) start() {
	if e.specWorkers > 0 {
		e.startSpec(e.queue)
	} else {
		go e.loop()
	}
}

// Grid returns the engine's grid.
func (e *Engine) Grid() *grid.Grid { return e.g }

// Params returns the engine's resolved (horizon, pmax, k).
func (e *Engine) Params() (horizon int64, pmax, k int) { return e.horizon, e.pmax, e.k }

// Admit submits one packet and blocks until the engine decides it, the
// bounded queue rejects it, or ctx is done. It is safe to call from any
// number of goroutines. After Drain has begun it returns ErrClosed.
//
// On ctx cancellation Admit returns promptly with ctx.Err(), but the packet
// may still be decided (and, if accepted, routed) later: cancellation
// abandons the wait, not the submission. The pooled envelope is reclaimed by
// whichever side loses the delivery race (see pending), so a cancelled Admit
// leaks nothing; if the decision already landed when cancellation is
// observed, Admit returns it instead of the error.
//
//gridroute:hotpath
func (e *Engine) Admit(ctx context.Context, pkt Packet) (Decision, error) {
	p := e.pool.Get().(*pending)
	p.pkt = pkt
	p.src = append(p.src[:0], pkt.Src...)
	p.dst = append(p.dst[:0], pkt.Dst...)
	p.pkt.Src = p.src
	p.pkt.Dst = p.dst
	p.enq = time.Now() //gridlint:allow metrics-only latency stamp (Decision.Wait), never reaches the log
	p.state.Store(envWaiting)

	// The closed flag and the channel send sit under a read lock so Drain's
	// close(e.in) (under the write lock) cannot race a send. Submitted is
	// counted before the send: the Stats snapshot contract requires every
	// packet's Submitted increment to precede its verdict increment.
	e.mu.RLock()
	if e.shut {
		e.mu.RUnlock()
		e.pool.Put(p)
		return Decision{}, ErrClosed
	}
	e.submitted.Add(1)
	if e.inj != nil && e.inj.StormBounce(pkt.Seq) {
		// Injected queue-full storm: bounce exactly as a full queue would.
		e.mu.RUnlock()
		e.pool.Put(p)
		e.rejQFull.Add(1)
		return Decision{Seq: pkt.Seq, Verdict: RejectedQueueFull}, nil
	}
	select {
	case e.in <- p:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		e.pool.Put(p)
		e.rejQFull.Add(1)
		return Decision{Seq: pkt.Seq, Verdict: RejectedQueueFull}, nil
	}

	select {
	case d := <-p.reply:
		e.pool.Put(p)
		return d, nil
	case <-ctx.Done():
		if p.state.CompareAndSwap(envWaiting, envAbandoned) {
			// The loop observes the abandonment at delivery time and
			// recycles the envelope itself.
			return Decision{}, ctx.Err()
		}
		// Delivery won the race: the decision is (or is immediately about
		// to be) in the buffered reply. Consume it, recycle, return it.
		d := <-p.reply
		e.pool.Put(p)
		return d, nil
	}
}

// Stats returns a snapshot of the counters. Load order is part of the
// contract (see the Stats type doc): outcome counters first — verdicts,
// Shed, queue-full, the spec commit/abort pair — then Speculated, then
// Submitted last, so the documented monotone-pair invariants hold for every
// snapshot, not just quiescent ones.
func (e *Engine) Stats() Stats {
	s := Stats{
		Accepted:          e.accepted.Load(),
		RejectedCost:      e.rejCost.Load(),
		RejectedNoRoute:   e.rejNoRoute.Load(),
		RejectedInvalid:   e.rejInvalid.Load(),
		Shed:              e.shedCount.Load(),
		Recovered:         e.recovered.Load(),
		RejectedQueueFull: e.rejQFull.Load(),
		SpecCommitted:     e.specCommitted.Load(),
		SpecAborted:       e.specAborted.Load(),
		SpecRetried:       e.specRetried.Load(),
	}
	if n := e.decided.Load(); n > 0 {
		s.AvgWait = time.Duration(e.waitNs.Load() / int64(n))
	}
	s.Speculated = e.speculated.Load()
	s.Submitted = e.submitted.Load()
	s.QueueLen = len(e.in)
	return s
}

// Err returns the first asynchronous engine fault — a gap-watchdog break
// (*GapError) or a WAL write failure — or nil. The engine keeps deciding
// after such faults; callers poll Err (typically after Drain) to learn the
// run was degraded.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// setErr records the first asynchronous fault; later ones are dropped.
func (e *Engine) setErr(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
}

// loop is the single consumer: it owns every piece of mutable routing state
// and decides packets strictly one at a time. With Options.GapTimeout set it
// also runs the InOrder gap watchdog: whenever packets are parked behind a
// missing Seq, a timer measures how long nextSeq has been stuck (re-armed
// only when nextSeq advances, so slow-but-progressing streams never fire it)
// and on expiry the gap is broken (gap.go).
func (e *Engine) loop() {
	defer close(e.done)
	watch := e.inOrder && e.gapTimeout > 0
	var w gapWatch
	for {
		var p *pending
		var ok bool
		if watch && len(e.parked) > 0 {
			w.arm(e.gapTimeout, e.nextSeq)
			select {
			case p, ok = <-e.in:
			case <-w.timer.C:
				w.armed = false
				e.breakGap()
				continue
			}
		} else {
			p, ok = <-e.in
		}
		if !ok {
			break
		}
		if e.inOrder {
			e.processOrdered(p)
		} else {
			e.process(p)
		}
	}
	e.flushParked()
}

//gridroute:hotpath
func (e *Engine) processOrdered(p *pending) {
	if p.pkt.Seq != e.nextSeq {
		e.parked[p.pkt.Seq] = p
		return
	}
	e.process(p)
	e.nextSeq++
	for {
		q, ok := e.parked[e.nextSeq]
		if !ok {
			return
		}
		delete(e.parked, e.nextSeq)
		e.process(q)
		e.nextSeq++
	}
}

// flushParked decides leftover parked packets at drain time in Seq order
// (their gap seqs were never submitted).
func (e *Engine) flushParked() {
	if len(e.parked) == 0 {
		return
	}
	seqs := make([]int, 0, len(e.parked))
	for s := range e.parked {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	for _, s := range seqs {
		p := e.parked[s]
		delete(e.parked, s)
		e.process(p)
	}
}

//gridroute:hotpath
func (e *Engine) process(p *pending) {
	if e.inj != nil {
		if d := e.inj.PauseBefore(p.pkt.Seq); d > 0 {
			time.Sleep(d) //gridlint:allow fault-injected slow-consumer stall: delays the loop, never changes a verdict
		}
	}
	d := e.decide(&p.pkt)
	d.Wait = time.Since(p.enq)
	e.finalize(p, d)
}

// finalize is the single exit path of every consumer-loop decision (serial
// and speculative): count it, record it, journal it, deliver it.
//
//gridroute:hotpath
func (e *Engine) finalize(p *pending, d Decision) {
	e.count(d)
	if e.record {
		e.decisions = append(e.decisions, d)
	}
	if e.wal != nil {
		e.walAppend(&p.pkt, d)
	}
	e.deliver(p, d)
}

// deliver hands a decision to the submitter, or reclaims the envelope if the
// submitter abandoned the wait (ctx cancellation). Exactly one side recycles
// each envelope: the CAS decides which.
//
//gridroute:hotpath
func (e *Engine) deliver(p *pending, d Decision) {
	if p.state.CompareAndSwap(envWaiting, envDelivered) {
		p.reply <- d
		return
	}
	// Abandoned: no receiver will ever come; the loop owns the envelope now.
	e.pool.Put(p)
}

// decide is the warm admit path: one sketch lightest-route query plus one
// packer offer, mirroring the batch loop body of the deterministic
// algorithm. It is allocation-free in steady state.
//
//gridroute:deterministic
//gridroute:hotpath
func (e *Engine) decide(pkt *Packet) Decision {
	d := Decision{Seq: pkt.Seq}
	r := grid.Request{ID: pkt.Seq, Src: pkt.Src, Dst: pkt.Dst, Arrival: pkt.Arrival, Deadline: pkt.Deadline}
	// Validity gate: infeasible or out-of-order packets never touch the
	// packer, so a pre-validated batch stream sees the exact Offer sequence
	// of the batch algorithm.
	if pkt.Arrival < e.watermark || !r.Feasible(e.g) {
		d.Verdict = RejectedInvalid
		return d
	}
	e.watermark = pkt.Arrival
	if e.shed != nil && e.shedPre(pkt) {
		// Deadline-aware early shed under queue pressure: the packet would
		// queue past its slack anyway, so drop it before the DP runs.
		d.Verdict = Shed
		return d
	}

	src := e.st.ToLattice(r.Src, r.Arrival, e.srcBuf)
	wLo, wHi := e.st.DestRay(&r)
	if e.g.B == 0 {
		// Bufferless: the only reachable copy shares the source's w.
		wLo, wHi = src[e.d], src[e.d]
	}
	var ok bool
	if blocked := e.activeMask(pkt.Arrival); blocked != nil {
		ok = e.sess.LightestRouteMasked(e.pk, src, r.Dst, wLo, wHi, e.pmax, blocked, e.maskBuf, &e.scratch)
	} else {
		ok = e.sess.LightestRouteInto(e.pk, src, r.Dst, wLo, wHi, e.pmax, &e.scratch)
	}
	if !ok {
		e.pk.Offer(nil, 0) //gridlint:allow nil offer bumps the rejection counter only, no weight mutation
		d.Verdict = RejectedNoRoute
		return d
	}
	d.Cost = e.scratch.Cost
	d.Tiles = e.scratch.NumTiles()
	if e.shed != nil && e.shedPost(e.scratch.Cost) {
		// The route clears the paper's α(p) < 1 threshold but not the
		// tightened one: shed without offering.
		d.Verdict = Shed
		return d
	}
	if !e.offerPath(e.scratch.Edges, e.scratch.Cost) {
		d.Verdict = RejectedCost
		return d
	}
	d.Verdict = Accepted
	e.admitted = append(e.admitted, e.arena.retain(&r, &e.scratch))
	return d
}

//gridroute:hotpath
func (e *Engine) count(d Decision) {
	switch d.Verdict {
	case Accepted:
		e.accepted.Add(1)
	case RejectedCost:
		e.rejCost.Add(1)
	case RejectedNoRoute:
		e.rejNoRoute.Add(1)
	case Shed:
		e.shedCount.Add(1)
	default:
		e.rejInvalid.Add(1)
	}
	e.waitNs.Add(int64(d.Wait))
	e.decided.Add(1)
}
