// Package engine hosts the streaming admission core of the deterministic
// algorithm (Sec. 4–6 of Even–Medina): a long-lived Engine owns one warm
// space-time sketch and one dense integral-path-packing state and admits
// packets one at a time, in arrival order, as they are submitted — no
// spacetime, sketch or tiling state is rebuilt between admits.
//
// The Engine is the online counterpart of core.RunDeterministic's batch
// loop, and the batch runner is now expressed over it: streaming a request
// sequence through Admit issues exactly the same LightestRoute/Offer call
// sequence as the old in-line loop, so batch results are byte-identical.
// What the Engine adds is a concurrency boundary: any number of producer
// goroutines may call Admit concurrently; a single consumer goroutine owns
// the mutable routing state and decides packets strictly one at a time.
//
// Backpressure is real, not simulated: the admission queue is a bounded
// channel sized by Options.Queue, and a packet arriving at a full queue is
// rejected immediately with RejectedQueueFull — the streaming analogue of
// the paper's bounded buffers (a router with full ingress buffers drops).
//
// The warm admit path is allocation-free in steady state: the sketch query
// session, the DP path, the route scratch and the per-packet envelopes are
// all reused, and accepted packets are retained in chunked, pointer-stable
// arenas (see alloc_test.go's gate at the repository root).
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridroute/internal/detroute"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// Verdict classifies an admission decision.
type Verdict uint8

const (
	// Accepted: the packer assigned a sketch route; the packet was injected.
	Accepted Verdict = iota
	// RejectedCost: a lightest route exists but its weight α(p) ≥ 1
	// (the Buchbinder–Naor admission threshold).
	RejectedCost
	// RejectedNoRoute: no legal sketch route (destination ray empty or
	// unreachable within pmax tiles).
	RejectedNoRoute
	// RejectedInvalid: the packet is infeasible on the grid or violates the
	// engine's arrival-order watermark. Invalid packets never touch the
	// packer.
	RejectedInvalid
	// RejectedQueueFull: the bounded admission queue was full at submission
	// time (backpressure). Queue-full packets never reach the consumer loop
	// and are absent from the decision log.
	RejectedQueueFull
)

func (v Verdict) String() string {
	switch v {
	case Accepted:
		return "accepted"
	case RejectedCost:
		return "rejected-cost"
	case RejectedNoRoute:
		return "rejected-no-route"
	case RejectedInvalid:
		return "rejected-invalid"
	case RejectedQueueFull:
		return "rejected-queue-full"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Packet is one admission attempt. Seq is the packet's position in the
// online order: in InOrder mode every sequence number from FirstSeq upward
// must be submitted exactly once, and decisions are made in Seq order
// regardless of producer interleaving. Src and Dst are copied at submission
// time, so the caller may reuse the backing slices as soon as Admit returns.
// Deadline uses the grid.Request convention: grid.InfDeadline means none.
type Packet struct {
	Seq      int
	Src      grid.Vec
	Dst      grid.Vec
	Arrival  int64
	Deadline int64
}

// PacketOf converts a request into its packet form, with Seq = r.ID.
func PacketOf(r *grid.Request) Packet {
	return Packet{Seq: r.ID, Src: r.Src, Dst: r.Dst, Arrival: r.Arrival, Deadline: r.Deadline}
}

// Decision is the engine's verdict on one packet.
type Decision struct {
	Seq     int
	Verdict Verdict
	// Cost is the weight α(p) of the lightest sketch route at decision time
	// (meaningful for Accepted and RejectedCost).
	Cost float64
	// Tiles is the number of tiles of the assigned route (Accepted only).
	Tiles int
	// Wait is the wall-clock latency from submission to decision. It is the
	// only non-deterministic Decision field: determinism tests compare
	// decisions with Wait stripped.
	Wait time.Duration
}

// Admitted reports whether the packet was injected.
func (d Decision) Admitted() bool { return d.Verdict == Accepted }

// Options configures an Engine.
type Options struct {
	// Horizon is the last simulated time step. It must be positive: a
	// streaming engine cannot derive a horizon from a workload it has not
	// seen (batch callers use spacetime.SuggestHorizon).
	Horizon int64
	// PMax is the maximum sketch-path length. It must be positive; batch
	// callers use core.PMaxDet.
	PMax int
	// TileSide is the tile side k; 0 derives ⌈log₂(1+3·pmax)⌉.
	TileSide int
	// Queue bounds the admission queue (the engine's ingress buffer);
	// 0 means DefaultQueue. Admit rejects with RejectedQueueFull when full.
	Queue int
	// ExpectPackets pre-sizes the accepted-packet arenas. Purely an
	// optimization: the arenas grow in chunks regardless.
	ExpectPackets int
	// InOrder makes the consumer loop decide packets in strictly increasing
	// Seq order, parking early arrivals — the mode that makes the decision
	// log deterministic under concurrent producers. Every Seq from FirstSeq
	// upward must then be submitted exactly once; a gap stalls later
	// packets until Drain. Off, packets are decided in queue order.
	InOrder bool
	// FirstSeq is the first sequence number in InOrder mode (default 0).
	FirstSeq int
	// RecordDecisions retains every consumer-loop decision for
	// Result.Decisions (queue-full rejections are not recorded: they never
	// reach the loop).
	RecordDecisions bool
	// DPWorkers sizes the wavefront worker pool the sketch session's
	// lightest-path DP runs on: windows above the crossover threshold relax
	// in parallel across DPWorkers bands, bit-identically to the serial
	// sweep, so every decision (and all downstream output) is independent of
	// the setting. ≤ 1 disables the pool.
	DPWorkers int
	// NoWarmStart disables incremental DP reuse between successive admits
	// (sketch.Session warm start). Warm and cold engines decide identically;
	// the switch exists for parity tests and benchmarks.
	NoWarmStart bool
	// SpecWorkers enables the speculative admission pipeline (spec.go): N
	// worker goroutines solve lightest-route queries against versioned
	// weight snapshots while a single committer validates and commits them
	// in order, re-deciding conflicted speculations inline. The decision
	// log, accepted set and all downstream output are byte-identical to the
	// serial loop at any setting. ≤ 0 keeps the serial consumer loop; 1
	// exercises the full pipeline without parallelism.
	SpecWorkers int
}

// DefaultQueue is the admission queue bound when Options.Queue is 0.
const DefaultQueue = 256

// Stats is a point-in-time snapshot of the engine's counters, safe to read
// from any goroutine while the engine runs.
type Stats struct {
	Submitted         uint64
	Accepted          uint64
	RejectedCost      uint64
	RejectedNoRoute   uint64
	RejectedInvalid   uint64
	RejectedQueueFull uint64
	// QueueLen is the number of packets waiting in the admission queue.
	QueueLen int
	// AvgWait is the mean submission-to-decision latency over decided
	// packets (queue-full rejections excluded: they are decided at the
	// gate, not by the loop).
	AvgWait time.Duration
	// Speculation counters (zero unless Options.SpecWorkers > 0).
	// Speculated counts packets through the worker stage; every one is
	// either committed as speculated (SpecCommitted) or aborted
	// (SpecAborted). SpecRetried counts inline serial re-decisions after an
	// abort (≤ SpecAborted). The abort rate is the conflict rate: raise
	// workers while SpecAborted/Speculated stays low.
	Speculated    uint64
	SpecCommitted uint64
	SpecAborted   uint64
	SpecRetried   uint64
}

// Rejected is the total over all rejection verdicts.
func (s Stats) Rejected() uint64 {
	return s.RejectedCost + s.RejectedNoRoute + s.RejectedInvalid + s.RejectedQueueFull
}

// Decided is the number of packets that reached the consumer loop and were
// decided.
func (s Stats) Decided() uint64 {
	return s.Accepted + s.RejectedCost + s.RejectedNoRoute + s.RejectedInvalid
}

// ErrClosed is returned by Admit after Drain has begun.
var ErrClosed = errors.New("engine: closed to new admissions")

// pending is the envelope of one in-flight admission: the packet (with
// engine-owned coordinate copies), the submission timestamp and a reply
// channel. Envelopes are pooled; ownership passes submit → loop → submitter,
// and only the submitter returns one to the pool (after consuming the
// reply), so a reply can never leak into a recycled envelope.
type pending struct {
	pkt      Packet
	src, dst []int
	enq      time.Time
	reply    chan Decision
}

// Engine is a long-lived streaming admission core. Create with New, submit
// with Admit from any number of goroutines, stop with Drain, collect with
// Finish.
type Engine struct {
	g       *grid.Grid
	st      *spacetime.Graph
	tl      *tiling.Tiling
	sk      *sketch.Graph
	sess    *sketch.Session
	pk      *ipp.Packer
	dpPool  *lattice.Pool
	horizon int64
	pmax    int
	k       int
	d       int

	inOrder bool
	record  bool

	in   chan *pending
	done chan struct{}
	mu   sync.RWMutex // guards closed against concurrent Admit/Drain
	shut bool

	pool sync.Pool

	// Consumer-loop state (owned by the loop goroutine — the committer, in
	// spec mode; read by Finish only after done is closed).
	nextSeq   int
	parked    map[int]*pending
	watermark int64
	srcBuf    []int
	scratch   sketch.Route
	admitted  []detroute.Admitted
	decisions []Decision
	arena     arena

	// Speculative pipeline state (spec.go); inert when specWorkers ≤ 0.
	// specMu orders the committer's weight mutations against worker snapshot
	// reads: Offer commits take the write lock, SnapshotWindow the read lock.
	specWorkers int
	specMu      sync.RWMutex
	specIn      chan *speculation
	specOut     chan *speculation
	specWg      sync.WaitGroup
	specPool    sync.Pool
	parkedSpecs map[int]*speculation
	journal     specJournal
	tileBuf     []int

	submitted  atomic.Uint64
	accepted   atomic.Uint64
	rejCost    atomic.Uint64
	rejNoRoute atomic.Uint64
	rejInvalid atomic.Uint64
	rejQFull   atomic.Uint64
	decided    atomic.Uint64
	waitNs     atomic.Int64

	speculated    atomic.Uint64
	specCommitted atomic.Uint64
	specAborted   atomic.Uint64
	specRetried   atomic.Uint64

	finishOnce sync.Once
	result     *Result
}

// New builds the engine's persistent routing state — space-time graph,
// tiling, sketch, one query session, one dense packer, exactly as the batch
// deterministic algorithm does — and starts the consumer loop.
func New(g *grid.Grid, opts Options) (*Engine, error) {
	if g.B != 0 && (g.B < 3 || g.C < 3) {
		return nil, fmt.Errorf("engine: deterministic admission requires B, c ≥ 3 (or B = 0, c ≥ 3); got B=%d c=%d", g.B, g.C)
	}
	if g.B == 0 && g.C < 3 {
		return nil, fmt.Errorf("engine: bufferless variant requires c ≥ 3; got c=%d", g.C)
	}
	if opts.Horizon <= 0 {
		return nil, errors.New("engine: Options.Horizon must be positive (use spacetime.SuggestHorizon for batch workloads)")
	}
	if opts.PMax <= 0 {
		return nil, errors.New("engine: Options.PMax must be positive (use core.PMaxDet for the paper's bound)")
	}
	k := opts.TileSide
	if k == 0 {
		k = ipp.K(opts.PMax)
	}
	queue := opts.Queue
	if queue <= 0 {
		queue = DefaultQueue
	}

	st := spacetime.New(g, opts.Horizon)
	d := g.D()
	side := make([]int, d+1)
	phase := make([]int, d+1)
	for i := range side {
		side[i] = k
	}
	tl := tiling.New(st.Box, side, phase)
	sk := sketch.New(st, tl, sketch.Downscaled)
	// Splitting tiles doubles path length plus one (Sec. 5.1); dense mode,
	// same as the batch path.
	pk := ipp.NewDense(2*opts.PMax+1, sk.Cap, sk.Universe())

	e := &Engine{
		g: g, st: st, tl: tl, sk: sk, sess: sk.NewSession(), pk: pk,
		horizon: opts.Horizon, pmax: opts.PMax, k: k, d: d,
		inOrder: opts.InOrder, record: opts.RecordDecisions,
		in:        make(chan *pending, queue),
		done:      make(chan struct{}),
		nextSeq:   opts.FirstSeq,
		watermark: math.MinInt64,
		srcBuf:    make([]int, d+1),
	}
	if opts.InOrder {
		e.parked = make(map[int]*pending)
	}
	if opts.DPWorkers > 1 {
		e.dpPool = lattice.NewPool(opts.DPWorkers)
		e.sess.SetDPPool(e.dpPool)
	}
	if opts.NoWarmStart {
		e.sess.SetWarmStart(false)
	}
	e.pool.New = func() any {
		return &pending{
			src:   make([]int, 0, d),
			dst:   make([]int, 0, d),
			reply: make(chan Decision, 1),
		}
	}
	e.arena.init(opts.ExpectPackets)
	if opts.ExpectPackets > 0 {
		e.admitted = make([]detroute.Admitted, 0, opts.ExpectPackets)
	}
	if opts.SpecWorkers > 0 {
		e.specWorkers = opts.SpecWorkers
		e.startSpec(queue)
	} else {
		go e.loop()
	}
	return e, nil
}

// Grid returns the engine's grid.
func (e *Engine) Grid() *grid.Grid { return e.g }

// Params returns the engine's resolved (horizon, pmax, k).
func (e *Engine) Params() (horizon int64, pmax, k int) { return e.horizon, e.pmax, e.k }

// Admit submits one packet and blocks until the engine decides it, the
// bounded queue rejects it, or ctx is done. It is safe to call from any
// number of goroutines. After Drain has begun it returns ErrClosed.
//
// On ctx cancellation the packet may still be decided (and, if accepted,
// routed) later: cancellation abandons the wait, not the submission.
func (e *Engine) Admit(ctx context.Context, pkt Packet) (Decision, error) {
	p := e.pool.Get().(*pending)
	p.pkt = pkt
	p.src = append(p.src[:0], pkt.Src...)
	p.dst = append(p.dst[:0], pkt.Dst...)
	p.pkt.Src = p.src
	p.pkt.Dst = p.dst
	p.enq = time.Now()

	// The closed flag and the channel send sit under a read lock so Drain's
	// close(e.in) (under the write lock) cannot race a send.
	e.mu.RLock()
	if e.shut {
		e.mu.RUnlock()
		e.pool.Put(p)
		return Decision{}, ErrClosed
	}
	select {
	case e.in <- p:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		e.pool.Put(p)
		e.submitted.Add(1)
		e.rejQFull.Add(1)
		return Decision{Seq: pkt.Seq, Verdict: RejectedQueueFull}, nil
	}
	e.submitted.Add(1)

	select {
	case d := <-p.reply:
		e.pool.Put(p)
		return d, nil
	case <-ctx.Done():
		// The loop still owns p and will deliver into the buffered reply;
		// the envelope is simply dropped from the pool.
		return Decision{}, ctx.Err()
	}
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Submitted:         e.submitted.Load(),
		Accepted:          e.accepted.Load(),
		RejectedCost:      e.rejCost.Load(),
		RejectedNoRoute:   e.rejNoRoute.Load(),
		RejectedInvalid:   e.rejInvalid.Load(),
		RejectedQueueFull: e.rejQFull.Load(),
		QueueLen:          len(e.in),
		Speculated:        e.speculated.Load(),
		SpecCommitted:     e.specCommitted.Load(),
		SpecAborted:       e.specAborted.Load(),
		SpecRetried:       e.specRetried.Load(),
	}
	if n := e.decided.Load(); n > 0 {
		s.AvgWait = time.Duration(e.waitNs.Load() / int64(n))
	}
	return s
}

// loop is the single consumer: it owns every piece of mutable routing state
// and decides packets strictly one at a time.
func (e *Engine) loop() {
	defer close(e.done)
	for p := range e.in {
		if e.inOrder {
			e.processOrdered(p)
		} else {
			e.process(p)
		}
	}
	e.flushParked()
}

func (e *Engine) processOrdered(p *pending) {
	if p.pkt.Seq != e.nextSeq {
		e.parked[p.pkt.Seq] = p
		return
	}
	e.process(p)
	e.nextSeq++
	for {
		q, ok := e.parked[e.nextSeq]
		if !ok {
			return
		}
		delete(e.parked, e.nextSeq)
		e.process(q)
		e.nextSeq++
	}
}

// flushParked decides leftover parked packets at drain time in Seq order
// (their gap seqs were never submitted).
func (e *Engine) flushParked() {
	if len(e.parked) == 0 {
		return
	}
	seqs := make([]int, 0, len(e.parked))
	for s := range e.parked {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	for _, s := range seqs {
		p := e.parked[s]
		delete(e.parked, s)
		e.process(p)
	}
}

func (e *Engine) process(p *pending) {
	d := e.decide(&p.pkt)
	d.Wait = time.Since(p.enq)
	e.count(d)
	if e.record {
		e.decisions = append(e.decisions, d)
	}
	p.reply <- d
}

// decide is the warm admit path: one sketch lightest-route query plus one
// packer offer, mirroring the batch loop body of the deterministic
// algorithm. It is allocation-free in steady state.
func (e *Engine) decide(pkt *Packet) Decision {
	d := Decision{Seq: pkt.Seq}
	r := grid.Request{ID: pkt.Seq, Src: pkt.Src, Dst: pkt.Dst, Arrival: pkt.Arrival, Deadline: pkt.Deadline}
	// Validity gate: infeasible or out-of-order packets never touch the
	// packer, so a pre-validated batch stream sees the exact Offer sequence
	// of the batch algorithm.
	if pkt.Arrival < e.watermark || !r.Feasible(e.g) {
		d.Verdict = RejectedInvalid
		return d
	}
	e.watermark = pkt.Arrival

	src := e.st.ToLattice(r.Src, r.Arrival, e.srcBuf)
	wLo, wHi := e.st.DestRay(&r)
	if e.g.B == 0 {
		// Bufferless: the only reachable copy shares the source's w.
		wLo, wHi = src[e.d], src[e.d]
	}
	if !e.sess.LightestRouteInto(e.pk, src, r.Dst, wLo, wHi, e.pmax, &e.scratch) {
		e.pk.Offer(nil, 0)
		d.Verdict = RejectedNoRoute
		return d
	}
	d.Cost = e.scratch.Cost
	d.Tiles = e.scratch.NumTiles()
	if !e.offerPath(e.scratch.Edges, e.scratch.Cost) {
		d.Verdict = RejectedCost
		return d
	}
	d.Verdict = Accepted
	e.admitted = append(e.admitted, e.arena.retain(&r, &e.scratch))
	return d
}

func (e *Engine) count(d Decision) {
	switch d.Verdict {
	case Accepted:
		e.accepted.Add(1)
	case RejectedCost:
		e.rejCost.Add(1)
	case RejectedNoRoute:
		e.rejNoRoute.Add(1)
	default:
		e.rejInvalid.Add(1)
	}
	e.waitNs.Add(int64(d.Wait))
	e.decided.Add(1)
}
