package engine

import "gridroute/internal/grid"

// ShedPolicy configures graceful overload degradation. With a policy set the
// consumer loop watches its own queue occupancy and, under sustained
// pressure, degrades in two ways instead of letting latency (and the
// queue-full rate) spike:
//
//   - Deadline-aware early shedding: while the queue sits at or above the
//     HighWater mark, packets whose deadline slack (Deadline − Arrival) is
//     below MinSlack are shed before the route DP runs — they would queue
//     past their slack anyway, so the engine spends no work on them.
//
//   - Adaptive threshold tightening: after TightenAfter consecutive
//     pressured decisions the admission threshold τ walks down from 1 by
//     TightenStep per decision (never below Floor), shedding routable
//     packets whose cost lands in [τ, 1) — the marginal admissions that
//     contribute the least headroom per unit of work. When pressure clears,
//     τ walks back up to 1 at the same rate.
//
// Shed decisions carry the Shed verdict, appear in the decision log and
// advance the arrival watermark, but never mutate packer weights. Shedding
// makes decisions depend on live queue pressure, so it is off by default and
// chaos/overload runs are excluded from the byte-determinism gates (the
// accounting invariant Submitted = Decided + Shed + RejectedQueueFull is
// gated instead).
type ShedPolicy struct {
	// HighWater is the queue-occupancy fraction in (0, 1] at or above which
	// the engine counts itself pressured. 0 means DefaultShedHighWater.
	HighWater float64
	// MinSlack enables deadline-aware early shedding while pressured.
	// 0 disables it.
	MinSlack int64
	// TightenAfter is how many consecutive pressured decisions are
	// tolerated before tightening starts. 0 means DefaultShedTightenAfter.
	TightenAfter int
	// TightenStep is the per-decision τ decrement while tightening (and the
	// recovery increment while unpressured). 0 means DefaultShedTightenStep.
	TightenStep float64
	// Floor is the lowest τ tightening can reach, in (0, 1].
	// 0 means DefaultShedFloor.
	Floor float64
}

// Shed-policy defaults.
const (
	DefaultShedHighWater    = 0.75
	DefaultShedTightenAfter = 64
	DefaultShedTightenStep  = 1.0 / 256
	DefaultShedFloor        = 0.5
)

// shedState is the consumer-owned runtime state of a ShedPolicy.
type shedState struct {
	highWater    int // queue length at/above which the engine is pressured
	minSlack     int64
	tightenAfter int
	step         float64
	floor        float64

	streak int     // consecutive pressured decisions
	tau    float64 // current admission threshold, in [floor, 1]
}

// state resolves the policy's defaults against the engine's queue bound.
func (p *ShedPolicy) state(queue int) *shedState {
	hw := p.HighWater
	if hw <= 0 {
		hw = DefaultShedHighWater
	}
	if hw > 1 {
		hw = 1
	}
	high := int(hw * float64(queue))
	if high < 1 {
		high = 1
	}
	ta := p.TightenAfter
	if ta <= 0 {
		ta = DefaultShedTightenAfter
	}
	step := p.TightenStep
	if step <= 0 {
		step = DefaultShedTightenStep
	}
	floor := p.Floor
	if floor <= 0 {
		floor = DefaultShedFloor
	}
	if floor > 1 {
		floor = 1
	}
	return &shedState{
		highWater: high, minSlack: p.MinSlack,
		tightenAfter: ta, step: step, floor: floor, tau: 1,
	}
}

// shedPre runs once per decision, before the route query: it updates the
// pressure streak and threshold, and reports whether the packet should be
// shed outright (deadline-aware early shed). Consumer-loop only.
func (e *Engine) shedPre(pkt *Packet) bool {
	s := e.shed
	if len(e.in) >= s.highWater {
		s.streak++
		if s.streak > s.tightenAfter && s.tau > s.floor {
			s.tau -= s.step
			if s.tau < s.floor {
				s.tau = s.floor
			}
		}
		if s.minSlack > 0 && pkt.Deadline != grid.InfDeadline && pkt.Deadline-pkt.Arrival < s.minSlack {
			return true
		}
	} else {
		s.streak = 0
		if s.tau < 1 {
			s.tau += s.step
			if s.tau > 1 {
				s.tau = 1
			}
		}
	}
	return false
}

// shedPost reports whether a routable packet's cost clears the paper's
// α(p) < 1 admission threshold but not the tightened one.
func (e *Engine) shedPost(cost float64) bool {
	return e.shed.tau < 1 && cost < 1 && cost >= e.shed.tau
}
