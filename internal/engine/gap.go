package engine

import (
	"fmt"
	"time"
)

// GapError reports that the InOrder consumer waited Options.GapTimeout
// without receiving the next expected sequence number while later packets
// sat parked behind the gap. The engine does not stall: it resumes at the
// smallest parked sequence (every seq in [Missing, SkippedTo) is missing)
// and records the error for Engine.Err.
type GapError struct {
	// Missing is the first sequence number that never arrived.
	Missing int
	// SkippedTo is the sequence number the loop resumed at.
	SkippedTo int
	// Parked is how many packets were parked behind the gap when it broke.
	Parked int
	// Waited is the configured GapTimeout.
	Waited time.Duration
}

func (e *GapError) Error() string {
	return fmt.Sprintf("engine: in-order gap: seq %d missing for %s (%d parked; resumed at seq %d)",
		e.Missing, e.Waited, e.Parked, e.SkippedTo)
}

// gapWatch is the watchdog timer state shared by the serial loop and the
// speculative committer. The timer is (re)armed only when the stuck sequence
// number changes, so it measures "no progress past nextSeq for GapTimeout" —
// not "no arrivals for GapTimeout" — and a slow but progressing stream never
// fires it.
type gapWatch struct {
	timer    *time.Timer
	armed    bool
	armedSeq int
}

func (w *gapWatch) arm(d time.Duration, nextSeq int) {
	if w.armed && w.armedSeq == nextSeq {
		return // clock already running against this gap
	}
	if w.timer == nil {
		w.timer = time.NewTimer(d)
	} else {
		if !w.timer.Stop() {
			select {
			case <-w.timer.C:
			default:
			}
		}
		w.timer.Reset(d)
	}
	w.armed, w.armedSeq = true, nextSeq
}

// breakGap resolves a timed-out InOrder gap in the serial loop: record the
// typed error, advance to the smallest parked seq and process the contiguous
// run behind it.
func (e *Engine) breakGap() {
	min, ok := minParkedKey(e.parked)
	if !ok {
		return
	}
	e.setErr(&GapError{Missing: e.nextSeq, SkippedTo: min, Parked: len(e.parked), Waited: e.gapTimeout})
	e.nextSeq = min
	p := e.parked[min]
	delete(e.parked, min)
	e.processOrdered(p)
}

// breakSpecGap is breakGap for the speculative committer's parked set.
func (e *Engine) breakSpecGap() {
	min, ok := minParkedKey(e.parkedSpecs)
	if !ok {
		return
	}
	e.setErr(&GapError{Missing: e.nextSeq, SkippedTo: min, Parked: len(e.parkedSpecs), Waited: e.gapTimeout})
	e.nextSeq = min
	sp := e.parkedSpecs[min]
	delete(e.parkedSpecs, min)
	e.commitOrdered(sp)
}

func minParkedKey[V any](m map[int]V) (int, bool) {
	min, ok := 0, false
	for s := range m {
		if !ok || s < min {
			min, ok = s, true
		}
	}
	return min, ok
}
