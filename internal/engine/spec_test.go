package engine_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"gridroute/internal/engine"
	"gridroute/internal/grid"
)

// TestEngineSpecWorkersDeterminism is the -race gate of the speculative
// pipeline: 8 producer goroutines submit a strided partition into an InOrder
// engine at every pipeline width, and the decision log must be identical to
// the serial-loop single-producer baseline — packet by packet, verdict by
// verdict, cost by cost. SpecWorkers=1 exercises the full
// dispatch/speculate/validate/commit machinery without parallelism;
// 2 and 8 add real worker races over the shared weight state.
func TestEngineSpecWorkersDeterminism(t *testing.T) {
	g, reqs, opts := workload(t, 48, 200, 96, 7)
	opts.InOrder = true
	opts.RecordDecisions = true

	_, seqRes := stream(t, g, reqs, opts)
	want := stripWait(seqRes.Decisions)
	if len(want) != len(reqs) {
		t.Fatalf("baseline recorded %d decisions for %d packets", len(want), len(reqs))
	}

	const producers = 8
	for _, workers := range []int{1, 2, 8} {
		sopts := opts
		sopts.SpecWorkers = workers
		eng, err := engine.New(g, sopts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := p; i < len(reqs); i += producers {
					if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
						t.Errorf("producer %d admit %d: %v", p, i, err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		if err := eng.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, stripWait(res.Decisions)) {
			t.Fatalf("SpecWorkers=%d: decision log diverges from serial baseline", workers)
		}
		if res.Throughput != seqRes.Throughput || res.MaxLoad != seqRes.MaxLoad ||
			res.PrimalValue != seqRes.PrimalValue || len(res.Admitted) != len(seqRes.Admitted) {
			t.Fatalf("SpecWorkers=%d: result diverges (throughput %d vs %d)", workers, res.Throughput, seqRes.Throughput)
		}
		s := res.Stats
		if s.Speculated != s.SpecCommitted+s.SpecAborted {
			t.Fatalf("SpecWorkers=%d: speculation accounting leak: %d speculated != %d committed + %d aborted",
				workers, s.Speculated, s.SpecCommitted, s.SpecAborted)
		}
		if s.SpecRetried > s.SpecAborted {
			t.Fatalf("SpecWorkers=%d: retried %d > aborted %d", workers, s.SpecRetried, s.SpecAborted)
		}
		if s.Speculated != uint64(len(reqs)) {
			t.Fatalf("SpecWorkers=%d: %d speculated for %d packets", workers, s.Speculated, len(reqs))
		}
	}
}

// TestEngineSpecConflictStorm is the adversarial case: every speculation
// except the first is taken against a snapshot the committer then dirties,
// so all of them must abort, be retried inline exactly once, and still
// produce the serial decision log. N identical packets share one DP window;
// seqs 1..N−1 are submitted first into an InOrder engine, parked until seq 0
// arrives, and speculated while the packer is still at version 0. Seq 0's
// accept then invalidates every one of them.
func TestEngineSpecConflictStorm(t *testing.T) {
	g := grid.Line(32, 3, 3)
	const n = 24
	mk := func(seq int) engine.Packet {
		return engine.Packet{Seq: seq, Src: grid.Vec{4}, Dst: grid.Vec{20}, Arrival: 0, Deadline: grid.InfDeadline}
	}
	opts := engine.Options{
		Horizon: 64, PMax: 40, Queue: 2 * n,
		InOrder: true, RecordDecisions: true,
	}

	// Serial baseline.
	serial, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := serial.Admit(ctx, mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := serial.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	serialRes, err := serial.Finish()
	if err != nil {
		t.Fatal(err)
	}

	sopts := opts
	sopts.SpecWorkers = 4
	eng, err := engine.New(g, sopts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eng.Admit(ctx, mk(i)); err != nil {
				t.Errorf("admit %d: %v", i, err)
			}
		}(i)
	}
	// Wait until every gap packet has been speculated (at packer version 0:
	// nothing can commit while seq 0 is missing) before releasing seq 0.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().Speculated < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d speculations completed", eng.Stats().Speculated, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := eng.Admit(ctx, mk(0)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(stripWait(serialRes.Decisions), stripWait(res.Decisions)) {
		t.Fatal("conflict-storm decision log diverges from serial baseline")
	}
	s := res.Stats
	if s.Speculated != n {
		t.Fatalf("%d speculated for %d packets", s.Speculated, n)
	}
	// Seq 0 committed an accept at version 1; every parked speculation was
	// taken at version 0 over the same window, so all n−1 must abort and be
	// retried exactly once — bounded retries, not livelock.
	if s.SpecAborted != n-1 || s.SpecRetried != n-1 {
		t.Fatalf("expected exactly %d aborts and retries, got aborted=%d retried=%d", n-1, s.SpecAborted, s.SpecRetried)
	}
	if s.SpecCommitted != 1 {
		t.Fatalf("expected exactly 1 clean commit (seq 0), got %d", s.SpecCommitted)
	}
	if res.Stats.Accepted == 0 {
		t.Fatal("storm admitted nothing; the conflict path was not exercised")
	}
}

// TestEngineSpecDrainLeak races Drain against producers mid-flight, at every
// consumer topology, and checks the envelope ownership handoff never leaks:
// every Admit call returns (a decision, queue-full, or ErrClosed — never a
// hang), every submitted envelope is decided exactly once, and the engine
// still finishes cleanly.
func TestEngineSpecDrainLeak(t *testing.T) {
	for _, workers := range []int{0, 4} {
		g, reqs, opts := workload(t, 48, 600, 128, 21)
		opts.Queue = 8
		opts.SpecWorkers = workers

		eng, err := engine.New(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		const producers = 8
		var closed sync.WaitGroup
		var submitted, refused uint64
		var mu sync.Mutex
		for p := 0; p < producers; p++ {
			closed.Add(1)
			go func(p int) {
				defer closed.Done()
				var sub, ref uint64
				for i := p; i < len(reqs); i += producers {
					_, err := eng.Admit(ctx, engine.PacketOf(&reqs[i]))
					if err == engine.ErrClosed {
						ref++
						continue
					}
					if err != nil {
						t.Errorf("admit: %v", err)
						return
					}
					sub++
				}
				mu.Lock()
				submitted += sub
				refused += ref
				mu.Unlock()
			}(p)
		}
		// Drain while producers are still submitting.
		time.Sleep(2 * time.Millisecond)
		if err := eng.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		closed.Wait()
		if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[0])); err != engine.ErrClosed {
			t.Fatalf("SpecWorkers=%d: Admit after Drain: %v", workers, err)
		}
		res, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.Submitted != submitted {
			t.Fatalf("SpecWorkers=%d: engine counted %d submissions, producers made %d", workers, s.Submitted, submitted)
		}
		if s.Decided()+s.RejectedQueueFull != s.Submitted {
			t.Fatalf("SpecWorkers=%d: envelope leak: decided %d + bounced %d != submitted %d",
				workers, s.Decided(), s.RejectedQueueFull, s.Submitted)
		}
		if submitted+refused != uint64(len(reqs)) {
			t.Fatalf("SpecWorkers=%d: producers lost calls: %d + %d != %d", workers, submitted, refused, len(reqs))
		}
		if workers > 0 && s.Speculated != s.SpecCommitted+s.SpecAborted {
			t.Fatalf("SpecWorkers=%d: speculation accounting leak: %+v", workers, s)
		}
	}
}
