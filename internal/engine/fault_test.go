package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridroute/internal/engine"
	"gridroute/internal/fault"
	"gridroute/internal/grid"
)

// chaosFeed drives reqs through the engine with P strided producers that
// honor the producer-side fault hooks (stalls) and retry queue-full
// rejections until the packet lands — the harness the fault-determinism
// tests rely on: every seq is eventually decided exactly once, whatever the
// schedule bounced or delayed.
func chaosFeed(t *testing.T, eng *engine.Engine, inj *fault.Injector, reqs []grid.Request, producers int) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(reqs); i += producers {
				if d := inj.StallBefore(reqs[i].ID); d > 0 {
					time.Sleep(d)
				}
				pkt := engine.PacketOf(&reqs[i])
				for {
					dec, err := eng.Admit(ctx, pkt)
					if err != nil {
						t.Errorf("producer %d admit %d: %v", p, i, err)
						return
					}
					if dec.Verdict != engine.RejectedQueueFull {
						break
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(p)
	}
	wg.Wait()
}

func finishEngine(t *testing.T, eng *engine.Engine) *engine.Result {
	t.Helper()
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineFaultStormDeterminism is the chaos gate: a schedule of
// queue-full storms, producer stalls and consumer pauses — injected into a
// 4-producer run, serial and speculative — must leave the decision log
// byte-identical to the undisturbed single-producer baseline. Faults shake
// timing; they must never shake decisions.
func TestEngineFaultStormDeterminism(t *testing.T) {
	g, reqs, opts := workload(t, 48, 200, 96, 7)
	opts.InOrder = true
	opts.RecordDecisions = true

	_, ref := stream(t, g, reqs, opts)
	want := stripWait(ref.Decisions)

	sched, err := fault.Parse("storm(seq=40,n=30,count=2);stall(seq=10,n=4,dur=300us);pause(seq=100,n=3,dur=200us)")
	if err != nil {
		t.Fatal(err)
	}
	for _, specWorkers := range []int{0, 2} {
		t.Run(fmt.Sprintf("spec-workers-%d", specWorkers), func(t *testing.T) {
			copts := opts
			copts.SpecWorkers = specWorkers
			copts.Injector = fault.NewInjector(sched)
			eng, err := engine.New(g, copts)
			if err != nil {
				t.Fatal(err)
			}
			chaosFeed(t, eng, copts.Injector, reqs, 4)
			res := finishEngine(t, eng)
			if !reflect.DeepEqual(want, stripWait(res.Decisions)) {
				t.Fatal("decision log diverges under fault injection")
			}
			s := res.Stats
			if s.RejectedQueueFull == 0 {
				t.Fatal("storm injected no queue-full bounces")
			}
			// Every storm bounce was resubmitted, so Submitted exceeds the
			// stream length by exactly the bounce count.
			if s.Decided()+s.Shed+s.RejectedQueueFull != s.Submitted {
				t.Fatalf("accounting leak: decided %d + shed %d + bounced %d != submitted %d",
					s.Decided(), s.Shed, s.RejectedQueueFull, s.Submitted)
			}
			if s.Decided() != uint64(len(reqs)) {
				t.Fatalf("decided %d packets, stream has %d", s.Decided(), len(reqs))
			}
		})
	}
}

// TestEngineOutageDeterminism checks resource-outage masking: with central
// nodes of the line failed for the whole run, decisions (a) change versus
// the healthy baseline, (b) stay identical across producer counts and
// speculation settings — the mask depends only on packet arrival times.
func TestEngineOutageDeterminism(t *testing.T) {
	g, reqs, opts := workload(t, 48, 200, 96, 7)
	opts.InOrder = true
	opts.RecordDecisions = true

	_, healthy := stream(t, g, reqs, opts)

	sched, err := fault.Parse("outage(node=23,t=0-96);outage(node=24,t=0-96);outage(node=25,t=0-96)")
	if err != nil {
		t.Fatal(err)
	}
	var want []engine.Decision
	for _, cfg := range []struct{ producers, specWorkers int }{{1, 0}, {8, 0}, {8, 2}} {
		copts := opts
		copts.SpecWorkers = cfg.specWorkers
		copts.Injector = fault.NewInjector(sched)
		eng, err := engine.New(g, copts)
		if err != nil {
			t.Fatal(err)
		}
		chaosFeed(t, eng, copts.Injector, reqs, cfg.producers)
		res := finishEngine(t, eng)
		got := stripWait(res.Decisions)
		if want == nil {
			want = got
			if reflect.DeepEqual(stripWait(healthy.Decisions), got) {
				t.Fatal("outage schedule changed nothing; mask is not reaching the route query")
			}
			if res.Stats.Accepted >= healthy.Stats.Accepted {
				t.Fatalf("outage did not reduce admissions: %d with, %d without", res.Stats.Accepted, healthy.Stats.Accepted)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("masked decisions depend on run shape (%d producers, %d spec workers)", cfg.producers, cfg.specWorkers)
		}
	}
}

// TestEngineGapWatchdog pins satellite 1: with GapTimeout set, a missing
// sequence number stalls the InOrder consumer only for the timeout, then the
// gap is skipped, the parked packets are decided, and the typed GapError
// names the missing seq.
func TestEngineGapWatchdog(t *testing.T) {
	g, reqs, opts := workload(t, 32, 6, 32, 5)
	opts.InOrder = true
	opts.RecordDecisions = true
	opts.GapTimeout = 30 * time.Millisecond

	for _, specWorkers := range []int{0, 2} {
		t.Run(fmt.Sprintf("spec-workers-%d", specWorkers), func(t *testing.T) {
			copts := opts
			copts.SpecWorkers = specWorkers
			eng, err := engine.New(g, copts)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for i := 0; i < 2; i++ {
				if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
					t.Fatalf("admit %d: %v", i, err)
				}
			}
			// Seq 2 never arrives; 3..5 park behind the gap until the
			// watchdog breaks it. Their Admit calls block for the decision,
			// so they run concurrently.
			start := time.Now()
			var wg sync.WaitGroup
			for i := 3; i < len(reqs); i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
						t.Errorf("admit %d: %v", i, err)
					}
				}(i)
			}
			wg.Wait()
			if waited := time.Since(start); waited < copts.GapTimeout {
				t.Fatalf("parked packets decided after %s, before the %s watchdog", waited, copts.GapTimeout)
			}
			res := finishEngine(t, eng)
			var gap *engine.GapError
			if err := eng.Err(); !errors.As(err, &gap) {
				t.Fatalf("Err() = %v, want a *GapError", err)
			}
			if gap.Missing != 2 || gap.SkippedTo != 3 {
				t.Fatalf("gap names seq %d (resumed %d), want 2 (resumed 3): %v", gap.Missing, gap.SkippedTo, gap)
			}
			if len(res.Decisions) != len(reqs)-1 {
				t.Fatalf("decided %d packets, want %d (all but the missing seq)", len(res.Decisions), len(reqs)-1)
			}
			for _, d := range res.Decisions {
				if d.Seq == 2 {
					t.Fatal("a decision exists for the never-submitted seq")
				}
			}
		})
	}
}

// TestEngineAdmitCancelAbandon pins satellite 2: a submitter whose context
// dies mid-Admit walks away with ctx.Err(), while the consumer still decides
// the packet (it was already queued) and reclaims the pooled envelope — no
// decision is lost and nothing leaks.
func TestEngineAdmitCancelAbandon(t *testing.T) {
	g, reqs, opts := workload(t, 32, 40, 32, 5)
	opts.InOrder = true
	opts.RecordDecisions = true
	// Pin the consumer on seq 0 long enough for the cancel to land first.
	sched, err := fault.Parse("pause(seq=0,n=1,dur=80ms)")
	if err != nil {
		t.Fatal(err)
	}
	opts.Injector = fault.NewInjector(sched)
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := eng.Admit(cctx, engine.PacketOf(&reqs[0])); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Admit returned %v, want context.Canceled", err)
	}
	ctx := context.Background()
	for i := 1; i < len(reqs); i++ {
		if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	res := finishEngine(t, eng)
	if len(res.Decisions) != len(reqs) {
		t.Fatalf("decided %d packets, want %d — the abandoned packet must still be decided", len(res.Decisions), len(reqs))
	}
	if res.Decisions[0].Seq != 0 {
		t.Fatalf("first decision is seq %d, want the abandoned seq 0", res.Decisions[0].Seq)
	}
	s := res.Stats
	if s.Decided() != s.Submitted {
		t.Fatalf("abandoned packet unaccounted: decided %d != submitted %d", s.Decided(), s.Submitted)
	}
}

// TestEngineShedOverload drives a slow consumer far past its queue and
// checks graceful degradation: the shed policy drops load (Shed > 0), the
// run terminates without deadlock, and every submission is accounted for
// exactly once across decided + shed + queue-full.
func TestEngineShedOverload(t *testing.T) {
	g, reqs, opts := workload(t, 48, 600, 192, 11)
	opts.InOrder = true
	opts.Queue = 8
	opts.Shed = &engine.ShedPolicy{HighWater: 0.25, TightenAfter: 4, TightenStep: 1.0 / 32, MinSlack: 4}
	// Every decision pays a small injected pause, so 4 producers overrun the
	// 8-slot queue immediately and hold it at the high-water mark.
	sched, err := fault.Parse("pause(seq=0,n=600,dur=100us)")
	if err != nil {
		t.Fatal(err)
	}
	opts.Injector = fault.NewInjector(sched)
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	chaosFeed(t, eng, opts.Injector, reqs, 4)
	res := finishEngine(t, eng)
	s := res.Stats
	if s.Shed == 0 {
		t.Fatal("overload run shed nothing")
	}
	if s.Decided()+s.Shed+s.RejectedQueueFull != s.Submitted {
		t.Fatalf("accounting leak: decided %d + shed %d + bounced %d != submitted %d",
			s.Decided(), s.Shed, s.RejectedQueueFull, s.Submitted)
	}
	if s.Decided()+s.Shed != uint64(len(reqs)) {
		t.Fatalf("stream coverage: decided %d + shed %d != %d packets", s.Decided(), s.Shed, len(reqs))
	}
}

// TestEngineStatsSnapshotCoherence hammers Stats() while producers and the
// speculative pipeline run, asserting the documented monotone-pair
// invariants hold for every snapshot — the contract that makes lock-free
// snapshot tearing benign.
func TestEngineStatsSnapshotCoherence(t *testing.T) {
	g, reqs, opts := workload(t, 48, 400, 128, 13)
	opts.InOrder = true
	opts.Queue = 16
	opts.SpecWorkers = 2
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var violations atomic.Uint64
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := eng.Stats()
			if s.Decided()+s.Shed+s.RejectedQueueFull > s.Submitted {
				violations.Add(1)
				t.Errorf("snapshot tearing: decided %d + shed %d + queue-full %d > submitted %d",
					s.Decided(), s.Shed, s.RejectedQueueFull, s.Submitted)
				return
			}
			if s.SpecCommitted+s.SpecAborted > s.Speculated || s.Speculated > s.Submitted {
				violations.Add(1)
				t.Errorf("snapshot tearing: spec %d+%d vs speculated %d vs submitted %d",
					s.SpecCommitted, s.SpecAborted, s.Speculated, s.Submitted)
				return
			}
		}
	}()
	chaosFeed(t, eng, nil, reqs, 4)
	res := finishEngine(t, eng)
	close(stop)
	hammer.Wait()
	s := res.Stats
	if s.Decided()+s.Shed+s.RejectedQueueFull != s.Submitted {
		t.Fatalf("final snapshot unbalanced: %+v", s)
	}
	if s.Speculated != s.SpecCommitted+s.SpecAborted {
		t.Fatalf("final spec counters unbalanced: %+v", s)
	}
}
