package engine

import (
	"errors"
	"fmt"
	"io"
	"os"

	"gridroute/internal/engine/wal"
	"gridroute/internal/grid"
	"gridroute/internal/sketch"
)

// ErrWALMismatch is returned (wrapped, with details) by Recover when the
// log's header parameters do not describe the engine being rebuilt.
var ErrWALMismatch = errors.New("engine: WAL parameters do not match engine options")

// Recovery summarizes a WAL replay.
type Recovery struct {
	// Decisions is the number of logged decisions replayed into the engine.
	Decisions int
	// NextSeq is the first sequence number the recovered engine expects;
	// producers resume submission there.
	NextSeq int
	// Truncated is the number of torn/corrupt tail bytes dropped from the
	// log before appending resumes (0 for a cleanly-closed log). The
	// decisions a dropped tail held are re-decided deterministically when
	// the stream is resubmitted, so the merged decision log is unchanged.
	Truncated int64
}

// Recover rebuilds an engine from the write-ahead log at opts.WALPath and
// starts it. The logged prefix is replayed decision by decision — rebuilding
// the IPP weights, the arrival watermark, the accepted-packet arenas and the
// next expected sequence number exactly as the original run built them — so
// the restarted engine's subsequent decisions are byte-identical to the
// uninterrupted run's. A torn or corrupt tail (the expected shape after a
// crash, since fsync is batched) is truncated and re-decided; any other
// error aborts. The surviving log is reopened for appending, so a recovered
// engine keeps journaling.
//
// Producers must resubmit the stream starting at Recovery.NextSeq (packets
// below it are already decided; in InOrder mode resubmitting them would park
// forever).
func Recover(g *grid.Grid, opts Options) (*Engine, Recovery, error) {
	if opts.WALPath == "" {
		return nil, Recovery{}, errors.New("engine: Recover requires Options.WALPath")
	}
	e, err := newEngine(g, opts)
	if err != nil {
		return nil, Recovery{}, err
	}
	rd, params, err := wal.Open(opts.WALPath)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("engine: open wal: %w", err)
	}
	if err := e.checkWALParams(params); err != nil {
		rd.Close()
		return nil, Recovery{}, err
	}
	var info Recovery
	truncAt := int64(-1)
	var rec wal.Record
	for {
		rerr := rd.Next(&rec)
		if rerr == io.EOF {
			break
		}
		if off, ok := wal.Recoverable(rerr); ok {
			// Torn or corrupt tail: drop it. The decisions it held will be
			// re-decided deterministically as the stream is resubmitted.
			truncAt = off
			break
		}
		if rerr != nil {
			rd.Close()
			return nil, Recovery{}, fmt.Errorf("engine: read wal: %w", rerr)
		}
		if aerr := e.applyRecord(&rec); aerr != nil {
			rd.Close()
			return nil, Recovery{}, aerr
		}
		info.Decisions++
	}
	rd.Close()
	if truncAt >= 0 {
		if fi, serr := os.Stat(opts.WALPath); serr == nil {
			info.Truncated = fi.Size() - truncAt
		}
	}
	w, err := wal.Resume(opts.WALPath, truncAt, opts.WALSyncEvery)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("engine: resume wal: %w", err)
	}
	e.wal = w
	e.recovered.Store(uint64(info.Decisions))
	info.NextSeq = e.nextSeq
	e.start()
	return e, info, nil
}

// walParams derives the header parameters that identify this engine's
// configuration.
func (e *Engine) walParams() wal.Params {
	return wal.Params{
		Dims:     append([]int(nil), e.g.Dims...),
		B:        e.g.B,
		C:        e.g.C,
		Horizon:  e.horizon,
		PMax:     e.pmax,
		TileSide: e.k,
		FirstSeq: e.firstSeq,
	}
}

func (e *Engine) checkWALParams(p wal.Params) error {
	want := e.walParams()
	same := len(p.Dims) == len(want.Dims) && p.B == want.B && p.C == want.C &&
		p.Horizon == want.Horizon && p.PMax == want.PMax &&
		p.TileSide == want.TileSide && p.FirstSeq == want.FirstSeq
	if same {
		for i := range p.Dims {
			if p.Dims[i] != want.Dims[i] {
				same = false
				break
			}
		}
	}
	if !same {
		return fmt.Errorf("%w: log %+v, engine %+v", ErrWALMismatch, p, want)
	}
	return nil
}

// applyRecord replays one logged decision into pre-start engine state,
// issuing the exact packer Offer sequence the live run issued: accepted
// records re-offer their logged route (rebuilding weights bit-identically),
// cost/no-route rejections re-offer nil (bumping only the packer's internal
// rejection counter, exactly like the live paths), shed and invalid records
// touch no packer state. Corrupt-but-checksummed records surface as errors —
// never a panic, never a half-applied record.
//
//gridroute:deterministic
func (e *Engine) applyRecord(rec *wal.Record) error {
	v := Verdict(rec.Verdict)
	d := Decision{Seq: rec.Seq, Verdict: v, Cost: rec.Cost, Tiles: rec.Tiles}
	switch v {
	case Accepted:
		if !rec.HasRoute {
			return fmt.Errorf("engine: wal seq %d: accepted record without route", rec.Seq)
		}
		if len(rec.Src) != e.d || len(rec.Dst) != e.d {
			return fmt.Errorf("engine: wal seq %d: route coords have %d/%d dims, grid has %d",
				rec.Seq, len(rec.Src), len(rec.Dst), e.d)
		}
		route, err := e.routeFromWAL(rec)
		if err != nil {
			return err
		}
		if !e.pk.Offer(route.Edges, rec.Cost) { //gridlint:allow replay runs single-threaded before the workers start
			return fmt.Errorf("engine: wal replay diverged at seq %d: packer rejected the logged route", rec.Seq)
		}
		r := grid.Request{
			ID: rec.Seq, Src: grid.Vec(rec.Src), Dst: grid.Vec(rec.Dst),
			Arrival: rec.Arrival, Deadline: rec.Deadline,
		}
		e.admitted = append(e.admitted, e.arena.retain(&r, route))
		e.accepted.Add(1)
		e.watermark = rec.Arrival
	case RejectedCost:
		e.pk.Offer(nil, 0) //gridlint:allow replay runs single-threaded before the workers start
		e.rejCost.Add(1)
		e.watermark = rec.Arrival
	case RejectedNoRoute:
		e.pk.Offer(nil, 0) //gridlint:allow replay runs single-threaded before the workers start
		e.rejNoRoute.Add(1)
		e.watermark = rec.Arrival
	case Shed:
		e.shedCount.Add(1)
		e.watermark = rec.Arrival
	case RejectedInvalid:
		e.rejInvalid.Add(1)
	default:
		// RejectedQueueFull never reaches the loop and is never logged.
		return fmt.Errorf("engine: wal seq %d: unexpected verdict %d in log", rec.Seq, rec.Verdict)
	}
	e.submitted.Add(1)
	if e.record {
		e.decisions = append(e.decisions, d)
	}
	if rec.Seq+1 > e.nextSeq {
		e.nextSeq = rec.Seq + 1
	}
	return nil
}

// routeFromWAL reconstructs an accepted record's sketch route from its start
// tile and axis steps, re-deriving the interleaved interior/axis edge ids
// exactly as routeInto builds them. Every step is bounds-checked: a
// checksummed-but-nonsensical record is a typed error, not a panic.
func (e *Engine) routeFromWAL(rec *wal.Record) (*sketch.Route, error) {
	tb := e.tl.TBox
	if rec.StartTile >= tb.Size() {
		return nil, fmt.Errorf("engine: wal seq %d: start tile %d outside tiling (%d tiles)", rec.Seq, rec.StartTile, tb.Size())
	}
	if rec.Tiles != len(rec.Axes)+1 {
		return nil, fmt.Errorf("engine: wal seq %d: tile count %d does not match %d axis steps", rec.Seq, rec.Tiles, len(rec.Axes))
	}
	rt := &e.walRoute
	id := rec.StartTile
	rt.Tiles = append(rt.Tiles[:0], id)
	rt.Edges = append(rt.Edges[:0], e.sk.InteriorEdgeID(id))
	rt.Axes = append(rt.Axes[:0], rec.Axes...)
	for _, a := range rec.Axes {
		if int(a) > e.d {
			return nil, fmt.Errorf("engine: wal seq %d: axis %d out of range", rec.Seq, a)
		}
		rt.Edges = append(rt.Edges, e.sk.AxisEdgeID(id, int(a)))
		nid, ok := tb.Step(id, int(a))
		if !ok {
			return nil, fmt.Errorf("engine: wal seq %d: route steps off the tiling along axis %d", rec.Seq, a)
		}
		id = nid
		rt.Tiles = append(rt.Tiles, id)
		rt.Edges = append(rt.Edges, e.sk.InteriorEdgeID(id))
	}
	rt.Cost = rec.Cost
	return rt, nil
}

// walAppend journals one consumer-loop decision. A write failure is sticky
// (Engine.Err) and disables further logging rather than failing admission:
// the engine degrades to an unjournaled run instead of going down with the
// disk.
func (e *Engine) walAppend(pkt *Packet, d Decision) {
	rec := &e.walRec
	rec.Seq = pkt.Seq
	rec.Verdict = uint8(d.Verdict)
	rec.Arrival = pkt.Arrival
	rec.Cost = d.Cost
	rec.Tiles = d.Tiles
	rec.HasRoute = d.Verdict == Accepted
	if rec.HasRoute {
		last := &e.admitted[len(e.admitted)-1]
		rec.Deadline = pkt.Deadline
		rec.Src = append(rec.Src[:0], pkt.Src...)
		rec.Dst = append(rec.Dst[:0], pkt.Dst...)
		rec.StartTile = last.Route.Tiles[0]
		rec.Axes = append(rec.Axes[:0], last.Route.Axes...)
	}
	if err := e.wal.Append(rec); err != nil {
		e.setErr(fmt.Errorf("engine: wal append: %w", err))
		e.wal.Close()
		e.wal = nil
	}
}
