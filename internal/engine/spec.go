package engine

import (
	"sort"
	"time"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/sketch"
)

// Speculative admission pipeline.
//
// With Options.SpecWorkers > 0 the single consumer loop is replaced by a
// three-stage pipeline that overlaps the expensive read-only half of decide
// — the lightest-route DP — across cores while keeping the decision log
// byte-identical to the serial loop:
//
//	producers → in → dispatcher → specIn → N workers → specOut → committer
//
// The dispatcher stamps each envelope with a monotone ticket (the order the
// serial loop would have dequeued it). Workers run the weight-independent
// gates (grid feasibility, query geometry) and, for routable packets, solve
// the lightest-route DP against a private snapshot of the packer weights
// taken under a read lock and stamped with ipp.Version. The committer
// restores ticket order, then commits one speculation at a time: a
// speculation taken at version v is clean iff no edge committed at a version
// > v lies inside the DP window it read — exactly the information
// ipp.LastCommitted tracks, kept in a bounded ring journal. Clean
// speculations commit as-is (the snapshot solve is bit-identical to what the
// serial loop would have computed); conflicted ones are re-decided inline by
// the canonical serial decide. Weight-independent verdicts (invalid,
// geometric no-route) never conflict and always commit.
//
// Synchronization invariant: every mutation of the packer's weight state
// happens in the committer under specMu's write lock (offerPath); workers
// only read weights while holding the read lock, and poll ipp.Version
// lock-free (it is atomic) to decide whether a previous snapshot is still
// current. Everything else a worker touches is worker-private (its own
// sketch.Session, snapshot buffer, scratch) or immutable engine topology.

// speculation is one in-flight speculative decision. It owns no envelope
// memory: p's lifecycle is unchanged (submit → pipeline → reply →
// submitter pool); speculations themselves are pooled and their route/window
// slices are reused across packets.
type speculation struct {
	p      *pending
	ticket uint64 // dispatch order: the serial loop's dequeue order

	// Worker results. infeasible and geomMiss are weight-independent
	// verdicts (final regardless of packer state); ok means route holds a
	// lightest route under the snapshot taken at snapVer over the DP window
	// [winLo, winHi).
	infeasible bool
	geomMiss   bool
	ok         bool
	snapVer    uint64
	route      sketch.Route
	winLo      []int
	winHi      []int
}

// specWorker is the per-worker private state: an independent query session
// over the shared sketch graph and a full-universe snapshot buffer (only the
// prepared window's rows are ever copied into it).
type specWorker struct {
	sess    *sketch.Session
	xs      []float64
	srcBuf  []int
	snapVer uint64
	haveVer bool
}

// commitRec is one journal entry: the edges whose weights changed in the
// commit that produced version ver (an owned copy of ipp.LastCommitted).
type commitRec struct {
	ver   uint64
	edges []ipp.EdgeID
}

// specJournal is a bounded ring of the most recent commits. Conflict
// validation scans it newest-first; a speculation older than the ring's
// reach is conservatively treated as conflicted (correct, just slower).
type specJournal struct {
	recs []commitRec
	n    int // valid records
	next int // ring write position
}

func (j *specJournal) init(capacity int) {
	j.recs = make([]commitRec, capacity)
	j.n, j.next = 0, 0
}

//gridroute:versionstamp
func (j *specJournal) add(ver uint64, edges []ipp.EdgeID) {
	r := &j.recs[j.next]
	r.ver = ver
	r.edges = append(r.edges[:0], edges...)
	j.next++
	if j.next == len(j.recs) {
		j.next = 0
	}
	if j.n < len(j.recs) {
		j.n++
	}
}

// startSpec launches the pipeline goroutines. Called from New instead of
// `go e.loop()` when Options.SpecWorkers > 0.
func (e *Engine) startSpec(queue int) {
	e.journal.init(specJournalCap)
	e.tileBuf = make([]int, e.d+1)
	e.specIn = make(chan *speculation, queue)
	e.specOut = make(chan *speculation, queue)
	e.specPool.New = func() any { return &speculation{} }
	if e.inOrder {
		e.parkedSpecs = make(map[int]*speculation)
	}
	for i := 0; i < e.specWorkers; i++ {
		e.specWg.Add(1)
		go e.specWorkerLoop()
	}
	go e.dispatch()
	go func() {
		e.specWg.Wait()
		close(e.specOut)
	}()
	go e.commitLoop()
}

// specJournalCap bounds the conflict journal. It only needs to cover the
// commits that can land between a worker's snapshot and its validation —
// roughly the pipeline depth — so this is generous; overflow degrades to
// retries, never to wrong answers.
const specJournalCap = 1024

// dispatch assigns tickets in dequeue order and feeds the workers. It is
// the pipeline's ordering anchor: tickets reproduce exactly the order the
// serial loop would have processed the queue.
func (e *Engine) dispatch() {
	var t uint64
	for p := range e.in {
		sp := e.specPool.Get().(*speculation)
		sp.p = p
		sp.ticket = t
		t++
		e.specIn <- sp
	}
	close(e.specIn)
}

func (e *Engine) specWorkerLoop() {
	defer e.specWg.Done()
	w := &specWorker{
		sess:   e.sk.NewSession(),
		xs:     make([]float64, e.sk.Universe()),
		srcBuf: make([]int, e.d+1),
	}
	for sp := range e.specIn {
		e.speculate(w, sp)
		e.speculated.Add(1)
		e.specOut <- sp
	}
}

// speculate runs the read-only half of decide against a weight snapshot.
func (e *Engine) speculate(w *specWorker, sp *speculation) {
	sp.infeasible, sp.geomMiss, sp.ok = false, false, false
	pkt := &sp.p.pkt
	r := grid.Request{ID: pkt.Seq, Src: pkt.Src, Dst: pkt.Dst, Arrival: pkt.Arrival, Deadline: pkt.Deadline}
	if !r.Feasible(e.g) {
		sp.infeasible = true
		return
	}
	src := e.st.ToLattice(r.Src, r.Arrival, w.srcBuf)
	wLo, wHi := e.st.DestRay(&r)
	if e.g.B == 0 {
		wLo, wHi = src[e.d], src[e.d]
	}
	if !w.sess.PrepareQuery(src, r.Dst, wLo, wHi, e.pmax) {
		sp.geomMiss = true
		return
	}
	if e.shed != nil || (e.inj != nil && e.inj.OutageActive(pkt.Arrival)) {
		// Shedding depends on committer-time queue pressure and outages on the
		// committer's masked solve: neither can be speculated against a plain
		// weight snapshot. Leave sp.ok false so the committer re-decides this
		// packet serially with the full policy applied.
		return
	}

	// Snapshot the window's weight rows, unless the previous snapshot is
	// provably current: same prepared window and the packer version has not
	// moved since it was taken. In that case both the copy and the DP are
	// skipped — the solved state is already this exact query (the
	// speculative analogue of the warm-start delta-0 fast path, and what
	// keeps conflict storms near serial cost: re-speculation after a retry
	// reuses everything).
	v := e.pk.Version()
	skip := w.haveVer && v == w.snapVer && w.sess.PreparedUnchanged()
	if !skip {
		e.specMu.RLock()
		w.sess.SnapshotWindow(e.pk.Weights(), w.xs)
		v = e.pk.Version()
		e.specMu.RUnlock()
		w.snapVer, w.haveVer = v, true
	}
	sp.snapVer = w.snapVer
	sp.ok = w.sess.SolveSnapshot(w.xs, skip, &sp.route)
	lo, hi := w.sess.Window()
	sp.winLo = append(sp.winLo[:0], lo...)
	sp.winHi = append(sp.winHi[:0], hi...)
}

// commitLoop is the pipeline's single consumer: it restores ticket order,
// applies InOrder seq parking exactly like the serial loop, and commits
// speculations one at a time.
func (e *Engine) commitLoop() {
	defer close(e.done)
	byTicket := make(map[uint64]*speculation)
	var next uint64
	watch := e.inOrder && e.gapTimeout > 0
	var w gapWatch
	for {
		var sp *speculation
		var ok bool
		if watch && len(e.parkedSpecs) > 0 {
			w.arm(e.gapTimeout, e.nextSeq)
			select {
			case sp, ok = <-e.specOut:
			case <-w.timer.C:
				w.armed = false
				e.breakSpecGap()
				continue
			}
		} else {
			sp, ok = <-e.specOut
		}
		if !ok {
			break
		}
		byTicket[sp.ticket] = sp
		for {
			q, qok := byTicket[next]
			if !qok {
				break
			}
			delete(byTicket, next)
			next++
			e.commitOrdered(q)
		}
	}
	e.flushParkedSpecs()
}

//gridroute:deterministic
func (e *Engine) commitOrdered(sp *speculation) {
	if !e.inOrder {
		e.commitSpec(sp)
		return
	}
	if sp.p.pkt.Seq != e.nextSeq {
		e.parkedSpecs[sp.p.pkt.Seq] = sp
		return
	}
	e.commitSpec(sp)
	e.nextSeq++
	for {
		q, ok := e.parkedSpecs[e.nextSeq]
		if !ok {
			return
		}
		delete(e.parkedSpecs, e.nextSeq)
		e.commitSpec(q)
		e.nextSeq++
	}
}

// flushParkedSpecs decides leftover parked speculations at drain time in
// Seq order, mirroring the serial loop's flushParked.
func (e *Engine) flushParkedSpecs() {
	if len(e.parkedSpecs) == 0 {
		return
	}
	seqs := make([]int, 0, len(e.parkedSpecs))
	for s := range e.parkedSpecs {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	for _, s := range seqs {
		sp := e.parkedSpecs[s]
		delete(e.parkedSpecs, s)
		e.commitSpec(sp)
	}
}

// commitSpec validates and commits one speculation, or re-decides it inline
// on conflict. It replicates decide's branch structure exactly, so the
// decision (verdict, cost, tiles) is the one the serial loop would have
// produced at this point in the sequence.
//
//gridroute:deterministic
func (e *Engine) commitSpec(sp *speculation) {
	pkt := &sp.p.pkt
	if e.inj != nil {
		if d := e.inj.PauseBefore(pkt.Seq); d > 0 {
			time.Sleep(d) //gridlint:allow fault-injected slow-consumer stall: delays the commit, never changes a verdict
		}
	}
	var d Decision
	switch {
	case sp.infeasible || pkt.Arrival < e.watermark:
		// The validity gate: order-dependent (watermark) but
		// weight-independent, so it is decided here, never speculated past.
		d = Decision{Seq: pkt.Seq, Verdict: RejectedInvalid}
		e.specCommitted.Add(1)
	case e.shed != nil:
		// Overload shedding reads live queue pressure at decision time; the
		// serial decide is the only path that applies it. geomMiss packets
		// must take it too — shedPre runs before the route query, so a packet
		// the serial loop would shed early must not slip through as a
		// committed geometric rejection.
		e.specAborted.Add(1)
		e.specRetried.Add(1)
		d = e.decide(pkt)
	case sp.geomMiss:
		// Geometric no-route: weight-independent, always commits. The nil
		// offer only bumps the packer's rejection counter (no weight
		// mutation), matching the serial loop's bookkeeping.
		e.watermark = pkt.Arrival
		e.pk.Offer(nil, 0) //gridlint:allow nil offer bumps the rejection counter only, no weight mutation
		d = Decision{Seq: pkt.Seq, Verdict: RejectedNoRoute}
		e.specCommitted.Add(1)
	case sp.ok && !e.specConflicts(sp):
		// Clean speculation: no commit since snapVer touched the DP window,
		// so the snapshot solve is bit-identical to a live solve here.
		e.watermark = pkt.Arrival
		d = Decision{Seq: pkt.Seq, Cost: sp.route.Cost, Tiles: sp.route.NumTiles()}
		if e.offerPath(sp.route.Edges, sp.route.Cost) {
			d.Verdict = Accepted
			r := grid.Request{ID: pkt.Seq, Src: pkt.Src, Dst: pkt.Dst, Arrival: pkt.Arrival, Deadline: pkt.Deadline}
			e.admitted = append(e.admitted, e.arena.retain(&r, &sp.route))
		} else {
			d.Verdict = RejectedCost
		}
		e.specCommitted.Add(1)
	default:
		// Conflicted (or, defensively, a solve that produced no route):
		// abort the speculation and re-run the canonical serial decide.
		e.specAborted.Add(1)
		e.specRetried.Add(1)
		d = e.decide(pkt)
	}
	d.Wait = time.Since(sp.p.enq) //gridlint:allow metrics-only wait measurement, not part of the decision
	p := sp.p
	e.putSpec(sp)
	e.finalize(p, d)
}

// specConflicts reports whether any edge committed after sp's snapshot lies
// inside the DP window the speculation read. Committer-only.
func (e *Engine) specConflicts(sp *speculation) bool {
	if sp.snapVer == e.pk.Version() {
		return false // nothing committed since the snapshot
	}
	j := &e.journal
	idx := j.next
	for i := 0; i < j.n; i++ {
		idx--
		if idx < 0 {
			idx += len(j.recs)
		}
		rec := &j.recs[idx]
		if rec.ver <= sp.snapVer {
			return false // every newer commit checked clean
		}
		for _, edge := range rec.edges {
			tile, _, _ := e.sk.DecodeEdge(edge)
			pt := e.sk.TileCoords(tile, e.tileBuf)
			inside := true
			for a := range pt {
				if pt[a] < sp.winLo[a] || pt[a] >= sp.winHi[a] {
					inside = false
					break
				}
			}
			if inside {
				return true
			}
		}
	}
	// The journal no longer reaches snapVer (speculation outlived the ring):
	// conservatively conflicted.
	return true
}

// offerPath is the packer offer for paths with a real edge list. In spec
// mode a committed offer mutates weights that workers concurrently read, so
// it runs under the write lock and is journaled; rejections (cost ≥ 1)
// touch only counters workers never read and stay lock-free, as does the
// whole call in serial mode.
//
//gridroute:weightmutator specMu
func (e *Engine) offerPath(edges []ipp.EdgeID, cost float64) bool {
	if e.specWorkers <= 0 || cost >= 1 {
		return e.pk.Offer(edges, cost) //gridlint:allow serial mode or rejection: no concurrent snapshot readers to fence
	}
	e.specMu.Lock()
	ok := e.pk.Offer(edges, cost)
	e.specMu.Unlock()
	if ok {
		e.journal.add(e.pk.Version(), e.pk.LastCommitted())
	}
	return ok
}

// putSpec recycles a speculation. The envelope pointer is cleared so the
// pool never retains a reference past the reply — the ownership handoff the
// drain-leak test pins down.
func (e *Engine) putSpec(sp *speculation) {
	sp.p = nil
	e.specPool.Put(sp)
}
