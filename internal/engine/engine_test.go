package engine_test

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gridroute/internal/core"
	"gridroute/internal/engine"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/scenario"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// workload builds a line instance with a uniform request stream and the
// batch-derived engine parameters.
func workload(t *testing.T, n, reqCount int, T int64, seed int64) (*grid.Grid, []grid.Request, engine.Options) {
	t.Helper()
	g := grid.Line(n, 3, 3)
	rng := rand.New(rand.NewSource(seed))
	reqs := scenario.Uniform(g, reqCount, T, rng)
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	pmax := core.PMaxDet(g)
	return g, reqs, engine.Options{Horizon: horizon, PMax: pmax, Queue: len(reqs) + 1}
}

// stream pushes the requests through the engine sequentially and returns the
// per-request admit pattern and the finished result.
func stream(t *testing.T, g *grid.Grid, reqs []grid.Request, opts engine.Options) ([]bool, *engine.Result) {
	t.Helper()
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	admitted := make([]bool, len(reqs))
	for i := range reqs {
		dec, err := eng.Admit(ctx, engine.PacketOf(&reqs[i]))
		if err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
		if dec.Seq != reqs[i].ID {
			t.Fatalf("decision seq %d for packet %d", dec.Seq, reqs[i].ID)
		}
		admitted[i] = dec.Admitted()
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return admitted, res
}

// TestEngineMatchesInlineBatch replays the pre-engine batch admission loop
// with raw sketch/ipp primitives and checks the streaming engine makes
// bit-identical decisions and certificates on the same workload.
func TestEngineMatchesInlineBatch(t *testing.T) {
	g, reqs, opts := workload(t, 48, 160, 96, 1)

	// Inline batch loop, as core.RunDeterministic wrote it before the engine.
	st := spacetime.New(g, opts.Horizon)
	d := g.D()
	k := ipp.K(opts.PMax)
	side := make([]int, d+1)
	phase := make([]int, d+1)
	for i := range side {
		side[i] = k
	}
	tl := tiling.New(st.Box, side, phase)
	sk := sketch.New(st, tl, sketch.Downscaled)
	pk := ipp.NewDense(2*opts.PMax+1, sk.Cap, sk.Universe())
	wantAdmit := make([]bool, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		src := st.SourcePoint(r)
		wLo, wHi := st.DestRay(r)
		route := sk.LightestRoute(pk, src, r.Dst, wLo, wHi, opts.PMax)
		if route == nil {
			pk.Offer(nil, 0)
			continue
		}
		wantAdmit[i] = pk.Offer(route.Edges, route.Cost)
	}

	gotAdmit, res := stream(t, g, reqs, opts)
	if !reflect.DeepEqual(wantAdmit, gotAdmit) {
		t.Fatal("engine admit pattern diverges from the inline batch loop")
	}
	if res.MaxLoad != pk.MaxLoad() || res.PrimalValue != pk.PrimalValue() {
		t.Fatalf("packer certificates diverge: engine (%v, %v) vs batch (%v, %v)",
			res.MaxLoad, res.PrimalValue, pk.MaxLoad(), pk.PrimalValue())
	}
	if int(res.Stats.Accepted) != len(res.Admitted) || res.Stats.Submitted != uint64(len(reqs)) {
		t.Fatalf("stats inconsistent: %+v vs %d admitted / %d reqs", res.Stats, len(res.Admitted), len(reqs))
	}
}

// stripWait zeroes the only non-deterministic Decision field.
func stripWait(ds []engine.Decision) []engine.Decision {
	out := make([]engine.Decision, len(ds))
	for i, d := range ds {
		d.Wait = 0
		out[i] = d
	}
	return out
}

// TestEngineDecisionDeterminismConcurrent is the -race gate of the streaming
// engine: N producer goroutines submit an interleaved partition of a seeded
// arrival order into an InOrder engine, and the decision log must be
// identical to the single-producer run — packet by packet, verdict by
// verdict, cost by cost.
func TestEngineDecisionDeterminismConcurrent(t *testing.T) {
	g, reqs, opts := workload(t, 48, 200, 96, 7)
	opts.InOrder = true
	opts.RecordDecisions = true

	_, seqRes := stream(t, g, reqs, opts)
	want := stripWait(seqRes.Decisions)
	if len(want) != len(reqs) {
		t.Fatalf("baseline recorded %d decisions for %d packets", len(want), len(reqs))
	}

	const producers = 8
	for round := 0; round < 3; round++ {
		eng, err := engine.New(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				// Strided partition: each producer owns seqs p, p+P, p+2P, …
				// and submits them in increasing order, so the minimal
				// undecided seq is always either queued or owned by an
				// unblocked producer — no deadlock against InOrder parking.
				for i := p; i < len(reqs); i += producers {
					if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
						t.Errorf("producer %d admit %d: %v", p, i, err)
						return
					}
				}
			}(p)
		}
		wg.Wait()
		if err := eng.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, stripWait(res.Decisions)) {
			t.Fatalf("round %d: concurrent decision log diverges from sequential baseline", round)
		}
		if res.Throughput != seqRes.Throughput || res.MaxLoad != seqRes.MaxLoad {
			t.Fatalf("round %d: result diverges (throughput %d vs %d)", round, res.Throughput, seqRes.Throughput)
		}
	}
}

// TestEngineBackpressure checks that a full bounded queue rejects instead of
// blocking: with a single-slot queue and many producers racing a consumer
// that does real DP work per packet, some submissions must bounce, and every
// submission is accounted for exactly once.
func TestEngineBackpressure(t *testing.T) {
	g, reqs, opts := workload(t, 64, 1024, 256, 3)
	opts.Queue = 1

	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const producers = 8
	bounced := make([]uint64, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(reqs); i += producers {
				dec, err := eng.Admit(ctx, engine.PacketOf(&reqs[i]))
				if err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				if dec.Verdict == engine.RejectedQueueFull {
					bounced[p]++
				}
			}
		}(p)
	}
	wg.Wait()
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, b := range bounced {
		total += b
	}
	s := res.Stats
	if s.RejectedQueueFull != total {
		t.Fatalf("engine counted %d queue-full, producers saw %d", s.RejectedQueueFull, total)
	}
	if total == 0 {
		t.Skip("queue never filled (consumer outpaced 8 producers); backpressure accounting not exercised")
	}
	if s.Submitted != uint64(len(reqs)) {
		t.Fatalf("submitted %d != %d", s.Submitted, len(reqs))
	}
	if s.Decided()+s.RejectedQueueFull != s.Submitted {
		t.Fatalf("accounting leak: decided %d + bounced %d != submitted %d", s.Decided(), s.RejectedQueueFull, s.Submitted)
	}
}

// TestEngineLifecycle pins the Drain/Finish contract.
func TestEngineLifecycle(t *testing.T) {
	g, reqs, opts := workload(t, 32, 16, 32, 5)
	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(); err != engine.ErrNotDrained {
		t.Fatalf("Finish before Drain: %v", err)
	}
	ctx := context.Background()
	for i := range reqs {
		if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal("Drain must be idempotent:", err)
	}
	if _, err := eng.Admit(ctx, engine.PacketOf(&reqs[0])); err != engine.ErrClosed {
		t.Fatalf("Admit after Drain: %v", err)
	}
	r1, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Finish()
	if err != nil || r1 != r2 {
		t.Fatal("Finish must be idempotent and cached")
	}
	if len(r1.Schedules) != len(r1.Admitted) || len(r1.Outcomes) != len(r1.Admitted) {
		t.Fatal("result slices not parallel to Admitted")
	}
}

// TestEngineWarmStartParity is the engine-level warm-start gate: the default
// engine (incremental DP reuse on) must produce exactly the decision log —
// verdicts, costs, admitted set, certificates — of an engine with
// NoWarmStart, across a workload dense enough to hit the delta-0 skip,
// the delta-1 incremental rerun, and the window-change cache miss. Runs
// with -count=3 under -race in CI.
func TestEngineWarmStartParity(t *testing.T) {
	g, reqs, opts := workload(t, 48, 300, 64, 13)
	opts.RecordDecisions = true
	// Duplicate bursts: consecutive identical packets (fresh seqs) force the
	// version-delta-0 and delta-1 warm paths repeatedly.
	burst := make([]grid.Request, 0, 2*len(reqs))
	nextID := 0
	for i := range reqs {
		n := 1 + i%3
		for j := 0; j < n; j++ {
			r := reqs[i]
			r.ID = nextID
			nextID++
			burst = append(burst, r)
		}
	}

	coldOpts := opts
	coldOpts.NoWarmStart = true
	_, coldRes := stream(t, g, burst, coldOpts)
	_, warmRes := stream(t, g, burst, opts)

	if !reflect.DeepEqual(stripWait(coldRes.Decisions), stripWait(warmRes.Decisions)) {
		t.Fatal("warm-start engine decision log diverges from cold engine")
	}
	if warmRes.MaxLoad != coldRes.MaxLoad || warmRes.PrimalValue != coldRes.PrimalValue ||
		warmRes.Throughput != coldRes.Throughput || len(warmRes.Admitted) != len(coldRes.Admitted) {
		t.Fatalf("warm-start result diverges: (%v,%v,%d,%d) vs (%v,%v,%d,%d)",
			warmRes.MaxLoad, warmRes.PrimalValue, warmRes.Throughput, len(warmRes.Admitted),
			coldRes.MaxLoad, coldRes.PrimalValue, coldRes.Throughput, len(coldRes.Admitted))
	}
	if len(warmRes.Admitted) == 0 {
		t.Fatal("no admissions: warm paths not exercised")
	}
}

// TestEngineDPWorkersParity: the engine must make bit-identical decisions at
// any DPWorkers setting — the wavefront pool is a pure throughput knob.
func TestEngineDPWorkersParity(t *testing.T) {
	g, reqs, opts := workload(t, 48, 200, 96, 17)
	opts.RecordDecisions = true
	_, serialRes := stream(t, g, reqs, opts)
	for _, workers := range []int{2, 4} {
		popts := opts
		popts.DPWorkers = workers
		_, parRes := stream(t, g, reqs, popts)
		if !reflect.DeepEqual(stripWait(serialRes.Decisions), stripWait(parRes.Decisions)) {
			t.Fatalf("DPWorkers=%d decision log diverges from serial", workers)
		}
		if parRes.MaxLoad != serialRes.MaxLoad || parRes.Throughput != serialRes.Throughput {
			t.Fatalf("DPWorkers=%d result diverges", workers)
		}
	}
}

// TestEngineInvalidPackets checks that infeasible and out-of-order packets
// are rejected without perturbing the packer state: a valid stream with
// garbage interleaved decides the valid packets exactly as a clean stream.
func TestEngineInvalidPackets(t *testing.T) {
	g, reqs, opts := workload(t, 32, 64, 48, 9)
	wantAdmit, wantRes := stream(t, g, reqs, opts)

	eng, err := engine.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	gotAdmit := make([]bool, len(reqs))
	for i := range reqs {
		if i%8 == 3 {
			// Out of bounds destination.
			bad := engine.Packet{Seq: 10_000 + i, Src: grid.Vec{0}, Dst: grid.Vec{999}, Arrival: reqs[i].Arrival, Deadline: grid.InfDeadline}
			if dec, err := eng.Admit(ctx, bad); err != nil || dec.Verdict != engine.RejectedInvalid {
				t.Fatalf("infeasible packet: %v %v", dec.Verdict, err)
			}
		}
		if i%8 == 5 && reqs[i].Arrival > 0 {
			// Arrival-order watermark violation.
			bad := engine.PacketOf(&reqs[i])
			bad.Seq = 20_000 + i
			bad.Arrival = -1
			if dec, err := eng.Admit(ctx, bad); err != nil || dec.Verdict != engine.RejectedInvalid {
				t.Fatalf("stale packet: %v %v", dec.Verdict, err)
			}
		}
		dec, err := eng.Admit(ctx, engine.PacketOf(&reqs[i]))
		if err != nil {
			t.Fatal(err)
		}
		gotAdmit[i] = dec.Admitted()
	}
	if err := eng.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantAdmit, gotAdmit) {
		t.Fatal("invalid packets perturbed admission decisions")
	}
	if res.MaxLoad != wantRes.MaxLoad || res.PrimalValue != wantRes.PrimalValue || res.Throughput != wantRes.Throughput {
		t.Fatal("invalid packets perturbed packer or routing state")
	}
	if res.Stats.RejectedInvalid == 0 {
		t.Fatal("no invalid rejections counted")
	}
}
