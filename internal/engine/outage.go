package engine

import (
	"sort"

	"gridroute/internal/fault"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
)

// Resource-outage masking: a fault schedule can take space-time resources —
// grid nodes or edges failing over a real-time interval — out of service.
// The engine translates each failed (node, time) copy into the sketch edge
// ids it disables (the containing tile's interior edge for a node outage,
// one axis edge, or the hold edge for axis d) and solves the route query
// over weights with those edges at +Inf, so admitted packets deterministically
// route around the failure or are rejected. Outages act at sketch
// granularity: failing a node blacks out the whole tile containing it for
// the affected time steps — the routing resolution the engine works at.

// activeMask returns the blocked sketch-edge ids for the packet's arrival
// time, or nil when no outage is active. The translated mask is cached per
// outage epoch (the active set only changes at event boundaries), so steady
// state costs one binary search per decision. Consumer-loop only.
func (e *Engine) activeMask(arrival int64) []ipp.EdgeID {
	if e.inj == nil || !e.inj.HasOutages() {
		return nil
	}
	ep := e.inj.OutageEpoch(arrival)
	if ep != e.maskEpoch {
		e.maskEpoch = ep
		e.outBuf = e.inj.ActiveOutages(arrival, e.outBuf[:0])
		e.maskEdges = e.buildMask(e.outBuf, e.maskEdges[:0])
		if e.maskBuf == nil {
			e.maskBuf = make([]float64, e.sk.Universe())
		}
	}
	if len(e.maskEdges) == 0 {
		return nil
	}
	return e.maskEdges
}

// buildMask translates active outage events into a sorted, deduplicated
// blocked-edge list. Events that do not address this grid (wrong dimension,
// out-of-range node or axis) are ignored rather than faulted: a schedule is
// data, and routing must keep going.
func (e *Engine) buildMask(events []fault.Event, out []ipp.EdgeID) []ipp.EdgeID {
	seen := make(map[ipp.EdgeID]struct{})
	pt := make([]int, e.d+1)
	tbuf := make([]int, e.d+1)
	for _, ev := range events {
		if len(ev.Node) != e.d || ev.Axis > e.d || !e.g.Contains(grid.Vec(ev.Node)) {
			continue
		}
		wLo, wHi, ok := e.st.OutageWindow(grid.Vec(ev.Node), ev.From, ev.To)
		if !ok {
			continue
		}
		copy(pt[:e.d], ev.Node)
		for w := wLo; w <= wHi; w++ {
			pt[e.d] = w
			tile := e.tl.TBox.Index(e.tl.TileOf(pt, tbuf))
			var id ipp.EdgeID
			if ev.Axis < 0 {
				id = e.sk.InteriorEdgeID(tile)
			} else {
				id = e.sk.AxisEdgeID(tile, ev.Axis)
			}
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
