package engine

import (
	"context"
	"errors"

	"gridroute/internal/detroute"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
)

// arena is chunked, pointer-stable storage for accepted packets. Requests
// and routes live in fixed-capacity chunks that are never reallocated, so
// the *grid.Request and *sketch.Route handed to detailed routing stay valid
// as more packets are accepted; coordinate, axis and edge payloads are
// sub-sliced (with full-slice expressions, so appends cannot bleed across
// entries) from shared backing chunks. Steady-state cost is one allocation
// per chunk, amortized to ~0 per accept; Options.ExpectPackets sizes the
// first request/route chunks to cover a known workload outright.
type arena struct {
	reqs   []grid.Request
	routes []sketch.Route
	ints   []int
	axes   []uint8
	edges  []ipp.EdgeID

	reqChunk, intChunk, axChunk, edgeChunk int
}

func (a *arena) init(hint int) {
	a.reqChunk = 1 << 10
	a.intChunk = 1 << 14
	a.axChunk = 1 << 13
	a.edgeChunk = 1 << 14
	if hint > a.reqChunk {
		a.reqChunk = hint
	}
	if hint > 0 {
		a.reqs = make([]grid.Request, 0, a.reqChunk)
		a.routes = make([]sketch.Route, 0, a.reqChunk)
	}
}

func (a *arena) allocInts(n int) []int {
	if len(a.ints)+n > cap(a.ints) {
		c := a.intChunk
		if c < n {
			c = n
		}
		a.ints = make([]int, 0, c)
	}
	off := len(a.ints)
	a.ints = a.ints[:off+n]
	return a.ints[off : off+n : off+n]
}

func (a *arena) allocAxes(n int) []uint8 {
	if len(a.axes)+n > cap(a.axes) {
		c := a.axChunk
		if c < n {
			c = n
		}
		a.axes = make([]uint8, 0, c)
	}
	off := len(a.axes)
	a.axes = a.axes[:off+n]
	return a.axes[off : off+n : off+n]
}

func (a *arena) allocEdges(n int) []ipp.EdgeID {
	if len(a.edges)+n > cap(a.edges) {
		c := a.edgeChunk
		if c < n {
			c = n
		}
		a.edges = make([]ipp.EdgeID, 0, c)
	}
	off := len(a.edges)
	a.edges = a.edges[:off+n]
	return a.edges[off : off+n : off+n]
}

// retain deep-copies an accepted (request, route) pair into the arena and
// returns the detroute admission entry pointing at the stable copies.
func (a *arena) retain(r *grid.Request, rt *sketch.Route) detroute.Admitted {
	if len(a.reqs) == cap(a.reqs) {
		a.reqs = make([]grid.Request, 0, a.reqChunk)
	}
	a.reqs = a.reqs[:len(a.reqs)+1]
	req := &a.reqs[len(a.reqs)-1]
	*req = *r
	req.Src = a.allocInts(len(r.Src))
	copy(req.Src, r.Src)
	req.Dst = a.allocInts(len(r.Dst))
	copy(req.Dst, r.Dst)

	if len(a.routes) == cap(a.routes) {
		a.routes = make([]sketch.Route, 0, a.reqChunk)
	}
	a.routes = a.routes[:len(a.routes)+1]
	ro := &a.routes[len(a.routes)-1]
	ro.Tiles = a.allocInts(len(rt.Tiles))
	copy(ro.Tiles, rt.Tiles)
	ro.Axes = a.allocAxes(len(rt.Axes))
	copy(ro.Axes, rt.Axes)
	ro.Edges = a.allocEdges(len(rt.Edges))
	copy(ro.Edges, rt.Edges)
	ro.Cost = rt.Cost

	return detroute.Admitted{Req: req, Route: ro}
}

// Drain closes the engine to new admissions, waits for the queue (and, in
// InOrder mode, any parked packets) to be fully decided, and returns when
// the consumer loop has exited. Subsequent Admit calls return ErrClosed;
// Drain itself is idempotent. On ctx cancellation the loop keeps draining in
// the background — only the wait is abandoned.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if !e.shut {
		e.shut = true
		close(e.in)
	}
	e.mu.Unlock()
	select {
	case <-e.done:
		// The consumer loop has exited; no further DP runs can be submitted,
		// so the wavefront pool (if any) can be torn down. Close is nil-safe
		// and idempotent, matching Drain's own contract.
		e.dpPool.Close()
		// The loop was the only WAL writer and it is gone (loop exit
		// happens-before the done close), so the log can be flushed and
		// closed here. A clean Drain leaves a fully-synced log with no torn
		// tail.
		e.mu.Lock()
		if e.wal != nil {
			if err := e.wal.Close(); err != nil {
				e.setErr(err)
			}
			e.wal = nil
		}
		e.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result is the routed outcome of a drained engine: the admitted set in
// admission order, the detailed-routing outcome and (for on-time
// deliveries) the explicit schedule of each, plus the packer's Theorem 1
// certificates.
type Result struct {
	Grid    *grid.Grid
	Horizon int64
	PMax    int
	K       int

	// Admitted is the injected set in admission order; Outcomes and
	// Schedules are parallel to it. Schedules[j] is non-nil exactly for
	// on-time deliveries. The Req pointers are engine-owned copies whose ID
	// carries the packet Seq.
	Admitted  []detroute.Admitted
	Outcomes  []detroute.Outcome
	Schedules []*spacetime.Schedule

	RouteStats detroute.Stats
	// Throughput counts on-time deliveries (|alg| in Sec. 5.3 notation);
	// ReachedLastTile is |ipp′| (Prop. 8).
	Throughput      int
	ReachedLastTile int

	MaxLoad     float64
	LoadBound   float64
	PrimalValue float64

	// Decisions is the consumer-loop decision log in decision order, when
	// Options.RecordDecisions was set.
	Decisions []Decision

	// Stats is the final counter snapshot.
	Stats Stats
}

// ErrNotDrained is returned by Finish before Drain has completed.
var ErrNotDrained = errors.New("engine: Finish requires a completed Drain")

// Finish runs detailed routing (detroute tracks 1–3) over the admitted set
// and returns the full result. It may only be called after Drain has
// returned nil; it is idempotent and returns the same Result on every call.
func (e *Engine) Finish() (*Result, error) {
	select {
	case <-e.done:
	default:
		return nil, ErrNotDrained
	}
	e.finishOnce.Do(e.finish)
	return e.result, nil
}

func (e *Engine) finish() {
	res := &Result{
		Grid: e.g, Horizon: e.horizon, PMax: e.pmax, K: e.k,
		Admitted:    e.admitted,
		MaxLoad:     e.pk.MaxLoad(),
		LoadBound:   e.pk.LoadBound(),
		PrimalValue: e.pk.PrimalValue(),
		Decisions:   e.decisions,
		Stats:       e.Stats(),
	}
	router := detroute.New(e.st, e.sk)
	res.Outcomes, res.RouteStats = router.Run(e.admitted)
	res.Schedules = make([]*spacetime.Schedule, len(e.admitted))
	for j := range res.Outcomes {
		o := &res.Outcomes[j]
		if o.ReachedLastTile {
			res.ReachedLastTile++
		}
		if o.Delivered && o.OnTime {
			res.Schedules[j] = e.st.PathToSchedule(e.admitted[j].Req, o.Path)
			res.Throughput++
		}
	}
	e.result = res
}
