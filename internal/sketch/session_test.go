package sketch

import (
	"reflect"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
)

// TestSessionMatchesDefault drives a warm Session (with a reused Route)
// against the Graph's default-session oracle across a sequence of queries
// under evolving packer weights: every route must be identical, including
// the Into variant's slice reuse.
func TestSessionMatchesDefault(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	sess := down.NewSession()
	var out Route
	found := 0
	for q := 0; q < 60; q++ {
		r := &grid.Request{
			Src: grid.Vec{q % 8}, Dst: grid.Vec{8 + q%20},
			Arrival: int64(q / 2), Deadline: grid.InfDeadline,
		}
		src := st.SourcePoint(r)
		wLo, wHi := st.DestRay(r)
		want := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 50)
		ok := sess.LightestRouteInto(pk, src, r.Dst, wLo, wHi, 50, &out)
		if (want == nil) != !ok {
			t.Fatalf("q %d: default nil=%v, session ok=%v", q, want == nil, ok)
		}
		if want == nil {
			pk.Offer(nil, 0)
			continue
		}
		found++
		if !reflect.DeepEqual(want.Tiles, out.Tiles) || !reflect.DeepEqual(want.Axes, out.Axes) ||
			!reflect.DeepEqual(want.Edges, out.Edges) || want.Cost != out.Cost {
			t.Fatalf("q %d: session route diverges:\n got %+v\nwant %+v", q, out, *want)
		}
		// Advance the weight state so later queries see non-trivial costs.
		pk.Offer(want.Edges, want.Cost)
	}
	if found == 0 {
		t.Fatal("no query found a route; test exercised nothing")
	}
}

// TestSessionsIndependent interleaves two sessions over one graph: each
// must behave as if it were alone (the DP and scratch state must not bleed).
func TestSessionsIndependent(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	s1, s2 := down.NewSession(), down.NewSession()
	var o1, o2 Route

	ra := &grid.Request{Src: grid.Vec{1}, Dst: grid.Vec{9}, Arrival: 0, Deadline: grid.InfDeadline}
	rb := &grid.Request{Src: grid.Vec{4}, Dst: grid.Vec{27}, Arrival: 2, Deadline: grid.InfDeadline}
	srcA, srcB := st.SourcePoint(ra), st.SourcePoint(rb)
	aLo, aHi := st.DestRay(ra)
	bLo, bHi := st.DestRay(rb)

	// Reference answers, one session at a time.
	wantA := down.LightestRoute(pk, srcA, ra.Dst, aLo, aHi, 50)
	wantB := down.LightestRoute(pk, srcB, rb.Dst, bLo, bHi, 50)
	if wantA == nil || wantB == nil {
		t.Fatal("reference queries must succeed")
	}

	// Interleave: s1 queries A, s2 queries B, then s1 re-queries A. The
	// packer is read-only here, so all answers must equal the references.
	if !s1.LightestRouteInto(pk, srcA, ra.Dst, aLo, aHi, 50, &o1) {
		t.Fatal("s1 query failed")
	}
	if !s2.LightestRouteInto(pk, srcB, rb.Dst, bLo, bHi, 50, &o2) {
		t.Fatal("s2 query failed")
	}
	if !reflect.DeepEqual(wantB.Tiles, o2.Tiles) || wantB.Cost != o2.Cost {
		t.Fatalf("s2 diverges: %+v vs %+v", o2, *wantB)
	}
	// o1 must still hold A's route: s2's query ran on independent state.
	if !reflect.DeepEqual(wantA.Tiles, o1.Tiles) || !reflect.DeepEqual(wantA.Edges, o1.Edges) || wantA.Cost != o1.Cost {
		t.Fatalf("s1's route corrupted by s2: %+v vs %+v", o1, *wantA)
	}
	if !s1.LightestRouteInto(pk, srcA, ra.Dst, aLo, aHi, 50, &o1) || !reflect.DeepEqual(wantA.Tiles, o1.Tiles) {
		t.Fatal("s1 re-query diverges after interleaving")
	}
}
