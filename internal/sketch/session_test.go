package sketch

import (
	"reflect"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
)

// TestSessionMatchesDefault drives a warm Session (with a reused Route)
// against the Graph's default-session oracle across a sequence of queries
// under evolving packer weights: every route must be identical, including
// the Into variant's slice reuse.
func TestSessionMatchesDefault(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	sess := down.NewSession()
	var out Route
	found := 0
	for q := 0; q < 60; q++ {
		r := &grid.Request{
			Src: grid.Vec{q % 8}, Dst: grid.Vec{8 + q%20},
			Arrival: int64(q / 2), Deadline: grid.InfDeadline,
		}
		src := st.SourcePoint(r)
		wLo, wHi := st.DestRay(r)
		want := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 50)
		ok := sess.LightestRouteInto(pk, src, r.Dst, wLo, wHi, 50, &out)
		if (want == nil) != !ok {
			t.Fatalf("q %d: default nil=%v, session ok=%v", q, want == nil, ok)
		}
		if want == nil {
			pk.Offer(nil, 0)
			continue
		}
		found++
		if !reflect.DeepEqual(want.Tiles, out.Tiles) || !reflect.DeepEqual(want.Axes, out.Axes) ||
			!reflect.DeepEqual(want.Edges, out.Edges) || want.Cost != out.Cost {
			t.Fatalf("q %d: session route diverges:\n got %+v\nwant %+v", q, out, *want)
		}
		// Advance the weight state so later queries see non-trivial costs.
		pk.Offer(want.Edges, want.Cost)
	}
	if found == 0 {
		t.Fatal("no query found a route; test exercised nothing")
	}
}

// TestSessionsIndependent interleaves two sessions over one graph: each
// must behave as if it were alone (the DP and scratch state must not bleed).
func TestSessionsIndependent(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	s1, s2 := down.NewSession(), down.NewSession()
	var o1, o2 Route

	ra := &grid.Request{Src: grid.Vec{1}, Dst: grid.Vec{9}, Arrival: 0, Deadline: grid.InfDeadline}
	rb := &grid.Request{Src: grid.Vec{4}, Dst: grid.Vec{27}, Arrival: 2, Deadline: grid.InfDeadline}
	srcA, srcB := st.SourcePoint(ra), st.SourcePoint(rb)
	aLo, aHi := st.DestRay(ra)
	bLo, bHi := st.DestRay(rb)

	// Reference answers, one session at a time.
	wantA := down.LightestRoute(pk, srcA, ra.Dst, aLo, aHi, 50)
	wantB := down.LightestRoute(pk, srcB, rb.Dst, bLo, bHi, 50)
	if wantA == nil || wantB == nil {
		t.Fatal("reference queries must succeed")
	}

	// Interleave: s1 queries A, s2 queries B, then s1 re-queries A. The
	// packer is read-only here, so all answers must equal the references.
	if !s1.LightestRouteInto(pk, srcA, ra.Dst, aLo, aHi, 50, &o1) {
		t.Fatal("s1 query failed")
	}
	if !s2.LightestRouteInto(pk, srcB, rb.Dst, bLo, bHi, 50, &o2) {
		t.Fatal("s2 query failed")
	}
	if !reflect.DeepEqual(wantB.Tiles, o2.Tiles) || wantB.Cost != o2.Cost {
		t.Fatalf("s2 diverges: %+v vs %+v", o2, *wantB)
	}
	// o1 must still hold A's route: s2's query ran on independent state.
	if !reflect.DeepEqual(wantA.Tiles, o1.Tiles) || !reflect.DeepEqual(wantA.Edges, o1.Edges) || wantA.Cost != o1.Cost {
		t.Fatalf("s1's route corrupted by s2: %+v vs %+v", o1, *wantA)
	}
	if !s1.LightestRouteInto(pk, srcA, ra.Dst, aLo, aHi, 50, &o1) || !reflect.DeepEqual(wantA.Tiles, o1.Tiles) {
		t.Fatal("s1 re-query diverges after interleaving")
	}
}

// TestSessionWarmStartParity drives a warm-start session and a cold session
// through the same query/commit sequence and requires identical routes. The
// sequence deliberately hits every warm path: repeated identical queries
// with no commit between them (version delta 0 — the DP is skipped
// entirely), re-queries of the same window right after an accepted commit
// (delta 1 — incremental RerunFlat), window changes (cache miss), and long
// streaks that saturate edges (reject after reject, still delta 0).
func TestSessionWarmStartParity(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pkWarm := ipp.NewDense(50, down.Cap, down.Universe())
	pkCold := ipp.NewDense(50, down.Cap, down.Universe())
	warm := down.NewSession()
	cold := down.NewSession()
	cold.SetWarmStart(false)
	var ow, oc Route

	queries := make([]*grid.Request, 0, 240)
	for q := 0; q < 40; q++ {
		r := &grid.Request{
			Src: grid.Vec{q % 6}, Dst: grid.Vec{10 + q%18},
			Arrival: int64(q / 3), Deadline: grid.InfDeadline,
		}
		// Each request repeats several times in a row: the repeats after an
		// accept are the delta-1 incremental path, the repeats after a reject
		// are the delta-0 skip path.
		for rep := 0; rep < 6; rep++ {
			queries = append(queries, r)
		}
	}
	accepted := 0
	for qi, r := range queries {
		src := st.SourcePoint(r)
		wLo, wHi := st.DestRay(r)
		okW := warm.LightestRouteInto(pkWarm, src, r.Dst, wLo, wHi, 50, &ow)
		okC := cold.LightestRouteInto(pkCold, src, r.Dst, wLo, wHi, 50, &oc)
		if okW != okC {
			t.Fatalf("query %d: warm ok=%v cold ok=%v", qi, okW, okC)
		}
		if okW {
			if !reflect.DeepEqual(ow.Tiles, oc.Tiles) || !reflect.DeepEqual(ow.Axes, oc.Axes) ||
				!reflect.DeepEqual(ow.Edges, oc.Edges) || ow.Cost != oc.Cost {
				t.Fatalf("query %d: warm route diverges from cold:\nwarm %+v\ncold %+v", qi, ow, oc)
			}
			accW := pkWarm.Offer(ow.Edges, ow.Cost)
			accC := pkCold.Offer(oc.Edges, oc.Cost)
			if accW != accC {
				t.Fatalf("query %d: packers diverge: warm accept=%v cold=%v", qi, accW, accC)
			}
			if accW {
				accepted++
			}
		} else {
			pkWarm.Offer(nil, 0)
			pkCold.Offer(nil, 0)
		}
	}
	if accepted == 0 {
		t.Fatal("no accepts: the delta-1 incremental path was never exercised")
	}
	if pkWarm.Version() != pkCold.Version() || pkWarm.Accepted() != pkCold.Accepted() {
		t.Fatalf("packer states diverged: warm v%d/%d cold v%d/%d",
			pkWarm.Version(), pkWarm.Accepted(), pkCold.Version(), pkCold.Accepted())
	}
}
