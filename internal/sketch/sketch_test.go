package sketch

import (
	"math"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

func lineSetup(n int, b, c int, T int64, k int) (*spacetime.Graph, *Graph, *Graph) {
	g := grid.Line(n, b, c)
	st := spacetime.New(g, T)
	tl := tiling.New(st.Box, []int{k, k}, []int{0, 0})
	return st, New(st, tl, Downscaled), New(st, tl, Raw)
}

func TestCapacities(t *testing.T) {
	st, down, raw := lineSetup(32, 2, 3, 100, 4)
	_ = st
	// Raw: space axis capacity c·k = 12, w axis B·k = 8 (Fig. 3e caption,
	// "c·τ and B·Q").
	if got := raw.RawCap(0); got != 12 {
		t.Fatalf("raw space cap = %d, want 12", got)
	}
	if got := raw.RawCap(1); got != 8 {
		t.Fatalf("raw w cap = %d, want 8", got)
	}
	// Raw node capacity (paper, line): 2·k²·(B+c) = 2·16·5 = 160.
	if got := raw.RawNodeCap(); got != 160 {
		t.Fatalf("raw node cap = %d, want 160", got)
	}
	// Downscaled (Fig. 4): inter-tile 1, interior 2.
	if got := down.Cap(down.AxisEdgeID(0, 0)); got != 1 {
		t.Fatalf("downscaled edge cap = %v, want 1", got)
	}
	if got := down.Cap(down.InteriorEdgeID(0)); got != 2 {
		t.Fatalf("interior cap = %v, want 2", got)
	}
	// Raw mode has no interior constraint.
	if got := raw.Cap(raw.InteriorEdgeID(0)); !math.IsInf(got, 1) {
		t.Fatalf("raw interior cap = %v, want +Inf", got)
	}
}

func TestEdgeIDRoundTrip(t *testing.T) {
	_, down, _ := lineSetup(16, 1, 1, 50, 4)
	for tile := 0; tile < down.Tl.TBox.Size(); tile += 7 {
		for a := 0; a < 2; a++ {
			tid, ax, inter := down.DecodeEdge(down.AxisEdgeID(tile, a))
			if tid != tile || ax != a || inter {
				t.Fatalf("axis edge decode (%d,%d) -> (%d,%d,%v)", tile, a, tid, ax, inter)
			}
		}
		tid, _, inter := down.DecodeEdge(down.InteriorEdgeID(tile))
		if tid != tile || !inter {
			t.Fatalf("interior edge decode %d -> (%d,%v)", tile, tid, inter)
		}
	}
}

func TestLightestRouteStraightLine(t *testing.T) {
	st, down, _ := lineSetup(32, 2, 2, 200, 4)
	pk := ipp.New(100, down.Cap)
	r := &grid.Request{Src: grid.Vec{1}, Dst: grid.Vec{9}, Arrival: 0, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	route := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 100)
	if route == nil {
		t.Fatal("no route found")
	}
	// With zero weights the lightest route is the spatially-direct one:
	// src tile (0, ...) to dest tile row 9/4 = 2; minimal tiles = 3.
	if route.NumTiles() != 3 {
		t.Fatalf("route has %d tiles, want 3: axes %v", route.NumTiles(), route.Axes)
	}
	if route.Cost != 0 {
		t.Fatalf("initial cost = %v, want 0", route.Cost)
	}
	// Edge list interleaves interiors: 3 interiors + 2 axis edges.
	if len(route.Edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(route.Edges))
	}
}

func TestLightestRouteRespectsDeadlineRay(t *testing.T) {
	st, down, _ := lineSetup(32, 2, 2, 200, 4)
	pk := ipp.New(100, down.Cap)
	// Tight deadline: only earliest copies qualify.
	r := &grid.Request{Src: grid.Vec{1}, Dst: grid.Vec{9}, Arrival: 0, Deadline: 9}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	if wHi-wLo > 9 {
		t.Fatalf("ray too wide: [%d,%d]", wLo, wHi)
	}
	route := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 100)
	if route == nil {
		t.Fatal("route should exist for feasible deadline")
	}
	// Infeasible spatial request.
	r2 := &grid.Request{Src: grid.Vec{20}, Dst: grid.Vec{9}, Arrival: 0, Deadline: grid.InfDeadline}
	src2 := st.SourcePoint(r2)
	if down.LightestRoute(pk, src2, r2.Dst, wLo, wHi, 100) != nil {
		t.Fatal("backwards request must have no route")
	}
}

func TestMaxTilesBudget(t *testing.T) {
	st, down, _ := lineSetup(64, 2, 2, 400, 4)
	pk := ipp.New(1000, down.Cap)
	r := &grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{40}, Arrival: 0, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	// Needs ≥ 11 tiles spatially (rows 0..10); a budget of 5 must fail.
	if down.LightestRoute(pk, src, r.Dst, wLo, wHi, 5) != nil {
		t.Fatal("budget 5 should make route impossible")
	}
	route := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 11)
	if route == nil || route.NumTiles() != 11 {
		t.Fatalf("budget 11 should give exactly 11 tiles, got %v", route)
	}
}

func TestWeightsDivertRoutes(t *testing.T) {
	st, down, _ := lineSetup(16, 3, 3, 200, 4)
	pk := ipp.New(50, down.Cap)
	r := &grid.Request{Src: grid.Vec{1}, Dst: grid.Vec{9}, Arrival: 0, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	// Saturate the direct route a few times; the oracle should start
	// picking routes that detour in w.
	var first *Route
	for i := 0; i < 6; i++ {
		route := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 50)
		if route == nil {
			break
		}
		if first == nil {
			first = route
		}
		if !pk.Offer(route.Edges, route.Cost) {
			break
		}
	}
	last := down.LightestRoute(pk, src, r.Dst, wLo, wHi, 50)
	if last == nil {
		t.Fatal("expected some route even under load")
	}
	if last.Cost <= first.Cost {
		t.Fatalf("route cost should grow under load: first %v last %v", first.Cost, last.Cost)
	}
}

func TestRouteTilesConsistent(t *testing.T) {
	st, _, raw := lineSetup(32, 1, 1, 200, 8)
	pk := ipp.New(100, raw.Cap)
	r := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{20}, Arrival: 3, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	route := raw.LightestRoute(pk, src, r.Dst, wLo, wHi, 100)
	if route == nil {
		t.Fatal("no route")
	}
	// Tiles must be adjacent along the declared axes.
	tc := make([]int, 2)
	prev := make([]int, 2)
	raw.TileCoords(route.Tiles[0], prev)
	for i, a := range route.Axes {
		raw.TileCoords(route.Tiles[i+1], tc)
		prev[a]++
		if tc[0] != prev[0] || tc[1] != prev[1] {
			t.Fatalf("tile %d not adjacent along axis %d", i+1, a)
		}
	}
	// Raw mode: no interior edges in the list.
	if len(route.Edges) != len(route.Axes) {
		t.Fatalf("raw route edges %d != axes %d", len(route.Edges), len(route.Axes))
	}
	// First tile contains the source point.
	if raw.Tl.TileID(src) != route.Tiles[0] {
		t.Fatal("route does not start at source tile")
	}
}

func TestGrid2DRoute(t *testing.T) {
	g := grid.New([]int{8, 8}, 3, 3)
	st := spacetime.New(g, 100)
	tl := tiling.New(st.Box, []int{3, 3, 3}, []int{0, 0, 0})
	sk := New(st, tl, Downscaled)
	// Interior capacity should be d+1 = 3.
	if got := sk.Cap(sk.InteriorEdgeID(0)); got != 3 {
		t.Fatalf("2-d interior cap = %v, want 3", got)
	}
	pk := ipp.New(100, sk.Cap)
	r := &grid.Request{Src: grid.Vec{0, 1}, Dst: grid.Vec{6, 5}, Arrival: 0, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	route := sk.LightestRoute(pk, src, r.Dst, wLo, wHi, 100)
	if route == nil {
		t.Fatal("no 2-d route")
	}
	if !pk.Offer(route.Edges, route.Cost) {
		t.Fatal("first 2-d offer should be accepted")
	}
}
