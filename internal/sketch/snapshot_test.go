package sketch

import (
	"math"
	"reflect"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
)

// TestSnapshotSolveParity drives the speculative query API against the
// canonical oracle under evolving weights: for every query,
// PrepareQuery + SnapshotWindow + SolveSnapshot on a full-universe snapshot
// buffer must produce exactly the route LightestRouteInto computes on the
// live weights — the identity the engine's speculation commit rests on.
func TestSnapshotSolveParity(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	live := down.NewSession()
	spec := down.NewSession()
	xs := make([]float64, down.Universe())
	var want, got Route
	found := 0
	for q := 0; q < 60; q++ {
		r := &grid.Request{
			Src: grid.Vec{q % 8}, Dst: grid.Vec{8 + q%20},
			Arrival: int64(q / 2), Deadline: grid.InfDeadline,
		}
		src := st.SourcePoint(r)
		wLo, wHi := st.DestRay(r)
		liveOK := live.LightestRouteInto(pk, src, r.Dst, wLo, wHi, 50, &want)

		prepOK := spec.PrepareQuery(src, r.Dst, wLo, wHi, 50)
		if prepOK {
			spec.SnapshotWindow(pk.Weights(), xs)
		}
		specOK := prepOK && spec.SolveSnapshot(xs, false, &got)
		if liveOK != specOK {
			t.Fatalf("q %d: live ok=%v, snapshot ok=%v", q, liveOK, specOK)
		}
		if !liveOK {
			pk.Offer(nil, 0)
			continue
		}
		found++
		if !reflect.DeepEqual(want.Tiles, got.Tiles) || !reflect.DeepEqual(want.Axes, got.Axes) ||
			!reflect.DeepEqual(want.Edges, got.Edges) || want.Cost != got.Cost {
			t.Fatalf("q %d: snapshot route diverges:\n got %+v\nwant %+v", q, got, want)
		}
		pk.Offer(want.Edges, want.Cost)
	}
	if found == 0 {
		t.Fatal("no query found a route; parity exercised nothing")
	}
}

// TestSnapshotSkipParity pins the speculation fast path: after a solve, an
// identical prepared query with skipDP=true must extract the same route
// without re-copying or re-relaxing; after the weights move and a fresh
// snapshot is taken, skipDP=false must track the live answer again.
func TestSnapshotSkipParity(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	sess := down.NewSession()
	xs := make([]float64, down.Universe())
	var first, again, moved Route

	r := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{17}, Arrival: 1, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	if !sess.PrepareQuery(src, r.Dst, wLo, wHi, 50) {
		t.Fatal("prepare failed")
	}
	sess.SnapshotWindow(pk.Weights(), xs)
	if !sess.SolveSnapshot(xs, false, &first) {
		t.Fatal("first solve failed")
	}
	if !sess.PreparedUnchanged() {
		t.Fatal("PreparedUnchanged false immediately after its own solve")
	}
	// Re-prepare the identical query and skip the DP.
	if !sess.PrepareQuery(src, r.Dst, wLo, wHi, 50) {
		t.Fatal("re-prepare failed")
	}
	if !sess.SolveSnapshot(xs, true, &again) {
		t.Fatal("skip solve failed")
	}
	if !reflect.DeepEqual(first.Edges, again.Edges) || first.Cost != again.Cost {
		t.Fatalf("skip path diverges: %+v vs %+v", again, first)
	}

	// Commit the route, refresh the snapshot, and check the new cost is the
	// live one (the first edge weights are now non-zero).
	if !pk.Offer(first.Edges, first.Cost) {
		t.Fatal("offer rejected a zero-cost path")
	}
	if !sess.PrepareQuery(src, r.Dst, wLo, wHi, 50) {
		t.Fatal("third prepare failed")
	}
	sess.SnapshotWindow(pk.Weights(), xs)
	if !sess.SolveSnapshot(xs, false, &moved) {
		t.Fatal("post-commit solve failed")
	}
	wantCost := pk.Cost(moved.Edges)
	if math.Abs(moved.Cost-wantCost) > 1e-12 {
		t.Fatalf("post-commit snapshot cost %v, live cost %v", moved.Cost, wantCost)
	}
	if moved.Cost == first.Cost {
		t.Fatal("commit did not move the cost; weight tracking not exercised")
	}
}

// TestSnapshotWindowCopiesOnlyWindow checks the O(window) contract: rows
// inside the prepared window land in the snapshot buffer exactly, and ids
// outside it are never touched (sentinel survives) — including the
// interior-edge tail in Downscaled mode.
func TestSnapshotWindowCopiesOnlyWindow(t *testing.T) {
	st, down, _ := lineSetup(32, 3, 3, 200, 4)
	pk := ipp.NewDense(50, down.Cap, down.Universe())
	sess := down.NewSession()

	// Give every edge a distinctive weight via direct commits.
	from := pk.Weights()
	for i := range from {
		from[i] = float64(i) + 0.5
	}

	r := &grid.Request{Src: grid.Vec{9}, Dst: grid.Vec{20}, Arrival: 4, Deadline: grid.InfDeadline}
	src := st.SourcePoint(r)
	wLo, wHi := st.DestRay(r)
	if !sess.PrepareQuery(src, r.Dst, wLo, wHi, 50) {
		t.Fatal("prepare failed")
	}
	const sentinel = -1.0
	into := make([]float64, down.Universe())
	for i := range into {
		into[i] = sentinel
	}
	sess.SnapshotWindow(from, into)

	lo, hi := sess.Window()
	axes := down.axes
	base := down.Tl.TBox.Size() * axes
	pt := make([]int, axes)
	inWindow := func(tile int) bool {
		down.TileCoords(tile, pt)
		for a := range pt {
			if pt[a] < lo[a] || pt[a] >= hi[a] {
				return false
			}
		}
		return true
	}
	copied, skipped := 0, 0
	for tile := 0; tile < down.Tl.TBox.Size(); tile++ {
		ids := []int{base + tile}
		for a := 0; a < axes; a++ {
			ids = append(ids, tile*axes+a)
		}
		for _, id := range ids {
			if inWindow(tile) {
				if into[id] != from[id] {
					t.Fatalf("window id %d (tile %d): got %v, want %v", id, tile, into[id], from[id])
				}
				copied++
			} else if into[id] != sentinel {
				t.Fatalf("out-of-window id %d (tile %d) was written: %v", id, tile, into[id])
			} else {
				skipped++
			}
		}
	}
	if copied == 0 || skipped == 0 {
		t.Fatalf("degenerate window (copied=%d skipped=%d); contract not exercised", copied, skipped)
	}
}
