// Package sketch builds the sketch graph over the tiles of an untilted
// space-time lattice (Sec. 3.4 of Even–Medina) and provides the
// lightest-path oracle that reduces packet requests to online integral path
// packing (Sec. 5.1).
//
// Two capacity modes exist:
//
//   - Downscaled ({1, d+1, ∞}, Sec. 5.1 and Sec. 6): inter-tile edges get
//     capacity 1 and the interior edge of every split tile gets capacity d+1
//     (2 on a line). Used by the deterministic algorithm; the interior edges
//     are folded into the shortest-path DP as node weights, so the split is
//     never materialized.
//   - Raw (Sec. 7.2): a space-axis edge gets capacity c·(face area), the w
//     edge gets B·(face area); there are no interior edges. Used by the
//     randomized algorithm.
//
// Sink nodes (one per destination, or per request when deadlines are
// present) have infinite capacity, so their edges never acquire weight and
// are simply omitted: the oracle minimizes over the destination tiles.
package sketch

import (
	"math"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// Mode selects the capacity assignment.
type Mode int

const (
	// Downscaled is the {1, d+1, ∞} assignment of the deterministic
	// algorithm.
	Downscaled Mode = iota
	// Raw keeps the aggregated tile-face capacities (randomized algorithm).
	Raw
)

// Graph is a sketch graph over the tiles of a space-time lattice. The Graph
// itself holds only immutable topology (tiling, capacities, edge-id scheme);
// all per-query mutable state lives in Sessions, so a long-lived Graph can
// back any number of query sessions (the streaming engine keeps one warm
// Session per engine, batch callers use the Graph's own default session).
type Graph struct {
	ST   *spacetime.Graph
	Tl   *tiling.Tiling
	Mode Mode

	// axes is d+1 (number of lattice axes).
	axes     int
	faceArea []int // Π side[j], j≠axis

	// def is the Graph's default session, backing the LightestRoute
	// convenience method (not safe for concurrent use, like before).
	def *Session
}

// New builds a sketch graph for st under tiling tl.
func New(st *spacetime.Graph, tl *tiling.Tiling, mode Mode) *Graph {
	axes := st.G.D() + 1
	g := &Graph{
		ST: st, Tl: tl, Mode: mode,
		axes: axes,
	}
	g.faceArea = make([]int, axes)
	for a := 0; a < axes; a++ {
		area := 1
		for j := 0; j < axes; j++ {
			if j != a {
				area *= tl.Side[j]
			}
		}
		g.faceArea[a] = area
	}
	g.def = g.NewSession()
	return g
}

// Session holds the mutable state of lightest-route queries against one
// persistent Graph: the lattice DP and the coordinate scratch buffers. A
// Session is reusable across any number of queries and grows its buffers
// once; it is not safe for concurrent use, but distinct Sessions of the same
// Graph are independent.
type Session struct {
	g  *Graph
	dp *lattice.DP

	// scratch buffers
	srcTile []int
	dstTile []int
	winLo   []int
	winHi   []int
	probe   []int
	snapCur []int        // SnapshotWindow row odometer
	path    lattice.Path // reused by LightestRouteInto

	// Prepared-query geometry (PrepareQuery): the destination ray on the w
	// axis, inclusive, in tile coordinates.
	rayLo, rayHi int

	// Snapshot-solve cache (SolveSnapshot): the window/source of the last
	// snapshot relaxation. When the prepared query matches and the caller
	// asserts the snapshot weights are unchanged, the DP is skipped.
	specWinLo []int
	specWinHi []int
	specSrc   []int
	specValid bool

	// Warm-start cache (dense packers only): the DP solution of the last
	// query stays valid while the packer's version is unchanged, and repairs
	// incrementally when exactly one path committed since — the committed
	// edges (ipp.LastCommitted) seed a re-relaxation frontier instead of a
	// full window sweep. Any window/source/packer mismatch, a multi-commit
	// delta, or a frontier overflow falls back to the full RunFlat.
	warm      bool
	lastPk    *ipp.Packer
	lastVer   uint64
	lastWinLo []int
	lastWinHi []int
	lastSrc   []int
	lastValid bool
	dirtyBuf  []int
}

// NewSession creates a fresh query session over the graph.
func (g *Graph) NewSession() *Session {
	return &Session{
		g:       g,
		dp:      g.Tl.TBox.NewDP(),
		srcTile: make([]int, g.axes),
		dstTile: make([]int, g.axes),
		winLo:   make([]int, g.axes),
		winHi:   make([]int, g.axes),
		probe:   make([]int, g.axes),
		snapCur: make([]int, g.axes),

		warm:      true,
		lastWinLo: make([]int, g.axes),
		lastWinHi: make([]int, g.axes),
		lastSrc:   make([]int, g.axes),

		specWinLo: make([]int, g.axes),
		specWinHi: make([]int, g.axes),
		specSrc:   make([]int, g.axes),
	}
}

// SetWarmStart toggles incremental DP reuse between successive queries
// (default on). Warm and cold sessions answer every query identically — the
// incremental repair is bit-exact — so this exists for benchmarks, parity
// tests, and as an escape hatch.
func (s *Session) SetWarmStart(on bool) {
	s.warm = on
	s.lastValid = false
}

// SetDPPool attaches a wavefront worker pool to the session's DP: queries
// whose windows clear the pool's crossover run the relaxation in parallel,
// bit-identically to the serial sweep.
func (s *Session) SetDPPool(p *lattice.Pool) { s.dp.SetPool(p) }

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// warmRun tries to satisfy the current query (window/source already in
// s.winLo/s.winHi/s.srcTile) from the cached DP solution. It reports true
// when the cached state is current — either untouched (version delta 0: skip
// the DP entirely) or repaired in place via RerunFlat (delta 1). False means
// the caller must run the full sweep.
//
//gridroute:hotpath
func (s *Session) warmRun(pk *ipp.Packer, xs, nodeX []float64) bool {
	if !s.warm || !s.lastValid || pk != s.lastPk ||
		!equalInts(s.lastWinLo, s.winLo) || !equalInts(s.lastWinHi, s.winHi) ||
		!equalInts(s.lastSrc, s.srcTile) {
		return false
	}
	switch pk.Version() - s.lastVer {
	case 0:
		return true // no commit since: weights, and so the solution, unchanged
	case 1:
		seeds := s.dirtyBuf[:0]
		for _, e := range pk.LastCommitted() {
			tile, axis, interior := s.g.DecodeEdge(e)
			if interior {
				// Interior (node) weight: every path through the tile repays
				// its visit cost, so the tile's own value is dirty.
				seeds = append(seeds, tile)
				continue
			}
			if head, ok := s.g.Tl.TBox.Step(tile, axis); ok {
				seeds = append(seeds, head)
			}
		}
		s.dirtyBuf = seeds
		return s.dp.RerunFlat(seeds, xs, nodeX, 0)
	default:
		return false
	}
}

// Universe returns the size of the sketch graph's ipp edge-id space:
// TBox.Size()·axes inter-tile edges followed by TBox.Size() interior edges.
// It is the universe argument for ipp.NewDense; the resulting weight slice
// is laid out so the lightest-path DP can index it directly (RunFlat).
func (g *Graph) Universe() int {
	return g.Tl.TBox.Size() * (g.axes + 1)
}

// AxisEdgeID returns the ipp edge id of the inter-tile edge leaving tileID
// along axis.
func (g *Graph) AxisEdgeID(tileID, axis int) ipp.EdgeID {
	return ipp.EdgeID(tileID*g.axes + axis)
}

// InteriorEdgeID returns the ipp edge id of the interior edge of a split
// tile (Downscaled mode only).
func (g *Graph) InteriorEdgeID(tileID int) ipp.EdgeID {
	return ipp.EdgeID(g.Tl.TBox.Size()*g.axes + tileID)
}

// DecodeEdge inverts the edge id scheme: it returns (tileID, axis, interior).
func (g *Graph) DecodeEdge(e ipp.EdgeID) (tileID, axis int, interior bool) {
	n := int(e)
	base := g.Tl.TBox.Size() * g.axes
	if n >= base {
		return n - base, -1, true
	}
	return n / g.axes, n % g.axes, false
}

// Cap returns the capacity of an edge under the graph's mode. It is the
// CapFunc handed to the ipp packer.
func (g *Graph) Cap(e ipp.EdgeID) float64 {
	_, axis, interior := g.DecodeEdge(e)
	switch g.Mode {
	case Downscaled:
		if interior {
			return float64(g.ST.G.D() + 1)
		}
		return 1
	default: // Raw
		if interior {
			return math.Inf(1)
		}
		return float64(g.ST.Cap(axis) * g.faceArea[axis])
	}
}

// RawCap returns the aggregated (pre-downscaling) capacity of an inter-tile
// edge along axis: c·faceArea for space axes, B·faceArea for the w axis
// (Sec. 3.4: "c·τ and B·Q" on a line).
func (g *Graph) RawCap(axis int) int {
	return g.ST.Cap(axis) * g.faceArea[axis]
}

// RawNodeCap returns the paper's tile node capacity
// (d+1)·k^{d+1}·(B + d·c) — 2·k²·(B+c) on a line.
func (g *Graph) RawNodeCap() int {
	d := g.ST.G.D()
	vol := 1
	for _, s := range g.Tl.Side {
		vol *= s
	}
	return (d + 1) * vol * (g.ST.G.B + d*g.ST.G.C)
}

// Route is a sketch path: a sequence of tiles, the axes stepped between
// them, and the flat ipp edge list (including interior edges in Downscaled
// mode) with its current total weight.
type Route struct {
	Tiles []int // dense tile ids, len = len(Axes)+1
	Axes  []uint8
	Edges []ipp.EdgeID
	Cost  float64
}

// NumTiles returns the number of tiles traversed.
func (r *Route) NumTiles() int { return len(r.Tiles) }

// LightestRoute finds the lightest sketch path on the Graph's default
// session. It is a convenience for single-threaded batch callers; see
// Session.LightestRoute.
func (g *Graph) LightestRoute(pk *ipp.Packer, srcPoint []int, dst grid.Vec, wLo, wHi int, maxTiles int) *Route {
	return g.def.LightestRoute(pk, srcPoint, dst, wLo, wHi, maxTiles)
}

// LightestRoute finds the lightest sketch path for a request from the tile
// containing srcPoint to any tile containing a copy of the destination
// (spatial coordinates dst, w ∈ [wLo, wHi]), visiting at most maxTiles
// tiles. It returns nil when no legal route exists.
//
// In Downscaled mode the cost includes the interior edge of every visited
// tile (the path s¹_in → … → sᴸ_out of Sec. 5.1).
func (s *Session) LightestRoute(pk *ipp.Packer, srcPoint []int, dst grid.Vec, wLo, wHi int, maxTiles int) *Route {
	r := &Route{}
	if !s.LightestRouteInto(pk, srcPoint, dst, wLo, wHi, maxTiles, r) {
		return nil
	}
	return r
}

// PrepareQuery computes the weight-independent geometry of a lightest-route
// query: source/destination tiles, the destination ray on the w axis, and
// the DP window, all stored in the session. It reports false when no legal
// route can exist for purely geometric reasons (destination behind source,
// empty w ray, tile budget exceeded) — exactly the weight-independent
// no-route cases of LightestRouteInto, so a false here is a final verdict
// regardless of packer state. After a true return the caller solves the
// prepared window with LightestRouteInto (canonical weights) or
// SnapshotWindow/SolveSnapshot (speculative weights).
//
//gridroute:hotpath
func (s *Session) PrepareQuery(srcPoint []int, dst grid.Vec, wLo, wHi int, maxTiles int) bool {
	g := s.g
	d := g.ST.G.D()
	wa := d // the w axis index
	g.Tl.TileOf(srcPoint, s.srcTile)

	// Destination tile coordinates: fixed per space axis, ranging on w.
	for i := 0; i < d; i++ {
		s.dstTile[i] = lattice.FloorDiv(dst[i]-g.Tl.Phase[i], g.Tl.Side[i])
		if s.dstTile[i] < s.srcTile[i] {
			return false // unreachable (cannot happen for feasible requests)
		}
	}
	dwLo := lattice.FloorDiv(wLo-g.Tl.Phase[wa], g.Tl.Side[wa])
	dwHi := lattice.FloorDiv(wHi-g.Tl.Phase[wa], g.Tl.Side[wa])
	if dwLo < s.srcTile[wa] {
		dwLo = s.srcTile[wa]
	}
	if dwHi > g.Tl.TBox.Hi[wa]-1 {
		dwHi = g.Tl.TBox.Hi[wa] - 1
	}
	if dwHi < dwLo {
		return false
	}

	// Tile-count bound: L tiles means L−1 = L1 distance steps; clip the w
	// extent so that spatialDist + wSteps ≤ maxTiles−1.
	spatial := 0
	for i := 0; i < d; i++ {
		spatial += s.dstTile[i] - s.srcTile[i]
	}
	if budget := maxTiles - 1 - spatial; budget < 0 {
		return false
	} else if dwHi > s.srcTile[wa]+budget {
		dwHi = s.srcTile[wa] + budget
	}
	if dwHi < dwLo {
		return false
	}
	s.rayLo, s.rayHi = dwLo, dwHi

	// DP window: [srcTile .. dstTile] per space axis, [srcW .. dwHi] on w.
	for i := 0; i < d; i++ {
		s.winLo[i] = s.srcTile[i]
		s.winHi[i] = s.dstTile[i] + 1
	}
	s.winLo[wa] = s.srcTile[wa]
	s.winHi[wa] = dwHi + 1
	return true
}

// extractRoute minimizes the solved DP over the prepared destination ray and
// materializes the winning path into out. False means every ray tile is
// unreachable under the solved weights.
//
//gridroute:hotpath
func (s *Session) extractRoute(out *Route) bool {
	wa := s.g.ST.G.D()
	best := math.Inf(1)
	bestW := 0
	probe := s.probe
	copy(probe, s.dstTile)
	for w := s.rayLo; w <= s.rayHi; w++ {
		probe[wa] = w
		if c := s.dp.CostAt(probe); c < best {
			best = c
			bestW = w
		}
	}
	if math.IsInf(best, 1) {
		return false
	}
	probe[wa] = bestW
	if !s.dp.PathInto(probe, &s.path) {
		return false
	}
	s.routeInto(&s.path, best, out)
	return true
}

// LightestRouteInto is LightestRoute writing into a caller-provided Route,
// reusing its slices. It reports false (leaving out unspecified) when no
// legal route exists. A warm (Session, Route) pair queries without
// allocating — the property the streaming engine's 0-alloc admit gate rests
// on.
//
//gridroute:hotpath
func (s *Session) LightestRouteInto(pk *ipp.Packer, srcPoint []int, dst grid.Vec, wLo, wHi int, maxTiles int, out *Route) bool {
	if !s.PrepareQuery(srcPoint, dst, wLo, wHi, maxTiles) {
		return false
	}
	g := s.g
	s.specValid = false // the DP state below reflects live, not snapshot, weights
	if xs := pk.Weights(); xs != nil {
		// Dense packer: AxisEdgeID(id, a) = id·axes+a matches RunFlat's edge
		// layout, and the interior-edge weights form the contiguous tail of
		// the universe — exactly RunFlat's node-weight slice.
		var nodeX []float64
		if g.Mode == Downscaled {
			nodeX = xs[g.Tl.TBox.Size()*g.axes:]
		}
		if !s.warmRun(pk, xs, nodeX) {
			s.dp.RunFlat(s.winLo, s.winHi, s.srcTile, xs, nodeX)
		}
		if s.warm {
			s.lastPk, s.lastVer, s.lastValid = pk, pk.Version(), true
			copy(s.lastWinLo, s.winLo)
			copy(s.lastWinHi, s.winHi)
			copy(s.lastSrc, s.srcTile)
		}
	} else {
		var nodeW lattice.NodeWeight
		if g.Mode == Downscaled {
			nodeW = func(id int) float64 { return pk.Weight(g.InteriorEdgeID(id)) } //gridlint:allow closure-mode fallback: cold path, flat kernels serve steady state
		}
		edgeW := func(id, a int) float64 { return pk.Weight(g.AxisEdgeID(id, a)) } //gridlint:allow closure-mode fallback: cold path, flat kernels serve steady state
		s.dp.Run(s.winLo, s.winHi, s.srcTile, edgeW, nodeW)
		s.lastValid = false // closure runs leave no flat state to warm-start
	}
	return s.extractRoute(out)
}

// Window exposes the DP window prepared by the last PrepareQuery as views
// into session scratch: valid until the next PrepareQuery, must not be
// mutated. Speculation validation uses it to test committed edges for
// overlap with the window a snapshot solve read.
func (s *Session) Window() (lo, hi []int) { return s.winLo, s.winHi }

// SnapshotWindow copies the weight rows covered by the prepared window from
// the dense packer weight slice `from` into the caller's snapshot buffer
// `into` (both laid out over the full edge universe, Universe() long). Only
// the window's rows are touched, so a snapshot costs O(window), not
// O(universe). The axis-edge weights of a contiguous last-axis run of tiles
// are themselves contiguous (AxisEdgeID stride), as are the interior-edge
// weights in Downscaled mode, so each row is two copy calls.
//
//gridroute:rlock
//gridroute:hotpath
func (s *Session) SnapshotWindow(from, into []float64) {
	g := s.g
	tb := g.Tl.TBox
	axes := g.axes
	last := axes - 1
	n := s.winHi[last] - s.winLo[last]
	base := tb.Size() * axes
	cur := s.snapCur
	copy(cur, s.winLo)
	for {
		start := tb.Index(cur)
		copy(into[start*axes:(start+n)*axes], from[start*axes:(start+n)*axes])
		if g.Mode == Downscaled {
			copy(into[base+start:base+start+n], from[base+start:base+start+n])
		}
		a := last - 1
		for ; a >= 0; a-- {
			cur[a]++
			if cur[a] < s.winHi[a] {
				break
			}
			cur[a] = s.winLo[a]
		}
		if a < 0 {
			break
		}
	}
}

// PreparedUnchanged reports whether the window and source prepared by the
// last PrepareQuery match the session's last snapshot solve. Together with
// an unchanged packer version this lets a speculation worker skip both the
// weight copy and the DP and go straight to route extraction.
//
//gridroute:hotpath
func (s *Session) PreparedUnchanged() bool {
	return s.specValid && equalInts(s.specWinLo, s.winLo) &&
		equalInts(s.specWinHi, s.winHi) && equalInts(s.specSrc, s.srcTile)
}

// SolveSnapshot runs the lightest-route DP for the prepared query over a
// snapshot weight slice (laid out like the packer's dense weights) and
// extracts the route into out. When skipDP is true the caller asserts the
// DP state already holds this exact solve (PreparedUnchanged and an
// unchanged snapshot) and only extraction runs. The session's packer-keyed
// warm cache is invalidated: the DP state now reflects snapshot, not live,
// weights.
//
//gridroute:hotpath
func (s *Session) SolveSnapshot(xs []float64, skipDP bool, out *Route) bool {
	if !skipDP || !s.PreparedUnchanged() {
		var nodeX []float64
		if s.g.Mode == Downscaled {
			nodeX = xs[s.g.Tl.TBox.Size()*s.g.axes:]
		}
		s.dp.RunFlat(s.winLo, s.winHi, s.srcTile, xs, nodeX)
		copy(s.specWinLo, s.winLo)
		copy(s.specWinHi, s.winHi)
		copy(s.specSrc, s.srcTile)
		s.specValid = true
	}
	s.lastValid = false
	return s.extractRoute(out)
}

// LightestRouteMasked is LightestRouteInto under a resource-outage mask: the
// query is solved over a snapshot of the dense packer weights in which every
// blocked edge id costs +Inf, so no route can traverse a failed resource.
// Reported costs remain true live costs — a masked edge can only appear on an
// infinite-cost route, which extraction rejects. buf must be Universe() long;
// only the prepared window's rows are (re)written per call, and entries
// outside the window may hold stale values from earlier calls — the DP never
// reads outside the window, so they are harmless. Requires a dense packer.
func (s *Session) LightestRouteMasked(pk *ipp.Packer, srcPoint []int, dst grid.Vec, wLo, wHi int, maxTiles int, blocked []ipp.EdgeID, buf []float64, out *Route) bool {
	if !s.PrepareQuery(srcPoint, dst, wLo, wHi, maxTiles) {
		return false
	}
	xs := pk.Weights()
	if xs == nil {
		panic("sketch: LightestRouteMasked requires a dense packer")
	}
	s.SnapshotWindow(xs, buf)
	for _, e := range blocked {
		buf[e] = math.Inf(1)
	}
	// The buffer was mutated after the copy: never let a later snapshot solve
	// skip the DP on the strength of this one.
	s.specValid = false
	return s.SolveSnapshot(buf, false, out)
}

// routeInto materializes a DP path as a sketch Route, reusing out's slices.
//
//gridroute:hotpath
func (s *Session) routeInto(p *lattice.Path, cost float64, out *Route) {
	g := s.g
	tiles := out.Tiles[:0]
	axes := append(out.Axes[:0], p.Axes...)
	edges := out.Edges[:0]
	cur := s.probe
	copy(cur, p.Start)
	id := g.Tl.TBox.Index(cur)
	tiles = append(tiles, id)
	if g.Mode == Downscaled {
		edges = append(edges, g.InteriorEdgeID(id))
	}
	for _, a := range p.Axes {
		edges = append(edges, g.AxisEdgeID(id, int(a)))
		cur[a]++
		id = g.Tl.TBox.Index(cur)
		tiles = append(tiles, id)
		if g.Mode == Downscaled {
			edges = append(edges, g.InteriorEdgeID(id))
		}
	}
	out.Tiles, out.Axes, out.Edges, out.Cost = tiles, axes, edges, cost
}

// TileCoords returns the tile coordinates of a dense tile id.
func (g *Graph) TileCoords(tileID int, out []int) []int {
	return g.Tl.TBox.Point(tileID, out)
}
