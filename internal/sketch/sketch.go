// Package sketch builds the sketch graph over the tiles of an untilted
// space-time lattice (Sec. 3.4 of Even–Medina) and provides the
// lightest-path oracle that reduces packet requests to online integral path
// packing (Sec. 5.1).
//
// Two capacity modes exist:
//
//   - Downscaled ({1, d+1, ∞}, Sec. 5.1 and Sec. 6): inter-tile edges get
//     capacity 1 and the interior edge of every split tile gets capacity d+1
//     (2 on a line). Used by the deterministic algorithm; the interior edges
//     are folded into the shortest-path DP as node weights, so the split is
//     never materialized.
//   - Raw (Sec. 7.2): a space-axis edge gets capacity c·(face area), the w
//     edge gets B·(face area); there are no interior edges. Used by the
//     randomized algorithm.
//
// Sink nodes (one per destination, or per request when deadlines are
// present) have infinite capacity, so their edges never acquire weight and
// are simply omitted: the oracle minimizes over the destination tiles.
package sketch

import (
	"math"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// Mode selects the capacity assignment.
type Mode int

const (
	// Downscaled is the {1, d+1, ∞} assignment of the deterministic
	// algorithm.
	Downscaled Mode = iota
	// Raw keeps the aggregated tile-face capacities (randomized algorithm).
	Raw
)

// Graph is a sketch graph over the tiles of a space-time lattice.
type Graph struct {
	ST   *spacetime.Graph
	Tl   *tiling.Tiling
	Mode Mode

	// axes is d+1 (number of lattice axes).
	axes int
	dp   *lattice.DP

	// scratch buffers
	srcTile  []int
	dstTile  []int
	winLo    []int
	winHi    []int
	probe    []int
	faceArea []int // Π side[j], j≠axis
}

// New builds a sketch graph for st under tiling tl.
func New(st *spacetime.Graph, tl *tiling.Tiling, mode Mode) *Graph {
	axes := st.G.D() + 1
	g := &Graph{
		ST: st, Tl: tl, Mode: mode,
		axes:    axes,
		dp:      tl.TBox.NewDP(),
		srcTile: make([]int, axes),
		dstTile: make([]int, axes),
		winLo:   make([]int, axes),
		winHi:   make([]int, axes),
		probe:   make([]int, axes),
	}
	g.faceArea = make([]int, axes)
	for a := 0; a < axes; a++ {
		area := 1
		for j := 0; j < axes; j++ {
			if j != a {
				area *= tl.Side[j]
			}
		}
		g.faceArea[a] = area
	}
	return g
}

// Universe returns the size of the sketch graph's ipp edge-id space:
// TBox.Size()·axes inter-tile edges followed by TBox.Size() interior edges.
// It is the universe argument for ipp.NewDense; the resulting weight slice
// is laid out so the lightest-path DP can index it directly (RunFlat).
func (g *Graph) Universe() int {
	return g.Tl.TBox.Size() * (g.axes + 1)
}

// AxisEdgeID returns the ipp edge id of the inter-tile edge leaving tileID
// along axis.
func (g *Graph) AxisEdgeID(tileID, axis int) ipp.EdgeID {
	return ipp.EdgeID(tileID*g.axes + axis)
}

// InteriorEdgeID returns the ipp edge id of the interior edge of a split
// tile (Downscaled mode only).
func (g *Graph) InteriorEdgeID(tileID int) ipp.EdgeID {
	return ipp.EdgeID(g.Tl.TBox.Size()*g.axes + tileID)
}

// DecodeEdge inverts the edge id scheme: it returns (tileID, axis, interior).
func (g *Graph) DecodeEdge(e ipp.EdgeID) (tileID, axis int, interior bool) {
	n := int(e)
	base := g.Tl.TBox.Size() * g.axes
	if n >= base {
		return n - base, -1, true
	}
	return n / g.axes, n % g.axes, false
}

// Cap returns the capacity of an edge under the graph's mode. It is the
// CapFunc handed to the ipp packer.
func (g *Graph) Cap(e ipp.EdgeID) float64 {
	_, axis, interior := g.DecodeEdge(e)
	switch g.Mode {
	case Downscaled:
		if interior {
			return float64(g.ST.G.D() + 1)
		}
		return 1
	default: // Raw
		if interior {
			return math.Inf(1)
		}
		return float64(g.ST.Cap(axis) * g.faceArea[axis])
	}
}

// RawCap returns the aggregated (pre-downscaling) capacity of an inter-tile
// edge along axis: c·faceArea for space axes, B·faceArea for the w axis
// (Sec. 3.4: "c·τ and B·Q" on a line).
func (g *Graph) RawCap(axis int) int {
	return g.ST.Cap(axis) * g.faceArea[axis]
}

// RawNodeCap returns the paper's tile node capacity
// (d+1)·k^{d+1}·(B + d·c) — 2·k²·(B+c) on a line.
func (g *Graph) RawNodeCap() int {
	d := g.ST.G.D()
	vol := 1
	for _, s := range g.Tl.Side {
		vol *= s
	}
	return (d + 1) * vol * (g.ST.G.B + d*g.ST.G.C)
}

// Route is a sketch path: a sequence of tiles, the axes stepped between
// them, and the flat ipp edge list (including interior edges in Downscaled
// mode) with its current total weight.
type Route struct {
	Tiles []int // dense tile ids, len = len(Axes)+1
	Axes  []uint8
	Edges []ipp.EdgeID
	Cost  float64
}

// NumTiles returns the number of tiles traversed.
func (r *Route) NumTiles() int { return len(r.Tiles) }

// LightestRoute finds the lightest sketch path for a request from the tile
// containing srcPoint to any tile containing a copy of the destination
// (spatial coordinates dst, w ∈ [wLo, wHi]), visiting at most maxTiles
// tiles. It returns nil when no legal route exists.
//
// In Downscaled mode the cost includes the interior edge of every visited
// tile (the path s¹_in → … → sᴸ_out of Sec. 5.1).
func (g *Graph) LightestRoute(pk *ipp.Packer, srcPoint []int, dst grid.Vec, wLo, wHi int, maxTiles int) *Route {
	d := g.ST.G.D()
	wa := d // the w axis index
	g.Tl.TileOf(srcPoint, g.srcTile)

	// Destination tile coordinates: fixed per space axis, ranging on w.
	for i := 0; i < d; i++ {
		g.dstTile[i] = lattice.FloorDiv(dst[i]-g.Tl.Phase[i], g.Tl.Side[i])
		if g.dstTile[i] < g.srcTile[i] {
			return nil // unreachable (cannot happen for feasible requests)
		}
	}
	dwLo := lattice.FloorDiv(wLo-g.Tl.Phase[wa], g.Tl.Side[wa])
	dwHi := lattice.FloorDiv(wHi-g.Tl.Phase[wa], g.Tl.Side[wa])
	if dwLo < g.srcTile[wa] {
		dwLo = g.srcTile[wa]
	}
	if dwHi > g.Tl.TBox.Hi[wa]-1 {
		dwHi = g.Tl.TBox.Hi[wa] - 1
	}
	if dwHi < dwLo {
		return nil
	}

	// Tile-count bound: L tiles means L−1 = L1 distance steps; clip the w
	// extent so that spatialDist + wSteps ≤ maxTiles−1.
	spatial := 0
	for i := 0; i < d; i++ {
		spatial += g.dstTile[i] - g.srcTile[i]
	}
	if budget := maxTiles - 1 - spatial; budget < 0 {
		return nil
	} else if dwHi > g.srcTile[wa]+budget {
		dwHi = g.srcTile[wa] + budget
	}
	if dwHi < dwLo {
		return nil
	}

	// DP window: [srcTile .. dstTile] per space axis, [srcW .. dwHi] on w.
	for i := 0; i < d; i++ {
		g.winLo[i] = g.srcTile[i]
		g.winHi[i] = g.dstTile[i] + 1
	}
	g.winLo[wa] = g.srcTile[wa]
	g.winHi[wa] = dwHi + 1

	if xs := pk.Weights(); xs != nil {
		// Dense packer: AxisEdgeID(id, a) = id·axes+a matches RunFlat's edge
		// layout, and the interior-edge weights form the contiguous tail of
		// the universe — exactly RunFlat's node-weight slice.
		var nodeX []float64
		if g.Mode == Downscaled {
			nodeX = xs[g.Tl.TBox.Size()*g.axes:]
		}
		g.dp.RunFlat(g.winLo, g.winHi, g.srcTile, xs, nodeX)
	} else {
		var nodeW lattice.NodeWeight
		if g.Mode == Downscaled {
			nodeW = func(id int) float64 { return pk.Weight(g.InteriorEdgeID(id)) }
		}
		edgeW := func(id, a int) float64 { return pk.Weight(g.AxisEdgeID(id, a)) }
		g.dp.Run(g.winLo, g.winHi, g.srcTile, edgeW, nodeW)
	}

	// Minimize over the destination ray.
	best := math.Inf(1)
	bestW := 0
	probe := g.probe
	copy(probe, g.dstTile)
	for w := dwLo; w <= dwHi; w++ {
		probe[wa] = w
		if c := g.dp.CostAt(probe); c < best {
			best = c
			bestW = w
		}
	}
	if math.IsInf(best, 1) {
		return nil
	}
	probe[wa] = bestW
	p := g.dp.PathTo(probe)
	if p == nil {
		return nil
	}
	return g.routeFromPath(p, best)
}

func (g *Graph) routeFromPath(p *lattice.Path, cost float64) *Route {
	r := &Route{
		Tiles: make([]int, 0, len(p.Axes)+1),
		Axes:  append([]uint8(nil), p.Axes...),
		Cost:  cost,
	}
	cur := append([]int(nil), p.Start...)
	id := g.Tl.TBox.Index(cur)
	r.Tiles = append(r.Tiles, id)
	if g.Mode == Downscaled {
		r.Edges = append(r.Edges, g.InteriorEdgeID(id))
	}
	for _, a := range p.Axes {
		r.Edges = append(r.Edges, g.AxisEdgeID(id, int(a)))
		cur[a]++
		id = g.Tl.TBox.Index(cur)
		r.Tiles = append(r.Tiles, id)
		if g.Mode == Downscaled {
			r.Edges = append(r.Edges, g.InteriorEdgeID(id))
		}
	}
	return r
}

// TileCoords returns the tile coordinates of a dense tile id.
func (g *Graph) TileCoords(tileID int, out []int) []int {
	return g.Tl.TBox.Point(tileID, out)
}
