package interval

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDisjointAllAccepted(t *testing.T) {
	var p Packer
	for i := 0; i < 5; i++ {
		out, _ := p.Offer(Interval{Lo: i * 10, Hi: i*10 + 5, ID: i})
		if out != Accepted {
			t.Fatalf("interval %d: outcome %v", i, out)
		}
	}
	s, pr, rj := p.Stats()
	if s != 5 || pr != 0 || rj != 0 {
		t.Fatalf("stats %d/%d/%d", s, pr, rj)
	}
}

func TestSharedEndpointsAreDisjoint(t *testing.T) {
	var p Packer
	p.Offer(Interval{Lo: 0, Hi: 5})
	out, _ := p.Offer(Interval{Lo: 5, Hi: 9})
	if out != Accepted {
		t.Fatal("open intervals sharing an endpoint are disjoint")
	}
}

func TestPreemption(t *testing.T) {
	var p Packer
	p.Offer(Interval{Lo: 0, Hi: 10, ID: 1})
	out, victim := p.Offer(Interval{Lo: 2, Hi: 8, ID: 2})
	if out != Preempts || victim.ID != 1 {
		t.Fatalf("expected preemption of 1, got %v victim %d", out, victim.ID)
	}
	// A later interval overlapping the new current one but ending later is
	// rejected.
	out, _ = p.Offer(Interval{Lo: 3, Hi: 12, ID: 3})
	if out != Rejected {
		t.Fatalf("expected rejection, got %v", out)
	}
	s, pr, rj := p.Stats()
	if s != 1 || pr != 1 || rj != 1 {
		t.Fatalf("stats %d/%d/%d", s, pr, rj)
	}
}

func TestTiePreempts(t *testing.T) {
	var p Packer
	p.Offer(Interval{Lo: 0, Hi: 10, ID: 1})
	out, victim := p.Offer(Interval{Lo: 4, Hi: 10, ID: 2})
	if out != Preempts || victim.ID != 1 {
		t.Fatalf("equal right endpoint should preempt (b_i ≤ b_j)")
	}
}

func TestUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted offer")
		}
	}()
	var p Packer
	p.Offer(Interval{Lo: 5, Hi: 8})
	p.Offer(Interval{Lo: 1, Hi: 3})
}

func TestEmptyIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty interval")
		}
	}()
	var p Packer
	p.Offer(Interval{Lo: 3, Hi: 3})
}

// The online packer is optimal (GLL82): on any sorted sequence its surviving
// count equals the offline maximum independent set of intervals.
func TestOnlineMatchesOfflineQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n)%20 + 1
		ivs := make([]Interval, m)
		for i := range ivs {
			lo := rng.Intn(50)
			ivs[i] = Interval{Lo: lo, Hi: lo + 1 + rng.Intn(20), ID: i}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
		var p Packer
		for _, iv := range ivs {
			p.Offer(iv)
		}
		s, _, _ := p.Stats()
		return s == OfflineOptimal(ivs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Surviving intervals are pairwise disjoint at every prefix: we verify by
// replaying and tracking the alive set explicitly.
func TestDisjointInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(30)
		ivs := make([]Interval, m)
		for i := range ivs {
			lo := rng.Intn(40)
			ivs[i] = Interval{Lo: lo, Hi: lo + 1 + rng.Intn(15), ID: i}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
		var p Packer
		alive := map[int]Interval{}
		for _, iv := range ivs {
			out, victim := p.Offer(iv)
			switch out {
			case Accepted:
				alive[iv.ID] = iv
			case Preempts:
				delete(alive, victim.ID)
				alive[iv.ID] = iv
			}
			for a, ia := range alive {
				for b, ib := range alive {
					if a < b && ia.Overlaps(ib) {
						t.Fatalf("alive intervals overlap: %+v %+v", ia, ib)
					}
				}
			}
		}
	}
}

func TestOfflineOptimalKnown(t *testing.T) {
	ivs := []Interval{{0, 3, 0}, {2, 5, 1}, {4, 7, 2}, {1, 8, 3}}
	if got := OfflineOptimal(ivs); got != 2 {
		t.Fatalf("offline optimal = %d, want 2", got)
	}
	if OfflineOptimal(nil) != 0 {
		t.Fatal("empty should be 0")
	}
}
