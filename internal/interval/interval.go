// Package interval implements online packing of open intervals on a line
// with preemption (Sec. 5.2.1 of Even–Medina), i.e. the online simulation of
// the optimal interval-scheduling algorithm of Gupta, Lee and Leung [GLL82].
//
// Intervals arrive in non-decreasing order of left endpoint. The packer
// maintains a maximum-cardinality set of pairwise-disjoint accepted
// intervals among the prefix seen so far:
//
//   - if the newcomer is disjoint from all accepted intervals it is accepted;
//   - otherwise it overlaps exactly one accepted interval p_j (a consequence
//     of sorted arrivals and disjointness); if the newcomer ends strictly
//     later it is rejected, otherwise it preempts p_j.
//
// The deterministic algorithm's detailed routing runs one such packer per
// row and column of the untilted space-time lattice (first/last segments,
// track 1) and per column of each last tile (track 3); preempting an
// interval corresponds to dropping the packet at the meeting node
// (Prop. 8's "forest of preemptions").
package interval

// Interval is an open interval (Lo, Hi) with an opaque id.
type Interval struct {
	Lo, Hi int
	ID     int
}

// Overlaps reports whether two open intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Packer is the online state for a single line. The zero value is ready to
// use.
type Packer struct {
	// last is the accepted interval with the largest right endpoint — the
	// only one that can conflict with future (sorted) arrivals.
	last    Interval
	hasLast bool

	accepted  int
	preempted int
	rejected  int
}

// Outcome of an Offer.
type Outcome int

const (
	// Accepted: the interval joined the packing.
	Accepted Outcome = iota
	// Rejected: the interval was refused on arrival.
	Rejected
	// Preempts: the interval joined and evicted a previously accepted one
	// (reported via the second return of Offer).
	Preempts
)

// Offer processes an arriving interval. Arrivals must have non-decreasing
// Lo; Offer panics otherwise, because unsorted offers would silently break
// the optimality invariant. On Preempts, victim holds the evicted interval.
func (p *Packer) Offer(iv Interval) (Outcome, Interval) {
	if iv.Hi <= iv.Lo {
		panic("interval: empty interval")
	}
	if p.hasLast && iv.Lo < p.last.Lo {
		panic("interval: offers must arrive by non-decreasing left endpoint")
	}
	if !p.hasLast || !p.last.Overlaps(iv) {
		p.last = iv
		p.hasLast = true
		p.accepted++
		return Accepted, Interval{}
	}
	if iv.Hi > p.last.Hi {
		p.rejected++
		return Rejected, Interval{}
	}
	victim := p.last
	p.last = iv
	p.accepted++
	p.preempted++
	return Preempts, victim
}

// Current returns the accepted interval that is still "open" (can conflict
// with future arrivals), if any.
func (p *Packer) Current() (Interval, bool) { return p.last, p.hasLast }

// Stats returns (accepted−preempted, preempted, rejected): the surviving
// packing size and the loss counters.
func (p *Packer) Stats() (surviving, preempted, rejected int) {
	return p.accepted - p.preempted, p.preempted, p.rejected
}

// OfflineOptimal returns the maximum number of pairwise-disjoint open
// intervals (reference implementation: greedy by right endpoint, which is
// optimal). It does not require sorted input.
func OfflineOptimal(intervals []Interval) int {
	if len(intervals) == 0 {
		return 0
	}
	sorted := append([]Interval(nil), intervals...)
	// Insertion sort by Hi; inputs in tests are small.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Hi < sorted[j-1].Hi; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	count := 0
	lastHi := -1 << 62
	for _, iv := range sorted {
		if iv.Lo >= lastHi { // open intervals may share endpoints
			count++
			lastHi = iv.Hi
		}
	}
	return count
}
