package render

import (
	"strings"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/lattice"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

func TestGrid2D(t *testing.T) {
	out := Grid2D(grid.New([]int{4, 4}, 2, 1))
	if !strings.Contains(out, "o-->o-->o-->o") {
		t.Fatalf("missing node row:\n%s", out)
	}
	if !strings.Contains(out, "4 x 4 uni-directional grid, B=2, c=1") {
		t.Fatal("missing caption")
	}
	if !strings.Contains(Grid2D(grid.Line(4, 1, 1)), "requires d = 2") {
		t.Fatal("should refuse non-2d grids")
	}
}

func TestCanvasTilesAndPath(t *testing.T) {
	g := grid.Line(8, 2, 2)
	st := spacetime.New(g, 12)
	tl := tiling.New(st.Box, []int{4, 4}, []int{0, 0})
	c := NewCanvas(0, 7, -7, 12)
	c.DrawTiles(tl)
	p := &lattice.Path{Start: []int{1, 0}, Axes: []uint8{0, 1, 0}}
	c.DrawPath(p, '#')
	out := c.String()
	if !strings.Contains(out, "S") || !strings.Contains(out, "E") {
		t.Fatalf("path endpoints missing:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Fatal("tile corners missing")
	}
	if !strings.Contains(out, "w = t - x") {
		t.Fatal("axis caption missing")
	}
}

func TestCanvasClipsOutOfRange(t *testing.T) {
	c := NewCanvas(0, 3, 0, 3)
	c.Set(10, 10, 'X') // must not panic
	if strings.Contains(c.String(), "X") {
		t.Fatal("out-of-range write landed")
	}
}
