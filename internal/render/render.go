// Package render draws ASCII pictures of grids, untilted space-time
// lattices, tilings and routed paths — the executable counterparts of the
// paper's Figures 1–10 (see cmd/viz).
package render

import (
	"fmt"
	"strings"

	"gridroute/internal/grid"
	"gridroute/internal/lattice"
	"gridroute/internal/tiling"
)

// Grid2D draws a 2-dimensional grid network in the style of Fig. 1: nodes
// as "o", horizontal and vertical uni-directional edges.
func Grid2D(g *grid.Grid) string {
	if g.D() != 2 {
		return "render: Grid2D requires d = 2"
	}
	lx, ly := g.Dims[0], g.Dims[1]
	var b strings.Builder
	for y := ly - 1; y >= 0; y-- {
		// Node row.
		for x := 0; x < lx; x++ {
			b.WriteString("o")
			if x < lx-1 {
				b.WriteString("-->")
			}
		}
		b.WriteString("\n")
		if y > 0 {
			for x := 0; x < lx; x++ {
				b.WriteString("^")
				if x < lx-1 {
					b.WriteString("   ")
				}
			}
			b.WriteString("\n")
			for x := 0; x < lx; x++ {
				b.WriteString("|")
				if x < lx-1 {
					b.WriteString("   ")
				}
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "%d x %d uni-directional grid, B=%d, c=%d\n", lx, ly, g.B, g.C)
	return b.String()
}

// Canvas is a character raster over a 2-axis lattice window: rows are the
// space axis (north up), columns the w = t−x axis (east right).
type Canvas struct {
	xLo, xHi, wLo, wHi int // inclusive point ranges
	cells              [][]byte
}

// NewCanvas creates a canvas covering x ∈ [xLo, xHi], w ∈ [wLo, wHi].
func NewCanvas(xLo, xHi, wLo, wHi int) *Canvas {
	c := &Canvas{xLo: xLo, xHi: xHi, wLo: wLo, wHi: wHi}
	rows := xHi - xLo + 1
	cols := wHi - wLo + 1
	c.cells = make([][]byte, rows)
	for i := range c.cells {
		c.cells[i] = []byte(strings.Repeat(".", cols))
	}
	return c
}

// Set writes ch at point (x, w) when inside the canvas.
func (c *Canvas) Set(x, w int, ch byte) {
	if x < c.xLo || x > c.xHi || w < c.wLo || w > c.wHi {
		return
	}
	c.cells[x-c.xLo][w-c.wLo] = ch
}

// DrawTiles overlays tile boundaries: '+' at tile corners.
func (c *Canvas) DrawTiles(tl *tiling.Tiling) {
	for x := c.xLo; x <= c.xHi; x++ {
		for w := c.wLo; w <= c.wHi; w++ {
			offX := mod(x-tl.Phase[0], tl.Side[0])
			offW := mod(w-tl.Phase[1], tl.Side[1])
			if offX == 0 && offW == 0 {
				c.Set(x, w, '+')
			} else if offX == 0 {
				c.Set(x, w, '-')
			} else if offW == 0 {
				c.Set(x, w, '|')
			}
		}
	}
}

func mod(a, b int) int {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}

// DrawPath overlays a lattice path using ch, marking start 'S' and end 'E'.
func (c *Canvas) DrawPath(p *lattice.Path, ch byte) {
	first := true
	p.Visit(func(pt []int) {
		if first {
			c.Set(pt[0], pt[1], 'S')
			first = false
			return
		}
		c.Set(pt[0], pt[1], ch)
	})
	end := p.End()
	c.Set(end[0], end[1], 'E')
}

// String renders the canvas with north (larger x) on top.
func (c *Canvas) String() string {
	var b strings.Builder
	for i := len(c.cells) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "x=%3d  %s\n", c.xLo+i, string(c.cells[i]))
	}
	fmt.Fprintf(&b, "       w = t - x from %d to %d (east →)\n", c.wLo, c.wHi)
	return b.String()
}
