// Package tiling partitions the untilted space-time lattice into tiles
// (Sec. 3.3 of Even–Medina): axis-aligned boxes with per-axis side lengths
// and optional phase shifts.
//
// The deterministic algorithm uses cubes of side k = ⌈log₂(1+3·pmax)⌉ with no
// phase shift; the randomized algorithm uses rectangles of height Q (the
// space axis) and length τ (the w axis) with phase shifts (φ_Q, φ_τ) drawn
// uniformly at random (Sec. 7.2). Partial tiles at the boundary are treated
// as augmented with dummy vertices (which are never internal to a routed
// path; the routing code additionally clips to the real lattice).
package tiling

import (
	"gridroute/internal/lattice"
)

// Tiling is a partition of the points of Box into tiles.
type Tiling struct {
	// Box is the underlying point lattice.
	Box *lattice.Box
	// Side is the tile side length per axis (all ≥ 1).
	Side []int
	// Phase is the phase shift per axis, each in [0, Side).
	Phase []int
	// TBox is the box of tile coordinates covering Box.
	TBox *lattice.Box
}

// New builds a tiling of box with the given side lengths and phases.
func New(box *lattice.Box, side, phase []int) *Tiling {
	d := box.D()
	if len(side) != d || len(phase) != d {
		panic("tiling: side/phase dimension mismatch")
	}
	tl := &Tiling{
		Box:   box,
		Side:  append([]int(nil), side...),
		Phase: append([]int(nil), phase...),
	}
	lo := make([]int, d)
	hi := make([]int, d)
	for i := 0; i < d; i++ {
		if side[i] < 1 {
			panic("tiling: side must be ≥ 1")
		}
		if phase[i] < 0 || phase[i] >= side[i] {
			panic("tiling: phase out of range")
		}
		lo[i] = lattice.FloorDiv(box.Lo[i]-phase[i], side[i])
		hi[i] = lattice.FloorDiv(box.Hi[i]-1-phase[i], side[i]) + 1
	}
	tl.TBox = lattice.NewBox(lo, hi)
	return tl
}

// TileOf returns the tile coordinates of point p, writing into out when
// non-nil.
func (tl *Tiling) TileOf(p []int, out []int) []int {
	if out == nil {
		out = make([]int, len(p))
	}
	for i, x := range p {
		out[i] = lattice.FloorDiv(x-tl.Phase[i], tl.Side[i])
	}
	return out
}

// TileID returns the dense tile id of the tile containing p.
func (tl *Tiling) TileID(p []int) int {
	tc := tl.TileOf(p, make([]int, len(p)))
	return tl.TBox.Index(tc)
}

// Origin returns the lower corner (absolute point coordinates) of the tile
// with coordinates tc. For boundary tiles it may lie outside Box (the dummy
// augmentation of partial tiles).
func (tl *Tiling) Origin(tc []int, out []int) []int {
	if out == nil {
		out = make([]int, len(tc))
	}
	for i, c := range tc {
		out[i] = c*tl.Side[i] + tl.Phase[i]
	}
	return out
}

// Offset returns p − origin(tile containing p): the within-tile coordinates,
// each in [0, Side[i]).
func (tl *Tiling) Offset(p []int, out []int) []int {
	if out == nil {
		out = make([]int, len(p))
	}
	for i, x := range p {
		r := (x - tl.Phase[i]) % tl.Side[i]
		if r < 0 {
			r += tl.Side[i]
		}
		out[i] = r
	}
	return out
}

// SameTile reports whether points p and q lie in the same tile.
func (tl *Tiling) SameTile(p, q []int) bool {
	for i := range p {
		if lattice.FloorDiv(p[i]-tl.Phase[i], tl.Side[i]) != lattice.FloorDiv(q[i]-tl.Phase[i], tl.Side[i]) {
			return false
		}
	}
	return true
}

// Quadrant identifies a quarter of a 2-axis tile (d = 1 lines only):
// axis 0 (space, x) splits south/north, axis 1 (w) splits west/east
// (Sec. 7.2, Fig. 8).
type Quadrant int

const (
	SW Quadrant = iota // low x, low w
	SE                 // low x, high w
	NW                 // high x, low w
	NE                 // high x, high w
)

func (q Quadrant) String() string {
	switch q {
	case SW:
		return "SW"
	case SE:
		return "SE"
	case NW:
		return "NW"
	case NE:
		return "NE"
	}
	return "?"
}

// QuadrantOf classifies a point of a 2-axis tiling into its tile quadrant.
// South (resp. west) is the lower half along axis 0 (resp. axis 1); for odd
// sides the extra row/column belongs to the north (resp. east) half.
func (tl *Tiling) QuadrantOf(p []int) Quadrant {
	if len(tl.Side) != 2 {
		panic("tiling: QuadrantOf requires a 2-axis tiling (d = 1)")
	}
	off := tl.Offset(p, make([]int, 2))
	south := off[0] < tl.Side[0]/2
	west := off[1] < tl.Side[1]/2
	switch {
	case south && west:
		return SW
	case south && !west:
		return SE
	case !south && west:
		return NW
	default:
		return NE
	}
}
