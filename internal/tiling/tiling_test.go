package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridroute/internal/lattice"
)

func TestTilesPartition(t *testing.T) {
	box := lattice.NewBox([]int{-5, 0}, []int{7, 13})
	tl := New(box, []int{4, 3}, []int{1, 2})
	pt := make([]int, 2)
	counts := make(map[int]int)
	for id := 0; id < box.Size(); id++ {
		box.Point(id, pt)
		tc := tl.TileOf(pt, nil)
		if !tl.TBox.Contains(tc) {
			t.Fatalf("tile %v of point %v outside TBox [%v,%v)", tc, pt, tl.TBox.Lo, tl.TBox.Hi)
		}
		counts[tl.TBox.Index(tc)]++
		// Origin + offset must reconstruct the point.
		org := tl.Origin(tc, nil)
		off := tl.Offset(pt, nil)
		for i := range pt {
			if org[i]+off[i] != pt[i] {
				t.Fatalf("origin %v + offset %v != %v", org, off, pt)
			}
			if off[i] < 0 || off[i] >= tl.Side[i] {
				t.Fatalf("offset %v out of range", off)
			}
		}
	}
	total := 0
	for _, c := range counts {
		if c > 4*3 {
			t.Fatalf("tile holds %d > %d points", c, 12)
		}
		total += c
	}
	if total != box.Size() {
		t.Fatalf("partition covers %d of %d points", total, box.Size())
	}
}

func TestSameTile(t *testing.T) {
	box := lattice.NewBox([]int{0, 0}, []int{16, 16})
	tl := New(box, []int{4, 4}, []int{0, 0})
	if !tl.SameTile([]int{0, 0}, []int{3, 3}) {
		t.Fatal("corner points of one tile")
	}
	if tl.SameTile([]int{3, 3}, []int{4, 3}) {
		t.Fatal("adjacent tiles differ")
	}
}

func TestPhaseShiftMovesBoundaries(t *testing.T) {
	box := lattice.NewBox([]int{0, 0}, []int{16, 16})
	a := New(box, []int{4, 4}, []int{0, 0})
	b := New(box, []int{4, 4}, []int{1, 0})
	// Point (4,0): with no phase it starts tile 1; with phase 1 the boundary
	// is at 1,5,9,… so 4 is in tile 0.
	pa := a.TileOf([]int{4, 0}, nil)
	pb := b.TileOf([]int{4, 0}, nil)
	if pa[0] != 1 || pb[0] != 0 {
		t.Fatalf("phase shift ignored: %v %v", pa, pb)
	}
}

func TestQuadrants(t *testing.T) {
	box := lattice.NewBox([]int{0, 0}, []int{12, 12})
	tl := New(box, []int{4, 6}, []int{0, 0})
	cases := []struct {
		p []int
		q Quadrant
	}{
		{[]int{0, 0}, SW}, {[]int{1, 2}, SW},
		{[]int{0, 3}, SE}, {[]int{1, 5}, SE},
		{[]int{2, 0}, NW}, {[]int{3, 2}, NW},
		{[]int{2, 3}, NE}, {[]int{3, 5}, NE},
		// Next tile over repeats the pattern.
		{[]int{4, 6}, SW}, {[]int{7, 11}, NE},
	}
	for _, c := range cases {
		if got := tl.QuadrantOf(c.p); got != c.q {
			t.Errorf("QuadrantOf(%v) = %v, want %v", c.p, got, c.q)
		}
	}
}

// Prop. 17 ingredient: with uniform random phase shifts, the probability a
// fixed point lands in the SW quadrant is (Side0/2)/Side0 · (Side1/2)/Side1
// = 1/4 for even sides.
func TestQuadrantShiftDistribution(t *testing.T) {
	box := lattice.NewBox([]int{0, 0}, []int{64, 64})
	rng := rand.New(rand.NewSource(5))
	point := []int{31, 17}
	side := []int{6, 8}
	sw := 0
	trials := 0
	for px := 0; px < side[0]; px++ {
		for py := 0; py < side[1]; py++ {
			tl := New(box, side, []int{px, py})
			if tl.QuadrantOf(point) == SW {
				sw++
			}
			trials++
		}
	}
	_ = rng
	if sw*4 != trials {
		t.Fatalf("SW fraction = %d/%d, want exactly 1/4 over all shifts", sw, trials)
	}
}

func TestTileOfQuick(t *testing.T) {
	box := lattice.NewBox([]int{-20, -20}, []int{20, 20})
	tl := New(box, []int{5, 7}, []int{2, 3})
	f := func(a, b int16) bool {
		p := []int{int(a)%20 - 0, int(b) % 20}
		if p[0] < -20 {
			p[0] = -20
		}
		tc := tl.TileOf(p, nil)
		org := tl.Origin(tc, nil)
		for i := range p {
			if p[i] < org[i] || p[i] >= org[i]+tl.Side[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadConstruction(t *testing.T) {
	box := lattice.NewBox([]int{0}, []int{4})
	for _, bad := range []struct{ side, phase []int }{
		{[]int{0}, []int{0}},
		{[]int{3}, []int{3}},
		{[]int{3}, []int{-1}},
		{[]int{3, 3}, []int{0, 0}},
	} {
		func() {
			defer func() { recover() }()
			New(box, bad.side, bad.phase)
			t.Errorf("New(%v,%v) should panic", bad.side, bad.phase)
		}()
	}
}
