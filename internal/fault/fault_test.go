package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseStringRoundTrip(t *testing.T) {
	spec := "stall(seq=120,n=8,dur=2ms);panic(seq=300);cancel(seq=500,n=5);" +
		"storm(seq=200,n=50,count=3);pause(seq=400,n=10,dur=1ms);" +
		"outage(node=3/4,axis=0,t=10-40);outage(node=5,t=20-30)"
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(s.Events))
	}
	if got := s.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, s2)
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse("storm(seq=7)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ev := s.Events[0]
	if ev.N != 1 || ev.Count != 1 || ev.Axis != -1 {
		t.Fatalf("defaults not applied: %+v", ev)
	}
	if empty, err := Parse("  "); err != nil || len(empty.Events) != 0 {
		t.Fatalf("empty spec: %v %+v", err, empty)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"nope(seq=1)",
		"storm(seq=-1)",
		"storm(n=3)",       // missing seq
		"storm(seq=1,n=0)", // n < 1
		"stall(seq=1)",     // missing dur
		"stall(seq=1,dur=-1s)",
		"outage(t=1-2)",           // missing node
		"outage(node=1)",          // missing t
		"outage(node=1,t=5-5)",    // empty interval
		"outage(node=1,t=oops-2)", // bad int
		"storm(seq=1,count=x)",
		"storm seq=1",
		"storm(seq)",
		"storm(seq=1,zap=2)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestStormBounceDeterministicCounts(t *testing.T) {
	s, err := Parse("storm(seq=10,n=3,count=2);storm(seq=11,count=1)")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	// seq 10: 2 bounces, seq 11: 2+1=3 bounces (overlap adds), seq 12: 2, seq 9: 0.
	want := map[int]int{9: 0, 10: 2, 11: 3, 12: 2, 13: 0}
	for seq, n := range want {
		got := 0
		for in.StormBounce(seq) {
			got++
			if got > 10 {
				t.Fatalf("seq %d: storm never clears", seq)
			}
		}
		if got != n {
			t.Errorf("seq %d: %d bounces, want %d", seq, got, n)
		}
		if in.StormBounce(seq) {
			t.Errorf("seq %d: bounced after clearing", seq)
		}
	}
}

func TestOneShotTriggers(t *testing.T) {
	s, err := Parse("panic(seq=5);cancel(seq=6,n=2)")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	if !in.PanicAt(5) || in.PanicAt(5) {
		t.Fatal("PanicAt should fire exactly once per seq")
	}
	if in.PanicAt(4) {
		t.Fatal("PanicAt fired outside range")
	}
	if !in.CancelFirst(6) || in.CancelFirst(6) || !in.CancelFirst(7) || in.CancelFirst(8) {
		t.Fatal("CancelFirst once-per-seq semantics broken")
	}
}

func TestStallAndPause(t *testing.T) {
	s, err := Parse("stall(seq=3,n=2,dur=5ms);stall(seq=4,dur=9ms);pause(seq=8,dur=1ms)")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	if d := in.StallBefore(3); d != 5*time.Millisecond {
		t.Fatalf("StallBefore(3) = %v", d)
	}
	if d := in.StallBefore(4); d != 9*time.Millisecond {
		t.Fatalf("StallBefore(4) = %v (want max of overlaps)", d)
	}
	if d := in.StallBefore(5); d != 0 {
		t.Fatalf("StallBefore(5) = %v", d)
	}
	if d := in.PauseBefore(8); d != time.Millisecond {
		t.Fatalf("PauseBefore(8) = %v", d)
	}
}

func TestOutageQueries(t *testing.T) {
	s, err := Parse("outage(node=1/2,t=10-20);outage(node=0/0,axis=1,t=15-30)")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(s)
	if !in.HasOutages() {
		t.Fatal("HasOutages = false")
	}
	if in.OutageActive(9) || !in.OutageActive(10) || !in.OutageActive(29) || in.OutageActive(30) {
		t.Fatal("OutageActive interval semantics wrong")
	}
	// Epochs change at every boundary {10, 15, 20, 30}.
	epochs := map[int64]int{}
	for _, at := range []int64{0, 10, 14, 15, 19, 20, 29, 30} {
		epochs[at] = in.OutageEpoch(at)
	}
	if epochs[10] == epochs[0] || epochs[15] == epochs[14] || epochs[20] == epochs[19] || epochs[30] == epochs[29] {
		t.Fatalf("epochs did not change at boundaries: %v", epochs)
	}
	if epochs[10] != epochs[14] || epochs[20] != epochs[29] {
		t.Fatalf("epochs changed inside stable intervals: %v", epochs)
	}
	if got := in.ActiveOutages(16, nil); len(got) != 2 {
		t.Fatalf("ActiveOutages(16) = %d events, want 2", len(got))
	}
	if got := in.ActiveOutages(25, nil); len(got) != 1 || got[0].Axis != 1 {
		t.Fatalf("ActiveOutages(25) = %+v", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := Rand(42, 1000, 64, []int{8, 8})
	b := Rand(42, 1000, 64, []int{8, 8})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Rand not deterministic for equal seeds")
	}
	if a.String() == Rand(43, 1000, 64, []int{8, 8}).String() {
		t.Fatal("different seeds produced identical schedules")
	}
	// Generated schedules are valid DSL and round-trip.
	s2, err := Parse(a.String())
	if err != nil {
		t.Fatalf("Parse(Rand.String()): %v", err)
	}
	if !reflect.DeepEqual(a, s2) {
		t.Fatalf("Rand round trip mismatch:\n%v\n%v", a, s2)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.StallBefore(1) != 0 || in.PauseBefore(1) != 0 || in.PanicAt(1) ||
		in.CancelFirst(1) || in.StormBounce(1) || in.HasOutages() || in.OutageActive(1) {
		t.Fatal("nil injector hooks must be no-ops")
	}
}

func FuzzParse(f *testing.F) {
	f.Add("storm(seq=200,n=50,count=3)")
	f.Add("stall(seq=120,n=8,dur=2ms);panic(seq=300)")
	f.Add("outage(node=3/4,axis=0,t=10-40)")
	f.Add("outage(node=5,t=20-30);cancel(seq=500,n=5)")
	f.Add(";;;")
	f.Add("storm(seq=1,count=9999999999999999999)")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			return
		}
		// Successful parses must round-trip through the canonical form.
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical %q fails: %v", spec, canon, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("canonical round trip diverged for %q", spec)
		}
		if strings.Contains(canon, ";;") {
			t.Fatalf("canonical form %q has empty events", canon)
		}
	})
}
