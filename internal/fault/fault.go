// Package fault is a seeded, deterministic fault-injection harness for the
// streaming admission stack.
//
// A Schedule is a list of fault events keyed on packet sequence numbers (for
// producer/consumer faults) or on real arrival time (for space-time resource
// outages). Because every trigger is keyed on the deterministic packet stream
// rather than on wall-clock time or submission interleaving, a chaos run
// produces the same fault pattern — and, for faults that do not change
// admission semantics (stalls, storms, pauses, panics, cancellations), the
// same decision log — on every execution, which makes chaos runs CI-gateable
// exactly like the rest of the repo.
//
// # Schedule DSL
//
// A schedule is a semicolon-separated list of events, each `op(key=val,...)`:
//
//	stall(seq=120,n=8,dur=2ms)      producer sleeps dur before submitting seqs [120,128)
//	panic(seq=300)                  producer panics once before submitting seq 300
//	cancel(seq=500,n=5)             first Admit of seqs [500,505) runs under a cancelled ctx
//	storm(seq=200,n=50,count=3)     first 3 Admit attempts of seqs [200,250) bounce RejectedQueueFull
//	pause(seq=400,n=10,dur=1ms)     consumer sleeps dur before deciding seqs [400,410)
//	outage(node=3/4,axis=0,t=10-40) sketch edge (axis 0) out of tile of node (3,4), real time [10,40)
//	outage(node=5,t=20-30)          whole tile of node (5) out (node outage)
//
// `n` defaults to 1; `count` defaults to 1; `axis` defaults to -1 (node
// outage; axis d, the buffer axis, addresses hold edges). Outages mask
// resources at sketch granularity: the tile containing the named grid node.
//
// String renders the canonical form of a schedule; Parse(String()) is the
// identity on normalized schedules (fuzz-gated).
//
//gridroute:seqclock
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op enumerates fault event kinds.
type Op uint8

const (
	// Stall sleeps the producer before it submits a covered seq.
	Stall Op = iota
	// Panic makes the producer panic once before submitting a covered seq.
	Panic
	// Cancel makes the first Admit of a covered seq run under an
	// already-cancelled context.
	Cancel
	// Storm bounces the first Count Admit attempts of each covered seq with
	// RejectedQueueFull, simulating a full queue.
	Storm
	// Pause sleeps the consumer loop before it decides a covered seq.
	Pause
	// Outage takes a space-time resource (a tile's axis edge, hold edge, or
	// the whole tile) out of service for a real-time interval.
	Outage
)

var opNames = [...]string{"stall", "panic", "cancel", "storm", "pause", "outage"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one fault in a schedule. Which fields are meaningful depends on Op
// (see the package comment for the DSL).
type Event struct {
	Op    Op
	Seq   int           // first covered sequence number (seq-keyed ops)
	N     int           // number of consecutive seqs covered; >= 1
	Count int           // Storm: bounced attempts per covered seq; >= 1
	Dur   time.Duration // Stall/Pause: sleep duration
	Node  []int         // Outage: grid coordinates of the failed node
	Axis  int           // Outage: edge axis, or -1 for a node outage
	From  int64         // Outage: first failed real time step (inclusive)
	To    int64         // Outage: end of the failed interval (exclusive)
}

func (ev Event) covers(seq int) bool { return seq >= ev.Seq && seq < ev.Seq+ev.N }

// String renders the event in canonical DSL form.
func (ev Event) String() string {
	var b strings.Builder
	b.WriteString(ev.Op.String())
	b.WriteByte('(')
	if ev.Op == Outage {
		b.WriteString("node=")
		for i, c := range ev.Node {
			if i > 0 {
				b.WriteByte('/')
			}
			b.WriteString(strconv.Itoa(c))
		}
		if ev.Axis >= 0 {
			fmt.Fprintf(&b, ",axis=%d", ev.Axis)
		}
		fmt.Fprintf(&b, ",t=%d-%d", ev.From, ev.To)
	} else {
		fmt.Fprintf(&b, "seq=%d", ev.Seq)
		if ev.N > 1 {
			fmt.Fprintf(&b, ",n=%d", ev.N)
		}
		if ev.Op == Storm && ev.Count > 1 {
			fmt.Fprintf(&b, ",count=%d", ev.Count)
		}
		if (ev.Op == Stall || ev.Op == Pause) && ev.Dur > 0 {
			fmt.Fprintf(&b, ",dur=%s", ev.Dur)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// String renders the canonical DSL form; Parse round-trips it.
func (s *Schedule) String() string {
	if s == nil || len(s.Events) == 0 {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, ev := range s.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}

// Parse parses the schedule DSL described in the package comment. Events are
// validated and normalized (defaults filled in); the empty string yields an
// empty schedule.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

func parseEvent(part string) (Event, error) {
	open := strings.IndexByte(part, '(')
	if open < 0 || !strings.HasSuffix(part, ")") {
		return Event{}, fmt.Errorf("fault: event %q: want op(key=val,...)", part)
	}
	name := strings.TrimSpace(part[:open])
	op := -1
	for i, n := range opNames {
		if n == name {
			op = i
			break
		}
	}
	if op < 0 {
		return Event{}, fmt.Errorf("fault: unknown op %q", name)
	}
	ev := Event{Op: Op(op), N: 1, Count: 1, Axis: -1}
	body := part[open+1 : len(part)-1]
	var haveSeq, haveNode, haveT bool
	for _, field := range strings.Split(body, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Event{}, fmt.Errorf("fault: event %q: field %q is not key=val", part, field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seq":
			ev.Seq, err = strconv.Atoi(val)
			haveSeq = true
		case "n":
			ev.N, err = strconv.Atoi(val)
		case "count":
			ev.Count, err = strconv.Atoi(val)
		case "dur":
			ev.Dur, err = time.ParseDuration(val)
		case "axis":
			ev.Axis, err = strconv.Atoi(val)
		case "node":
			haveNode = true
			for _, c := range strings.Split(val, "/") {
				v, cerr := strconv.Atoi(c)
				if cerr != nil {
					err = cerr
					break
				}
				ev.Node = append(ev.Node, v)
			}
		case "t":
			lo, hi, cut := strings.Cut(val, "-")
			if !cut {
				return Event{}, fmt.Errorf("fault: event %q: t=%q wants from-to", part, val)
			}
			haveT = true
			if ev.From, err = strconv.ParseInt(lo, 10, 64); err == nil {
				ev.To, err = strconv.ParseInt(hi, 10, 64)
			}
		default:
			return Event{}, fmt.Errorf("fault: event %q: unknown key %q", part, key)
		}
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: bad %s: %v", part, key, err)
		}
	}
	if ev.Op == Outage {
		if !haveNode || len(ev.Node) == 0 {
			return Event{}, fmt.Errorf("fault: event %q: outage needs node=", part)
		}
		if !haveT || ev.From < 0 || ev.To <= ev.From {
			return Event{}, fmt.Errorf("fault: event %q: outage needs t=from-to with 0 <= from < to", part)
		}
		if ev.Axis < -1 {
			return Event{}, fmt.Errorf("fault: event %q: axis must be >= 0 (or omitted)", part)
		}
	} else {
		if !haveSeq || ev.Seq < 0 {
			return Event{}, fmt.Errorf("fault: event %q: needs seq >= 0", part)
		}
		if ev.N < 1 {
			return Event{}, fmt.Errorf("fault: event %q: n must be >= 1", part)
		}
		if ev.Count < 1 {
			return Event{}, fmt.Errorf("fault: event %q: count must be >= 1", part)
		}
		if ev.Dur < 0 {
			return Event{}, fmt.Errorf("fault: event %q: dur must be >= 0", part)
		}
		if (ev.Op == Stall || ev.Op == Pause) && ev.Dur == 0 {
			return Event{}, fmt.Errorf("fault: event %q: needs dur > 0", part)
		}
	}
	return ev, nil
}

// Rand generates a reproducible schedule from a seed: a handful of stalls,
// storms, pauses, a panic, a cancellation burst, and one outage, all placed
// inside [0, maxSeq) / [0, horizon). Same seed, same schedule.
func Rand(seed int64, maxSeq int, horizon int64, dims []int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	if maxSeq < 16 {
		maxSeq = 16
	}
	pick := func(span int) int { return rng.Intn(maxSeq - span) }
	s := &Schedule{}
	s.Events = append(s.Events,
		Event{Op: Stall, Seq: pick(4), N: 1 + rng.Intn(4), Count: 1, Dur: time.Duration(1+rng.Intn(3)) * time.Millisecond, Axis: -1},
		Event{Op: Storm, Seq: pick(8), N: 1 + rng.Intn(8), Count: 1 + rng.Intn(3), Axis: -1},
		Event{Op: Pause, Seq: pick(4), N: 1 + rng.Intn(4), Count: 1, Dur: time.Duration(1+rng.Intn(2)) * time.Millisecond, Axis: -1},
		Event{Op: Panic, Seq: pick(1), N: 1, Count: 1, Axis: -1},
		Event{Op: Cancel, Seq: pick(4), N: 1 + rng.Intn(4), Count: 1, Axis: -1},
	)
	if horizon > 2 && len(dims) > 0 {
		node := make([]int, len(dims))
		for i, d := range dims {
			if d > 0 {
				node[i] = rng.Intn(d)
			}
		}
		from := int64(rng.Intn(int(horizon - 1)))
		to := from + 1 + int64(rng.Intn(int(horizon-from)))
		axis := rng.Intn(len(dims)+2) - 1 // -1 (node) .. d (hold edge)
		s.Events = append(s.Events, Event{Op: Outage, Node: node, Axis: axis, From: from, To: to, N: 1, Count: 1})
	}
	return s
}

// Injector evaluates a schedule at run time. Read-only queries (StallBefore,
// PauseBefore, outage queries) are lock-free and safe for any concurrency;
// one-shot and counted triggers (PanicAt, CancelFirst, StormBounce) keep
// per-seq state under a mutex and are deterministic as long as each seq is
// submitted by a single producer (the repo-wide convention).
type Injector struct {
	events  []Event
	outages []Event
	bounds  []int64 // sorted unique outage boundaries (From and To values)

	hasStall, hasPause, hasStorm, hasPanic, hasCancel bool

	mu        sync.Mutex
	stormLeft map[int]int
	fired     map[int]bool // one-shot panic triggers by seq
	cancelled map[int]bool // one-shot cancel triggers by seq
}

// NewInjector builds an Injector for the schedule. A nil or empty schedule
// yields an injector whose every hook is a no-op.
func NewInjector(s *Schedule) *Injector {
	in := &Injector{
		stormLeft: make(map[int]int),
		fired:     make(map[int]bool),
		cancelled: make(map[int]bool),
	}
	if s == nil {
		return in
	}
	in.events = s.Events
	seen := make(map[int64]bool)
	for _, ev := range s.Events {
		switch ev.Op {
		case Stall:
			in.hasStall = true
		case Pause:
			in.hasPause = true
		case Storm:
			in.hasStorm = true
		case Panic:
			in.hasPanic = true
		case Cancel:
			in.hasCancel = true
		case Outage:
			in.outages = append(in.outages, ev)
			for _, b := range []int64{ev.From, ev.To} {
				if !seen[b] {
					seen[b] = true
					in.bounds = append(in.bounds, b)
				}
			}
		}
	}
	sort.Slice(in.bounds, func(i, j int) bool { return in.bounds[i] < in.bounds[j] })
	return in
}

// StallBefore returns how long the producer should sleep before submitting
// seq (the longest matching stall event; 0 if none).
func (in *Injector) StallBefore(seq int) time.Duration {
	if in == nil || !in.hasStall {
		return 0
	}
	var d time.Duration
	for _, ev := range in.events {
		if ev.Op == Stall && ev.covers(seq) && ev.Dur > d {
			d = ev.Dur
		}
	}
	return d
}

// PauseBefore returns how long the consumer should sleep before deciding seq.
func (in *Injector) PauseBefore(seq int) time.Duration {
	if in == nil || !in.hasPause {
		return 0
	}
	var d time.Duration
	for _, ev := range in.events {
		if ev.Op == Pause && ev.covers(seq) && ev.Dur > d {
			d = ev.Dur
		}
	}
	return d
}

// PanicAt reports whether the producer should panic before submitting seq.
// Fires at most once per seq, so a recovered producer can resubmit.
func (in *Injector) PanicAt(seq int) bool {
	if in == nil || !in.hasPanic {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired[seq] {
		return false
	}
	for _, ev := range in.events {
		if ev.Op == Panic && ev.covers(seq) {
			in.fired[seq] = true
			return true
		}
	}
	return false
}

// CancelFirst reports whether the first Admit of seq should run under an
// already-cancelled context. Fires at most once per seq.
func (in *Injector) CancelFirst(seq int) bool {
	if in == nil || !in.hasCancel {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cancelled[seq] {
		return false
	}
	for _, ev := range in.events {
		if ev.Op == Cancel && ev.covers(seq) {
			in.cancelled[seq] = true
			return true
		}
	}
	return false
}

// StormBounce reports whether this Admit attempt of seq should bounce with a
// simulated full queue. The first `count` attempts of each covered seq bounce
// (counts of overlapping storm events add up); later attempts pass. Because
// the counter is per-seq, the set of bounced (seq, attempt) pairs — and hence
// the final decision log once producers retry — is independent of producer
// interleaving.
func (in *Injector) StormBounce(seq int) bool {
	if in == nil || !in.hasStorm {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	left, ok := in.stormLeft[seq]
	if !ok {
		for _, ev := range in.events {
			if ev.Op == Storm && ev.covers(seq) {
				left += ev.Count
			}
		}
	}
	if left <= 0 {
		in.stormLeft[seq] = 0
		return false
	}
	in.stormLeft[seq] = left - 1
	return true
}

// HasOutages reports whether the schedule contains outage events.
func (in *Injector) HasOutages() bool { return in != nil && len(in.outages) > 0 }

// OutageEpoch maps an arrival time to an epoch index that changes exactly
// when the set of active outages changes. Engines cache mask state per epoch.
func (in *Injector) OutageEpoch(arrival int64) int {
	if in == nil {
		return 0
	}
	return sort.Search(len(in.bounds), func(i int) bool { return in.bounds[i] > arrival })
}

// OutageActive reports whether any outage covers the arrival time. Lock-free.
func (in *Injector) OutageActive(arrival int64) bool {
	if in == nil {
		return false
	}
	for _, ev := range in.outages {
		if arrival >= ev.From && arrival < ev.To {
			return true
		}
	}
	return false
}

// ActiveOutages appends the outage events covering arrival to buf.
func (in *Injector) ActiveOutages(arrival int64, buf []Event) []Event {
	if in == nil {
		return buf
	}
	for _, ev := range in.outages {
		if arrival >= ev.From && arrival < ev.To {
			buf = append(buf, ev)
		}
	}
	return buf
}
