// Package seqclock enforces the logical-clock contract on fault injection
// and WAL replay: a package marked //gridroute:seqclock may key behavior
// only on packet sequence numbers and arrival stamps carried in the data,
// never on the wall clock or the global rand source. A fault schedule that
// fired on time.Now would make chaos runs unreproducible, and a replay that
// consulted the clock would diverge from the log it is replaying.
//
// The marker is package-scoped: one //gridroute:seqclock comment anywhere
// in the package puts every non-test file under the rule. Explicitly-seeded
// generators (rand.New(rand.NewSource(seed))) and pure time functions
// (time.ParseDuration) remain available.
package seqclock

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"

	"gridroute/internal/analysis/annotation"
	"gridroute/internal/analysis/nondetcall"
)

var Analyzer = &analysis.Analyzer{
	Name: "seqclock",
	Doc:  "//gridroute:seqclock packages may key only on seq/arrival, never wall clock or global rand",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	marked := false
	for _, f := range pass.Files {
		if !annotation.IsTestFile(pass.Fset, f) && annotation.FileDirective(f, annotation.SeqClock) {
			marked = true
			break
		}
	}
	if !marked {
		return nil, nil
	}
	allows := annotation.CollectAllows(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if desc, bad := nondetcall.Classify(pass.TypesInfo, call); bad && !allows.Allowed(call.Pos()) {
				pass.Reportf(call.Pos(), "%s in a //gridroute:seqclock package: key on packet seq/arrival instead", desc)
			}
			return true
		})
	}
	return nil, nil
}
