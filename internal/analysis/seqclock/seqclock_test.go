package seqclock_test

import (
	"testing"

	"gridroute/internal/analysis/analyzertest"
	"gridroute/internal/analysis/seqclock"
)

func TestSeqclockFlagged(t *testing.T) {
	analyzertest.Run(t, "testdata/src/flagged", seqclock.Analyzer)
}

func TestSeqclockClean(t *testing.T) {
	analyzertest.Run(t, "testdata/src/clean", seqclock.Analyzer)
}

func TestSeqclockUnmarked(t *testing.T) {
	analyzertest.Run(t, "testdata/src/unmarked", seqclock.Analyzer)
}
