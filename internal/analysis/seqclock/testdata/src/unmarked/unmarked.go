// Package unmarked has no //gridroute:seqclock directive: the analyzer
// leaves it alone even though it reads the clock freely.
package unmarked

import "time"

func stamp() time.Time { return time.Now() }
