// Package clean keys its triggers on sequence numbers and an explicitly
// seeded generator, with pure time functions and one allowed metrics site.
//
//gridroute:seqclock
package clean

import (
	"math/rand"
	"time"
)

type sched struct {
	rng   *rand.Rand
	every uint64
	last  time.Time
}

func newSched(seed int64, every string) *sched {
	d, _ := time.ParseDuration(every) // pure: fine under seqclock
	_ = d
	return &sched{rng: rand.New(rand.NewSource(seed)), every: 64}
}

func (s *sched) trigger(seq uint64) bool {
	s.last = time.Now() //gridlint:allow metrics-only stamp, never keys a trigger
	if s.every != 0 && seq%s.every == 0 {
		return true
	}
	return s.rng.Intn(100) == 0
}
