// Package flagged keys a fault schedule on the wall clock and the global
// rand source — exactly what makes chaos runs unreproducible.
//
//gridroute:seqclock
package flagged

import (
	"math/rand"
	"time"
)

func trigger(seq uint64) bool {
	if time.Now().UnixNano()%2 == 0 { // want `wall-clock call time.Now in a //gridroute:seqclock package`
		return true
	}
	return rand.Intn(2) == 0 // want `unseeded global rand.Intn in a //gridroute:seqclock package`
}
