// Package detflow enforces the determinism contract on the decision flow:
// every function reachable from a decision-log write — the serial decide
// path, the speculative committer, and WAL replay, all rooted by a
// //gridroute:deterministic annotation — must be free of wall-clock reads,
// unseeded math/rand draws, and map iteration (whose order would reach the
// log). The byte-identical decision logs that the race, chaos and shard
// gates check dynamically are only possible if this holds statically.
//
// The closure is computed over static calls (typeutil.StaticCallee) within
// the package, and across packages through exported Nondet object facts:
// a function anywhere in the module that transitively reaches a
// nondeterministic primitive carries the fact, and any call to it from
// inside a deterministic closure is reported. Dynamic calls through
// interfaces or function values are not traced; the contract keeps decision
// flow on concrete receivers, which the engine's hot path already does for
// performance reasons.
//
// Metrics-only sites are exempted with //gridlint:allow <reason>; an
// allowed site neither reports nor poisons its enclosing function, so a
// latency stamp does not mark the whole admit path nondeterministic.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"gridroute/internal/analysis/annotation"
	"gridroute/internal/analysis/nondetcall"
)

// Nondet marks a function that (transitively) executes a nondeterministic
// primitive. Exported so callers in other packages inherit the taint.
type Nondet struct {
	Reason string // e.g. "wall-clock call time.Now" or "calls pkg.F"
}

func (*Nondet) AFact()           {}
func (f *Nondet) String() string { return "nondet: " + f.Reason }

var Analyzer = &analysis.Analyzer{
	Name:      "detflow",
	Doc:       "forbid wall clock, unseeded rand and map iteration in the deterministic decision flow",
	Run:       run,
	FactTypes: []analysis.Fact{(*Nondet)(nil)},
}

// site is one nondeterministic primitive found directly in a function body.
type site struct {
	pos  token.Pos
	desc string
}

// funcInfo is the per-function summary the closure walk consumes.
type funcInfo struct {
	decl   *ast.FuncDecl
	obj    *types.Func
	root   bool // carries //gridroute:deterministic
	direct []site
	calls  []callEdge
}

type callEdge struct {
	pos    token.Pos
	callee *types.Func
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := annotation.CollectAllows(pass.Fset, pass.Files)

	infos := make(map[*types.Func]*funcInfo)
	var order []*funcInfo
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &funcInfo{decl: fn, obj: obj}
			_, info.root = annotation.FuncDirective(fn, annotation.Deterministic)
			collectBody(pass, fn.Body, allows, info)
			infos[obj] = info
			order = append(order, info)
		}
	}

	// Transitive nondeterminism within the package: a fixed point over the
	// local call graph, seeded by direct sites and by imported facts on
	// out-of-package callees.
	reason := make(map[*types.Func]string)
	for _, info := range order {
		if len(info.direct) > 0 {
			reason[info.obj] = info.direct[0].desc
		}
	}
	for changed := true; changed; {
		changed = false
		for _, info := range order {
			if _, done := reason[info.obj]; done {
				continue
			}
			for _, e := range info.calls {
				if r, ok := calleeNondet(pass, infos, reason, e.callee); ok {
					reason[info.obj] = fmt.Sprintf("calls %s (%s)", e.callee.Name(), r)
					changed = true
					break
				}
			}
		}
	}
	for obj, r := range reason {
		pass.ExportObjectFact(obj, &Nondet{Reason: r})
	}

	// Deterministic closure: everything reachable from a root through local
	// static calls. Out-of-package callees are leaves checked via facts.
	inClosure := make(map[*types.Func]bool)
	var visit func(obj *types.Func)
	visit = func(obj *types.Func) {
		if inClosure[obj] {
			return
		}
		inClosure[obj] = true
		if info := infos[obj]; info != nil {
			for _, e := range info.calls {
				if infos[e.callee] != nil {
					visit(e.callee)
				}
			}
		}
	}
	for _, info := range order {
		if info.root {
			visit(info.obj)
		}
	}

	for _, info := range order {
		if !inClosure[info.obj] {
			continue
		}
		for _, s := range info.direct {
			pass.Reportf(s.pos, "%s in deterministic flow (function %s is reachable from a //gridroute:deterministic root)",
				s.desc, info.obj.Name())
		}
		for _, e := range info.calls {
			if infos[e.callee] != nil {
				continue // local callee: its own sites are reported above
			}
			var fact Nondet
			if pass.ImportObjectFact(e.callee, &fact) && !allows.Allowed(e.pos) {
				pass.Reportf(e.pos, "call to nondeterministic %s.%s in deterministic flow: %s",
					e.callee.Pkg().Name(), e.callee.Name(), fact.Reason)
			}
		}
	}
	return nil, nil
}

// calleeNondet reports whether a callee is (already known) nondeterministic,
// via the local fixed point for in-package functions or imported facts for
// everything else.
func calleeNondet(pass *analysis.Pass, infos map[*types.Func]*funcInfo, reason map[*types.Func]string, callee *types.Func) (string, bool) {
	if _, local := infos[callee]; local {
		r, ok := reason[callee]
		return r, ok
	}
	var fact Nondet
	if pass.ImportObjectFact(callee, &fact) {
		return fact.Reason, true
	}
	return "", false
}

// collectBody records the direct nondeterministic sites and the static call
// edges of one function body. Allowed sites are dropped entirely so they do
// not taint the enclosing function.
func collectBody(pass *analysis.Pass, body *ast.BlockStmt, allows *annotation.Allows, info *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc, bad := nondetcall.Classify(pass.TypesInfo, n); bad {
				if !allows.Allowed(n.Pos()) {
					info.direct = append(info.direct, site{n.Pos(), desc})
				}
				return true
			}
			if callee := typeutil.StaticCallee(pass.TypesInfo, n); callee != nil {
				info.calls = append(info.calls, callEdge{n.Pos(), callee})
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !allows.Allowed(n.Pos()) {
					info.direct = append(info.direct, site{n.Pos(), "map iteration (nondeterministic order)"})
				}
			}
		}
		return true
	})
}
