package detflow_test

import (
	"testing"

	"gridroute/internal/analysis/analyzertest"
	"gridroute/internal/analysis/detflow"
)

func TestDetflowFlagged(t *testing.T) {
	analyzertest.Run(t, "testdata/src/flagged", detflow.Analyzer)
}

func TestDetflowClean(t *testing.T) {
	analyzertest.Run(t, "testdata/src/clean", detflow.Analyzer)
}
