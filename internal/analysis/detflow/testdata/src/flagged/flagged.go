// Package flagged exercises every detflow diagnostic: a direct wall-clock
// read in a deterministic root, map iteration in the root, and an unseeded
// rand draw reached transitively through the local call graph.
package flagged

import (
	"math/rand"
	"time"
)

type log struct {
	out []int
}

//gridroute:deterministic
func (l *log) decide(m map[int]int) int {
	t := time.Now() // want `wall-clock call time.Now in deterministic flow`
	_ = t
	for k := range m { // want `map iteration \(nondeterministic order\) in deterministic flow`
		l.out = append(l.out, k)
	}
	return jitter()
}

// jitter is not annotated, but decide reaches it: its draw is reported as
// part of the closure.
func jitter() int {
	return rand.Intn(8) // want `unseeded global rand.Intn in deterministic flow`
}
