// Package clean shows the sanctioned patterns: an allowed metrics-only
// latency stamp, explicitly seeded generators, and nondeterminism in
// functions outside any deterministic closure.
package clean

import (
	"math/rand"
	"time"
)

type log struct {
	out []int
	enq time.Time
}

//gridroute:deterministic
func (l *log) decide(seed int64) int {
	l.enq = time.Now() //gridlint:allow metrics-only latency stamp, never reaches the log
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8) + pure()
}

func pure() int { return 1 }

// unrooted is nondeterministic but unreachable from any root: it exports a
// Nondet fact for cross-package callers yet reports nothing here.
func unrooted() time.Time { return time.Now() }
