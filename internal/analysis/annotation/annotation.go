// Package annotation parses the gridroute contract directives and the
// gridlint suppression comments shared by every analyzer in the suite.
//
// Directive grammar (all are ordinary comments, one per line):
//
//	//gridroute:deterministic          on a func: root of the detflow closure
//	//gridroute:hotpath                on a func: checked by hotalloc
//	//gridroute:versioned              on a struct field: writes need a version bump
//	//gridroute:weightmutator <mutex>  on a func: sanctioned commit point; the
//	                                   named receiver mutex must bracket mutations
//	//gridroute:rlock                  on a method: concurrent callers need RLock
//	//gridroute:versionstamp           on a method: arg 0 must be a .Version() call
//	//gridroute:seqclock               package marker: no wall clock anywhere
//	//gridlint:allow <reason>          suppress diagnostics on this line (or, for
//	                                   a standalone comment, on the next line)
//
// Like cmd/vet directives, these are machine-read comments: no space after
// the leading slashes, and the reason on an allow line is mandatory by
// convention (it is what reviewers audit).
package annotation

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names (without the //gridroute: prefix).
const (
	Deterministic = "deterministic"
	Hotpath       = "hotpath"
	Versioned     = "versioned"
	WeightMutator = "weightmutator"
	RLock         = "rlock"
	VersionStamp  = "versionstamp"
	SeqClock      = "seqclock"
)

const (
	routePrefix = "//gridroute:"
	allowPrefix = "//gridlint:allow"
)

// Directive reports whether the comment group carries //gridroute:<name>,
// returning any trailing argument text (e.g. the mutex name for
// weightmutator) with surrounding space trimmed.
func Directive(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(c.Text, routePrefix)
		if !found {
			continue
		}
		head, tail, _ := strings.Cut(rest, " ")
		if head == name {
			return strings.TrimSpace(tail), true
		}
	}
	return "", false
}

// FuncDirective reports whether fn's doc comment carries the directive.
func FuncDirective(fn *ast.FuncDecl, name string) (arg string, ok bool) {
	return Directive(fn.Doc, name)
}

// FileDirective reports whether any comment group in the file carries the
// directive; used for package-scoped markers like //gridroute:seqclock.
func FileDirective(f *ast.File, name string) bool {
	for _, cg := range f.Comments {
		if _, ok := Directive(cg, name); ok {
			return true
		}
	}
	return false
}

// Allows is the set of source lines (per file base) on which diagnostics are
// suppressed by a //gridlint:allow comment.
type Allows struct {
	fset  *token.FileSet
	lines map[string]map[int]bool // filename -> line set
}

// CollectAllows scans the files for //gridlint:allow comments. A trailing
// comment suppresses its own line; every allow comment also suppresses the
// line below it, so a standalone comment line guards the statement under it.
func CollectAllows(fset *token.FileSet, files []*ast.File) *Allows {
	a := &Allows{fset: fset, lines: make(map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				set := a.lines[pos.Filename]
				if set == nil {
					set = make(map[int]bool)
					a.lines[pos.Filename] = set
				}
				set[pos.Line] = true
				set[pos.Line+1] = true
			}
		}
	}
	return a
}

// Allowed reports whether a diagnostic at pos is suppressed.
func (a *Allows) Allowed(pos token.Pos) bool {
	p := a.fset.Position(pos)
	return a.lines[p.Filename][p.Line]
}

// FuncAllowed reports whether the whole function is suppressed by a
// //gridlint:allow line in its doc comment.
func FuncAllowed(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, allowPrefix) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The contract analyzers check production code only; test files exercise
// contracts deliberately (fault schedules, chaos timing) and are covered by
// the dynamic gates instead.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
