// Package nondetcall classifies call expressions that introduce
// nondeterminism into a routing decision: wall-clock reads and draws from
// the global (unseeded) math/rand sources. detflow and seqclock share this
// classifier so the two contracts can never drift apart on what counts as
// "the clock".
package nondetcall

import (
	"go/ast"
	"go/types"
)

// wallClock is the set of time-package functions whose result (or firing
// order) depends on the wall clock. time.ParseDuration, time.Unix and
// friends are pure and deliberately absent.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Sleep":     true,
}

// seededCtor is the set of math/rand constructors that are fine everywhere:
// they build an explicitly-seeded generator rather than drawing from the
// global source. Methods on a *rand.Rand value are likewise always fine.
var seededCtor = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Classify reports whether call is a nondeterministic primitive, returning a
// short human-readable description of the offense.
func Classify(info *types.Info, call *ast.CallExpr) (desc string, bad bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if fn.Type().(*types.Signature).Recv() == nil && wallClock[fn.Name()] {
			return "wall-clock call time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the shared global source; the
		// constructors and any method on an explicit generator are seeded.
		if fn.Type().(*types.Signature).Recv() == nil && !seededCtor[fn.Name()] {
			return "unseeded global " + pkg.Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

// calleeFunc resolves the static callee of call, or nil for builtins,
// function-typed variables, and dynamic interface calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
