// Package clean shows the amortized-growth idiom and the sanctioned escape
// hatches: field-stored make, appends into reused buffers, value composite
// literals, formatting confined to panic, pointer arguments to interface
// parameters, and an explicitly allowed by-design allocation.
package clean

import "fmt"

type buf struct {
	data []int
	tmp  []int
}

func consume(v interface{}) {}

//gridroute:hotpath
func (b *buf) hot(n int) int {
	if cap(b.data) < n {
		b.data = make([]int, n) // amortized growth into a field: allowed
	}
	b.data = append(b.data[:0], 1, 2)
	b.tmp = append(b.tmp, b.data...)
	v := buf{} // value composite literal stays on the stack
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // the failing path may format freely
	}
	consume(&v) // pointers live in the interface word: no boxing
	return len(b.data)
}

//gridroute:hotpath
func (b *buf) sparseFallback(n int) func() int {
	//gridlint:allow sparse fallback allocates by documented design
	return func() int { return n }
}
