// Package flagged exercises every hotalloc diagnostic on an annotated
// function: per-call make, heap-escaping composite literals, closures, fmt,
// new, append to a fresh slice, and interface boxing.
package flagged

import "fmt"

type buf struct {
	data []int
}

func consume(v interface{}) {}

//gridroute:hotpath
func (b *buf) hot(n int) int {
	s := make([]int, n) // want `make on hot path allocates per call`
	p := &buf{}         // want `heap-escaping composite literal &buf{...} on hot path`
	_ = p
	f := func() int { return n } // want `closure on hot path`
	_ = f
	fmt.Println(n) // want `fmt call on hot path allocates`
	q := new(int)  // want `new\(\.\.\.\) on hot path allocates per call`
	_ = q
	t := append([]int{}, s...) // want `slice literal allocates a backing array` `append to a fresh slice allocates per call`
	_ = t
	consume(n)         // want `interface boxing on hot path`
	m := map[int]int{} // want `map literal allocates on hot path`
	_ = m
	return len(s)
}

// cold is unannotated: the same code reports nothing.
func (b *buf) cold(n int) []int {
	return append([]int{}, make([]int, n)...)
}
