// Package hotalloc is the compile-time counterpart of the alloc_test.go
// gates: every function annotated //gridroute:hotpath (which must be every
// function covered by a 0-alloc gate) is statically checked for allocation
// sources — heap-escaping composite literals, fmt calls, interface boxing,
// closure captures, and appends to freshly-made slices.
//
// The analyzer understands the repo's amortized-growth idiom: a make or
// append whose result is stored into a receiver field (dp.cost =
// make(...)) grows a reusable buffer once and is allowed; the gates measure
// the warm steady state, and so does hotalloc. Sites that allocate by
// documented design (e.g. the sparse fallback closures in the sketch) are
// exempted with //gridlint:allow <reason>.
package hotalloc

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"gridroute/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation sources inside //gridroute:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := annotation.CollectAllows(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, hot := annotation.FuncDirective(fn, annotation.Hotpath); !hot || annotation.FuncAllowed(fn) {
				continue
			}
			checkFunc(pass, fn, allows)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, allows *annotation.Allows) {
	info := pass.TypesInfo

	// The amortized-growth idiom: make/append results stored into a field
	// (or element) of a longer-lived value are one-time buffer growth, not
	// per-call allocation.
	fieldStored := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			switch ast.Unparen(as.Lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				fieldStored[ast.Unparen(rhs)] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !allows.Allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "closure on hot path: a func literal (and its captures) escapes to the heap")
			}
			return false // one diagnostic per closure is enough
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && !allows.Allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "heap-escaping composite literal &%s{...} on hot path", types.ExprString(lit.Type))
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && !allows.Allowed(n.Pos()) {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates on hot path")
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates a backing array on hot path")
				}
			}
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // panic is the cold, failing path; its arguments may format freely
			}
			switch calleeName(info, n) {
			case "fmt":
				if !allows.Allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "fmt call on hot path allocates (and boxes its operands)")
				}
				return false
			case "make":
				if !fieldStored[ast.Expr(n)] && !allows.Allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "make on hot path allocates per call; grow a reusable field-backed buffer instead")
				}
			case "new":
				if !allows.Allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "new(...) on hot path allocates per call")
				}
			case "append":
				if len(n.Args) > 0 && freshSlice(n.Args[0]) && !allows.Allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "append to a fresh slice allocates per call; append into a reused buffer")
				}
			}
			checkBoxing(pass, n, allows)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkBoxing flags concrete non-pointer values passed to interface-typed
// parameters: storing such a value in an interface copies it to the heap.
// Pointers (and nil, and values already of interface type) are stored
// directly in the interface word and are exempt.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, allows *annotation.Allows) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x): flag only conversions into interfaces.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) && !allows.Allowed(call.Pos()) {
			pass.Reportf(call.Pos(), "conversion to interface boxes a concrete value on hot path")
		}
		return
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(info, arg) && !allows.Allowed(arg.Pos()) {
			pass.Reportf(arg.Pos(), "interface boxing on hot path: concrete value passed as %s", pt.String())
		}
	}
}

// boxes reports whether storing arg in an interface allocates: true for
// concrete non-pointer, non-interface values that are not untyped nil.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.IsNil() || tv.Value != nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return false // single-word values live in the interface data word
	}
	return true
}

// freshSlice reports whether e is a slice born in this expression — a
// literal, a make call, or nil — so appending to it must allocate.
func freshSlice(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			return true
		}
	}
	return false
}

// calleeName names the callee coarsely: "make"/"new"/"append" for those
// builtins, the package name for cross-package calls (so "fmt" for any fmt
// function), and "" otherwise.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b.Name()
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name()
		}
	}
	return ""
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
