package hotalloc_test

import (
	"testing"

	"gridroute/internal/analysis/analyzertest"
	"gridroute/internal/analysis/hotalloc"
)

func TestHotallocFlagged(t *testing.T) {
	analyzertest.Run(t, "testdata/src/flagged", hotalloc.Analyzer)
}

func TestHotallocClean(t *testing.T) {
	analyzertest.Run(t, "testdata/src/clean", hotalloc.Analyzer)
}
