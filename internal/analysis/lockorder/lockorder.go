// Package lockorder enforces the commit discipline the speculative pipeline
// (PR 8) depends on, in three layers:
//
//  1. In the packer's own package, any write to a //gridroute:versioned
//     field (the IPP weight state) must be preceded, in the same function,
//     by a bump of the receiver's atomic version counter — snapshot readers
//     stamp versions lock-free, so the bump must land before the weights
//     move. Functions that mutate versioned state (directly or through
//     local calls) export a Mutator fact.
//
//  2. In "concurrent" packages — those declaring a //gridroute:weightmutator
//     function — every call to a Mutator-fact function must sit inside such
//     a sanctioned commit point and be bracketed by Lock/Unlock on the
//     mutex the annotation names. Calls to //gridroute:rlock methods (the
//     sketch's SnapshotWindow) must likewise be bracketed by RLock/RUnlock.
//
//  3. A //gridroute:versionstamp method (the conflict journal's append)
//     must receive a fresh .Version() call as its first argument, so every
//     journal record is stamped with the version its edges produced.
//
// Counter-only or single-threaded call sites (nil offers, WAL replay before
// the workers start, serial mode) are exempted with //gridlint:allow; the
// reasons are part of the reviewed source.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"gridroute/internal/analysis/annotation"
)

// Mutator marks a function that (transitively) mutates //gridroute:versioned
// state. Propagation stops at //gridroute:weightmutator functions: they are
// the sanctioned commit points, not hazards to report.
type Mutator struct{}

func (*Mutator) AFact()         {}
func (*Mutator) String() string { return "mutates versioned state" }

// RLocked marks a method whose concurrent callers must hold a read lock.
type RLocked struct{}

func (*RLocked) AFact()         {}
func (*RLocked) String() string { return "requires RLock" }

// Stamped marks a method whose first argument must be a .Version() call.
type Stamped struct{}

func (*Stamped) AFact()         {}
func (*Stamped) String() string { return "requires version stamp" }

var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "versioned-weight writes need a version bump; concurrent mutator/snapshot calls need the packer locks",
	Run:       run,
	FactTypes: []analysis.Fact{(*Mutator)(nil), (*RLocked)(nil), (*Stamped)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := annotation.CollectAllows(pass.Fset, pass.Files)

	// Annotated field and method objects declared in this package.
	versioned := make(map[*types.Var]bool)
	mutatorFns := make(map[*ast.FuncDecl]string) // decl -> mutex name
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if _, ok := annotation.Directive(fld.Doc, annotation.Versioned); !ok {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						versioned[v] = true
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if mutex, ok := annotation.FuncDirective(fn, annotation.WeightMutator); ok {
				mutatorFns[fn] = mutex
			}
			if _, ok := annotation.FuncDirective(fn, annotation.RLock); ok {
				pass.ExportObjectFact(obj, &RLocked{})
			}
			if _, ok := annotation.FuncDirective(fn, annotation.VersionStamp); ok {
				pass.ExportObjectFact(obj, &Stamped{})
			}
		}
	}

	checkVersionBumps(pass, versioned, allows)
	checkConcurrent(pass, mutatorFns, allows)
	return nil, nil
}

// checkVersionBumps enforces layer 1 and seeds Mutator facts.
func checkVersionBumps(pass *analysis.Pass, versioned map[*types.Var]bool, allows *annotation.Allows) {
	type fnSummary struct {
		obj    *types.Func
		writes bool
		calls  []*types.Func
	}
	var fns []*fnSummary
	byObj := make(map[*types.Func]*fnSummary)
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			s := &fnSummary{obj: obj}
			_, isCommitPoint := annotation.FuncDirective(fn, annotation.WeightMutator)

			// Version bumps: positions of <x>.<atomic field>.Add(...) calls.
			var bumps []token.Pos
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
					if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "version" {
						bumps = append(bumps, call.Pos())
					}
				}
				return true
			})
			bumpBefore := func(pos token.Pos) bool {
				for _, b := range bumps {
					if b < pos {
						return true
					}
				}
				return false
			}

			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						fld := writtenVersionedField(pass, versioned, lhs)
						if fld == nil {
							continue
						}
						s.writes = true
						if !bumpBefore(lhs.Pos()) && !allows.Allowed(lhs.Pos()) {
							pass.Reportf(lhs.Pos(), "write to versioned field %s without a preceding version bump (%s.Add) in this function",
								fld.Name(), "version")
						}
					}
				case *ast.CallExpr:
					if callee := typeutil.StaticCallee(pass.TypesInfo, n); callee != nil && !allows.Allowed(n.Pos()) {
						s.calls = append(s.calls, callee)
					}
				}
				return true
			})
			if isCommitPoint {
				// Sanctioned commit point: do not propagate the fact upward.
				s.calls = nil
				s.writes = false
			}
			fns = append(fns, s)
			byObj[obj] = s
		}
	}

	// Fixed point: local propagation plus imported facts.
	isMut := make(map[*types.Func]bool)
	for _, s := range fns {
		if s.writes {
			isMut[s.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range fns {
			if isMut[s.obj] {
				continue
			}
			for _, c := range s.calls {
				var fact Mutator
				if isMut[c] || (byObj[c] == nil && pass.ImportObjectFact(c, &fact)) {
					isMut[s.obj] = true
					changed = true
					break
				}
			}
		}
	}
	for obj := range isMut {
		pass.ExportObjectFact(obj, &Mutator{})
	}
}

// writtenVersionedField resolves lhs as an element write (p.xs[e] = ..., or
// map assign p.x[e] = ...) to a versioned field, returning the field.
// Whole-field assignment (p.xs = make(...)) is initialization and exempt.
func writtenVersionedField(pass *analysis.Pass, versioned map[*types.Var]bool, lhs ast.Expr) *types.Var {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if ok && versioned[v] {
		return v
	}
	return nil
}

// checkConcurrent enforces layers 2 and 3 in packages that declare a
// weightmutator commit point. Batch-mode packages (no concurrent readers)
// have no such annotation and are exempt.
func checkConcurrent(pass *analysis.Pass, mutatorFns map[*ast.FuncDecl]string, allows *annotation.Allows) {
	concurrent := len(mutatorFns) > 0

	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			mutex := mutatorFns[fn]
			brackets := collectBrackets(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := typeutil.StaticCallee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				var mut Mutator
				var rl RLocked
				var st Stamped
				if concurrent && pass.ImportObjectFact(callee, &mut) && !allows.Allowed(call.Pos()) {
					switch {
					case mutex == "":
						pass.Reportf(call.Pos(), "%s mutates versioned weights but %s is not a //gridroute:weightmutator commit point",
							callee.Name(), fn.Name.Name)
					case !brackets.covers(mutex, "Lock", "Unlock", call.Pos()):
						pass.Reportf(call.Pos(), "mutator call %s not bracketed by %s.Lock/Unlock", callee.Name(), mutex)
					}
				}
				if concurrent && pass.ImportObjectFact(callee, &rl) && !allows.Allowed(call.Pos()) {
					if !brackets.coversAny("RLock", "RUnlock", call.Pos()) {
						pass.Reportf(call.Pos(), "%s read requires RLock/RUnlock bracketing in concurrent package", callee.Name())
					}
				}
				if pass.ImportObjectFact(callee, &st) && !allows.Allowed(call.Pos()) {
					if len(call.Args) == 0 || !isVersionCall(call.Args[0]) {
						pass.Reportf(call.Pos(), "%s requires a fresh .Version() call as its first argument (version stamp)", callee.Name())
					}
				}
				return true
			})
		}
	}
}

// isVersionCall reports whether e is a call of the form <x>.Version().
func isVersionCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Version"
}

// lockEvent is one mutex operation in a function body.
type lockEvent struct {
	name     string // final selector component of the mutex expression
	method   string // Lock, Unlock, RLock, RUnlock
	pos      token.Pos
	deferred bool
}

type brackets []lockEvent

// collectBrackets records every mutex call in the body, including deferred
// unlocks (which guard to the end of the function regardless of position).
func collectBrackets(body *ast.BlockStmt) brackets {
	var evs brackets
	record := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "Unlock", "RLock", "RUnlock":
		default:
			return
		}
		name := ""
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.Ident:
			name = x.Name
		}
		evs = append(evs, lockEvent{name: name, method: sel.Sel.Name, pos: call.Pos(), deferred: deferred})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			record(n.Call, true)
			return false
		case *ast.CallExpr:
			record(n, false)
		}
		return true
	})
	return evs
}

// covers reports whether pos lies between a <name>.<lockM>() before it and a
// <name>.<unlockM>() after it (or a deferred unlock anywhere).
func (b brackets) covers(name, lockM, unlockM string, pos token.Pos) bool {
	var locked, unlocked bool
	for _, e := range b {
		if e.name != name {
			continue
		}
		if e.method == lockM && e.pos < pos {
			locked = true
		}
		if e.method == unlockM && (e.pos > pos || e.deferred) {
			unlocked = true
		}
	}
	return locked && unlocked
}

// coversAny is covers for any mutex name, as long as the same name both
// read-locks before and read-unlocks after.
func (b brackets) coversAny(lockM, unlockM string, pos token.Pos) bool {
	names := make(map[string]bool)
	for _, e := range b {
		names[e.name] = true
	}
	for n := range names {
		if b.covers(n, lockM, unlockM, pos) {
			return true
		}
	}
	return false
}
