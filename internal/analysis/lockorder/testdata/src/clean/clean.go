// Package clean follows the lockorder contract end to end: bump-then-write
// commits, a properly bracketed commit point (including a deferred unlock),
// an RLock-bracketed snapshot read, stamped journal appends, and the allow
// hatch for a single-threaded replay path.
package clean

import (
	"sync"
	"sync/atomic"
)

type packer struct {
	mu      sync.RWMutex
	version atomic.Uint64
	//gridroute:versioned
	xs []float64
}

func (p *packer) Version() uint64 { return p.version.Load() }

func (p *packer) commit(e int) {
	p.version.Add(1)
	p.xs[e] = 1
}

//gridroute:versionstamp
func (p *packer) journalAdd(ver uint64, edges []int) {}

//gridroute:weightmutator mu
func (p *packer) offer(e int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commit(e)
	p.journalAdd(p.Version(), nil)
}

//gridroute:rlock
func (p *packer) Snapshot() []float64 { return p.xs }

func read(p *packer) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.Snapshot()[0]
}

func replay(p *packer, e int) {
	p.commit(e) //gridlint:allow single-threaded replay before the workers start
}
