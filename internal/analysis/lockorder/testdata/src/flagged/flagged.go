// Package flagged violates each layer of the lockorder contract: a
// versioned-field write with no version bump, a mutator call outside any
// commit point, an unbracketed mutator call inside one, an unprotected
// snapshot read, and a journal append without a version stamp.
package flagged

import (
	"sync"
	"sync/atomic"
)

type packer struct {
	mu      sync.RWMutex
	version atomic.Uint64
	// xs is the live weight state; snapshot readers stamp versions
	// lock-free, so every write needs a preceding bump.
	//gridroute:versioned
	xs []float64
}

func (p *packer) Version() uint64 { return p.version.Load() }

func (p *packer) commit(e int) {
	p.version.Add(1)
	p.xs[e] = 1
}

func (p *packer) commitUnstamped(e int) {
	p.xs[e] = 1 // want `write to versioned field xs without a preceding version bump`
}

//gridroute:versionstamp
func (p *packer) journalAdd(ver uint64, edges []int) {}

//gridroute:weightmutator mu
func (p *packer) offerLocked(e int) {
	p.mu.Lock()
	p.commit(e)
	p.mu.Unlock()
	p.journalAdd(p.Version(), nil)
}

//gridroute:weightmutator mu
func (p *packer) offerUnlocked(e int) {
	p.commit(e)          // want `mutator call commit not bracketed by mu.Lock/Unlock`
	p.journalAdd(0, nil) // want `journalAdd requires a fresh .Version\(\) call as its first argument`
}

func rogue(p *packer, e int) {
	p.commit(e) // want `commit mutates versioned weights but rogue is not a //gridroute:weightmutator commit point`
}

//gridroute:rlock
func (p *packer) Snapshot() []float64 { return p.xs }

func readBad(p *packer) float64 {
	return p.Snapshot()[0] // want `Snapshot read requires RLock/RUnlock bracketing`
}
