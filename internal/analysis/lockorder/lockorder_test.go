package lockorder_test

import (
	"testing"

	"gridroute/internal/analysis/analyzertest"
	"gridroute/internal/analysis/lockorder"
)

func TestLockorderFlagged(t *testing.T) {
	analyzertest.Run(t, "testdata/src/flagged", lockorder.Analyzer)
}

func TestLockorderClean(t *testing.T) {
	analyzertest.Run(t, "testdata/src/clean", lockorder.Analyzer)
}
