// Package flagged shadows an err that is still read afterwards — the
// classic swallowed-error bug the span heuristic exists to catch.
package flagged

import "errors"

func swallowed(fail bool) error {
	err := errors.New("outer")
	if fail {
		err := errors.New("inner") // want `declaration of "err" shadows declaration at line \d+`
		_ = err
	}
	return err
}
