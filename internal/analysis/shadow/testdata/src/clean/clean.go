// Package clean exercises the heuristic's negative space: the outer value
// is never read after the inner declaration, the types differ, or the
// shadowed name is package-level (deliberate Go style, never reported).
package clean

import "errors"

var global = 1

func doneWithOuter(fail bool) error {
	err := errors.New("outer")
	if err != nil {
		return err
	}
	if fail {
		err := errors.New("inner") // outer err is dead here: no report
		return err
	}
	return nil
}

func differentType() int {
	n := 1
	{
		n := "inner" // different type: no report
		_ = n
	}
	return n
}

func shadowsGlobal() int {
	global := 2 // package-level names may be shadowed freely
	return global
}
