// Package shadow is a self-contained replacement for the stock x/tools
// shadow pass (not vendorable here — the Go distribution's cmd/vet vendor
// tree does not carry it). It implements the same span heuristic: an inner
// declaration of a name shadows an outer local variable of identical type,
// and is reported only when the outer variable is still used after the
// inner declaration — the pattern where a later read plausibly meant the
// inner value. The classic instance is an inner `err :=` swallowing an
// outer err that is returned further down.
//
// Package-level and universe names are never reported (shadowing those is
// pervasive, deliberate Go style), matching the stock pass.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"gridroute/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report shadowed local variables that are still used after the shadowing declaration",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := annotation.CollectAllows(pass.Fset, pass.Files)

	// Span of every local variable: from its declaration to its last use.
	span := make(map[*types.Var]token.Pos)
	grow := func(obj types.Object, pos token.Pos) {
		if v, ok := obj.(*types.Var); ok {
			if end := pos; end > span[v] {
				span[v] = end
			}
		}
	}
	for id, obj := range pass.TypesInfo.Defs {
		if obj != nil {
			grow(obj, id.End())
		}
	}
	for id, obj := range pass.TypesInfo.Uses {
		grow(obj, id.End())
	}

	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		// Declarations in the init clause of an if/for/switch are scoped to
		// that one statement by construction — the `if err := f(); err != nil`
		// idiom — and are never reported.
		initStmts := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				initStmts[n.Init] = true
			case *ast.ForStmt:
				initStmts[n.Init] = true
			case *ast.SwitchStmt:
				initStmts[n.Init] = true
			case *ast.TypeSwitchStmt:
				initStmts[n.Init] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || initStmts[ast.Stmt(n)] {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkDecl(pass, span, allows, id)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							checkDecl(pass, span, allows, id)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkDecl reports id if it shadows a same-typed outer local variable whose
// value is still read after this declaration.
func checkDecl(pass *analysis.Pass, span map[*types.Var]token.Pos, allows *annotation.Allows, id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	inner, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok {
		return
	}
	scope := inner.Parent()
	if scope == nil || scope.Parent() == nil {
		return
	}
	// Look the name up starting just outside the inner variable's scope.
	_, outerObj := scope.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == inner || outer.IsField() {
		return
	}
	// Only local-vs-local shadowing: skip package-level and universe names.
	if outer.Parent() == nil || outer.Parent() == types.Universe || outer.Parent().Parent() == types.Universe {
		return
	}
	if !types.Identical(inner.Type(), outer.Type()) {
		return
	}
	// The heuristic: the outer variable must still be used after the inner
	// declaration, in the same file.
	last := span[outer]
	if last <= id.Pos() {
		return
	}
	if allows.Allowed(id.Pos()) {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}
