package shadow_test

import (
	"testing"

	"gridroute/internal/analysis/analyzertest"
	"gridroute/internal/analysis/shadow"
)

func TestShadowFlagged(t *testing.T) {
	analyzertest.Run(t, "testdata/src/flagged", shadow.Analyzer)
}

func TestShadowClean(t *testing.T) {
	analyzertest.Run(t, "testdata/src/clean", shadow.Analyzer)
}
