// Package analyzertest is a minimal stand-in for
// golang.org/x/tools/go/analysis/analysistest, which is not part of the
// analysis subset the Go distribution vendors (and this module builds with
// no network). It covers what the gridlint fixtures need: parse and
// type-check one testdata package with the source importer, run analyzers
// with an in-memory fact store, and match reported diagnostics against
// // want "regexp" comments, failing the test on any mismatch in either
// direction.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package at dir (a directory of .go files, relative
// to the test's working directory), runs the analyzers over it in order,
// and checks diagnostics against the fixture's // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()

	fset := token.NewFileSet()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(paths)
	var files []*ast.File
	for _, p := range paths {
		f, perr := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if perr != nil {
			t.Fatalf("parse %s: %v", p, perr)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	facts := newFactStore()
	results := make(map[*analysis.Analyzer]interface{})
	var runOne func(a *analysis.Analyzer)
	runOne = func(a *analysis.Analyzer) {
		if _, done := results[a]; done {
			return
		}
		for _, req := range a.Requires {
			runOne(req)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
			ImportObjectFact:  facts.importObject,
			ExportObjectFact:  facts.exportObject,
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool { return false },
			ExportPackageFact: func(fact analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		results[a] = res
	}
	for _, a := range analyzers {
		runOne(a)
	}

	checkWants(t, fset, files, diags)
}

// factStore is a by-object fact table; single-package fixtures only need
// locally exported facts to be re-importable within the same run.
type factStore struct {
	objects map[types.Object][]analysis.Fact
}

func newFactStore() *factStore { return &factStore{objects: make(map[types.Object][]analysis.Fact)} }

func (s *factStore) exportObject(obj types.Object, fact analysis.Fact) {
	s.objects[obj] = append(s.objects[obj], fact)
}

func (s *factStore) importObject(obj types.Object, fact analysis.Fact) bool {
	for _, f := range s.objects[obj] {
		if reflect.TypeOf(f) == reflect.TypeOf(fact) {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// wantRx extracts the quoted patterns of a // want comment; both "..." and
// `...` quoting are accepted, as in upstream analysistest.
var wantRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// checkWants cross-checks diagnostics against // want comments by file:line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRx.FindAllString(text, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, exp.rx)
			}
		}
	}
}
