// Package clean exercises the analyzer's bail-outs: branches that reassign
// the variable before use, nil-map reads (legal in Go), ranging over nil
// slices, and address-taking.
package clean

type node struct {
	next *node
	val  int
}

func reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

func mapRead(m map[int]int) int {
	if m == nil {
		return m[1] // reading a nil map yields the zero value
	}
	return m[1]
}

func nilRange(s []int) int {
	sum := 0
	if s == nil {
		for _, v := range s {
			sum += v
		}
	}
	return sum
}

func addressed(p *int) int {
	if p == nil {
		q := &p
		*q = new(int)
		return *p
	}
	return *p
}
