// Package flagged dereferences variables on branches where they are
// provably nil: pointer field access, star deref, nil map write, and a nil
// function call.
package flagged

type node struct {
	next *node
	val  int
}

func field(n *node) int {
	if n == nil {
		return n.val // want `nil dereference: n is nil on this branch and is dereferenced via field access`
	}
	return 0
}

func star(p *int) int {
	if p != nil {
		return *p
	} else {
		return *p // want `nil dereference: p is nil on this branch and is dereferenced`
	}
}

func mapWrite(m map[int]int) {
	if m == nil {
		m[1] = 2 // want `nil dereference: m is nil on this branch and is written to as a map`
	}
}

func call(fn func() int) int {
	if fn == nil {
		return fn() // want `nil dereference: fn is nil on this branch and is called`
	}
	return fn()
}
