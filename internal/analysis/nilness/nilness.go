// Package nilness is a self-contained replacement for the stock x/tools
// nilness pass, which cannot be vendored here (it depends on go/ssa, and
// this module vendors only the analysis subset the Go distribution ships
// for cmd/vet). It catches the same headline bug class with a deliberately
// conservative AST analysis: inside a branch taken only when a variable is
// known nil (if x == nil { ... } or the else of x != nil), any dereference
// of that variable — field access through a pointer, *x, indexing, a call,
// or a map element write — is a guaranteed panic.
//
// The branch is skipped entirely if it reassigns the variable or takes its
// address, so there are no flow-sensitivity false positives; what remains
// reported is unconditionally wrong.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"gridroute/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of variables on branches where they are known to be nil",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	allows := annotation.CollectAllows(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if annotation.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, eq := nilComparison(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			// x == nil: the then-branch has x nil. x != nil: the else does.
			var nilBranch ast.Stmt
			if eq {
				nilBranch = ifs.Body
			} else {
				nilBranch = ifs.Else
			}
			if nilBranch != nil {
				checkNilBranch(pass, obj, nilBranch, allows)
			}
			return true
		})
	}
	return nil, nil
}

// nilComparison matches x == nil / nil == x (eq=true) and x != nil (eq=false)
// where x is a simple local variable of a nilable type.
func nilComparison(pass *analysis.Pass, cond ast.Expr) (obj *types.Var, eq bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(pass, y) {
		// keep x
	} else if isNilIdent(pass, x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Signature, *types.Chan, *types.Interface:
		return v, bin.Op == token.EQL
	}
	return nil, false
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// checkNilBranch reports dereferences of v inside branch. If the branch
// reassigns v or takes its address anywhere, it is skipped wholesale.
func checkNilBranch(pass *analysis.Pass, v *types.Var, branch ast.Stmt, allows *annotation.Allows) {
	escaped := false
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// Only a direct reassignment of the variable itself clears
				// its nilness; writes through it (m[k] = v) do not.
				if refersTo(pass, lhs, v) {
					escaped = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesVar(pass, n.X, v) {
				escaped = true
			}
		}
		return !escaped
	})
	if escaped {
		return
	}
	_, isPtr := v.Type().Underlying().(*types.Pointer)
	_, isFunc := v.Type().Underlying().(*types.Signature)
	_, isMap := v.Type().Underlying().(*types.Map)
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if refersTo(pass, n.X, v) {
				reportNil(pass, allows, n.Pos(), v, "dereferenced")
			}
		case *ast.SelectorExpr:
			if isPtr && refersTo(pass, n.X, v) {
				reportNil(pass, allows, n.Pos(), v, "dereferenced via field access")
			}
		case *ast.IndexExpr:
			if isPtr && refersTo(pass, n.X, v) {
				reportNil(pass, allows, n.Pos(), v, "indexed through")
			}
		case *ast.CallExpr:
			if isFunc && refersTo(pass, n.Fun, v) {
				reportNil(pass, allows, n.Pos(), v, "called")
			}
		case *ast.AssignStmt:
			if isMap {
				for _, lhs := range n.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && refersTo(pass, idx.X, v) {
						reportNil(pass, allows, lhs.Pos(), v, "written to as a map")
					}
				}
			}
		}
		return true
	})
}

func reportNil(pass *analysis.Pass, allows *annotation.Allows, pos token.Pos, v *types.Var, how string) {
	if !allows.Allowed(pos) {
		pass.Reportf(pos, "nil dereference: %s is nil on this branch and is %s", v.Name(), how)
	}
}

func usesVar(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// refersTo reports whether e is exactly the variable v (modulo parens).
func refersTo(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == v
}
