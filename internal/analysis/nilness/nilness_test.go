package nilness_test

import (
	"testing"

	"gridroute/internal/analysis/analyzertest"
	"gridroute/internal/analysis/nilness"
)

func TestNilnessFlagged(t *testing.T) {
	analyzertest.Run(t, "testdata/src/flagged", nilness.Analyzer)
}

func TestNilnessClean(t *testing.T) {
	analyzertest.Run(t, "testdata/src/clean", nilness.Analyzer)
}
