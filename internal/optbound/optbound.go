// Package optbound produces the OPT certificates used by the benchmark
// harness (DESIGN.md §2). Exact integral OPT for online packet routing is
// NP-hard in general, so competitive ratios are reported against:
//
//  1. DualUpperBound — a certified upper bound on the optimal fractional
//     throughput over the simulated horizon, obtained by running the
//     Theorem 1 primal–dual packer directly on the space-time graph with
//     the true capacities (B, c) and reading off the feasible primal
//     covering value Σ c(e)·x_e + Σ z_i (weak duality, Appendix E). The
//     paper itself compares against the fractional optimum (Prop. 5).
//  2. ExactBufferlessLine — exact OPT for B = 0 lines, where each request
//     is an interval in an independent column of the untilted lattice and
//     OPT decomposes into per-column c-machine interval scheduling
//     (the setting of Prop. 12).
//  3. ExactTiny — exhaustive search for very small instances (test oracle).
//
// The space-time packer built here is also the Theorem 13 algorithm (large
// B, c): run ipp over Gst with capacities scaled down by k and route
// non-preemptively.
package optbound

import (
	"sort"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/spacetime"
)

// STPacker runs online integral path packing directly over an untilted
// space-time lattice with uniform per-axis capacities.
type STPacker struct {
	ST *spacetime.Graph
	// BCap and CCap are the capacities used for w-axis and space-axis
	// edges. They can differ from the grid's (B, c): Theorem 13 uses
	// ⌊B/k⌋ and ⌊c/k⌋.
	BCap, CCap float64

	pk *ipp.Packer
	dp *lattice.DP

	winLo, winHi []int
	probe        []int
	srcBuf       []int
	edgeBuf      []ipp.EdgeID
	path         lattice.Path
}

// NewSTPacker builds a packer over st with the given axis capacities and
// path-length bound pmax. bCap may be 0 (bufferless; w edges forbidden);
// cCap must be ≥ 1.
//
// The edge universe of a space-time box is exactly box.Size()·(d+1) ids
// (one per node and outgoing axis), so the packer uses the dense ipp
// backend and the lightest-path DP indexes its weight slice directly.
func NewSTPacker(st *spacetime.Graph, bCap, cCap float64, pmax int) *STPacker {
	d := st.G.D()
	sp := &STPacker{
		ST: st, BCap: bCap, CCap: cCap,
		dp:     st.Box.NewDP(),
		winLo:  make([]int, d+1),
		winHi:  make([]int, d+1),
		probe:  make([]int, d+1),
		srcBuf: make([]int, d+1),
	}
	sp.pk = ipp.NewDense(pmax, func(e ipp.EdgeID) float64 {
		if int(e)%(d+1) == d {
			return bCap
		}
		return cCap
	}, st.Box.Size()*(d+1))
	return sp
}

// Packer exposes the underlying ipp state (loads, primal value, counts).
func (sp *STPacker) Packer() *ipp.Packer { return sp.pk }

// LightestPath returns the current lightest legal space-time path for r and
// its weight, or nil when no legal path exists. The returned path aliases a
// buffer owned by the packer and is valid until the next LightestPath or
// Offer call; copy it to retain it.
//
//gridroute:hotpath
func (sp *STPacker) LightestPath(r *grid.Request) (*lattice.Path, float64) {
	return sp.lightestPath(r, lattice.Inf)
}

// lightestPath is LightestPath with a relaxation bound: paths are reported
// only when their weight is < bound, and the DP prunes relaxations from
// nodes at or beyond it (RunFlatBounded is bit-exact below the bound). The
// accept test of Algorithm 3 is cost < 1, so Offer passes bound 1: on a
// saturated lattice most of the window exceeds the bound and is never
// relaxed, while every decision — and the committed path — stays identical.
//
//gridroute:hotpath
func (sp *STPacker) lightestPath(r *grid.Request, bound float64) (*lattice.Path, float64) {
	d := sp.ST.G.D()
	src := sp.ST.ToLattice(r.Src, r.Arrival, sp.srcBuf)
	if !sp.ST.Box.Contains(src) {
		return nil, 0
	}
	wLo, wHi := sp.ST.DestRay(r)
	if wLo < src[d] {
		wLo = src[d]
	}
	// Path length = (w' − w_src) + dist; enforce ≤ pmax via the window.
	dist := sp.ST.G.Dist(r.Src, r.Dst)
	if dist < 0 {
		return nil, 0
	}
	if lim := src[d] + sp.pk.PMax() - dist; wHi > lim {
		wHi = lim
	}
	if sp.BCap < 1 {
		// Bufferless: no w moves possible.
		wHi = src[d]
		if wLo > wHi {
			return nil, 0
		}
	}
	if wHi < wLo {
		return nil, 0
	}
	for i := 0; i < d; i++ {
		sp.winLo[i] = src[i]
		sp.winHi[i] = r.Dst[i] + 1
	}
	sp.winLo[d] = src[d]
	sp.winHi[d] = wHi + 1

	// The dense weight slice is indexed by edgeID(node, axis) = node·(d+1)+a,
	// which is exactly RunFlat's layout. Bufferless runs need no explicit
	// w-edge blocking: winHi[d] = src[d]+1 gives the window w-extent 1, so
	// the DP never relaxes a w edge.
	sp.dp.RunFlatBounded(sp.winLo, sp.winHi, src, sp.pk.Weights(), nil, bound)

	probe := sp.probe
	copy(probe, r.Dst)
	probe[d] = wLo
	best, bestW := sp.dp.MinCostRay(probe, d, wLo, wHi)
	if best >= bound {
		return nil, 0
	}
	probe[d] = bestW
	// A warm reused path makes reconstruction allocation-free; a packer
	// offering n requests otherwise allocates 3n path objects, and the GC
	// cycles they force are visible on the Theorem 1 benchmark.
	if !sp.dp.PathInto(probe, &sp.path) {
		return nil, 0
	}
	return &sp.path, best
}

// Offer runs one step of Algorithm 3 for r: find the lightest path, accept
// if its weight is < 1. It returns the committed path on acceptance; like
// LightestPath's, the path is valid until the next call on the packer.
//
// The search is bounded at 1: a request whose lightest path weighs ≥ 1 is
// rejected whether or not the exact weight is known, and the packer's
// observable evolution (rejected count, untouched weights) is the same for
// "no path found" and "path too heavy" — so pruning the DP at the accept
// threshold changes nothing but the work done.
//
//gridroute:hotpath
func (sp *STPacker) Offer(r *grid.Request) (*lattice.Path, bool) {
	p, cost := sp.lightestPath(r, 1)
	if p == nil {
		sp.pk.Offer(nil, 0)
		return nil, false
	}
	sp.edgeBuf = sp.edgeBuf[:0]
	axes := sp.ST.G.D() + 1
	id := sp.ST.Box.Index(p.Start)
	for _, a := range p.Axes {
		sp.edgeBuf = append(sp.edgeBuf, ipp.EdgeID(id*axes+int(a)))
		id += sp.ST.Box.Stride(int(a))
	}
	if !sp.pk.Offer(sp.edgeBuf, cost) {
		return nil, false
	}
	return p, true
}

// DualUpperBound offers every request to a true-capacity space-time packer
// and returns (a) the certified primal upper bound on the fractional OPT
// within the horizon, and (b) the number of requests the packer itself
// routed (a feasible online throughput, hence a lower bound witness).
func DualUpperBound(g *grid.Grid, reqs []grid.Request, T int64) (upper float64, accepted int) {
	st := spacetime.New(g, T)
	// Any path within the box fits this bound.
	pmax := g.Diameter() + int(T) + 1
	bCap := float64(g.B)
	sp := NewSTPacker(st, bCap, float64(g.C), pmax)
	for i := range reqs {
		sp.Offer(&reqs[i])
	}
	return sp.pk.PrimalValue(), sp.pk.Accepted()
}

// ExactBufferlessLine computes the exact optimal throughput for a
// uni-directional line with B = 0 (Prop. 12 setting). Each request occupies
// the interval (a_i, b_i) of its fixed column w = t_i − a_i, and columns are
// independent; per column, OPT is c-machine interval scheduling, solved
// exactly by the greedy over intervals sorted by right endpoint that
// assigns each interval to the compatible machine with the latest finishing
// time.
func ExactBufferlessLine(g *grid.Grid, reqs []grid.Request) int {
	if g.D() != 1 || g.B != 0 {
		panic("optbound: ExactBufferlessLine requires a bufferless line")
	}
	type iv struct{ lo, hi int }
	cols := make(map[int][]iv)
	for i := range reqs {
		r := &reqs[i]
		w := int(r.Arrival) - r.Src[0]
		cols[w] = append(cols[w], iv{r.Src[0], r.Dst[0]})
	}
	total := 0
	for _, ivs := range cols {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].hi < ivs[b].hi })
		machines := make([]int, g.C) // finishing coordinate per machine
		for i := range machines {
			machines[i] = -1 << 60
		}
		for _, v := range ivs {
			// Latest compatible machine (open intervals: endpoints may touch).
			bestM, bestEnd := -1, -1<<62
			for m, end := range machines {
				if end <= v.lo && end > bestEnd {
					bestM, bestEnd = m, end
				}
			}
			if bestM >= 0 {
				machines[bestM] = v.hi
				total++
			}
		}
	}
	return total
}

// ExactTiny exhaustively computes the optimal throughput for very small
// instances by enumerating candidate space-time paths per request and
// searching over assignments. It returns (opt, true) on success or
// (0, false) when the instance exceeds the enumeration limits.
func ExactTiny(g *grid.Grid, reqs []grid.Request, T int64, maxPathsPerReq, maxReqs int) (int, bool) {
	if len(reqs) > maxReqs {
		return 0, false
	}
	st := spacetime.New(g, T)
	d := g.D()
	// Enumerate monotone lattice paths per request.
	paths := make([][][]ipp.EdgeID, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		src := st.SourcePoint(r)
		wLo, wHi := st.DestRay(r)
		if wLo < src[d] {
			wLo = src[d]
		}
		if g.B == 0 {
			wHi = src[d]
		}
		var out [][]ipp.EdgeID
		var cur []ipp.EdgeID
		pos := append([]int(nil), src...)
		overflow := false
		var dfs func()
		dfs = func() {
			if overflow {
				return
			}
			atDst := true
			for a := 0; a < d; a++ {
				if pos[a] != r.Dst[a] {
					atDst = false
					break
				}
			}
			if atDst && pos[d] >= wLo && pos[d] <= wHi {
				if len(out) >= maxPathsPerReq {
					overflow = true
					return
				}
				out = append(out, append([]ipp.EdgeID(nil), cur...))
				// Arriving earlier dominates arriving later with the same
				// spatial route only when capacities bite; keep exploring.
			}
			for a := 0; a <= d; a++ {
				if a < d && pos[a] >= r.Dst[a] {
					continue
				}
				if a == d && (g.B == 0 || pos[d] >= wHi) {
					continue
				}
				id := st.Box.Index(pos)
				cur = append(cur, ipp.EdgeID(id*(d+1)+a))
				pos[a]++
				dfs()
				pos[a]--
				cur = cur[:len(cur)-1]
			}
		}
		dfs()
		if overflow {
			return 0, false
		}
		paths[i] = out
	}

	// The search mutates per-edge usage on every branch; a flat slice over
	// the box's edge universe keeps that O(1) with no hashing.
	use := make([]int, st.Box.Size()*(d+1))
	capOf := func(e ipp.EdgeID) int {
		if int(e)%(d+1) == d {
			return g.B
		}
		return g.C
	}
	best := 0
	var rec func(i, served int)
	rec = func(i, served int) {
		if served+len(reqs)-i <= best {
			return
		}
		if i == len(reqs) {
			if served > best {
				best = served
			}
			return
		}
		for _, p := range paths[i] {
			ok := true
			for _, e := range p {
				if use[e]+1 > capOf(e) {
					ok = false
					break
				}
			}
			if ok {
				for _, e := range p {
					use[e]++
				}
				rec(i+1, served+1)
				for _, e := range p {
					use[e]--
				}
			}
		}
		rec(i+1, served)
	}
	rec(0, 0)
	return best, true
}
