package optbound

import (
	"math/rand"
	"testing"

	"gridroute/internal/baseline"
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
)

func TestDualUpperBoundDominatesFeasible(t *testing.T) {
	g := grid.Line(24, 2, 2)
	rng := rand.New(rand.NewSource(1))
	reqs := scenario.Uniform(g, 80, 48, rng)
	T := spacetime.SuggestHorizon(g, reqs, 3)
	upper, accepted := DualUpperBound(g, reqs, T)
	if upper < float64(accepted) {
		t.Fatalf("dual upper %v < packer's own throughput %d", upper, accepted)
	}
	// Any feasible schedule (here: greedy) must stay below the bound.
	res := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model1, T)
	if float64(res.Throughput()) > upper+1e-9 {
		t.Fatalf("greedy throughput %d exceeds certified upper bound %v", res.Throughput(), upper)
	}
}

func TestDualUpperTightOnSingleton(t *testing.T) {
	g := grid.Line(8, 2, 1)
	reqs := []grid.Request{{Src: grid.Vec{0}, Dst: grid.Vec{7}, Arrival: 0, Deadline: grid.InfDeadline}}
	upper, accepted := DualUpperBound(g, reqs, 32)
	if accepted != 1 {
		t.Fatalf("accepted %d, want 1", accepted)
	}
	if upper < 1 || upper > 2.5 {
		t.Fatalf("upper %v out of the (1, 2·dual] window", upper)
	}
}

func TestSTPackerBufferlessBlocksHolds(t *testing.T) {
	g := grid.Line(16, 0, 2)
	st := spacetime.New(g, 40)
	sp := NewSTPacker(st, 0, 2, 64)
	r := &grid.Request{Src: grid.Vec{2}, Dst: grid.Vec{9}, Arrival: 1, Deadline: grid.InfDeadline}
	p, ok := sp.Offer(r)
	if !ok {
		t.Fatal("bufferless straight path should be accepted")
	}
	for _, a := range p.Axes {
		if int(a) == 1 {
			t.Fatal("bufferless path contains a w (hold) step")
		}
	}
}

func TestSTPackerRespectsDeadline(t *testing.T) {
	g := grid.Line(16, 4, 4)
	st := spacetime.New(g, 60)
	sp := NewSTPacker(st, 4, 4, 64)
	r := &grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{10}, Arrival: 0, Deadline: 12}
	p, ok := sp.Offer(r)
	if !ok {
		t.Fatal("feasible deadline should be routable")
	}
	s := st.PathToSchedule(r, p)
	if !s.Delivers() {
		t.Fatal("packed path misses its deadline")
	}
}

func TestExactBufferlessLineKnown(t *testing.T) {
	g := grid.Line(8, 0, 1)
	// Two overlapping intervals in the same column + one in another column.
	reqs := []grid.Request{
		{Src: grid.Vec{0}, Dst: grid.Vec{4}, Arrival: 0, Deadline: grid.InfDeadline}, // col 0
		{Src: grid.Vec{2}, Dst: grid.Vec{6}, Arrival: 2, Deadline: grid.InfDeadline}, // col 0, overlaps
		{Src: grid.Vec{1}, Dst: grid.Vec{3}, Arrival: 4, Deadline: grid.InfDeadline}, // col 3
	}
	if opt := ExactBufferlessLine(g, reqs); opt != 2 {
		t.Fatalf("opt = %d, want 2", opt)
	}
	// With c = 2 both column-0 intervals fit.
	g2 := grid.Line(8, 0, 2)
	if opt := ExactBufferlessLine(g2, reqs); opt != 3 {
		t.Fatalf("opt(c=2) = %d, want 3", opt)
	}
}

// Prop. 12: nearest-to-go is optimal on bufferless lines. Cross-check NTG
// against the exact OPT on random instances.
func TestProp12NTGOptimalBufferless(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := grid.Line(12, 0, 1)
		rng := rand.New(rand.NewSource(seed))
		reqs := scenario.Uniform(g, 10, 12, rng)
		opt := ExactBufferlessLine(g, reqs)
		res := baseline.Run(g, reqs, baseline.NearestToGo{}, netsim.Model1, 64)
		if res.Throughput() > opt {
			t.Fatalf("seed %d: NTG %d > exact OPT %d (bound broken)", seed, res.Throughput(), opt)
		}
		if res.Throughput() < opt {
			// NTG should match OPT on B=0 lines (Prop. 12).
			t.Fatalf("seed %d: NTG %d < OPT %d (Prop 12 violated)", seed, res.Throughput(), opt)
		}
	}
}

func TestExactTinyMatchesBufferless(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := grid.Line(8, 0, 1)
		rng := rand.New(rand.NewSource(100 + seed))
		reqs := scenario.Uniform(g, 6, 8, rng)
		want := ExactBufferlessLine(g, reqs)
		got, ok := ExactTiny(g, reqs, 32, 64, 8)
		if !ok {
			t.Fatalf("seed %d: enumeration overflow", seed)
		}
		if got != want {
			t.Fatalf("seed %d: ExactTiny %d != column OPT %d", seed, got, want)
		}
	}
}

func TestExactTinyWithBuffers(t *testing.T) {
	g := grid.Line(5, 1, 1)
	// Two packets over the same edge at the same step: buffering saves one.
	reqs := []grid.Request{
		{Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline},
		{Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	opt, ok := ExactTiny(g, reqs, 6, 128, 4)
	if !ok || opt != 2 {
		t.Fatalf("opt = %d ok=%v, want 2 (one buffers a step)", opt, ok)
	}
	// With B = 0 only one survives.
	g0 := grid.Line(5, 0, 1)
	opt0, ok := ExactTiny(g0, reqs, 6, 128, 4)
	if !ok || opt0 != 1 {
		t.Fatalf("bufferless opt = %d, want 1", opt0)
	}
}

func TestExactTinyLimits(t *testing.T) {
	g := grid.Line(6, 1, 1)
	reqs := make([]grid.Request, 5)
	for i := range reqs {
		reqs[i] = grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{5}, Arrival: int64(i), Deadline: grid.InfDeadline}
	}
	if _, ok := ExactTiny(g, reqs, 64, 2, 3); ok {
		t.Fatal("maxReqs=3 < 5 requests should refuse")
	}
}
