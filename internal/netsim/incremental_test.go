package netsim

import (
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/spacetime"
)

// incWindow computes the batch replay window for a schedule set.
func incWindow(schedules []*spacetime.Schedule) (int64, int64) {
	minT, maxT := int64(0), int64(-1)
	first := true
	for _, s := range schedules {
		if s == nil {
			continue
		}
		end := s.StartT + int64(len(s.Moves))
		if first {
			minT, maxT = s.StartT, end
			first = false
			continue
		}
		if s.StartT < minT {
			minT = s.StartT
		}
		if end > maxT {
			maxT = end
		}
	}
	if maxT < minT {
		maxT = minT
	}
	return minT, maxT
}

// TestIncrementalMatchesBatch feeds the same schedule set — deliveries,
// holds, a nil, a late delivery, a link overflow and a buffer overflow —
// through the one-at-a-time verifier and the batch Replayer and checks the
// outcomes, peak occupancies and violation verdicts agree under both models.
func TestIncrementalMatchesBatch(t *testing.T) {
	g := grid.Line(8, 1, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 2, Src: grid.Vec{4}, Dst: grid.Vec{6}, Arrival: 1, Deadline: grid.InfDeadline},
		{ID: 3, Src: grid.Vec{4}, Dst: grid.Vec{5}, Arrival: 1, Deadline: grid.InfDeadline},
		{ID: 4, Src: grid.Vec{2}, Dst: grid.Vec{7}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 5, Src: grid.Vec{6}, Dst: grid.Vec{7}, Arrival: 2, Deadline: grid.InfDeadline},
		{ID: 6, Src: grid.Vec{0}, Dst: grid.Vec{1}, Arrival: 3, Deadline: 3},
	}
	schedules := []*spacetime.Schedule{
		// 0 and 1 share every link in every step: c=1 overflows.
		mkSchedule(&reqs[0], 0, 0, 0),
		mkSchedule(&reqs[1], 0, 0, 0),
		// 2 and 3 both hold at node 4 during step 1: B=1 overflows (Model 1);
		// under Model 2 their shared presence overflows too.
		mkSchedule(&reqs[2], spacetime.Hold, 0, 0),
		mkSchedule(&reqs[3], spacetime.Hold, spacetime.Hold, 0),
		nil, // rejected packet
		mkSchedule(&reqs[5], 0),
		// Holds before moving: delivered at t=5 > deadline 3 → late.
		mkSchedule(&reqs[6], spacetime.Hold, spacetime.Hold, 0),
	}

	for _, model := range []Model{Model1, Model2} {
		batch := ReplaySchedules(g, reqs, schedules, model)

		minT, maxT := incWindow(schedules)
		inc := NewIncremental(g, model, minT, maxT)
		for round := 0; round < 2; round++ {
			for i := range reqs {
				got := inc.Add(&reqs[i], schedules[i])
				want := batch.Outcomes[i]
				if got.Kind != want.Kind || got.DeliveredAt != want.DeliveredAt || got.OnTime != want.OnTime {
					t.Fatalf("model %v round %d req %d: incremental %+v vs batch %+v", model, round, i, got, want)
				}
			}
			if inc.MaxBuffer() != batch.MaxBuffer || inc.MaxLink() != batch.MaxLink {
				t.Fatalf("model %v round %d: peaks (%d,%d) vs batch (%d,%d)",
					model, round, inc.MaxBuffer(), inc.MaxLink(), batch.MaxBuffer, batch.MaxLink)
			}
			// Violation strings differ by design (first-exceed vs final
			// count); the verdict must not.
			if (len(inc.Violations()) == 0) != (len(batch.Violation) == 0) {
				t.Fatalf("model %v round %d: incremental violations %v vs batch %v",
					model, round, inc.Violations(), batch.Violation)
			}
			// Warm reuse: a Reset verifier must reproduce itself exactly.
			inc.Reset(minT, maxT)
			if inc.Added() != 0 || len(inc.Violations()) != 0 || inc.MaxBuffer() != 0 || inc.MaxLink() != 0 {
				t.Fatal("Reset left residual state")
			}
		}
	}
}

// TestIncrementalCleanRunNoViolations checks a conflict-free schedule set
// replays without violations and counts Added correctly.
func TestIncrementalCleanRunNoViolations(t *testing.T) {
	g := grid.Line(8, 2, 2)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{3}, Dst: grid.Vec{5}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	schedules := []*spacetime.Schedule{
		mkSchedule(&reqs[0], 0, spacetime.Hold, 0),
		mkSchedule(&reqs[1], 0, 0),
	}
	minT, maxT := incWindow(schedules)
	inc := NewIncremental(g, Model1, minT, maxT)
	for i := range reqs {
		if o := inc.Add(&reqs[i], schedules[i]); o.Kind != Delivered || !o.OnTime {
			t.Fatalf("req %d outcome %+v", i, o)
		}
	}
	if inc.Added() != 2 || len(inc.Violations()) != 0 {
		t.Fatalf("added %d violations %v", inc.Added(), inc.Violations())
	}
}

// TestIncrementalWindowGuard checks schedules outside the declared window
// are flagged instead of corrupting the occupancy arrays.
func TestIncrementalWindowGuard(t *testing.T) {
	g := grid.Line(8, 2, 2)
	r := grid.Request{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 9, Deadline: grid.InfDeadline}
	s := mkSchedule(&r, 0, 0)
	inc := NewIncremental(g, Model1, 0, 5)
	if o := inc.Add(&r, s); o.Kind == Delivered {
		t.Fatal("out-of-window schedule must not deliver")
	}
	if len(inc.Violations()) == 0 {
		t.Fatal("out-of-window schedule must be flagged")
	}
}
