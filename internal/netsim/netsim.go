// Package netsim is a cycle-accurate synchronous store-and-forward network
// simulator for uni-directional grids (Sec. 2.1 of Even–Medina).
//
// It supports the two node-functionality models compared in Appendix F:
//
//   - Model 1 (ARSU02, RR09; used by the paper): a combinational node may
//     cut a packet through from an incoming link to an outgoing link within
//     one cycle; only packets held across a cycle boundary occupy the B
//     buffer slots.
//   - Model 2 (AKK09, AZ05): every packet present at a node during a cycle
//     occupies a buffer slot, including packets forwarded in that cycle.
//
// Two execution modes exist: replaying explicit space-time schedules (the
// output of the paper's algorithms) with full capacity/buffer verification,
// and running local priority policies (greedy, nearest-to-go) step by step.
package netsim

import (
	"fmt"
	"sort"

	"gridroute/internal/grid"
	"gridroute/internal/spacetime"
)

// Model selects the node functionality (Appendix F).
type Model int

const (
	// Model1 allows cut-through: only held packets use buffer slots.
	Model1 Model = iota
	// Model2 charges a buffer slot to every packet present during a cycle.
	Model2
)

func (m Model) String() string {
	if m == Model2 {
		return "model2"
	}
	return "model1"
}

// OutcomeKind classifies what happened to a request.
type OutcomeKind int

const (
	// Unserved: the request was never injected (admission control rejected
	// it, or it never appeared in the executed schedule set).
	Unserved OutcomeKind = iota
	// Delivered: the packet reached its destination (check OnTime for the
	// deadline).
	Delivered
	// Dropped: the packet was injected and later preempted/dropped.
	Dropped
	// Stuck: the packet was still travelling when the horizon ended.
	Stuck
)

func (k OutcomeKind) String() string {
	switch k {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Stuck:
		return "stuck"
	default:
		return "unserved"
	}
}

// Outcome is the per-request result.
type Outcome struct {
	Kind        OutcomeKind
	DeliveredAt int64
	OnTime      bool
}

// Result aggregates a simulation run.
type Result struct {
	Name      string
	Outcomes  []Outcome
	Violation []string
	// MaxBuffer is the peak buffer occupancy observed at any node.
	MaxBuffer int
	// MaxLink is the peak per-edge link usage observed in any step.
	MaxLink int
}

// Throughput returns the number of requests delivered on time — the paper's
// objective |alg(σ)|.
func (r *Result) Throughput() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Kind == Delivered && o.OnTime {
			n++
		}
	}
	return n
}

// DeliveredCount returns deliveries ignoring deadlines.
func (r *Result) DeliveredCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Kind == Delivered {
			n++
		}
	}
	return n
}

// CountKind returns the number of outcomes of kind k.
func (r *Result) CountKind(k OutcomeKind) int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Kind == k {
			n++
		}
	}
	return n
}

type edgeKey struct {
	node int
	axis int8
	t    int64
}

type nodeKey struct {
	node int
	t    int64
}

// ReplaySchedules executes explicit schedules under the given model,
// verifying every link-capacity and buffer constraint. schedules[i] may be
// nil for requests that were rejected. The returned result flags violations;
// a correct algorithm produces none.
func ReplaySchedules(g *grid.Grid, reqs []grid.Request, schedules []*spacetime.Schedule, model Model) *Result {
	res := &Result{Outcomes: make([]Outcome, len(reqs))}
	links := make(map[edgeKey]int)
	bufs := make(map[nodeKey]int)

	bump := func(m map[nodeKey]int, k nodeKey, res *Result) {
		m[k]++
		if m[k] > res.MaxBuffer {
			res.MaxBuffer = m[k]
		}
	}

	for i, s := range schedules {
		if s == nil {
			continue
		}
		if s.Req == nil || !s.Req.Src.Eq(reqs[i].Src) || s.Req.Arrival != reqs[i].Arrival {
			res.Violation = append(res.Violation, fmt.Sprintf("req %d: schedule/request mismatch", i))
			continue
		}
		pos := s.Src.Clone()
		t := s.StartT
		ok := true
		for _, m := range s.Moves {
			if m == spacetime.Hold {
				bump(bufs, nodeKey{g.Index(pos), t}, res)
			} else {
				ek := edgeKey{g.Index(pos), int8(m), t}
				links[ek]++
				if links[ek] > res.MaxLink {
					res.MaxLink = links[ek]
				}
				pos[m]++
				if pos[m] >= g.Dims[m] {
					res.Violation = append(res.Violation, fmt.Sprintf("req %d: leaves grid", i))
					ok = false
					break
				}
			}
			t++
		}
		if !ok {
			res.Outcomes[i] = Outcome{Kind: Dropped}
			continue
		}
		if pos.Eq(reqs[i].Dst) {
			onTime := reqs[i].Deadline == grid.InfDeadline || t <= reqs[i].Deadline
			res.Outcomes[i] = Outcome{Kind: Delivered, DeliveredAt: t, OnTime: onTime}
		} else {
			res.Outcomes[i] = Outcome{Kind: Dropped}
		}
	}

	// Model 2 presence accounting: a packet is present at a node for every
	// cycle from its arrival there until it departs; charge each such cycle.
	if model == Model2 {
		bufs = make(map[nodeKey]int)
		res.MaxBuffer = 0
		for i, s := range schedules {
			if s == nil {
				continue
			}
			pos := s.Src.Clone()
			t := s.StartT
			for _, m := range s.Moves {
				if !pos.Eq(reqs[i].Dst) {
					bump(bufs, nodeKey{g.Index(pos), t}, res)
				}
				if m != spacetime.Hold {
					pos[m]++
					if pos[m] >= g.Dims[m] {
						break
					}
				}
				t++
			}
		}
	}

	for k, n := range links {
		if n > g.C {
			res.Violation = append(res.Violation,
				fmt.Sprintf("link capacity exceeded: node %d axis %d t=%d: %d > %d", k.node, k.axis, k.t, n, g.C))
		}
	}
	for k, n := range bufs {
		if n > g.B {
			res.Violation = append(res.Violation,
				fmt.Sprintf("buffer exceeded: node %d t=%d: %d > %d", k.node, k.t, n, g.B))
		}
	}
	return res
}

// Packet is a live packet in the policy engine.
type Packet struct {
	Req *grid.Request
	Idx int
	Pos grid.Vec
	// InjectedAt is the time the packet entered the network.
	InjectedAt int64
}

// Policy drives local (distributed) algorithms such as greedy and
// nearest-to-go.
type Policy interface {
	Name() string
	// Priority orders packets at a node; smaller values are served first
	// (forwarded before others, retained in buffers before others).
	Priority(p *Packet, now int64) int64
	// NextAxis picks the outgoing axis for a packet (it must satisfy
	// Pos[axis] < Dst[axis]); it is only called when Pos ≠ Dst.
	NextAxis(g *grid.Grid, p *Packet) int
}

// RunLocal executes a local policy step by step until horizon (inclusive).
// Injection is greedy: every arriving packet enters the fray and competes
// for link and buffer space under the policy's priority; losers are dropped
// (the behaviour whose competitive ratio Table 1 lower-bounds).
func RunLocal(g *grid.Grid, reqs []grid.Request, pol Policy, model Model, horizon int64) *Result {
	res := &Result{Name: pol.Name(), Outcomes: make([]Outcome, len(reqs))}

	// Arrivals grouped by time.
	arrivals := make(map[int64][]int)
	for i := range reqs {
		arrivals[reqs[i].Arrival] = append(arrivals[reqs[i].Arrival], i)
	}

	atNode := make(map[int][]*Packet)
	var moved []*Packet

	for t := int64(0); t <= horizon; t++ {
		// 1. Inject arrivals.
		for _, idx := range arrivals[t] {
			r := &reqs[idx]
			p := &Packet{Req: r, Idx: idx, Pos: r.Src.Clone(), InjectedAt: t}
			nid := g.Index(p.Pos)
			atNode[nid] = append(atNode[nid], p)
		}
		// 2-4. Per-node processing.
		moved = moved[:0]
		for nid, pkts := range atNode {
			if len(pkts) == 0 {
				continue
			}
			// Deliveries first: packets at their destination leave the
			// network and use no resources.
			keep := pkts[:0]
			for _, p := range pkts {
				if p.Pos.Eq(p.Req.Dst) {
					onTime := p.Req.Deadline == grid.InfDeadline || t <= p.Req.Deadline
					res.Outcomes[p.Idx] = Outcome{Kind: Delivered, DeliveredAt: t, OnTime: onTime}
				} else {
					keep = append(keep, p)
				}
			}
			pkts = keep

			sort.SliceStable(pkts, func(a, b int) bool {
				return pol.Priority(pkts[a], t) < pol.Priority(pkts[b], t)
			})

			// Model 2: every packet present needs a buffer slot before any
			// forwarding happens.
			if model == Model2 && len(pkts) > g.B {
				for _, p := range pkts[g.B:] {
					res.Outcomes[p.Idx] = Outcome{Kind: Dropped}
				}
				pkts = pkts[:g.B]
			}
			// Forward up to C per outgoing axis, in priority order.
			used := make([]int, g.D())
			stay := pkts[:0]
			for _, p := range pkts {
				a := pol.NextAxis(g, p)
				if a >= 0 && a < g.D() && p.Pos[a] < p.Req.Dst[a] && used[a] < g.C {
					used[a]++
					p.Pos[a]++
					moved = append(moved, p)
				} else {
					stay = append(stay, p)
				}
			}
			// Buffer retention: best B stay, rest dropped.
			if len(stay) > g.B {
				for _, p := range stay[g.B:] {
					res.Outcomes[p.Idx] = Outcome{Kind: Dropped}
				}
				stay = stay[:g.B]
			}
			if len(stay) > res.MaxBuffer {
				res.MaxBuffer = len(stay)
			}
			if len(stay) == 0 {
				delete(atNode, nid)
			} else {
				buf := make([]*Packet, len(stay))
				copy(buf, stay)
				atNode[nid] = buf
			}
		}
		// 5. Arrivals land at their new nodes for step t+1.
		for _, p := range moved {
			nid := g.Index(p.Pos)
			atNode[nid] = append(atNode[nid], p)
		}
	}

	// Anything still in flight is stuck.
	for _, pkts := range atNode {
		for _, p := range pkts {
			if res.Outcomes[p.Idx].Kind == Unserved {
				res.Outcomes[p.Idx] = Outcome{Kind: Stuck}
			}
		}
	}
	return res
}
