// Package netsim is a cycle-accurate synchronous store-and-forward network
// simulator for uni-directional grids (Sec. 2.1 of Even–Medina).
//
// It supports the two node-functionality models compared in Appendix F:
//
//   - Model 1 (ARSU02, RR09; used by the paper): a combinational node may
//     cut a packet through from an incoming link to an outgoing link within
//     one cycle; only packets held across a cycle boundary occupy the B
//     buffer slots.
//   - Model 2 (AKK09, AZ05): every packet present at a node during a cycle
//     occupies a buffer slot, including packets forwarded in that cycle.
//
// Two execution modes exist: replaying explicit space-time schedules (the
// output of the paper's algorithms) with full capacity/buffer verification,
// and running local priority policies (greedy, nearest-to-go) step by step.
package netsim

import (
	"fmt"
	"sort"
	"sync"

	"gridroute/internal/dense"
	"gridroute/internal/grid"
	"gridroute/internal/spacetime"
)

// Model selects the node functionality (Appendix F).
type Model int

const (
	// Model1 allows cut-through: only held packets use buffer slots.
	Model1 Model = iota
	// Model2 charges a buffer slot to every packet present during a cycle.
	Model2
)

func (m Model) String() string {
	if m == Model2 {
		return "model2"
	}
	return "model1"
}

// OutcomeKind classifies what happened to a request.
type OutcomeKind int

const (
	// Unserved: the request was never injected (admission control rejected
	// it, or it never appeared in the executed schedule set).
	Unserved OutcomeKind = iota
	// Delivered: the packet reached its destination (check OnTime for the
	// deadline).
	Delivered
	// Dropped: the packet was injected and later preempted/dropped.
	Dropped
	// Stuck: the packet was still travelling when the horizon ended.
	Stuck
)

func (k OutcomeKind) String() string {
	switch k {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Stuck:
		return "stuck"
	default:
		return "unserved"
	}
}

// Outcome is the per-request result.
type Outcome struct {
	Kind        OutcomeKind
	DeliveredAt int64
	OnTime      bool
}

// Result aggregates a simulation run.
type Result struct {
	Name      string
	Outcomes  []Outcome
	Violation []string
	// MaxBuffer is the peak buffer occupancy observed at any node.
	MaxBuffer int
	// MaxLink is the peak per-edge link usage observed in any step.
	MaxLink int
}

// Throughput returns the number of requests delivered on time — the paper's
// objective |alg(σ)|.
func (r *Result) Throughput() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Kind == Delivered && o.OnTime {
			n++
		}
	}
	return n
}

// DeliveredCount returns deliveries ignoring deadlines.
func (r *Result) DeliveredCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Kind == Delivered {
			n++
		}
	}
	return n
}

// CountKind returns the number of outcomes of kind k.
func (r *Result) CountKind(k OutcomeKind) int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Kind == k {
			n++
		}
	}
	return n
}

// Replayer holds the reusable dense state of schedule replay. Link and
// buffer occupancy live in epoch-stamped flat arrays over the compact
// (node, axis, t) / (node, t) id space of the replayed time window, so a
// warm Replayer verifies a schedule set with no hashing and no allocation.
// A Replayer is not safe for concurrent use; ReplaySchedules draws one from
// a pool per call.
type Replayer struct {
	links dense.Counts
	bufs  dense.Counts
	pos   grid.Vec
}

var replayerPool = sync.Pool{New: func() any { return new(Replayer) }}

// ReplaySchedules executes explicit schedules under the given model,
// verifying every link-capacity and buffer constraint. schedules[i] may be
// nil for requests that were rejected. The returned result flags violations;
// a correct algorithm produces none.
func ReplaySchedules(g *grid.Grid, reqs []grid.Request, schedules []*spacetime.Schedule, model Model) *Result {
	rp := replayerPool.Get().(*Replayer)
	res := rp.Replay(g, reqs, schedules, model)
	replayerPool.Put(rp)
	return res
}

// Replay is ReplaySchedules on a reusable Replayer.
func (rp *Replayer) Replay(g *grid.Grid, reqs []grid.Request, schedules []*spacetime.Schedule, model Model) *Result {
	res := &Result{}
	rp.ReplayInto(g, reqs, schedules, model, res)
	return res
}

// ReplayInto is Replay writing into a caller-provided result, reusing its
// slices; a warm (Replayer, Result) pair replays without allocating.
//
//gridroute:hotpath
func (rp *Replayer) ReplayInto(g *grid.Grid, reqs []grid.Request, schedules []*spacetime.Schedule, model Model, res *Result) {
	if cap(res.Outcomes) < len(reqs) {
		res.Outcomes = make([]Outcome, len(reqs))
	}
	res.Outcomes = res.Outcomes[:len(reqs)]
	for i := range res.Outcomes {
		res.Outcomes[i] = Outcome{}
	}
	res.Violation = res.Violation[:0]
	res.MaxBuffer, res.MaxLink = 0, 0

	// The occupancy universe spans the replayed time window [minT, maxT].
	minT, maxT := int64(0), int64(-1)
	first := true
	for _, s := range schedules {
		if s == nil {
			continue
		}
		end := s.StartT + int64(len(s.Moves))
		if first {
			minT, maxT = s.StartT, end
			first = false
			continue
		}
		if s.StartT < minT {
			minT = s.StartT
		}
		if end > maxT {
			maxT = end
		}
	}
	width := int(maxT - minT + 1)
	if width < 1 {
		width = 1
	}
	d := g.D()
	rp.links.Reset(g.N() * d * width)
	rp.bufs.Reset(g.N() * width)

	for i := range schedules {
		s := schedules[i]
		if s == nil {
			continue
		}
		if s.Req == nil || !s.Req.Src.Eq(reqs[i].Src) || s.Req.Arrival != reqs[i].Arrival {
			res.Violation = append(res.Violation, fmt.Sprintf("req %d: schedule/request mismatch", i)) //gridlint:allow violation reporting: runs only on malformed input, not per packet
			if model == Model2 {
				// Mismatched schedules still occupy the network; charge
				// their presence so capacity verification stays sound.
				rp.presenceWalk(g, &reqs[i], s, minT, width, res)
			}
			continue
		}
		pos := append(rp.pos[:0], s.Src...)
		rp.pos = pos
		t := s.StartT
		ok := true
		for _, m := range s.Moves {
			// Model 2 charges a buffer slot to every packet present at a
			// node during a cycle (including forwarded ones); Model 1 only
			// to packets held across the cycle boundary. Link accounting is
			// model-independent. Both models fold into this single pass.
			node := g.Index(pos)
			if model == Model2 && !pos.Eq(reqs[i].Dst) {
				rp.bumpBuf(node, t, minT, width, res)
			}
			if m == spacetime.Hold {
				if model == Model1 {
					rp.bumpBuf(node, t, minT, width, res)
				}
			} else {
				li := (node*d+int(m))*width + int(t-minT)
				if n := rp.links.Add(li, 1); n > res.MaxLink {
					res.MaxLink = n
				}
				pos[m]++
				if pos[m] >= g.Dims[m] {
					res.Violation = append(res.Violation, fmt.Sprintf("req %d: leaves grid", i)) //gridlint:allow violation reporting: runs only on malformed schedules, not per packet
					ok = false
					break
				}
			}
			t++
		}
		if !ok {
			res.Outcomes[i] = Outcome{Kind: Dropped}
			continue
		}
		if pos.Eq(reqs[i].Dst) {
			onTime := reqs[i].Deadline == grid.InfDeadline || t <= reqs[i].Deadline
			res.Outcomes[i] = Outcome{Kind: Delivered, DeliveredAt: t, OnTime: onTime}
		} else {
			res.Outcomes[i] = Outcome{Kind: Dropped}
		}
	}

	for _, li := range rp.links.Touched() {
		if n := rp.links.Get(int(li)); n > g.C {
			id := int(li)
			t := minT + int64(id%width)
			id /= width
			res.Violation = append(res.Violation,
				fmt.Sprintf("link capacity exceeded: node %d axis %d t=%d: %d > %d", id/d, id%d, t, n, g.C)) //gridlint:allow violation reporting: runs only on capacity breaches, not per packet
		}
	}
	for _, bi := range rp.bufs.Touched() {
		if n := rp.bufs.Get(int(bi)); n > g.B {
			id := int(bi)
			res.Violation = append(res.Violation,
				fmt.Sprintf("buffer exceeded: node %d t=%d: %d > %d", id/width, minT+int64(id%width), n, g.B)) //gridlint:allow violation reporting: runs only on buffer breaches, not per packet
		}
	}
}

//gridroute:hotpath
func (rp *Replayer) bumpBuf(node int, t, minT int64, width int, res *Result) {
	if n := rp.bufs.Add(node*width+int(t-minT), 1); n > res.MaxBuffer {
		res.MaxBuffer = n
	}
}

// presenceWalk charges Model-2 presence for a schedule that failed the
// request cross-check (cold path).
//
//gridroute:hotpath
func (rp *Replayer) presenceWalk(g *grid.Grid, req *grid.Request, s *spacetime.Schedule, minT int64, width int, res *Result) {
	pos := s.Src.Clone()
	t := s.StartT
	for _, m := range s.Moves {
		if !pos.Eq(req.Dst) {
			rp.bumpBuf(g.Index(pos), t, minT, width, res)
		}
		if m != spacetime.Hold {
			pos[m]++
			if pos[m] >= g.Dims[m] {
				break
			}
		}
		t++
	}
}

// Incremental verifies schedules one at a time against a persistent
// occupancy state — the replay mode of the streaming engine, which learns of
// accepted packets one admit at a time and cannot batch them first. The
// occupancy universe spans a fixed time window chosen up front (the engine
// knows its horizon), so adding a schedule is a single walk bumping the same
// dense link/buffer counters batch replay uses.
//
// Capacity violations are detected at the moment a counter first exceeds its
// capacity, so the violation strings name the offending count at that
// instant rather than the final count batch replay reports; a correct
// algorithm produces none either way, and tests assert the outcomes and the
// violation *set* agree with ReplaySchedules.
type Incremental struct {
	g     *grid.Grid
	model Model
	minT  int64
	width int

	links dense.Counts
	bufs  dense.Counts
	pos   grid.Vec

	added      int
	maxBuffer  int
	maxLink    int
	violations []string
}

// NewIncremental creates an incremental verifier over the time window
// [minT, maxT] (inclusive). Schedules touching steps outside the window are
// rejected as violations.
func NewIncremental(g *grid.Grid, model Model, minT, maxT int64) *Incremental {
	inc := &Incremental{g: g, model: model}
	inc.Reset(minT, maxT)
	return inc
}

// Reset rewinds the verifier to an empty occupancy state over a new window,
// reusing its buffers (a warm Incremental resets without allocating).
func (inc *Incremental) Reset(minT, maxT int64) {
	if maxT < minT {
		maxT = minT
	}
	inc.minT = minT
	inc.width = int(maxT-minT) + 1
	inc.links.Reset(inc.g.N() * inc.g.D() * inc.width)
	inc.bufs.Reset(inc.g.N() * inc.width)
	inc.added = 0
	inc.maxBuffer, inc.maxLink = 0, 0
	inc.violations = inc.violations[:0]
}

// Add replays one accepted schedule on top of everything added so far and
// returns the packet's outcome. Capacity and buffer constraints are checked
// as the occupancy counters move; violations accumulate on the verifier
// (Violations) tagged with the request ID.
func (inc *Incremental) Add(req *grid.Request, s *spacetime.Schedule) Outcome {
	g := inc.g
	d := g.D()
	if s == nil {
		return Outcome{}
	}
	if s.Req == nil || !s.Req.Src.Eq(req.Src) || s.Req.Arrival != req.Arrival {
		inc.violations = append(inc.violations, fmt.Sprintf("req %d: schedule/request mismatch", req.ID))
		return Outcome{}
	}
	if end := s.StartT + int64(len(s.Moves)); s.StartT < inc.minT || end >= inc.minT+int64(inc.width) {
		inc.violations = append(inc.violations,
			fmt.Sprintf("req %d: schedule [%d,%d] outside replay window [%d,%d]", req.ID, s.StartT, end, inc.minT, inc.minT+int64(inc.width)-1))
		return Outcome{}
	}
	pos := append(inc.pos[:0], s.Src...)
	inc.pos = pos
	t := s.StartT
	for _, m := range s.Moves {
		node := g.Index(pos)
		if inc.model == Model2 && !pos.Eq(req.Dst) {
			inc.bumpBuf(req.ID, node, t)
		}
		if m == spacetime.Hold {
			if inc.model == Model1 {
				inc.bumpBuf(req.ID, node, t)
			}
		} else {
			li := (node*d+int(m))*inc.width + int(t-inc.minT)
			n := inc.links.Add(li, 1)
			if n > inc.maxLink {
				inc.maxLink = n
			}
			if n > g.C {
				inc.violations = append(inc.violations,
					fmt.Sprintf("link capacity exceeded: node %d axis %d t=%d: %d > %d", node, m, t, n, g.C))
			}
			pos[m]++
			if pos[m] >= g.Dims[m] {
				inc.violations = append(inc.violations, fmt.Sprintf("req %d: leaves grid", req.ID))
				return Outcome{Kind: Dropped}
			}
		}
		t++
	}
	inc.added++
	if pos.Eq(req.Dst) {
		onTime := req.Deadline == grid.InfDeadline || t <= req.Deadline
		return Outcome{Kind: Delivered, DeliveredAt: t, OnTime: onTime}
	}
	return Outcome{Kind: Dropped}
}

func (inc *Incremental) bumpBuf(reqID, node int, t int64) {
	n := inc.bufs.Add(node*inc.width+int(t-inc.minT), 1)
	if n > inc.maxBuffer {
		inc.maxBuffer = n
	}
	if n > inc.g.B {
		inc.violations = append(inc.violations,
			fmt.Sprintf("buffer exceeded: node %d t=%d: %d > %d (adding req %d)", node, t, n, inc.g.B, reqID))
	}
}

// Added returns the number of schedules replayed so far.
func (inc *Incremental) Added() int { return inc.added }

// Violations returns every constraint violation recorded so far. The slice
// is owned by the verifier; it grows across Add calls and resets on Reset.
func (inc *Incremental) Violations() []string { return inc.violations }

// MaxBuffer returns the peak buffer occupancy observed so far.
func (inc *Incremental) MaxBuffer() int { return inc.maxBuffer }

// MaxLink returns the peak per-edge link usage observed so far.
func (inc *Incremental) MaxLink() int { return inc.maxLink }

// Packet is a live packet in the policy engine.
type Packet struct {
	Req *grid.Request
	Idx int
	Pos grid.Vec
	// InjectedAt is the time the packet entered the network.
	InjectedAt int64
}

// Policy drives local (distributed) algorithms such as greedy and
// nearest-to-go.
type Policy interface {
	Name() string
	// Priority orders packets at a node; smaller values are served first
	// (forwarded before others, retained in buffers before others).
	Priority(p *Packet, now int64) int64
	// NextAxis picks the outgoing axis for a packet (it must satisfy
	// Pos[axis] < Dst[axis]); it is only called when Pos ≠ Dst.
	NextAxis(g *grid.Grid, p *Packet) int
}

// RunLocal executes a local policy step by step until horizon (inclusive).
// Injection is greedy: every arriving packet enters the fray and competes
// for link and buffer space under the policy's priority; losers are dropped
// (the behaviour whose competitive ratio Table 1 lower-bounds).
func RunLocal(g *grid.Grid, reqs []grid.Request, pol Policy, model Model, horizon int64) *Result {
	res := &Result{Name: pol.Name(), Outcomes: make([]Outcome, len(reqs))}

	// Arrivals grouped by time.
	arrivals := make(map[int64][]int)
	for i := range reqs {
		arrivals[reqs[i].Arrival] = append(arrivals[reqs[i].Arrival], i)
	}

	atNode := make(map[int][]*Packet)
	var moved []*Packet

	for t := int64(0); t <= horizon; t++ {
		// 1. Inject arrivals.
		for _, idx := range arrivals[t] {
			r := &reqs[idx]
			p := &Packet{Req: r, Idx: idx, Pos: r.Src.Clone(), InjectedAt: t}
			nid := g.Index(p.Pos)
			atNode[nid] = append(atNode[nid], p)
		}
		// 2-4. Per-node processing.
		moved = moved[:0]
		for nid, pkts := range atNode {
			if len(pkts) == 0 {
				continue
			}
			// Deliveries first: packets at their destination leave the
			// network and use no resources.
			keep := pkts[:0]
			for _, p := range pkts {
				if p.Pos.Eq(p.Req.Dst) {
					onTime := p.Req.Deadline == grid.InfDeadline || t <= p.Req.Deadline
					res.Outcomes[p.Idx] = Outcome{Kind: Delivered, DeliveredAt: t, OnTime: onTime}
				} else {
					keep = append(keep, p)
				}
			}
			pkts = keep

			sort.SliceStable(pkts, func(a, b int) bool {
				return pol.Priority(pkts[a], t) < pol.Priority(pkts[b], t)
			})

			// Model 2: every packet present needs a buffer slot before any
			// forwarding happens.
			if model == Model2 && len(pkts) > g.B {
				for _, p := range pkts[g.B:] {
					res.Outcomes[p.Idx] = Outcome{Kind: Dropped}
				}
				pkts = pkts[:g.B]
			}
			// Forward up to C per outgoing axis, in priority order.
			used := make([]int, g.D())
			stay := pkts[:0]
			for _, p := range pkts {
				a := pol.NextAxis(g, p)
				if a >= 0 && a < g.D() && p.Pos[a] < p.Req.Dst[a] && used[a] < g.C {
					used[a]++
					p.Pos[a]++
					moved = append(moved, p)
				} else {
					stay = append(stay, p)
				}
			}
			// Buffer retention: best B stay, rest dropped.
			if len(stay) > g.B {
				for _, p := range stay[g.B:] {
					res.Outcomes[p.Idx] = Outcome{Kind: Dropped}
				}
				stay = stay[:g.B]
			}
			if len(stay) > res.MaxBuffer {
				res.MaxBuffer = len(stay)
			}
			if len(stay) == 0 {
				delete(atNode, nid)
			} else {
				buf := make([]*Packet, len(stay))
				copy(buf, stay)
				atNode[nid] = buf
			}
		}
		// 5. Arrivals land at their new nodes for step t+1.
		for _, p := range moved {
			nid := g.Index(p.Pos)
			atNode[nid] = append(atNode[nid], p)
		}
	}

	// Anything still in flight is stuck.
	for _, pkts := range atNode {
		for _, p := range pkts {
			if res.Outcomes[p.Idx].Kind == Unserved {
				res.Outcomes[p.Idx] = Outcome{Kind: Stuck}
			}
		}
	}
	return res
}
