package netsim

import (
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/spacetime"
)

func mkSchedule(r *grid.Request, moves ...spacetime.Move) *spacetime.Schedule {
	return &spacetime.Schedule{Req: r, Src: r.Src.Clone(), StartT: r.Arrival, Moves: moves}
}

func TestReplayDelivers(t *testing.T) {
	g := grid.Line(5, 1, 1)
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline}}
	s := mkSchedule(&reqs[0], 0, 0, 0)
	res := ReplaySchedules(g, reqs, []*spacetime.Schedule{s}, Model1)
	if len(res.Violation) != 0 {
		t.Fatalf("violations: %v", res.Violation)
	}
	if res.Throughput() != 1 {
		t.Fatalf("throughput = %d", res.Throughput())
	}
	if res.Outcomes[0].DeliveredAt != 3 {
		t.Fatalf("delivered at %d", res.Outcomes[0].DeliveredAt)
	}
}

func TestReplayDetectsLinkOverflow(t *testing.T) {
	g := grid.Line(5, 2, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{1}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0}, Dst: grid.Vec{1}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	ss := []*spacetime.Schedule{mkSchedule(&reqs[0], 0), mkSchedule(&reqs[1], 0)}
	res := ReplaySchedules(g, reqs, ss, Model1)
	if len(res.Violation) == 0 {
		t.Fatal("two packets on a c=1 link in the same step must violate")
	}
}

func TestReplayDetectsBufferOverflow(t *testing.T) {
	g := grid.Line(5, 1, 2)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{1}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0}, Dst: grid.Vec{1}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	// Both hold at node 0 during step 0 → 2 > B=1.
	ss := []*spacetime.Schedule{mkSchedule(&reqs[0], spacetime.Hold, 0), mkSchedule(&reqs[1], spacetime.Hold, 0)}
	res := ReplaySchedules(g, reqs, ss, Model1)
	if len(res.Violation) == 0 {
		t.Fatal("buffer overflow undetected")
	}
}

// Appendix F, Remark 1: Model 1 with B=c=1 is strictly stronger than
// Model 2 with B=1. A through-packet and a simultaneous local injection can
// both be served under Model 1 (one cuts through, one stores), but under
// Model 2 both occupy node buffer space in the same cycle.
func TestModelSeparationRemark1(t *testing.T) {
	g := grid.Line(4, 1, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline}, // passes node 1 at t=1
		{ID: 1, Src: grid.Vec{1}, Dst: grid.Vec{2}, Arrival: 1, Deadline: grid.InfDeadline}, // injected at node 1 at t=1
	}
	ss := []*spacetime.Schedule{
		mkSchedule(&reqs[0], 0, 0),              // 0→1 during step 0, 1→2 during step 1 (cut-through at node 1)
		mkSchedule(&reqs[1], spacetime.Hold, 0), // stored at node 1 during step 1, forwarded step 2
	}
	res1 := ReplaySchedules(g, reqs, ss, Model1)
	if len(res1.Violation) != 0 {
		t.Fatalf("Model 1 should accept this schedule: %v", res1.Violation)
	}
	if res1.Throughput() != 2 {
		t.Fatalf("Model 1 throughput = %d, want 2", res1.Throughput())
	}
	res2 := ReplaySchedules(g, reqs, ss, Model2)
	if len(res2.Violation) == 0 {
		t.Fatal("Model 2 must reject: both packets are present at node 1 in cycle 1")
	}
}

func TestReplayDeadline(t *testing.T) {
	g := grid.Line(5, 2, 1)
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: 2}}
	late := mkSchedule(&reqs[0], spacetime.Hold, 0, 0) // arrives t=3
	res := ReplaySchedules(g, reqs, []*spacetime.Schedule{late}, Model1)
	if res.Throughput() != 0 || res.DeliveredCount() != 1 {
		t.Fatalf("late delivery should not count: tp=%d dc=%d", res.Throughput(), res.DeliveredCount())
	}
}

func TestReplayNilSchedules(t *testing.T) {
	g := grid.Line(5, 1, 1)
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline}}
	res := ReplaySchedules(g, reqs, []*spacetime.Schedule{nil}, Model1)
	if res.Outcomes[0].Kind != Unserved {
		t.Fatal("nil schedule should be unserved")
	}
}

type fifoPolicy struct{}

func (fifoPolicy) Name() string                        { return "fifo" }
func (fifoPolicy) Priority(p *Packet, now int64) int64 { return p.InjectedAt }
func (fifoPolicy) NextAxis(g *grid.Grid, p *Packet) int {
	for a := 0; a < g.D(); a++ {
		if p.Pos[a] < p.Req.Dst[a] {
			return a
		}
	}
	return -1
}

func TestRunLocalSimpleDelivery(t *testing.T) {
	g := grid.Line(6, 2, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{5}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{2}, Dst: grid.Vec{4}, Arrival: 1, Deadline: grid.InfDeadline},
	}
	res := RunLocal(g, reqs, fifoPolicy{}, Model1, 20)
	if res.Throughput() != 2 {
		t.Fatalf("throughput = %d, want 2", res.Throughput())
	}
	if res.Outcomes[0].DeliveredAt != 5 {
		t.Fatalf("packet 0 delivered at %d, want 5", res.Outcomes[0].DeliveredAt)
	}
}

func TestRunLocalLinkContention(t *testing.T) {
	g := grid.Line(4, 2, 1)
	// Two packets at the same node at the same time, c=1: one forwards, one
	// buffers, both eventually delivered.
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	res := RunLocal(g, reqs, fifoPolicy{}, Model1, 20)
	if res.Throughput() != 2 {
		t.Fatalf("throughput = %d, want 2", res.Throughput())
	}
	if res.MaxBuffer != 1 {
		t.Fatalf("max buffer = %d, want 1", res.MaxBuffer)
	}
}

func TestRunLocalBufferDrops(t *testing.T) {
	g := grid.Line(4, 1, 1)
	// Three simultaneous packets, c=1, B=1: one forwards, one buffers, one
	// dropped.
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 2, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	res := RunLocal(g, reqs, fifoPolicy{}, Model1, 20)
	if res.Throughput() != 2 {
		t.Fatalf("throughput = %d, want 2", res.Throughput())
	}
	if res.CountKind(Dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", res.CountKind(Dropped))
	}
}

func TestRunLocalModel2StricterThanModel1(t *testing.T) {
	g := grid.Line(4, 1, 1)
	// Remark 1 again, now through the policy engine: a stream packet passes
	// node 1 exactly when a local packet is injected there.
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{1}, Dst: grid.Vec{3}, Arrival: 1, Deadline: grid.InfDeadline},
	}
	res1 := RunLocal(g, reqs, fifoPolicy{}, Model1, 20)
	res2 := RunLocal(g, reqs, fifoPolicy{}, Model2, 20)
	if res1.Throughput() != 2 {
		t.Fatalf("Model 1 throughput = %d, want 2", res1.Throughput())
	}
	if res2.Throughput() != 1 || res2.CountKind(Dropped) != 1 {
		t.Fatalf("Model 2 should drop one: tp=%d dropped=%d", res2.Throughput(), res2.CountKind(Dropped))
	}
}

func TestRunLocal2D(t *testing.T) {
	g := grid.New([]int{4, 4}, 1, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0, 0}, Dst: grid.Vec{3, 3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{1, 0}, Dst: grid.Vec{3, 2}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	res := RunLocal(g, reqs, fifoPolicy{}, Model1, 30)
	if res.Throughput() != 2 {
		t.Fatalf("2-d throughput = %d, want 2", res.Throughput())
	}
}

func TestRunLocalStuckAtHorizon(t *testing.T) {
	g := grid.Line(8, 1, 1)
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{7}, Arrival: 0, Deadline: grid.InfDeadline}}
	res := RunLocal(g, reqs, fifoPolicy{}, Model1, 3)
	if res.CountKind(Stuck) != 1 {
		t.Fatalf("packet should be stuck at horizon, got %v", res.Outcomes[0].Kind)
	}
}

func TestSrcEqualsDstInstantDelivery(t *testing.T) {
	g := grid.Line(4, 1, 1)
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{2}, Dst: grid.Vec{2}, Arrival: 5, Deadline: 5}}
	res := RunLocal(g, reqs, fifoPolicy{}, Model1, 10)
	if res.Throughput() != 1 {
		t.Fatal("src==dst should deliver instantly")
	}
}

// TestReplayerWarmReuse replays the same schedule set repeatedly through one
// Replayer/Result pair and checks results stay identical — the epoch-stamped
// occupancy state must fully reset between runs.
func TestReplayerWarmReuse(t *testing.T) {
	g := grid.Line(6, 1, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{4}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{1}, Dst: grid.Vec{3}, Arrival: 1, Deadline: grid.InfDeadline},
	}
	ss := []*spacetime.Schedule{
		{Req: &reqs[0], Src: grid.Vec{0}, StartT: 0, Moves: []spacetime.Move{0, 0, spacetime.Hold, 0, 0}},
		{Req: &reqs[1], Src: grid.Vec{1}, StartT: 1, Moves: []spacetime.Move{0, spacetime.Hold, 0}},
	}
	var rp Replayer
	var res Result
	for _, model := range []Model{Model1, Model2} {
		want := ReplaySchedules(g, reqs, ss, model)
		for i := 0; i < 3; i++ {
			rp.ReplayInto(g, reqs, ss, model, &res)
			if res.Throughput() != want.Throughput() || res.MaxBuffer != want.MaxBuffer ||
				res.MaxLink != want.MaxLink || len(res.Violation) != len(want.Violation) {
				t.Fatalf("%v run %d: warm replay diverged: %+v vs %+v", model, i, res, *want)
			}
		}
	}
}

// TestModel2PresenceCounting pins the folded Model-2 accounting to a
// hand-computed instance: two packets meeting at one node in the same cycle
// must both occupy buffer slots, even though one is forwarded.
func TestModel2PresenceCounting(t *testing.T) {
	g := grid.Line(4, 2, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{1}, Dst: grid.Vec{2}, Arrival: 1, Deadline: grid.InfDeadline},
	}
	// Packet 0 reaches node 1 at t=1, where packet 1 is injected at t=1 and
	// holds; both are present at node 1 during cycle 1.
	ss := []*spacetime.Schedule{
		{Req: &reqs[0], Src: grid.Vec{0}, StartT: 0, Moves: []spacetime.Move{0, 0, 0}},
		{Req: &reqs[1], Src: grid.Vec{1}, StartT: 1, Moves: []spacetime.Move{spacetime.Hold, 0}},
	}
	m1 := ReplaySchedules(g, reqs, ss, Model1)
	if m1.MaxBuffer != 1 {
		t.Fatalf("Model 1 MaxBuffer = %d, want 1 (only the held packet)", m1.MaxBuffer)
	}
	m2 := ReplaySchedules(g, reqs, ss, Model2)
	if m2.MaxBuffer != 2 {
		t.Fatalf("Model 2 MaxBuffer = %d, want 2 (presence of both packets)", m2.MaxBuffer)
	}
	if len(m1.Violation) != 0 || len(m2.Violation) != 0 {
		t.Fatalf("unexpected violations: %v / %v", m1.Violation, m2.Violation)
	}
	if m1.Throughput() != 2 || m2.Throughput() != 2 {
		t.Fatalf("throughput: %d / %d, want 2 / 2", m1.Throughput(), m2.Throughput())
	}
}
