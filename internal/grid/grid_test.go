package grid

import (
	"testing"
	"testing/quick"
)

func TestLineBasics(t *testing.T) {
	g := Line(8, 2, 1)
	if g.D() != 1 || g.N() != 8 || g.Diameter() != 7 {
		t.Fatalf("line basics wrong: d=%d n=%d diam=%d", g.D(), g.N(), g.Diameter())
	}
	if g.NumEdges() != 7 {
		t.Fatalf("edges = %d, want 7", g.NumEdges())
	}
}

func TestGrid2D(t *testing.T) {
	g := New([]int{4, 4}, 3, 3)
	if g.N() != 16 || g.Diameter() != 6 {
		t.Fatalf("grid basics wrong")
	}
	// Fig. 1: a 4×4 grid has 2·4·3 = 24 edges.
	if g.NumEdges() != 24 {
		t.Fatalf("edges = %d, want 24", g.NumEdges())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := New([]int{3, 5, 2}, 1, 1)
	buf := make(Vec, 3)
	for id := 0; id < g.N(); id++ {
		g.Node(id, buf)
		if got := g.Index(buf); got != id {
			t.Fatalf("round trip %v: %d != %d", buf, got, id)
		}
	}
}

func TestDist(t *testing.T) {
	g := New([]int{4, 4}, 1, 1)
	if d := g.Dist(Vec{0, 1}, Vec{3, 2}); d != 4 {
		t.Fatalf("dist = %d, want 4", d)
	}
	if d := g.Dist(Vec{2, 2}, Vec{1, 3}); d != -1 {
		t.Fatalf("unreachable dist = %d, want -1", d)
	}
}

func TestRequestFeasible(t *testing.T) {
	g := Line(10, 1, 1)
	r := Request{Src: Vec{2}, Dst: Vec{7}, Arrival: 3, Deadline: InfDeadline}
	if !r.Feasible(g) {
		t.Fatal("should be feasible")
	}
	r.Deadline = 7 // needs 5 steps from t=3 → earliest 8.
	if r.Feasible(g) {
		t.Fatal("deadline too tight, should be infeasible")
	}
	r.Deadline = 8
	if !r.Feasible(g) {
		t.Fatal("deadline exactly tight should be feasible")
	}
	r2 := Request{Src: Vec{7}, Dst: Vec{2}, Arrival: 0, Deadline: InfDeadline}
	if r2.Feasible(g) {
		t.Fatal("backwards request infeasible on uni-directional line")
	}
}

func TestValidateAll(t *testing.T) {
	g := Line(5, 1, 1)
	reqs := []Request{
		{Src: Vec{0}, Dst: Vec{4}, Arrival: 0, Deadline: InfDeadline},
		{Src: Vec{1}, Dst: Vec{2}, Arrival: 5, Deadline: InfDeadline},
	}
	if i := ValidateAll(g, reqs); i != -1 {
		t.Fatalf("valid set flagged at %d", i)
	}
	reqs[1].Arrival = -1
	if i := ValidateAll(g, reqs); i != 1 {
		t.Fatalf("out-of-order arrival not flagged (got %d)", i)
	}
}

func TestVecHelpers(t *testing.T) {
	v := Vec{1, 2, 3}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("clone aliases")
	}
	if v.Sum() != 6 {
		t.Fatal("sum wrong")
	}
	if !v.LE(Vec{1, 2, 3}) || v.LE(Vec{0, 9, 9}) {
		t.Fatal("LE wrong")
	}
	if !v.Eq(Vec{1, 2, 3}) || v.Eq(Vec{1, 2, 4}) {
		t.Fatal("Eq wrong")
	}
	if v.String() != "(1,2,3)" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestIndexQuick(t *testing.T) {
	g := New([]int{7, 3, 4}, 1, 2)
	f := func(a, b, c uint8) bool {
		v := Vec{int(a) % 7, int(b) % 3, int(c) % 4}
		id := g.Index(v)
		w := g.Node(id, nil)
		return w.Eq(v) && id >= 0 && id < g.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxArrival(t *testing.T) {
	reqs := []Request{{Arrival: 3}, {Arrival: 9}, {Arrival: 1}}
	if MaxArrival(reqs) != 9 {
		t.Fatal("MaxArrival wrong")
	}
	if MaxArrival(nil) != 0 {
		t.Fatal("empty MaxArrival should be 0")
	}
}
