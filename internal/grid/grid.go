// Package grid models uni-directional d-dimensional grid networks and packet
// requests in the competitive network throughput model of Aiello, Kushilevitz,
// Ostrovsky and Rosén [AKOR03], as used by Even and Medina (SPAA 2011).
//
// A grid has vertex set [ℓ1]×…×[ℓd] (0-based here) and directed edges that
// advance exactly one coordinate by +1. Every edge has capacity c (packets
// per time step) and every node a buffer of size B (packets stored between
// steps). A packet request r = (a, b, t, d) asks to ship one packet from a to
// b, arriving at time t, credited only if delivered at some time ≤ d.
package grid

import (
	"fmt"
	"math"
	"strings"
)

// InfDeadline marks a request without a deadline.
const InfDeadline = math.MaxInt64

// Vec is a point in a d-dimensional grid. Coordinates are 0-based.
type Vec []int

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Sum returns the coordinate sum Σ v_i.
func (v Vec) Sum() int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// LE reports whether v ≤ w coordinate-wise.
func (v Vec) LE(w Vec) bool {
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// Eq reports whether v == w.
func (v Vec) Eq(w Vec) bool {
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Grid is a uni-directional d-dimensional grid network with uniform link
// capacity C and uniform buffer size B (Sec. 2.2 of the paper).
type Grid struct {
	// Dims holds the side lengths ℓ1..ℓd. All must be ≥ 1.
	Dims []int
	// B is the buffer size of every node (0 means bufferless).
	B int
	// C is the capacity of every link (packets per step), ≥ 1.
	C int

	stride []int
	n      int
}

// New constructs a grid. It panics on invalid parameters; grids are
// configuration, so failing loudly at construction is deliberate.
func New(dims []int, b, c int) *Grid {
	if len(dims) == 0 {
		panic("grid: need at least one dimension")
	}
	if b < 0 {
		panic("grid: negative buffer size")
	}
	if c < 1 {
		panic("grid: link capacity must be ≥ 1")
	}
	g := &Grid{Dims: append([]int(nil), dims...), B: b, C: c}
	g.stride = make([]int, len(dims))
	g.n = 1
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] < 1 {
			panic("grid: dimension must be ≥ 1")
		}
		g.stride[i] = g.n
		g.n *= dims[i]
	}
	return g
}

// Line returns a 1-dimensional grid (a uni-directional line) with n nodes.
func Line(n, b, c int) *Grid { return New([]int{n}, b, c) }

// D returns the dimensionality d.
func (g *Grid) D() int { return len(g.Dims) }

// N returns the number of nodes n = Π ℓi.
func (g *Grid) N() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Grid) NumEdges() int {
	total := 0
	for _, l := range g.Dims {
		if l > 1 {
			total += (g.n / l) * (l - 1)
		}
	}
	return total
}

// Diameter returns the diameter Σ (ℓi − 1): the longest shortest path.
func (g *Grid) Diameter() int {
	d := 0
	for _, l := range g.Dims {
		d += l - 1
	}
	return d
}

// Contains reports whether v is a node of the grid.
func (g *Grid) Contains(v Vec) bool {
	if len(v) != len(g.Dims) {
		return false
	}
	for i, x := range v {
		if x < 0 || x >= g.Dims[i] {
			return false
		}
	}
	return true
}

// Index maps a node to a dense id in [0, N).
func (g *Grid) Index(v Vec) int {
	id := 0
	for i, x := range v {
		if x < 0 || x >= g.Dims[i] {
			panic(fmt.Sprintf("grid: %v out of bounds %v", v, g.Dims))
		}
		id += x * g.stride[i]
	}
	return id
}

// Node maps a dense id back to a node, writing into out if non-nil.
func (g *Grid) Node(id int, out Vec) Vec {
	if out == nil {
		out = make(Vec, len(g.Dims))
	}
	for i := range g.Dims {
		out[i] = id / g.stride[i]
		id %= g.stride[i]
	}
	return out
}

// Dist returns the (unique-length) directed distance Σ (b_i − a_i), or -1 if
// b is not reachable from a (i.e. not coordinate-wise ≥).
func (g *Grid) Dist(a, b Vec) int {
	d := 0
	for i := range a {
		if b[i] < a[i] {
			return -1
		}
		d += b[i] - a[i]
	}
	return d
}

// Request is a packet request r_i = (a_i, b_i, t_i, d_i) (Sec. 2.1).
type Request struct {
	ID      int
	Src     Vec
	Dst     Vec
	Arrival int64
	// Deadline is the last time step at which delivery still counts.
	// InfDeadline means no deadline.
	Deadline int64
}

// HasDeadline reports whether the request carries a finite deadline.
func (r *Request) HasDeadline() bool { return r.Deadline != InfDeadline }

// Feasible reports whether the request can possibly be served on g: source
// and destination are nodes, dst is reachable, and the deadline leaves enough
// time for the shortest route (d_i ≥ t_i + dist(a_i, b_i)).
func (r *Request) Feasible(g *Grid) bool {
	if !g.Contains(r.Src) || !g.Contains(r.Dst) {
		return false
	}
	d := g.Dist(r.Src, r.Dst)
	if d < 0 {
		return false
	}
	if r.Deadline != InfDeadline && r.Deadline < r.Arrival+int64(d) {
		return false
	}
	return true
}

func (r *Request) String() string {
	if r.Deadline == InfDeadline {
		return fmt.Sprintf("r%d %v->%v @%d", r.ID, r.Src, r.Dst, r.Arrival)
	}
	return fmt.Sprintf("r%d %v->%v @%d dl%d", r.ID, r.Src, r.Dst, r.Arrival, r.Deadline)
}

// ValidateAll checks that every request in reqs is feasible on g and that
// arrivals are non-decreasing (the online order). It returns the first
// offending request index, or -1 if all are valid.
func ValidateAll(g *Grid, reqs []Request) int {
	var last int64 = math.MinInt64
	for i := range reqs {
		if !reqs[i].Feasible(g) {
			return i
		}
		if reqs[i].Arrival < last {
			return i
		}
		last = reqs[i].Arrival
	}
	return -1
}

// MaxArrival returns the largest arrival time among reqs (0 if empty).
func MaxArrival(reqs []Request) int64 {
	var m int64
	for i := range reqs {
		if reqs[i].Arrival > m {
			m = reqs[i].Arrival
		}
	}
	return m
}
