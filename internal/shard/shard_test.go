package shard

import (
	"reflect"
	"testing"

	"gridroute/internal/experiments"
	"gridroute/internal/scenario"
)

// The real registry: every experiment is one unit except the splittable
// catalog, which contributes one unit per scenario.
func TestUnitsEnumeratesRealRegistry(t *testing.T) {
	exps := experiments.Registered()
	units := Units(exps)
	splittable := 0
	whole := 0
	for _, e := range exps {
		if e.Subcases != nil {
			splittable += len(e.Subcases())
		} else {
			whole++
		}
	}
	if want := whole + splittable; len(units) != want {
		t.Fatalf("%d units, want %d (%d whole + %d sub-cases)", len(units), want, whole, splittable)
	}
	if splittable < len(scenario.Registered()) {
		t.Fatalf("expected the scenario catalog (%d scenarios) to be splittable, got %d sub-case units",
			len(scenario.Registered()), splittable)
	}
	// Canonical order: units of one experiment are contiguous and sub-cases
	// follow their declaration order.
	seen := map[string]bool{}
	last := ""
	for _, u := range units {
		if u.Exp != last && seen[u.Exp] {
			t.Fatalf("units of %s are not contiguous", u.Exp)
		}
		seen[u.Exp] = true
		last = u.Exp
	}
}

// Partition soundness: for any m, every unit lands on exactly one shard,
// and the per-shard unit lists are in canonical order.
func TestPlanPartitionSoundness(t *testing.T) {
	exps := experiments.Registered()
	all := Units(exps)
	for m := 1; m <= 6; m++ {
		plan, err := NewPlan(exps, m)
		if err != nil {
			t.Fatal(err)
		}
		count := map[Unit]int{}
		total := 0
		for i, assigned := range plan.Assign {
			prev := -1
			for _, u := range assigned {
				count[u]++
				total++
				// Canonical order within the shard.
				pos := indexOf(all, u)
				if pos < prev {
					t.Fatalf("m=%d shard %d units out of canonical order", m, i)
				}
				prev = pos
			}
		}
		if total != len(all) {
			t.Fatalf("m=%d: %d assigned units, want %d", m, total, len(all))
		}
		for _, u := range all {
			if count[u] != 1 {
				t.Fatalf("m=%d: unit %s assigned %d times", m, u, count[u])
			}
		}
	}
}

func indexOf(units []Unit, u Unit) int {
	for i := range units {
		if units[i] == u {
			return i
		}
	}
	return -1
}

// The fingerprint depends on the unit universe, not on m, and changes when
// the universe changes.
func TestPlanFingerprint(t *testing.T) {
	exps := experiments.Registered()
	p2, err := NewPlan(exps, 2)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := NewPlan(exps, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Fingerprint() != p5.Fingerprint() {
		t.Fatal("fingerprint must not depend on m")
	}
	sub, err := NewPlan(exps[:3], 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Fingerprint() == p2.Fingerprint() {
		t.Fatal("different selections must fingerprint differently")
	}
}

// Jobs regroups a shard's units into runner jobs: whole experiments plain,
// sub-case units collapsed into one job with SubSelect in canonical order,
// experiment order preserved.
func TestPlanJobs(t *testing.T) {
	exps := experiments.Registered()
	plan, err := NewPlan(exps, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plan.M; i++ {
		jobs, err := plan.Jobs(i)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the unit list from the jobs and compare against the
		// assignment (grouping must lose nothing).
		var rebuilt []Unit
		for _, j := range jobs {
			if j.SubSelect == nil {
				rebuilt = append(rebuilt, Unit{Exp: j.Experiment.ID})
			} else {
				for _, s := range j.SubSelect {
					rebuilt = append(rebuilt, Unit{Exp: j.Experiment.ID, Sub: s})
				}
			}
		}
		sortByCanonical(rebuilt, plan.Units)
		assigned := append([]Unit(nil), plan.Assign[i]...)
		sortByCanonical(assigned, plan.Units)
		if !reflect.DeepEqual(rebuilt, assigned) {
			t.Fatalf("shard %d: jobs cover %v, assignment is %v", i, rebuilt, assigned)
		}
	}
	if _, err := plan.Jobs(3); err == nil {
		t.Fatal("out-of-range shard index must fail")
	}
}

func sortByCanonical(units, canonical []Unit) {
	pos := map[Unit]int{}
	for i, u := range canonical {
		pos[u] = i
	}
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && pos[units[j]] < pos[units[j-1]]; j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(experiments.Registered(), 0); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := NewPlan(nil, 2); err == nil {
		t.Fatal("empty selection must fail")
	}
}

// More shards than units: trailing shards run empty but the plan is still
// sound (and mergeable — every unit is covered once).
func TestPlanMoreShardsThanUnits(t *testing.T) {
	exps := experiments.Registered()[:1]
	units := Units(exps)
	plan, err := NewPlan(exps, len(units)+4)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, a := range plan.Assign {
		if len(a) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != len(units) {
		t.Fatalf("%d non-empty shards, want %d", nonEmpty, len(units))
	}
}
