package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"gridroute/internal/experiments"
	"gridroute/internal/stats"
)

// SchemaVersion identifies the shard artifact format. A merge refuses
// artifacts with any other schema string: partial results from an old
// binary must never be silently reinterpreted.
const SchemaVersion = "gridroute-shard-artifact/v1"

// Error kinds carried by PartResult, classifying the error that ended a
// unit so the merge can reconstruct its semantics (errors.Is behaviour)
// from JSON.
const (
	// ErrKindSkipped marks errors wrapping experiments.ErrSkipped —
	// deterministic partial results whose skip items merge across shards.
	ErrKindSkipped = "skipped"
	// ErrKindCancelled marks context.Canceled: the shard was interrupted
	// before this unit ran, so the merged sweep is partial.
	ErrKindCancelled = "cancelled"
	// ErrKindFailed marks every other error (including per-experiment
	// timeouts), rendered as a failed section exactly like an unsharded run.
	ErrKindFailed = "failed"
)

// Partition is the plan stamp every artifact carries: a merge succeeds only
// when all artifacts agree on it and it matches the plan recomputed from
// the merging binary's own registry.
type Partition struct {
	Algo        string `json:"algo"`
	M           int    `json:"m"`
	TotalUnits  int    `json:"total_units"`
	Fingerprint string `json:"fingerprint"`
}

// PartResult is one executed job of a shard: a whole experiment, or the
// part of a splittable experiment this shard was assigned (Subs non-nil).
// Notes are the shard-independent notes (byte-identical across the parts
// of one experiment); Skips are this part's sorted skip items, merged and
// re-sorted across parts at merge time.
type PartResult struct {
	Exp       string         `json:"exp"`
	Subs      []string       `json:"subs,omitempty"`
	Tables    []*stats.Table `json:"tables"`
	Notes     []string       `json:"notes,omitempty"`
	Skips     []string       `json:"skips,omitempty"`
	Attempts  int            `json:"attempts,omitempty"`
	Error     string         `json:"error,omitempty"`
	ErrorKind string         `json:"error_kind,omitempty"`
}

// Artifact is the JSON document `cmd/experiments -shard i/m` emits: shard
// metadata plus the results of exactly this shard's units. Partial marks a
// shard interrupted by SIGINT — its unfinished units are still present,
// carrying ErrKindCancelled, so the merge's accounting stays complete.
type Artifact struct {
	Schema    string       `json:"schema"`
	Mode      string       `json:"mode"` // "full" or "quick"
	Run       string       `json:"run,omitempty"`
	Partition Partition    `json:"partition"`
	Shard     int          `json:"shard"`
	Partial   bool         `json:"partial,omitempty"`
	Units     []Unit       `json:"units"`
	Results   []PartResult `json:"results"`
}

// BuildArtifact assembles the artifact for shard idx of the plan from the
// runner results of plan.Jobs(idx), in order.
func BuildArtifact(plan Plan, idx int, quick bool, runPattern string, partial bool, results []experiments.Result) (Artifact, error) {
	jobs, err := plan.Jobs(idx)
	if err != nil {
		return Artifact{}, err
	}
	if len(results) != len(jobs) {
		return Artifact{}, fmt.Errorf("shard: %d results for %d jobs", len(results), len(jobs))
	}
	mode := "full"
	if quick {
		mode = "quick"
	}
	a := Artifact{
		Schema: SchemaVersion,
		Mode:   mode,
		Run:    runPattern,
		Partition: Partition{
			Algo:        PlanAlgo,
			M:           plan.M,
			TotalUnits:  len(plan.Units),
			Fingerprint: plan.Fingerprint(),
		},
		Shard:   idx,
		Partial: partial,
		Units:   plan.Assign[idx],
	}
	for k, res := range results {
		if res.Experiment.ID != jobs[k].Experiment.ID {
			return Artifact{}, fmt.Errorf("shard: result %d is %s, want %s", k, res.Experiment.ID, jobs[k].Experiment.ID)
		}
		p := PartResult{
			Exp:      res.Experiment.ID,
			Subs:     jobs[k].SubSelect,
			Tables:   res.Report.Tables,
			Notes:    res.Report.Notes,
			Skips:    res.Report.Skips,
			Attempts: res.Attempts,
		}
		if res.Err != nil {
			p.Error = res.Err.Error()
			p.ErrorKind = errKind(res.Err)
		}
		a.Results = append(a.Results, p)
	}
	return a, nil
}

func errKind(err error) string {
	switch {
	case errors.Is(err, experiments.ErrSkipped):
		return ErrKindSkipped
	case errors.Is(err, context.Canceled):
		return ErrKindCancelled
	default:
		return ErrKindFailed
	}
}

// carriedError restores the merge-relevant identity of an error that
// crossed a process boundary through an artifact: the original text plus
// errors.Is answers for the two sentinel kinds.
type carriedError struct {
	msg  string
	kind string
}

func (e *carriedError) Error() string { return e.msg }

func (e *carriedError) Is(target error) bool {
	switch e.kind {
	case ErrKindSkipped:
		return target == experiments.ErrSkipped
	case ErrKindCancelled:
		return target == context.Canceled
	}
	return false
}

// restoreError rebuilds the Result error of a part; nil when the part
// succeeded.
func (p PartResult) restoreError() error {
	if p.Error == "" && p.ErrorKind == "" {
		return nil
	}
	return &carriedError{msg: p.Error, kind: p.ErrorKind}
}

// WriteArtifact writes the artifact as indented JSON.
func WriteArtifact(w io.Writer, a Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadArtifact parses one artifact and validates its schema stamp.
func ReadArtifact(r io.Reader, name string) (Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return Artifact{}, fmt.Errorf("shard: %s: not a shard artifact: %w", name, err)
	}
	if a.Schema != SchemaVersion {
		return Artifact{}, fmt.Errorf("shard: %s: schema %q, want %q", name, a.Schema, SchemaVersion)
	}
	if a.Partition.M < 1 || a.Shard < 0 || a.Shard >= a.Partition.M {
		return Artifact{}, fmt.Errorf("shard: %s: shard %d of %d out of range", name, a.Shard, a.Partition.M)
	}
	return a, nil
}
