package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gridroute/internal/experiments"
	"gridroute/internal/stats"
)

// Synthetic registry entries for merge tests: two whole experiments and a
// splittable one that skips a sub-case, covering the row, note, skip and
// error paths of the merge. Registered once per test binary.
var registerZ = sync.Once{}

const zPattern = "^Z[0-9]$"

func zSubs() []string { return []string{"alpha", "beta", "gamma", "delta", "epsilon"} }

func registerZExps() {
	registerZ.Do(func() {
		experiments.Register(experiments.Experiment{
			ID: "Z1", Title: "whole experiment", Tags: []string{"ztest"},
			Run: func(ctx context.Context, cfg experiments.Config) (experiments.Report, error) {
				t := stats.NewTable("Z1 table", "n", "value")
				t.AddRow(1, experiments.SeedFor(cfg.ID)%97)
				return experiments.Report{Tables: []*stats.Table{t}, Notes: []string{"z1 note"}}, nil
			},
		})
		experiments.Register(experiments.Experiment{
			ID: "Z2", Title: "splittable experiment", Tags: []string{"ztest"},
			Subcases: zSubs,
			Run: func(ctx context.Context, cfg experiments.Config) (experiments.Report, error) {
				t := stats.NewTable("Z2 table", "sub", "value")
				var skips experiments.SkipList
				for _, s := range zSubs() {
					if !cfg.SubSelected(s) {
						continue
					}
					if s == "delta" {
						skips.Skip("%s: unavailable", s)
						continue
					}
					t.AddRow(s, experiments.SeedFor(cfg.ID, s)%97)
				}
				rep := experiments.Report{Tables: []*stats.Table{t}, Notes: []string{"z2 shared note"}}
				skips.Apply(&rep)
				return rep, skips.Err()
			},
		})
		experiments.Register(experiments.Experiment{
			ID: "Z3", Title: "another whole experiment", Tags: []string{"ztest"},
			Run: func(ctx context.Context, cfg experiments.Config) (experiments.Report, error) {
				t := stats.NewTable("Z3 table", "n", "value")
				t.AddRow(3, experiments.SeedFor(cfg.ID)%89)
				return experiments.Report{Tables: []*stats.Table{t}}, nil
			},
		})
	})
}

func zExps(t *testing.T) []experiments.Experiment {
	t.Helper()
	registerZExps()
	exps, err := experiments.Select(zPattern)
	if err != nil || len(exps) != 3 {
		t.Fatalf("Select(%q) = %d experiments, err %v; want 3", zPattern, len(exps), err)
	}
	return exps
}

func runJobs(t *testing.T, jobs []experiments.Job) []experiments.Result {
	t.Helper()
	var results []experiments.Result
	for res := range (experiments.Runner{Workers: 2}).StreamJobs(context.Background(), jobs) {
		results = append(results, res)
	}
	return results
}

// renderAll is the cmd/experiments section rendering in miniature: the
// byte-comparison surface for merged vs unsharded results.
func renderAll(t *testing.T, results []experiments.Result) (md string, jsonBytes []byte) {
	t.Helper()
	var b strings.Builder
	for _, res := range results {
		if res.Err == nil || errors.Is(res.Err, experiments.ErrSkipped) {
			b.WriteString(res.Report.Markdown())
		} else {
			fmt.Fprintf(&b, "FAILED %s after %d: %v\n", res.Experiment.ID, res.Attempts, res.Err)
		}
	}
	var jb bytes.Buffer
	if err := experiments.WriteJSONOpts(&jb, experiments.JSONOptions{Stable: true}, results); err != nil {
		t.Fatal(err)
	}
	return b.String(), jb.Bytes()
}

func shardArtifacts(t *testing.T, exps []experiments.Experiment, m int) []Artifact {
	t.Helper()
	plan, err := NewPlan(exps, m)
	if err != nil {
		t.Fatal(err)
	}
	arts := make([]Artifact, m)
	for i := 0; i < m; i++ {
		jobs, err := plan.Jobs(i)
		if err != nil {
			t.Fatal(err)
		}
		a, err := BuildArtifact(plan, i, false, zPattern, false, runJobs(t, jobs))
		if err != nil {
			t.Fatal(err)
		}
		arts[i] = a
	}
	return arts
}

// The core guarantee: for m ∈ {1, 2, 3} and artifacts supplied in any
// order, the merged results render byte-identically to an unsharded run —
// rows back in canonical order, skip notes and ErrSkipped error text
// reassembled, JSON stable.
func TestMergeByteIdenticalToUnsharded(t *testing.T) {
	exps := zExps(t)
	unshardedJobs := make([]experiments.Job, len(exps))
	for i, e := range exps {
		unshardedJobs[i] = experiments.Job{Experiment: e}
	}
	wantMD, wantJSON := renderAll(t, runJobs(t, unshardedJobs))
	if !strings.Contains(wantMD, "⚠ skipped sub-cases: delta: unavailable.") {
		t.Fatalf("unsharded run missing the skip note:\n%s", wantMD)
	}
	for m := 1; m <= 3; m++ {
		arts := shardArtifacts(t, exps, m)
		// Reverse the artifact order: merging must not care.
		rev := make([]Artifact, m)
		for i := range arts {
			rev[m-1-i] = arts[i]
		}
		merged, err := Merge(rev, nil)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if merged.Partial {
			t.Fatalf("m=%d: complete merge marked partial", m)
		}
		gotMD, gotJSON := renderAll(t, merged.Results)
		if gotMD != wantMD {
			t.Fatalf("m=%d markdown differs:\n--- unsharded ---\n%s\n--- merged ---\n%s", m, wantMD, gotMD)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("m=%d stable JSON differs:\n--- unsharded ---\n%s\n--- merged ---\n%s", m, wantJSON, gotJSON)
		}
		// The split experiment's ErrSkipped identity survives the artifact
		// round-trip (cmd/experiments renders by errors.Is, not by string).
		for _, res := range merged.Results {
			if res.Experiment.ID == "Z2" && !errors.Is(res.Err, experiments.ErrSkipped) {
				t.Fatalf("m=%d: Z2 error %v lost its ErrSkipped identity", m, res.Err)
			}
		}
	}
}

// Artifacts survive serialization: write, re-read, merge, same bytes.
func TestMergeAfterArtifactRoundTrip(t *testing.T) {
	exps := zExps(t)
	unshardedJobs := make([]experiments.Job, len(exps))
	for i, e := range exps {
		unshardedJobs[i] = experiments.Job{Experiment: e}
	}
	wantMD, wantJSON := renderAll(t, runJobs(t, unshardedJobs))
	arts := shardArtifacts(t, exps, 2)
	reread := make([]Artifact, len(arts))
	for i, a := range arts {
		var buf bytes.Buffer
		if err := WriteArtifact(&buf, a); err != nil {
			t.Fatal(err)
		}
		r, err := ReadArtifact(&buf, fmt.Sprintf("art-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		reread[i] = r
	}
	merged, err := Merge(reread, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotMD, gotJSON := renderAll(t, merged.Results)
	if gotMD != wantMD || !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("JSON round-tripped artifacts do not merge byte-identically")
	}
}

func TestMergeRejectsBadPartitions(t *testing.T) {
	exps := zExps(t)
	arts := shardArtifacts(t, exps, 3)

	check := func(name string, in []Artifact, wantSub string) {
		t.Helper()
		if _, err := Merge(in, nil); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: err = %v, want substring %q", name, err, wantSub)
		}
	}
	check("incomplete", []Artifact{arts[0], arts[2]}, "incomplete partition")
	check("overlapping", []Artifact{arts[0], arts[0], arts[1], arts[2]}, "overlapping")
	check("empty", nil, "no artifacts")

	tampered := arts[1]
	tampered.Units = append([]Unit(nil), tampered.Units...)
	tampered.Units[0] = Unit{Exp: "Z1"}
	check("tampered units", []Artifact{arts[0], tampered, arts[2]}, "does not match plan")

	fp := arts[1]
	fp.Partition.Fingerprint = "deadbeefdeadbeef"
	check("fingerprint drift", []Artifact{arts[0], fp, arts[2]}, "different plans")

	mode := arts[1]
	mode.Mode = "quick"
	check("mode mismatch", []Artifact{arts[0], mode, arts[2]}, "different sweeps")

	truncated := arts[1]
	truncated.Results = truncated.Results[:len(truncated.Results)-1]
	check("truncated", []Artifact{arts[0], truncated, arts[2]}, "truncated artifact")

	badRun := arts[1]
	badRun.Run = "^NoSuchExperiment$"
	check("selection mismatch", []Artifact{arts[0], badRun, arts[2]}, "different sweeps")

	// Merge is exported: a hand-built artifact (bypassing ReadArtifact)
	// with an out-of-range shard index must fail validation, not panic.
	oob := arts[1]
	oob.Shard = 5
	check("shard out of range", []Artifact{arts[0], oob, arts[2]}, "out of range")
}

// A shard interrupted by SIGINT composes: its cancelled units make the
// merged sweep partial, and a cancelled part of a split experiment leaves
// that experiment cancelled (errors.Is context.Canceled), exactly like an
// unsharded interrupted run.
func TestMergePartialShardComposes(t *testing.T) {
	exps := zExps(t)
	arts := shardArtifacts(t, exps, 2)

	interrupted := arts[1]
	interrupted.Partial = true
	interrupted.Results = append([]PartResult(nil), interrupted.Results...)
	for i := range interrupted.Results {
		if interrupted.Results[i].Subs != nil {
			interrupted.Results[i] = PartResult{
				Exp:       interrupted.Results[i].Exp,
				Subs:      interrupted.Results[i].Subs,
				Error:     context.Canceled.Error(),
				ErrorKind: ErrKindCancelled,
			}
		}
	}
	merged, err := Merge([]Artifact{arts[0], interrupted}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Partial {
		t.Fatal("merge of an interrupted shard must be partial")
	}
	found := false
	for _, res := range merged.Results {
		if res.Experiment.ID == "Z2" {
			found = true
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("Z2 err = %v, want context.Canceled identity", res.Err)
			}
		}
	}
	if !found {
		t.Fatal("merged results lost Z2")
	}
}

// Parts of a split experiment must agree on their shard-independent notes;
// disagreement means sub-case results were not machine-independent and the
// merge must refuse rather than guess.
func TestMergeRejectsDivergentSplitNotes(t *testing.T) {
	exps := zExps(t)
	arts := shardArtifacts(t, exps, 2)
	bad := arts[1]
	bad.Results = append([]PartResult(nil), bad.Results...)
	for i := range bad.Results {
		if bad.Results[i].Subs != nil {
			bad.Results[i].Notes = []string{"a different note"}
		}
	}
	if _, err := Merge([]Artifact{arts[0], bad}, nil); err == nil || !strings.Contains(err.Error(), "disagree on notes") {
		t.Fatalf("err = %v, want notes disagreement", err)
	}
}

// A hard-failed part fails the whole merged experiment, like an unsharded
// run.
func TestMergeFailedPartFailsExperiment(t *testing.T) {
	exps := zExps(t)
	arts := shardArtifacts(t, exps, 2)
	bad := arts[0]
	bad.Results = append([]PartResult(nil), bad.Results...)
	for i := range bad.Results {
		if bad.Results[i].Subs != nil {
			bad.Results[i] = PartResult{
				Exp:       bad.Results[i].Exp,
				Subs:      bad.Results[i].Subs,
				Attempts:  2,
				Error:     "boom",
				ErrorKind: ErrKindFailed,
			}
		}
	}
	merged, err := Merge([]Artifact{bad, arts[1]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range merged.Results {
		if res.Experiment.ID == "Z2" {
			if res.Err == nil || errors.Is(res.Err, experiments.ErrSkipped) || errors.Is(res.Err, context.Canceled) {
				t.Fatalf("Z2 err = %v, want a hard failure", res.Err)
			}
			if res.Attempts != 2 {
				t.Fatalf("Z2 attempts = %d, want the failing part's 2", res.Attempts)
			}
		}
	}
}
