// Package shard partitions a full experiment sweep into machine-independent
// work units so that the sweep can run as m independent shards — on
// separate machines, with no coordination — and be merged back into output
// byte-identical to an unsharded run.
//
// The atomic unit is one (experiment, sub-case) pair: whole experiments for
// ordinary registry entries, and one unit per sub-case for splittable
// experiments (Experiment.Subcases — e.g. E14's scenario catalog). Because
// every unit draws its randomness from SeedFor(id, subkey) alone, a unit
// computes the same bytes on every machine, which is what makes the merge
// deterministic: partitioning only decides *where* a unit runs, never
// *what* it produces.
//
// A Plan is a pure function of (experiment selection, m): round-robin over
// the canonical unit list. Its fingerprint — an FNV-1a hash of the
// partition algorithm and the unit universe — is stamped into every shard
// artifact, so a merge can prove all artifacts came from the same plan
// before reassembling anything.
package shard

import (
	"fmt"
	"hash/fnv"

	"gridroute/internal/experiments"
)

// PlanAlgo names the partition function baked into this package version.
// It participates in the plan fingerprint: changing how units are assigned
// to shards must invalidate artifacts produced under the old assignment.
const PlanAlgo = "round-robin/v1"

// Unit is one atomic work item of a sweep: an experiment, or one sub-case
// of a splittable experiment.
type Unit struct {
	// Exp is the experiment registry ID.
	Exp string `json:"exp"`
	// Sub is the sub-case key within Exp ("" = the whole experiment).
	Sub string `json:"sub,omitempty"`
}

func (u Unit) String() string {
	if u.Sub == "" {
		return u.Exp
	}
	return u.Exp + "/" + u.Sub
}

// Units enumerates the canonical work units of a sweep over the given
// experiments, preserving their order: one unit per experiment, except that
// splittable experiments (Subcases != nil) contribute one unit per sub-case
// in sub-case order.
func Units(exps []experiments.Experiment) []Unit {
	var units []Unit
	for _, e := range exps {
		if e.Subcases == nil {
			units = append(units, Unit{Exp: e.ID})
			continue
		}
		for _, sub := range e.Subcases() {
			units = append(units, Unit{Exp: e.ID, Sub: sub})
		}
	}
	return units
}

// Plan is a deterministic partition of a sweep's units across M shards.
type Plan struct {
	M      int
	Exps   []experiments.Experiment
	Units  []Unit   // the full canonical unit list
	Assign [][]Unit // Assign[i] = shard i's units, in canonical order
}

// NewPlan partitions the sweep over the given experiments round-robin
// across m shards: unit j goes to shard j mod m. Round-robin over the
// canonical unit order spreads both the many-unit experiments (E14's
// scenarios) and the heavyweight whole experiments roughly evenly.
func NewPlan(exps []experiments.Experiment, m int) (Plan, error) {
	if m < 1 {
		return Plan{}, fmt.Errorf("shard: need at least 1 shard, got %d", m)
	}
	if len(exps) == 0 {
		return Plan{}, fmt.Errorf("shard: no experiments to partition")
	}
	p := Plan{M: m, Exps: exps, Units: Units(exps), Assign: make([][]Unit, m)}
	for j, u := range p.Units {
		p.Assign[j%m] = append(p.Assign[j%m], u)
	}
	return p, nil
}

// Fingerprint hashes the partition algorithm and the unit universe (FNV-1a
// 64). Two plans fingerprint equal iff they partition the same units the
// same way, so equal fingerprints plus equal M mean shard artifacts are
// mergeable; a registry or selection drift between builds changes the unit
// list and is caught here.
func (p Plan) Fingerprint() string {
	h := fnv.New64a()
	write := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	write(PlanAlgo)
	for _, u := range p.Units {
		write(u.String())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Jobs converts shard i's unit assignment into runner jobs, preserving the
// canonical experiment order: a whole-experiment unit becomes a plain job,
// and the sub-case units of one splittable experiment collapse into a
// single job carrying their keys as Config.SubSelect.
func (p Plan) Jobs(i int) ([]experiments.Job, error) {
	if i < 0 || i >= p.M {
		return nil, fmt.Errorf("shard: index %d out of range for %d shard(s)", i, p.M)
	}
	subs := make(map[string][]string)
	whole := make(map[string]bool)
	for _, u := range p.Assign[i] {
		if u.Sub == "" {
			whole[u.Exp] = true
		} else {
			subs[u.Exp] = append(subs[u.Exp], u.Sub)
		}
	}
	var jobs []experiments.Job
	for _, e := range p.Exps {
		switch {
		case whole[e.ID]:
			jobs = append(jobs, experiments.Job{Experiment: e})
		case len(subs[e.ID]) > 0:
			jobs = append(jobs, experiments.Job{Experiment: e, SubSelect: subs[e.ID]})
		}
	}
	return jobs, nil
}
