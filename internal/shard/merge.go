package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"

	"gridroute/internal/experiments"
	"gridroute/internal/stats"
)

// MergedSweep is the reassembled sweep: results in canonical order, ready
// for the exact rendering path an unsharded run uses, so markdown and
// stable JSON come out byte-identical.
type MergedSweep struct {
	Quick   bool
	Run     string // the -run selection the shards ran with
	Partial bool   // any shard interrupted, or any unit cancelled
	Results []experiments.Result
}

// Merge validates that the artifacts form a complete, non-overlapping
// partition of one sweep — same schema, mode, selection and plan
// fingerprint; shard indices covering exactly 0..m-1 once each; unit
// assignments matching the plan recomputed from this binary's registry —
// and reassembles the canonical results. Any validation failure returns an
// error naming the offending artifact; nothing is merged on a partial
// match.
func Merge(arts []Artifact, names []string) (*MergedSweep, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("shard: no artifacts to merge")
	}
	if len(names) != len(arts) {
		names = make([]string, len(arts))
		for i := range names {
			names[i] = fmt.Sprintf("artifact %d", i)
		}
	}
	ref := arts[0]
	m := ref.Partition.M
	byShard := make([]*Artifact, m)
	nameOf := make([]string, m)
	for i := range arts {
		a, name := arts[i], names[i]
		if a.Mode != ref.Mode || a.Run != ref.Run {
			return nil, fmt.Errorf("shard: %s is a %q sweep of -run %q, but %s is a %q sweep of -run %q — artifacts are from different sweeps",
				names[0], ref.Mode, ref.Run, name, a.Mode, a.Run)
		}
		if a.Partition != ref.Partition {
			return nil, fmt.Errorf("shard: %s partition %+v does not match %s partition %+v — artifacts are from different plans",
				name, a.Partition, names[0], ref.Partition)
		}
		// ReadArtifact already range-checks, but Merge is exported: a
		// hand-built artifact must fail validation, not panic the indexing.
		if a.Shard < 0 || a.Shard >= m {
			return nil, fmt.Errorf("shard: %s covers shard %d of %d — out of range", name, a.Shard, m)
		}
		if byShard[a.Shard] != nil {
			return nil, fmt.Errorf("shard: overlapping inputs: %s and %s both cover shard %d/%d",
				nameOf[a.Shard], name, a.Shard, m)
		}
		byShard[a.Shard] = &arts[i]
		nameOf[a.Shard] = name
	}
	var missing []string
	for i, a := range byShard {
		if a == nil {
			missing = append(missing, fmt.Sprint(i))
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("shard: incomplete partition: missing shard(s) %s of %d", strings.Join(missing, ", "), m)
	}

	// Recompute the plan from this binary's registry and hold the artifacts
	// to it: a fingerprint or unit-assignment mismatch means the shards ran
	// a different registry (or a tampered artifact) and must not merge.
	exps, err := experiments.Select(ref.Run)
	if err != nil {
		return nil, fmt.Errorf("shard: artifact selection is invalid: %w", err)
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("shard: artifact selection -run %q matches no experiments in this binary", ref.Run)
	}
	plan, err := NewPlan(exps, m)
	if err != nil {
		return nil, err
	}
	if fp := plan.Fingerprint(); fp != ref.Partition.Fingerprint || len(plan.Units) != ref.Partition.TotalUnits {
		return nil, fmt.Errorf("shard: artifacts fingerprint %s (%d units) but this binary plans %s (%d units) — registry drift between shard run and merge",
			ref.Partition.Fingerprint, ref.Partition.TotalUnits, fp, len(plan.Units))
	}
	for i, a := range byShard {
		if !reflect.DeepEqual(a.Units, plan.Assign[i]) {
			return nil, fmt.Errorf("shard: %s unit assignment does not match plan shard %d", nameOf[i], i)
		}
		jobs, jerr := plan.Jobs(i)
		if jerr != nil {
			return nil, jerr
		}
		if len(a.Results) != len(jobs) {
			return nil, fmt.Errorf("shard: %s carries %d results for %d jobs — truncated artifact", nameOf[i], len(a.Results), len(jobs))
		}
		for k, job := range jobs {
			if a.Results[k].Exp != job.Experiment.ID || !reflect.DeepEqual(a.Results[k].Subs, job.SubSelect) {
				return nil, fmt.Errorf("shard: %s result %d covers %s/%v, want %s/%v",
					nameOf[i], k, a.Results[k].Exp, a.Results[k].Subs, job.Experiment.ID, job.SubSelect)
			}
		}
	}

	merged := &MergedSweep{Quick: ref.Mode == "quick", Run: ref.Run}
	for _, a := range byShard {
		merged.Partial = merged.Partial || a.Partial
	}
	for _, e := range exps {
		// Gather this experiment's parts in shard order (deterministic).
		var parts []PartResult
		for _, a := range byShard {
			for k := range a.Results {
				if a.Results[k].Exp == e.ID {
					parts = append(parts, a.Results[k])
				}
			}
		}
		if len(parts) == 0 {
			// Every selected experiment owns at least one unit, so the
			// assignment validation above makes this unreachable.
			return nil, fmt.Errorf("shard: no results for experiment %s", e.ID)
		}
		var res experiments.Result
		if len(parts) == 1 && parts[0].Subs == nil {
			res = wholeResult(e, parts[0])
		} else {
			res, err = mergeSplit(e, parts)
			if err != nil {
				return nil, err
			}
		}
		if errors.Is(res.Err, context.Canceled) {
			merged.Partial = true
		}
		merged.Results = append(merged.Results, res)
	}
	return merged, nil
}

// wholeResult restores the Result of an unsplit experiment verbatim.
func wholeResult(e experiments.Experiment, p PartResult) experiments.Result {
	return experiments.Result{
		Experiment: e,
		Report: experiments.Report{
			ID:     e.ID,
			Title:  e.Title,
			Tables: p.Tables,
			Notes:  p.Notes,
			Skips:  p.Skips,
		},
		Err:      p.restoreError(),
		Attempts: p.Attempts,
	}
}

// mergeSplit reassembles a splittable experiment from the parts its shards
// produced: table rows return to canonical sub-case order (each row's first
// cell is its sub-case key, per the Subcases contract), shard-independent
// notes are cross-checked, and skip items are re-merged through a SkipList
// so the note and error text match an unsharded run byte for byte.
func mergeSplit(e experiments.Experiment, parts []PartResult) (experiments.Result, error) {
	res := experiments.Result{Experiment: e, Report: experiments.Report{ID: e.ID, Title: e.Title}}
	// A cancelled part means the sub-cases it covered never ran: like an
	// unsharded interrupted run, the experiment has no (complete) report.
	for _, p := range parts {
		if p.ErrorKind == ErrKindCancelled {
			res.Err = p.restoreError()
			return res, nil
		}
	}
	// A hard-failed part fails the merged experiment, mirroring the
	// unsharded run where any failing sub-case fails its experiment.
	for _, p := range parts {
		if p.ErrorKind == ErrKindFailed {
			res.Err = p.restoreError()
			res.Attempts = maxAttempts(parts)
			return res, nil
		}
	}
	if e.Subcases == nil {
		return res, fmt.Errorf("shard: experiment %s was split but declares no sub-cases", e.ID)
	}
	var merged *stats.Table
	var skips experiments.SkipList
	rows := make(map[string][]string)
	for i, p := range parts {
		if len(p.Tables) != 1 {
			return res, fmt.Errorf("shard: %s part %d has %d tables, want exactly 1 (Subcases contract)", e.ID, i, len(p.Tables))
		}
		t := p.Tables[0]
		if merged == nil {
			merged = &stats.Table{Title: t.Title, Header: t.Header}
			res.Report.Notes = p.Notes
		} else {
			if t.Title != merged.Title || !reflect.DeepEqual(t.Header, merged.Header) {
				return res, fmt.Errorf("shard: %s parts disagree on table shape (%q vs %q)", e.ID, t.Title, merged.Title)
			}
			if !reflect.DeepEqual(p.Notes, res.Report.Notes) {
				return res, fmt.Errorf("shard: %s parts disagree on notes — sub-case results are not shard-independent", e.ID)
			}
		}
		for _, row := range t.Rows {
			if len(row) == 0 {
				return res, fmt.Errorf("shard: %s part %d has an empty table row", e.ID, i)
			}
			if prev, dup := rows[row[0]]; dup && !reflect.DeepEqual(prev, row) {
				return res, fmt.Errorf("shard: %s sub-case %q produced different rows on different shards", e.ID, row[0])
			}
			rows[row[0]] = row
		}
		for _, s := range p.Skips {
			skips.Skip("%s", s)
		}
	}
	consumed := 0
	for _, sub := range e.Subcases() {
		if row, ok := rows[sub]; ok {
			merged.Rows = append(merged.Rows, row)
			consumed++
		}
	}
	if consumed != len(rows) {
		return res, fmt.Errorf("shard: %s has %d table row(s) whose first cell is not a sub-case key — Subcases contract violated", e.ID, len(rows)-consumed)
	}
	res.Report.Tables = []*stats.Table{merged}
	skips.Apply(&res.Report)
	res.Err = skips.Err()
	res.Attempts = maxAttempts(parts)
	return res, nil
}

func maxAttempts(parts []PartResult) int {
	max := 0
	for _, p := range parts {
		if p.Attempts > max {
			max = p.Attempts
		}
	}
	return max
}
