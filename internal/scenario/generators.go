package scenario

// This file holds the raw request generators: random traffic for
// throughput experiments and the adversarial constructions behind the
// lower bounds cited in Table 1 of Even–Medina. They were ported verbatim
// from the former internal/workload package; the registered scenarios in
// builtin.go (and the other per-family files) wrap them behind typed
// parameter specs. Tests and experiments may also call them directly.

import (
	"math/rand"
	"sort"

	"gridroute/internal/grid"
)

// sortReqs orders requests by arrival (stable) and reassigns IDs — the
// online arrival order every algorithm expects.
func sortReqs(reqs []grid.Request) []grid.Request {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i := range reqs {
		reqs[i].ID = i
	}
	return reqs
}

// randomDstFrom draws a uniformly random reachable destination from node
// (one Intn per axis, so generator streams stay stable), reporting false
// when the draw degenerates to node itself (always the case at the top
// corner).
func randomDstFrom(g *grid.Grid, node grid.Vec, rng *rand.Rand) (grid.Vec, bool) {
	dst := make(grid.Vec, g.D())
	ok := false
	for a := 0; a < g.D(); a++ {
		dst[a] = node[a] + rng.Intn(g.Dims[a]-node[a])
		if dst[a] > node[a] {
			ok = true
		}
	}
	return dst, ok
}

// Uniform draws numReq requests with uniformly random source, a uniformly
// random reachable destination, and arrivals uniform in [0, maxT].
func Uniform(g *grid.Grid, numReq int, maxT int64, rng *rand.Rand) []grid.Request {
	reqs := make([]grid.Request, 0, numReq)
	d := g.D()
	for len(reqs) < numReq {
		src := make(grid.Vec, d)
		dst := make(grid.Vec, d)
		for a := 0; a < d; a++ {
			src[a] = rng.Intn(g.Dims[a])
			dst[a] = src[a] + rng.Intn(g.Dims[a]-src[a])
		}
		if src.Eq(dst) {
			continue
		}
		reqs = append(reqs, grid.Request{
			Src: src, Dst: dst,
			Arrival:  rng.Int63n(maxT + 1),
			Deadline: grid.InfDeadline,
		})
	}
	return sortReqs(reqs)
}

// Saturating injects bursts at every node each round so that total demand
// exceeds network capacity by roughly the given factor — the regime where
// admission control matters.
func Saturating(g *grid.Grid, rounds int, burst int, rng *rand.Rand) []grid.Request {
	var reqs []grid.Request
	d := g.D()
	node := make(grid.Vec, d)
	for t := 0; t < rounds; t++ {
		for id := 0; id < g.N(); id++ {
			g.Node(id, node)
			for b := 0; b < burst; b++ {
				dst, ok := randomDstFrom(g, node, rng)
				if !ok {
					continue
				}
				reqs = append(reqs, grid.Request{
					Src: node.Clone(), Dst: dst,
					Arrival:  int64(t),
					Deadline: grid.InfDeadline,
				})
			}
		}
	}
	return sortReqs(reqs)
}

// Hotspot concentrates sources in the lowest-coordinate corner region
// (fraction frac of each side) with far-away destinations: the dense-area
// scenario motivating random sparsification (Sec. 1.3).
func Hotspot(g *grid.Grid, numReq int, maxT int64, frac float64, rng *rand.Rand) []grid.Request {
	if frac <= 0 || frac > 1 {
		frac = 0.25
	}
	reqs := make([]grid.Request, 0, numReq)
	d := g.D()
	for len(reqs) < numReq {
		src := make(grid.Vec, d)
		dst := make(grid.Vec, d)
		for a := 0; a < d; a++ {
			lim := int(float64(g.Dims[a]) * frac)
			if lim < 1 {
				lim = 1
			}
			src[a] = rng.Intn(lim)
			dst[a] = src[a] + rng.Intn(g.Dims[a]-src[a])
		}
		if src.Eq(dst) {
			continue
		}
		reqs = append(reqs, grid.Request{
			Src: src, Dst: dst,
			Arrival:  rng.Int63n(maxT + 1),
			Deadline: grid.InfDeadline,
		})
	}
	return sortReqs(reqs)
}

// WithDeadlines assigns each request a feasible deadline:
// t_i + dist·slack + jitter (Sec. 5.4 requires d_i ≥ t_i + dist(a_i,b_i)).
func WithDeadlines(g *grid.Grid, reqs []grid.Request, slack float64, jitter int64, rng *rand.Rand) []grid.Request {
	out := append([]grid.Request(nil), reqs...)
	for i := range out {
		dist := int64(g.Dist(out[i].Src, out[i].Dst))
		dl := out[i].Arrival + int64(float64(dist)*slack)
		if dl < out[i].Arrival+dist {
			dl = out[i].Arrival + dist
		}
		if jitter > 0 {
			dl += rng.Int63n(jitter + 1)
		}
		out[i].Deadline = dl
	}
	return out
}

// ConvoyRate is the greedy-killer family on a line (the Ω(√n) phenomenon
// of [AKOR03] in executable form): `rate` long-haul packets per step
// saturate the line (set rate = c) while short hops appear at every node.
// FIFO greedy carries the older long packets and starves the shorts; the
// optimum rejects the convoy and serves every short.
func ConvoyRate(n, rounds, rate, shortEvery int) []grid.Request {
	var reqs []grid.Request
	for t := 0; t < rounds; t++ {
		for j := 0; j < rate; j++ {
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{0}, Dst: grid.Vec{n - 1},
				Arrival: int64(t), Deadline: grid.InfDeadline,
			})
		}
	}
	if shortEvery < 1 {
		shortEvery = 1
	}
	for t := 0; t < rounds; t += shortEvery {
		for v := 1; v < n-1; v++ {
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{v}, Dst: grid.Vec{v + 1},
				Arrival: int64(t), Deadline: grid.InfDeadline,
			})
		}
	}
	return sortReqs(reqs)
}

// Convoy is ConvoyRate with one long packet per step.
func Convoy(n int, rounds int, shortEvery int) []grid.Request {
	return ConvoyRate(n, rounds, 1, shortEvery)
}

// ConvoyOPTLowerBound returns a throughput achievable by an offline
// scheduler on the convoy: serving every short hop (pairwise disjoint in
// space-time: a short at (v,t) uses only edge v during step t). It is a
// valid |opt| lower bound used to lower-bound competitive ratios.
func ConvoyOPTLowerBound(n, rounds, shortEvery int) int {
	if shortEvery < 1 {
		shortEvery = 1
	}
	shorts := ((rounds + shortEvery - 1) / shortEvery) * (n - 2)
	return shorts
}

// Crossbar emulates input-queued switch traffic on an ℓ×ℓ grid (the
// crossbar motivation of Sec. 1.1): packets enter on the west edge (column
// 0) and leave toward a uniformly random row/column crossing point.
func Crossbar(l int, b, c int, rounds int, load float64, rng *rand.Rand) (*grid.Grid, []grid.Request) {
	g := grid.New([]int{l, l}, b, c)
	var reqs []grid.Request
	for t := 0; t < rounds; t++ {
		for row := 0; row < l; row++ {
			if rng.Float64() > load {
				continue
			}
			dstRow := row + rng.Intn(l-row)
			dstCol := rng.Intn(l)
			if dstRow == row && dstCol == 0 {
				continue
			}
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{row, 0}, Dst: grid.Vec{dstRow, dstCol},
				Arrival: int64(t), Deadline: grid.InfDeadline,
			})
		}
	}
	return g, sortReqs(reqs)
}

// Permutation issues one request per node to a random higher node —
// light-load traffic where near-everything should be deliverable.
func Permutation(g *grid.Grid, maxT int64, rng *rand.Rand) []grid.Request {
	var reqs []grid.Request
	d := g.D()
	node := make(grid.Vec, d)
	for id := 0; id < g.N(); id++ {
		g.Node(id, node)
		dst, ok := randomDstFrom(g, node, rng)
		if !ok {
			continue
		}
		reqs = append(reqs, grid.Request{
			Src: node.Clone(), Dst: dst,
			Arrival:  rng.Int63n(maxT + 1),
			Deadline: grid.InfDeadline,
		})
	}
	return sortReqs(reqs)
}
