package scenario

import (
	"testing"

	"gridroute/internal/grid"
)

// TestStreamYieldsArrivalOrder checks the streaming iterator yields exactly
// the Generate output, in order, with working Remaining/Reset bookkeeping.
func TestStreamYieldsArrivalOrder(t *testing.T) {
	s, err := NewStream("uniform", nil)
	if err != nil {
		t.Fatal(err)
	}
	g, reqs, err := Generate("uniform", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid() == nil || s.Grid().N() != g.N() {
		t.Fatal("stream grid diverges from Generate")
	}
	if s.Len() != len(reqs) || s.Remaining() != len(reqs) {
		t.Fatalf("fresh stream Len=%d Remaining=%d want %d", s.Len(), s.Remaining(), len(reqs))
	}
	var last int64 = -1 << 62
	for i := 0; ; i++ {
		r, ok := s.Next()
		if !ok {
			if i != len(reqs) {
				t.Fatalf("stream ended after %d of %d", i, len(reqs))
			}
			break
		}
		if r.ID != i {
			t.Fatalf("request %d has ID %d (arrival-order IDs expected)", i, r.ID)
		}
		if r.Arrival < last {
			t.Fatalf("arrival order violated at %d: %d < %d", i, r.Arrival, last)
		}
		last = r.Arrival
		if r.Arrival != reqs[i].Arrival || !r.Src.Eq(reqs[i].Src) || !r.Dst.Eq(reqs[i].Dst) {
			t.Fatalf("stream request %d diverges from Generate", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded a request")
	}
	if s.Remaining() != 0 {
		t.Fatalf("exhausted Remaining = %d", s.Remaining())
	}
	s.Reset()
	if s.Remaining() != s.Len() {
		t.Fatal("Reset did not rewind")
	}
	if r, ok := s.Next(); !ok || r.ID != 0 {
		t.Fatal("Reset stream does not restart at the first request")
	}
}

func TestStreamOfWrapsInstance(t *testing.T) {
	g := grid.Line(8, 3, 3)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{1}, Dst: grid.Vec{5}, Arrival: 2, Deadline: grid.InfDeadline},
	}
	s := StreamOf(g, reqs)
	if s.Len() != 2 || s.Grid() != g {
		t.Fatal("StreamOf lost the instance")
	}
	r, ok := s.Next()
	if !ok || r != &s.Requests()[0] {
		t.Fatal("Next must alias the backing slice")
	}
}

func TestStreamUnknownScenario(t *testing.T) {
	if _, err := NewStream("no-such-scenario", nil); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
