// Package scenario is the registry of named, self-describing workload
// scenarios: each bundles a grid construction and a request generator
// behind a stable ID, typed parameter specs (defaults, ranges, validation)
// and deterministic per-ID seeding, mirroring the experiment registry of
// internal/experiments.
//
// A scenario is resolved in two steps: Resolve(id, overrides) validates the
// overrides against the scenario's parameter specs and produces a Spec;
// Generate runs the scenario's generator on that Spec and validates the
// output (every request in bounds, destination reachable, arrivals sorted,
// IDs 0..len-1). All randomness is drawn from Spec.RNG, whose seed is a
// pure function of (scenario ID, seed parameter) via SeedFor — generation
// is byte-deterministic at any concurrency level.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"gridroute/internal/grid"
)

// Param is one typed scenario parameter: a name, documentation, a default,
// and an inclusive validity range. Int marks parameters that must be
// integral (the common case: grid sides, request counts, rounds).
type Param struct {
	Name    string  `json:"name"`
	Doc     string  `json:"doc"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Int     bool    `json:"int,omitempty"`
}

// check validates one value against the spec.
func (p Param) check(v float64) error {
	if math.IsNaN(v) || v < p.Min || v > p.Max {
		return fmt.Errorf("scenario: %s=%v out of range [%v, %v]", p.Name, v, p.Min, p.Max)
	}
	if p.Int && v != math.Trunc(v) {
		return fmt.Errorf("scenario: %s=%v must be an integer", p.Name, v)
	}
	return nil
}

// Scenario is one registered workload: a stable ID (the anchor for seeding,
// selection and benchmarks), a human title, coarse tags for selection, the
// parameter specs, and the generator. Generate must draw every random bit
// from the Spec's RNG and must not retain or mutate global state, so that a
// fixed Spec always yields byte-identical requests.
type Scenario struct {
	ID     string
	Title  string
	Tags   []string
	Params []Param
	// Generate builds the grid and the request sequence for a resolved
	// Spec.
	//
	// Invariant: the returned requests are already in online arrival order —
	// non-decreasing Arrival, IDs 0..len-1 assigned in that order. The
	// package-level Generate asserts this once after every generator run, so
	// downstream consumers (the batch runner, the streaming engine's
	// arrival-ordered Stream, detailed routing) must NOT re-sort the slice;
	// re-sorting is at best a wasted pass and at worst, with an unstable
	// sort, a silent reordering of same-arrival requests.
	Generate func(Spec) (*grid.Grid, []grid.Request, error)
}

// Param returns the parameter spec with the given name.
func (s Scenario) Param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Spec is a resolved scenario instance: every parameter bound to a
// validated value and the RNG seed fixed. Specs are produced by Resolve.
type Spec struct {
	// ID is the scenario's registry ID.
	ID string
	// Seed is the derived RNG seed: SeedFor(ID) by default, or
	// SeedFor(ID, "seed=<v>") when the caller overrides the implicit seed
	// parameter — never the raw user value, so distinct scenarios never
	// share a stream even for equal seeds.
	Seed int64

	vals map[string]float64
}

// Float returns the resolved value of a parameter. It panics on unknown
// names: generators asking for parameters they did not declare is a
// programming error.
func (s Spec) Float(name string) float64 {
	v, ok := s.vals[name]
	if !ok {
		panic(fmt.Sprintf("scenario %s: undeclared parameter %q", s.ID, name))
	}
	return v
}

// Int returns a parameter as an int.
func (s Spec) Int(name string) int { return int(s.Float(name)) }

// Int64 returns a parameter as an int64.
func (s Spec) Int64(name string) int64 { return int64(s.Float(name)) }

// RNG returns a fresh deterministic generator for the Spec. Every call
// returns an independent generator over the same stream.
func (s Spec) RNG() *rand.Rand { return rand.New(rand.NewSource(s.Seed)) }

// SeedFor derives the deterministic seed for a scenario ID and an optional
// chain of sub-keys (FNV-1a over the NUL-joined parts) — the same
// convention the experiment runner uses, so "uniform" names the same
// request stream on every machine and at any -j.
func SeedFor(id string, subkeys ...string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	for _, k := range subkeys {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return int64(h.Sum64())
}

var registry []Scenario

// Register adds a scenario to the package registry. It is called from init
// functions of the per-family files; duplicate IDs, missing generators and
// malformed parameter specs are programming errors and panic immediately.
// The registry is kept sorted by ID rather than init order, which depends
// on source file names.
func Register(s Scenario) {
	if s.ID == "" || s.Generate == nil {
		panic("scenario: Register needs an ID and a Generate function")
	}
	for _, have := range registry {
		if have.ID == s.ID {
			panic(fmt.Sprintf("scenario: duplicate ID %q", s.ID))
		}
	}
	seen := map[string]bool{"seed": true} // implicit parameter, not declarable
	for _, p := range s.Params {
		if p.Name == "" || seen[p.Name] {
			panic(fmt.Sprintf("scenario %s: empty or duplicate parameter %q", s.ID, p.Name))
		}
		seen[p.Name] = true
		if err := p.check(p.Default); err != nil {
			panic(fmt.Sprintf("scenario %s: default violates own spec: %v", s.ID, err))
		}
	}
	registry = append(registry, s)
	sort.SliceStable(registry, func(i, j int) bool { return registry[i].ID < registry[j].ID })
}

// Registered returns all scenarios sorted by ID. The slice is a copy;
// callers may reorder or filter it freely.
func Registered() []Scenario {
	out := make([]Scenario, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the registered scenario IDs in sorted order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, s := range registry {
		ids[i] = s.ID
	}
	return ids
}

// Lookup returns the scenario with the given ID.
func Lookup(id string) (Scenario, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Scenario{}, false
}

// Select returns the scenarios whose ID or any tag matches the regular
// expression, preserving sorted order. An empty pattern selects everything.
func Select(pattern string) ([]Scenario, error) {
	if pattern == "" {
		return Registered(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("scenario: bad pattern %q: %w", pattern, err)
	}
	var out []Scenario
	for _, s := range registry {
		if re.MatchString(s.ID) || matchesAny(re, s.Tags) {
			out = append(out, s)
		}
	}
	return out, nil
}

func matchesAny(re *regexp.Regexp, ss []string) bool {
	for _, s := range ss {
		if re.MatchString(s) {
			return true
		}
	}
	return false
}

// Resolve validates the overrides against the scenario's parameter specs
// and returns a fully bound Spec. Unknown parameter names and out-of-range
// values are errors that name the valid choices — never silently ignored.
// The implicit "seed" parameter is accepted by every scenario and folded
// into the Spec's derived seed.
func Resolve(id string, overrides map[string]float64) (Spec, error) {
	sc, ok := Lookup(id)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	spec := Spec{ID: id, Seed: SeedFor(id), vals: make(map[string]float64, len(sc.Params))}
	for _, p := range sc.Params {
		spec.vals[p.Name] = p.Default
	}
	// Deterministic error messages: apply overrides in sorted key order.
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := overrides[k]
		if k == "seed" {
			spec.Seed = SeedFor(id, fmt.Sprintf("seed=%v", v))
			continue
		}
		p, ok := sc.Param(k)
		if !ok {
			return Spec{}, fmt.Errorf("scenario %s: unknown parameter %q (known: %s)", id, k, paramNames(sc))
		}
		if err := p.check(v); err != nil {
			return Spec{}, err
		}
		spec.vals[k] = v
	}
	return spec, nil
}

func paramNames(sc Scenario) string {
	names := make([]string, len(sc.Params)+1)
	for i, p := range sc.Params {
		names[i] = p.Name
	}
	names[len(sc.Params)] = "seed"
	return strings.Join(names, ", ")
}

// Generate resolves and runs a scenario, then validates the output: every
// request must be feasible on the returned grid (in bounds, destination
// reachable, deadline achievable), arrivals non-decreasing, and IDs
// assigned 0..len-1 in arrival order. A generator violating its own
// contract is reported as an error, not returned to the caller.
func Generate(id string, overrides map[string]float64) (*grid.Grid, []grid.Request, error) {
	spec, err := Resolve(id, overrides)
	if err != nil {
		return nil, nil, err
	}
	sc, _ := Lookup(id)
	g, reqs, err := sc.Generate(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", id, err)
	}
	if g == nil {
		return nil, nil, fmt.Errorf("scenario %s: generator returned no grid", id)
	}
	// The arrival-order invariant is asserted here, once, for every
	// generator: callers are entitled to consume the slice as the online
	// order without re-sorting.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return nil, nil, fmt.Errorf("scenario %s: requests not arrival-sorted at index %d (Generate invariant)", id, i)
		}
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		return nil, nil, fmt.Errorf("scenario %s: invalid request at index %d: %v", id, i, &reqs[i])
	}
	for i := range reqs {
		if reqs[i].ID != i {
			return nil, nil, fmt.Errorf("scenario %s: request %d has ID %d (IDs must follow arrival order)", id, i, reqs[i].ID)
		}
	}
	return g, reqs, nil
}

// Digest returns a FNV-1a fingerprint of a generated instance (grid shape
// plus every request field). Experiment tables include it so the CI
// determinism gates (-j 1 vs -j N diffs) also certify that scenario
// generation is byte-stable.
func Digest(g *grid.Grid, reqs []grid.Request) uint64 {
	h := fnv.New64a()
	write := func(x int64) {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, d := range g.Dims {
		write(int64(d))
	}
	write(int64(g.B))
	write(int64(g.C))
	for i := range reqs {
		write(int64(reqs[i].ID))
		for _, x := range reqs[i].Src {
			write(int64(x))
		}
		for _, x := range reqs[i].Dst {
			write(int64(x))
		}
		write(reqs[i].Arrival)
		write(reqs[i].Deadline)
	}
	return h.Sum64()
}
