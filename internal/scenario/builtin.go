package scenario

// The nine scenarios ported from the former internal/workload free
// functions. Each wraps one generator behind typed parameter specs; the
// defaults reproduce the settings cmd/routesim and the examples used to
// hard-code.

import (
	"gridroute/internal/grid"
)

// Shared parameter constructors: every scenario that routes on a line or
// d-dimensional grid uses the same n/d/b/c vocabulary, so CLI overrides
// transfer between scenarios.

func pSide(def int) Param {
	return Param{Name: "n", Doc: "side length of each grid dimension", Default: float64(def), Min: 2, Max: 4096, Int: true}
}

func pDim(def int) Param {
	return Param{Name: "d", Doc: "grid dimension", Default: float64(def), Min: 1, Max: 4, Int: true}
}

func pBuf(def int) Param {
	return Param{Name: "b", Doc: "buffer size B per node", Default: float64(def), Min: 0, Max: 1 << 20, Int: true}
}

func pCap(def int) Param {
	return Param{Name: "c", Doc: "link capacity c", Default: float64(def), Min: 1, Max: 1 << 20, Int: true}
}

func pReqs(def int) Param {
	return Param{Name: "reqs", Doc: "number of requests", Default: float64(def), Min: 1, Max: 1 << 22, Int: true}
}

func pMaxT(def int) Param {
	return Param{Name: "maxt", Doc: "arrivals drawn uniformly from [0, maxt]", Default: float64(def), Min: 0, Max: 1 << 30, Int: true}
}

func pRounds(def int) Param {
	return Param{Name: "rounds", Doc: "number of injection rounds", Default: float64(def), Min: 1, Max: 1 << 20, Int: true}
}

// specGrid builds the d-dimensional grid named by the standard n/d/b/c
// parameters.
func specGrid(s Spec) *grid.Grid {
	d := s.Int("d")
	dims := make([]int, d)
	for i := range dims {
		dims[i] = s.Int("n")
	}
	return grid.New(dims, s.Int("b"), s.Int("c"))
}

func init() {
	Register(Scenario{
		ID:    "uniform",
		Title: "Uniformly random sources, reachable destinations, uniform arrivals",
		Tags:  []string{"random", "baseline-load"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pReqs(200), pMaxT(128),
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, Uniform(g, s.Int("reqs"), s.Int64("maxt"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "saturating",
		Title: "Per-node bursts exceeding network capacity (admission-control regime)",
		Tags:  []string{"random", "overload"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pRounds(8),
			{Name: "burst", Doc: "requests injected per node per round", Default: 2, Min: 1, Max: 64, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, Saturating(g, s.Int("rounds"), s.Int("burst"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "hotspot",
		Title: "Sources concentrated in the low corner with far destinations (Sec. 1.3 dense area)",
		Tags:  []string{"random", "hotspot"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pReqs(200), pMaxT(128),
			{Name: "frac", Doc: "fraction of each side forming the hot corner", Default: 0.25, Min: 0.01, Max: 1},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, Hotspot(g, s.Int("reqs"), s.Int64("maxt"), s.Float("frac"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "permutation",
		Title: "One request per node to a random higher node (light load)",
		Tags:  []string{"random", "light-load"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pMaxT(64),
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, Permutation(g, s.Int64("maxt"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "crossbar",
		Title: "Input-queued switch traffic on an ℓ×ℓ grid (Sec. 1.1 crossbar motivation)",
		Tags:  []string{"random", "2d", "switch"},
		Params: []Param{
			pSide(8), pBuf(3), pCap(3), pRounds(32),
			{Name: "load", Doc: "ingress probability per row per cycle", Default: 0.7, Min: 0, Max: 1},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g, reqs := Crossbar(s.Int("n"), s.Int("b"), s.Int("c"), s.Int("rounds"), s.Float("load"), s.RNG())
			return g, reqs, nil
		},
	})

	Register(Scenario{
		ID:    "convoy",
		Title: "Greedy-killer convoy: one long-haul packet per step plus short hops ([AKOR03] Ω(√n))",
		Tags:  []string{"adversarial", "lowerbound", "line"},
		Params: []Param{
			pSide(64), pBuf(3), pCap(1),
			{Name: "rounds", Doc: "injection rounds (0 = 2n)", Default: 0, Min: 0, Max: 1 << 20, Int: true},
			{Name: "shortevery", Doc: "short hops appear every this many steps", Default: 1, Min: 1, Max: 1 << 16, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			n := s.Int("n")
			rounds := s.Int("rounds")
			if rounds == 0 {
				rounds = 2 * n
			}
			g := grid.Line(n, s.Int("b"), s.Int("c"))
			return g, Convoy(n, rounds, s.Int("shortevery")), nil
		},
	})

	Register(Scenario{
		ID:    "convoy-rate",
		Title: "Convoy at link-saturating rate: c long-haul packets per step plus short hops",
		Tags:  []string{"adversarial", "lowerbound", "line"},
		Params: []Param{
			pSide(64), pBuf(3), pCap(3),
			{Name: "rate", Doc: "long-haul packets per step (0 = c, saturating every link)", Default: 0, Min: 0, Max: 1 << 16, Int: true},
			{Name: "rounds", Doc: "injection rounds (0 = 2n)", Default: 0, Min: 0, Max: 1 << 20, Int: true},
			{Name: "shortevery", Doc: "short hops appear every this many steps", Default: 1, Min: 1, Max: 1 << 16, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			n := s.Int("n")
			rounds := s.Int("rounds")
			if rounds == 0 {
				rounds = 2 * n
			}
			rate := s.Int("rate")
			if rate == 0 {
				rate = s.Int("c")
			}
			g := grid.Line(n, s.Int("b"), s.Int("c"))
			return g, ConvoyRate(n, rounds, rate, s.Int("shortevery")), nil
		},
	})

	Register(Scenario{
		ID:    "uniform-deadline",
		Title: "Uniform traffic with feasible per-packet deadlines (Sec. 5.4)",
		Tags:  []string{"random", "deadline"},
		Params: []Param{
			pSide(48), pDim(1), pBuf(3), pCap(3), pReqs(180), pMaxT(96),
			{Name: "slack", Doc: "deadline = arrival + dist·slack (≥ 1 keeps deadlines feasible)", Default: 1.5, Min: 1, Max: 64},
			{Name: "jitter", Doc: "uniform extra deadline slack in [0, jitter]", Default: 8, Min: 0, Max: 1 << 20, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			rng := s.RNG()
			base := Uniform(g, s.Int("reqs"), s.Int64("maxt"), rng)
			return g, WithDeadlines(g, base, s.Float("slack"), s.Int64("jitter"), rng), nil
		},
	})

	Register(Scenario{
		ID:    "saturating-deadline",
		Title: "Overload bursts with feasible deadlines — admission control under time pressure",
		Tags:  []string{"random", "overload", "deadline"},
		Params: []Param{
			pSide(48), pDim(1), pBuf(3), pCap(3), pRounds(6),
			{Name: "burst", Doc: "requests injected per node per round", Default: 2, Min: 1, Max: 64, Int: true},
			{Name: "slack", Doc: "deadline = arrival + dist·slack (≥ 1 keeps deadlines feasible)", Default: 2, Min: 1, Max: 64},
			{Name: "jitter", Doc: "uniform extra deadline slack in [0, jitter]", Default: 8, Min: 0, Max: 1 << 20, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			rng := s.RNG()
			base := Saturating(g, s.Int("rounds"), s.Int("burst"), rng)
			return g, WithDeadlines(g, base, s.Float("slack"), s.Int64("jitter"), rng), nil
		},
	})
}
