package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ParamFlags collects repeated -p key=val scenario overrides. It implements
// flag.Value, so both routesim and routed share one parser (and one fuzz
// corpus) instead of drifting copies.
type ParamFlags map[string]float64

func (p ParamFlags) String() string { return "" }

// Set parses one key=val override. The value must be a finite-or-infinite
// float64 literal; the key must be non-empty. Errors are returned, never
// panicked, whatever the input.
func (p ParamFlags) Set(s string) error {
	key, val, err := SplitParam(s)
	if err != nil {
		return err
	}
	p[key] = val
	return nil
}

// SplitParam parses a single key=val parameter override.
func SplitParam(s string) (key string, val float64, err error) {
	key, raw, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return "", 0, fmt.Errorf("want key=val, got %q", s)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return "", 0, fmt.Errorf("parameter %s: %v", key, err)
	}
	return key, v, nil
}
