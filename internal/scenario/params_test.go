package scenario

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestParamFlagsSet(t *testing.T) {
	p := ParamFlags{}
	for _, s := range []string{"reqs=5000", "rho=0.75", "seed=42", "rho=0.5"} {
		if err := p.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	want := ParamFlags{"reqs": 5000, "rho": 0.5, "seed": 42}
	if len(p) != len(want) {
		t.Fatalf("got %v, want %v", p, want)
	}
	for k, v := range want {
		if p[k] != v {
			t.Errorf("p[%q] = %v, want %v", k, p[k], v)
		}
	}
}

func TestParamFlagsRejects(t *testing.T) {
	for _, s := range []string{"", "=", "=1", "reqs", "reqs=", "reqs=abc", "reqs=1x"} {
		if err := (ParamFlags{}).Set(s); err == nil {
			t.Errorf("Set(%q): want error, got nil", s)
		}
	}
}

// FuzzSplitParam pins the shared -p parser's contract: it never panics, and
// on success the key is non-empty, came verbatim from before the first '=',
// and the value round-trips through strconv.
func FuzzSplitParam(f *testing.F) {
	f.Add("reqs=5000")
	f.Add("rho=0.75")
	f.Add("x=-1e300")
	f.Add("x=NaN")
	f.Add("x=Inf")
	f.Add("")
	f.Add("=")
	f.Add("a=b=c")
	f.Add("a==1")
	f.Add("\x00=\x00")
	f.Fuzz(func(t *testing.T, s string) {
		key, val, err := SplitParam(s)
		if err != nil {
			return
		}
		if key == "" {
			t.Fatalf("SplitParam(%q) accepted an empty key", s)
		}
		pre, raw, ok := strings.Cut(s, "=")
		if !ok || pre != key {
			t.Fatalf("SplitParam(%q) returned key %q, input splits to %q", s, key, pre)
		}
		want, perr := strconv.ParseFloat(raw, 64)
		if perr != nil {
			t.Fatalf("SplitParam(%q) accepted a value strconv rejects: %v", s, perr)
		}
		if want != val && !(math.IsNaN(want) && math.IsNaN(val)) {
			t.Fatalf("SplitParam(%q) = %v, strconv = %v", s, val, want)
		}
	})
}
