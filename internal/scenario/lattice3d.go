package scenario

// 3-d lattices: the paper's algorithms are stated for every dimension d
// (Thm 10's O(log^{d+4} n) bound), but all the reproduced tables stop at
// d = 2. This pair opens the d = 3 axis with the two canonical load
// shapes — uniform and corner-hotspot — on an ℓ×ℓ×ℓ lattice.

import (
	"gridroute/internal/grid"
)

func pSide3(def int) Param {
	// A 3-d side of ℓ means ℓ³ nodes: keep the cap low enough that the
	// default sweeps stay tractable.
	return Param{Name: "n", Doc: "side length of the ℓ×ℓ×ℓ lattice", Default: float64(def), Min: 2, Max: 64, Int: true}
}

func init() {
	Register(Scenario{
		ID:    "lattice3d-uniform",
		Title: "Uniform traffic on an ℓ×ℓ×ℓ 3-d lattice (Thm 10 beyond d=2)",
		Tags:  []string{"random", "3d", "lattice"},
		Params: []Param{
			pSide3(6), pBuf(3), pCap(3), pReqs(200), pMaxT(64),
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			l := s.Int("n")
			g := grid.New([]int{l, l, l}, s.Int("b"), s.Int("c"))
			return g, Uniform(g, s.Int("reqs"), s.Int64("maxt"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "lattice3d-hotspot",
		Title: "Corner-hotspot traffic on an ℓ×ℓ×ℓ 3-d lattice",
		Tags:  []string{"random", "3d", "lattice", "hotspot"},
		Params: []Param{
			pSide3(6), pBuf(3), pCap(3), pReqs(200), pMaxT(64),
			{Name: "frac", Doc: "fraction of each side forming the hot corner", Default: 0.34, Min: 0.01, Max: 1},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			l := s.Int("n")
			g := grid.New([]int{l, l, l}, s.Int("b"), s.Int("c"))
			return g, Hotspot(g, s.Int("reqs"), s.Int64("maxt"), s.Float("frac"), s.RNG()), nil
		},
	})
}
