package scenario

// Classical permutation patterns from the interconnection-network
// literature (transpose, bit-reversal), adapted to the uni-directional
// grid: a request (src, dst) exists only when dst is coordinate-wise ≥
// src, since the network is a DAG and cannot route the remaining pairs.
// The surviving half still concentrates load along the anti-diagonal
// (transpose) and across address strides (bit-reversal), the structured
// congestion these patterns are known for.

import (
	"fmt"

	"gridroute/internal/grid"
)

// Transpose issues the corner-turn transpose on an ℓ×ℓ grid: the interior
// transpose (i,j) → (j,i) is unroutable in a uni-directional grid (one
// coordinate always decreases), so the pattern enters on the west and
// north edges and exits transposed on the east and south edges —
// (i,0) → (ℓ−1,i) and (0,i) → (i,ℓ−1). Every packet crosses the main
// diagonal cell (i,i), reproducing the diagonal congestion that makes
// transpose a classical stress pattern. Re-injected every `every` steps
// for `waves` waves.
func Transpose(l, b, c, waves, every int) (*grid.Grid, []grid.Request) {
	g := grid.New([]int{l, l}, b, c)
	var reqs []grid.Request
	for w := 0; w < waves; w++ {
		for i := 0; i < l; i++ {
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{i, 0}, Dst: grid.Vec{l - 1, i},
				Arrival: int64(w * every), Deadline: grid.InfDeadline,
			})
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{0, i}, Dst: grid.Vec{i, l - 1},
				Arrival: int64(w * every), Deadline: grid.InfDeadline,
			})
		}
	}
	return g, sortReqs(reqs)
}

// bitRev reverses the low `bits` bits of v.
func bitRev(v, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = r<<1 | (v>>i)&1
	}
	return r
}

// BitReversal issues the reachable half of the bit-reversal permutation
// v → rev(v) on a line of n = 2^k nodes, re-injected every `every` steps
// for `waves` waves. n must be a power of two.
func BitReversal(n, b, c, waves, every int) (*grid.Grid, []grid.Request, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, nil, fmt.Errorf("bit-reversal needs n to be a power of two, got %d", n)
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	g := grid.Line(n, b, c)
	var reqs []grid.Request
	for w := 0; w < waves; w++ {
		for v := 0; v < n; v++ {
			r := bitRev(v, bits)
			if r <= v { // unreachable (or fixed point) in the uni-directional line
				continue
			}
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{v}, Dst: grid.Vec{r},
				Arrival: int64(w * every), Deadline: grid.InfDeadline,
			})
		}
	}
	return g, sortReqs(reqs), nil
}

func init() {
	Register(Scenario{
		ID:    "transpose",
		Title: "Corner-turn transpose on an ℓ×ℓ grid: edge-to-edge traffic crossing the diagonal",
		Tags:  []string{"permutation", "2d", "structured"},
		Params: []Param{
			pSide(16), pBuf(3), pCap(3),
			{Name: "waves", Doc: "how many times the permutation is injected", Default: 4, Min: 1, Max: 1 << 16, Int: true},
			{Name: "every", Doc: "steps between waves", Default: 8, Min: 1, Max: 1 << 20, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g, reqs := Transpose(s.Int("n"), s.Int("b"), s.Int("c"), s.Int("waves"), s.Int("every"))
			return g, reqs, nil
		},
	})

	Register(Scenario{
		ID:    "bit-reversal",
		Title: "Bit-reversal permutation v→rev(v) on a 2^k-node line (reachable half)",
		Tags:  []string{"permutation", "line", "structured"},
		Params: []Param{
			{Name: "n", Doc: "line length (must be a power of two)", Default: 64, Min: 2, Max: 4096, Int: true},
			pBuf(3), pCap(3),
			{Name: "waves", Doc: "how many times the permutation is injected", Default: 4, Min: 1, Max: 1 << 16, Int: true},
			{Name: "every", Doc: "steps between waves", Default: 8, Min: 1, Max: 1 << 20, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			return BitReversal(s.Int("n"), s.Int("b"), s.Int("c"), s.Int("waves"), s.Int("every"))
		},
	})
}
