package scenario

import "gridroute/internal/grid"

// Stream is an arrival-ordered iterator over a generated scenario instance:
// the feed shape the streaming admission engine consumes. Every registered
// scenario can drive an engine through it — NewStream materializes the
// instance once (generation is deterministic and cheap next to routing) and
// hands out requests one at a time in the online order.
//
// A Stream is not safe for concurrent use; concurrent producers each pull
// from the stream under their own coordination (cmd/routed partitions by
// sequence number) or use one feeder goroutine.
type Stream struct {
	g    *grid.Grid
	reqs []grid.Request
	next int
}

// NewStream resolves, generates and validates a scenario instance and
// returns its arrival-ordered request stream.
func NewStream(id string, overrides map[string]float64) (*Stream, error) {
	g, reqs, err := Generate(id, overrides)
	if err != nil {
		return nil, err
	}
	return &Stream{g: g, reqs: reqs}, nil
}

// StreamOf wraps an already generated (grid, requests) instance. The
// requests must satisfy the Generate invariant (arrival-sorted, IDs
// 0..len-1); instances obtained from Generate always do.
func StreamOf(g *grid.Grid, reqs []grid.Request) *Stream {
	return &Stream{g: g, reqs: reqs}
}

// Grid returns the instance's grid.
func (s *Stream) Grid() *grid.Grid { return s.g }

// Len returns the total number of requests in the stream.
func (s *Stream) Len() int { return len(s.reqs) }

// Remaining returns the number of requests not yet yielded.
func (s *Stream) Remaining() int { return len(s.reqs) - s.next }

// Next yields the next request in arrival order, or (nil, false) when the
// stream is exhausted. The pointer aliases the stream's backing slice and
// stays valid for the stream's lifetime.
func (s *Stream) Next() (*grid.Request, bool) {
	if s.next >= len(s.reqs) {
		return nil, false
	}
	r := &s.reqs[s.next]
	s.next++
	return r, true
}

// Reset rewinds the stream to its first request.
func (s *Stream) Reset() { s.next = 0 }

// Requests exposes the full arrival-ordered slice for batch consumers that
// need random access (the shared backing array — callers must not mutate).
func (s *Stream) Requests() []grid.Request { return s.reqs }
