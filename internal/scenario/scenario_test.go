package scenario

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"gridroute/internal/grid"
)

// TestEveryScenarioGeneratesValidRequests is the catalog-wide property
// test: every registered scenario, at its defaults, must yield requests
// that are in bounds, reachable, arrival-sorted and ID-stable (0..len-1).
// Generate enforces this contract itself, so a nil error plus a non-empty
// stream is the whole assertion.
func TestEveryScenarioGeneratesValidRequests(t *testing.T) {
	scs := Registered()
	if len(scs) < 14 {
		t.Fatalf("registry has %d scenarios, want ≥ 14", len(scs))
	}
	for _, sc := range scs {
		t.Run(sc.ID, func(t *testing.T) {
			g, reqs, err := Generate(sc.ID, nil)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(reqs) == 0 {
				t.Fatal("no requests generated at defaults")
			}
			if i := grid.ValidateAll(g, reqs); i >= 0 {
				t.Fatalf("invalid request at %d: %v", i, &reqs[i])
			}
			for i := range reqs {
				if reqs[i].ID != i {
					t.Fatalf("request %d has ID %d", i, reqs[i].ID)
				}
				if gd := g.Dist(reqs[i].Src, reqs[i].Dst); gd <= 0 {
					t.Fatalf("request %d not strictly forward-reachable: %v", i, &reqs[i])
				}
			}
		})
	}
}

// TestGenerateByteDeterministic regenerates every scenario twice serially
// and once under heavy goroutine interleaving (the -j analogue), asserting
// byte-identical output each time for a fixed seed.
func TestGenerateByteDeterministic(t *testing.T) {
	for _, sc := range Registered() {
		t.Run(sc.ID, func(t *testing.T) {
			g1, r1, err := Generate(sc.ID, map[string]float64{"seed": 7})
			if err != nil {
				t.Fatal(err)
			}
			g2, r2, err := Generate(sc.ID, map[string]float64{"seed": 7})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatal("serial regeneration differs")
			}
			d1 := Digest(g1, r1)
			if d2 := Digest(g2, r2); d1 != d2 {
				t.Fatalf("digest mismatch: %x vs %x", d1, d2)
			}
			const workers = 8
			digests := make([]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					g, r, err := Generate(sc.ID, map[string]float64{"seed": 7})
					if err == nil {
						digests[w] = Digest(g, r)
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if digests[w] != d1 {
					t.Fatalf("worker %d digest %x differs from serial %x", w, digests[w], d1)
				}
			}
		})
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	_, r1, err := Generate("uniform", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := Generate("uniform", map[string]float64{"seed": 1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1, r2) {
		t.Fatal("seed override did not change the stream")
	}
	// Distinct scenarios with equal seeds draw from distinct streams.
	if SeedFor("uniform") == SeedFor("hotspot") {
		t.Fatal("per-ID seeds collide")
	}
	if SeedFor("uniform") == SeedFor("uniform", "seed=1") {
		t.Fatal("seed subkey ignored")
	}
}

func TestResolveValidation(t *testing.T) {
	if _, err := Resolve("no-such-scenario", nil); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("unknown scenario must list known IDs, got %v", err)
	}
	if _, err := Resolve("uniform", map[string]float64{"bogus": 1}); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("unknown parameter must list known names, got %v", err)
	}
	if _, err := Resolve("uniform", map[string]float64{"n": 1}); err == nil {
		t.Fatal("out-of-range n must fail")
	}
	if _, err := Resolve("uniform", map[string]float64{"n": 10.5}); err == nil {
		t.Fatal("non-integral n must fail")
	}
	spec, err := Resolve("uniform", map[string]float64{"n": 16, "reqs": 10})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Int("n") != 16 || spec.Int("reqs") != 10 || spec.Int("b") != 3 {
		t.Fatalf("override/defaults wrong: n=%d reqs=%d b=%d", spec.Int("n"), spec.Int("reqs"), spec.Int("b"))
	}
}

func TestSelectByIDAndTag(t *testing.T) {
	advs, err := Select("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) < 3 {
		t.Fatalf("want convoy, convoy-rate and appendixf-model2 under tag adversarial, got %d", len(advs))
	}
	three, err := Select("^lattice3d")
	if err != nil {
		t.Fatal(err)
	}
	if len(three) != 2 {
		t.Fatalf("want the 3-d pair, got %d", len(three))
	}
	if _, err := Select("("); err == nil {
		t.Fatal("bad regexp must fail")
	}
}

func TestBitReversalRequiresPowerOfTwo(t *testing.T) {
	if _, _, err := Generate("bit-reversal", map[string]float64{"n": 48}); err == nil {
		t.Fatal("n=48 must be rejected")
	}
	g, reqs, err := Generate("bit-reversal", map[string]float64{"n": 32, "waves": 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if bitRev(reqs[i].Src[0], 5) != reqs[i].Dst[0] {
			t.Fatalf("request %d is not a bit reversal: %v", i, &reqs[i])
		}
	}
	if g.N() != 32 {
		t.Fatalf("grid size %d", g.N())
	}
}

func TestTransposeShape(t *testing.T) {
	_, reqs, err := Generate("transpose", map[string]float64{"n": 8, "waves": 2, "every": 4})
	if err != nil {
		t.Fatal(err)
	}
	// Corner-turn: 2ℓ edge-to-edge requests per wave.
	if want := 2 * 2 * 8; len(reqs) != want {
		t.Fatalf("got %d requests, want %d", len(reqs), want)
	}
	for i := range reqs {
		r := &reqs[i]
		west := r.Src[1] == 0 && r.Dst[0] == 7 && r.Dst[1] == r.Src[0]
		north := r.Src[0] == 0 && r.Dst[1] == 7 && r.Dst[0] == r.Src[1]
		if !west && !north {
			t.Fatalf("request %d is not a corner-turn pair: %v", i, r)
		}
	}
}

func TestModel2CollisionChainShape(t *testing.T) {
	g, reqs := Model2CollisionChain(16, 1, 1, 2)
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
	longs := 0
	for i := range reqs {
		if reqs[i].Dst[0]-reqs[i].Src[0] == 15 {
			longs++
		} else if reqs[i].Arrival != int64(reqs[i].Src[0]) && reqs[i].Arrival != int64(16+reqs[i].Src[0]) {
			t.Fatalf("short hop %v not synchronized with the long packet", &reqs[i])
		}
	}
	if longs != 2 {
		t.Fatalf("want 2 long packets, got %d", longs)
	}
	if Model2CollisionOPT(16, 2) != 2*14 {
		t.Fatalf("OPT = %d", Model2CollisionOPT(16, 2))
	}
}

func TestHeavyTailedShapes(t *testing.T) {
	_, reqs, err := Generate("heavy-pareto", map[string]float64{"reqs": 300})
	if err != nil {
		t.Fatal(err)
	}
	// A renewal process with heavy-tailed gaps must actually spread out.
	if last := reqs[len(reqs)-1].Arrival; last < 50 {
		t.Fatalf("arrival span %d suspiciously small for Pareto gaps", last)
	}
	// Regression: the renewal clock accumulates in float and floors only on
	// emission. The old per-gap truncation dropped every sub-unit gap to 0
	// (P ≈ 0.65 at alpha=1.5, scale=1), collapsing ~2/3 of consecutive
	// arrivals onto one epoch; with cumulative flooring the same-epoch
	// fraction stays well under half.
	sameEpoch := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival == reqs[i-1].Arrival {
			sameEpoch++
		}
	}
	if 2*sameEpoch >= len(reqs)-1 {
		t.Fatalf("%d of %d consecutive arrivals share an epoch — sub-unit Pareto gaps are being truncated", sameEpoch, len(reqs)-1)
	}
	_, reqs, err = Generate("zipf-hotspot", map[string]float64{"reqs": 300})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := range reqs {
		counts[reqs[i].Src[0]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf(1.2): the most popular source should dominate a uniform share.
	if max < 2*len(reqs)/64 {
		t.Fatalf("top source only %d/%d requests — not Zipf-skewed", max, len(reqs))
	}
}

// --- ported generator unit tests (formerly internal/workload) ---

func TestUniformValid(t *testing.T) {
	g := grid.New([]int{8, 8}, 2, 2)
	rng := rand.New(rand.NewSource(1))
	reqs := Uniform(g, 100, 50, rng)
	if len(reqs) != 100 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d: %v", i, reqs[i])
	}
	for i := range reqs {
		if reqs[i].Src.Eq(reqs[i].Dst) {
			t.Fatal("src == dst should be filtered")
		}
		if reqs[i].ID != i {
			t.Fatal("IDs must follow arrival order")
		}
	}
}

func TestSaturatingDemandExceedsCapacity(t *testing.T) {
	g := grid.Line(16, 2, 1)
	rng := rand.New(rand.NewSource(2))
	reqs := Saturating(g, 4, 3, rng)
	// Roughly rounds·n·burst requests (minus src==dst skips at the corner).
	if len(reqs) < 4*16*3/2 {
		t.Fatalf("too few requests: %d", len(reqs))
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
}

func TestHotspotSourcesConcentrated(t *testing.T) {
	g := grid.Line(64, 1, 1)
	rng := rand.New(rand.NewSource(3))
	reqs := Hotspot(g, 200, 50, 0.25, rng)
	for i := range reqs {
		if reqs[i].Src[0] >= 16 {
			t.Fatalf("hotspot source %v outside the corner region", reqs[i].Src)
		}
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
}

func TestWithDeadlinesFeasible(t *testing.T) {
	g := grid.Line(32, 2, 2)
	rng := rand.New(rand.NewSource(4))
	base := Uniform(g, 100, 64, rng)
	reqs := WithDeadlines(g, base, 1.5, 8, rng)
	for i := range reqs {
		if !reqs[i].Feasible(g) {
			t.Fatalf("infeasible deadline for %v", reqs[i])
		}
		if !reqs[i].HasDeadline() {
			t.Fatal("deadline missing")
		}
	}
	// Slack 1.0, jitter 0 → exactly tight deadlines.
	tight := WithDeadlines(g, base, 1.0, 0, rng)
	for i := range tight {
		d := int64(g.Dist(tight[i].Src, tight[i].Dst))
		if tight[i].Deadline != tight[i].Arrival+d {
			t.Fatalf("tight deadline wrong: %v", tight[i])
		}
	}
}

func TestConvoyShape(t *testing.T) {
	reqs := Convoy(16, 8, 2)
	g := grid.Line(16, 2, 1)
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
	longs, shorts := 0, 0
	for i := range reqs {
		if reqs[i].Dst[0]-reqs[i].Src[0] == 15 {
			longs++
		} else if reqs[i].Dst[0]-reqs[i].Src[0] == 1 {
			shorts++
		}
	}
	if longs != 8 {
		t.Fatalf("longs = %d, want 8", longs)
	}
	if shorts != 4*14 {
		t.Fatalf("shorts = %d, want %d", shorts, 4*14)
	}
	if ConvoyOPTLowerBound(16, 8, 2) != 4*14 {
		t.Fatalf("OPT lower bound = %d", ConvoyOPTLowerBound(16, 8, 2))
	}
}

func TestCrossbar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, reqs := Crossbar(8, 3, 3, 10, 0.8, rng)
	if g.D() != 2 {
		t.Fatal("crossbar must be 2-d")
	}
	if len(reqs) == 0 {
		t.Fatal("no crossbar traffic")
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d: %v", i, reqs[i])
	}
	for i := range reqs {
		if reqs[i].Src[1] != 0 {
			t.Fatal("crossbar ingress must be on column 0")
		}
	}
}

func TestPermutation(t *testing.T) {
	g := grid.New([]int{6, 6}, 1, 1)
	rng := rand.New(rand.NewSource(6))
	reqs := Permutation(g, 10, rng)
	if len(reqs) == 0 || len(reqs) > g.N() {
		t.Fatalf("bad request count %d", len(reqs))
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		t.Fatalf("invalid request at %d", i)
	}
}

func TestResolveRejectsNaN(t *testing.T) {
	if _, err := Resolve("heavy-pareto", map[string]float64{"alpha": math.NaN()}); err == nil {
		t.Fatal("NaN parameter must be rejected")
	}
}
