package scenario

// Appendix F adversarial construction. In Model 2 (AKK09, AZ05 node
// functionality) every packet present at a node during a cycle occupies a
// buffer slot — including packets being forwarded — so a single long-haul
// packet crossing a B = 1 line makes every node it visits reject the short
// hop injected there in the same cycle. A FIFO-style policy that carries
// the long packet therefore loses all n−2 shorts while OPT (which drops
// the one long packet) serves every short: the Ω(n) separation of
// Appendix F remark 3. internal/experiments E11 measures exactly this
// instance; registering it makes the adversary reusable from routesim and
// any future experiment.

import (
	"gridroute/internal/grid"
)

// Model2CollisionChain builds `rounds` back-to-back copies of the chain:
// one long packet 0 → n−1 released at the phase start, and one short hop
// v → v+1 released at the moment the long packet reaches v. Phases are
// spaced `n` steps apart so consecutive long packets never interact.
func Model2CollisionChain(n, b, c, rounds int) (*grid.Grid, []grid.Request) {
	g := grid.Line(n, b, c)
	var reqs []grid.Request
	for r := 0; r < rounds; r++ {
		base := int64(r * n)
		reqs = append(reqs, grid.Request{
			Src: grid.Vec{0}, Dst: grid.Vec{n - 1},
			Arrival: base, Deadline: grid.InfDeadline,
		})
		for v := 1; v < n-1; v++ {
			reqs = append(reqs, grid.Request{
				Src: grid.Vec{v}, Dst: grid.Vec{v + 1},
				Arrival: base + int64(v), Deadline: grid.InfDeadline,
			})
		}
	}
	return g, sortReqs(reqs)
}

// Model2CollisionOPT returns the offline optimum of the collision chain:
// every short hop is serviceable (they are pairwise disjoint in
// space-time once the long packet is dropped), plus the long packets
// themselves when the shorts are sacrificed instead — the bound used by
// the lower-bound experiments is the shorts-only count.
func Model2CollisionOPT(n, rounds int) int {
	return rounds * (n - 2)
}

func init() {
	Register(Scenario{
		ID:    "appendixf-model2",
		Title: "Appendix F Model-2 adversary: B=1 collision chain forcing Ω(n) on FIFO policies",
		Tags:  []string{"adversarial", "lowerbound", "model2", "line"},
		Params: []Param{
			pSide(64),
			{Name: "b", Doc: "buffer size B per node (the separation needs B=1)", Default: 1, Min: 1, Max: 1 << 20, Int: true},
			pCap(1),
			{Name: "rounds", Doc: "independent chain phases, spaced n steps apart", Default: 1, Min: 1, Max: 1 << 16, Int: true},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g, reqs := Model2CollisionChain(s.Int("n"), s.Int("b"), s.Int("c"), s.Int("rounds"))
			return g, reqs, nil
		},
	})
}
