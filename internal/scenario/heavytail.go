package scenario

// Heavy-tailed and bursty traffic: the unexplored workload axis named in
// the ROADMAP. Three scenarios: Pareto-renewal arrivals (heavy-tailed
// inter-arrival gaps), Zipf-popularity sources (heavy-tailed spatial
// skew), and Markov-modulated on/off bursts (temporally correlated load).
// None of these admit the independence assumptions behind smooth uniform
// traffic, which is exactly why they stress admission control differently
// than the Sec. 1.3 hotspot.

import (
	"math"
	"math/rand"

	"gridroute/internal/grid"
)

// paretoGap draws one inter-arrival gap from a shifted Pareto(alpha)
// distribution: heavy-tailed for small alpha (infinite variance for
// alpha ≤ 2), degenerating towards constant gaps as alpha grows. The gap is
// returned in continuous time: the caller accumulates the renewal clock in
// float and floors only the cumulative epoch on emission. (Flooring each
// gap individually truncated every sub-unit gap to 0 — at the default
// alpha = 1.5, scale = 1 the median gap is ≈ 0.59, so most arrivals
// collapsed onto one step and the "renewal process" was mostly a burst.)
func paretoGap(rng *rand.Rand, alpha, scale, maxGap float64) float64 {
	u := rng.Float64()
	g := scale * (math.Pow(1-u, -1/alpha) - 1)
	if g > maxGap {
		g = maxGap
	}
	return g
}

// uniformPair draws a uniformly random (src, dst) pair with dst reachable
// and distinct, exactly as Uniform does.
func uniformPair(g *grid.Grid, rng *rand.Rand) (grid.Vec, grid.Vec, bool) {
	src := make(grid.Vec, g.D())
	for a := 0; a < g.D(); a++ {
		src[a] = rng.Intn(g.Dims[a])
	}
	dst, ok := randomDstFrom(g, src, rng)
	return src, dst, ok
}

// ParetoArrivals generates numReq requests whose arrival epochs form a
// renewal process with Pareto(alpha) inter-arrival gaps: long quiet
// stretches punctuated by dense packet trains.
func ParetoArrivals(g *grid.Grid, numReq int, alpha, scale, maxGap float64, rng *rand.Rand) []grid.Request {
	reqs := make([]grid.Request, 0, numReq)
	// The renewal clock stays in float; each arrival epoch is the floor of
	// the cumulative time, so sub-unit gaps still advance the process
	// (deterministically — float accumulation is exact replay of the same
	// draw sequence) instead of all truncating to zero.
	var t float64
	for len(reqs) < numReq {
		t += paretoGap(rng, alpha, scale, maxGap)
		src, dst, ok := uniformPair(g, rng)
		if !ok {
			continue
		}
		reqs = append(reqs, grid.Request{
			Src: src, Dst: dst,
			Arrival:  int64(t),
			Deadline: grid.InfDeadline,
		})
	}
	return sortReqs(reqs)
}

// ZipfSources draws sources from a Zipf(s) popularity distribution over
// node IDs — a few nodes originate most of the traffic — with uniformly
// random reachable destinations and uniform arrivals.
func ZipfSources(g *grid.Grid, numReq int, s float64, maxT int64, rng *rand.Rand) []grid.Request {
	z := rand.NewZipf(rng, s, 1, uint64(g.N()-1))
	reqs := make([]grid.Request, 0, numReq)
	node := make(grid.Vec, g.D())
	for len(reqs) < numReq {
		g.Node(int(z.Uint64()), node)
		dst, ok := randomDstFrom(g, node, rng)
		if !ok {
			continue
		}
		reqs = append(reqs, grid.Request{
			Src: node.Clone(), Dst: dst,
			Arrival:  rng.Int63n(maxT + 1),
			Deadline: grid.InfDeadline,
		})
	}
	return sortReqs(reqs)
}

// MarkovOnOff runs an independent two-state (on/off) Markov chain at every
// node: an ON node emits `burst` requests per step, so the network sees
// correlated busy periods instead of memoryless load. pOn is the off→on
// transition probability, pOff the on→off probability; the chains start in
// their stationary distribution.
func MarkovOnOff(g *grid.Grid, rounds, burst int, pOn, pOff float64, rng *rand.Rand) []grid.Request {
	n := g.N()
	on := make([]bool, n)
	stationary := pOn / (pOn + pOff)
	for i := range on {
		on[i] = rng.Float64() < stationary
	}
	var reqs []grid.Request
	d := g.D()
	node := make(grid.Vec, d)
	for t := 0; t < rounds; t++ {
		for id := 0; id < n; id++ {
			if on[id] {
				if rng.Float64() < pOff {
					on[id] = false
				}
			} else if rng.Float64() < pOn {
				on[id] = true
			}
			if !on[id] {
				continue
			}
			g.Node(id, node)
			for b := 0; b < burst; b++ {
				dst, ok := randomDstFrom(g, node, rng)
				if !ok {
					continue
				}
				reqs = append(reqs, grid.Request{
					Src: node.Clone(), Dst: dst,
					Arrival:  int64(t),
					Deadline: grid.InfDeadline,
				})
			}
		}
	}
	return sortReqs(reqs)
}

func init() {
	Register(Scenario{
		ID:    "heavy-pareto",
		Title: "Heavy-tailed Pareto-renewal arrivals: packet trains separated by long lulls",
		Tags:  []string{"random", "heavy-tailed", "bursty"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pReqs(200),
			{Name: "alpha", Doc: "Pareto tail index (≤ 2 gives infinite-variance gaps)", Default: 1.5, Min: 1.05, Max: 8},
			{Name: "scale", Doc: "inter-arrival scale in time steps", Default: 1, Min: 0.01, Max: 1 << 16},
			{Name: "maxgap", Doc: "cap on a single inter-arrival gap (keeps horizons finite)", Default: 256, Min: 1, Max: 1 << 24},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, ParetoArrivals(g, s.Int("reqs"), s.Float("alpha"), s.Float("scale"), s.Float("maxgap"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "zipf-hotspot",
		Title: "Zipf-popularity sources: a few nodes originate most traffic",
		Tags:  []string{"random", "heavy-tailed", "hotspot"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pReqs(200), pMaxT(128),
			{Name: "s", Doc: "Zipf exponent over node popularity ranks (> 1)", Default: 1.2, Min: 1.01, Max: 8},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, ZipfSources(g, s.Int("reqs"), s.Float("s"), s.Int64("maxt"), s.RNG()), nil
		},
	})

	Register(Scenario{
		ID:    "markov-onoff",
		Title: "Markov-modulated on/off bursts: correlated busy periods per node",
		Tags:  []string{"random", "bursty", "overload"},
		Params: []Param{
			pSide(64), pDim(1), pBuf(3), pCap(3), pRounds(32),
			{Name: "burst", Doc: "requests per ON node per step", Default: 2, Min: 1, Max: 64, Int: true},
			{Name: "pon", Doc: "off→on transition probability", Default: 0.05, Min: 0.001, Max: 1},
			{Name: "poff", Doc: "on→off transition probability", Default: 0.25, Min: 0.001, Max: 1},
		},
		Generate: func(s Spec) (*grid.Grid, []grid.Request, error) {
			g := specGrid(s)
			return g, MarkovOnOff(g, s.Int("rounds"), s.Int("burst"), s.Float("pon"), s.Float("poff"), s.RNG()), nil
		},
	})
}
