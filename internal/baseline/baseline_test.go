package baseline

import (
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/netsim"
)

func TestGreedyDeliversLightLoad(t *testing.T) {
	g := grid.Line(10, 2, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{9}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{3}, Dst: grid.Vec{6}, Arrival: 2, Deadline: grid.InfDeadline},
		{ID: 2, Src: grid.Vec{5}, Dst: grid.Vec{8}, Arrival: 9, Deadline: grid.InfDeadline},
	}
	res := Run(g, reqs, Greedy{}, netsim.Model1, 40)
	if res.Throughput() != 3 {
		t.Fatalf("greedy light-load throughput = %d, want 3", res.Throughput())
	}
}

// Nearest-to-go beats greedy when long packets crowd out short ones: the
// qualitative separation behind Table 1's lower bounds.
func TestNearestToGoBeatsGreedyOnConvoy(t *testing.T) {
	n := 32
	g := grid.Line(n, 1, 1)
	var reqs []grid.Request
	id := 0
	// A convoy of long-haul packets from node 0...
	for t := 0; t < n; t++ {
		reqs = append(reqs, grid.Request{ID: id, Src: grid.Vec{0}, Dst: grid.Vec{n - 1}, Arrival: int64(t), Deadline: grid.InfDeadline})
		id++
	}
	// ...and short hops at every node that conflict with the convoy.
	for t := 2; t < n; t += 2 {
		for v := 1; v < n-1; v += 2 {
			reqs = append(reqs, grid.Request{ID: id, Src: grid.Vec{v}, Dst: grid.Vec{v + 1}, Arrival: int64(t), Deadline: grid.InfDeadline})
			id++
		}
	}
	// Keep the online order.
	sortByArrival(reqs)
	horizon := int64(6 * n)
	gr := Run(g, reqs, Greedy{}, netsim.Model1, horizon)
	ntg := Run(g, reqs, NearestToGo{}, netsim.Model1, horizon)
	if ntg.Throughput() <= gr.Throughput() {
		t.Fatalf("expected NTG > greedy, got ntg=%d greedy=%d", ntg.Throughput(), gr.Throughput())
	}
}

func sortByArrival(reqs []grid.Request) {
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].Arrival < reqs[j-1].Arrival; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
}

func TestFurthestToGoIsWorse(t *testing.T) {
	n := 16
	g := grid.Line(n, 1, 1)
	var reqs []grid.Request
	for v := 0; v < n-1; v++ {
		reqs = append(reqs, grid.Request{ID: v, Src: grid.Vec{v}, Dst: grid.Vec{v + 1}, Arrival: 0, Deadline: grid.InfDeadline})
	}
	reqs = append(reqs, grid.Request{ID: n, Src: grid.Vec{0}, Dst: grid.Vec{n - 1}, Arrival: 0, Deadline: grid.InfDeadline})
	ntg := Run(g, reqs, NearestToGo{}, netsim.Model1, int64(4*n))
	ftg := Run(g, reqs, FurthestToGo{}, netsim.Model1, int64(4*n))
	if ntg.Throughput() < ftg.Throughput() {
		t.Fatalf("ntg=%d < ftg=%d", ntg.Throughput(), ftg.Throughput())
	}
}

func TestDimensionOrderOn2D(t *testing.T) {
	g := grid.New([]int{5, 5}, 2, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0, 0}, Dst: grid.Vec{4, 4}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0, 2}, Dst: grid.Vec{3, 4}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	res := Run(g, reqs, NearestToGo{}, netsim.Model1, 40)
	if res.Throughput() != 2 {
		t.Fatalf("2-d NTG throughput = %d, want 2", res.Throughput())
	}
}

// Prop. 12 spot check: on a bufferless line NTG delivers the offline
// optimum. Here the optimum is 2: the two short packets (the long one
// collides with both and any schedule keeps at most... in fact OPT serves
// the two shorts plus the long behind them = 3; NTG achieves 3 too).
func TestNTGBufferlessLine(t *testing.T) {
	g := grid.Line(8, 0, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{7}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{3}, Dst: grid.Vec{4}, Arrival: 3, Deadline: grid.InfDeadline},
		{ID: 2, Src: grid.Vec{5}, Dst: grid.Vec{6}, Arrival: 5, Deadline: grid.InfDeadline},
	}
	res := Run(g, reqs, NearestToGo{}, netsim.Model1, 40)
	// The long packet reaches node 3 at t=3 and node 5 at t=5, exactly when
	// the shorts are injected; NTG preference drops the long packet at the
	// first conflict (it has 4 to go vs 1).
	if res.Throughput() != 2 {
		t.Fatalf("bufferless NTG throughput = %d, want 2", res.Throughput())
	}
}

func TestPolicyNames(t *testing.T) {
	if (Greedy{}).Name() != "greedy" || (NearestToGo{}).Name() != "nearest-to-go" || (FurthestToGo{}).Name() != "furthest-to-go" {
		t.Fatal("names changed; Table 1 harness keys on them")
	}
}
