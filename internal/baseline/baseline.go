// Package baseline implements the comparison algorithms of Table 1 of
// Even–Medina: the greedy policy (whose competitive ratio on lines is
// Ω(√n) for B ≥ 2 [AKOR03]) and the nearest-to-go policy (optimal on
// bufferless lines, Prop. 12; Θ̃(n^{2/3})-competitive on uni-directional
// 2-dimensional grids with one-bend routing [AKK09]).
//
// Both are local policies executed by the netsim policy engine: packets are
// always injected and compete for links and buffers by priority; on grids
// they follow dimension-order (one-bend, for d = 2) routes.
package baseline

import (
	"gridroute/internal/grid"
	"gridroute/internal/netsim"
)

// dimensionOrder picks the first axis along which the packet still has to
// travel: one-bend routing on 2-d grids, e-cube routing in general.
func dimensionOrder(g *grid.Grid, p *netsim.Packet) int {
	for a := 0; a < g.D(); a++ {
		if p.Pos[a] < p.Req.Dst[a] {
			return a
		}
	}
	return -1
}

// Greedy is the FIFO greedy policy: all packets are injected, oldest packet
// first on every contended resource.
type Greedy struct{}

// Name implements netsim.Policy.
func (Greedy) Name() string { return "greedy" }

// Priority implements netsim.Policy: first-in, first-out.
func (Greedy) Priority(p *netsim.Packet, now int64) int64 { return p.InjectedAt }

// NextAxis implements netsim.Policy.
func (Greedy) NextAxis(g *grid.Grid, p *netsim.Packet) int { return dimensionOrder(g, p) }

// NearestToGo prefers the packet with the least remaining distance
// ([AKOR03]; the detailed-routing interval packing of Sec. 5.2.1 "is, in
// fact, a nearest-to-go routing policy").
type NearestToGo struct{}

// Name implements netsim.Policy.
func (NearestToGo) Name() string { return "nearest-to-go" }

// Priority implements netsim.Policy: remaining L1 distance, FIFO tie-break
// via injection time in the low bits.
func (NearestToGo) Priority(p *netsim.Packet, now int64) int64 {
	rem := int64(0)
	for a := range p.Pos {
		rem += int64(p.Req.Dst[a] - p.Pos[a])
	}
	return rem<<20 | (p.InjectedAt & 0xfffff)
}

// NextAxis implements netsim.Policy.
func (NearestToGo) NextAxis(g *grid.Grid, p *netsim.Packet) int { return dimensionOrder(g, p) }

// FurthestToGo is the pessimal twin of NearestToGo; it exists for ablations.
type FurthestToGo struct{}

// Name implements netsim.Policy.
func (FurthestToGo) Name() string { return "furthest-to-go" }

// Priority implements netsim.Policy.
func (FurthestToGo) Priority(p *netsim.Packet, now int64) int64 {
	rem := int64(0)
	for a := range p.Pos {
		rem += int64(p.Req.Dst[a] - p.Pos[a])
	}
	return -rem
}

// NextAxis implements netsim.Policy.
func (FurthestToGo) NextAxis(g *grid.Grid, p *netsim.Packet) int { return dimensionOrder(g, p) }

// Run executes a policy on a workload and returns the simulation result.
func Run(g *grid.Grid, reqs []grid.Request, pol netsim.Policy, model netsim.Model, horizon int64) *netsim.Result {
	return netsim.RunLocal(g, reqs, pol, model, horizon)
}
