package core

import (
	"math/rand"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
)

func TestRandParamsRegimes(t *testing.T) {
	// n = 256 → log n = 8.
	cases := []struct {
		b, c   int
		regime Regime
	}{
		{1, 1, RegimeSmall},
		{8, 8, RegimeSmall},
		{3, 5, RegimeSmall},
		{256, 2, RegimeLargeBuffers},
		{1024, 8, RegimeLargeBuffers},
		{1, 64, RegimeLargeCapacity},
		{8, 1024, RegimeLargeCapacity},
	}
	for _, cse := range cases {
		g := grid.Line(256, cse.b, cse.c)
		reg, tau, q, err := randParams(g)
		if err != nil {
			t.Fatalf("B=%d c=%d: %v", cse.b, cse.c, err)
		}
		if reg != cse.regime {
			t.Errorf("B=%d c=%d: regime %v, want %v", cse.b, cse.c, reg, cse.regime)
		}
		if tau < 1 || q < 1 {
			t.Errorf("B=%d c=%d: bad sides τ=%d Q=%d", cse.b, cse.c, tau, q)
		}
	}
	// Both large → error pointing at Thm 13.
	g := grid.Line(256, 64, 64)
	if _, _, _, err := randParams(g); err == nil {
		t.Fatal("B,c ≥ log n should be routed to Theorem 13")
	}
}

// Prop. 16 (1): τ + Q = O(log n) in the small regime.
func TestProp16TileSides(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		for _, bc := range [][2]int{{1, 1}, {2, 3}, {1, 8}, {5, 5}} {
			g := grid.Line(n, bc[0], bc[1])
			reg, tau, q, err := randParams(g)
			if err != nil || reg != RegimeSmall {
				continue
			}
			l := 1
			for 1<<l < n {
				l++
			}
			if tau+q > 8*l+8 {
				t.Errorf("n=%d B=%d c=%d: τ+Q = %d too large vs log n = %d", n, bc[0], bc[1], tau+q, l)
			}
			// Prop 16 (2): sketch capacities ≥ log n (up to the even rounding).
			if tau*bc[1] < l && q*bc[0] < l {
				t.Errorf("n=%d B=%d c=%d: both sketch caps below log n", n, bc[0], bc[1])
			}
		}
	}
}

func runRand(t *testing.T, g *grid.Grid, reqs []grid.Request, cfg RandConfig, seed int64) *RandResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	res, err := RunRandomized(g, reqs, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies != 0 {
		t.Fatalf("anomalies: %d (injection is non-preemptive; must be 0)", res.Anomalies)
	}
	// Non-preemptive: injected ⇒ delivered.
	if res.Injected != res.Throughput {
		t.Fatalf("injected %d != delivered %d (non-preemption violated)", res.Injected, res.Throughput)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("replay violations: %v", rep.Violation[0])
	}
	if rep.Throughput() != res.Throughput {
		t.Fatalf("replay throughput %d != %d", rep.Throughput(), res.Throughput)
	}
	return res
}

func TestRandomizedFarBranchB1C1(t *testing.T) {
	g := grid.Line(64, 1, 1)
	rng := rand.New(rand.NewSource(7))
	reqs := scenario.Uniform(g, 600, 128, rng)
	res := runRand(t, g, reqs, RandConfig{Gamma: 0.5, Branch: 1}, 1)
	if res.Regime != RegimeSmall {
		t.Fatalf("regime %v", res.Regime)
	}
	if res.IPPAccepted == 0 {
		t.Fatal("ipp accepted nothing")
	}
	if res.Throughput == 0 {
		t.Fatal("no Far+ throughput (engineering γ should let packets through)")
	}
	// Pipeline chain must be monotone.
	if !(res.Throughput <= res.LoadSurvived && res.LoadSurvived <= res.CoinSurvived && res.CoinSurvived <= res.IPPAccepted) {
		t.Fatalf("pipeline chain broken: %d ≤ %d ≤ %d ≤ %d", res.Throughput, res.LoadSurvived, res.CoinSurvived, res.IPPAccepted)
	}
}

func TestRandomizedNearBranch(t *testing.T) {
	g := grid.Line(64, 2, 2)
	rng := rand.New(rand.NewSource(8))
	reqs := scenario.Uniform(g, 400, 128, rng)
	res := runRand(t, g, reqs, RandConfig{Branch: 2}, 2)
	if res.NearTotal == 0 {
		t.Skip("no near requests drawn (possible with unlucky shifts)")
	}
	if res.Throughput == 0 {
		t.Fatal("near branch should deliver something")
	}
	// Near deliveries take the direct route: delivery time = arrival + dist.
	for i, o := range res.Outcomes {
		if o.Delivered {
			want := reqs[i].Arrival + int64(g.Dist(reqs[i].Src, reqs[i].Dst))
			if o.DeliveredAt != want {
				t.Fatalf("near req %d delivered at %d, want %d", i, o.DeliveredAt, want)
			}
		}
	}
}

func TestRandomizedFairCoin(t *testing.T) {
	g := grid.Line(64, 1, 1)
	rng := rand.New(rand.NewSource(9))
	reqs := scenario.Uniform(g, 300, 64, rng)
	far, near := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		res := runRand(t, g, reqs, RandConfig{Gamma: 0.5}, seed)
		if res.FarBranch {
			far++
		} else {
			near++
		}
	}
	if far == 0 || near == 0 {
		t.Fatalf("coin never flips: far=%d near=%d", far, near)
	}
}

func TestRandomizedLargeBuffers(t *testing.T) {
	// n=64 → log n = 6; B = 64, c = 1 → B/c = 64 ≥ log n.
	g := grid.Line(64, 64, 1)
	rng := rand.New(rand.NewSource(10))
	reqs := scenario.Uniform(g, 400, 128, rng)
	res := runRand(t, g, reqs, RandConfig{Gamma: 0.5, Branch: 1}, 3)
	if res.Regime != RegimeLargeBuffers {
		t.Fatalf("regime %v, want large-buffers", res.Regime)
	}
	if res.Throughput == 0 {
		t.Fatal("no throughput in the large-buffer regime")
	}
}

func TestRandomizedLargeCapacity(t *testing.T) {
	// n=64 → log n = 6; B = 2, c = 64.
	g := grid.Line(64, 2, 64)
	rng := rand.New(rand.NewSource(11))
	reqs := scenario.Saturating(g, 8, 4, rng)
	res := runRand(t, g, reqs, RandConfig{Gamma: 0.5, Branch: 1}, 4)
	if res.Regime != RegimeLargeCapacity {
		t.Fatalf("regime %v, want large-capacity", res.Regime)
	}
	if res.Throughput == 0 {
		t.Fatal("no throughput in the large-capacity regime")
	}
}

func TestRandomizedRejectsDeadlines(t *testing.T) {
	g := grid.Line(32, 1, 1)
	reqs := []grid.Request{{Src: grid.Vec{0}, Dst: grid.Vec{5}, Arrival: 0, Deadline: 10}}
	if _, err := RunRandomized(g, reqs, RandConfig{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("deadlines are out of scope for the randomized algorithm")
	}
}

func TestRandomizedRejects2D(t *testing.T) {
	g := grid.New([]int{4, 4}, 1, 1)
	if _, err := RunRandomized(g, nil, RandConfig{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("d=2 must be rejected")
	}
}

// Faithful-γ smoke test: with γ=200 almost everything is sparsified away,
// but the run must stay sound (chain monotone, replay clean).
func TestRandomizedFaithfulGamma(t *testing.T) {
	g := grid.Line(64, 1, 1)
	rng := rand.New(rand.NewSource(12))
	reqs := scenario.Uniform(g, 500, 64, rng)
	res := runRand(t, g, reqs, RandConfig{Branch: 1}, 5)
	if res.Lambda <= 0 || res.Lambda > 0.01 {
		t.Fatalf("faithful λ = %v out of range", res.Lambda)
	}
	if res.CoinSurvived > res.IPPAccepted {
		t.Fatal("chain broken")
	}
}

// Prop. 17 ingredient: over many random shifts, the Far⁺ fraction of far
// requests is near the expected 1/4 in the small regime.
func TestFarPlusFractionNearQuarter(t *testing.T) {
	g := grid.Line(128, 2, 2)
	rng := rand.New(rand.NewSource(13))
	reqs := scenario.Uniform(g, 500, 256, rng)
	totFar, totFarPlus := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		res := runRand(t, g, reqs, RandConfig{Gamma: 0.5, Branch: 1}, seed)
		totFar += res.FarTotal
		totFarPlus += res.FarPlusTotal
	}
	frac := float64(totFarPlus) / float64(totFar)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("Far+ fraction = %.3f, expected ≈ 0.25", frac)
	}
}
