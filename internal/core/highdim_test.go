package core

import (
	"math/rand"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/scenario"
)

// Theorem 10 is stated for every constant d; exercise d = 3 end to end.
func TestDetGrid3D(t *testing.T) {
	g := grid.New([]int{5, 5, 5}, 3, 3)
	rng := rand.New(rand.NewSource(31))
	reqs := scenario.Uniform(g, 150, 32, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("3-d replay violations: %v", rep.Violation[0])
	}
	if res.Throughput == 0 {
		t.Fatal("no 3-d throughput")
	}
	if rep.Throughput() != res.Throughput {
		t.Fatalf("replay %d != reported %d", rep.Throughput(), res.Throughput)
	}
}

// The {1, d+1, ∞} interior capacity must scale with d (Sec. 6 item 4):
// check through the end-to-end admission behaviour on a d = 2 instance
// where three paths share one tile.
func TestDet2DInteriorCapacity(t *testing.T) {
	g := grid.New([]int{9, 9}, 3, 3)
	rng := rand.New(rand.NewSource(32))
	reqs := scenario.Hotspot(g, 120, 24, 0.34, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoad > res.LoadBound+1e-9 {
		t.Fatalf("load %v > bound %v", res.MaxLoad, res.LoadBound)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("violations: %v", rep.Violation[0])
	}
}

// Bufferless 2-d grids (Thm 11): schedules must never hold, and the
// algorithm must still deliver under contention.
func TestDetBufferless2D(t *testing.T) {
	g := grid.New([]int{8, 8}, 0, 3)
	rng := rand.New(rand.NewSource(33))
	reqs := scenario.Uniform(g, 120, 32, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Schedules {
		if s == nil {
			continue
		}
		for _, m := range s.Moves {
			if m < 0 {
				t.Fatal("bufferless 2-d schedule holds a packet")
			}
		}
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("violations: %v", rep.Violation[0])
	}
	if res.Throughput == 0 {
		t.Fatal("no bufferless 2-d throughput")
	}
}

// Rectangular (non-square) grids: ℓ1 ≠ ℓ2 exercises the indexing and
// diameter arithmetic throughout the stack.
func TestDetRectangularGrid(t *testing.T) {
	g := grid.New([]int{16, 4}, 3, 3)
	rng := rand.New(rand.NewSource(34))
	reqs := scenario.Uniform(g, 100, 32, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("violations: %v", rep.Violation[0])
	}
}

// Deterministic runs are reproducible: same inputs, same outputs.
func TestDetDeterminism(t *testing.T) {
	g := grid.Line(40, 3, 3)
	reqs := scenario.Uniform(g, 150, 64, rand.New(rand.NewSource(35)))
	a, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Admitted != b.Admitted {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a.Throughput, a.Admitted, b.Throughput, b.Admitted)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs", i)
		}
	}
}

// Randomized runs with the same seed are reproducible too.
func TestRandDeterminismPerSeed(t *testing.T) {
	g := grid.Line(48, 1, 1)
	reqs := scenario.Uniform(g, 200, 64, rand.New(rand.NewSource(36)))
	run := func() int {
		res, err := RunRandomized(g, reqs, RandConfig{Gamma: 0.5}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	if run() != run() {
		t.Fatal("same seed must reproduce")
	}
}

// Empty and singleton workloads must not trip any machinery.
func TestDegenerateWorkloads(t *testing.T) {
	g := grid.Line(16, 3, 3)
	res, err := RunDeterministic(g, nil, DetConfig{})
	if err != nil || res.Throughput != 0 {
		t.Fatalf("empty workload: %v tp=%d", err, res.Throughput)
	}
	one := []grid.Request{{Src: grid.Vec{0}, Dst: grid.Vec{15}, Arrival: 0, Deadline: grid.InfDeadline}}
	res, err = RunDeterministic(g, one, DetConfig{})
	if err != nil || res.Throughput != 1 {
		t.Fatalf("singleton should be delivered: %v tp=%d", err, res.Throughput)
	}
}
