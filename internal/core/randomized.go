package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gridroute/internal/dense"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// Regime identifies which parameter regime of Table 2 a randomized run uses.
type Regime int

const (
	// RegimeSmall is B, c ∈ [1, log n] (Sec. 7.3–7.6).
	RegimeSmall Regime = iota
	// RegimeLargeBuffers is log n ≤ B/c ≤ n^{O(1)} (Sec. 7.7): τ = B/c, Q = 1.
	RegimeLargeBuffers
	// RegimeLargeCapacity is B ≤ log n ≤ c (Sec. 7.8): τ = 1, Q = log n/B.
	RegimeLargeCapacity
)

func (r Regime) String() string {
	switch r {
	case RegimeLargeBuffers:
		return "large-buffers"
	case RegimeLargeCapacity:
		return "large-capacity"
	default:
		return "small"
	}
}

// RandConfig tunes the randomized line algorithm. The zero value follows the
// paper's constants.
type RandConfig struct {
	Horizon int64
	// Gamma is the sparsification constant γ in λ = 1/(γ·k); the paper's
	// proof uses γ = 200, which is hopeless on laptop-scale instances, so
	// experiments may run an "engineering mode" with a small γ (E13
	// ablation). 0 means 200.
	Gamma float64
	// LoadCap is the sketch-edge admission threshold of Step 3 (paper: ¼).
	// 0 means 0.25.
	LoadCap float64
	// Branch forces the classify-and-select coin: 0 = fair coin, 1 = Far⁺
	// branch, 2 = Near branch. Used by tests and the decomposition bench.
	Branch int
}

// RandClass classifies a request under the drawn tiling.
type RandClass int

const (
	// ClassNear requests can be served inside their own tile.
	ClassNear RandClass = iota
	// ClassFar requests whose tile has no copy of their destination.
	ClassFar
	// ClassFarPlus are Far requests whose source lies in the SW quadrant.
	ClassFarPlus
)

// RandOutcome is the per-request result of the randomized algorithm.
type RandOutcome struct {
	Class       RandClass
	Admitted    bool // injected into the network
	Delivered   bool
	DeliveredAt int64
	// Stage records where a non-admitted request was rejected:
	// "branch", "prop14", "ipp", "coin", "load", "iroute", "near-busy".
	Stage string
}

// RandResult is the outcome of one randomized run.
type RandResult struct {
	Grid      *grid.Grid
	Horizon   int64
	Regime    Regime
	Tau, Q    int
	PhaseQ    int
	PhaseTau  int
	K         int
	Lambda    float64
	FarBranch bool

	Outcomes   []RandOutcome
	Schedules  []*spacetime.Schedule
	Throughput int

	// Pipeline counters (Sec. 7.4.3 chain algFar⁺ ⊆ ippλ¼ ⊆ ippλ ⊆ ipp(Far⁺)).
	NearTotal, FarTotal, FarPlusTotal int
	IPPAccepted                       int // |ipp(Far⁺|pmax)|
	CoinSurvived                      int // |ipp^λ|
	LoadSurvived                      int // |ipp^λ_{¼}|
	Injected                          int // |algFar⁺| or |algNear|
	// TXFailed counts T/X-routing constructions that failed (the packet is
	// then rejected pre-injection; measured empirically, the paper argues
	// this never happens given its quotas — see DESIGN.md §6).
	TXFailed int
	// Anomalies counts impossible states (must stay 0).
	Anomalies int
	MaxLoad   float64
}

// ceilDiv returns ⌈a/b⌉ for positive ints.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// evenAtLeast2 rounds x up to an even number ≥ 2.
func evenAtLeast2(x int) int {
	if x < 2 {
		return 2
	}
	if x%2 == 1 {
		return x + 1
	}
	return x
}

// randParams picks the regime and tile sides (Def. 15 and Secs. 7.7, 7.8).
func randParams(g *grid.Grid) (Regime, int, int, error) {
	n := g.N()
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	B, c := g.B, g.C
	switch {
	case B <= l && c <= l:
		var tau, q int
		if B*c < l {
			tau = evenAtLeast2(2 * ceilDiv(l, c))
			q = evenAtLeast2(2 * ceilDiv(l, B))
		} else {
			tau = evenAtLeast2(2 * B)
			q = evenAtLeast2(2 * c)
		}
		return RegimeSmall, tau, q, nil
	case c <= l: // B > log n: large buffers, needs B/c ≥ log n for the theorem
		tau := evenAtLeast2(B / c)
		return RegimeLargeBuffers, tau, 1, nil
	case B <= l: // c > log n
		q := evenAtLeast2(2 * ceilDiv(l, B))
		return RegimeLargeCapacity, 1, q, nil
	default:
		return 0, 0, 0, fmt.Errorf("core: B=%d, c=%d ≥ log n=%d: use RunLargeCapacity (Thm 13) instead", B, c, l)
	}
}

// occ tracks space-time edge occupancy for the non-preemptive detailed
// routing (capacities: c on the space axis, B on the w axis). Occupancy is a
// dense epoch-stamped array over the box's node×axis edge ids, so claims and
// probes are plain slice reads and a pooled occ is reusable across runs
// without reallocation.
type occ struct {
	box     *lattice.Box
	use     dense.Counts
	caps    [2]int
	journal []int32
}

// begin starts a claim transaction; rollback undoes claims made since.
func (o *occ) begin() { o.journal = o.journal[:0] }
func (o *occ) rollback() {
	for _, key := range o.journal {
		o.use.Add(int(key), -1)
	}
	o.journal = o.journal[:0]
}

func (o *occ) reset(box *lattice.Box, b, c int) {
	o.box = box
	o.caps = [2]int{c, b}
	o.use.Reset(box.Size() * 2)
	o.journal = o.journal[:0]
}

// runFree reports whether `steps` consecutive edges along axis starting at p
// all exist and have spare capacity.
func (o *occ) runFree(p []int, axis, steps int) bool {
	if steps <= 0 {
		return true
	}
	if o.caps[axis] <= 0 {
		return false
	}
	q := [2]int{p[0], p[1]}
	for s := 0; s < steps; s++ {
		if !o.box.Contains(q[:]) {
			return false
		}
		id := o.box.Index(q[:])
		if _, ok := o.box.Step(id, axis); !ok {
			return false
		}
		if o.use.Get(id*2+axis) >= o.caps[axis] {
			return false
		}
		q[axis]++
	}
	return true
}

// claimRun claims the run (must be checked first) and appends the moves.
func (o *occ) claimRun(p []int, axis, steps int, moves *[]uint8) {
	q := [2]int{p[0], p[1]}
	for s := 0; s < steps; s++ {
		id := o.box.Index(q[:])
		o.use.Add(id*2+axis, 1)
		o.journal = append(o.journal, int32(id*2+axis))
		q[axis]++
		*moves = append(*moves, uint8(axis))
	}
	p[0], p[1] = q[0], q[1]
}

// RunRandomized executes the Sec. 7 randomized algorithm on a
// uni-directional line. Requests must be sorted by arrival.
func RunRandomized(g *grid.Grid, reqs []grid.Request, cfg RandConfig, rng *rand.Rand) (*RandResult, error) {
	if g.D() != 1 {
		return nil, fmt.Errorf("core: the randomized algorithm is defined for lines (d=1); got d=%d", g.D())
	}
	if g.B < 0 || g.C < 1 {
		return nil, fmt.Errorf("core: need B ≥ 0, c ≥ 1")
	}
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		return nil, fmt.Errorf("core: invalid request at index %d", i)
	}
	for i := range reqs {
		if reqs[i].HasDeadline() {
			return nil, fmt.Errorf("core: the randomized algorithm handles requests without deadlines (req %d has one)", i)
		}
	}

	regime, tau, q, err := randParams(g)
	if err != nil {
		return nil, err
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = spacetime.SuggestHorizon(g, reqs, 3)
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 200
	}
	loadCap := cfg.LoadCap
	if loadCap == 0 {
		loadCap = 0.25
	}

	pmax := 4 * g.N()
	k := ipp.K(pmax)
	lambda := 1 / (gamma * float64(k))

	st := spacetime.New(g, horizon)
	phaseQ := rng.Intn(q)
	phaseTau := rng.Intn(tau)
	tl := tiling.New(st.Box, []int{q, tau}, []int{phaseQ, phaseTau})
	sk := sketch.New(st, tl, sketch.Raw)

	res := &RandResult{
		Grid: g, Horizon: horizon, Regime: regime,
		Tau: tau, Q: q, PhaseQ: phaseQ, PhaseTau: phaseTau,
		K: k, Lambda: lambda,
		Outcomes:  make([]RandOutcome, len(reqs)),
		Schedules: make([]*spacetime.Schedule, len(reqs)),
	}

	// Quadrant geometry per regime: the SW region is [0,xCut)×[0,wCut) in
	// tile offsets. Crossing constraints (Fig. 9 invariants: exit north at
	// w ≥ wMid, east at x ≥ xMid) are tracked separately because in the
	// degenerate regimes one axis has no split at all.
	var xCut, wCut int     // SW-region membership bounds
	var xCross, wCross int // minimum offsets for east/north crossings
	switch regime {
	case RegimeSmall:
		xCut, wCut = q/2, tau/2
		xCross, wCross = q/2, tau/2
	case RegimeLargeBuffers: // left half of a 1-row tile; no x split
		xCut, wCut = q, tau/2
		xCross, wCross = 0, tau/2
	default: // RegimeLargeCapacity: lower half of a 1-column tile; no w split
		xCut, wCut = q/2, tau
		xCross, wCross = q/2, 0
	}

	// Classification.
	srcPts := make([][]int, len(reqs))
	for i := range reqs {
		r := &reqs[i]
		p := st.SourcePoint(r)
		srcPts[i] = p
		tc := tl.TileOf(p, nil)
		off := tl.Offset(p, nil)
		dstTileRow := lattice.FloorDiv(r.Dst[0]-phaseQ, q)
		o := &res.Outcomes[i]
		if dstTileRow == tc[0] {
			o.Class = ClassNear
			res.NearTotal++
			continue
		}
		res.FarTotal++
		o.Class = ClassFar
		if off[0] < xCut && off[1] < wCut {
			o.Class = ClassFarPlus
			res.FarPlusTotal++
		}
	}

	// Classify-and-select coin.
	switch cfg.Branch {
	case 1:
		res.FarBranch = true
	case 2:
		res.FarBranch = false
	default:
		res.FarBranch = rng.Intn(2) == 1
	}

	// All per-run routing state (occupancy, lanes, quotas, sparsified flows)
	// is dense epoch-stamped arrays drawn from a pool, so repeated runs
	// (sweeps, retries) reallocate nothing once warm.
	scratch := randScratchPool.Get().(*randScratch)
	defer randScratchPool.Put(scratch)
	occupancy := &scratch.occ
	occupancy.reset(st.Box, g.B, g.C)

	// Prop. 14: at each (node, time) only the B+c closest requests compete.
	// planeOf[i] is the per-source arrival index of request i.
	planeOf := make([]int, len(reqs))
	{
		type key struct {
			node int
			t    int64
		}
		seen := make(map[key][]int)
		for i := range reqs {
			kk := key{g.Index(reqs[i].Src), reqs[i].Arrival}
			seen[kk] = append(seen[kk], i)
		}
		for _, idxs := range seen {
			// Keep the B+c with closest destinations (Prop. 14).
			lim := g.B + g.C
			if len(idxs) > lim {
				// Select by distance.
				ord := append([]int(nil), idxs...)
				for a := 1; a < len(ord); a++ {
					for b := a; b > 0; b-- {
						da := reqs[ord[b]].Dst[0] - reqs[ord[b]].Src[0]
						db := reqs[ord[b-1]].Dst[0] - reqs[ord[b-1]].Src[0]
						if da < db {
							ord[b], ord[b-1] = ord[b-1], ord[b]
						} else {
							break
						}
					}
				}
				for _, j := range ord[lim:] {
					planeOf[j] = -1
				}
				idxs = ord[:lim]
			}
			for p, j := range idxs {
				if planeOf[j] != -1 {
					planeOf[j] = p
				}
			}
		}
	}

	if res.FarBranch {
		rt := &randFarRouter{
			res: res, st: st, tl: tl, sk: sk, occ: occupancy,
			xCut: xCut, wCut: wCut, xCross: xCross, wCross: wCross, regime: regime,
			pk:      ipp.NewDense(pmax, sk.Cap, sk.Universe()),
			planes:  g.B + g.C,
			flowLam: &scratch.flowLam, lanesH: &scratch.lanesH,
			lanesV: &scratch.lanesV, quota: &scratch.quota,
		}
		tiles := tl.TBox.Size()
		rt.flowLam.Reset(sk.Universe())
		rt.quota.Reset(tiles * 2)
		// Lane tables are only sized for the I-routing directions the regime
		// can use (7.7 routes only horizontally, 7.8 only vertically); the
		// unused table stays empty and is never indexed.
		if regime != RegimeLargeCapacity {
			rt.lanesH.Reset(tiles * rt.planes * tl.Side[0])
		}
		if regime != RegimeLargeBuffers {
			rt.lanesV.Reset(tiles * rt.planes * tl.Side[1])
		}
		cs := sk.RawCap(0)
		if w := sk.RawCap(1); w < cs {
			cs = w
		}
		rt.quotaMax = cs / 4
		if rt.quotaMax < 1 {
			rt.quotaMax = 1
		}
		for i := range reqs {
			o := &res.Outcomes[i]
			if o.Class != ClassFarPlus {
				o.Stage = "branch"
				continue
			}
			if planeOf[i] < 0 {
				o.Stage = "prop14"
				continue
			}
			rt.handle(i, &reqs[i], srcPts[i], planeOf[i], lambda, loadCap, rng)
		}
		res.MaxLoad = rt.pk.MaxLoad()
	} else {
		// Near branch: greedy vertical routing inside the tile (Sec. 7.5).
		for i := range reqs {
			o := &res.Outcomes[i]
			if o.Class != ClassNear {
				o.Stage = "branch"
				continue
			}
			if planeOf[i] < 0 {
				o.Stage = "prop14"
				continue
			}
			r := &reqs[i]
			p := srcPts[i]
			steps := r.Dst[0] - r.Src[0]
			if steps == 0 {
				res.deliver(i, r, p, nil, st)
				continue
			}
			if !occupancy.runFree(p, 0, steps) {
				o.Stage = "near-busy"
				continue
			}
			var moves []uint8
			pp := append([]int(nil), p...)
			occupancy.claimRun(pp, 0, steps, &moves)
			res.Injected++
			res.deliver(i, r, p, moves, st)
		}
	}

	return res, nil
}

// deliver finalizes a successful request: records the schedule and outcome.
func (res *RandResult) deliver(i int, r *grid.Request, start []int, moves []uint8, st *spacetime.Graph) {
	path := &lattice.Path{Start: append([]int(nil), start...), Axes: moves}
	s := st.PathToSchedule(r, path)
	res.Schedules[i] = s
	_, endT := s.EndState()
	res.Outcomes[i].Admitted = true
	res.Outcomes[i].Delivered = true
	res.Outcomes[i].DeliveredAt = endT
	res.Throughput++
}

// randScratch is the pooled per-run dense state of the randomized algorithm.
type randScratch struct {
	occ     occ
	flowLam dense.Counts // post-sparsification flows per sketch edge (Step 3)
	lanesH  dense.Counts // horizontal I-routing lanes: (tile·planes+plane)·q + xOffset
	lanesV  dense.Counts // vertical I-routing lanes: (tile·planes+plane)·τ + wOffset
	quota   dense.Counts // SW-exit quotas (invariant 6): tile·2 + side (0 north, 1 east)
}

var randScratchPool = sync.Pool{New: func() any { return new(randScratch) }}

// randFarRouter holds the Far⁺ pipeline state (Algorithm 2).
type randFarRouter struct {
	res    *RandResult
	st     *spacetime.Graph
	tl     *tiling.Tiling
	sk     *sketch.Graph
	occ    *occ
	pk     *ipp.Packer
	regime Regime

	xCut, wCut     int
	xCross, wCross int
	quotaMax       int
	planes         int // I-routing planes per tile (B + c)

	flowLam *dense.Counts
	lanesH  *dense.Counts
	lanesV  *dense.Counts
	quota   *dense.Counts
}

func (rt *randFarRouter) handle(i int, r *grid.Request, src []int, plane int, lambda, loadCap float64, rng *rand.Rand) {
	o := &rt.res.Outcomes[i]
	// Step 1: online integral path packing over the sketch graph.
	wLo, wHi := rt.st.DestRay(r)
	route := rt.sk.LightestRoute(rt.pk, src, r.Dst, wLo, wHi, rt.pk.PMax())
	if route == nil || !rt.pk.Offer(route.Edges, route.Cost) {
		o.Stage = "ipp"
		return
	}
	rt.res.IPPAccepted++

	// Step 2: random sparsification.
	if rng.Float64() >= lambda {
		o.Stage = "coin"
		return
	}
	rt.res.CoinSurvived++

	// Step 3: ¼-load admission on every sketch edge of the path.
	for _, e := range route.Edges {
		if float64(rt.flowLam.Get(int(e))+1)/rt.sk.Cap(e) >= loadCap {
			o.Stage = "load"
			return
		}
	}
	for _, e := range route.Edges {
		rt.flowLam.Add(int(e), 1)
	}
	rt.res.LoadSurvived++

	// Step 4: I-routing out of the SW region, then T/X-routing tile by tile.
	path, ok := rt.detailedRoute(r, src, route, plane)
	if !ok {
		o.Stage = "iroute"
		return
	}
	rt.res.Injected++
	rt.res.deliver(i, r, src, path, rt.st)
}

// detailedRoute builds the full space-time path. It returns ok=false only
// for I-routing failures (pre-injection); failures after injection violate
// the paper's guarantee and increment Anomalies.
func (rt *randFarRouter) detailedRoute(r *grid.Request, src []int, route *sketch.Route, plane int) ([]uint8, bool) {
	tl := rt.tl
	org := tl.Origin(tl.TileOf(src, nil), nil)
	var moves []uint8
	p := append([]int(nil), src...)
	tile0 := route.Tiles[0]

	// --- I-routing (Sec. 7.4.2): straight out of the SW region. ---
	// Planes 0..B-1 route horizontally (buffer, w axis); planes B..B+c-1
	// vertically (links, x axis). Regimes 7.7/7.8 only use one direction.
	var horizontal bool
	switch rt.regime {
	case RegimeLargeBuffers:
		horizontal = true
	case RegimeLargeCapacity:
		if plane >= (3*rt.occ.caps[0])/4 { // first ¾·c go vertically
			return nil, false
		}
		horizontal = false
	default:
		horizontal = plane < rt.occ.caps[1] // caps[1] = B
	}
	if horizontal && rt.occ.caps[1] == 0 {
		return nil, false
	}
	var lanes *dense.Counts
	var laneIdx, quotaIdx, steps int
	if horizontal {
		lanes = rt.lanesH
		laneIdx = (tile0*rt.planes+plane)*rt.tl.Side[0] + (p[0] - org[0])
		quotaIdx = tile0*2 + 1 // east side
		steps = org[1] + rt.wCut - p[1]
	} else {
		lanes = rt.lanesV
		laneIdx = (tile0*rt.planes+plane)*rt.tl.Side[1] + (p[1] - org[1])
		quotaIdx = tile0 * 2 // north side
		steps = org[0] + rt.xCut - p[0]
	}
	if lanes.Get(laneIdx) != 0 {
		return nil, false
	}
	if rt.quota.Get(quotaIdx) >= rt.quotaMax {
		return nil, false
	}
	axis := 0
	if horizontal {
		axis = 1
	}
	// The algorithm is centralized: the entire detailed path is constructed
	// (and capacity claimed) at arrival time, so a packet is injected only
	// when its full route exists — non-preemption holds by construction.
	// Claims are transactional so a failed construction leaves no phantom
	// capacity behind.
	rt.occ.begin()
	if !rt.occ.runFree(p, axis, steps) {
		return nil, false
	}
	rt.occ.claimRun(p, axis, steps, &moves)

	ok := true
	for ti := 0; ok && ti+1 < len(route.Tiles); ti++ {
		exitAxis := int(route.Axes[ti])
		tc := rt.sk.TileCoords(route.Tiles[ti], nil)
		torg := tl.Origin(tc, nil)
		ok = rt.crossTile(p, torg, exitAxis, &moves)
	}
	if ok {
		// Last tile: straight north to the destination row.
		lastTC := rt.sk.TileCoords(route.Tiles[len(route.Tiles)-1], nil)
		lastOrg := tl.Origin(lastTC, nil)
		ok = rt.finishInTile(p, lastOrg, r.Dst[0], &moves)
	}
	if !ok {
		rt.occ.rollback()
		rt.res.TXFailed++
		return nil, false
	}
	lanes.Add(laneIdx, 1)
	rt.quota.Add(quotaIdx, 1)
	return moves, true
}

// bendRun claims an east-run of `east` steps followed by a north-run of
// `north` steps from p when both are free, advancing p and appending moves.
func (rt *randFarRouter) bendRun(p []int, east, north int, moves *[]uint8) bool {
	if !rt.occ.runFree(p, 1, east) {
		return false
	}
	probe := []int{p[0], p[1] + east}
	if !rt.occ.runFree(probe, 0, north) {
		return false
	}
	rt.occ.claimRun(p, 1, east, moves)
	rt.occ.claimRun(p, 0, north, moves)
	return true
}

// bendRunNE is the transposed variant: north first, then east.
func (rt *randFarRouter) bendRunNE(p []int, north, east int, moves *[]uint8) bool {
	if !rt.occ.runFree(p, 0, north) {
		return false
	}
	probe := []int{p[0] + north, p[1]}
	if !rt.occ.runFree(probe, 1, east) {
		return false
	}
	rt.occ.claimRun(p, 0, north, moves)
	rt.occ.claimRun(p, 1, east, moves)
	return true
}

// toNE implements the T-routing stage (Sec. 7.4.2, Fig. 9): a packet in the
// SE quadrant exits through the quadrant's north side (bending east to a
// free column first), a packet in the NW quadrant exits through its east
// side (bending north to a free row first). On success p lies in the NE
// quadrant.
func (rt *randFarRouter) toNE(p []int, torg []int, moves *[]uint8) bool {
	qSide, tSide := rt.tl.Side[0], rt.tl.Side[1]
	xMid := torg[0] + rt.xCross
	wMid := torg[1] + rt.wCross
	if p[0] < xMid {
		// SE quadrant (south/west entrants): travel east until a column
		// with a non-saturated vertical path to the quadrant's north side.
		start := p[1]
		if start < wMid {
			start = wMid
		}
		for wc := start; wc < torg[1]+tSide; wc++ {
			if rt.bendRun(p, wc-p[1], xMid-p[0], moves) {
				return true
			}
		}
		return false
	}
	if p[1] < wMid {
		// NW quadrant: travel north until a row with a free east path to
		// the quadrant's east side.
		for xr := p[0]; xr < torg[0]+qSide; xr++ {
			if rt.bendRunNE(p, xr-p[0], wMid-p[1], moves) {
				return true
			}
		}
		return false
	}
	return true // already in NE
}

// crossTile routes from p (inside the tile at torg) across the tile
// boundary along exitAxis: first T-routing into the NE quadrant, then
// X-routing out of it. Exits keep the Fig. 9 invariants: north crossings at
// w ≥ wMid, east crossings at x ≥ xMid.
func (rt *randFarRouter) crossTile(p []int, torg []int, exitAxis int, moves *[]uint8) bool {
	qSide, tSide := rt.tl.Side[0], rt.tl.Side[1]
	if !rt.toNE(p, torg, moves) {
		return false
	}
	if exitAxis == 0 {
		// X-routing, north exit: straight north when the column is free,
		// otherwise shift east to a free column first.
		for wc := p[1]; wc < torg[1]+tSide; wc++ {
			if rt.bendRun(p, wc-p[1], torg[0]+qSide-p[0], moves) {
				return true
			}
		}
		return false
	}
	// X-routing, east exit: straight east when the row is free, otherwise
	// shift north to a free row first.
	for xr := p[0]; xr < torg[0]+qSide; xr++ {
		if rt.bendRunNE(p, xr-p[0], torg[1]+tSide-p[1], moves) {
			return true
		}
	}
	return false
}

// finishInTile routes from p to the destination row b inside the last tile:
// straight north, shifting east to a free column when contended.
func (rt *randFarRouter) finishInTile(p []int, torg []int, b int, moves *[]uint8) bool {
	if p[0] > b {
		return false
	}
	if p[0] == b {
		return true
	}
	tSide := rt.tl.Side[1]
	for wc := p[1]; wc < torg[1]+tSide; wc++ {
		east := wc - p[1]
		north := b - p[0]
		if !rt.occ.runFree(p, 1, east) {
			continue
		}
		probe := []int{p[0], p[1] + east}
		if !rt.occ.runFree(probe, 0, north) {
			continue
		}
		rt.occ.claimRun(p, 1, east, moves)
		rt.occ.claimRun(p, 0, north, moves)
		return true
	}
	return false
}
