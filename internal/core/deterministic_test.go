package core

import (
	"math/rand"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/scenario"
)

func TestDetLineRandomWorkload(t *testing.T) {
	g := grid.Line(48, 3, 3)
	rng := rand.New(rand.NewSource(1))
	reqs := scenario.Uniform(g, 160, 96, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteStats.Anomalies != 0 {
		t.Fatalf("anomalies: %d (theory says 0 on a line)", res.RouteStats.Anomalies)
	}
	if res.Throughput == 0 {
		t.Fatal("no throughput on a light workload")
	}
	if res.MaxLoad > res.LoadBound+1e-9 {
		t.Fatalf("sketch load %v exceeds Theorem 1 bound %v", res.MaxLoad, res.LoadBound)
	}
	// The Sec. 5.3 chain: alg ⊆ ipp′ ⊆ ipp.
	if !(res.Throughput <= res.ReachedLastTile && res.ReachedLastTile <= res.Admitted) {
		t.Fatalf("alg=%d ipp'=%d ipp=%d violate the chain", res.Throughput, res.ReachedLastTile, res.Admitted)
	}
	// Every delivered schedule must be executable with the real capacities.
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("replay violations: %v", rep.Violation[:min(3, len(rep.Violation))])
	}
	if rep.Throughput() != res.Throughput {
		t.Fatalf("replay throughput %d != reported %d", rep.Throughput(), res.Throughput)
	}
}

func TestDetLineSaturating(t *testing.T) {
	g := grid.Line(32, 3, 3)
	rng := rand.New(rand.NewSource(2))
	reqs := scenario.Saturating(g, 8, 2, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteStats.Anomalies != 0 {
		t.Fatalf("anomalies: %d", res.RouteStats.Anomalies)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("replay violations under saturation: %v", rep.Violation[0])
	}
	// Admission control must bite under ~2x-capacity load.
	if res.Admitted == len(reqs) {
		t.Fatal("expected some rejections under saturation")
	}
	if res.Throughput == 0 {
		t.Fatal("expected positive throughput under saturation")
	}
}

func TestDetLineDeadlines(t *testing.T) {
	g := grid.Line(32, 3, 3)
	rng := rand.New(rand.NewSource(3))
	base := scenario.Uniform(g, 120, 64, rng)
	reqs := scenario.WithDeadlines(g, base, 2.0, 16, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteStats.Anomalies != 0 {
		t.Fatalf("anomalies: %d", res.RouteStats.Anomalies)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("replay violations: %v", rep.Violation[0])
	}
	// Sec. 5.4 claim: requests that are not preempted arrive on time. Every
	// schedule we emit must deliver by its deadline.
	for i, o := range res.Outcomes {
		if o.Delivered && reqs[i].Deadline != grid.InfDeadline && o.DeliveredAt > reqs[i].Deadline {
			t.Fatalf("req %d delivered late: %d > %d", i, o.DeliveredAt, reqs[i].Deadline)
		}
	}
	if res.Throughput == 0 {
		t.Fatal("no deadline throughput")
	}
}

func TestDetBufferlessLine(t *testing.T) {
	g := grid.Line(32, 0, 3)
	rng := rand.New(rand.NewSource(4))
	reqs := scenario.Uniform(g, 100, 64, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("replay violations: %v", rep.Violation[0])
	}
	// Bufferless schedules may not contain holds.
	for _, s := range res.Schedules {
		if s == nil {
			continue
		}
		for _, m := range s.Moves {
			if m < 0 {
				t.Fatal("bufferless schedule contains a hold")
			}
		}
	}
	opt := optbound.ExactBufferlessLine(g, reqs)
	if res.Throughput > opt {
		t.Fatalf("throughput %d exceeds exact OPT %d", res.Throughput, opt)
	}
	if res.Throughput == 0 && opt > 0 {
		t.Fatal("zero throughput but OPT positive")
	}
}

func TestDetGrid2D(t *testing.T) {
	g := grid.New([]int{12, 12}, 3, 3)
	rng := rand.New(rand.NewSource(5))
	reqs := scenario.Uniform(g, 120, 48, rng)
	res, err := RunDeterministic(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("2-d replay violations: %v", rep.Violation[0])
	}
	if res.Throughput == 0 {
		t.Fatal("no 2-d throughput")
	}
}

func TestDetRejectsBadParams(t *testing.T) {
	g := grid.Line(16, 1, 1)
	if _, err := RunDeterministic(g, nil, DetConfig{}); err == nil {
		t.Fatal("B=c=1 must be rejected (needs B,c ≥ 3)")
	}
	g2 := grid.Line(16, 0, 1)
	if _, err := RunDeterministic(g2, nil, DetConfig{}); err == nil {
		t.Fatal("bufferless with c=1 must be rejected")
	}
}

func TestDetRejectsInvalidRequests(t *testing.T) {
	g := grid.Line(16, 3, 3)
	bad := []grid.Request{{Src: grid.Vec{5}, Dst: grid.Vec{2}, Arrival: 0, Deadline: grid.InfDeadline}}
	if _, err := RunDeterministic(g, bad, DetConfig{}); err == nil {
		t.Fatal("backwards request must be rejected")
	}
}

func TestLargeCapacity(t *testing.T) {
	// B = c = 64 ≥ k for a small line.
	g := grid.Line(16, 64, 64)
	rng := rand.New(rand.NewSource(6))
	reqs := scenario.Saturating(g, 6, 8, rng)
	res, err := RunLargeCapacity(g, reqs, DetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput == 0 {
		t.Fatal("no throughput")
	}
	rep := netsim.ReplaySchedules(g, reqs, res.Schedules, netsim.Model1)
	if len(rep.Violation) != 0 {
		t.Fatalf("Thm 13 replay violations: %v", rep.Violation[0])
	}
	// Non-preemptive: every admitted request is delivered.
	for i, o := range res.Outcomes {
		if o.Admitted && !o.Delivered {
			t.Fatalf("req %d admitted but not delivered", i)
		}
	}
	// Load on the scaled instance obeys Thm 1, so true load ≤ k·scaled ≤ B.
	if res.MaxLoad > float64(res.K)+1e-9 {
		t.Fatalf("scaled load %v > k=%d", res.MaxLoad, res.K)
	}
}

func TestLargeCapacityRejectsSmallB(t *testing.T) {
	g := grid.Line(64, 3, 3)
	if _, err := RunLargeCapacity(g, nil, DetConfig{}); err == nil {
		t.Fatal("Thm 13 with B < k must error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
