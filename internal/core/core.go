// Package core implements the paper's two headline algorithms:
//
//   - the deterministic, centralized, preemptive online packet-routing
//     framework for uni-directional d-dimensional grids (Algorithm 1,
//     Sec. 4–6), including deadlines, the bufferless special case (Thm 11)
//     and the large-capacity variant (Thm 13); and
//   - the randomized O(log n)-competitive, non-preemptive algorithm for
//     uni-directional lines (Sec. 7), with its large-buffer (Sec. 7.7) and
//     small-buffer/large-capacity (Sec. 7.8) regime variants.
//
// Both reduce packet routing to online integral path packing over a sketch
// graph of space-time tiles and then perform detailed routing; see the
// package docs of internal/sketch, internal/ipp and internal/detroute.
package core

import (
	"math"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
)

// PMaxDet returns the paper's maximum-path-length parameter for the
// deterministic algorithm (Sec. 3.6.1): 2·diam(G)·(1 + n·(B/c + d)) for
// buffered grids, and diam(G) when B = 0 (paths cannot wait).
func PMaxDet(g *grid.Grid) int {
	if g.B == 0 {
		return g.Diameter()
	}
	bc := float64(g.B) / float64(g.C)
	pm := 2 * float64(g.Diameter()) * (1 + float64(g.N())*(bc+float64(g.D())))
	return int(math.Ceil(pm))
}

// TileSideDet returns k = ⌈log₂(1 + 3·pmax)⌉ (Sec. 5, Parameters).
func TileSideDet(pmax int) int { return ipp.K(pmax) }
