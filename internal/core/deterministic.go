package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"gridroute/internal/detroute"
	"gridroute/internal/engine"
	"gridroute/internal/grid"
	"gridroute/internal/optbound"
	"gridroute/internal/spacetime"
)

// DetConfig tunes the deterministic framework. The zero value follows the
// paper's parameters.
type DetConfig struct {
	// Horizon is the last simulated time step; 0 derives one from the
	// workload (spacetime.SuggestHorizon with slack 3).
	Horizon int64
	// PMax overrides the paper's path-length bound (0 = PMaxDet).
	PMax int
	// TileSide overrides k (0 = ⌈log₂(1+3·pmax)⌉).
	TileSide int
	// DPWorkers sizes the wavefront pool the admission DP runs on
	// (engine.Options.DPWorkers). 0 uses the process default set by
	// SetDefaultDPWorkers; ≤ 1 after defaulting keeps the DP serial.
	// Decisions are bit-identical at every setting.
	DPWorkers int
	// SpecWorkers sizes the speculative admission pipeline
	// (engine.Options.SpecWorkers). 0 uses the process default set by
	// SetDefaultSpecWorkers; ≤ 0 after defaulting keeps the serial consumer
	// loop. Decisions are bit-identical at every setting.
	SpecWorkers int
}

// defaultDPWorkers is the process-wide DP parallelism applied when
// DetConfig.DPWorkers is 0. It exists so experiment drivers with many
// literal DetConfig{...} sites can set parallelism once, at flag-parse
// time, without threading a value through every call.
var defaultDPWorkers atomic.Int32

// SetDefaultDPWorkers sets the DPWorkers value used by zero-valued
// DetConfig fields. n ≤ 1 means serial (the initial default).
func SetDefaultDPWorkers(n int) { defaultDPWorkers.Store(int32(n)) }

// dpWorkersOf resolves a config's DPWorkers against the process default.
func dpWorkersOf(cfg *DetConfig) int {
	if cfg.DPWorkers != 0 {
		return cfg.DPWorkers
	}
	return int(defaultDPWorkers.Load())
}

// defaultSpecWorkers mirrors defaultDPWorkers for the speculative admission
// pipeline: a process-wide setting applied when DetConfig.SpecWorkers is 0.
var defaultSpecWorkers atomic.Int32

// SetDefaultSpecWorkers sets the SpecWorkers value used by zero-valued
// DetConfig fields. n ≤ 0 means the serial consumer loop (the initial
// default).
func SetDefaultSpecWorkers(n int) { defaultSpecWorkers.Store(int32(n)) }

// specWorkersOf resolves a config's SpecWorkers against the process default.
func specWorkersOf(cfg *DetConfig) int {
	if cfg.SpecWorkers != 0 {
		return cfg.SpecWorkers
	}
	return int(defaultSpecWorkers.Load())
}

// ReqOutcome is the per-request result of the deterministic algorithm.
type ReqOutcome struct {
	// Admitted: the ipp algorithm assigned a sketch path (the request was
	// injected).
	Admitted bool
	// Delivered on time (the only outcome that counts toward throughput).
	Delivered   bool
	DeliveredAt int64
	// DroppedIn reports the detailed-routing part that preempted an
	// admitted, undelivered request.
	DroppedIn detroute.Part
	// ReachedLastTile marks ipp′ membership (Prop. 8).
	ReachedLastTile bool
}

// DetResult is the outcome of a deterministic run.
type DetResult struct {
	Grid    *grid.Grid
	Horizon int64
	PMax    int
	K       int

	Outcomes  []ReqOutcome
	Schedules []*spacetime.Schedule // nil unless delivered

	// Admitted is |ipp|, ReachedLastTile is |ipp′|, Throughput is |alg|
	// (Sec. 5.3 notation).
	Admitted        int
	ReachedLastTile int
	Throughput      int

	RouteStats detroute.Stats
	// MaxLoad and LoadBound report the Theorem 1 guarantee on the sketch
	// graph; PrimalValue is the dual-fitting certificate.
	MaxLoad     float64
	LoadBound   float64
	PrimalValue float64
}

// RunDeterministic executes Algorithm 1 on the request sequence (which must
// be sorted by arrival time). It handles deadlines, d ≥ 1, and B = 0.
func RunDeterministic(g *grid.Grid, reqs []grid.Request, cfg DetConfig) (*DetResult, error) {
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		return nil, fmt.Errorf("core: invalid request at index %d: %v", i, reqs[i])
	}
	if g.B != 0 && (g.B < 3 || g.C < 3) {
		return nil, fmt.Errorf("core: deterministic algorithm requires B, c ≥ 3 (or B = 0, c ≥ 3); got B=%d c=%d", g.B, g.C)
	}
	if g.B == 0 && g.C < 3 {
		return nil, fmt.Errorf("core: bufferless variant requires c ≥ 3; got c=%d", g.C)
	}

	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = spacetime.SuggestHorizon(g, reqs, 3)
	}
	pmax := cfg.PMax
	if pmax == 0 {
		pmax = PMaxDet(g)
	}
	k := cfg.TileSide
	if k == 0 {
		k = TileSideDet(pmax)
	}

	// The batch algorithm is the streaming engine fed sequentially: one
	// producer streams the (already arrival-sorted) requests through Admit,
	// which issues exactly the LightestRoute/Offer sequence of the old
	// in-line loop — results are byte-identical, and the engine's warm
	// sketch/packer state is built once, not per request.
	eng, err := engine.New(g, engine.Options{
		Horizon: horizon, PMax: pmax, TileSide: k,
		Queue: 1, ExpectPackets: len(reqs),
		DPWorkers:   dpWorkersOf(&cfg),
		SpecWorkers: specWorkersOf(&cfg),
	})
	if err != nil {
		return nil, err
	}

	res := &DetResult{
		Grid: g, Horizon: horizon, PMax: pmax, K: k,
		Outcomes:  make([]ReqOutcome, len(reqs)),
		Schedules: make([]*spacetime.Schedule, len(reqs)),
	}

	ctx := context.Background()
	for i := range reqs {
		// Seq is the request's index, not its ID: RunDeterministic accepts
		// arbitrary request sequences whose IDs need not be 0..n−1.
		pkt := engine.PacketOf(&reqs[i])
		pkt.Seq = i
		dec, aerr := eng.Admit(ctx, pkt)
		if aerr != nil {
			return nil, aerr
		}
		res.Outcomes[i].Admitted = dec.Admitted()
	}
	if err := eng.Drain(ctx); err != nil {
		return nil, err
	}
	fin, err := eng.Finish()
	if err != nil {
		return nil, err
	}

	res.Admitted = len(fin.Admitted)
	res.MaxLoad = fin.MaxLoad
	res.LoadBound = fin.LoadBound
	res.PrimalValue = fin.PrimalValue
	res.RouteStats = fin.RouteStats
	for j, o := range fin.Outcomes {
		i := fin.Admitted[j].Req.ID // the Seq stamped above
		ro := &res.Outcomes[i]
		ro.ReachedLastTile = o.ReachedLastTile
		if o.ReachedLastTile {
			res.ReachedLastTile++
		}
		if o.Delivered && o.OnTime {
			ro.Delivered = true
			ro.DeliveredAt = o.DeliveredAt
			res.Throughput++
			// Re-point the engine-built schedule at the caller's request.
			s := fin.Schedules[j]
			s.Req = &reqs[i]
			res.Schedules[i] = s
		} else if o.Delivered {
			// Late delivery: counts as a loss; record as last-tile drop.
			ro.DroppedIn = detroute.PartLastTile
		} else {
			ro.DroppedIn = o.DroppedIn
		}
	}
	return res, nil
}

// LargeCapResult is the outcome of the Theorem 13 algorithm.
type LargeCapResult struct {
	Grid      *grid.Grid
	Horizon   int64
	PMax      int
	K         int
	BScaled   int
	CScaled   int
	Outcomes  []ReqOutcome
	Schedules []*spacetime.Schedule
	// Throughput equals Admitted: the algorithm is non-preemptive and
	// every accepted request is routed.
	Throughput  int
	MaxLoad     float64
	PrimalValue float64
}

// RunLargeCapacity executes the Theorem 13 algorithm for B, c ≥ k with
// B/c = n^{O(1)}: scale capacities to B′ = ⌊B/k⌋, c′ = ⌊c/k⌋ and run the
// ipp algorithm directly over the space-time graph. Accepted packets are
// routed along their packed paths without preemption; the Theorem 1 load
// bound k guarantees the unscaled capacities are respected.
func RunLargeCapacity(g *grid.Grid, reqs []grid.Request, cfg DetConfig) (*LargeCapResult, error) {
	if i := grid.ValidateAll(g, reqs); i >= 0 {
		return nil, fmt.Errorf("core: invalid request at index %d", i)
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = spacetime.SuggestHorizon(g, reqs, 3)
	}
	pmax := cfg.PMax
	if pmax == 0 {
		pmax = PMaxDet(g)
	}
	k := cfg.TileSide
	if k == 0 {
		k = TileSideDet(pmax)
	}
	bs, cs := g.B/k, g.C/k
	if bs < 1 || cs < 1 {
		return nil, fmt.Errorf("core: Theorem 13 requires B, c ≥ k = %d; got B=%d c=%d", k, g.B, g.C)
	}

	st := spacetime.New(g, horizon)
	sp := optbound.NewSTPacker(st, float64(bs), float64(cs), pmax)
	res := &LargeCapResult{
		Grid: g, Horizon: horizon, PMax: pmax, K: k, BScaled: bs, CScaled: cs,
		Outcomes:  make([]ReqOutcome, len(reqs)),
		Schedules: make([]*spacetime.Schedule, len(reqs)),
	}
	for i := range reqs {
		r := &reqs[i]
		path, ok := sp.Offer(r)
		if !ok {
			continue
		}
		s := st.PathToSchedule(r, path)
		res.Schedules[i] = s
		res.Outcomes[i] = ReqOutcome{Admitted: true, Delivered: true}
		_, endT := s.EndState()
		res.Outcomes[i].DeliveredAt = endT
		res.Throughput++
	}
	res.MaxLoad = sp.Packer().MaxLoad()
	res.PrimalValue = sp.Packer().PrimalValue()
	return res, nil
}
