// Package stats provides the small statistics and table-formatting toolkit
// used by the benchmark harness: summary statistics, log-log growth-rate
// fits (to compare measured competitive-ratio curves against √n, n^{2/3},
// log n shapes), and markdown table rendering for EXPERIMENTS.md.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic summary statistics of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes summary statistics.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		return Summary{}
	}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(s.N)
	for _, x := range xs {
		s.Std += (x - s.Mean) * (x - s.Mean)
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	} else {
		s.Std = 0
	}
	return s
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	m := len(ys) / 2
	if len(ys)%2 == 1 {
		return ys[m]
	}
	return (ys[m-1] + ys[m]) / 2
}

// GrowthExponent fits ratio ≈ a·n^b by least squares on (log n, log ratio)
// and returns b. Comparing b against 0.5 (√n) or ~0 (polylog) is how the
// harness tests the *shape* of Table 1's lower bounds and the theorems'
// upper bounds.
func GrowthExponent(ns []int, ys []float64) float64 {
	if len(ns) != len(ys) || len(ns) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	m := 0
	for i := range ns {
		if ys[i] <= 0 || math.IsInf(ys[i], 0) || math.IsNaN(ys[i]) {
			continue
		}
		x := math.Log(float64(ns[i]))
		y := math.Log(ys[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	if m < 2 {
		return math.NaN()
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (fm*sxy - sx*sy) / den
}

// LogFitQuality fits ratio ≈ a + b·log n and returns the residual RMS —
// small values mean the curve is consistent with logarithmic growth.
func LogFitQuality(ns []int, ys []float64) (b, rms float64) {
	if len(ns) < 2 {
		return math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x := math.Log(float64(ns[i]))
		sx += x
		sy += ys[i]
		sxx += x * x
		sxy += x * ys[i]
	}
	fm := float64(len(ns))
	den := fm*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	b = (fm*sxy - sx*sy) / den
	a := (sy - b*sx) / fm
	for i := range ns {
		d := ys[i] - (a + b*math.Log(float64(ns[i])))
		rms += d * d
	}
	return b, math.Sqrt(rms / fm)
}

// Table accumulates rows and renders GitHub-flavoured markdown.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v (floats with %.3g).
// Non-finite floats render as "∞"/"-∞"/"n/a" — an unbounded competitive
// ratio must never print as a perfect-looking number.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case math.IsInf(v, -1):
		return "-∞"
	case math.IsNaN(v):
		return "n/a"
	}
	return fmt.Sprintf("%.3g", v)
}

// MarshalJSON serializes the table for machine-readable results files
// (BENCH_experiments.json). Cells are the formatted strings of the markdown
// output, so values JSON cannot encode as numbers (∞, n/a) survive intact.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Title, t.Header, rows})
}

// UnmarshalJSON is the inverse of MarshalJSON: it reconstructs a table from
// the machine-readable form so that shard artifacts round-trip to markdown
// byte-identically.
func (t *Table) UnmarshalJSON(b []byte) error {
	var doc struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	t.Title, t.Header, t.Rows = doc.Title, doc.Header, doc.Rows
	return nil
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	return b.String()
}
