package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-1.2909944) > 1e-6 {
		t.Fatalf("std = %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("singleton: %+v", one)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestGrowthExponentRecovers(t *testing.T) {
	ns := []int{16, 32, 64, 128, 256}
	// y = 3·n^0.5
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3 * math.Sqrt(float64(n))
	}
	if b := GrowthExponent(ns, ys); math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 0.5", b)
	}
	// Constant → 0.
	for i := range ys {
		ys[i] = 7
	}
	if b := GrowthExponent(ns, ys); math.Abs(b) > 1e-9 {
		t.Fatalf("constant exponent = %v", b)
	}
	if !math.IsNaN(GrowthExponent(ns[:1], ys[:1])) {
		t.Fatal("too few points should be NaN")
	}
}

func TestGrowthExponentQuick(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := 0.5 + float64(aRaw%50)
		b := float64(bRaw%30)/10 - 1.5
		ns := []int{8, 16, 32, 64}
		ys := make([]float64, len(ns))
		for i, n := range ns {
			ys[i] = a * math.Pow(float64(n), b)
		}
		got := GrowthExponent(ns, ys)
		return math.Abs(got-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogFit(t *testing.T) {
	ns := []int{16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 2 + 5*math.Log(float64(n))
	}
	b, rms := LogFitQuality(ns, ys)
	if math.Abs(b-5) > 1e-9 || rms > 1e-9 {
		t.Fatalf("log fit b=%v rms=%v", b, rms)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "n", "ratio")
	tb.AddRow(32, 1.5)
	tb.AddRow(64, 2.25)
	md := tb.Markdown()
	for _, want := range []string{"### Demo", "| n | ratio |", "| 32 | 1.5 |", "| --- | --- |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

// Unbounded ratios must be visible as ∞, never as a plausible number.
func TestTableNonFiniteCells(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(math.Inf(1))
	tb.AddRow(math.Inf(-1))
	tb.AddRow(math.NaN())
	tb.AddRow(float32(math.Inf(1)))
	want := [][]string{{"∞"}, {"-∞"}, {"n/a"}, {"∞"}}
	for i, w := range want {
		if tb.Rows[i][0] != w[0] {
			t.Errorf("row %d = %q, want %q", i, tb.Rows[i][0], w[0])
		}
	}
}

func TestTableMarshalJSON(t *testing.T) {
	tb := NewTable("Demo", "n", "ratio")
	tb.AddRow(32, math.Inf(1))
	raw, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "Demo" || len(got.Header) != 2 || got.Rows[0][1] != "∞" {
		t.Fatalf("round trip wrong: %+v", got)
	}
	// Empty tables must serialize rows as [], not null.
	raw, err = json.Marshal(NewTable("empty", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"rows":[]`) {
		t.Fatalf("empty rows should be []: %s", raw)
	}
}

// GrowthExponent must ignore non-finite samples (∞ ratios from
// zero-throughput runs) instead of poisoning the fit.
func TestGrowthExponentSkipsNonFinite(t *testing.T) {
	ns := []int{16, 32, 64, 128}
	ys := []float64{3 * 4, math.Inf(1), 3 * 8, math.NaN()}
	if b := GrowthExponent(ns, ys); math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 0.5 from the finite points", b)
	}
}
