package detroute

import (
	"math/rand"
	"testing"

	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/scenario"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// harness builds a line space-time lattice with square tiles of side k and
// an oracle-backed admitter, mirroring what core.RunDeterministic does but
// exposing the internals for targeted tests.
type harness struct {
	g  *grid.Grid
	st *spacetime.Graph
	sk *sketch.Graph
	pk *ipp.Packer
	rt *Router
}

func newHarness(n, b, c int, T int64, k int) *harness {
	g := grid.Line(n, b, c)
	st := spacetime.New(g, T)
	tl := tiling.New(st.Box, []int{k, k}, []int{0, 0})
	sk := sketch.New(st, tl, sketch.Downscaled)
	return &harness{g: g, st: st, sk: sk, pk: ipp.New(4*n+1, sk.Cap), rt: New(st, sk)}
}

func (h *harness) admit(t *testing.T, reqs []grid.Request) []Admitted {
	t.Helper()
	var adm []Admitted
	for i := range reqs {
		r := &reqs[i]
		src := h.st.SourcePoint(r)
		wLo, wHi := h.st.DestRay(r)
		route := h.sk.LightestRoute(h.pk, src, r.Dst, wLo, wHi, h.pk.PMax())
		if route == nil {
			continue
		}
		if h.pk.Offer(route.Edges, route.Cost) {
			adm = append(adm, Admitted{Req: r, Route: route})
		}
	}
	return adm
}

func TestSingleStraightRequest(t *testing.T) {
	h := newHarness(32, 3, 3, 128, 4)
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{2}, Dst: grid.Vec{20}, Arrival: 0, Deadline: grid.InfDeadline}}
	adm := h.admit(t, reqs)
	if len(adm) != 1 {
		t.Fatal("not admitted")
	}
	outs, stats := h.rt.Run(adm)
	if !outs[0].Delivered {
		t.Fatalf("lone request must be delivered; dropped in %v", outs[0].DroppedIn)
	}
	// Shortest possible route: 18 steps, delivered at t=18.
	if outs[0].DeliveredAt != 18 {
		t.Fatalf("delivered at %d, want 18 (no contention → straight shot)", outs[0].DeliveredAt)
	}
	if stats.Anomalies != 0 {
		t.Fatalf("anomalies: %d", stats.Anomalies)
	}
}

func TestNearRequestSingleTile(t *testing.T) {
	h := newHarness(32, 3, 3, 128, 8)
	// Source and destination inside one tile row.
	reqs := []grid.Request{{ID: 0, Src: grid.Vec{1}, Dst: grid.Vec{5}, Arrival: 0, Deadline: grid.InfDeadline}}
	adm := h.admit(t, reqs)
	outs, stats := h.rt.Run(adm)
	if !outs[0].Delivered || !outs[0].ReachedLastTile {
		t.Fatal("near request must deliver within its tile")
	}
	if stats.Anomalies != 0 {
		t.Fatal("anomalies on a near request")
	}
}

// GLL82 preemption on track 1: two first segments on the same line; the one
// ending later is preempted when they meet.
func TestFirstSegmentPreemption(t *testing.T) {
	h := newHarness(64, 3, 3, 256, 4)
	// Same source point, same direction: immediate conflict; the interval
	// ending first (closer bend/destination tile) must win.
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{40}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{0}, Dst: grid.Vec{12}, Arrival: 0, Deadline: grid.InfDeadline},
	}
	adm := h.admit(t, reqs)
	if len(adm) != 2 {
		t.Skipf("admission kept %d of 2", len(adm))
	}
	outs, _ := h.rt.Run(adm)
	delivered := 0
	for _, o := range outs {
		if o.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("at least one of the conflicting packets must survive")
	}
	// The loser must be recorded with a sensible part.
	for i, o := range outs {
		if !o.Delivered && o.DroppedIn != PartFirst && o.DroppedIn != PartLastTile && o.DroppedIn != PartLast {
			t.Fatalf("req %d dropped in unexpected part %v", i, o.DroppedIn)
		}
	}
}

// The paths of delivered packets never overlap on the same track: replaying
// per-edge claims must stay within 3 units (B = c = 3).
func TestTrackDiscipline(t *testing.T) {
	h := newHarness(48, 3, 3, 256, 5)
	rng := rand.New(rand.NewSource(2))
	reqs := scenario.Saturating(h.g, 6, 2, rng)
	adm := h.admit(t, reqs)
	outs, stats := h.rt.Run(adm)
	if stats.Anomalies != 0 {
		t.Fatalf("anomalies: %d", stats.Anomalies)
	}
	use := map[[2]int]int{}
	cur := make([]int, 2)
	for _, o := range outs {
		if !o.Delivered {
			continue
		}
		copy(cur, o.Path.Start)
		for _, a := range o.Path.Axes {
			key := [2]int{h.st.Box.Index(cur), int(a)}
			use[key]++
			if use[key] > 3 {
				t.Fatalf("edge used %d times > B=c=3", use[key])
			}
			cur[a]++
		}
	}
	if stats.Delivered == 0 {
		t.Fatal("nothing delivered under saturation")
	}
}

// Chain invariant (Sec. 5.3): delivered ⊆ reached-last-tile ⊆ injected, and
// the loss accounting adds up.
func TestLossAccounting(t *testing.T) {
	h := newHarness(64, 3, 3, 384, 5)
	rng := rand.New(rand.NewSource(3))
	reqs := scenario.Uniform(h.g, 300, 128, rng)
	adm := h.admit(t, reqs)
	outs, stats := h.rt.Run(adm)
	if stats.Injected != len(adm) {
		t.Fatalf("injected %d != admitted %d", stats.Injected, len(adm))
	}
	total := stats.Delivered
	for _, d := range stats.DroppedBy {
		total += d
	}
	if total != stats.Injected {
		t.Fatalf("accounting leak: delivered %d + drops %v != injected %d", stats.Delivered, stats.DroppedBy, stats.Injected)
	}
	reached := 0
	for _, o := range outs {
		if o.ReachedLastTile {
			reached++
		}
		if o.Delivered && !o.ReachedLastTile {
			t.Fatal("delivered without reaching last tile")
		}
	}
	if reached != stats.ReachedLastTile {
		t.Fatalf("reached mismatch %d != %d", reached, stats.ReachedLastTile)
	}
}

// Parts are used in the documented order: a packet dropped in the last tile
// must have a path that actually enters its final tile.
func TestDropPartsConsistent(t *testing.T) {
	h := newHarness(48, 3, 3, 256, 4)
	rng := rand.New(rand.NewSource(4))
	reqs := scenario.Saturating(h.g, 8, 3, rng)
	adm := h.admit(t, reqs)
	outs, _ := h.rt.Run(adm)
	for i, o := range outs {
		if o.Delivered {
			continue
		}
		if o.DroppedIn == PartLastTile && !o.ReachedLastTile {
			t.Fatalf("req %d: dropped in last tile without reaching it", i)
		}
	}
}

func TestPartString(t *testing.T) {
	names := map[Part]string{
		PartFirst: "first-segment", PartInternal: "internal",
		PartLast: "last-segment", PartLastTile: "last-tile",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
}
