// Package detroute implements the deterministic algorithm's detailed routing
// (Sec. 5.2 and Sec. 6 of Even–Medina): translating sketch paths over tiles
// into paths in the untilted space-time lattice, adaptively and on-the-fly.
//
// The detailed path of a request traverses exactly the tiles of its sketch
// path and bends only where the sketch path bends. Routing is partitioned
// into three parts, each with one reserved unit of capacity (a "track") on
// every lattice edge — the reason the algorithm requires B, c ≥ 3:
//
//	track 1 — special (first and last) segments, resolved by online interval
//	          packing per lattice line (the GLL82 simulation of Sec. 5.2.1);
//	track 2 — internal segments, resolved by knock-knee bends with precedence
//	          to straight traffic (Sec. 5.2.3; d-dimensional rules of Sec. 6);
//	track 3 — routing inside the last tile, per-line interval packing with
//	          nearest-destination preemption (Sec. 5.2.4).
//
// The implementation sweeps lattice points in increasing real time
// t = w + Σx, which is both a topological order of the box DAG and the
// actual simulation clock, so every preemption decision made here is
// realizable by the distributed online protocol the paper describes:
// conflicting packets are always co-located at a node when the conflict is
// decided.
package detroute

import (
	"sort"
	"sync"

	"gridroute/internal/dense"
	"gridroute/internal/grid"
	"gridroute/internal/lattice"
	"gridroute/internal/sketch"
	"gridroute/internal/spacetime"
)

// Part identifies the detailed-routing part a packet was in.
type Part int

const (
	// PartFirst is the first special segment (track 1).
	PartFirst Part = iota
	// PartInternal covers internal segments (track 2).
	PartInternal
	// PartLast is the last special segment (track 1).
	PartLast
	// PartLastTile is routing inside the last tile (track 3).
	PartLastTile
)

func (p Part) String() string {
	switch p {
	case PartFirst:
		return "first-segment"
	case PartInternal:
		return "internal"
	case PartLast:
		return "last-segment"
	default:
		return "last-tile"
	}
}

// Admitted is a request together with the sketch path assigned by ipp.
type Admitted struct {
	Req   *grid.Request
	Route *sketch.Route
}

// Outcome reports the detailed-routing result for one admitted request.
type Outcome struct {
	Delivered   bool
	DeliveredAt int64
	OnTime      bool
	// DroppedIn is the part during which the packet was preempted
	// (meaningful when !Delivered).
	DroppedIn Part
	// ReachedLastTile marks membership in the paper's set ipp′ (Prop. 8):
	// not preempted before the entry of the last tile.
	ReachedLastTile bool
	// Path is the detailed path walked (full path when delivered, prefix
	// when dropped).
	Path *lattice.Path
}

// Stats aggregates a routing run (the Prop. 8/9 loss decomposition).
type Stats struct {
	Injected        int
	Delivered       int
	ReachedLastTile int
	DroppedBy       [4]int
	// Anomalies counts events the analysis proves impossible on a line
	// (overruns, packets unable to move, horizon overflow). Tests assert it
	// stays 0 for d = 1 workloads within a generous horizon.
	Anomalies int
}

// Router runs detailed routing over one space-time lattice.
type Router struct {
	ST *spacetime.Graph
	SK *sketch.Graph

	// Scratch reused across nodes and steps.
	in       []*pkt
	outClaim []*pkt
	byAxis   [8][]*pkt
	tileBuf  []int
	tcBuf    []int
	orgBuf   []int
}

// New creates a detailed router for the deterministic algorithm.
func New(st *spacetime.Graph, sk *sketch.Graph) *Router {
	return &Router{ST: st, SK: sk}
}

// bucketsPool recycles the per-run node-grouping buckets across detailed
// routing runs (sweeps run thousands of them).
var bucketsPool = sync.Pool{New: func() any { return new(dense.Buckets) }}

type phase int

const (
	phFirst phase = iota
	phInternal
	phLast
	phLastTile
	phDone
	phDropped
)

type pkt struct {
	idx   int
	req   *grid.Request
	route *sketch.Route

	phase phase
	dir   int // current travel axis
	turn  int // pending knock-knee turn target axis (-1 none)
	pos   []int
	node  int // box id of pos, maintained incrementally
	// arrivedVia is the axis of the last move (-1 right after injection).
	arrivedVia int
	// pending is the axis claimed for the current step (-1: not yet).
	pending int

	routeIdx  int // index into route.Tiles of the current tile
	firstBend int // tile index of the first bend (-1 if none)
	lastBend  int // tile index of the last bend (-1 if none)

	// endCoord is the right endpoint of the current track-1/track-3
	// interval along dir, for GLL82 preemption comparisons.
	endCoord int

	start []int
	moves []uint8

	reachedLast bool
	droppedIn   Part
	deliveredAt int64
}

func (p *pkt) path() *lattice.Path {
	return &lattice.Path{Start: append([]int(nil), p.start...), Axes: append([]uint8(nil), p.moves...)}
}

func (p *pkt) part() Part {
	switch p.phase {
	case phFirst:
		return PartFirst
	case phInternal:
		return PartInternal
	case phLast:
		return PartLast
	default:
		return PartLastTile
	}
}

// desired returns the axis the packet wants next (pending turns first).
func (p *pkt) desired() int {
	if p.turn >= 0 {
		return p.turn
	}
	return p.dir
}

// Run performs detailed routing for all admitted requests and returns
// per-request outcomes plus aggregate stats.
func (rt *Router) Run(admitted []Admitted) ([]Outcome, Stats) {
	var stats Stats
	stats.Injected = len(admitted)
	d := rt.ST.G.D()
	axes := d + 1
	box := rt.ST.Box
	if len(rt.tileBuf) < axes {
		rt.tileBuf = make([]int, axes)
		rt.tcBuf = make([]int, axes)
		rt.orgBuf = make([]int, axes)
	}

	all := make([]*pkt, len(admitted))
	for i := range admitted {
		a := &admitted[i]
		p := &pkt{
			idx: i, req: a.Req, route: a.Route,
			turn: -1, arrivedVia: -1, pending: -1,
			firstBend: -1, lastBend: -1,
		}
		p.pos = rt.ST.ToLattice(a.Req.Src, a.Req.Arrival, nil)
		p.node = box.Index(p.pos)
		p.start = append([]int(nil), p.pos...)
		for j := 1; j < len(a.Route.Axes); j++ {
			if a.Route.Axes[j] != a.Route.Axes[j-1] {
				if p.firstBend < 0 {
					p.firstBend = j
				}
				p.lastBend = j
			}
		}
		if len(a.Route.Axes) > 0 {
			p.dir = int(a.Route.Axes[0])
		}
		all[i] = p
	}

	// Injection order: packets by arrival time (same-time packets keep their
	// admission order), consumed by a cursor in the time sweep. Admission
	// preserves the scenario.Generate arrival-order invariant, so admitted
	// requests arrive here already sorted — verify with one linear pass and
	// only fall back to a stable sort for hand-built unsorted inputs.
	arrOrder := all
	for i := 1; i < len(all); i++ {
		if all[i].req.Arrival < all[i-1].req.Arrival {
			arrOrder = make([]*pkt, len(all))
			copy(arrOrder, all)
			sort.SliceStable(arrOrder, func(a, b int) bool {
				return arrOrder[a].req.Arrival < arrOrder[b].req.Arrival
			})
			break
		}
	}
	var minT int64
	if len(arrOrder) > 0 {
		minT = arrOrder[0].req.Arrival
	}
	inCursor := 0

	// Hard stop: the largest reachable time in the box.
	endT := int64(box.Hi[axes-1] - 1)
	for a := 0; a < d; a++ {
		endT += int64(box.Hi[a] - 1)
	}

	drop := func(p *pkt, part Part, anomaly bool) {
		p.phase = phDropped
		p.droppedIn = part
		stats.DroppedBy[part]++
		if anomaly {
			stats.Anomalies++
		}
	}

	active := make([]*pkt, 0, len(admitted))
	// Per-step node grouping uses pooled epoch-stamped buckets over the
	// box's node ids: no hashing per packet and no per-step map churn.
	// Bucket chains preserve active order and keys come out in first-seen
	// order, so grouping is deterministic.
	groups := bucketsPool.Get().(*dense.Buckets)
	defer bucketsPool.Put(groups)
	groupBuf := make([]*pkt, 0, 16)

	for t := minT; t <= endT; t++ {
		for inCursor < len(arrOrder) && arrOrder[inCursor].req.Arrival == t {
			p := arrOrder[inCursor]
			inCursor++
			if rt.arrive(p, &stats, drop) {
				active = append(active, p)
			}
		}
		if len(active) == 0 {
			if inCursor == len(arrOrder) {
				break
			}
			continue
		}

		groups.Reset(box.Size(), len(active))
		for i, p := range active {
			p.pending = -1
			groups.Put(p.node, i)
		}
		for _, key := range groups.Keys() {
			groupBuf = groupBuf[:0]
			for it := groups.First(int(key)); it >= 0; it = groups.Next(it) {
				groupBuf = append(groupBuf, active[it])
			}
			rt.resolveNode(groupBuf, drop)
		}

		next := active[:0]
		for _, p := range active {
			if p.phase == phDone || p.phase == phDropped {
				continue
			}
			if p.pending < 0 {
				drop(p, p.part(), true) // could not move: impossible per analysis
				continue
			}
			a := p.pending
			p.pending = -1
			nid, ok := box.Step(p.node, a)
			if !ok {
				drop(p, p.part(), true) // fell off the box/horizon
				continue
			}
			p.node = nid
			p.pos[a]++
			p.moves = append(p.moves, uint8(a))
			p.arrivedVia = a
			if rt.arrive(p, &stats, drop) {
				next = append(next, p)
			}
		}
		active = next
	}
	for _, p := range active {
		if p.phase != phDone && p.phase != phDropped {
			drop(p, p.part(), true)
		}
	}

	outs := make([]Outcome, len(admitted))
	for i, p := range all {
		o := &outs[i]
		o.ReachedLastTile = p.reachedLast
		o.Path = p.path()
		if p.phase == phDone {
			o.Delivered = true
			o.DeliveredAt = p.deliveredAt
			o.OnTime = p.req.Deadline == grid.InfDeadline || p.deliveredAt <= p.req.Deadline
			stats.Delivered++
		} else {
			o.DroppedIn = p.droppedIn
		}
		if p.reachedLast {
			stats.ReachedLastTile++
		}
	}
	return outs, stats
}

// arrive processes a packet that just landed on p.pos (or was injected).
// It returns false when the packet left the system (delivered or dropped).
func (rt *Router) arrive(p *pkt, stats *Stats, drop func(*pkt, Part, bool)) bool {
	tl := rt.SK.Tl
	tiles := p.route.Tiles
	cur := tl.TBox.Index(tl.TileOf(p.pos, rt.tileBuf))

	// Advance along the tile sequence; leaving it is an overrun.
	if p.routeIdx+1 < len(tiles) && cur == tiles[p.routeIdx+1] {
		p.routeIdx++
	} else if cur != tiles[p.routeIdx] {
		drop(p, p.part(), true)
		return false
	}

	lastIdx := len(tiles) - 1

	// Entering (or starting in) the last tile.
	if p.phase != phLastTile && p.routeIdx == lastIdx {
		p.phase = phLastTile
		p.reachedLast = true
	}

	if p.phase == phLastTile {
		if rt.atDestination(p) {
			p.phase = phDone
			p.deliveredAt = spacetime.TimeOf(p.pos)
			return false
		}
		a := rt.lastTileAxis(p)
		if a < 0 {
			// Overshot the destination (possible for d ≥ 2; a last-tile
			// loss accounted by Prop. 36, not an anomaly).
			drop(p, PartLastTile, false)
			return false
		}
		p.dir = a
		p.turn = -1
		p.endCoord = p.req.Dst[a]
		return true
	}

	switch p.phase {
	case phFirst:
		if p.firstBend >= 0 && p.routeIdx == p.firstBend {
			if p.firstBend == p.lastBend {
				// Exactly two segments: the turn into the last special
				// segment happens at the entry side of the bend tile
				// (Sec. 5.2.2: a last segment "begins in the entry side of
				// s1 that is reached by the previous segment").
				p.phase = phLast
				p.dir = int(p.route.Axes[p.firstBend])
				p.turn = -1
				p.endCoord = rt.entryBoundary(p, lastIdx, p.dir)
			} else if p.turn < 0 {
				// Three or more segments: adaptive knock-knee turn inside
				// this tile (track 1 → track 2).
				p.turn = int(p.route.Axes[p.firstBend])
			}
		}
		if p.phase == phFirst {
			p.endCoord = rt.firstEndpoint(p)
		}
	case phInternal:
		if p.routeIdx == p.lastBend {
			// Final bend: turn at the entry point into the last segment.
			p.phase = phLast
			p.dir = int(p.route.Axes[p.lastBend])
			p.turn = -1
			p.endCoord = rt.entryBoundary(p, lastIdx, p.dir)
		} else if p.routeIdx < len(p.route.Axes) && int(p.route.Axes[p.routeIdx]) != p.dir && p.turn < 0 {
			p.turn = int(p.route.Axes[p.routeIdx])
		}
	}
	return true
}

// entryBoundary returns the coordinate along axis of the lower side of the
// route tile with index tileIdx: where a straight run along axis enters it.
func (rt *Router) entryBoundary(p *pkt, tileIdx, axis int) int {
	tc := rt.SK.TileCoords(p.route.Tiles[tileIdx], rt.tcBuf)
	org := rt.SK.Tl.Origin(tc, rt.orgBuf)
	return org[axis]
}

// firstEndpoint computes the right endpoint of the first-segment interval:
// the entry boundary of the tile where the segment ends, plus a full side
// when the turn is adaptive (the turn may happen anywhere inside the bend
// tile — the comparison the paper makes is "ends inside s" vs "ends beyond
// s").
func (rt *Router) firstEndpoint(p *pkt) int {
	endTile := len(p.route.Tiles) - 1
	adaptive := false
	if p.firstBend >= 0 {
		endTile = p.firstBend
		adaptive = p.firstBend != p.lastBend
	}
	b := rt.entryBoundary(p, endTile, p.dir)
	if adaptive {
		b += rt.SK.Tl.Side[p.dir]
	}
	return b
}

func (rt *Router) atDestination(p *pkt) bool {
	for a := 0; a < rt.ST.G.D(); a++ {
		if p.pos[a] != p.req.Dst[a] {
			return false
		}
	}
	return true
}

// lastTileAxis picks the next axis inside the last tile (dimension order);
// -1 when the destination is unreachable (overshoot).
func (rt *Router) lastTileAxis(p *pkt) int {
	for a := 0; a < rt.ST.G.D(); a++ {
		if p.pos[a] < p.req.Dst[a] {
			return a
		}
		if p.pos[a] > p.req.Dst[a] {
			return -1
		}
	}
	return -1
}

// resolveNode decides, for every packet currently at one lattice node, which
// outgoing edge (and track) it takes, applying the three per-track rules.
func (rt *Router) resolveNode(pkts []*pkt, drop func(*pkt, Part, bool)) {
	axes := rt.ST.G.D() + 1

	// Fast path: a lone packet at a node meets no contention, so every rule
	// below degenerates to "advance along the desired axis" (for an internal
	// packet or a turning first-segment packet, committing a pending bend).
	if len(pkts) == 1 {
		p := pkts[0]
		switch {
		case p.phase == phInternal:
			if p.turn >= 0 {
				p.pending = p.turn
				p.dir, p.turn = p.turn, -1
			} else {
				p.pending = p.dir
			}
		case p.phase == phFirst && p.turn >= 0:
			p.pending = p.turn
			p.phase = phInternal
			p.dir, p.turn = p.turn, -1
		default: // straight track-1/track-3 run
			p.pending = p.dir
		}
		return
	}

	// --- Track 2: internal segments (knock-knee rules, Sec. 5.2.3 / 6). ---
	if cap(rt.in) < axes {
		rt.in = make([]*pkt, axes)
		rt.outClaim = make([]*pkt, axes)
	}
	in := rt.in[:axes] // internal packet that arrived via each axis
	outClaim := rt.outClaim[:axes]
	for a := 0; a < axes; a++ {
		in[a], outClaim[a] = nil, nil
	}
	for _, p := range pkts {
		if p.phase != phInternal {
			continue
		}
		via := p.arrivedVia
		if via < 0 || in[via] != nil {
			// Two internal packets on one track-2 edge cannot happen; be
			// defensive rather than silently mis-route.
			drop(p, PartInternal, true)
			continue
		}
		in[via] = p
	}
	assigned := func(p *pkt) bool { return p != nil && p.pending >= 0 }

	// (a) Straight traffic has precedence.
	for j := 0; j < axes; j++ {
		if p := in[j]; p != nil && p.desired() == j {
			p.pending = j
			outClaim[j] = p
		}
	}
	// (b)+(c) mutual knock-knees.
	for j := 0; j < axes; j++ {
		p := in[j]
		if p == nil || assigned(p) {
			continue
		}
		l := p.desired()
		q := in[l]
		if q != nil && !assigned(q) && q.desired() == j && outClaim[l] == nil && outClaim[j] == nil {
			p.pending = l
			outClaim[l] = p
			q.pending = j
			outClaim[j] = q
			p.dir, p.turn = l, -1
			q.dir, q.turn = j, -1
		}
	}
	// (c) bend into a null crossing: smallest arrival axis wins.
	for j := 0; j < axes; j++ {
		p := in[j]
		if p == nil || assigned(p) {
			continue
		}
		l := p.desired()
		if in[l] == nil && outClaim[l] == nil {
			p.pending = l
			outClaim[l] = p
			p.dir, p.turn = l, -1
		}
	}
	// (d) everyone else tries the next crossing (continues straight).
	for j := 0; j < axes; j++ {
		p := in[j]
		if p == nil || assigned(p) {
			continue
		}
		if outClaim[j] == nil {
			p.pending = j
			outClaim[j] = p
		} else {
			drop(p, PartInternal, true) // impossible per the rules
		}
	}

	// Turners: first-segment packets performing the track-1 → track-2 bend.
	// They turn when the target track-2 edge is free ("meets a null path or
	// a path that also wants to bend"); otherwise they stay on track 1 and
	// try the next crossing.
	for _, p := range pkts {
		if p.phase != phFirst || p.turn < 0 {
			continue
		}
		if outClaim[p.turn] == nil {
			outClaim[p.turn] = p
			p.pending = p.turn
			p.phase = phInternal
			p.dir, p.turn = p.turn, -1
		}
	}

	// --- Tracks 1 and 3: straight runs with interval preemption. ---
	rt.resolveStraight(pkts, axes, true, drop)  // track 1: first/last segments
	rt.resolveStraight(pkts, axes, false, drop) // track 3: last tile
}

// resolveStraight applies the GLL82 rule per outgoing edge: among the
// packets of one track wanting the same edge, the one whose interval ends
// first survives; the rest are preempted. Sorted arrival (by left endpoint)
// is guaranteed by the time sweep.
func (rt *Router) resolveStraight(pkts []*pkt, axes int, track1 bool, drop func(*pkt, Part, bool)) {
	byAxis := &rt.byAxis
	for a := range byAxis {
		byAxis[a] = byAxis[a][:0]
	}
	for _, p := range pkts {
		if p.pending >= 0 || p.phase == phDone || p.phase == phDropped {
			continue
		}
		use := false
		if track1 {
			use = p.phase == phFirst || p.phase == phLast
		} else {
			use = p.phase == phLastTile
		}
		if !use {
			continue
		}
		byAxis[p.dir] = append(byAxis[p.dir], p)
	}
	for a := 0; a < axes; a++ {
		group := byAxis[a]
		if len(group) == 0 {
			continue
		}
		if len(group) > 1 {
			sort.Slice(group, func(i, j int) bool {
				if group[i].endCoord != group[j].endCoord {
					return group[i].endCoord < group[j].endCoord
				}
				return group[i].idx < group[j].idx
			})
		}
		group[0].pending = a
		for _, p := range group[1:] {
			drop(p, p.part(), false)
		}
	}
}
