// Benchmarks: one testing.B target per experiment id of DESIGN.md §5, plus
// the BenchmarkHotPath family feeding the BENCH_hotpath.json perf
// trajectory (see README "Performance").
//
// Each experiment benchmark regenerates the corresponding table/figure
// measurement of Even–Medina (SPAA 2011) and reports the headline number as
// a custom metric, so `go test -bench=. -benchmem` reproduces the paper's
// artifacts end to end. EXPERIMENTS.md holds the full sweeps
// (cmd/experiments). All benchmarks report allocations and exclude their
// setup from the timed region.
package gridroute

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"gridroute/internal/baseline"
	"gridroute/internal/core"
	"gridroute/internal/engine"
	"gridroute/internal/experiments"
	"gridroute/internal/grid"
	"gridroute/internal/ipp"
	"gridroute/internal/lattice"
	"gridroute/internal/netsim"
	"gridroute/internal/optbound"
	"gridroute/internal/render"
	"gridroute/internal/scenario"
	"gridroute/internal/spacetime"
	"gridroute/internal/tiling"
)

// --- Hot paths ---------------------------------------------------------------

// BenchmarkHotPath measures the steady-state routing substrate: the dense
// packer, the flat lattice DP, the space-time packing oracle, and the warm
// schedule verifier. These are the targets the BENCH_hotpath.json
// trajectory tracks; the *Dense/Flat/Warm variants must report 0 allocs/op
// (gated by alloc_test.go).
func BenchmarkHotPath(b *testing.B) {
	b.Run("PackerOfferDense", func(b *testing.B) {
		b.ReportAllocs()
		caps := []float64{3, 5}
		p := ipp.NewDense(1<<30, func(e ipp.EdgeID) float64 { return caps[int(e)%2] }, 256)
		path := []ipp.EdgeID{0, 1, 2, 3, 4, 5, 6, 7}
		p.Offer(path, p.Cost(path))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Offer(path, 0)
		}
	})
	b.Run("PackerOfferSparse", func(b *testing.B) {
		b.ReportAllocs()
		caps := []float64{3, 5}
		p := ipp.New(1<<30, func(e ipp.EdgeID) float64 { return caps[int(e)%2] })
		path := []ipp.EdgeID{0, 1, 2, 3, 4, 5, 6, 7}
		p.Offer(path, p.Cost(path))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Offer(path, 0)
		}
	})
	b.Run("DPRunFlat", func(b *testing.B) {
		b.ReportAllocs()
		box := lattice.NewBox([]int{0, 0}, []int{48, 48})
		edgeX := make([]float64, box.Size()*2)
		rng := rand.New(rand.NewSource(1))
		for i := range edgeX {
			edgeX[i] = rng.Float64()
		}
		dp := box.NewDP()
		src := []int{0, 0}
		dp.RunFlat(box.Lo, box.Hi, src, edgeX, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.RunFlat(box.Lo, box.Hi, src, edgeX, nil)
		}
	})
	b.Run("DPRerunFlat", func(b *testing.B) {
		// Incremental repair after a single edge-weight change — the kernel
		// behind the engine's warm-start admit path. The weight toggles
		// between two values so every iteration does real repair work.
		b.ReportAllocs()
		box := lattice.NewBox([]int{0, 0}, []int{48, 48})
		edgeX := make([]float64, box.Size()*2)
		rng := rand.New(rand.NewSource(1))
		for i := range edgeX {
			edgeX[i] = rng.Float64()
		}
		dp := box.NewDP()
		src := []int{0, 0}
		dp.RunFlat(box.Lo, box.Hi, src, edgeX, nil)
		// An edge near the sink keeps the dirty cone small, matching the
		// sparse-commit shape RerunFlat is built for.
		tile := box.Index([]int{40, 40})
		head, _ := box.Step(tile, 0)
		seeds := []int{head}
		e := tile*2 + 0
		w0 := edgeX[e]
		if !dp.RerunFlat(seeds, edgeX, nil, 0) {
			b.Fatal("warm rerun refused")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				edgeX[e] = w0 + 0.7
			} else {
				edgeX[e] = w0
			}
			if !dp.RerunFlat(seeds, edgeX, nil, 0) {
				b.Fatal("warm rerun refused")
			}
		}
	})
	b.Run("DPRunClosure", func(b *testing.B) {
		b.ReportAllocs()
		box := lattice.NewBox([]int{0, 0}, []int{48, 48})
		edgeX := make([]float64, box.Size()*2)
		rng := rand.New(rand.NewSource(1))
		for i := range edgeX {
			edgeX[i] = rng.Float64()
		}
		dp := box.NewDP()
		src := []int{0, 0}
		edgeW := func(id, a int) float64 { return edgeX[id*2+a] }
		dp.Run(box.Lo, box.Hi, src, edgeW, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Run(box.Lo, box.Hi, src, edgeW, nil)
		}
	})
	b.Run("STPackerLightestPath", func(b *testing.B) {
		b.ReportAllocs()
		g := grid.Line(64, 3, 3)
		st := spacetime.New(g, 128)
		sp := optbound.NewSTPacker(st, 3, 3, core.PMaxDet(g))
		r := &grid.Request{Src: grid.Vec{4}, Dst: grid.Vec{40}, Arrival: 2, Deadline: grid.InfDeadline}
		if p, _ := sp.LightestPath(r); p == nil {
			b.Fatal("no path")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp.LightestPath(r)
		}
	})
	b.Run("ReplayWarm", func(b *testing.B) {
		b.ReportAllocs()
		g := grid.Line(96, 3, 3)
		reqs := scenario.Uniform(g, 5*96, 192, rand.New(rand.NewSource(6)))
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		var rp netsim.Replayer
		var out netsim.Result
		rp.ReplayInto(g, reqs, res.Schedules, netsim.Model1, &out)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rp.ReplayInto(g, reqs, res.Schedules, netsim.Model1, &out)
		}
		if len(out.Violation) != 0 {
			b.Fatalf("violations: %v", out.Violation)
		}
	})
}

// BenchmarkEngineAdmit measures the streaming admission path end to end:
// envelope pool → bounded queue → consumer loop → warm sketch query → packer
// offer → reply. The packets/sec custom metric is the engine's headline in
// the BENCH_hotpath.json trajectory (recorded via cmd/benchjson). Mixed
// streams varying src/dst pairs (accepts until the packer fills, then cost
// rejects); Saturated pins the cost-reject steady state, which is the
// 0-alloc path gated by alloc_test.go.
func BenchmarkEngineAdmit(b *testing.B) {
	newEngine := func(b *testing.B, noWarm bool) *engine.Engine {
		b.Helper()
		g := grid.Line(64, 3, 3)
		eng, err := engine.New(g, engine.Options{
			Horizon: 256, PMax: core.PMaxDet(g), ExpectPackets: 4096,
			NoWarmStart: noWarm,
		})
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	drain := func(b *testing.B, eng *engine.Engine) {
		b.Helper()
		b.StopTimer()
		if err := eng.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	// saturate admits one fixed packet until the Buchbinder–Naor threshold
	// rejects it, so the timed region measures a steady state.
	saturate := func(b *testing.B, eng *engine.Engine, pkt engine.Packet) {
		b.Helper()
		for i := 0; ; i++ {
			dec, err := eng.Admit(context.Background(), pkt)
			if err != nil {
				b.Fatal(err)
			}
			if dec.Verdict == engine.RejectedCost {
				return
			}
			if i > 1<<20 {
				b.Fatal("packer never saturated")
			}
		}
	}
	b.Run("Mixed", func(b *testing.B) {
		b.ReportAllocs()
		eng := newEngine(b, false)
		ctx := context.Background()
		pkt := engine.Packet{Src: grid.Vec{0}, Dst: grid.Vec{0}, Deadline: grid.InfDeadline}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt.Seq = i
			pkt.Src[0] = i % 40
			pkt.Dst[0] = pkt.Src[0] + 8 + i%16
			if _, err := eng.Admit(ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
		drain(b, eng)
	})
	// WAL is Mixed with the write-ahead decision log on (fsync batched at the
	// default cadence): the fault-tolerance tax on streaming throughput. New
	// sub-benchmarks are absent from bench/baseline.txt, so the perf gate
	// skips this entry (disk-speed dependent); benchjson still records it as
	// a labelled trajectory point.
	b.Run("WAL", func(b *testing.B) {
		b.ReportAllocs()
		g := grid.Line(64, 3, 3)
		eng, err := engine.New(g, engine.Options{
			Horizon: 256, PMax: core.PMaxDet(g), ExpectPackets: 4096,
			WALPath: filepath.Join(b.TempDir(), "bench.wal"),
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		pkt := engine.Packet{Src: grid.Vec{0}, Dst: grid.Vec{0}, Deadline: grid.InfDeadline}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt.Seq = i
			pkt.Src[0] = i % 40
			pkt.Dst[0] = pkt.Src[0] + 8 + i%16
			if _, err := eng.Admit(ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
		drain(b, eng)
	})
	// Saturated measures the full-DP cost-reject steady state, so warm-start
	// reuse is disabled (a warm engine would skip the DP entirely here — that
	// path is the WarmStart sub-benchmark). The extra post-saturation admits
	// before ResetTimer retire lazily-grown scratch state and branch-predictor
	// cold starts that previously spread the baseline by ~75%.
	b.Run("Saturated", func(b *testing.B) {
		b.ReportAllocs()
		eng := newEngine(b, true)
		ctx := context.Background()
		pkt := engine.Packet{Src: grid.Vec{4}, Dst: grid.Vec{40}, Deadline: grid.InfDeadline}
		saturate(b, eng, pkt)
		for i := 0; i < 256; i++ {
			if _, err := eng.Admit(ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Admit(ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
		drain(b, eng)
	})
	// WarmStart is Saturated with incremental DP reuse left on (the default
	// engine configuration): repeated queries of an unchanged packer hit the
	// version-delta-0 path and skip the DP outright.
	b.Run("WarmStart", func(b *testing.B) {
		b.ReportAllocs()
		eng := newEngine(b, false)
		ctx := context.Background()
		pkt := engine.Packet{Src: grid.Vec{4}, Dst: grid.Vec{40}, Deadline: grid.InfDeadline}
		saturate(b, eng, pkt)
		for i := 0; i < 256; i++ {
			if _, err := eng.Admit(ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Admit(ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
		drain(b, eng)
	})
	// fanIn drives the engine from 4×GOMAXPROCS blocking producers (the
	// b.RunParallel fan-in keeps the admission pipeline full, unlike the
	// one-at-a-time loops above, whose in-flight depth is 1). specWorkers 0
	// is the serial consumer loop under concurrent load; > 0 is the
	// speculative pipeline — the multi-core headline of the trajectory.
	// Deliberately outside the CI perf gate's filter: timings are
	// GOMAXPROCS-dependent by design, and benchjson labels the entries with
	// the procs value instead of merging them with the serial baseline.
	fanIn := func(b *testing.B, specWorkers int) {
		b.ReportAllocs()
		g := grid.Line(64, 3, 3)
		eng, err := engine.New(g, engine.Options{
			Horizon: 256, PMax: core.PMaxDet(g), ExpectPackets: 4096,
			SpecWorkers: specWorkers,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		var seq atomic.Int64
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			pkt := engine.Packet{Src: grid.Vec{0}, Dst: grid.Vec{0}, Deadline: grid.InfDeadline}
			for pb.Next() {
				i := int(seq.Add(1) - 1)
				pkt.Seq = i
				pkt.Src[0] = i % 40
				pkt.Dst[0] = pkt.Src[0] + 8 + i%16
				if _, err := eng.Admit(ctx, pkt); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
		drain(b, eng)
	}
	b.Run("FanIn", func(b *testing.B) { fanIn(b, 0) })
	for _, w := range []int{2, 8} {
		b.Run("SpecFanIn/workers="+itoa(w), func(b *testing.B) { fanIn(b, w) })
	}
}

// BenchmarkDPWavefront measures the pipelined parallel DP kernel at a few
// pool widths against the same window the serial DPRunFlat benchmark sweeps.
// It is deliberately outside the CI perf gate's filter: on a single-CPU
// runner the timing is scheduler-dominated; on multicore hardware it is the
// speedup evidence for the crossover guidance in README "Performance".
func BenchmarkDPWavefront(b *testing.B) {
	box := lattice.NewBox([]int{0, 0}, []int{96, 96})
	edgeX := make([]float64, box.Size()*2)
	rng := rand.New(rand.NewSource(1))
	for i := range edgeX {
		edgeX[i] = rng.Float64()
	}
	src := []int{0, 0}
	for _, workers := range []int{2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			pool := lattice.NewPool(workers)
			defer pool.Close()
			pool.MinWindow = 1
			dp := box.NewDP()
			dp.SetPool(pool)
			dp.RunFlat(box.Lo, box.Hi, src, edgeX, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dp.RunFlat(box.Lo, box.Hi, src, edgeX, nil)
			}
		})
	}
}

// --- Table 1 -----------------------------------------------------------------

func BenchmarkTable1PriorAlgorithms(b *testing.B) {
	b.ReportAllocs()
	n := 64
	g := grid.Line(n, 3, 1)
	reqs := scenario.ConvoyRate(n, 2*n, 1, 1)
	optLB := scenario.ConvoyOPTLowerBound(n, 2*n, 1)
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gr := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model1, horizon)
		ratio = float64(optLB) / float64(gr.Throughput())
	}
	b.ReportMetric(ratio, "greedy-ratio")
}

// --- Table 2 -----------------------------------------------------------------

func BenchmarkTable2RandomizedRegimes(b *testing.B) {
	for _, cs := range []struct {
		name string
		b, c int
	}{{"small-B1c1", 1, 1}, {"large-buffers", 98, 1}, {"large-capacity", 1, 28}} {
		b.Run(cs.name, func(b *testing.B) {
			b.ReportAllocs()
			n := 64
			g := grid.Line(n, cs.b, cs.c)
			reqs := scenario.Uniform(g, 6*n, int64(2*n), rand.New(rand.NewSource(1)))
			var tp int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: 0.5}, rand.New(rand.NewSource(int64(i))))
				if err != nil {
					b.Fatal(err)
				}
				tp = res.Throughput
			}
			b.ReportMetric(float64(tp), "delivered")
		})
	}
}

// --- Figures -------------------------------------------------------------------

func BenchmarkFigure1Grid(b *testing.B) {
	b.ReportAllocs()
	g := grid.New([]int{4, 4}, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(render.Grid2D(g)) == 0 {
			b.Fatal("empty rendering")
		}
	}
}

func BenchmarkFigure2SpaceTime(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := spacetime.New(g, 256)
		r := &grid.Request{Src: grid.Vec{3}, Dst: grid.Vec{40}, Arrival: 5, Deadline: grid.InfDeadline}
		lo, hi := st.DestRay(r)
		if lo > hi {
			b.Fatal("empty destination ray")
		}
	}
}

func BenchmarkFigure3Untilting(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 3, 3)
	st := spacetime.New(g, 256)
	p := make([]int, 2)
	v := make(grid.Vec, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := int64(0); t < 64; t++ {
			v[0] = int(t % 64)
			st.ToLattice(v, t, p)
			if _, tt := st.FromLattice(p, v); tt != t {
				b.Fatal("untilting round trip broken")
			}
		}
	}
}

func BenchmarkFigure4SketchCapacities(b *testing.B) {
	b.ReportAllocs()
	res, err := core.RunDeterministic(grid.Line(64, 3, 3),
		scenario.Uniform(grid.Line(64, 3, 3), 64, 64, rand.New(rand.NewSource(1))), core.DetConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.MaxLoad > res.LoadBound {
			b.Fatal("sketch capacity discipline broken")
		}
	}
	b.ReportMetric(res.MaxLoad, "max-sketch-load")
}

func BenchmarkFigure5DetailedRouting(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(48, 3, 3)
	reqs := scenario.Uniform(g, 4*48, 96, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil || res.RouteStats.Anomalies != 0 {
			b.Fatalf("detailed routing failed: %v anomalies=%d", err, res.RouteStats.Anomalies)
		}
	}
}

func BenchmarkFigure6KnockKnee(b *testing.B) {
	b.ReportAllocs()
	// Crossing traffic that forces simultaneous bends inside shared tiles.
	g := grid.Line(48, 3, 3)
	var reqs []grid.Request
	for j := 0; j < 24; j++ {
		reqs = append(reqs, grid.Request{ID: len(reqs), Src: grid.Vec{j}, Dst: grid.Vec{j + 24}, Arrival: int64(j), Deadline: grid.InfDeadline})
		reqs = append(reqs, grid.Request{ID: len(reqs), Src: grid.Vec{j}, Dst: grid.Vec{j + 1}, Arrival: int64(j), Deadline: grid.InfDeadline})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil || res.RouteStats.Anomalies != 0 {
			b.Fatal("knock-knee routing failed")
		}
	}
}

func BenchmarkFigure7Deadlines(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(48, 3, 3)
	rng := rand.New(rand.NewSource(3))
	reqs := scenario.WithDeadlines(g, scenario.Uniform(g, 150, 96, rng), 1.5, 8, rng)
	var late int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		late = 0
		for j, o := range res.Outcomes {
			if o.Delivered && o.DeliveredAt > reqs[j].Deadline {
				late++
			}
		}
	}
	b.ReportMetric(float64(late), "late-deliveries")
}

func BenchmarkFigure8Quadrants(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 2, 2)
	st := spacetime.New(g, 128)
	pt := []int{31, 17}
	sw := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw = 0
		trials := 0
		for px := 0; px < 6; px++ {
			for pw := 0; pw < 8; pw++ {
				tl := tiling.New(st.Box, []int{6, 8}, []int{px, pw})
				if tl.QuadrantOf(pt) == tiling.SW {
					sw++
				}
				trials++
			}
		}
		if sw*4 != trials {
			b.Fatal("Prop 17: SW probability must be exactly 1/4 over shifts")
		}
	}
}

func BenchmarkFigure9ITXRouting(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(96, 1, 1)
	reqs := scenario.Uniform(g, 8*96, 192, rand.New(rand.NewSource(4)))
	var tp int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: 0.25, Branch: 1}, rand.New(rand.NewSource(int64(i))))
		if err != nil || res.Anomalies != 0 {
			b.Fatal("I/T/X routing anomaly")
		}
		tp = res.Throughput
	}
	b.ReportMetric(float64(tp), "delivered")
}

func BenchmarkFigure10XRouting(b *testing.B) {
	b.ReportAllocs()
	// Heavy same-tile crossing demand exercises the X quadrant.
	g := grid.Line(64, 2, 2)
	reqs := scenario.Hotspot(g, 400, 128, 0.3, rand.New(rand.NewSource(5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: 0.25, Branch: 1}, rand.New(rand.NewSource(7)))
		if err != nil || res.Anomalies != 0 {
			b.Fatal("X-routing anomaly")
		}
	}
}

func BenchmarkFigure12NodeModels(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(4, 1, 1)
	reqs := []grid.Request{
		{ID: 0, Src: grid.Vec{0}, Dst: grid.Vec{3}, Arrival: 0, Deadline: grid.InfDeadline},
		{ID: 1, Src: grid.Vec{1}, Dst: grid.Vec{3}, Arrival: 1, Deadline: grid.InfDeadline},
	}
	var m1, m2 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1 = netsim.RunLocal(g, reqs, baseline.Greedy{}, netsim.Model1, 20).Throughput()
		m2 = netsim.RunLocal(g, reqs, baseline.Greedy{}, netsim.Model2, 20).Throughput()
	}
	if m1 != 2 || m2 != 1 {
		b.Fatalf("Appendix F separation broken: model1=%d model2=%d", m1, m2)
	}
	b.ReportMetric(float64(m1-m2), "model1-minus-model2")
}

// --- Theorems ------------------------------------------------------------------

func BenchmarkThm4DetLine(b *testing.B) {
	b.ReportAllocs()
	n := 96
	g := grid.Line(n, 3, 3)
	reqs := scenario.Uniform(g, 5*n, int64(2*n), rand.New(rand.NewSource(6)))
	horizon := spacetime.SuggestHorizon(g, reqs, 3)
	upper, _ := optbound.DualUpperBound(g, reqs, horizon)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{Horizon: horizon})
		if err != nil {
			b.Fatal(err)
		}
		ratio = upper / float64(res.Throughput)
	}
	b.ReportMetric(ratio, "certified-ratio")
}

func BenchmarkThm10DetGrid2D(b *testing.B) {
	b.ReportAllocs()
	g := grid.New([]int{10, 10}, 3, 3)
	reqs := scenario.Uniform(g, 400, 48, rand.New(rand.NewSource(7)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunDeterministic(g, reqs, core.DetConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm11Bufferless(b *testing.B) {
	b.ReportAllocs()
	n := 96
	g := grid.Line(n, 0, 3)
	reqs := scenario.Uniform(g, 4*n, int64(2*n), rand.New(rand.NewSource(8)))
	opt := optbound.ExactBufferlessLine(g, reqs)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(opt) / float64(res.Throughput)
	}
	b.ReportMetric(ratio, "exact-ratio")
}

func BenchmarkThm13LargeCapacity(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(48, 64, 64)
	reqs := scenario.Saturating(g, 6, 3, rand.New(rand.NewSource(9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunLargeCapacity(g, reqs, core.DetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxLoad > float64(res.K) {
			b.Fatal("Thm 13 load discipline broken")
		}
	}
}

func BenchmarkThm29RandLine(b *testing.B) {
	b.ReportAllocs()
	n := 96
	g := grid.Line(n, 1, 1)
	reqs := scenario.Uniform(g, 8*n, int64(3*n), rand.New(rand.NewSource(10)))
	var tp int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: 0.5}, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		tp += res.Throughput
	}
	b.ReportMetric(float64(tp)/float64(b.N), "mean-delivered")
}

func BenchmarkThm30LargeBuffers(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 98, 1)
	reqs := scenario.Uniform(g, 400, 128, rand.New(rand.NewSource(11)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: 0.5, Branch: 1}, rand.New(rand.NewSource(3))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm31SmallBuffers(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 2, 64)
	reqs := scenario.Saturating(g, 8, 4, rand.New(rand.NewSource(12)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: 0.5, Branch: 1}, rand.New(rand.NewSource(4))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm1IPP(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 3, 3)
	st := spacetime.New(g, 256)
	reqs := scenario.Uniform(g, 300, 128, rand.New(rand.NewSource(13)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := optbound.NewSTPacker(st, 3, 3, core.PMaxDet(g))
		for j := range reqs {
			sp.Offer(&reqs[j])
		}
		pk := sp.Packer()
		if pk.PrimalValue() > 2*float64(pk.Accepted())+1e-9 || pk.MaxLoad() > pk.LoadBound() {
			b.Fatal("Theorem 1 guarantee violated")
		}
	}
}

func BenchmarkLemma2PathLengths(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(64, 3, 3)
	reqs := scenario.Uniform(g, 300, 128, rand.New(rand.NewSource(14)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		short, err := core.RunDeterministic(g, reqs, core.DetConfig{PMax: 64})
		if err != nil {
			b.Fatal(err)
		}
		long, err := core.RunDeterministic(g, reqs, core.DetConfig{PMax: core.PMaxDet(g)})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(short.Throughput)/float64(long.Throughput), "short-vs-paper-pmax")
		}
	}
}

func BenchmarkProp89DetailedRoutingLoss(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(96, 3, 3)
	reqs := scenario.Saturating(g, 8, 2, rand.New(rand.NewSource(15)))
	var f1, f2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunDeterministic(g, reqs, core.DetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		f1 = float64(res.ReachedLastTile) / float64(res.Admitted)
		f2 = float64(res.Throughput) / float64(res.ReachedLastTile)
	}
	b.ReportMetric(f1, "ipp-prime/ipp")
	b.ReportMetric(f2, "alg/ipp-prime")
}

func BenchmarkLowerBounds(b *testing.B) {
	b.ReportAllocs()
	n := 64
	g := grid.Line(n, 1, 1)
	var reqs []grid.Request
	reqs = append(reqs, grid.Request{Src: grid.Vec{0}, Dst: grid.Vec{n - 1}, Arrival: 0, Deadline: grid.InfDeadline})
	for v := 1; v < n-1; v++ {
		reqs = append(reqs, grid.Request{Src: grid.Vec{v}, Dst: grid.Vec{v + 1}, Arrival: int64(v), Deadline: grid.InfDeadline})
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := baseline.Run(g, reqs, baseline.Greedy{}, netsim.Model2, int64(4*n))
		ratio = float64(n-2) / float64(res.Throughput())
	}
	b.ReportMetric(ratio, "model2-B1-ratio")
}

func BenchmarkProp16Tiling(b *testing.B) {
	b.ReportAllocs()
	g := grid.Line(256, 2, 3)
	st := spacetime.New(g, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := tiling.New(st.Box, []int{8, 8}, []int{i % 8, (i * 3) % 8})
		if tl.TBox.Size() == 0 {
			b.Fatal("empty tiling")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	g := grid.Line(64, 1, 1)
	reqs := scenario.Uniform(g, 8*64, 192, rand.New(rand.NewSource(16)))
	for _, gamma := range []float64{0.25, 8} {
		b.Run("gamma="+itoa(int(gamma*100)), func(b *testing.B) {
			b.ReportAllocs()
			var tp int
			for i := 0; i < b.N; i++ {
				res, err := core.RunRandomized(g, reqs, core.RandConfig{Gamma: gamma, Branch: 1}, rand.New(rand.NewSource(5)))
				if err != nil {
					b.Fatal(err)
				}
				tp = res.Throughput
			}
			b.ReportMetric(float64(tp), "delivered")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkK is a micro-benchmark of the tile-side parameter used across
// both algorithms.
func BenchmarkK(b *testing.B) {
	b.ReportAllocs()
	s := 0
	for i := 0; i < b.N; i++ {
		s += ipp.K(4 * 1024)
	}
	_ = s
}

// BenchmarkScenario measures workload-generation cost for every
// registered scenario at its default parameters — the generation-side
// counterpart of BenchmarkExperiment (whose E14 timings land in
// BENCH_experiments.json), so scenario cost shows up in the perf
// trajectory.
func BenchmarkScenario(b *testing.B) {
	for _, sc := range scenario.Registered() {
		b.Run(sc.ID, func(b *testing.B) {
			b.ReportAllocs()
			var digest uint64
			for i := 0; i < b.N; i++ {
				g, reqs, err := scenario.Generate(sc.ID, nil)
				if err != nil {
					b.Fatal(err)
				}
				d := scenario.Digest(g, reqs)
				if i > 0 && d != digest {
					b.Fatal("generation not deterministic")
				}
				digest = d
			}
		})
	}
}

// BenchmarkExperimentsQuick regenerates the full quick-mode EXPERIMENTS
// suite through the registry runner; it is the one-stop reproduction
// target and exercises the parallel path.
func BenchmarkExperimentsQuick(b *testing.B) {
	b.ReportAllocs()
	r := experiments.Runner{Workers: 4, Quick: true}
	for i := 0; i < b.N; i++ {
		rs := r.RunAll(context.Background())
		if len(rs) < 10 {
			b.Fatal("missing experiment reports")
		}
		for _, res := range rs {
			if res.Err != nil && !errors.Is(res.Err, experiments.ErrSkipped) {
				b.Fatalf("%s: %v", res.Experiment.ID, res.Err)
			}
			if len(res.Report.Tables) == 0 {
				b.Fatalf("%s: empty report", res.Experiment.ID)
			}
		}
	}
}

// BenchmarkExperiment runs one sub-benchmark per registered experiment ID,
// driving each through the registry with its canonical derived seed — the
// per-experiment timing counterpart of BENCH_experiments.json.
func BenchmarkExperiment(b *testing.B) {
	for _, e := range experiments.Registered() {
		b.Run(e.ID, func(b *testing.B) {
			b.ReportAllocs()
			cfg := experiments.Config{Quick: true, ID: e.ID, Seed: experiments.SeedFor(e.ID)}
			for i := 0; i < b.N; i++ {
				rep, err := e.Run(context.Background(), cfg)
				if err != nil && !errors.Is(err, experiments.ErrSkipped) {
					b.Fatalf("%s: %v", e.ID, err)
				}
				if len(rep.Tables) == 0 {
					b.Fatalf("%s: empty report", e.ID)
				}
			}
		})
	}
}
