module gridroute

go 1.24
