module gridroute

go 1.24

// Pinned to the exact revision the Go 1.24 distribution vendors for cmd/vet,
// and vendored (vendor/) so builds never need the network. The analyzer suite
// under internal/analysis and cmd/gridlint build against it.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
