package gridroute

import (
	"testing"
)

// genScenario is the test-side shorthand for GenerateScenario with
// overrides; it fails the test on any resolution/generation error.
func genScenario(t *testing.T, id string, opts map[string]float64) (*Grid, []Request) {
	t.Helper()
	g, reqs, err := GenerateScenario(id, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, reqs
}

func TestPublicAPIDeterministic(t *testing.T) {
	g, reqs := genScenario(t, "uniform", map[string]float64{"n": 48, "reqs": 150, "maxt": 96, "seed": 1})
	res, err := Deterministic().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Throughput == 0 || res.Throughput > res.Admitted {
		t.Fatalf("throughput %d / admitted %d", res.Throughput, res.Admitted)
	}
	upper, witness := DualUpperBound(g, reqs, SuggestHorizon(g, reqs, 3))
	if float64(res.Throughput) > upper {
		t.Fatalf("throughput %d above certified bound %v", res.Throughput, upper)
	}
	if witness == 0 {
		t.Fatal("certifying packer routed nothing")
	}
}

func TestPublicAPIRandomized(t *testing.T) {
	g, reqs := genScenario(t, "uniform", map[string]float64{"n": 64, "b": 1, "c": 1, "reqs": 400, "maxt": 128, "seed": 2})
	res, err := RandomizedWith(7, 0.5, 1).Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Throughput == 0 {
		t.Fatal("no randomized throughput in engineering mode")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g, reqs := genScenario(t, "uniform", map[string]float64{"n": 32, "b": 2, "c": 1, "reqs": 60, "maxt": 64, "seed": 3})
	for _, r := range []Router{Greedy(), NearestToGo()} {
		res, err := r.Route(g, reqs)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Throughput == 0 {
			t.Fatalf("%s delivered nothing", r.Name())
		}
	}
}

func TestPublicAPILargeCapacity(t *testing.T) {
	g, reqs := genScenario(t, "saturating", map[string]float64{"n": 16, "b": 64, "c": 64, "rounds": 4, "burst": 6, "seed": 4})
	res, err := LargeCapacity().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Throughput != res.Admitted {
		t.Fatal("Thm 13 is non-preemptive")
	}
}

func TestPublicAPICrossbar(t *testing.T) {
	g, reqs := genScenario(t, "crossbar", map[string]float64{"n": 8, "rounds": 12, "load": 0.5, "seed": 5})
	res, err := Deterministic().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestPublicAPIDeadlines(t *testing.T) {
	g, reqs := genScenario(t, "uniform-deadline", map[string]float64{"n": 32, "reqs": 80, "maxt": 64, "slack": 2, "jitter": 8, "seed": 6})
	res, err := Deterministic().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestPublicAPIScenarioCatalog(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 14 {
		t.Fatalf("catalog has %d scenarios, want ≥ 14", len(scs))
	}
	if _, _, err := GenerateScenario("no-such", nil); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if _, _, err := GenerateScenario("uniform", map[string]float64{"bogus": 1}); err == nil {
		t.Fatal("unknown parameter must error")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	g := NewLine(16, 1, 1)
	if _, err := Deterministic().Route(g, nil); err == nil {
		t.Fatal("B=c=1 must error for the deterministic algorithm")
	}
	g2 := NewGrid([]int{4, 4}, 1, 1)
	if _, err := Randomized(1).Route(g2, nil); err == nil {
		t.Fatal("randomized on 2-d must error")
	}
}
