package gridroute

import (
	"testing"
)

func TestPublicAPIDeterministic(t *testing.T) {
	g := NewLine(48, 3, 3)
	reqs := UniformWorkload(g, 150, 96, 1)
	res, err := Deterministic().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Throughput == 0 || res.Throughput > res.Admitted {
		t.Fatalf("throughput %d / admitted %d", res.Throughput, res.Admitted)
	}
	upper, witness := DualUpperBound(g, reqs, SuggestHorizon(g, reqs, 3))
	if float64(res.Throughput) > upper {
		t.Fatalf("throughput %d above certified bound %v", res.Throughput, upper)
	}
	if witness == 0 {
		t.Fatal("certifying packer routed nothing")
	}
}

func TestPublicAPIRandomized(t *testing.T) {
	g := NewLine(64, 1, 1)
	reqs := UniformWorkload(g, 400, 128, 2)
	res, err := RandomizedWith(7, 0.5, 1).Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Throughput == 0 {
		t.Fatal("no randomized throughput in engineering mode")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g := NewLine(32, 2, 1)
	reqs := UniformWorkload(g, 60, 64, 3)
	for _, r := range []Router{Greedy(), NearestToGo()} {
		res, err := r.Route(g, reqs)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Throughput == 0 {
			t.Fatalf("%s delivered nothing", r.Name())
		}
	}
}

func TestPublicAPILargeCapacity(t *testing.T) {
	g := NewLine(16, 64, 64)
	reqs := SaturatingWorkload(g, 4, 6, 4)
	res, err := LargeCapacity().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Throughput != res.Admitted {
		t.Fatal("Thm 13 is non-preemptive")
	}
}

func TestPublicAPICrossbar(t *testing.T) {
	g, reqs := CrossbarWorkload(8, 3, 3, 12, 0.5, 5)
	res, err := Deterministic().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestPublicAPIDeadlines(t *testing.T) {
	g := NewLine(32, 3, 3)
	reqs := DeadlineWorkload(g, UniformWorkload(g, 80, 64, 6), 2.0, 8, 6)
	res, err := Deterministic().Route(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

func TestPublicAPIErrors(t *testing.T) {
	g := NewLine(16, 1, 1)
	if _, err := Deterministic().Route(g, nil); err == nil {
		t.Fatal("B=c=1 must error for the deterministic algorithm")
	}
	g2 := NewGrid([]int{4, 4}, 1, 1)
	if _, err := Randomized(1).Route(g2, nil); err == nil {
		t.Fatal("randomized on 2-d must error")
	}
}
